package maxrs_test

import (
	"context"
	"fmt"

	"maxrs"
)

// The smallest MaxRS program: find the best 4×4 placement.
func ExampleMaxRS() {
	objs := []maxrs.Object{
		{X: 1, Y: 1, Weight: 1},
		{X: 2, Y: 2, Weight: 1},
		{X: 3, Y: 1, Weight: 1},
		{X: 40, Y: 40, Weight: 1},
	}
	res, err := maxrs.MaxRS(context.Background(), objs, 4, 4, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("covered weight: %.0f\n", res.Score)
	// Output: covered weight: 3
}

// MaxCRS approximates the best circular placement with a guaranteed
// fraction of the optimum.
func ExampleMaxCRS() {
	objs := []maxrs.Object{
		{X: 0, Y: 0, Weight: 2},
		{X: 1, Y: 0, Weight: 2},
		{X: 0, Y: 1, Weight: 2},
		{X: 90, Y: 90, Weight: 1},
	}
	res, err := maxrs.MaxCRS(context.Background(), objs, 4, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("weight %.0f (guaranteed ≥ %.0f%% of optimum)\n",
		res.Score, 100*res.LowerBoundRatio)
	// Output: weight 6 (guaranteed ≥ 25% of optimum)
}

// An Engine gives control over the EM model and reports the I/O cost —
// the metric the paper's evaluation is built on.
func ExampleEngine_MaxRS() {
	engine, err := maxrs.NewEngine(&maxrs.Options{
		BlockSize: 4096,
		Memory:    1 << 20,
	})
	if err != nil {
		panic(err)
	}
	objs := make([]maxrs.Object, 0, 1000)
	for i := 0; i < 1000; i++ {
		objs = append(objs, maxrs.Object{X: float64(i % 50), Y: float64(i / 50), Weight: 1})
	}
	ds, err := engine.Load(context.Background(), objs)
	if err != nil {
		panic(err)
	}
	engine.ResetStats()
	res, err := engine.MaxRS(context.Background(), ds, 10, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best 10x10 covers %.0f of %d points\n", res.Score, ds.Len())
	// Output: best 10x10 covers 100 of 1000 points
}

// TopK plans several placements over disjoint object subsets (MaxkRS).
func ExampleEngine_TopK() {
	engine, err := maxrs.NewEngine(nil)
	if err != nil {
		panic(err)
	}
	var objs []maxrs.Object
	for i := 0; i < 5; i++ { // cluster A: 5 points
		objs = append(objs, maxrs.Object{X: float64(i), Y: 0, Weight: 1})
	}
	for i := 0; i < 3; i++ { // cluster B: 3 points
		objs = append(objs, maxrs.Object{X: 100 + float64(i), Y: 0, Weight: 1})
	}
	ds, err := engine.Load(context.Background(), objs)
	if err != nil {
		panic(err)
	}
	results, err := engine.TopK(context.Background(), ds, 10, 10, 2)
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		fmt.Printf("#%d: weight %.0f\n", i+1, r.Score)
	}
	// Output:
	// #1: weight 5
	// #2: weight 3
}
