// Package em simulates the standard external-memory (EM) model of
// Aggarwal–Vitter as used by the paper (§2): a disk organized in blocks of B
// bytes, a main memory of M bytes (M ≥ 2B), and a cost measure equal to the
// number of blocks transferred between disk and memory.
//
// The paper evaluates every algorithm by this transfer count ("We do not
// consider CPU time, since it is dominated by I/O cost", §7.1), so the
// simulator *is* the measurement instrument: every block read or written
// through a Disk is tallied in its Stats. Blocks live in process memory by
// default (hermetic, fast tests) or in a real OS file via
// NewFileBackedDisk; either way algorithms may only touch data in whole
// blocks through the APIs here and must bound their private state by Env.M.
package em

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64) used for block checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// zeroPad feeds the implied zero padding of partial writes into the
// checksum without materializing a full block of zeros per call.
var zeroPad [4096]byte

// crcPadded returns the CRC32C of src extended with zeros to blockSize —
// the checksum of the block content a (possibly partial) write produces,
// since both backends zero the remainder.
func crcPadded(src []byte, blockSize int) uint32 {
	sum := crc32.Update(0, castagnoli, src)
	for rem := blockSize - len(src); rem > 0; rem -= len(zeroPad) {
		n := rem
		if n > len(zeroPad) {
			n = len(zeroPad)
		}
		sum = crc32.Update(sum, castagnoli, zeroPad[:n])
	}
	return sum
}

// Common configuration errors.
var (
	ErrBlockSize   = errors.New("em: block size must be positive")
	ErrMemorySize  = errors.New("em: memory must hold at least two blocks (M ≥ 2B)")
	ErrBadBlock    = errors.New("em: block id out of range")
	ErrFreedBlock  = errors.New("em: access to freed block")
	ErrClosed      = errors.New("em: stream is closed")
	ErrRecordSize  = errors.New("em: record size must be positive and ≤ block size")
	ErrWriteSealed = errors.New("em: file already sealed for reading")
)

// Stats counts block transfers. Reads + Writes is the paper's "I/O cost".
type Stats struct {
	Reads  uint64 // blocks transferred disk → memory
	Writes uint64 // blocks transferred memory → disk
}

// Total returns Reads + Writes.
func (s Stats) Total() uint64 { return s.Reads + s.Writes }

// Sub returns the per-phase delta s − earlier.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{Reads: s.Reads - earlier.Reads, Writes: s.Writes - earlier.Writes}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d total=%d", s.Reads, s.Writes, s.Total())
}

// BlockID identifies an allocated disk block.
type BlockID int64

// Disk is a simulated block device. The zero value is unusable; construct
// with NewDisk or NewFileBackedDisk.
//
// Disk is safe for concurrent use: the transfer counters are atomic and
// allocation state is mutex-guarded, so the parallel solver (DESIGN.md §6)
// can run goroutines against one device. The tally is order-independent —
// Stats().Total() is identical however the same set of transfers is
// interleaved. Individual blocks still have single-owner semantics:
// concurrent writers to the *same* block are a caller bug, exactly as two
// writers to one file would be.
type Disk struct {
	blockSize int
	backend   backend

	// mu guards live, gen and freeList. ReadBlock/WriteBlock take it in
	// read mode only to validate ids against the (append-only) live table.
	mu       sync.RWMutex
	live     []bool
	freeList []BlockID
	// gen counts how many times each block has been freed. A write-behind
	// goroutine presents the generation captured at allocation; if its
	// block was freed (an abandoned pipelined writer on an error path) —
	// and possibly handed to a new owner — in the meantime, the stale
	// write is rejected instead of corrupting the new owner's data. Reads
	// need no guard: a stale prefetch lands in a private buffer that is
	// never consumed.
	gen       []uint32
	liveCount atomic.Int64 // O(1) InUse, maintained by Alloc/Free

	reads  atomic.Uint64
	writes atomic.Uint64

	// pipelined enables stream prefetch / write-behind (DESIGN.md §8);
	// pipeReads/pipeWrites count the transfers that rode the background
	// path (a subset of reads/writes — never extra transfers).
	pipelined  atomic.Bool
	pipeReads  atomic.Uint64
	pipeWrites atomic.Uint64

	// retry is the policy for transient faults and checksum mismatches
	// (DESIGN.md §11); nil means never retry. Retries count in the fault
	// counters below, never in reads/writes — those tally successful
	// transfers only, so the I/O metric of a fault-free run is
	// bit-identical with any policy.
	retry        atomic.Pointer[RetryPolicy]
	jitter       atomic.Pointer[JitterSource]
	readRetries  atomic.Uint64
	writeRetries atomic.Uint64

	// checksums enables per-block CRC32C verification: every successful
	// write records the checksum of the block's full (padded) content in
	// sums, every read verifies it. sums is guarded like live/gen and
	// grown by Alloc; entry 0 means "no checksum recorded" (a block
	// written while verification was off is not verified).
	checksums     atomic.Bool
	sums          []uint64
	checksumFails atomic.Uint64
}

// sumRecorded flags a sums entry as holding a valid CRC32C in its low 32
// bits.
const sumRecorded = 1 << 32

// NewDisk returns an in-memory Disk with the given block size in bytes.
func NewDisk(blockSize int) (*Disk, error) {
	if blockSize <= 0 {
		return nil, ErrBlockSize
	}
	return &Disk{
		blockSize: blockSize,
		backend:   &memBackend{blockSize: blockSize},
	}, nil
}

// MustNewDisk is NewDisk for static configurations; it panics on error.
func MustNewDisk(blockSize int) *Disk {
	d, err := NewDisk(blockSize)
	if err != nil {
		panic(err)
	}
	return d
}

// BlockSize returns B in bytes.
func (d *Disk) BlockSize() int { return d.blockSize }

// Stats returns the transfer counters accumulated so far.
func (d *Disk) Stats() Stats {
	return Stats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// ResetStats zeroes the transfer counters (e.g. to exclude data generation
// from a measured phase), along with the physical-byte counters of a
// slot-store disk so PhysIO stays phase-aligned with Stats.
func (d *Disk) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.pipeReads.Store(0)
	d.pipeWrites.Store(0)
	if sb := d.storeOf(); sb != nil {
		sb.resetPhys()
	}
}

// SetPipelining enables or disables prefetch / write-behind on streams
// created afterwards (DESIGN.md §8): Readers double-buffer read-ahead and
// Writers write behind, each via one short-lived background goroutine per
// block, overlapping backend latency with CPU. Transfer counts are
// identical either way — pipelining changes wall-clock only — at the cost
// of one extra block of memory per open stream. Default: off for
// in-memory disks (their "transfers" are memcpys with nothing to overlap),
// on for file-backed disks.
func (d *Disk) SetPipelining(on bool) { d.pipelined.Store(on) }

// Pipelined reports whether streams created now would use prefetch /
// write-behind.
func (d *Disk) Pipelined() bool { return d.pipelined.Load() }

// PipelineStats returns how many read and write transfers were performed
// by the background prefetch / write-behind path since the last
// ResetStats. Divide by Stats() for the pipeline coverage ratio.
func (d *Disk) PipelineStats() (reads, writes uint64) {
	return d.pipeReads.Load(), d.pipeWrites.Load()
}

// Close releases backend resources (removes the backing file of a
// file-backed disk). The disk must not be used afterwards.
func (d *Disk) Close() error {
	d.mu.Lock()
	d.live = nil
	d.gen = nil
	d.sums = nil
	d.freeList = nil
	d.liveCount.Store(0)
	d.mu.Unlock()
	return d.backend.Close()
}

// Alloc reserves a zeroed block and returns its id. Allocation itself is
// free; the transfer is charged when the block is read or written.
func (d *Disk) Alloc() BlockID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var id BlockID
	if n := len(d.freeList); n > 0 {
		id = d.freeList[n-1]
		d.freeList = d.freeList[:n-1]
		d.sums[id] = 0 // fresh block, no checksum recorded yet
	} else {
		id = BlockID(len(d.live))
		d.live = append(d.live, false)
		d.gen = append(d.gen, 0)
		d.sums = append(d.sums, 0)
	}
	if err := d.backend.grow(id); err != nil {
		// Growth failures (disk full) surface on the next access; a full
		// alloc-with-error API would complicate every caller for a case
		// the in-memory backend cannot hit.
		panic(fmt.Sprintf("em: backend grow: %v", err))
	}
	d.live[id] = true
	d.liveCount.Add(1)
	return id
}

// Free releases a block. Freeing is free of transfer cost.
func (d *Disk) Free(id BlockID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkLocked(id); err != nil {
		return err
	}
	d.live[id] = false
	d.gen[id]++
	d.liveCount.Add(-1)
	d.freeList = append(d.freeList, id)
	if m, ok := d.backend.(blockFreer); ok {
		m.free(id) // let large intermediates be collected
	}
	return nil
}

// ReadBlock copies block id into dst (len(dst) must be ≥ BlockSize) and
// charges one read transfer. Transient faults and checksum mismatches are
// retried per the disk's RetryPolicy; a permanent fault (or exhausted
// retries) surfaces as an error wrapping ErrIOFault or ErrBlockCorrupt.
func (d *Disk) ReadBlock(id BlockID, dst []byte) error {
	return d.readBlockCtx(nil, id, dst)
}

// readBlockCtx is ReadBlock with the retry backoff bound to ctx: once ctx
// is cancelled, the retry loop aborts with the context error instead of
// sleeping out its backoff. A nil ctx never cancels.
func (d *Disk) readBlockCtx(ctx context.Context, id BlockID, dst []byte) error {
	p := d.retryPolicy()
	bo := p.Backoff(d.jitter.Load())
	for attempt := 0; ; attempt++ {
		err := d.readBlockOnce(id, dst)
		if err == nil {
			return nil
		}
		if attempt >= p.MaxRetries || !retryable(err) {
			return err
		}
		d.readRetries.Add(1)
		if serr := sleepCtx(ctx, bo.Next()); serr != nil {
			return serr
		}
	}
}

// readBlockOnce performs one read attempt with checksum verification.
//
// The read lock is held across the backend access: it excludes Alloc/Free
// (which may move the backends' block tables) while still letting any
// number of block transfers proceed concurrently. It is NOT held across
// retry backoffs — a sleeping retry must never stall allocation.
func (d *Disk) readBlockOnce(id BlockID, dst []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkLocked(id); err != nil {
		return err
	}
	if len(dst) < d.blockSize {
		return fmt.Errorf("em: read buffer %d < block size %d", len(dst), d.blockSize)
	}
	if err := d.backend.read(id, dst); err != nil {
		return err
	}
	if d.checksums.Load() {
		if want := d.sums[id]; want&sumRecorded != 0 {
			if got := crc32.Checksum(dst[:d.blockSize], castagnoli); got != uint32(want) {
				d.checksumFails.Add(1)
				return fmt.Errorf("%w: block %d checksum mismatch (stored %08x, read %08x)",
					ErrBlockCorrupt, id, uint32(want), got)
			}
		}
	}
	d.reads.Add(1)
	return nil
}

// WriteBlock copies src (at most BlockSize bytes) into block id and charges
// one write transfer. Transient faults are retried per the disk's
// RetryPolicy; permanent faults surface wrapping ErrIOFault.
func (d *Disk) WriteBlock(id BlockID, src []byte) error {
	return d.writeBlockCtx(nil, id, src)
}

// writeBlockCtx is WriteBlock with the retry backoff bound to ctx (see
// readBlockCtx).
func (d *Disk) writeBlockCtx(ctx context.Context, id BlockID, src []byte) error {
	p := d.retryPolicy()
	bo := p.Backoff(d.jitter.Load())
	for attempt := 0; ; attempt++ {
		err := d.writeBlockOnce(id, src)
		if err == nil {
			return nil
		}
		if attempt >= p.MaxRetries || !retryable(err) {
			return err
		}
		d.writeRetries.Add(1)
		if serr := sleepCtx(ctx, bo.Next()); serr != nil {
			return serr
		}
	}
}

// writeBlockOnce performs one write attempt, recording the block's
// checksum on success. The checksum is of the content the caller intended
// — a torn write that persists damaged bytes is caught by the next read's
// verification, which is the point.
func (d *Disk) writeBlockOnce(id BlockID, src []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkLocked(id); err != nil {
		return err
	}
	if len(src) > d.blockSize {
		return fmt.Errorf("em: write of %d bytes exceeds block size %d", len(src), d.blockSize)
	}
	if err := d.backend.write(id, src); err != nil {
		return err
	}
	if d.checksums.Load() {
		// Concurrent writers to distinct blocks write distinct elements;
		// same-block concurrency is a caller bug (single-owner semantics).
		d.sums[id] = sumRecorded | uint64(crcPadded(src, d.blockSize))
	}
	d.writes.Add(1)
	return nil
}

// retryPolicy snapshots the current policy (zero value = never retry).
func (d *Disk) retryPolicy() RetryPolicy {
	if p := d.retry.Load(); p != nil {
		return *p
	}
	return RetryPolicy{}
}

// SetRetryPolicy installs the retry policy for transient faults and
// checksum mismatches on this disk's transfers. Safe to call at any time;
// in-flight transfers keep the policy they started with. A non-zero
// JitterSeed installs a fresh jitter stream seeded from it, shared by all
// of the disk's retry loops (RetryPolicy.JitterSeed).
func (d *Disk) SetRetryPolicy(p RetryPolicy) {
	if p.JitterSeed != 0 {
		d.jitter.Store(NewJitterSource(p.JitterSeed))
	} else {
		d.jitter.Store(nil)
	}
	d.retry.Store(&p)
}

// SetChecksums enables or disables CRC32C verification of block content.
// Writes performed while enabled record a checksum that reads verify;
// blocks written while disabled are served unverified (their checksum is
// unknown). Verification changes no transfer counts — checksums live in
// disk metadata, not in blocks, so the counted schedule stays
// bit-identical (DESIGN.md §11).
func (d *Disk) SetChecksums(on bool) { d.checksums.Store(on) }

// Checksums reports whether block reads verify CRC32C checksums.
func (d *Disk) Checksums() bool { return d.checksums.Load() }

// InjectFaults wraps the disk's backend with a deterministic fault
// injector driven by plan (DESIGN.md §11) — the chaos hook for tests and
// benchmarks. Calling it again replaces the previous injector (transfer
// indices restart at zero); injecting a zero plan effectively disarms it.
// An armed injector that fires nothing leaves the counted transfer
// schedule bit-identical to an uninstrumented disk.
func (d *Disk) InjectFaults(plan FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fb, ok := d.backend.(*faultBackend); ok {
		d.backend = fb.inner
	}
	d.backend = newFaultBackend(d.backend, plan)
}

// FaultStats returns the disk's fault-handling counters: retries and
// checksum failures (counted by the disk itself), plus the per-kind fired
// counts of the installed injector, if any.
func (d *Disk) FaultStats() FaultStats {
	fs := FaultStats{
		ReadRetries:      d.readRetries.Load(),
		WriteRetries:     d.writeRetries.Load(),
		ChecksumFailures: d.checksumFails.Load(),
	}
	d.mu.RLock()
	fb, ok := d.backend.(*faultBackend)
	d.mu.RUnlock()
	if ok {
		fs.InjectedTransient, fs.InjectedPermanent, fs.InjectedCorrupt, fs.InjectedTorn, fs.InjectedLatency = fb.stats()
	}
	return fs
}

// allocGen is Alloc plus the block's current free generation — the token
// a background write-behind must present to writeBlockGen.
func (d *Disk) allocGen() (BlockID, uint32) {
	id := d.Alloc()
	d.mu.RLock()
	g := d.gen[id]
	d.mu.RUnlock()
	return id, g
}

// writeBlockGen is WriteBlock gated on the free generation captured at
// allocation: a stale background write — its block freed, and possibly
// reallocated to a new owner, after the write was launched — is rejected
// under the same read lock that excludes Free, so it can never land on
// another file's data. Retries follow the disk's policy, with the
// generation revalidated on every attempt.
func (d *Disk) writeBlockGen(ctx context.Context, id BlockID, g uint32, src []byte) error {
	p := d.retryPolicy()
	bo := p.Backoff(d.jitter.Load())
	for attempt := 0; ; attempt++ {
		err := d.writeBlockGenOnce(id, g, src)
		if err == nil {
			return nil
		}
		if attempt >= p.MaxRetries || !retryable(err) {
			return err
		}
		d.writeRetries.Add(1)
		if serr := sleepCtx(ctx, bo.Next()); serr != nil {
			return serr
		}
	}
}

func (d *Disk) writeBlockGenOnce(id BlockID, g uint32, src []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkLocked(id); err != nil {
		return err
	}
	if d.gen[id] != g {
		return fmt.Errorf("%w: %d (stale background write)", ErrFreedBlock, id)
	}
	if len(src) > d.blockSize {
		return fmt.Errorf("em: write of %d bytes exceeds block size %d", len(src), d.blockSize)
	}
	if err := d.backend.write(id, src); err != nil {
		return err
	}
	if d.checksums.Load() {
		d.sums[id] = sumRecorded | uint64(crcPadded(src, d.blockSize))
	}
	d.writes.Add(1)
	return nil
}

// InUse returns the number of live (allocated, unfreed) blocks — useful for
// leak checks in tests. O(1): maintained incrementally by Alloc/Free.
func (d *Disk) InUse() int { return int(d.liveCount.Load()) }

func (d *Disk) checkLocked(id BlockID) error {
	if id < 0 || int(id) >= len(d.live) {
		return fmt.Errorf("%w: %d", ErrBadBlock, id)
	}
	if !d.live[id] {
		return fmt.Errorf("%w: %d", ErrFreedBlock, id)
	}
	return nil
}

// Env bundles the EM model parameters an algorithm runs under.
type Env struct {
	Disk *Disk
	M    int // main-memory budget in bytes

	// Scope, when non-nil, additionally receives every transfer charged by
	// streams created through this Env (Env.NewFile and the scoped reader
	// constructors). It lets one query's I/O be accounted separately while
	// the Disk's global counters keep the grand total.
	Scope *ScopeStats

	// Ctx, when non-nil, is the cancellation context of the work running
	// under this Env. Streams created through the Env (Env.NewFile,
	// OpenRecordReader) check it at block-transfer granularity: once the
	// context is cancelled, the next block read or write fails with
	// ctx.Err() instead of transferring, so a cancelled query stops within
	// one block-transfer's work on every layer built on these streams
	// (DESIGN.md §10). A nil Ctx never cancels.
	Ctx context.Context
}

// WithScope returns a copy of e whose streams charge sc on top of the
// disk-global counters.
func (e Env) WithScope(sc *ScopeStats) Env {
	e.Scope = sc
	return e
}

// WithContext returns a copy of e whose streams abort with ctx's error at
// block-transfer granularity once ctx is cancelled.
func (e Env) WithContext(ctx context.Context) Env {
	e.Ctx = ctx
	return e
}

// Err returns the env's context error: non-nil once the context is
// cancelled, always nil for an env without a context. Layers with long
// CPU-only stretches (sort, merge bookkeeping) call it between block
// transfers to honor cancellation promptly.
func (e Env) Err() error {
	if e.Ctx == nil {
		return nil
	}
	return e.Ctx.Err()
}

// NewFile returns an empty file on the env's disk whose streams charge the
// env's scope (if any) and honor the env's context (if any).
func (e Env) NewFile() *File { return &File{disk: e.Disk, scope: e.Scope, ctx: e.Ctx} }

// NewEnv validates and returns an Env with block size B and memory M, both
// in bytes.
func NewEnv(blockSize, memory int) (Env, error) {
	d, err := NewDisk(blockSize)
	if err != nil {
		return Env{}, err
	}
	if memory < 2*blockSize {
		return Env{}, ErrMemorySize
	}
	return Env{Disk: d, M: memory}, nil
}

// MustNewEnv is NewEnv for static configurations; it panics on error.
func MustNewEnv(blockSize, memory int) Env {
	e, err := NewEnv(blockSize, memory)
	if err != nil {
		panic(err)
	}
	return e
}

// B returns the block size in bytes.
func (e Env) B() int { return e.Disk.BlockSize() }

// MemBlocks returns M/B, the number of blocks that fit in memory.
func (e Env) MemBlocks() int { return e.M / e.B() }

// Validate reports configuration errors (nil Disk, M < 2B).
func (e Env) Validate() error {
	if e.Disk == nil {
		return errors.New("em: Env.Disk is nil")
	}
	if e.M < 2*e.B() {
		return ErrMemorySize
	}
	return nil
}
