package em

import (
	"context"
	"errors"
	"fmt"
	"io"
)

// File is a sequence of fixed-size blocks on a Disk holding a byte stream.
// Files are written once through a Writer and then read any number of times
// through Readers; this write-once discipline matches every use in the
// distribution-sweep algorithm (runs, slab files, spanning files).
type File struct {
	disk   *Disk
	scope  *ScopeStats     // default per-query attribution for streams on this file
	ctx    context.Context // default cancellation for streams on this file (nil = never)
	blocks []BlockID
	size   int64 // logical length in bytes
}

// ctxErr reports a context's cancellation; a nil context never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// NewFile returns an empty file on d.
func NewFile(d *Disk) *File { return &File{disk: d} }

// NewFileScoped returns an empty file on d whose readers and writers
// charge sc in addition to the disk-global counters. A nil sc is the same
// as NewFile.
func NewFileScoped(d *Disk, sc *ScopeStats) *File { return &File{disk: d, scope: sc} }

// Size returns the logical length in bytes.
func (f *File) Size() int64 { return f.size }

// Blocks returns the number of disk blocks the file occupies.
func (f *File) Blocks() int { return len(f.blocks) }

// Disk returns the device the file lives on.
func (f *File) Disk() *Disk { return f.disk }

// Release frees every block of the file. The file becomes empty and may be
// rewritten. Intermediate files (sort runs, per-level slab files) must be
// released promptly or large experiments exhaust process memory. A failed
// free never stops the sweep — every remaining block is still released and
// all failures come back joined, so one bad block cannot leak the rest.
func (f *File) Release() error {
	var errs []error
	for _, id := range f.blocks {
		if err := f.disk.Free(id); err != nil {
			errs = append(errs, err)
		}
	}
	f.blocks = nil
	f.size = 0
	return errors.Join(errs...)
}

// Writer appends bytes to a File through an in-memory block buffer. Every
// filled block costs one write transfer; Close flushes the final partial
// block.
//
// On a pipelined Disk (Disk.SetPipelining, DESIGN.md §8) the Writer runs
// write-behind: a filled block is handed to a short-lived background
// goroutine while the caller keeps filling a second buffer, overlapping
// the backend's write latency with record encoding. The transfer schedule
// — which blocks, how many, in what file order — is identical to the
// synchronous path; only wall-clock changes. A background write error
// surfaces on the next flush or at Close. The double buffer costs one
// extra block of the writer's memory budget.
type Writer struct {
	file   *File
	scope  *ScopeStats
	ctx    context.Context // abort before the next block write once cancelled
	buf    []byte
	n      int // bytes buffered
	closed bool
	wb     *writeBehind
}

// writeBehind is the write-behind state: the spare buffer the caller fills
// while the previous block is written in the background, and the in-flight
// write's completion channel (buffered, so an abandoned writer can never
// leak its goroutine).
type writeBehind struct {
	spare    []byte
	ch       chan error
	inflight bool
}

// NewWriter returns a Writer appending to f. f must be empty or previously
// written and not yet sealed; appending after readers exist is a logic error
// the caller must avoid (write-once discipline). Transfers are charged to
// the file's scope (if any) on top of the disk-global counters.
func (f *File) NewWriter() *Writer {
	w := &Writer{file: f, scope: f.scope, ctx: f.ctx, buf: make([]byte, f.disk.blockSize)}
	if f.disk.Pipelined() {
		w.wb = &writeBehind{spare: make([]byte, f.disk.blockSize), ch: make(chan error, 1)}
	}
	return w
}

// Write buffers p, flushing full blocks to disk. It never fails short.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	total := len(p)
	for len(p) > 0 {
		c := copy(w.buf[w.n:], p)
		w.n += c
		p = p[c:]
		if w.n == len(w.buf) {
			if err := w.flush(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (w *Writer) flush() error {
	if w.n == 0 {
		return nil
	}
	// The cancellation check sits at block granularity: a full buffer is
	// the unit of work, so a cancelled query stops before its next
	// transfer. The in-flight write-behind block (if any) still drains —
	// abandoning it mid-air is the leak the generation guard exists for,
	// not a latency win.
	if err := ctxErr(w.ctx); err != nil {
		return err
	}
	if err := w.awaitWrite(); err != nil {
		return err
	}
	if w.wb == nil {
		id := w.file.disk.Alloc()
		if err := w.file.disk.writeBlockCtx(w.ctx, id, w.buf[:w.n]); err != nil {
			// The block is not yet part of the file — freeing it here is
			// the only chance to reclaim it (Release won't see it).
			return errors.Join(err, w.file.disk.Free(id))
		}
		w.scope.addWrite()
		w.file.blocks = append(w.file.blocks, id)
		w.file.size += int64(w.n)
		w.n = 0
		return nil
	}
	id, gen := w.file.disk.allocGen()
	full := w.buf[:w.n]
	w.buf, w.wb.spare = w.wb.spare, w.buf
	w.wb.inflight = true
	go writeBehindBlock(w.ctx, w.file, id, gen, full, w.scope, w.wb.ch)
	w.file.blocks = append(w.file.blocks, id)
	w.file.size += int64(w.n)
	w.n = 0
	return nil
}

// awaitWrite drains the in-flight background write, if any.
func (w *Writer) awaitWrite() error {
	if w.wb == nil || !w.wb.inflight {
		return nil
	}
	w.wb.inflight = false
	return <-w.wb.ch
}

// writeBehindBlock is the one-shot write-behind goroutine body: it always
// terminates after a single transfer and a buffered send, so a Writer
// abandoned on an error path cannot leak it. The write is gated on the
// block generation captured at allocation (writeBlockGen), so if the
// abandoned writer's file was already released — and the block handed to
// a new owner — the stale write is rejected instead of corrupting it.
func writeBehindBlock(ctx context.Context, f *File, id BlockID, gen uint32, src []byte, sc *ScopeStats, ch chan<- error) {
	err := f.disk.writeBlockGen(ctx, id, gen, src)
	if err == nil {
		sc.addWrite()
		f.disk.pipeWrites.Add(1)
	}
	ch <- err
}

// Close flushes the final partial block and drains any in-flight
// background write. Further writes fail with ErrClosed.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flush(); err != nil {
		return err
	}
	return w.awaitWrite()
}

// Reader streams a File sequentially through an in-memory block buffer.
// Every block fetched costs one read transfer.
//
// On a pipelined Disk (Disk.SetPipelining, DESIGN.md §8) the Reader runs
// double-buffered read-ahead: while the caller consumes block k, a
// short-lived background goroutine fetches block k+1 into a spare buffer,
// overlapping the backend's read latency with record decoding. Read-ahead
// never fetches past the file's last block, and a fully consumed stream
// performs exactly the transfers of the synchronous path; only wall-clock
// changes. The double buffer costs one extra block of the reader's memory
// budget.
type Reader struct {
	file  *File
	scope *ScopeStats
	ctx   context.Context // abort before the next block fetch once cancelled
	buf   []byte
	next  int // next block index to fetch
	avail []byte
	off   int64 // bytes consumed so far
	pre   *prefetcher
}

// prefetcher is the read-ahead state: the spare buffer the background
// fetch fills and the in-flight fetch's completion channel (buffered, so
// an abandoned reader can never leak its goroutine).
type prefetcher struct {
	spare    []byte
	ch       chan error
	idx      int // block index the in-flight fetch targets
	inflight bool
}

// NewReader returns a Reader positioned at the start of f, charging
// transfers to the file's scope (if any).
func (f *File) NewReader() *Reader {
	r := &Reader{file: f, scope: f.scope, ctx: f.ctx, buf: make([]byte, f.disk.blockSize)}
	if f.disk.Pipelined() {
		r.pre = &prefetcher{spare: make([]byte, f.disk.blockSize), ch: make(chan error, 1)}
	}
	return r
}

// NewReaderScoped is NewReader with the transfer attribution overridden to
// sc — used to read a shared input file (e.g. a loaded dataset) on behalf
// of one query.
func (f *File) NewReaderScoped(sc *ScopeStats) *Reader {
	r := f.NewReader()
	r.scope = sc
	return r
}

// Read fills p from the stream, returning io.EOF at end of file.
func (r *Reader) Read(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if len(r.avail) == 0 {
			if err := r.fill(); err != nil {
				if total > 0 && err == io.EOF {
					return total, nil
				}
				return total, err
			}
		}
		c := copy(p, r.avail)
		r.avail = r.avail[c:]
		p = p[c:]
		total += c
		r.off += int64(c)
	}
	return total, nil
}

func (r *Reader) fill() error {
	if r.next >= len(r.file.blocks) {
		return io.EOF
	}
	// Block-granularity cancellation: stop before fetching (or consuming a
	// prefetch of) the next block. An in-flight prefetch goroutine is
	// one-shot with a buffered channel, so abandoning it here cannot leak
	// it; its block lands in a private buffer that is never consumed.
	if err := ctxErr(r.ctx); err != nil {
		return err
	}
	if r.pre != nil && r.pre.inflight && r.pre.idx == r.next {
		err := <-r.pre.ch
		r.pre.inflight = false
		if err != nil {
			return err
		}
		r.buf, r.pre.spare = r.pre.spare, r.buf
	} else {
		if err := r.file.disk.readBlockCtx(r.ctx, r.file.blocks[r.next], r.buf); err != nil {
			return err
		}
		r.scope.addRead()
	}
	// The final block may be partial.
	n := int64(r.file.disk.blockSize)
	if rem := r.file.size - int64(r.next)*n; rem < n {
		r.avail = r.buf[:rem]
	} else {
		r.avail = r.buf[:n]
	}
	r.next++
	if r.pre != nil && r.next < len(r.file.blocks) {
		r.pre.idx = r.next
		r.pre.inflight = true
		go prefetchBlock(r.ctx, r.file, r.file.blocks[r.next], r.pre.spare, r.scope, r.pre.ch)
	}
	return nil
}

// prefetchBlock is the one-shot read-ahead goroutine body: it always
// terminates after a single transfer and a buffered send, so a Reader
// abandoned mid-stream cannot leak it.
func prefetchBlock(ctx context.Context, f *File, id BlockID, dst []byte, sc *ScopeStats, ch chan<- error) {
	err := f.disk.readBlockCtx(ctx, id, dst)
	if err == nil {
		sc.addRead()
		f.disk.pipeReads.Add(1)
	}
	ch <- err
}

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int64 { return r.off }

// Codec serializes records of type T at a fixed byte size. Implementations
// must be stateless.
type Codec[T any] interface {
	Size() int
	Encode(dst []byte, v T)
	Decode(src []byte) T
}

// RecordWriter writes fixed-size records of type T to a File.
type RecordWriter[T any] struct {
	w     *Writer
	codec Codec[T]
	buf   []byte
	count int64
}

// NewRecordWriter returns a RecordWriter appending to f with codec c.
func NewRecordWriter[T any](f *File, c Codec[T]) (*RecordWriter[T], error) {
	if c.Size() <= 0 || c.Size() > f.disk.blockSize {
		return nil, fmt.Errorf("%w: record %dB, block %dB", ErrRecordSize, c.Size(), f.disk.blockSize)
	}
	return &RecordWriter[T]{w: f.NewWriter(), codec: c, buf: make([]byte, c.Size())}, nil
}

// OpenRecordWriter returns a writer appending to f charging transfers to
// env's scope and aborting at block-transfer granularity once env's
// context is cancelled. It is the way to write a long-lived shared file (a
// dataset being loaded or compacted) under a caller-bounded context
// without stamping that context onto the file itself — readers opened on
// the file later are unaffected. Files created through Env.NewFile carry
// the scope and context already.
func OpenRecordWriter[T any](env Env, f *File, c Codec[T]) (*RecordWriter[T], error) {
	rw, err := NewRecordWriter(f, c)
	if err != nil {
		return nil, err
	}
	rw.w.scope = env.Scope
	if env.Ctx != nil {
		rw.w.ctx = env.Ctx
	}
	return rw, nil
}

// Write appends one record.
func (rw *RecordWriter[T]) Write(v T) error {
	rw.codec.Encode(rw.buf, v)
	if _, err := rw.w.Write(rw.buf); err != nil {
		return err
	}
	rw.count++
	return nil
}

// WriteBatch appends every record of vs. Unlike repeated Write calls, each
// record is encoded directly into the writer's block buffer, paying the
// staging-buffer copy only for the rare record that straddles a block
// boundary. Transfer counts are identical to the equivalent Write sequence.
func (rw *RecordWriter[T]) WriteBatch(vs []T) error {
	w := rw.w
	if w.closed {
		return ErrClosed
	}
	size := rw.codec.Size()
	for _, v := range vs {
		if rem := len(w.buf) - w.n; rem >= size {
			rw.codec.Encode(w.buf[w.n:w.n+size], v)
			w.n += size
			if w.n == len(w.buf) {
				if err := w.flush(); err != nil {
					return err
				}
			}
		} else {
			rw.codec.Encode(rw.buf, v)
			if _, err := w.Write(rw.buf); err != nil {
				return err
			}
		}
		rw.count++
	}
	return nil
}

// Count returns the number of records written so far.
func (rw *RecordWriter[T]) Count() int64 { return rw.count }

// Close flushes the final partial block.
func (rw *RecordWriter[T]) Close() error { return rw.w.Close() }

// RecordReader streams fixed-size records of type T from a File.
type RecordReader[T any] struct {
	r     *Reader
	codec Codec[T]
	buf   []byte
}

// NewRecordReader returns a reader positioned at the first record of f.
func NewRecordReader[T any](f *File, c Codec[T]) (*RecordReader[T], error) {
	if c.Size() <= 0 || c.Size() > f.disk.blockSize {
		return nil, fmt.Errorf("%w: record %dB, block %dB", ErrRecordSize, c.Size(), f.disk.blockSize)
	}
	return &RecordReader[T]{r: f.NewReader(), codec: c, buf: make([]byte, c.Size())}, nil
}

// NewRecordReaderScoped is NewRecordReader with the transfer attribution
// overridden to sc (see File.NewReaderScoped).
func NewRecordReaderScoped[T any](f *File, c Codec[T], sc *ScopeStats) (*RecordReader[T], error) {
	rr, err := NewRecordReader(f, c)
	if err != nil {
		return nil, err
	}
	rr.r.scope = sc
	return rr, nil
}

// OpenRecordReader returns a reader on f charging transfers to env's scope
// and aborting at block-transfer granularity once env's context is
// cancelled. It is the way to read a pre-existing shared file (a loaded
// dataset) on behalf of one query; files created through Env.NewFile carry
// the scope and context already.
func OpenRecordReader[T any](env Env, f *File, c Codec[T]) (*RecordReader[T], error) {
	rr, err := NewRecordReader(f, c)
	if err != nil {
		return nil, err
	}
	rr.r.scope = env.Scope
	if env.Ctx != nil {
		rr.r.ctx = env.Ctx
	}
	return rr, nil
}

// Read returns the next record, or io.EOF after the last one.
func (rr *RecordReader[T]) Read() (T, error) {
	var zero T
	n, err := rr.r.Read(rr.buf)
	if err != nil {
		return zero, err
	}
	if n != len(rr.buf) {
		return zero, fmt.Errorf("em: truncated record: got %d of %d bytes", n, len(rr.buf))
	}
	return rr.codec.Decode(rr.buf), nil
}

// ReadBatch fills dst with up to len(dst) records and returns how many it
// read. At end of file it returns the records remaining (possibly 0) and
// io.EOF. Records are decoded directly from the reader's block buffer; the
// staging-buffer copy is paid only by records straddling a block boundary.
// Transfer counts are identical to the equivalent Read sequence.
func (rr *RecordReader[T]) ReadBatch(dst []T) (int, error) {
	size := rr.codec.Size()
	r := rr.r
	n := 0
	for n < len(dst) {
		if len(r.avail) >= size {
			dst[n] = rr.codec.Decode(r.avail[:size])
			r.avail = r.avail[size:]
			r.off += int64(size)
			n++
			continue
		}
		if len(r.avail) == 0 {
			if err := r.fill(); err != nil {
				return n, err // io.EOF at a record boundary
			}
			continue
		}
		// The next record straddles a block boundary; reassemble it in the
		// staging buffer.
		m, err := r.Read(rr.buf)
		if err != nil {
			return n, err
		}
		if m != size {
			return n, fmt.Errorf("em: truncated record: got %d of %d bytes", m, size)
		}
		dst[n] = rr.codec.Decode(rr.buf)
		n++
	}
	return n, nil
}

// RecordCount returns how many records of size recSize fit in f.
func RecordCount(f *File, recSize int) int64 {
	if recSize <= 0 {
		return 0
	}
	return f.Size() / int64(recSize)
}

// WriteAll writes every record of vs to a fresh file on d and returns it.
// Convenience for tests and data loading.
func WriteAll[T any](d *Disk, c Codec[T], vs []T) (*File, error) {
	return writeAll(&File{disk: d}, c, vs)
}

// WriteAllScoped is WriteAll with the transfers (and those of future
// streams on the returned file) charged to sc.
func WriteAllScoped[T any](d *Disk, sc *ScopeStats, c Codec[T], vs []T) (*File, error) {
	return writeAll(NewFileScoped(d, sc), c, vs)
}

// WriteAllEnv is WriteAll on a file created through env, so the transfers
// charge env's scope and the writes abort once env's context is cancelled.
func WriteAllEnv[T any](env Env, c Codec[T], vs []T) (*File, error) {
	return writeAll(env.NewFile(), c, vs)
}

// writeAll fills f with vs, releasing the partial output on every error —
// without this, an error mid-write (a cancelled context, a full backing
// file) would strand the blocks already flushed.
func writeAll[T any](f *File, c Codec[T], vs []T) (_ *File, err error) {
	defer func() {
		if err != nil {
			_ = f.Release()
		}
	}()
	w, err := NewRecordWriter(f, c)
	if err != nil {
		return nil, err
	}
	if err := w.WriteBatch(vs); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadAll materializes every record of f. Only for tests and small files —
// production code streams.
func ReadAll[T any](f *File, c Codec[T]) ([]T, error) {
	return ReadAllScoped(f, c, f.scope)
}

// ReadAllEnv is ReadAll with the reads charged to env's scope and aborted
// once env's context is cancelled.
func ReadAllEnv[T any](env Env, f *File, c Codec[T]) ([]T, error) {
	rr, err := OpenRecordReader(env, f, c)
	if err != nil {
		return nil, err
	}
	return readAll(rr, f, c)
}

// ReadAllScoped is ReadAll with the read transfers charged to sc.
func ReadAllScoped[T any](f *File, c Codec[T], sc *ScopeStats) ([]T, error) {
	rr, err := NewRecordReaderScoped(f, c, sc)
	if err != nil {
		return nil, err
	}
	return readAll(rr, f, c)
}

func readAll[T any](rr *RecordReader[T], f *File, c Codec[T]) ([]T, error) {
	out := make([]T, 0, RecordCount(f, c.Size()))
	batch := make([]T, 256)
	for {
		n, err := rr.ReadBatch(batch)
		out = append(out, batch[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
