package em

import (
	"fmt"
	"io"
)

// File is a sequence of fixed-size blocks on a Disk holding a byte stream.
// Files are written once through a Writer and then read any number of times
// through Readers; this write-once discipline matches every use in the
// distribution-sweep algorithm (runs, slab files, spanning files).
type File struct {
	disk   *Disk
	scope  *ScopeStats // default per-query attribution for streams on this file
	blocks []BlockID
	size   int64 // logical length in bytes
}

// NewFile returns an empty file on d.
func NewFile(d *Disk) *File { return &File{disk: d} }

// NewFileScoped returns an empty file on d whose readers and writers
// charge sc in addition to the disk-global counters. A nil sc is the same
// as NewFile.
func NewFileScoped(d *Disk, sc *ScopeStats) *File { return &File{disk: d, scope: sc} }

// Size returns the logical length in bytes.
func (f *File) Size() int64 { return f.size }

// Blocks returns the number of disk blocks the file occupies.
func (f *File) Blocks() int { return len(f.blocks) }

// Disk returns the device the file lives on.
func (f *File) Disk() *Disk { return f.disk }

// Release frees every block of the file. The file becomes empty and may be
// rewritten. Intermediate files (sort runs, per-level slab files) must be
// released promptly or large experiments exhaust process memory.
func (f *File) Release() error {
	for _, id := range f.blocks {
		if err := f.disk.Free(id); err != nil {
			return err
		}
	}
	f.blocks = nil
	f.size = 0
	return nil
}

// Writer appends bytes to a File through a single in-memory block buffer
// (one block of the writer's memory budget). Every filled block costs one
// write transfer; Close flushes the final partial block.
type Writer struct {
	file   *File
	scope  *ScopeStats
	buf    []byte
	n      int // bytes buffered
	closed bool
}

// NewWriter returns a Writer appending to f. f must be empty or previously
// written and not yet sealed; appending after readers exist is a logic error
// the caller must avoid (write-once discipline). Transfers are charged to
// the file's scope (if any) on top of the disk-global counters.
func (f *File) NewWriter() *Writer {
	return &Writer{file: f, scope: f.scope, buf: make([]byte, f.disk.blockSize)}
}

// Write buffers p, flushing full blocks to disk. It never fails short.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	total := len(p)
	for len(p) > 0 {
		c := copy(w.buf[w.n:], p)
		w.n += c
		p = p[c:]
		if w.n == len(w.buf) {
			if err := w.flush(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (w *Writer) flush() error {
	if w.n == 0 {
		return nil
	}
	id := w.file.disk.Alloc()
	if err := w.file.disk.WriteBlock(id, w.buf[:w.n]); err != nil {
		return err
	}
	w.scope.addWrite()
	w.file.blocks = append(w.file.blocks, id)
	w.file.size += int64(w.n)
	w.n = 0
	return nil
}

// Close flushes the final partial block. Further writes fail with ErrClosed.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flush()
}

// Reader streams a File sequentially through a single in-memory block
// buffer. Every block fetched costs one read transfer.
type Reader struct {
	file  *File
	scope *ScopeStats
	buf   []byte
	next  int // next block index to fetch
	avail []byte
	off   int64 // bytes consumed so far
}

// NewReader returns a Reader positioned at the start of f, charging
// transfers to the file's scope (if any).
func (f *File) NewReader() *Reader {
	return &Reader{file: f, scope: f.scope, buf: make([]byte, f.disk.blockSize)}
}

// NewReaderScoped is NewReader with the transfer attribution overridden to
// sc — used to read a shared input file (e.g. a loaded dataset) on behalf
// of one query.
func (f *File) NewReaderScoped(sc *ScopeStats) *Reader {
	r := f.NewReader()
	r.scope = sc
	return r
}

// Read fills p from the stream, returning io.EOF at end of file.
func (r *Reader) Read(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if len(r.avail) == 0 {
			if err := r.fill(); err != nil {
				if total > 0 && err == io.EOF {
					return total, nil
				}
				return total, err
			}
		}
		c := copy(p, r.avail)
		r.avail = r.avail[c:]
		p = p[c:]
		total += c
		r.off += int64(c)
	}
	return total, nil
}

func (r *Reader) fill() error {
	if r.next >= len(r.file.blocks) {
		return io.EOF
	}
	if err := r.file.disk.ReadBlock(r.file.blocks[r.next], r.buf); err != nil {
		return err
	}
	r.scope.addRead()
	// The final block may be partial.
	n := int64(r.file.disk.blockSize)
	if rem := r.file.size - int64(r.next)*n; rem < n {
		r.avail = r.buf[:rem]
	} else {
		r.avail = r.buf[:n]
	}
	r.next++
	return nil
}

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int64 { return r.off }

// Codec serializes records of type T at a fixed byte size. Implementations
// must be stateless.
type Codec[T any] interface {
	Size() int
	Encode(dst []byte, v T)
	Decode(src []byte) T
}

// RecordWriter writes fixed-size records of type T to a File.
type RecordWriter[T any] struct {
	w     *Writer
	codec Codec[T]
	buf   []byte
	count int64
}

// NewRecordWriter returns a RecordWriter appending to f with codec c.
func NewRecordWriter[T any](f *File, c Codec[T]) (*RecordWriter[T], error) {
	if c.Size() <= 0 || c.Size() > f.disk.blockSize {
		return nil, fmt.Errorf("%w: record %dB, block %dB", ErrRecordSize, c.Size(), f.disk.blockSize)
	}
	return &RecordWriter[T]{w: f.NewWriter(), codec: c, buf: make([]byte, c.Size())}, nil
}

// Write appends one record.
func (rw *RecordWriter[T]) Write(v T) error {
	rw.codec.Encode(rw.buf, v)
	if _, err := rw.w.Write(rw.buf); err != nil {
		return err
	}
	rw.count++
	return nil
}

// WriteBatch appends every record of vs. Unlike repeated Write calls, each
// record is encoded directly into the writer's block buffer, paying the
// staging-buffer copy only for the rare record that straddles a block
// boundary. Transfer counts are identical to the equivalent Write sequence.
func (rw *RecordWriter[T]) WriteBatch(vs []T) error {
	w := rw.w
	if w.closed {
		return ErrClosed
	}
	size := rw.codec.Size()
	for _, v := range vs {
		if rem := len(w.buf) - w.n; rem >= size {
			rw.codec.Encode(w.buf[w.n:w.n+size], v)
			w.n += size
			if w.n == len(w.buf) {
				if err := w.flush(); err != nil {
					return err
				}
			}
		} else {
			rw.codec.Encode(rw.buf, v)
			if _, err := w.Write(rw.buf); err != nil {
				return err
			}
		}
		rw.count++
	}
	return nil
}

// Count returns the number of records written so far.
func (rw *RecordWriter[T]) Count() int64 { return rw.count }

// Close flushes the final partial block.
func (rw *RecordWriter[T]) Close() error { return rw.w.Close() }

// RecordReader streams fixed-size records of type T from a File.
type RecordReader[T any] struct {
	r     *Reader
	codec Codec[T]
	buf   []byte
}

// NewRecordReader returns a reader positioned at the first record of f.
func NewRecordReader[T any](f *File, c Codec[T]) (*RecordReader[T], error) {
	if c.Size() <= 0 || c.Size() > f.disk.blockSize {
		return nil, fmt.Errorf("%w: record %dB, block %dB", ErrRecordSize, c.Size(), f.disk.blockSize)
	}
	return &RecordReader[T]{r: f.NewReader(), codec: c, buf: make([]byte, c.Size())}, nil
}

// NewRecordReaderScoped is NewRecordReader with the transfer attribution
// overridden to sc (see File.NewReaderScoped).
func NewRecordReaderScoped[T any](f *File, c Codec[T], sc *ScopeStats) (*RecordReader[T], error) {
	rr, err := NewRecordReader(f, c)
	if err != nil {
		return nil, err
	}
	rr.r.scope = sc
	return rr, nil
}

// Read returns the next record, or io.EOF after the last one.
func (rr *RecordReader[T]) Read() (T, error) {
	var zero T
	n, err := rr.r.Read(rr.buf)
	if err != nil {
		return zero, err
	}
	if n != len(rr.buf) {
		return zero, fmt.Errorf("em: truncated record: got %d of %d bytes", n, len(rr.buf))
	}
	return rr.codec.Decode(rr.buf), nil
}

// ReadBatch fills dst with up to len(dst) records and returns how many it
// read. At end of file it returns the records remaining (possibly 0) and
// io.EOF. Records are decoded directly from the reader's block buffer; the
// staging-buffer copy is paid only by records straddling a block boundary.
// Transfer counts are identical to the equivalent Read sequence.
func (rr *RecordReader[T]) ReadBatch(dst []T) (int, error) {
	size := rr.codec.Size()
	r := rr.r
	n := 0
	for n < len(dst) {
		if len(r.avail) >= size {
			dst[n] = rr.codec.Decode(r.avail[:size])
			r.avail = r.avail[size:]
			r.off += int64(size)
			n++
			continue
		}
		if len(r.avail) == 0 {
			if err := r.fill(); err != nil {
				return n, err // io.EOF at a record boundary
			}
			continue
		}
		// The next record straddles a block boundary; reassemble it in the
		// staging buffer.
		m, err := r.Read(rr.buf)
		if err != nil {
			return n, err
		}
		if m != size {
			return n, fmt.Errorf("em: truncated record: got %d of %d bytes", m, size)
		}
		dst[n] = rr.codec.Decode(rr.buf)
		n++
	}
	return n, nil
}

// RecordCount returns how many records of size recSize fit in f.
func RecordCount(f *File, recSize int) int64 {
	if recSize <= 0 {
		return 0
	}
	return f.Size() / int64(recSize)
}

// WriteAll writes every record of vs to a fresh file on d and returns it.
// Convenience for tests and data loading.
func WriteAll[T any](d *Disk, c Codec[T], vs []T) (*File, error) {
	return WriteAllScoped(d, nil, c, vs)
}

// WriteAllScoped is WriteAll with the transfers (and those of future
// streams on the returned file) charged to sc.
func WriteAllScoped[T any](d *Disk, sc *ScopeStats, c Codec[T], vs []T) (*File, error) {
	f := NewFileScoped(d, sc)
	w, err := NewRecordWriter(f, c)
	if err != nil {
		return nil, err
	}
	if err := w.WriteBatch(vs); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadAll materializes every record of f. Only for tests and small files —
// production code streams.
func ReadAll[T any](f *File, c Codec[T]) ([]T, error) {
	return ReadAllScoped(f, c, f.scope)
}

// ReadAllScoped is ReadAll with the read transfers charged to sc.
func ReadAllScoped[T any](f *File, c Codec[T], sc *ScopeStats) ([]T, error) {
	rr, err := NewRecordReaderScoped(f, c, sc)
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, RecordCount(f, c.Size()))
	batch := make([]T, 256)
	for {
		n, err := rr.ReadBatch(batch)
		out = append(out, batch[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
