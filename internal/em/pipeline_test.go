package em

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// pipelineDisks returns a synchronous and a pipelined disk of the same
// kind, for count-equivalence comparisons.
func pipelineDisks(t *testing.T, blockSize int, fileBacked bool) (sync, pipe *Disk) {
	t.Helper()
	mk := func() *Disk {
		if fileBacked {
			d, err := NewFileBackedDisk(t.TempDir(), blockSize)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = d.Close() })
			return d
		}
		return MustNewDisk(blockSize)
	}
	sync, pipe = mk(), mk()
	sync.SetPipelining(false)
	pipe.SetPipelining(true)
	return sync, pipe
}

// TestPipelineCountsIdentical is the contract of DESIGN.md §8: for fully
// consumed streams, prefetch and write-behind change wall-clock only —
// bytes, Stats, and per-scope attribution are identical to the
// synchronous path, on both backends.
func TestPipelineCountsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, fileBacked := range []bool{false, true} {
		for _, size := range []int{0, 1, 100, 256, 257, 10_000} {
			data := make([]byte, size)
			rng.Read(data)
			results := make([]struct {
				out   []byte
				stats Stats
				scope Stats
			}, 2)
			syncD, pipeD := pipelineDisks(t, 256, fileBacked)
			for i, d := range []*Disk{syncD, pipeD} {
				sc := new(ScopeStats)
				f := NewFileScoped(d, sc)
				w := f.NewWriter()
				// Dribble writes so flush boundaries land mid-Write too.
				for off := 0; off < len(data); off += 97 {
					end := min(off+97, len(data))
					if _, err := w.Write(data[off:end]); err != nil {
						t.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				r := f.NewReader()
				out, err := io.ReadAll(readerOf(r))
				if err != nil {
					t.Fatal(err)
				}
				results[i].out = out
				results[i].stats = d.Stats()
				results[i].scope = sc.Stats()
			}
			if !bytes.Equal(results[0].out, results[1].out) {
				t.Fatalf("fileBacked=%v size=%d: pipelined bytes differ", fileBacked, size)
			}
			if results[0].stats != results[1].stats {
				t.Fatalf("fileBacked=%v size=%d: stats %+v != synchronous %+v",
					fileBacked, size, results[1].stats, results[0].stats)
			}
			if results[0].scope != results[1].scope {
				t.Fatalf("fileBacked=%v size=%d: scope %+v != synchronous %+v",
					fileBacked, size, results[1].scope, results[0].scope)
			}
			// The pipelined disk must actually have used the background
			// path (every block beyond the first read and the last write
			// rides it on a fully consumed stream).
			if size > 2*256 {
				pr, pw := pipeD.PipelineStats()
				if pr == 0 || pw == 0 {
					t.Fatalf("fileBacked=%v size=%d: pipeline unused (reads=%d writes=%d)",
						fileBacked, size, pr, pw)
				}
				if sr, sw := syncD.PipelineStats(); sr != 0 || sw != 0 {
					t.Fatalf("synchronous disk reports pipeline transfers (%d, %d)", sr, sw)
				}
			}
		}
	}
}

// readerOf adapts *Reader to io.Reader for io.ReadAll.
func readerOf(r *Reader) io.Reader { return readerFunc(r.Read) }

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

// TestPipelineConcurrentStreams runs many pipelined writers and readers
// against one file-backed disk — the parallel solver's usage — under the
// race detector.
func TestPipelineConcurrentStreams(t *testing.T) {
	d, err := NewFileBackedDisk(t.TempDir(), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 20; iter++ {
				data := make([]byte, rng.Intn(2000))
				rng.Read(data)
				f := NewFile(d)
				w := f.NewWriter()
				if _, err := w.Write(data); err != nil {
					errs[g] = err
					return
				}
				if err := w.Close(); err != nil {
					errs[g] = err
					return
				}
				got, err := io.ReadAll(readerOf(f.NewReader()))
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(got, data) {
					errs[g] = fmt.Errorf("g=%d iter=%d: read back %d bytes != written %d", g, iter, len(got), len(data))
					return
				}
				if err := f.Release(); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.InUse() != 0 {
		t.Fatalf("%d blocks leaked", d.InUse())
	}
}

// TestPipelineAbandonedStreams drops readers mid-file and writers without
// Close: the one-shot goroutine design must neither deadlock nor corrupt
// later use of the disk (a leaked goroutine would trip -race or hang the
// test binary's exit).
func TestPipelineAbandonedStreams(t *testing.T) {
	d := MustNewDisk(64)
	d.SetPipelining(true)
	data := make([]byte, 64*10)
	rand.New(rand.NewSource(1)).Read(data)
	f := NewFile(d)
	w := f.NewWriter()
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Abandon a reader after one block: its in-flight prefetch completes
	// into the buffered channel and is dropped.
	r := f.NewReader()
	one := make([]byte, 64)
	if _, err := r.Read(one); err != nil {
		t.Fatal(err)
	}
	// Abandon a writer with an in-flight flush (no Close).
	f2 := NewFile(d)
	w2 := f2.NewWriter()
	if _, err := w2.Write(data); err != nil {
		t.Fatal(err)
	}
	// Fresh streams on the same disk still work.
	got, err := io.ReadAll(readerOf(f.NewReader()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch after abandoned streams")
	}
}

// TestStaleWriteBehindRejected pins the generation guard: a write-behind
// launched before its block was freed — the abandoned-writer-on-an-error-
// path scenario — must not land once the block has been reallocated to a
// new owner, even though the id passes the live check again.
func TestStaleWriteBehindRejected(t *testing.T) {
	d := MustNewDisk(64)
	id, gen := d.allocGen()
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	// Reallocate: the free list hands the same id to a new owner.
	id2 := d.Alloc()
	if id2 != id {
		t.Fatalf("expected free-list reuse of block %d, got %d", id, id2)
	}
	owner := make([]byte, 64)
	for i := range owner {
		owner[i] = 0xAB
	}
	if err := d.WriteBlock(id2, owner); err != nil {
		t.Fatal(err)
	}
	// The stale write must be rejected...
	stale := make([]byte, 64)
	if err := d.writeBlockGen(nil, id, gen, stale); err == nil {
		t.Fatal("stale background write landed on a reallocated block")
	}
	// ...leaving the new owner's data intact, while the current
	// generation still writes fine.
	got := make([]byte, 64)
	if err := d.ReadBlock(id2, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, new owner's data corrupted", i, b)
		}
	}
	id3, gen3 := d.allocGen()
	if err := d.writeBlockGen(nil, id3, gen3, owner); err != nil {
		t.Fatalf("current-generation write rejected: %v", err)
	}
}

// TestBufferPoolFrameReuse checks the recycled-frame contract: once the
// pool has evicted a frame, subsequent misses reuse its slice, and GetNew
// frames start zeroed even when recycled.
func TestBufferPoolFrameReuse(t *testing.T) {
	d := MustNewDisk(64)
	ids := make([]BlockID, 4)
	buf := make([]byte, 64)
	for i := range ids {
		ids[i] = d.Alloc()
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		if err := d.WriteBlock(ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewBufferPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Touch all four blocks: two evictions occur, so two slices recycle.
	var seen []*byte
	for _, id := range ids {
		data, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] == 0 {
			t.Fatalf("block %d read back zero", id)
		}
		seen = append(seen, &data[0])
	}
	// The miss for ids[3] follows the pool's first eviction (triggered
	// while inserting ids[2]) and must recycle that frame's slice.
	if seen[3] != seen[0] && seen[3] != seen[1] {
		t.Error("miss after an eviction did not recycle the evicted frame slice")
	}
	// A recycled GetNew frame must be zeroed despite the dirty reuse.
	id := d.Alloc()
	data, err := p.GetNew(id)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != 0 {
			t.Fatalf("GetNew frame byte %d = %d, want 0", i, b)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}
