package em

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func TestFileBackedDiskRoundTrip(t *testing.T) {
	d, err := NewFileBackedDisk(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	f := NewFile(d)
	w := f.NewWriter()
	payload := bytes.Repeat([]byte("external-memory!"), 50)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f.NewReader())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("file-backed round trip mismatch")
	}
	// Transfer accounting identical to the in-memory backend.
	want := uint64((len(payload) + 63) / 64)
	if s := d.Stats(); s.Writes != want || s.Reads != want {
		t.Fatalf("stats = %v, want %d each way", s, want)
	}
}

func TestFileBackedDiskReuseZeroesBlocks(t *testing.T) {
	d, err := NewFileBackedDisk(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := d.Alloc()
	if err := d.WriteBlock(id, bytes.Repeat([]byte{0xFF}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	id2 := d.Alloc()
	if id2 != id {
		t.Fatalf("expected block reuse, got %d vs %d", id2, id)
	}
	buf := make([]byte, 32)
	if err := d.ReadBlock(id2, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("reused block not zeroed at %d: %#x", i, b)
		}
	}
}

func TestFileBackedDiskPartialWriteZeroPads(t *testing.T) {
	d, err := NewFileBackedDisk(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := d.Alloc()
	if err := d.WriteBlock(id, bytes.Repeat([]byte{0xAA}, 16)); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(id, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{1, 2, 3}, make([]byte, 13)...)
	if !bytes.Equal(buf, want) {
		t.Fatalf("partial write not zero-padded: %v", buf)
	}
}

// The two backends must be observably identical: same data, same stats,
// for a randomized workload of allocs, frees, reads and writes.
func TestBackendsEquivalent(t *testing.T) {
	mem := MustNewDisk(32)
	file, err := NewFileBackedDisk(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()

	rng := rand.New(rand.NewSource(44))
	var ids []BlockID
	for op := 0; op < 500; op++ {
		switch {
		case len(ids) == 0 || rng.Float64() < 0.3:
			a, b := mem.Alloc(), file.Alloc()
			if a != b {
				t.Fatalf("alloc divergence: %d vs %d", a, b)
			}
			ids = append(ids, a)
		case rng.Float64() < 0.2:
			i := rng.Intn(len(ids))
			id := ids[i]
			ids = append(ids[:i], ids[i+1:]...)
			if err := mem.Free(id); err != nil {
				t.Fatal(err)
			}
			if err := file.Free(id); err != nil {
				t.Fatal(err)
			}
		case rng.Float64() < 0.5:
			id := ids[rng.Intn(len(ids))]
			data := make([]byte, rng.Intn(33))
			rng.Read(data)
			if err := mem.WriteBlock(id, data); err != nil {
				t.Fatal(err)
			}
			if err := file.WriteBlock(id, data); err != nil {
				t.Fatal(err)
			}
		default:
			id := ids[rng.Intn(len(ids))]
			a := make([]byte, 32)
			b := make([]byte, 32)
			if err := mem.ReadBlock(id, a); err != nil {
				t.Fatal(err)
			}
			if err := file.ReadBlock(id, b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("content divergence on block %d", id)
			}
		}
	}
	if mem.Stats() != file.Stats() {
		t.Fatalf("stats divergence: %v vs %v", mem.Stats(), file.Stats())
	}
	if mem.InUse() != file.InUse() {
		t.Fatalf("InUse divergence: %d vs %d", mem.InUse(), file.InUse())
	}
}

func TestFileBackedDiskValidation(t *testing.T) {
	if _, err := NewFileBackedDisk("", 0); err == nil {
		t.Fatal("zero block size must fail")
	}
}
