package em

import "sync/atomic"

// ScopeStats tallies the block transfers of one logical unit of work — a
// query — on top of the disk-global Stats. A scope is attached to an Env
// (Env.WithScope) or to individual streams (NewFileScoped,
// NewRecordReaderScoped); every transfer performed through a scoped stream
// is charged both to the disk's global counters and to the scope. Safe for
// concurrent use; a nil *ScopeStats is valid and charges nothing, so
// unscoped code paths pay only a nil check.
type ScopeStats struct {
	reads  atomic.Uint64
	writes atomic.Uint64
}

func (s *ScopeStats) addRead() {
	if s != nil {
		s.reads.Add(1)
	}
}

func (s *ScopeStats) addWrite() {
	if s != nil {
		s.writes.Add(1)
	}
}

// Add charges a batch of transfers performed outside the scope's own
// streams — e.g. a sharded query's traffic on its ephemeral per-shard
// disks — so the scope stays the complete per-query tally. Safe for
// concurrent use; a nil receiver charges nothing.
func (s *ScopeStats) Add(st Stats) {
	if s == nil {
		return
	}
	s.reads.Add(st.Reads)
	s.writes.Add(st.Writes)
}

// Stats returns the transfers charged to the scope so far.
func (s *ScopeStats) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{Reads: s.reads.Load(), Writes: s.writes.Load()}
}
