package em

import "sync/atomic"

// ScopeStats tallies the block transfers of one logical unit of work — a
// query — on top of the disk-global Stats. A scope is attached to an Env
// (Env.WithScope) or to individual streams (NewFileScoped,
// NewRecordReaderScoped); every transfer performed through a scoped stream
// is charged both to the disk's global counters and to the scope. Safe for
// concurrent use; a nil *ScopeStats is valid and charges nothing, so
// unscoped code paths pay only a nil check.
type ScopeStats struct {
	reads  atomic.Uint64
	writes atomic.Uint64
}

func (s *ScopeStats) addRead() {
	if s != nil {
		s.reads.Add(1)
	}
}

func (s *ScopeStats) addWrite() {
	if s != nil {
		s.writes.Add(1)
	}
}

// Stats returns the transfers charged to the scope so far.
func (s *ScopeStats) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{Reads: s.reads.Load(), Writes: s.writes.Load()}
}
