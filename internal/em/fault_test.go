package em

import (
	"context"
	"errors"
	"testing"
	"time"
)

// faultDisk returns an in-memory disk with retries, checksums, and the
// given plan armed — the standard hardened configuration under test.
func faultDisk(t *testing.T, plan FaultPlan) *Disk {
	t.Helper()
	d := MustNewDisk(64)
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 3})
	d.SetChecksums(true)
	d.InjectFaults(plan)
	return d
}

// TestTransientFaultRetried checks that a transient fault at an exact
// transfer index is retried and recovered, with the retry counted
// separately from the successful transfer.
func TestTransientFaultRetried(t *testing.T) {
	d := faultDisk(t, FaultPlan{At: []FaultAt{
		{Op: OpRead, Transfer: 2, Kind: FaultTransient},
		{Op: OpWrite, Transfer: 1, Kind: FaultTransient},
	}})
	id := d.Alloc()
	src := []byte("payload")
	if err := d.WriteBlock(id, src); err != nil {
		t.Fatalf("write through transient fault: %v", err)
	}
	buf := make([]byte, 64)
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("read through transient fault: %v", err)
	}
	if string(buf[:len(src)]) != string(src) {
		t.Fatalf("recovered read returned %q, want %q", buf[:len(src)], src)
	}
	fs := d.FaultStats()
	if fs.ReadRetries != 1 || fs.WriteRetries != 1 {
		t.Fatalf("retries = (%d,%d), want (1,1)", fs.ReadRetries, fs.WriteRetries)
	}
	if fs.InjectedTransient != 2 {
		t.Fatalf("InjectedTransient = %d, want 2", fs.InjectedTransient)
	}
	// Only successful transfers count in the I/O metric: 1 write (the
	// faulted attempt does not count) + 2 reads.
	if got := d.Stats(); got.Reads != 2 || got.Writes != 1 {
		t.Fatalf("stats = %+v, want reads=2 writes=1", got)
	}
}

// TestPermanentFaultPersistsUntilFree checks that a permanent fault fails
// fast (no retries), poisons the block for every later access, and clears
// when the block is freed and reallocated (a remapped sector).
func TestPermanentFaultPersistsUntilFree(t *testing.T) {
	d := faultDisk(t, FaultPlan{At: []FaultAt{
		{Op: OpRead, Transfer: 2, Kind: FaultPermanent},
	}})
	id := d.Alloc()
	if err := d.WriteBlock(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	err := d.ReadBlock(id, buf)
	if !errors.Is(err, ErrIOFault) {
		t.Fatalf("read 2 = %v, want ErrIOFault", err)
	}
	if IsTransient(err) {
		t.Fatal("permanent fault classified transient")
	}
	// The block stays bad: reads and writes keep failing.
	if err := d.ReadBlock(id, buf); !errors.Is(err, ErrIOFault) {
		t.Fatalf("read 3 = %v, want ErrIOFault", err)
	}
	if err := d.WriteBlock(id, []byte("y")); !errors.Is(err, ErrIOFault) {
		t.Fatalf("write to bad block = %v, want ErrIOFault", err)
	}
	fs := d.FaultStats()
	if fs.ReadRetries != 0 {
		t.Fatalf("permanent fault was retried %d times", fs.ReadRetries)
	}
	if fs.InjectedPermanent != 1 {
		t.Fatalf("InjectedPermanent = %d, want 1", fs.InjectedPermanent)
	}
	// Free + realloc models a remapped sector: the id works again.
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	id2 := d.Alloc()
	if id2 != id {
		t.Fatalf("expected free-list reuse of %d, got %d", id, id2)
	}
	if err := d.WriteBlock(id2, []byte("z")); err != nil {
		t.Fatalf("write after realloc: %v", err)
	}
	if err := d.ReadBlock(id2, buf); err != nil {
		t.Fatalf("read after realloc: %v", err)
	}
}

// TestCorruptReadRecoveredByChecksum checks the one-shot corruption case:
// the first read delivers flipped bits, checksum verification catches it,
// and the retry rereads clean data.
func TestCorruptReadRecoveredByChecksum(t *testing.T) {
	d := faultDisk(t, FaultPlan{At: []FaultAt{
		{Op: OpRead, Transfer: 1, Kind: FaultCorrupt},
	}})
	id := d.Alloc()
	src := []byte("precious")
	if err := d.WriteBlock(id, src); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("read through one-shot corruption: %v", err)
	}
	if string(buf[:len(src)]) != string(src) {
		t.Fatalf("read returned %q, want %q", buf[:len(src)], src)
	}
	fs := d.FaultStats()
	if fs.ChecksumFailures != 1 || fs.ReadRetries != 1 {
		t.Fatalf("checksumFails=%d retries=%d, want 1,1", fs.ChecksumFailures, fs.ReadRetries)
	}
}

// TestCorruptReadSilentWithoutChecksums documents the failure mode
// checksums exist for: without verification, the corrupted read is
// delivered as if it were clean.
func TestCorruptReadSilentWithoutChecksums(t *testing.T) {
	d := MustNewDisk(64)
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 3})
	d.InjectFaults(FaultPlan{At: []FaultAt{
		{Op: OpRead, Transfer: 1, Kind: FaultCorrupt},
	}})
	id := d.Alloc()
	if err := d.WriteBlock(id, []byte{0x00, 0x11}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if buf[0] != corruptByte {
		t.Fatalf("buf[0] = %#x, want the corrupted byte %#x", buf[0], corruptByte)
	}
}

// TestTornWriteSurfacesErrBlockCorrupt checks that a torn write persists
// damage which every subsequent read detects, exhausting retries and
// surfacing ErrBlockCorrupt, until the block is overwritten cleanly.
func TestTornWriteSurfacesErrBlockCorrupt(t *testing.T) {
	d := faultDisk(t, FaultPlan{At: []FaultAt{
		{Op: OpWrite, Transfer: 1, Kind: FaultTorn},
	}})
	id := d.Alloc()
	if err := d.WriteBlock(id, []byte("doomed")); err != nil {
		t.Fatalf("torn write should report success: %v", err)
	}
	buf := make([]byte, 64)
	err := d.ReadBlock(id, buf)
	if !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("read of torn block = %v, want ErrBlockCorrupt", err)
	}
	fs := d.FaultStats()
	if fs.InjectedTorn != 1 {
		t.Fatalf("InjectedTorn = %d, want 1", fs.InjectedTorn)
	}
	// 1 original mismatch + MaxRetries rereads, each failing verification.
	if fs.ChecksumFailures != 4 || fs.ReadRetries != 3 {
		t.Fatalf("checksumFails=%d retries=%d, want 4,3", fs.ChecksumFailures, fs.ReadRetries)
	}
	// A clean rewrite re-records the checksum and recovers the block.
	if err := d.WriteBlock(id, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
}

// TestRetriesExhaustedSurfaceIOFault checks that a run of transient faults
// longer than the retry budget surfaces the transient error, classified as
// an ErrIOFault.
func TestRetriesExhaustedSurfaceIOFault(t *testing.T) {
	d := MustNewDisk(64)
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 2})
	d.InjectFaults(FaultPlan{At: []FaultAt{
		{Op: OpRead, Transfer: 1, Kind: FaultTransient},
		{Op: OpRead, Transfer: 2, Kind: FaultTransient},
		{Op: OpRead, Transfer: 3, Kind: FaultTransient},
	}})
	id := d.Alloc()
	if err := d.WriteBlock(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	err := d.ReadBlock(id, buf)
	if !errors.Is(err, ErrIOFault) || !IsTransient(err) {
		t.Fatalf("exhausted retries = %v, want transient ErrIOFault", err)
	}
	if fs := d.FaultStats(); fs.ReadRetries != 2 {
		t.Fatalf("ReadRetries = %d, want 2", fs.ReadRetries)
	}
}

// TestRetryBackoffRespectsContext checks that a cancelled context aborts
// the backoff sleep instead of waiting it out.
func TestRetryBackoffRespectsContext(t *testing.T) {
	d := MustNewDisk(64)
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 5, BaseDelay: time.Hour})
	d.InjectFaults(FaultPlan{At: []FaultAt{
		{Op: OpRead, Transfer: 1, Kind: FaultTransient},
	}})
	id := d.Alloc()
	if err := d.WriteBlock(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	buf := make([]byte, 64)
	start := time.Now()
	err := d.readBlockCtx(ctx, id, buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("backoff ignored cancellation (took %v)", elapsed)
	}
}

// TestLatencyFaultDelaysTransfer checks that a latency spike delays but
// does not fail the transfer.
func TestLatencyFaultDelaysTransfer(t *testing.T) {
	const spike = 30 * time.Millisecond
	d := faultDisk(t, FaultPlan{
		Latency: spike,
		At:      []FaultAt{{Op: OpRead, Transfer: 1, Kind: FaultLatency}},
	})
	id := d.Alloc()
	if err := d.WriteBlock(id, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	start := time.Now()
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("latency fault errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed < spike {
		t.Fatalf("read took %v, want ≥ %v", elapsed, spike)
	}
	if fs := d.FaultStats(); fs.InjectedLatency != 1 {
		t.Fatalf("InjectedLatency = %d, want 1", fs.InjectedLatency)
	}
}

// TestSeededRatesDeterministic checks that the rate-driven injector is a
// pure function of the seed over a serial transfer sequence.
func TestSeededRatesDeterministic(t *testing.T) {
	run := func() (faults []int) {
		d := MustNewDisk(64)
		d.SetRetryPolicy(RetryPolicy{MaxRetries: 8})
		d.InjectFaults(FaultPlan{Seed: 42, TransientReadRate: 0.2})
		id := d.Alloc()
		if err := d.WriteBlock(id, []byte("x")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		for i := 0; i < 50; i++ {
			before := d.FaultStats().ReadRetries
			if err := d.ReadBlock(id, buf); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if d.FaultStats().ReadRetries > before {
				faults = append(faults, i)
			}
		}
		return faults
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("20% transient rate fired no faults in 50 reads")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fault schedule: %v vs %v", a, b)
		}
	}
}

// TestNoFaultScheduleBitIdentical checks the central invariance contract:
// an armed injector that fires nothing, plus checksums, plus a retry
// policy, leaves the counted transfer schedule bit-identical to a plain
// disk — including through pipelined streams.
func TestNoFaultScheduleBitIdentical(t *testing.T) {
	counts := func(harden bool) Stats {
		d := MustNewDisk(64)
		if harden {
			d.SetRetryPolicy(RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond})
			d.SetChecksums(true)
			d.InjectFaults(FaultPlan{}) // armed, fires nothing
			d.SetPipelining(true)
		}
		env := Env{Disk: d, M: 4 * 64}
		f := env.NewFile()
		w := f.NewWriter()
		rec := make([]byte, 16)
		for i := 0; i < 100; i++ {
			rec[0] = byte(i)
			if _, err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r := f.NewReader()
		buf := make([]byte, 16)
		for {
			if _, err := r.Read(buf); err != nil {
				break
			}
		}
		if err := f.Release(); err != nil {
			t.Fatal(err)
		}
		return d.Stats()
	}
	plain, hardened := counts(false), counts(true)
	if plain != hardened {
		t.Fatalf("hardened schedule diverged: plain %+v, hardened %+v", plain, hardened)
	}
}

// TestInjectFaultsReplacesInjector checks that re-arming replaces rather
// than stacks injectors, and that a replaced injector's counters restart.
func TestInjectFaultsReplacesInjector(t *testing.T) {
	d := MustNewDisk(64)
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 1})
	d.InjectFaults(FaultPlan{At: []FaultAt{{Op: OpRead, Transfer: 1, Kind: FaultTransient}}})
	d.InjectFaults(FaultPlan{At: []FaultAt{{Op: OpRead, Transfer: 2, Kind: FaultTransient}}})
	id := d.Alloc()
	if err := d.WriteBlock(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	// Read 1 clean (the first plan's fault at transfer 1 is gone), read 2
	// faulted once by the second plan.
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if fs := d.FaultStats(); fs.InjectedTransient != 0 {
		t.Fatalf("stacked injector fired: %+v", fs)
	}
	if err := d.ReadBlock(id, buf); err != nil {
		t.Fatalf("read 2: %v", err)
	}
	if fs := d.FaultStats(); fs.InjectedTransient != 1 {
		t.Fatalf("InjectedTransient = %d, want 1", fs.InjectedTransient)
	}
}

// TestFaultInjectionFileBacked smoke-checks the injector over the file
// backend: torn write caught by checksums, free forwarded through the
// wrapper, backing file removed on Close.
func TestFaultInjectionFileBacked(t *testing.T) {
	d, err := NewFileBackedDisk(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 2})
	d.SetChecksums(true)
	d.InjectFaults(FaultPlan{At: []FaultAt{{Op: OpWrite, Transfer: 1, Kind: FaultTorn}}})
	id := d.Alloc()
	if err := d.WriteBlock(id, []byte("torn")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.ReadBlock(id, buf); !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("read = %v, want ErrBlockCorrupt", err)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	if n := d.InUse(); n != 0 {
		t.Fatalf("InUse = %d after free", n)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close through injector: %v", err)
	}
}
