package em

import (
	"testing"
	"time"
)

// TestBackoffJitterBounds pins the decorrelated-jitter contract: every
// delay lies in [BaseDelay, MaxDelay], the sequence is a pure function of
// the seed for a serial retry loop, and different seeds decorrelate.
func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxRetries: 8, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, JitterSeed: 42}
	draw := func(seed int64, n int) []time.Duration {
		pp := p
		pp.JitterSeed = seed
		src := NewJitterSource(seed)
		bo := pp.Backoff(src)
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = bo.Next()
		}
		return out
	}
	a := draw(42, 100)
	for i, d := range a {
		if d < p.BaseDelay || d > p.MaxDelay {
			t.Fatalf("delay[%d] = %v outside [%v, %v]", i, d, p.BaseDelay, p.MaxDelay)
		}
	}
	b := draw(42, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
	c := draw(7, 100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

// TestBackoffJitterSharedSourceDecorrelates models two parallel retry
// loops sharing one disk's jitter stream: interleaved loops must not see
// identical delay sequences (the lockstep problem jitter exists to fix).
func TestBackoffJitterSharedSourceDecorrelates(t *testing.T) {
	p := RetryPolicy{MaxRetries: 8, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, JitterSeed: 99}
	src := NewJitterSource(p.JitterSeed)
	b1, b2 := p.Backoff(src), p.Backoff(src)
	same := 0
	const n = 32
	for i := 0; i < n; i++ {
		d1, d2 := b1.Next(), b2.Next()
		if d1 < p.BaseDelay || d1 > p.MaxDelay || d2 < p.BaseDelay || d2 > p.MaxDelay {
			t.Fatalf("iteration %d: delays %v/%v outside bounds", i, d1, d2)
		}
		if d1 == d2 {
			same++
		}
	}
	if same == n {
		t.Fatal("interleaved loops retried in lockstep despite jitter")
	}
}

// TestBackoffNoJitterKeepsDoubling pins backward compatibility: with
// JitterSeed zero, the per-loop backoff reproduces the original capped
// doubling schedule exactly, even when a jitter source is offered.
func TestBackoffNoJitterKeepsDoubling(t *testing.T) {
	p := RetryPolicy{MaxRetries: 8, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	bo := p.Backoff(NewJitterSource(1)) // ignored: JitterSeed == 0
	for attempt := 0; attempt < 10; attempt++ {
		if got, want := bo.Next(), p.delay(attempt); got != want {
			t.Fatalf("attempt %d: next() = %v, delay() = %v", attempt, got, want)
		}
	}
	zero := RetryPolicy{MaxRetries: 2}
	bz := zero.Backoff(nil)
	if d := bz.Next(); d != 0 {
		t.Fatalf("zero BaseDelay: delay %v, want 0", d)
	}
}
