package em

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"maxrs/internal/codec"
)

// storeKinds enumerates every slot-store flavor; StoreMmap exercises the
// real mapping on linux and the documented file fallback elsewhere.
var storeKinds = []struct {
	name string
	kind StoreKind
}{
	{"mem", StoreMem},
	{"file", StoreFile},
	{"mmap", StoreMmap},
}

// sortedBlock returns n bytes of sorted 3-word records — the
// compressible shape the delta family targets.
func sortedBlock(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, 0, n+24)
	x := rng.Float64()
	for len(buf) < n {
		x += rng.Float64()
		for w := 0; w < 3; w++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x+float64(w)))
		}
	}
	return buf[:n]
}

func TestStoreDiskRoundTrip(t *testing.T) {
	for _, sk := range storeKinds {
		for _, cands := range [][]codec.BlockCodec{nil, codec.DeltaFamily()} {
			d, err := NewStoreDisk(t.TempDir(), 64, sk.kind, cands)
			if err != nil {
				t.Fatalf("%s: %v", sk.name, err)
			}
			payloads := [][]byte{
				sortedBlock(1, 64),            // compressible, full
				sortedBlock(2, 40),            // compressible, partial
				bytes.Repeat([]byte{0xEE}, 7), // tiny partial
				nil,                           // empty write
			}
			ids := make([]BlockID, len(payloads))
			for i, p := range payloads {
				ids[i] = d.Alloc()
				if err := d.WriteBlock(ids[i], p); err != nil {
					t.Fatalf("%s: write %d: %v", sk.name, i, err)
				}
			}
			// An allocated, never-written block reads as zeros.
			blank := d.Alloc()
			buf := make([]byte, 64)
			if err := d.ReadBlock(blank, buf); err != nil {
				t.Fatalf("%s: read blank: %v", sk.name, err)
			}
			if !bytes.Equal(buf, make([]byte, 64)) {
				t.Fatalf("%s: unwritten block not zero", sk.name)
			}
			for i, p := range payloads {
				if err := d.ReadBlock(ids[i], buf); err != nil {
					t.Fatalf("%s: read %d: %v", sk.name, i, err)
				}
				want := make([]byte, 64)
				copy(want, p)
				if !bytes.Equal(buf, want) {
					t.Fatalf("%s: block %d round trip mismatch", sk.name, i)
				}
			}
			// Free + realloc re-zeroes, like every other backend.
			if err := d.Free(ids[0]); err != nil {
				t.Fatal(err)
			}
			if id := d.Alloc(); id != ids[0] {
				t.Fatalf("%s: expected free-list reuse", sk.name)
			}
			if err := d.ReadBlock(ids[0], buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, make([]byte, 64)) {
				t.Fatalf("%s: recycled block not zero", sk.name)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("%s: close: %v", sk.name, err)
			}
		}
	}
}

// TestStoreDiskTransferInvariance runs one scripted workload on the
// plain file backend and every store variant: the counted transfers
// must be bit-identical — the store sits below the counters.
func TestStoreDiskTransferInvariance(t *testing.T) {
	script := func(t *testing.T, d *Disk) Stats {
		t.Helper()
		var ids []BlockID
		for i := 0; i < 6; i++ {
			ids = append(ids, d.Alloc())
		}
		buf := make([]byte, 128)
		for i, id := range ids {
			if err := d.WriteBlock(id, sortedBlock(int64(i), 32+i*16)); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids {
			if err := d.ReadBlock(id, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Free(ids[2]); err != nil {
			t.Fatal(err)
		}
		id := d.Alloc()
		if err := d.WriteBlock(id, sortedBlock(9, 128)); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadBlock(id, buf); err != nil {
			t.Fatal(err)
		}
		return d.Stats()
	}

	ref, err := NewFileBackedDisk(t.TempDir(), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := script(t, ref)

	for _, sk := range storeKinds {
		for _, cands := range [][]codec.BlockCodec{nil, codec.DeltaFamily()} {
			d, err := NewStoreDisk(t.TempDir(), 128, sk.kind, cands)
			if err != nil {
				t.Fatal(err)
			}
			if got := script(t, d); got != want {
				t.Errorf("%s (codecs=%d): stats %v, want %v", sk.name, len(cands), got, want)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestStorePhysBytesCompressed pins the point of the subsystem: on
// sorted record data the delta store moves strictly fewer physical
// bytes than the fixed layout, and never more than uncompressed + the
// constant slot headers.
func TestStorePhysBytesCompressed(t *testing.T) {
	const blockSize = 4096
	d, err := NewStoreDisk(t.TempDir(), blockSize, StoreFile, codec.DeltaFamily())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 32
	block := sortedBlock(3, blockSize)
	buf := make([]byte, blockSize)
	for i := 0; i < n; i++ {
		id := d.Alloc()
		if err := d.WriteBlock(id, block); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadBlock(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	p := d.PhysIO()
	if !p.Measured {
		t.Fatal("store disk did not measure physical bytes")
	}
	if p.BlocksCompressed != n || p.BlocksRaw != 0 {
		t.Fatalf("compressed=%d raw=%d, want %d,0", p.BlocksCompressed, p.BlocksRaw, n)
	}
	uncompressed := uint64(n * blockSize)
	if p.WriteBytes >= uncompressed {
		t.Fatalf("WriteBytes=%d, want < uncompressed %d", p.WriteBytes, uncompressed)
	}
	if p.ReadBytes >= uncompressed {
		t.Fatalf("ReadBytes=%d, want < uncompressed %d", p.ReadBytes, uncompressed)
	}
	// The codec-less store is bounded by uncompressed + headers.
	d2, err := NewStoreDisk(t.TempDir(), blockSize, StoreFile, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	id := d2.Alloc()
	if err := d2.WriteBlock(id, block); err != nil {
		t.Fatal(err)
	}
	if p := d2.PhysIO(); p.WriteBytes != blockSize+slotHeaderSize || p.BlocksRaw != 1 {
		t.Fatalf("raw store phys = %+v", p)
	}
	// ResetStats zeroes the physical counters with the transfer counters.
	d.ResetStats()
	if p := d.PhysIO(); p.Bytes() != 0 || p.BlocksCompressed != 0 {
		t.Fatalf("phys counters survived ResetStats: %+v", p)
	}
}

// TestStoreDiskFaultComposition re-runs the canonical fault drills on a
// delta slot store: injection sits above the store, so corruption and
// torn writes land on logical content and the Disk-level checksums
// catch them exactly as on the plain backends.
func TestStoreDiskFaultComposition(t *testing.T) {
	newDisk := func(t *testing.T, plan FaultPlan) *Disk {
		t.Helper()
		d, err := NewStoreDisk(t.TempDir(), 64, StoreMmap, codec.DeltaFamily())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close() })
		d.SetRetryPolicy(RetryPolicy{MaxRetries: 3})
		d.SetChecksums(true)
		d.InjectFaults(plan)
		return d
	}

	t.Run("corrupt read recovered", func(t *testing.T) {
		d := newDisk(t, FaultPlan{At: []FaultAt{{Op: OpRead, Transfer: 1, Kind: FaultCorrupt}}})
		id := d.Alloc()
		src := sortedBlock(4, 48)
		if err := d.WriteBlock(id, src); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		if err := d.ReadBlock(id, buf); err != nil {
			t.Fatalf("read through one-shot corruption: %v", err)
		}
		if !bytes.Equal(buf[:len(src)], src) {
			t.Fatal("recovered read returned damaged data")
		}
		if fs := d.FaultStats(); fs.ChecksumFailures != 1 || fs.ReadRetries != 1 {
			t.Fatalf("checksumFails=%d retries=%d, want 1,1", fs.ChecksumFailures, fs.ReadRetries)
		}
	})

	t.Run("torn write detected", func(t *testing.T) {
		d := newDisk(t, FaultPlan{At: []FaultAt{{Op: OpWrite, Transfer: 1, Kind: FaultTorn}}})
		id := d.Alloc()
		if err := d.WriteBlock(id, sortedBlock(5, 48)); err != nil {
			t.Fatalf("torn write should report success: %v", err)
		}
		buf := make([]byte, 64)
		if err := d.ReadBlock(id, buf); !errors.Is(err, ErrBlockCorrupt) {
			t.Fatalf("read of torn block = %v, want ErrBlockCorrupt", err)
		}
		if err := d.WriteBlock(id, sortedBlock(6, 48)); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadBlock(id, buf); err != nil {
			t.Fatalf("read after clean rewrite: %v", err)
		}
	})

	t.Run("transient retried", func(t *testing.T) {
		d := newDisk(t, FaultPlan{At: []FaultAt{{Op: OpWrite, Transfer: 1, Kind: FaultTransient}}})
		id := d.Alloc()
		if err := d.WriteBlock(id, sortedBlock(7, 48)); err != nil {
			t.Fatalf("write through transient fault: %v", err)
		}
		if fs := d.FaultStats(); fs.WriteRetries != 1 {
			t.Fatalf("WriteRetries=%d, want 1", fs.WriteRetries)
		}
	})
}

// TestStoreMediaCorruptionCaught flips a persisted payload byte under
// the injector-free store: the slot's own CRC32C must refuse to decode
// silently even with Disk checksums off.
func TestStoreMediaCorruptionCaught(t *testing.T) {
	d, err := NewStoreDisk(t.TempDir(), 64, StoreMem, codec.DeltaFamily())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := d.Alloc()
	if err := d.WriteBlock(id, sortedBlock(8, 64)); err != nil {
		t.Fatal(err)
	}
	sb := d.storeOf()
	ms := sb.store.(*memSlots)
	ms.data[slotHeaderSize+3] ^= 0x40 // damage the payload on "media"
	buf := make([]byte, 64)
	if err := d.ReadBlock(id, buf); !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("read of damaged slot = %v, want ErrBlockCorrupt", err)
	}
	// Unknown codec ids are corruption, not a crash.
	if err := d.WriteBlock(id, sortedBlock(8, 64)); err != nil {
		t.Fatal(err)
	}
	ms.data[0] = 0xFE // no codec registered at 254
	if err := d.ReadBlock(id, buf); !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("read with unknown codec id = %v, want ErrBlockCorrupt", err)
	}
}

// TestMmapStoreGrowRemap forces several geometric remaps and checks
// every block survives them — the munmap/truncate/mmap cycle under the
// exclusive grow lock.
func TestMmapStoreGrowRemap(t *testing.T) {
	const blockSize = 512
	d, err := NewStoreDisk(t.TempDir(), blockSize, StoreMmap, codec.DeltaFamily())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 4096 // ≳ 2 MiB of slots: several doublings past the initial map
	ids := make([]BlockID, n)
	for i := range ids {
		ids[i] = d.Alloc()
		if err := d.WriteBlock(ids[i], sortedBlock(int64(i), blockSize)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	buf := make([]byte, blockSize)
	for i, id := range ids {
		if err := d.ReadBlock(id, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf, sortedBlock(int64(i), blockSize)) {
			t.Fatalf("block %d damaged across remaps", i)
		}
	}
}

// TestStoreDiskStreams runs the em stream layer (Writer write-behind,
// Reader prefetch) over a store disk and checks content and counted
// transfers match the plain file-backed disk.
func TestStoreDiskStreams(t *testing.T) {
	payload := sortedBlock(10, 10000)

	run := func(t *testing.T, d *Disk) Stats {
		t.Helper()
		defer d.Close()
		f := NewFile(d)
		w := f.NewWriter()
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(f.NewReader())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("stream round trip mismatch")
		}
		return d.Stats()
	}

	ref, err := NewFileBackedDisk(t.TempDir(), 256)
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, ref)
	for _, sk := range storeKinds {
		d, err := NewStoreDisk(t.TempDir(), 256, sk.kind, codec.DeltaFamily())
		if err != nil {
			t.Fatal(err)
		}
		if got := run(t, d); got != want {
			t.Errorf("%s: stream stats %v, want %v", sk.name, got, want)
		}
	}
}

// TestStorageInfo pins the introspection strings maxrsd surfaces.
func TestStorageInfo(t *testing.T) {
	mem := MustNewDisk(64)
	if got := mem.StorageInfo(); got != (StorageInfo{Backend: "mem", Codec: "none"}) {
		t.Fatalf("mem disk info = %+v", got)
	}
	fd, err := NewFileBackedDisk(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	if got := fd.StorageInfo(); got != (StorageInfo{Backend: "file", Codec: "none"}) {
		t.Fatalf("file disk info = %+v", got)
	}
	if p := fd.PhysIO(); p.Measured {
		t.Fatal("plain file disk claims measured physical bytes")
	}
	sd, err := NewStoreDisk(t.TempDir(), 64, StoreFile, codec.DeltaFamily())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if got := sd.StorageInfo(); got != (StorageInfo{Backend: "store/file", Codec: "delta"}) {
		t.Fatalf("store disk info = %+v", got)
	}
	// Fault injection must not hide the store from introspection.
	sd.InjectFaults(FaultPlan{})
	if got := sd.StorageInfo(); got.Backend != "store/file" {
		t.Fatalf("store info through injector = %+v", got)
	}
	md, err := NewStoreDisk(t.TempDir(), 64, StoreMmap, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	info := md.StorageInfo()
	if info.Backend != "store/mmap" && info.Backend != "store/file" {
		t.Fatalf("mmap disk backend = %q", info.Backend)
	}
	if info.Codec != "none" {
		t.Fatalf("codec-less mmap disk codec = %q", info.Codec)
	}
}
