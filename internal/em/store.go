package em

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"

	"maxrs/internal/codec"
)

// This file implements the compressed slot store (DESIGN.md §15): a
// backend that persists each logical block as a fixed-size *slot* of
// slotHeaderSize + blockSize bytes — a self-describing header followed
// by the block's physical payload, which a per-block codec may have
// shrunk below the fixed layout. Slots are fixed so block addressing
// stays O(1) (offset = id·slotSize) while payloads vary; the raw codec
// (id 0) always fits, so compression can only save bytes, never spill.
//
// The store sits strictly below the Disk's transfer counters: one
// logical ReadBlock/WriteBlock is one counted transfer whatever the
// payload size, so the counted schedule is bit-identical to the plain
// file backend by construction. What the store changes is the physical
// bytes each transfer moves, tallied in PhysIO.

// slotHeaderSize is the fixed per-slot header:
//
//	[0]     codec id (codec.RawID = uncompressed payload)
//	[1:4]   reserved (zero)
//	[4:8]   payload length, uint32 LE
//	[8:12]  uncompressed (logical) length, uint32 LE — the written
//	        prefix; the block's remainder is implied zeros
//	[12:16] CRC32C of the uncompressed prefix, uint32 LE
const slotHeaderSize = 16

// slotStore is flat byte storage for slots. Offsets are managed by
// storeBackend; implementations only move bytes.
//
// Concurrency contract (inherited from backend): grow runs with the
// Disk's write lock held — exclusively of readAt/writeAt, which run
// under its read lock and may be concurrent with each other on disjoint
// ranges.
type slotStore interface {
	readAt(dst []byte, off int64) error
	writeAt(src []byte, off int64) error
	// grow ensures the store can hold size bytes.
	grow(size int64) error
	Close() error
}

// fileSlots stores slots in an OS file via positioned I/O — the
// portable store, and the fallback when mmap is unavailable.
type fileSlots struct {
	f *os.File
}

func newFileSlots(dir string) (*fileSlots, error) {
	f, err := os.CreateTemp(dir, "maxrs-store-*.dat")
	if err != nil {
		return nil, fmt.Errorf("em: store file: %w", err)
	}
	return &fileSlots{f: f}, nil
}

func (s *fileSlots) readAt(dst []byte, off int64) error {
	_, err := s.f.ReadAt(dst, off)
	return err
}

func (s *fileSlots) writeAt(src []byte, off int64) error {
	_, err := s.f.WriteAt(src, off)
	return err
}

// grow is a no-op: WriteAt extends the file on demand and only written
// ranges are ever read back.
func (s *fileSlots) grow(int64) error { return nil }

func (s *fileSlots) Close() error {
	name := s.f.Name()
	return errors.Join(s.f.Close(), os.Remove(name))
}

// memSlots stores slots in process memory — the hermetic store for
// codec tests that must not touch the filesystem.
type memSlots struct {
	data []byte
}

func (s *memSlots) readAt(dst []byte, off int64) error {
	copy(dst, s.data[off:])
	return nil
}

func (s *memSlots) writeAt(src []byte, off int64) error {
	copy(s.data[off:], src)
	return nil
}

func (s *memSlots) grow(size int64) error {
	for int64(len(s.data)) < size {
		s.data = append(s.data, make([]byte, size-int64(len(s.data)))...)
	}
	return nil
}

func (s *memSlots) Close() error {
	s.data = nil
	return nil
}

// StoreKind selects the physical store under a slot-store disk.
type StoreKind int

const (
	// StoreFile keeps slots in a temp file via positioned I/O.
	StoreFile StoreKind = iota
	// StoreMmap keeps slots in a memory-mapped temp file: page-cache
	// reads, batched write-behind submission. Falls back to StoreFile
	// when the platform or filesystem cannot map.
	StoreMmap
	// StoreMem keeps slots in process memory (hermetic tests).
	StoreMem
)

// storeBackend implements backend over a slotStore plus a codec
// candidate family. An empty family stores every block raw — the store
// format without compression (how the mmap backend runs codec-less).
type storeBackend struct {
	blockSize int
	slotSize  int64
	store     slotStore
	name      string // actual store in use: "file", "mmap", "mem"
	cands     []codec.BlockCodec

	// sizes caches each block's slot payload length + 1; 0 means the
	// block was never written since its last grow, so reads zero-fill
	// without physical I/O (fixed-layout backends get the same
	// observable semantics by zeroing storage in grow). Guarded by the
	// Disk's locks exactly like memBackend.blocks: grown under the write
	// lock, element-wise accessed under the read lock with single-owner
	// block semantics.
	sizes []uint32

	encoders sync.Pool // of *codec.Encoder
	bufs     sync.Pool // of []byte, slot-sized

	physReads  atomic.Uint64 // physical bytes moved store → memory
	physWrites atomic.Uint64 // physical bytes moved memory → store
	compressed atomic.Uint64 // block writes that beat the raw layout
	rawBlocks  atomic.Uint64 // block writes stored in the fixed layout
}

func newStoreBackend(store slotStore, name string, blockSize int, cands []codec.BlockCodec) *storeBackend {
	sb := &storeBackend{
		blockSize: blockSize,
		slotSize:  int64(slotHeaderSize + blockSize),
		store:     store,
		name:      name,
		cands:     cands,
	}
	sb.encoders.New = func() any { return codec.NewEncoder(sb.cands) }
	sb.bufs.New = func() any { return make([]byte, sb.slotSize) }
	return sb
}

func (sb *storeBackend) grow(id BlockID) error {
	for int(id) >= len(sb.sizes) {
		sb.sizes = append(sb.sizes, 0)
	}
	sb.sizes[id] = 0 // fresh or recycled: reads zero-fill, no I/O
	return sb.store.grow((int64(id) + 1) * sb.slotSize)
}

// free drops a released block's payload mapping so a stale slot can
// never be read after reallocation (grow re-zeroes it anyway; this
// keeps the invariant even between Free and the next Alloc).
func (sb *storeBackend) free(id BlockID) {
	if int(id) < len(sb.sizes) {
		sb.sizes[id] = 0
	}
}

func (sb *storeBackend) write(id BlockID, src []byte) error {
	enc := sb.encoders.Get().(*codec.Encoder)
	cid, payload := enc.Encode(src)
	buf := sb.bufs.Get().([]byte)
	buf = buf[:slotHeaderSize+len(payload)]
	buf[0] = cid
	buf[1], buf[2], buf[3] = 0, 0, 0
	putU32(buf[4:], uint32(len(payload)))
	putU32(buf[8:], uint32(len(src)))
	putU32(buf[12:], crc32.Checksum(src, castagnoli))
	copy(buf[slotHeaderSize:], payload)
	err := sb.store.writeAt(buf, int64(id)*sb.slotSize)
	sb.bufs.Put(buf[:cap(buf)])
	sb.encoders.Put(enc)
	if err != nil {
		return err
	}
	sb.sizes[id] = uint32(len(payload)) + 1
	sb.physWrites.Add(uint64(slotHeaderSize + len(payload)))
	if cid == codec.RawID {
		sb.rawBlocks.Add(1)
	} else {
		sb.compressed.Add(1)
	}
	return nil
}

func (sb *storeBackend) read(id BlockID, dst []byte) error {
	dst = dst[:sb.blockSize]
	sz := sb.sizes[id]
	if sz == 0 {
		clear(dst)
		return nil
	}
	n := int(sz - 1)
	buf := sb.bufs.Get().([]byte)
	defer sb.bufs.Put(buf)
	buf = buf[:slotHeaderSize+n]
	if err := sb.store.readAt(buf, int64(id)*sb.slotSize); err != nil {
		return err
	}
	sb.physReads.Add(uint64(len(buf)))
	cid := buf[0]
	payloadLen := int(getU32(buf[4:]))
	uncomp := int(getU32(buf[8:]))
	sum := getU32(buf[12:])
	if payloadLen != n || uncomp > sb.blockSize {
		return fmt.Errorf("%w: block %d slot header inconsistent (payload %d/%d, logical %d/%d)",
			ErrBlockCorrupt, id, payloadLen, n, uncomp, sb.blockSize)
	}
	payload := buf[slotHeaderSize:]
	if cid == codec.RawID {
		if uncomp != payloadLen {
			return fmt.Errorf("%w: block %d raw payload %d bytes, logical %d",
				ErrBlockCorrupt, id, payloadLen, uncomp)
		}
		copy(dst, payload)
	} else {
		c := codec.Lookup(cid)
		if c == nil {
			return fmt.Errorf("%w: block %d references unknown codec %d", ErrBlockCorrupt, id, cid)
		}
		if err := c.Decode(dst[:uncomp], payload); err != nil {
			return fmt.Errorf("%w: block %d: %v", ErrBlockCorrupt, id, err)
		}
	}
	clear(dst[uncomp:])
	if got := crc32.Checksum(dst[:uncomp], castagnoli); got != sum {
		return fmt.Errorf("%w: block %d store checksum mismatch (stored %08x, decoded %08x)",
			ErrBlockCorrupt, id, sum, got)
	}
	return nil
}

func (sb *storeBackend) Close() error { return sb.store.Close() }

// phys snapshots the physical-byte counters.
func (sb *storeBackend) phys() PhysIO {
	return PhysIO{
		ReadBytes:        sb.physReads.Load(),
		WriteBytes:       sb.physWrites.Load(),
		BlocksCompressed: sb.compressed.Load(),
		BlocksRaw:        sb.rawBlocks.Load(),
		Measured:         true,
	}
}

func (sb *storeBackend) resetPhys() {
	sb.physReads.Store(0)
	sb.physWrites.Store(0)
	sb.compressed.Store(0)
	sb.rawBlocks.Store(0)
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// PhysIO counts the physical bytes moved below the transfer counters
// (DESIGN.md §15). For a slot-store disk the counters are measured:
// header + payload per transfer, with per-block compression outcomes.
// For fixed-layout backends they are derived as transfers × block size
// and Measured is false.
type PhysIO struct {
	ReadBytes        uint64 // physical bytes moved storage → memory
	WriteBytes       uint64 // physical bytes moved memory → storage
	BlocksCompressed uint64 // block writes that beat the raw layout
	BlocksRaw        uint64 // block writes stored in the fixed layout
	Measured         bool   // true when a slot store counted; false = transfers × B
}

// Bytes returns ReadBytes + WriteBytes.
func (p PhysIO) Bytes() uint64 { return p.ReadBytes + p.WriteBytes }

// StorageInfo describes the physical storage stack under a Disk's
// transfer counters — which store actually serves blocks (after any
// mmap fallback) and whether a codec family is armed.
type StorageInfo struct {
	Backend string // "mem", "file", "store/file", "store/mmap", "store/mem"
	Codec   string // "none" or "delta"
}

// NewStoreDisk returns a Disk whose blocks live in a compressed slot
// store (DESIGN.md §15): kind selects the physical store — StoreMmap
// falls back to a plain temp file when mapping is unavailable — and
// cands is the codec candidate family tried per block (nil stores every
// block in the fixed layout). dir is the directory for the backing file
// ("" = the OS temp directory; ignored by StoreMem).
//
// Transfer counts are bit-identical to NewFileBackedDisk by
// construction: the store sits below the counters, so codecs and the
// mmap path change only the physical bytes per transfer (PhysIO), never
// the counted schedule. Stream pipelining defaults on except for
// StoreMem, matching the plain backends.
func NewStoreDisk(dir string, blockSize int, kind StoreKind, cands []codec.BlockCodec) (*Disk, error) {
	if blockSize <= 0 {
		return nil, ErrBlockSize
	}
	var (
		store slotStore
		name  string
		err   error
	)
	switch kind {
	case StoreMem:
		store, name = &memSlots{}, "mem"
	case StoreMmap:
		store, err = newMmapSlots(dir)
		name = "mmap"
		if err != nil {
			// Graceful fallback: mapping can fail per-platform or
			// per-filesystem; the portable store is always available.
			store, err = newFileSlots(dir)
			name = "file"
		}
	default:
		store, err = newFileSlots(dir)
		name = "file"
	}
	if err != nil {
		return nil, err
	}
	d := &Disk{
		blockSize: blockSize,
		backend:   newStoreBackend(store, name, blockSize, cands),
	}
	d.pipelined.Store(kind != StoreMem)
	return d, nil
}

// storeOf unwraps the disk's backend chain (fault injector included) to
// the slot store, if one is installed.
func (d *Disk) storeOf() *storeBackend {
	d.mu.RLock()
	b := d.backend
	d.mu.RUnlock()
	if fb, ok := b.(*faultBackend); ok {
		b = fb.inner
	}
	sb, _ := b.(*storeBackend)
	return sb
}

// PhysIO returns the physical-byte counters accumulated since the last
// ResetStats. Slot-store disks measure them exactly (fault injection
// composes: injected faults sit above the store, so the counters still
// reflect real store traffic); fixed-layout disks derive them as
// transfers × block size with Measured false.
func (d *Disk) PhysIO() PhysIO {
	if sb := d.storeOf(); sb != nil {
		return sb.phys()
	}
	s := d.Stats()
	b := uint64(d.blockSize)
	return PhysIO{ReadBytes: s.Reads * b, WriteBytes: s.Writes * b}
}

// StorageInfo reports which physical store serves this disk's blocks
// (after any mmap fallback) and whether a codec family is armed.
func (d *Disk) StorageInfo() StorageInfo {
	sb := d.storeOf()
	if sb == nil {
		d.mu.RLock()
		b := d.backend
		d.mu.RUnlock()
		if fb, ok := b.(*faultBackend); ok {
			b = fb.inner
		}
		if _, ok := b.(*fileBackend); ok {
			return StorageInfo{Backend: "file", Codec: "none"}
		}
		return StorageInfo{Backend: "mem", Codec: "none"}
	}
	info := StorageInfo{Backend: "store/" + sb.name, Codec: "none"}
	if len(sb.cands) > 0 {
		info.Codec = "delta"
	}
	return info
}
