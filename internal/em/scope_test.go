package em

import (
	"sync"
	"testing"
)

// TestScopeStatsAttribution checks that scoped streams charge both the
// disk-global counters and their own scope, that foreign-file reads can be
// re-attributed, and that a nil scope is a no-op.
func TestScopeStatsAttribution(t *testing.T) {
	d := MustNewDisk(64)
	sc := new(ScopeStats)

	f := NewFileScoped(d, sc)
	w := f.NewWriter()
	if _, err := w.Write(make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sc.Stats(); got.Writes != 4 || got.Reads != 0 {
		t.Fatalf("scope after write = %+v, want 4 writes", got)
	}
	r := f.NewReader()
	buf := make([]byte, 200)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if got := sc.Stats(); got.Reads != 4 {
		t.Fatalf("scope after read = %+v, want 4 reads", got)
	}
	if g := d.Stats(); g.Reads != sc.Stats().Reads || g.Writes != sc.Stats().Writes {
		t.Fatalf("global %+v diverges from sole scope %+v", g, sc.Stats())
	}

	// Reading an unscoped file under an override scope attributes there.
	plain := NewFile(d)
	pw := plain.NewWriter()
	if _, err := pw.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	other := new(ScopeStats)
	or := plain.NewReaderScoped(other)
	if _, err := or.Read(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if got := other.Stats(); got.Reads != 1 || got.Writes != 0 {
		t.Fatalf("override scope = %+v, want 1 read", got)
	}

	// A nil scope (plain file) must not have charged sc.
	if got := sc.Stats(); got.Reads != 4 || got.Writes != 4 {
		t.Fatalf("scope polluted by unscoped traffic: %+v", got)
	}
}

// TestScopeStatsConcurrent charges one scope from many goroutines — the
// solver's fan-out shape — and checks the tally is exact under -race.
func TestScopeStatsConcurrent(t *testing.T) {
	d := MustNewDisk(64)
	sc := new(ScopeStats)
	var wg sync.WaitGroup
	const workers, blocks = 8, 25
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := NewFileScoped(d, sc)
			w := f.NewWriter()
			if _, err := w.Write(make([]byte, 64*blocks)); err != nil {
				t.Error(err)
				return
			}
			if err := w.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := sc.Stats(); got.Writes != workers*blocks {
		t.Fatalf("scope writes = %d, want %d", got.Writes, workers*blocks)
	}
}
