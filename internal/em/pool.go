package em

import (
	"container/list"
	"fmt"
)

// BufferPool is an LRU page cache over a Disk, used by algorithms with
// random block access (the aSB-Tree baseline). Hits are free; misses cost
// one read transfer; evicting a dirty frame costs one write transfer. The
// pool's capacity in frames is the algorithm's M/B memory budget, which is
// what makes the paper's buffer-size experiments (Figs. 13 and 15)
// meaningful for the baselines.
type BufferPool struct {
	disk   *Disk
	scope  *ScopeStats // per-query attribution for miss reads / dirty evictions
	frames int
	lru    *list.List // front = most recently used; values are *frame
	byID   map[BlockID]*list.Element

	// free holds the byte slices of evicted frames for reuse: once the
	// pool is warm, a miss recycles the slice the eviction just vacated
	// instead of allocating a fresh block — which in the aSB-tree
	// baseline's random-access loop turns one make([]byte, B) per miss of
	// GC churn into zero steady-state allocations. Bounded by frames.
	free [][]byte

	hits, misses uint64
}

type frame struct {
	id    BlockID
	data  []byte
	dirty bool
}

// NewBufferPool returns a pool of the given number of frames (≥ 1).
func NewBufferPool(d *Disk, frames int) (*BufferPool, error) {
	if frames < 1 {
		return nil, fmt.Errorf("em: buffer pool needs ≥ 1 frame, got %d", frames)
	}
	return &BufferPool{
		disk:   d,
		frames: frames,
		lru:    list.New(),
		byID:   make(map[BlockID]*list.Element),
	}, nil
}

// Frames returns the pool capacity.
func (p *BufferPool) Frames() int { return p.frames }

// SetScope charges the pool's future transfers (miss reads, dirty-frame
// writebacks) to sc in addition to the disk-global counters.
func (p *BufferPool) SetScope(sc *ScopeStats) { p.scope = sc }

// HitRate returns cache hits and misses since creation.
func (p *BufferPool) HitRate() (hits, misses uint64) { return p.hits, p.misses }

// Get returns the cached contents of block id, fetching it on a miss. The
// returned slice aliases the frame: it is valid until the next pool call and
// must be followed by MarkDirty if modified.
func (p *BufferPool) Get(id BlockID) ([]byte, error) {
	if el, ok := p.byID[id]; ok {
		p.hits++
		p.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	p.misses++
	fr := &frame{id: id, data: p.frameBuf()}
	if err := p.disk.ReadBlock(id, fr.data); err != nil {
		return nil, err
	}
	p.scope.addRead()
	if err := p.insert(fr); err != nil {
		return nil, err
	}
	return fr.data, nil
}

// GetNew installs a fresh zeroed frame for a block just allocated with
// Disk.Alloc, without charging a read (there is nothing to fetch).
func (p *BufferPool) GetNew(id BlockID) ([]byte, error) {
	if _, ok := p.byID[id]; ok {
		return nil, fmt.Errorf("em: GetNew of cached block %d", id)
	}
	fr := &frame{id: id, data: p.frameBuf(), dirty: true}
	clear(fr.data)
	if err := p.insert(fr); err != nil {
		return nil, err
	}
	return fr.data, nil
}

// frameBuf returns a block-sized byte slice, recycling an evicted frame's
// slice when one is available. Contents are unspecified; Get overwrites
// via ReadBlock and GetNew clears.
func (p *BufferPool) frameBuf() []byte {
	if n := len(p.free); n > 0 {
		buf := p.free[n-1]
		p.free = p.free[:n-1]
		return buf
	}
	return make([]byte, p.disk.blockSize)
}

func (p *BufferPool) insert(fr *frame) error {
	for p.lru.Len() >= p.frames {
		if err := p.evict(); err != nil {
			return err
		}
	}
	p.byID[fr.id] = p.lru.PushFront(fr)
	return nil
}

func (p *BufferPool) evict() error {
	el := p.lru.Back()
	if el == nil {
		return fmt.Errorf("em: evict from empty pool")
	}
	fr := el.Value.(*frame)
	if fr.dirty {
		if err := p.disk.WriteBlock(fr.id, fr.data); err != nil {
			return err
		}
		p.scope.addWrite()
	}
	p.lru.Remove(el)
	delete(p.byID, fr.id)
	p.free = append(p.free, fr.data)
	fr.data = nil
	return nil
}

// MarkDirty records that the cached copy of id was modified, deferring the
// write transfer to eviction or Flush.
func (p *BufferPool) MarkDirty(id BlockID) error {
	el, ok := p.byID[id]
	if !ok {
		return fmt.Errorf("em: MarkDirty of uncached block %d", id)
	}
	el.Value.(*frame).dirty = true
	return nil
}

// Flush writes back every dirty frame and empties the pool.
func (p *BufferPool) Flush() error {
	for p.lru.Len() > 0 {
		if err := p.evict(); err != nil {
			return err
		}
	}
	return nil
}
