//go:build linux

package em

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
	"unsafe"
)

// mmapSlots is the performance-first slot store: slots live in a
// MAP_SHARED mapping of a temp file, so reads are page-cache memcpys
// with no syscall per block and writes are submitted in batches —
// copies land in the mapping immediately (the kernel's write-behind
// owns persistence) and an MS_ASYNC msync over the accumulated dirty
// extent is issued once per flushEvery bytes, not per block.
//
// Lifecycle (DESIGN.md §15): the mapping grows geometrically; growing
// remaps (munmap → ftruncate → mmap), which is safe against concurrent
// readAt/writeAt because grow runs with the Disk's write lock held —
// exclusively of every reader and writer — per the backend contract.
// Close drops the mapping and removes the file; the store is scratch
// space, so durability is never required and MS_SYNC is never issued.
type mmapSlots struct {
	f    *os.File
	data []byte // current mapping; nil until first grow

	// Dirty-extent accounting for batched write submission. A mutex, not
	// atomics: writeAt already pays a memcpy, and the critical section is
	// two compares.
	mu       sync.Mutex
	dirtyLo  int64
	dirtyHi  int64
	dirtyLen int64
}

// flushEvery is the batched-submission threshold: one MS_ASYNC msync
// per this many dirty bytes.
const flushEvery = 1 << 20

// pageSize for mapping and msync alignment.
var pageSize = int64(os.Getpagesize())

// newMmapSlots returns an mmap slot store in dir, or an error when the
// platform or filesystem cannot map (the caller falls back to
// fileSlots). The initial mapping is created eagerly so inability to
// map surfaces here, not on the first block write.
func newMmapSlots(dir string) (*mmapSlots, error) {
	f, err := os.CreateTemp(dir, "maxrs-mmap-*.dat")
	if err != nil {
		return nil, fmt.Errorf("em: mmap store file: %w", err)
	}
	s := &mmapSlots{f: f}
	if err := s.remap(flushEvery); err != nil {
		return nil, errors.Join(err, f.Close(), os.Remove(f.Name()))
	}
	return s, nil
}

// remap grows the file and mapping to at least size bytes. Caller must
// hold the store exclusively (the Disk write lock, per the grow
// contract) — remapping moves s.data.
func (s *mmapSlots) remap(size int64) error {
	newCap := int64(len(s.data))
	if newCap == 0 {
		newCap = pageSize
	}
	for newCap < size {
		newCap *= 2
	}
	newCap = (newCap + pageSize - 1) / pageSize * pageSize
	if s.data != nil {
		if err := syscall.Munmap(s.data); err != nil {
			return fmt.Errorf("em: munmap: %w", err)
		}
		s.data = nil
	}
	if err := s.f.Truncate(newCap); err != nil {
		return fmt.Errorf("em: mmap store truncate: %w", err)
	}
	m, err := syscall.Mmap(int(s.f.Fd()), 0, int(newCap),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("em: mmap: %w", err)
	}
	s.data = m
	return nil
}

func (s *mmapSlots) grow(size int64) error {
	if size <= int64(len(s.data)) {
		return nil
	}
	// The mapping moves: reset dirty accounting to the new region
	// wholesale rather than msync-ing a dead mapping later.
	s.mu.Lock()
	s.dirtyLo, s.dirtyHi, s.dirtyLen = 0, 0, 0
	s.mu.Unlock()
	return s.remap(size)
}

func (s *mmapSlots) readAt(dst []byte, off int64) error {
	copy(dst, s.data[off:])
	return nil
}

func (s *mmapSlots) writeAt(src []byte, off int64) error {
	copy(s.data[off:], src)
	s.mu.Lock()
	if s.dirtyLen == 0 || off < s.dirtyLo {
		s.dirtyLo = off
	}
	if end := off + int64(len(src)); s.dirtyLen == 0 || end > s.dirtyHi {
		s.dirtyHi = off + int64(len(src))
	}
	s.dirtyLen += int64(len(src))
	var lo, hi int64
	flush := s.dirtyLen >= flushEvery
	if flush {
		lo, hi = s.dirtyLo, s.dirtyHi
		s.dirtyLen = 0
	}
	s.mu.Unlock()
	if flush {
		s.msyncAsync(lo, hi)
	}
	return nil
}

// msyncAsync submits the page-aligned extent [lo, hi) to the kernel's
// writeback (MS_ASYNC: schedule, don't wait). Submission failures are
// deliberately ignored — the data is already visible through the
// MAP_SHARED mapping and the file is scratch; msync here only paces
// dirty-page accumulation.
func (s *mmapSlots) msyncAsync(lo, hi int64) {
	lo = lo / pageSize * pageSize
	if hi > int64(len(s.data)) {
		hi = int64(len(s.data))
	}
	if lo >= hi {
		return
	}
	seg := s.data[lo:hi]
	// The syscall package wraps mmap/munmap but not msync; the raw call
	// is the only stdlib route (no new dependencies).
	_, _, _ = syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&seg[0])), uintptr(len(seg)), uintptr(syscall.MS_ASYNC))
}

func (s *mmapSlots) Close() error {
	var errs []error
	if s.data != nil {
		if err := syscall.Munmap(s.data); err != nil {
			errs = append(errs, fmt.Errorf("em: munmap: %w", err))
		}
		s.data = nil
	}
	name := s.f.Name()
	errs = append(errs, s.f.Close(), os.Remove(name))
	return errors.Join(errs...)
}
