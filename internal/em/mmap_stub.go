//go:build !linux

package em

import "errors"

// errMmapUnsupported makes NewStoreDisk's StoreMmap path fall back to
// the portable file store on platforms without the linux mmap wiring.
var errMmapUnsupported = errors.New("em: mmap store not supported on this platform")

// newMmapSlots always fails here; the caller falls back to fileSlots,
// which is the documented graceful-degradation path.
func newMmapSlots(string) (slotStore, error) { return nil, errMmapUnsupported }
