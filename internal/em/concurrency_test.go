package em

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestInterleavedWritersDoNotCorruptBlocks is the regression test for the
// shared-scratch-buffer design of fileBackend.write: two writers on the
// same disk, flushing alternately (as the division phase's per-child
// writers do), must never see each other's payloads — with a single shared
// pad buffer the second writer's copy-in could clobber the first's bytes
// before its WriteAt ran.
func TestInterleavedWritersDoNotCorruptBlocks(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			var d *Disk
			var err error
			if backend == "file" {
				d, err = NewFileBackedDisk(t.TempDir(), 64)
			} else {
				d, err = NewDisk(64)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			fa, fb := NewFile(d), NewFile(d)
			wa, wb := fa.NewWriter(), fb.NewWriter()
			// 48-byte payloads on 64-byte blocks: every flush is a partial
			// write and takes the padded scratch path.
			for i := 0; i < 100; i++ {
				pa := bytes.Repeat([]byte{byte(i)}, 48)
				pb := bytes.Repeat([]byte{byte(200 - i)}, 48)
				if _, err := wa.Write(pa); err != nil {
					t.Fatal(err)
				}
				if _, err := wb.Write(pb); err != nil {
					t.Fatal(err)
				}
			}
			if err := wa.Close(); err != nil {
				t.Fatal(err)
			}
			if err := wb.Close(); err != nil {
				t.Fatal(err)
			}

			checkStream := func(f *File, value func(i int) byte) {
				t.Helper()
				r := f.NewReader()
				got, err := io.ReadAll(r)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 100*48 {
					t.Fatalf("stream length %d, want %d", len(got), 100*48)
				}
				for i := 0; i < 100; i++ {
					for j := 0; j < 48; j++ {
						if got[i*48+j] != value(i) {
							t.Fatalf("payload %d byte %d = %d, want %d",
								i, j, got[i*48+j], value(i))
						}
					}
				}
			}
			checkStream(fa, func(i int) byte { return byte(i) })
			checkStream(fb, func(i int) byte { return byte(200 - i) })
		})
	}
}

// TestConcurrentWriters drives many goroutines, each writing and then
// reading back its own file on one shared disk. Run under -race this is
// the data-race test for the Disk's locking and the fileBackend's pooled
// scratch buffers.
func TestConcurrentWriters(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			var d *Disk
			var err error
			if backend == "file" {
				d, err = NewFileBackedDisk(t.TempDir(), 128)
			} else {
				d, err = NewDisk(128)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			const workers = 8
			var wg sync.WaitGroup
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					errs[w] = func() error {
						f := NewFile(d)
						wr := f.NewWriter()
						// 100-byte payloads: partial flushes throughout.
						payload := bytes.Repeat([]byte{byte(w + 1)}, 100)
						for i := 0; i < 50; i++ {
							if _, err := wr.Write(payload); err != nil {
								return err
							}
						}
						if err := wr.Close(); err != nil {
							return err
						}
						got, err := io.ReadAll(f.NewReader())
						if err != nil {
							return err
						}
						if len(got) != 50*100 {
							return fmt.Errorf("worker %d: length %d", w, len(got))
						}
						for i, b := range got {
							if b != byte(w+1) {
								return fmt.Errorf("worker %d: byte %d = %d", w, i, b)
							}
						}
						return f.Release()
					}()
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if got := d.InUse(); got != 0 {
				t.Fatalf("InUse = %d after all files released", got)
			}
		})
	}
}

// TestConcurrentStatsAreExact checks that the atomic tally loses no
// transfers under concurrency: W workers each writing and reading back K
// full blocks must count exactly 2·W·K transfers.
func TestConcurrentStatsAreExact(t *testing.T) {
	d := MustNewDisk(64)
	const workers, blocks = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < blocks; i++ {
				id := d.Alloc()
				if err := d.WriteBlock(id, buf); err != nil {
					t.Error(err)
					return
				}
				if err := d.ReadBlock(id, buf); err != nil {
					t.Error(err)
					return
				}
				if err := d.Free(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := d.Stats()
	if s.Reads != workers*blocks || s.Writes != workers*blocks {
		t.Fatalf("stats %v, want %d reads and %d writes", s, workers*blocks, workers*blocks)
	}
	if d.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", d.InUse())
	}
}
