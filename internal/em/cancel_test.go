package em

import (
	"context"
	"errors"
	"testing"
)

// TestWriterCancelAtBlockGranularity verifies a cancelled context stops a
// writer before its next block transfer and that releasing the partial
// file leaves nothing allocated.
func TestWriterCancelAtBlockGranularity(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		d := MustNewDisk(64)
		d.SetPipelining(pipelined)
		ctx, cancel := context.WithCancel(context.Background())
		env := Env{Disk: d, M: 256, Ctx: ctx}
		f := env.NewFile()
		w := f.NewWriter()
		if _, err := w.Write(make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
		blocksBefore := f.Blocks()
		cancel()
		if _, err := w.Write(make([]byte, 200)); !errors.Is(err, context.Canceled) {
			t.Fatalf("pipelined=%v: write after cancel: err = %v, want context.Canceled", pipelined, err)
		}
		if err := w.Close(); !errors.Is(err, context.Canceled) {
			t.Fatalf("pipelined=%v: close after cancel: err = %v, want context.Canceled", pipelined, err)
		}
		// No block was appended past the cancellation check. (The raw
		// write counter is not compared: in pipelined mode a write-behind
		// dispatched before the cancel may legitimately land after it.)
		if got := f.Blocks(); got != blocksBefore {
			t.Fatalf("pipelined=%v: %d blocks after cancel, want %d (no transfer past the check)", pipelined, got, blocksBefore)
		}
		if err := f.Release(); err != nil {
			t.Fatal(err)
		}
		if n := d.InUse(); n != 0 {
			t.Fatalf("pipelined=%v: %d blocks in use after release", pipelined, n)
		}
	}
}

// TestReaderCancelAtBlockGranularity verifies a reader consumes its
// current block but refuses to fetch the next one once the context is
// cancelled — including when a prefetch for it is already in flight.
func TestReaderCancelAtBlockGranularity(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		d := MustNewDisk(64)
		f := NewFile(d)
		w := f.NewWriter()
		if _, err := w.Write(make([]byte, 64*4)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		d.SetPipelining(pipelined)

		ctx, cancel := context.WithCancel(context.Background())
		env := Env{Disk: d, M: 256, Ctx: ctx}
		rr, err := OpenRecordReader(env, f, byteCodec{})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		if n, err := rr.ReadBatch(buf); err != nil || n != 64 {
			t.Fatalf("first block: n=%d err=%v", n, err)
		}
		cancel()
		if _, err := rr.Read(); !errors.Is(err, context.Canceled) {
			t.Fatalf("pipelined=%v: read after cancel: err = %v, want context.Canceled", pipelined, err)
		}
		if err := f.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

// byteCodec is a 1-byte test codec.
type byteCodec struct{}

func (byteCodec) Size() int                 { return 1 }
func (byteCodec) Encode(dst []byte, v byte) { dst[0] = v }
func (byteCodec) Decode(src []byte) byte    { return src[0] }
