package em

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDiskValidation(t *testing.T) {
	if _, err := NewDisk(0); err == nil {
		t.Fatal("NewDisk(0) should fail")
	}
	if _, err := NewDisk(-5); err == nil {
		t.Fatal("NewDisk(-5) should fail")
	}
	if _, err := NewDisk(512); err != nil {
		t.Fatalf("NewDisk(512): %v", err)
	}
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(4096, 4096); err == nil {
		t.Fatal("M < 2B should fail")
	}
	e, err := NewEnv(4096, 8192)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	if e.MemBlocks() != 2 {
		t.Fatalf("MemBlocks = %d, want 2", e.MemBlocks())
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := (Env{}).Validate(); err == nil {
		t.Fatal("zero Env should not validate")
	}
}

func TestBlockReadWriteCounts(t *testing.T) {
	d := MustNewDisk(64)
	id := d.Alloc()
	if got := d.Stats().Total(); got != 0 {
		t.Fatalf("alloc should be free, got %d transfers", got)
	}
	src := bytes.Repeat([]byte{0xAB}, 64)
	if err := d.WriteBlock(id, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := d.ReadBlock(id, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("read back mismatch")
	}
	if s := d.Stats(); s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats = %v, want 1 read 1 write", s)
	}
}

func TestBlockErrors(t *testing.T) {
	d := MustNewDisk(32)
	buf := make([]byte, 32)
	if err := d.ReadBlock(7, buf); err == nil {
		t.Fatal("read of unallocated block should fail")
	}
	id := d.Alloc()
	if err := d.WriteBlock(id, make([]byte, 33)); err == nil {
		t.Fatal("oversized write should fail")
	}
	if err := d.ReadBlock(id, make([]byte, 31)); err == nil {
		t.Fatal("undersized read buffer should fail")
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(id, buf); err == nil {
		t.Fatal("read of freed block should fail")
	}
	if err := d.Free(id); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestAllocReusesFreedBlocks(t *testing.T) {
	d := MustNewDisk(32)
	a := d.Alloc()
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	b := d.Alloc()
	if a != b {
		t.Fatalf("expected freed block %d to be reused, got %d", a, b)
	}
	if d.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", d.InUse())
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := MustNewDisk(16)
	f := NewFile(d)
	w := f.NewWriter()
	payload := []byte("the quick brown fox jumps over the lazy dog")
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", f.Size(), len(payload))
	}
	wantBlocks := (len(payload) + 15) / 16
	if f.Blocks() != wantBlocks {
		t.Fatalf("Blocks = %d, want %d", f.Blocks(), wantBlocks)
	}
	got, err := io.ReadAll(f.NewReader())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
}

func TestFileTransferAccounting(t *testing.T) {
	d := MustNewDisk(100)
	f := NewFile(d)
	w := f.NewWriter()
	data := make([]byte, 1000) // exactly 10 blocks
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Writes != 10 {
		t.Fatalf("writes = %d, want 10", s.Writes)
	}
	d.ResetStats()
	if _, err := io.ReadAll(f.NewReader()); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Reads != 10 || s.Writes != 0 {
		t.Fatalf("stats after scan = %v, want 10 reads", s)
	}
}

func TestWriterAfterClose(t *testing.T) {
	d := MustNewDisk(16)
	f := NewFile(d)
	w := f.NewWriter()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
	if _, err := w.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

func TestFileRelease(t *testing.T) {
	d := MustNewDisk(16)
	f := NewFile(d)
	w := f.NewWriter()
	if _, err := w.Write(make([]byte, 160)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if d.InUse() != 10 {
		t.Fatalf("InUse = %d, want 10", d.InUse())
	}
	if err := f.Release(); err != nil {
		t.Fatal(err)
	}
	if d.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", d.InUse())
	}
	if f.Size() != 0 || f.Blocks() != 0 {
		t.Fatal("released file should be empty")
	}
}

// int64Codec is a minimal test codec.
type int64Codec struct{}

func (int64Codec) Size() int                { return 8 }
func (int64Codec) Encode(d []byte, v int64) { binary.LittleEndian.PutUint64(d, uint64(v)) }
func (int64Codec) Decode(s []byte) int64    { return int64(binary.LittleEndian.Uint64(s)) }

func TestRecordRoundTrip(t *testing.T) {
	d := MustNewDisk(64)
	vals := make([]int64, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	f, err := WriteAll[int64](d, int64Codec{}, vals)
	if err != nil {
		t.Fatal(err)
	}
	if RecordCount(f, 8) != 1000 {
		t.Fatalf("RecordCount = %d, want 1000", RecordCount(f, 8))
	}
	got, err := ReadAll[int64](f, int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len = %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("record %d: got %d want %d", i, got[i], vals[i])
		}
	}
}

func TestRecordReaderEOF(t *testing.T) {
	d := MustNewDisk(64)
	f, err := WriteAll[int64](d, int64Codec{}, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRecordReader[int64](f, int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rr.Read(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rr.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	// EOF is sticky.
	if _, err := rr.Read(); err != io.EOF {
		t.Fatalf("want sticky io.EOF, got %v", err)
	}
}

func TestRecordCodecValidation(t *testing.T) {
	d := MustNewDisk(4) // record (8B) larger than block (4B)
	f := NewFile(d)
	if _, err := NewRecordWriter[int64](f, int64Codec{}); err == nil {
		t.Fatal("record larger than block should fail")
	}
	if _, err := NewRecordReader[int64](f, int64Codec{}); err == nil {
		t.Fatal("record larger than block should fail")
	}
}

// Property: any byte stream written through the one-block Writer reads back
// identically through the one-block Reader, for arbitrary block sizes.
func TestQuickStreamRoundTrip(t *testing.T) {
	prop := func(data []byte, blockSize uint8) bool {
		bs := int(blockSize%250) + 1
		d := MustNewDisk(bs)
		f := NewFile(d)
		w := f.NewWriter()
		if _, err := w.Write(data); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		got, err := io.ReadAll(f.NewReader())
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transfer accounting for a sequential write-then-read of n bytes
// is exactly 2*ceil(n/B).
func TestQuickTransferFormula(t *testing.T) {
	prop := func(n uint16, blockSize uint8) bool {
		bs := int(blockSize%200) + 1
		d := MustNewDisk(bs)
		f := NewFile(d)
		w := f.NewWriter()
		if _, err := w.Write(make([]byte, int(n))); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		if _, err := io.ReadAll(f.NewReader()); err != nil {
			return false
		}
		want := uint64((int(n) + bs - 1) / bs)
		s := d.Stats()
		return s.Writes == want && s.Reads == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolBasics(t *testing.T) {
	d := MustNewDisk(8)
	ids := make([]BlockID, 4)
	for i := range ids {
		ids[i] = d.Alloc()
		if err := d.WriteBlock(ids[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	p, err := NewBufferPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Miss, miss, hit.
	if _, err := p.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if h, m := p.HitRate(); h != 1 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", h, m)
	}
	if s := d.Stats(); s.Reads != 2 {
		t.Fatalf("reads = %d, want 2", s.Reads)
	}
	// ids[1] is LRU; touching ids[2] evicts it (clean, no write).
	if _, err := p.Get(ids[2]); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Writes != 0 {
		t.Fatalf("clean eviction should not write, got %d", s.Writes)
	}
	// Re-fetching ids[1] is a miss again.
	if _, err := p.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Reads != 4 {
		t.Fatalf("reads = %d, want 4", s.Reads)
	}
}

func TestBufferPoolDirtyWriteBack(t *testing.T) {
	d := MustNewDisk(8)
	a, b, c := d.Alloc(), d.Alloc(), d.Alloc()
	d.ResetStats()
	p, err := NewBufferPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := p.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 0x77
	if err := p.MarkDirty(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(b); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(c); err != nil { // evicts dirty a → 1 write
		t.Fatal(err)
	}
	if s := d.Stats(); s.Writes != 1 {
		t.Fatalf("writes = %d, want 1 (dirty eviction)", s.Writes)
	}
	// Verify the write-back landed.
	got := make([]byte, 8)
	if err := d.ReadBlock(a, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x77 {
		t.Fatalf("write-back lost: got %#x", got[0])
	}
}

func TestBufferPoolGetNewAndFlush(t *testing.T) {
	d := MustNewDisk(8)
	p, err := NewBufferPool(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	id := d.Alloc()
	buf, err := p.GetNew(id)
	if err != nil {
		t.Fatal(err)
	}
	buf[3] = 9
	if s := d.Stats(); s.Total() != 0 {
		t.Fatalf("GetNew should be free, got %v", s)
	}
	if _, err := p.GetNew(id); err == nil {
		t.Fatal("GetNew of cached block should fail")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Writes != 1 {
		t.Fatalf("flush writes = %d, want 1", s.Writes)
	}
	got := make([]byte, 8)
	if err := d.ReadBlock(id, got); err != nil {
		t.Fatal(err)
	}
	if got[3] != 9 {
		t.Fatal("flush lost data")
	}
}

func TestBufferPoolValidation(t *testing.T) {
	d := MustNewDisk(8)
	if _, err := NewBufferPool(d, 0); err == nil {
		t.Fatal("0-frame pool should fail")
	}
	p, err := NewBufferPool(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MarkDirty(99); err == nil {
		t.Fatal("MarkDirty of uncached block should fail")
	}
}

// Property: reading blocks through a pool of f frames with a cyclic access
// pattern over k distinct blocks costs k reads when k ≤ f (everything
// cached) and one read per access when the pattern is a strict LRU-killer
// cycle with k = f+1.
func TestBufferPoolLRUCycles(t *testing.T) {
	for _, frames := range []int{1, 2, 3, 8} {
		for _, k := range []int{1, frames, frames + 1} {
			if k < 1 {
				continue
			}
			d := MustNewDisk(8)
			ids := make([]BlockID, k)
			for i := range ids {
				ids[i] = d.Alloc()
			}
			d.ResetStats()
			p, err := NewBufferPool(d, frames)
			if err != nil {
				t.Fatal(err)
			}
			const rounds = 5
			for r := 0; r < rounds; r++ {
				for _, id := range ids {
					if _, err := p.Get(id); err != nil {
						t.Fatal(err)
					}
				}
			}
			got := d.Stats().Reads
			var want uint64
			if k <= frames {
				want = uint64(k) // cold misses only
			} else {
				want = uint64(k * rounds) // every access misses
			}
			if got != want {
				t.Errorf("frames=%d k=%d: reads=%d, want %d", frames, k, got, want)
			}
		}
	}
}
