package em

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Storage fault errors. Every error surfaced by a fault — injected or
// real — wraps one of these, so consumers at any layer can classify with
// errors.Is instead of matching message text.
var (
	// ErrIOFault marks a read or write transfer that failed at the
	// storage layer (a transient fault that exhausted its retries, or a
	// permanent one).
	ErrIOFault = errors.New("em: storage I/O fault")
	// ErrBlockCorrupt marks a block whose content failed checksum
	// verification (a torn write, bit rot, or injected corruption) and
	// could not be recovered by rereading.
	ErrBlockCorrupt = errors.New("em: block corrupt")
)

// transientErr marks a fault as transient: retrying the same transfer may
// succeed. Only injected transient faults and checksum mismatches are
// retried; everything else (permanent faults, real backend errors,
// programming errors) fails fast.
type transientErr struct{ err error }

func (t *transientErr) Error() string { return t.err.Error() }
func (t *transientErr) Unwrap() error { return t.err }

// IsTransient reports whether err is a retryable storage fault.
func IsTransient(err error) bool {
	var t *transientErr
	return errors.As(err, &t)
}

// MarkTransient wraps err so IsTransient reports it retryable, keeping
// errors.Is/As visibility into err. Other layers (the distributed
// coordinator's network faults) use it so one classifier spans storage
// and network faults. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err}
}

// retryable reports whether the retry loop should attempt the transfer
// again: transient faults (the fault may clear) and checksum mismatches
// (the corruption may have happened in flight, a reread sees clean data).
func retryable(err error) bool {
	return IsTransient(err) || errors.Is(err, ErrBlockCorrupt)
}

// RetryPolicy caps how transient faults and checksum mismatches are
// retried by a Disk's block transfers. The zero value never retries.
// Backoff is exponential from BaseDelay, doubling per attempt and capped
// at MaxDelay (0 = uncapped); a zero BaseDelay retries immediately. With
// JitterSeed set the backoff is decorrelated-jittered instead (see the
// field), so parallel workers tripping over the same fault do not retry
// in lockstep. The policy changes no transfer when no fault fires: the
// counted schedule of a fault-free run is bit-identical with any policy,
// so enabling retries in production costs nothing on the I/O metric.
type RetryPolicy struct {
	// MaxRetries is the number of additional attempts after the first
	// failed transfer (0 = fail on the first fault).
	MaxRetries int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0 = no cap).
	MaxDelay time.Duration
	// JitterSeed, when non-zero, switches the backoff to seeded
	// decorrelated jitter: each retry sleeps a duration drawn uniformly
	// from [BaseDelay, min(3·previous, MaxDelay)], with the draws coming
	// from one rand.Rand seeded with JitterSeed per policy installation.
	// Deterministic under a fixed seed for a serial retry sequence (the
	// fault-matrix tests stay exact); under concurrency the interleaving
	// shuffles which loop draws which number, but every delay stays within
	// the same bounds — and concurrent loops no longer back off in
	// lockstep, which is the point. 0 keeps the plain doubling backoff.
	JitterSeed int64
}

// delay returns the non-jittered backoff before retry number attempt
// (0-based): BaseDelay doubling per attempt, capped at MaxDelay.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// JitterSource is the seeded random stream behind a policy's decorrelated
// jitter, shared by every retry loop on one Disk so that concurrent loops
// draw different numbers (sharing is what decorrelates them) while a
// serial sequence of retries stays a pure function of the seed.
type JitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func NewJitterSource(seed int64) *JitterSource {
	return &JitterSource{rng: rand.New(rand.NewSource(seed))}
}

func (j *JitterSource) float64() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Float64()
}

// Backoff tracks one retry loop's delay state. Next returns the sleep
// before the loop's next retry: plain capped doubling without a jitter
// source, decorrelated jitter with one. Shared by the storage retry
// loops (Disk) and the distributed coordinator's worker-call retries.
type Backoff struct {
	p       RetryPolicy
	src     *JitterSource
	attempt int
	prev    time.Duration
}

// Backoff returns the delay state for one retry loop. src supplies the
// jitter draws and may be nil (or the policy's JitterSeed zero), in which
// case the loop keeps the deterministic doubling schedule.
func (p RetryPolicy) Backoff(src *JitterSource) Backoff {
	if p.JitterSeed == 0 {
		src = nil
	}
	return Backoff{p: p, src: src, prev: p.BaseDelay}
}

func (b *Backoff) Next() time.Duration {
	if b.p.BaseDelay <= 0 {
		return 0
	}
	if b.src == nil {
		d := b.p.delay(b.attempt)
		b.attempt++
		return d
	}
	// Decorrelated jitter: draw from [base, 3·prev], capped at MaxDelay.
	// Every delay is ≥ BaseDelay and ≤ max(BaseDelay, MaxDelay) — the
	// bounds the unit tests pin.
	hi := 3 * b.prev
	if b.p.MaxDelay > 0 && hi > b.p.MaxDelay {
		hi = b.p.MaxDelay
	}
	if hi < b.p.BaseDelay {
		hi = b.p.BaseDelay
	}
	d := b.p.BaseDelay + time.Duration(b.src.float64()*float64(hi-b.p.BaseDelay))
	b.prev = d
	return d
}

// sleepCtx sleeps for d, aborting early with the context's error once ctx
// is cancelled. A nil ctx never cancels.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FaultOp selects which transfer direction a scheduled fault targets.
type FaultOp int

// Fault operations.
const (
	// OpRead targets read transfers (disk → memory).
	OpRead FaultOp = iota
	// OpWrite targets write transfers (memory → disk).
	OpWrite
)

// FaultKind is a class of injected storage fault.
type FaultKind int

// Fault classes.
const (
	// FaultTransient fails the targeted transfer once with a retryable
	// error wrapping ErrIOFault; the next attempt succeeds.
	FaultTransient FaultKind = iota
	// FaultPermanent fails the targeted transfer with a non-retryable
	// error wrapping ErrIOFault and marks the block bad: every further
	// read or write of it fails too, until the block is freed (a realloc
	// models a remapped sector).
	FaultPermanent
	// FaultCorrupt delivers the targeted read with deterministically
	// flipped bits, once. With checksums enabled the mismatch is detected
	// and a retry rereads the clean stored data; without checksums the
	// corruption is silent — exactly the failure mode checksums exist for.
	FaultCorrupt
	// FaultTorn persists the targeted write with flipped bits (a torn
	// write). Every later read of the block fails checksum verification
	// until it is overwritten; with retries exhausted the reader surfaces
	// ErrBlockCorrupt.
	FaultTorn
	// FaultLatency delays the targeted transfer by FaultPlan.Latency and
	// then performs it normally — a latency spike, not an error.
	FaultLatency
)

// FaultAt schedules one fault at an exact transfer index, counted per
// direction from the moment the injector is installed: Transfer == 1
// targets the first read (OpRead) or first write (OpWrite) attempt that
// reaches the backend. Exact schedules are fully reproducible regardless
// of goroutine interleaving — "the k-th transfer" is well defined even
// when the k-th transfer's block depends on scheduling.
type FaultAt struct {
	Op       FaultOp
	Transfer uint64 // 1-based transfer-attempt index within Op
	Kind     FaultKind
}

// FaultPlan configures deterministic storage-fault injection on a Disk
// (Disk.InjectFaults). Faults come from two sources that compose:
//
//   - At: exact per-transfer schedules (FaultAt), reproducible bit-for-bit.
//   - Seed-driven rates: each transfer not claimed by At draws once from a
//     rand.Rand seeded with Seed; the cumulative rate bands decide the
//     fault. For a fixed serial transfer sequence the outcome is a pure
//     function of Seed; under concurrency the interleaving shuffles which
//     transfer draws which number, but the fault *rate* and the total
//     fault count distribution are reproducible.
//
// A zero plan injects nothing, and an installed injector that injects
// nothing leaves the counted transfer schedule bit-identical to an
// uninstrumented disk.
type FaultPlan struct {
	// Seed seeds the rate-driven draws. Used only when a rate is > 0.
	Seed int64
	// TransientReadRate / TransientWriteRate are per-transfer
	// probabilities of a retryable fault (FaultTransient).
	TransientReadRate  float64
	TransientWriteRate float64
	// CorruptReadRate is the per-read probability of one-shot corruption
	// (FaultCorrupt).
	CorruptReadRate float64
	// LatencyRate is the per-transfer probability of a latency spike of
	// Latency (FaultLatency).
	LatencyRate float64
	Latency     time.Duration
	// At schedules faults at exact transfer indices, taking precedence
	// over the rates for those transfers.
	At []FaultAt
}

// injects reports whether the plan can ever fire a fault.
func (p FaultPlan) injects() bool {
	return len(p.At) > 0 || p.TransientReadRate > 0 || p.TransientWriteRate > 0 ||
		p.CorruptReadRate > 0 || p.LatencyRate > 0
}

// FaultStats counts fault-handling activity on a Disk since the injector
// (and the disk's own retry/checksum counters) last reset. Retries and
// checksum failures are counted by the Disk itself and appear whether or
// not an injector is installed — a real backend error is retried exactly
// like an injected one.
type FaultStats struct {
	// ReadRetries / WriteRetries count retry attempts performed by the
	// retry policy (not the initial attempts).
	ReadRetries  uint64
	WriteRetries uint64
	// ChecksumFailures counts reads whose content failed CRC32C
	// verification (each failed attempt counts once).
	ChecksumFailures uint64
	// Injected* count faults the injector actually fired, by kind.
	InjectedTransient uint64
	InjectedPermanent uint64
	InjectedCorrupt   uint64
	InjectedTorn      uint64
	InjectedLatency   uint64
}

// faultBackend wraps a backend and injects faults per a FaultPlan. The
// scheduling state (transfer counters, rng, bad-block set) is mutex-
// guarded; the wrapped transfer itself runs outside the lock, so injection
// adds no serialization to concurrent clean transfers beyond the counter
// bump.
type faultBackend struct {
	inner backend
	plan  FaultPlan

	mu      sync.Mutex
	rng     *rand.Rand
	reads   uint64
	writes  uint64
	readAt  map[uint64]FaultKind
	writeAt map[uint64]FaultKind
	bad     map[BlockID]struct{}

	injTransient uint64
	injPermanent uint64
	injCorrupt   uint64
	injTorn      uint64
	injLatency   uint64
}

func newFaultBackend(inner backend, plan FaultPlan) *faultBackend {
	fb := &faultBackend{
		inner:   inner,
		plan:    plan,
		readAt:  make(map[uint64]FaultKind),
		writeAt: make(map[uint64]FaultKind),
		bad:     make(map[BlockID]struct{}),
	}
	if plan.TransientReadRate > 0 || plan.TransientWriteRate > 0 ||
		plan.CorruptReadRate > 0 || plan.LatencyRate > 0 {
		fb.rng = rand.New(rand.NewSource(plan.Seed))
	}
	for _, at := range plan.At {
		if at.Op == OpRead {
			fb.readAt[at.Transfer] = at.Kind
		} else {
			fb.writeAt[at.Transfer] = at.Kind
		}
	}
	return fb
}

// noFault is the sentinel "inject nothing" decision.
const noFault FaultKind = -1

// decide advances the op's transfer counter and returns the fault to
// inject for this attempt (noFault = none) plus whether the block is
// already marked permanently bad.
func (fb *faultBackend) decide(op FaultOp, id BlockID) (kind FaultKind, bad bool) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	var n uint64
	exact := fb.readAt
	if op == OpRead {
		fb.reads++
		n = fb.reads
	} else {
		fb.writes++
		n = fb.writes
		exact = fb.writeAt
	}
	if _, isBad := fb.bad[id]; isBad {
		return noFault, true
	}
	k, ok := exact[n]
	if !ok {
		k = fb.draw(op)
	}
	switch k {
	case FaultTransient:
		fb.injTransient++
	case FaultPermanent:
		fb.injPermanent++
		fb.bad[id] = struct{}{}
	case FaultCorrupt:
		fb.injCorrupt++
	case FaultTorn:
		fb.injTorn++
	case FaultLatency:
		fb.injLatency++
	}
	return k, false
}

// draw makes the rate-driven decision for one transfer: a single uniform
// draw, subdivided into cumulative bands so each transfer consumes exactly
// one random number (keeping serial schedules a pure function of the seed).
func (fb *faultBackend) draw(op FaultOp) FaultKind {
	if fb.rng == nil {
		return noFault
	}
	r := fb.rng.Float64()
	transient := fb.plan.TransientWriteRate
	corrupt := 0.0
	if op == OpRead {
		transient = fb.plan.TransientReadRate
		corrupt = fb.plan.CorruptReadRate
	}
	switch {
	case r < transient:
		return FaultTransient
	case r < transient+corrupt:
		return FaultCorrupt
	case r < transient+corrupt+fb.plan.LatencyRate:
		return FaultLatency
	}
	return noFault
}

// corruptByte is XORed into the first byte of a corrupted or torn block —
// deterministic, so tests can even assert the exact damage.
const corruptByte = 0xA5

func (fb *faultBackend) read(id BlockID, dst []byte) error {
	kind, bad := fb.decide(OpRead, id)
	if bad {
		return fmt.Errorf("%w: block %d unreadable (permanent fault)", ErrIOFault, id)
	}
	switch kind {
	case FaultTransient:
		return &transientErr{fmt.Errorf("%w: injected transient read fault (block %d)", ErrIOFault, id)}
	case FaultPermanent:
		return fmt.Errorf("%w: block %d unreadable (permanent fault)", ErrIOFault, id)
	case FaultCorrupt:
		if err := fb.inner.read(id, dst); err != nil {
			return err
		}
		if len(dst) > 0 {
			dst[0] ^= corruptByte
		}
		return nil
	case FaultLatency:
		time.Sleep(fb.plan.Latency)
	}
	return fb.inner.read(id, dst)
}

func (fb *faultBackend) write(id BlockID, src []byte) error {
	kind, bad := fb.decide(OpWrite, id)
	if bad {
		return fmt.Errorf("%w: block %d unwritable (permanent fault)", ErrIOFault, id)
	}
	switch kind {
	case FaultTransient:
		return &transientErr{fmt.Errorf("%w: injected transient write fault (block %d)", ErrIOFault, id)}
	case FaultPermanent:
		return fmt.Errorf("%w: block %d unwritable (permanent fault)", ErrIOFault, id)
	case FaultTorn:
		// Persist damaged bytes: the write "succeeds" but the stored
		// content disagrees with what the caller (and the checksum layer)
		// believes was written.
		torn := make([]byte, len(src))
		copy(torn, src)
		if len(torn) > 0 {
			torn[0] ^= corruptByte
		} else {
			// A zero-length write still zeroes the block; tear it by
			// writing one damaged byte instead.
			torn = []byte{corruptByte}
		}
		return fb.inner.write(id, torn)
	case FaultLatency:
		time.Sleep(fb.plan.Latency)
	}
	return fb.inner.write(id, src)
}

// grow passes through: allocation is metadata, not a transfer, and the
// Disk would panic on a grow error — injecting there would test nothing
// about the transfer paths.
func (fb *faultBackend) grow(id BlockID) error { return fb.inner.grow(id) }

// free forwards block release to the wrapped backend and clears the
// block's permanent-fault mark: a reallocated block models a fresh
// (remapped) sector.
func (fb *faultBackend) free(id BlockID) {
	fb.mu.Lock()
	delete(fb.bad, id)
	fb.mu.Unlock()
	if fr, ok := fb.inner.(blockFreer); ok {
		fr.free(id)
	}
}

func (fb *faultBackend) Close() error { return fb.inner.Close() }

// stats snapshots the injector's fired-fault counters.
func (fb *faultBackend) stats() (transient, permanent, corrupt, torn, latency uint64) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.injTransient, fb.injPermanent, fb.injCorrupt, fb.injTorn, fb.injLatency
}
