package em

import (
	"io"
	"testing"
)

// oddCodec is a 3-byte codec: with any power-of-two block size, records
// regularly straddle block boundaries, exercising the staging-buffer
// fallback of the batched paths.
type oddCodec struct{}

func (oddCodec) Size() int { return 3 }
func (oddCodec) Encode(dst []byte, v int32) {
	dst[0], dst[1], dst[2] = byte(v), byte(v>>8), byte(v>>16)
}
func (oddCodec) Decode(src []byte) int32 {
	return int32(src[0]) | int32(src[1])<<8 | int32(src[2])<<16
}

// TestBatchRoundTrip checks WriteBatch → ReadBatch equivalence with
// boundary-straddling records, at several batch sizes.
func TestBatchRoundTrip(t *testing.T) {
	const n = 1000
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i * 7)
	}
	d := MustNewDisk(64) // 3-byte records, 64-byte blocks: 21⅓ per block
	f := NewFile(d)
	w, err := NewRecordWriter(f, oddCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(vs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}

	for _, batchSize := range []int{1, 2, 21, 22, 256, 2 * n} {
		rr, err := NewRecordReader(f, oddCodec{})
		if err != nil {
			t.Fatal(err)
		}
		var got []int32
		batch := make([]int32, batchSize)
		for {
			k, err := rr.ReadBatch(batch)
			got = append(got, batch[:k]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != n {
			t.Fatalf("batch %d: read %d records, want %d", batchSize, len(got), n)
		}
		for i, v := range got {
			if v != vs[i] {
				t.Fatalf("batch %d: record %d = %d, want %d", batchSize, i, v, vs[i])
			}
		}
	}
}

// TestBatchTransferCountsMatchUnbatched checks the accounting contract:
// batched and per-record paths cost exactly the same transfers.
func TestBatchTransferCountsMatchUnbatched(t *testing.T) {
	const n = 500
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}

	unbatched := MustNewDisk(64)
	fu := NewFile(unbatched)
	wu, _ := NewRecordWriter(fu, oddCodec{})
	for _, v := range vs {
		if err := wu.Write(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := wu.Close(); err != nil {
		t.Fatal(err)
	}
	ru, _ := NewRecordReader(fu, oddCodec{})
	for {
		if _, err := ru.Read(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}

	batched := MustNewDisk(64)
	fb := NewFile(batched)
	wb, _ := NewRecordWriter(fb, oddCodec{})
	if err := wb.WriteBatch(vs); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	rb, _ := NewRecordReader(fb, oddCodec{})
	batch := make([]int32, 64)
	for {
		if _, err := rb.ReadBatch(batch); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}

	if u, b := unbatched.Stats(), batched.Stats(); u != b {
		t.Fatalf("batched stats %v != unbatched stats %v", b, u)
	}
}

// TestReadBatchTruncatedRecord checks that a file whose tail is not a whole
// record fails the same way the per-record reader does.
func TestReadBatchTruncatedRecord(t *testing.T) {
	d := MustNewDisk(64)
	f := NewFile(d)
	w := f.NewWriter()
	if _, err := w.Write(make([]byte, 7)); err != nil { // 2 records + 1 byte
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err := NewRecordReader(f, oddCodec{})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int32, 8)
	k, err := rr.ReadBatch(batch)
	if k != 2 || err == nil || err == io.EOF {
		t.Fatalf("ReadBatch = (%d, %v), want (2, truncated-record error)", k, err)
	}
}
