package em

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// backend is the physical storage under a Disk. The default is in-process
// memory (fast, hermetic — the transfer counters are the measurement, per
// §7.1); a file backend stores blocks in a real OS file so the simulator
// can also run genuinely out of core.
//
// Concurrency contract: grow is only called with the Disk's write lock
// held; read and write are called with its read lock held and so may run
// concurrently with each other (on distinct blocks) but never with grow.
type backend interface {
	read(id BlockID, dst []byte) error
	write(id BlockID, src []byte) error
	// grow ensures capacity for block id.
	grow(id BlockID) error
	// Close releases backend resources.
	Close() error
}

// blockFreer is the optional backend capability of dropping a released
// block's storage immediately (memBackend, and any wrapper forwarding to
// one). Disk.Free feature-tests for it so large intermediates are
// collected even through a fault-injecting wrapper.
type blockFreer interface {
	free(id BlockID)
}

// memBackend keeps blocks in process memory.
type memBackend struct {
	blockSize int
	blocks    [][]byte
}

func (m *memBackend) grow(id BlockID) error {
	for int(id) >= len(m.blocks) {
		m.blocks = append(m.blocks, nil)
	}
	if m.blocks[id] == nil {
		m.blocks[id] = make([]byte, m.blockSize)
	} else {
		clear(m.blocks[id])
	}
	return nil
}

func (m *memBackend) read(id BlockID, dst []byte) error {
	copy(dst, m.blocks[id])
	return nil
}

func (m *memBackend) write(id BlockID, src []byte) error {
	b := m.blocks[id]
	copy(b, src)
	for i := len(src); i < len(b); i++ {
		b[i] = 0
	}
	return nil
}

// free drops the storage of a released block. Called with the Disk's write
// lock held.
func (m *memBackend) free(id BlockID) {
	if int(id) < len(m.blocks) {
		m.blocks[id] = nil
	}
}

func (m *memBackend) Close() error {
	m.blocks = nil
	return nil
}

// fileBackend stores blocks at offset id·blockSize in an OS file. Partial
// writes pad to a whole block through a pooled per-call scratch buffer: a
// single shared buffer would be corrupted by two in-flight writers (each
// copies its payload in before the WriteAt), even when the writers target
// different blocks.
type fileBackend struct {
	blockSize int
	f         *os.File
	scratch   sync.Pool // of []byte, blockSize each
}

func newFileBackend(f *os.File, blockSize int) *fileBackend {
	fb := &fileBackend{blockSize: blockSize, f: f}
	fb.scratch.New = func() any { return make([]byte, blockSize) }
	return fb
}

func (fb *fileBackend) grow(id BlockID) error {
	// Zero the (possibly reused) block region.
	return fb.write(id, nil)
}

func (fb *fileBackend) read(id BlockID, dst []byte) error {
	_, err := fb.f.ReadAt(dst[:fb.blockSize], int64(id)*int64(fb.blockSize))
	return err
}

func (fb *fileBackend) write(id BlockID, src []byte) error {
	off := int64(id) * int64(fb.blockSize)
	if len(src) == fb.blockSize {
		// Full-block writes need no padding; src is owned by the caller for
		// the duration of the call, so it can go straight to the file.
		_, err := fb.f.WriteAt(src, off)
		return err
	}
	buf := fb.scratch.Get().([]byte)
	copy(buf, src)
	clear(buf[len(src):])
	_, err := fb.f.WriteAt(buf, off)
	fb.scratch.Put(buf)
	return err
}

// Close closes and removes the backing file. The remove runs even when
// the close fails — leaking a temp file because close errored would turn
// one fault into two — and both errors surface, joined.
func (fb *fileBackend) Close() error {
	name := fb.f.Name()
	return errors.Join(fb.f.Close(), os.Remove(name))
}

// NewFileBackedDisk returns a Disk whose blocks live in a temporary file
// under dir ("" = the OS temp directory). The transfer counters behave
// identically to the in-memory disk; only the storage medium differs.
// Stream pipelining (prefetch + write-behind, DESIGN.md §8) is enabled by
// default so sequential scans overlap real disk latency with CPU; disable
// with SetPipelining(false) — counts are identical either way. Call Close
// when done to remove the backing file.
func NewFileBackedDisk(dir string, blockSize int) (*Disk, error) {
	if blockSize <= 0 {
		return nil, ErrBlockSize
	}
	f, err := os.CreateTemp(dir, "maxrs-disk-*.dat")
	if err != nil {
		return nil, fmt.Errorf("em: backing file: %w", err)
	}
	d := &Disk{
		blockSize: blockSize,
		backend:   newFileBackend(f, blockSize),
	}
	d.pipelined.Store(true)
	return d, nil
}
