// Package rec defines the fixed-size on-disk record formats used throughout
// the external-memory pipeline, together with their em.Codec implementations:
//
//	Object   24 B  — an input point with weight (the set O)
//	WRect    40 B  — a weighted rectangle (the transformed set R, §5.1)
//	Tuple    32 B  — a slab-file max-interval tuple <y, [x1,x2], sum> (§5.2.2)
//	Event    41 B  — a horizontal-edge sweep event (baselines)
//
// All encodings are little-endian raw float64 bits. Records never span
// blocks logically; the byte stream is blocked by em.Writer.
package rec

import (
	"encoding/binary"
	"math"

	"maxrs/internal/geom"
)

func putF(dst []byte, v float64) { binary.LittleEndian.PutUint64(dst, math.Float64bits(v)) }
func getF(src []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(src)) }

// Object is the on-disk form of a weighted input point.
type Object struct {
	X, Y, W float64
}

// Geom converts to the geometry type.
func (o Object) Geom() geom.Object {
	return geom.Object{Point: geom.Point{X: o.X, Y: o.Y}, W: o.W}
}

// FromGeom converts from the geometry type.
func FromGeom(o geom.Object) Object { return Object{X: o.X, Y: o.Y, W: o.W} }

// ObjectCodec serializes Object records (24 bytes).
type ObjectCodec struct{}

// Size implements em.Codec.
func (ObjectCodec) Size() int { return 24 }

// Encode implements em.Codec.
func (ObjectCodec) Encode(dst []byte, o Object) {
	putF(dst[0:], o.X)
	putF(dst[8:], o.Y)
	putF(dst[16:], o.W)
}

// Decode implements em.Codec.
func (ObjectCodec) Decode(src []byte) Object {
	return Object{X: getF(src[0:]), Y: getF(src[8:]), W: getF(src[16:])}
}

// WRect is a weighted axis-aligned rectangle [X1,X2) × [Y1,Y2), the element
// type of the transformed set R and of the spanning files R′.
type WRect struct {
	X1, X2, Y1, Y2, W float64
}

// RectOf returns the geometric rectangle.
func (r WRect) RectOf() geom.Rect {
	return geom.Rect{X: geom.Interval{Lo: r.X1, Hi: r.X2}, Y: geom.Interval{Lo: r.Y1, Hi: r.Y2}}
}

// FromObject builds the transformed rectangle of §5.1: the w×h rectangle of
// the query size centered at the object, carrying the object's weight. Any
// point covered by this rectangle is a center position whose query rectangle
// covers the object.
func FromObject(o Object, w, h float64) WRect {
	return WRect{
		X1: o.X - w/2, X2: o.X + w/2,
		Y1: o.Y - h/2, Y2: o.Y + h/2,
		W: o.W,
	}
}

// WRectCodec serializes WRect records (40 bytes).
type WRectCodec struct{}

// Size implements em.Codec.
func (WRectCodec) Size() int { return 40 }

// Encode implements em.Codec.
func (WRectCodec) Encode(dst []byte, r WRect) {
	putF(dst[0:], r.X1)
	putF(dst[8:], r.X2)
	putF(dst[16:], r.Y1)
	putF(dst[24:], r.Y2)
	putF(dst[32:], r.W)
}

// Decode implements em.Codec.
func (WRectCodec) Decode(src []byte) WRect {
	return WRect{
		X1: getF(src[0:]), X2: getF(src[8:]),
		Y1: getF(src[16:]), Y2: getF(src[24:]),
		W: getF(src[32:]),
	}
}

// Tuple is a slab-file record: on the h-line at Y, [X1, X2) is a max-interval
// of the slab and Sum is the location-weight of its points (Definition 6).
// Slab files store tuples in ascending Y order.
type Tuple struct {
	Y, X1, X2, Sum float64
}

// TupleCodec serializes Tuple records (32 bytes).
type TupleCodec struct{}

// Size implements em.Codec.
func (TupleCodec) Size() int { return 32 }

// Encode implements em.Codec.
func (TupleCodec) Encode(dst []byte, t Tuple) {
	putF(dst[0:], t.Y)
	putF(dst[8:], t.X1)
	putF(dst[16:], t.X2)
	putF(dst[24:], t.Sum)
}

// Decode implements em.Codec.
func (TupleCodec) Decode(src []byte) Tuple {
	return Tuple{Y: getF(src[0:]), X1: getF(src[8:]), X2: getF(src[16:]), Sum: getF(src[24:])}
}

// Event is a horizontal-edge sweep event: at Y the interval [X1, X2) starts
// contributing weight W (Top == false, a bottom edge) or stops (Top == true).
// Used by the plane-sweep baselines, which process events in (Y, Top) order
// with tops first so that half-open rectangles never self-intersect at a
// shared boundary.
type Event struct {
	Y, X1, X2, W float64
	Top          bool
}

// EventsOf expands a rectangle into its bottom and top events.
func EventsOf(r WRect) (bottom, top Event) {
	bottom = Event{Y: r.Y1, X1: r.X1, X2: r.X2, W: r.W}
	top = Event{Y: r.Y2, X1: r.X1, X2: r.X2, W: r.W, Top: true}
	return bottom, top
}

// Less orders events by Y, tops before bottoms at equal Y.
func (e Event) Less(other Event) bool {
	if e.Y != other.Y {
		return e.Y < other.Y
	}
	if e.Top != other.Top {
		return e.Top // top (removal) first
	}
	if e.X1 != other.X1 {
		return e.X1 < other.X1
	}
	return e.X2 < other.X2
}

// EventCodec serializes Event records (33 bytes).
type EventCodec struct{}

// Size implements em.Codec.
func (EventCodec) Size() int { return 33 }

// Encode implements em.Codec.
func (EventCodec) Encode(dst []byte, e Event) {
	putF(dst[0:], e.Y)
	putF(dst[8:], e.X1)
	putF(dst[16:], e.X2)
	putF(dst[24:], e.W)
	if e.Top {
		dst[32] = 1
	} else {
		dst[32] = 0
	}
}

// Decode implements em.Codec.
func (EventCodec) Decode(src []byte) Event {
	return Event{
		Y: getF(src[0:]), X1: getF(src[8:]), X2: getF(src[16:]), W: getF(src[24:]),
		Top: src[32] != 0,
	}
}

// Float64Codec serializes bare float64 values (8 bytes) — used for the
// x-sorted edge-value files that drive slab-boundary selection.
type Float64Codec struct{}

// Size implements em.Codec.
func (Float64Codec) Size() int { return 8 }

// Encode implements em.Codec.
func (Float64Codec) Encode(dst []byte, v float64) { putF(dst, v) }

// Decode implements em.Codec.
func (Float64Codec) Decode(src []byte) float64 { return getF(src) }

// PieceEvent is the recursion's event record: one horizontal edge of a
// rectangle piece, carrying the piece's full geometry so that the base
// case and the division phase can reconstruct the piece from either of
// its two events independently. Top selects which edge this record is.
type PieceEvent struct {
	R   WRect
	Top bool
}

// Y returns the event's sweep coordinate: the piece's bottom or top edge.
func (e PieceEvent) Y() float64 {
	if e.Top {
		return e.R.Y2
	}
	return e.R.Y1
}

// PieceEventsOf expands a piece into its bottom and top events.
func PieceEventsOf(r WRect) (bottom, top PieceEvent) {
	return PieceEvent{R: r}, PieceEvent{R: r, Top: true}
}

// PieceEventCodec serializes PieceEvent records (41 bytes).
type PieceEventCodec struct{}

// Size implements em.Codec.
func (PieceEventCodec) Size() int { return 41 }

// Encode implements em.Codec.
func (PieceEventCodec) Encode(dst []byte, e PieceEvent) {
	WRectCodec{}.Encode(dst, e.R)
	if e.Top {
		dst[40] = 1
	} else {
		dst[40] = 0
	}
}

// Decode implements em.Codec.
func (PieceEventCodec) Decode(src []byte) PieceEvent {
	return PieceEvent{R: WRectCodec{}.Decode(src), Top: src[40] != 0}
}
