package rec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"maxrs/internal/geom"
)

func TestObjectRoundTrip(t *testing.T) {
	prop := func(x, y, w float64) bool {
		o := Object{X: x, Y: y, W: w}
		buf := make([]byte, ObjectCodec{}.Size())
		ObjectCodec{}.Encode(buf, o)
		got := ObjectCodec{}.Decode(buf)
		return sameF(got.X, x) && sameF(got.Y, y) && sameF(got.W, w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// sameF compares float64 bit patterns (NaN-safe).
func sameF(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func TestWRectRoundTrip(t *testing.T) {
	prop := func(a, b, c, d, w float64) bool {
		r := WRect{X1: a, X2: b, Y1: c, Y2: d, W: w}
		buf := make([]byte, WRectCodec{}.Size())
		WRectCodec{}.Encode(buf, r)
		got := WRectCodec{}.Decode(buf)
		return sameF(got.X1, a) && sameF(got.X2, b) && sameF(got.Y1, c) &&
			sameF(got.Y2, d) && sameF(got.W, w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	prop := func(y, x1, x2, s float64) bool {
		tp := Tuple{Y: y, X1: x1, X2: x2, Sum: s}
		buf := make([]byte, TupleCodec{}.Size())
		TupleCodec{}.Encode(buf, tp)
		got := TupleCodec{}.Decode(buf)
		return sameF(got.Y, y) && sameF(got.X1, x1) && sameF(got.X2, x2) && sameF(got.Sum, s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventRoundTrip(t *testing.T) {
	prop := func(y, x1, x2, w float64, top bool) bool {
		e := Event{Y: y, X1: x1, X2: x2, W: w, Top: top}
		buf := make([]byte, EventCodec{}.Size())
		EventCodec{}.Encode(buf, e)
		got := EventCodec{}.Decode(buf)
		return sameF(got.Y, y) && sameF(got.X1, x1) && sameF(got.X2, x2) &&
			sameF(got.W, w) && got.Top == top
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPieceEventRoundTripAndY(t *testing.T) {
	prop := func(a, b, c, d, w float64, top bool) bool {
		e := PieceEvent{R: WRect{X1: a, X2: b, Y1: c, Y2: d, W: w}, Top: top}
		buf := make([]byte, PieceEventCodec{}.Size())
		PieceEventCodec{}.Encode(buf, e)
		got := PieceEventCodec{}.Decode(buf)
		if got.Top != top || !sameF(got.R.X1, a) || !sameF(got.R.Y2, d) {
			return false
		}
		if top {
			return sameF(e.Y(), d)
		}
		return sameF(e.Y(), c)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, math.NaN()}
	for _, v := range vals {
		buf := make([]byte, 8)
		Float64Codec{}.Encode(buf, v)
		if got := (Float64Codec{}).Decode(buf); !sameF(got, v) {
			t.Fatalf("round trip of %g gave %g", v, got)
		}
	}
}

func TestFromObjectGeometry(t *testing.T) {
	o := Object{X: 10, Y: 20, W: 3}
	r := FromObject(o, 4, 6)
	if r.X1 != 8 || r.X2 != 12 || r.Y1 != 17 || r.Y2 != 23 || r.W != 3 {
		t.Fatalf("unexpected rect %+v", r)
	}
	// Reduction property (§5.1): the transformed rectangle covers a center
	// point p iff the query rectangle centered at p covers the object.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := geom.Point{X: rng.Float64()*20 - 10 + 10, Y: rng.Float64()*20 - 10 + 20}
		covered := r.RectOf().Contains(p)
		query := geom.RectFromCenter(p, 4, 6)
		if covered != query.Contains(geom.Point{X: o.X, Y: o.Y}) {
			t.Fatalf("reduction violated at %v", p)
		}
	}
}

func TestEventsOfAndLess(t *testing.T) {
	r := WRect{X1: 0, X2: 2, Y1: 1, Y2: 5, W: 7}
	bottom, top := EventsOf(r)
	if bottom.Y != 1 || bottom.Top || top.Y != 5 || !top.Top {
		t.Fatalf("events: %+v %+v", bottom, top)
	}
	if !bottom.Less(top) {
		t.Fatal("bottom at y=1 must sort before top at y=5")
	}
	// Tops sort before bottoms at equal y.
	a := Event{Y: 3, Top: true}
	c := Event{Y: 3, Top: false}
	if !a.Less(c) || c.Less(a) {
		t.Fatal("top must sort before bottom at equal y")
	}
	// Deterministic tiebreak on x.
	d := Event{Y: 3, X1: 1}
	e := Event{Y: 3, X1: 2}
	if !d.Less(e) || e.Less(d) {
		t.Fatal("x1 tiebreak broken")
	}
	f := Event{Y: 3, X1: 1, X2: 4}
	g := Event{Y: 3, X1: 1, X2: 5}
	if !f.Less(g) || g.Less(f) {
		t.Fatal("x2 tiebreak broken")
	}
}

func TestGeomConversions(t *testing.T) {
	g := geom.Object{Point: geom.Point{X: 1, Y: 2}, W: 3}
	o := FromGeom(g)
	if o.X != 1 || o.Y != 2 || o.W != 3 {
		t.Fatalf("FromGeom: %+v", o)
	}
	if o.Geom() != g {
		t.Fatalf("Geom round trip: %+v", o.Geom())
	}
}
