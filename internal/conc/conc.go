// Package conc holds the one concurrency shape the parallel pipeline
// (DESIGN.md §6) keeps needing: run n independent indexed jobs on a
// bounded worker pool, deterministically collecting the first error by
// index. Results are the caller's business — jobs write into their own
// cell of a pre-sized slice, which is what keeps parallel output identical
// to sequential output.
package conc

import "sync"

// ForEachIndexed runs fn(i) for every i in [0, n) on up to par goroutines
// (par ≤ 1 runs inline) and returns the lowest-index error, so the
// reported failure does not depend on scheduling.
func ForEachIndexed(n, par int, fn func(i int) error) error {
	if par > n {
		par = n
	}
	errs := make([]error, n)
	if par <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
