package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"maxrs/internal/em"
	"maxrs/internal/extsort"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

// The aSB-Tree is a static B-ary aggregate tree over the sorted distinct
// x-coordinates of all rectangle edges. Leaf entry i represents the
// elementary cell [key_i, key_{i+1}) and stores its current
// location-weight; internal entries store a child pointer, the subtree's
// minimum key, a lazy pending add, and the subtree maximum (inclusive of
// the entry's own pending add). A sweep event performs one lazy range-add
// descent; the global maximum is read off the root.
//
// Node block layout:
//
//	[0:2)  uint16 entry count
//	[2:3)  1 if leaf
//	[3:]   entries — leaf: key f64, sum f64 (16 B)
//	               internal: minKey f64, child i64, add f64, max f64 (32 B)
const (
	asbHeader       = 3
	asbLeafEntry    = 16
	asbIntEntry     = 32
	asbMinBlockSize = asbHeader + 2*asbIntEntry // need ≥ 2 internal entries
)

// asbTree is the on-disk tree plus its buffer pool.
type asbTree struct {
	disk   *em.Disk
	pool   *em.BufferPool
	root   em.BlockID
	blocks []em.BlockID // every node block, for release()
}

// alloc reserves one tree node block, remembering it for release().
func (t *asbTree) alloc() em.BlockID {
	id := t.disk.Alloc()
	t.blocks = append(t.blocks, id)
	return id
}

// release frees every node block of the tree. The cached (possibly dirty)
// frames are dropped without write-back — the tree is dead, so flushing
// would only charge transfers the sweep never needed. Safe to call more
// than once.
func (t *asbTree) release() error {
	for _, id := range t.blocks {
		if err := t.disk.Free(id); err != nil {
			return err
		}
	}
	t.blocks = nil
	return nil
}

type asbNodeRef struct {
	id     em.BlockID
	minKey float64
}

func f64at(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

func putF64at(b []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
}

func i64at(b []byte, off int) int64 { return int64(binary.LittleEndian.Uint64(b[off:])) }

func putI64at(b []byte, off int, v int64) { binary.LittleEndian.PutUint64(b[off:], uint64(v)) }

// buildASBTree bulk-loads the tree from a sorted, deduplicated key file.
// On error no node blocks stay allocated.
func buildASBTree(env em.Env, keys *em.File) (tree *asbTree, err error) {
	if env.B() < asbMinBlockSize {
		return nil, fmt.Errorf("baseline: block size %d too small for aSB-tree nodes", env.B())
	}
	frames := env.MemBlocks()
	pool, err := em.NewBufferPool(env.Disk, frames)
	if err != nil {
		return nil, err
	}
	pool.SetScope(env.Scope)
	t := &asbTree{disk: env.Disk, pool: pool}
	defer func() {
		if err != nil {
			_ = t.release()
		}
	}()
	leafCap := (env.B() - asbHeader) / asbLeafEntry
	intCap := (env.B() - asbHeader) / asbIntEntry

	// Leaf level.
	kr, err := em.NewRecordReader(keys, rec.Float64Codec{})
	if err != nil {
		return nil, err
	}
	var level []asbNodeRef
	var buf []byte
	var count int
	var nodeMin float64
	flushLeaf := func() error {
		if count == 0 {
			return nil
		}
		id := t.alloc()
		data, err := pool.GetNew(id)
		if err != nil {
			return err
		}
		copy(data, buf)
		binary.LittleEndian.PutUint16(data[0:], uint16(count))
		data[2] = 1
		level = append(level, asbNodeRef{id: id, minKey: nodeMin})
		count = 0
		return nil
	}
	buf = make([]byte, env.B())
	for {
		k, err := kr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if count == 0 {
			nodeMin = k
			for i := range buf {
				buf[i] = 0
			}
		}
		putF64at(buf, asbHeader+count*asbLeafEntry, k)
		putF64at(buf, asbHeader+count*asbLeafEntry+8, 0)
		count++
		if count == leafCap {
			if err := flushLeaf(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushLeaf(); err != nil {
		return nil, err
	}
	if len(level) == 0 {
		return nil, errors.New("baseline: empty key set")
	}

	// Internal levels.
	for len(level) > 1 {
		var next []asbNodeRef
		for lo := 0; lo < len(level); lo += intCap {
			hi := lo + intCap
			if hi > len(level) {
				hi = len(level)
			}
			id := t.alloc()
			data, err := pool.GetNew(id)
			if err != nil {
				return nil, err
			}
			for i := range data {
				data[i] = 0
			}
			binary.LittleEndian.PutUint16(data[0:], uint16(hi-lo))
			data[2] = 0
			for i, child := range level[lo:hi] {
				off := asbHeader + i*asbIntEntry
				putF64at(data, off, child.minKey)
				putI64at(data, off+8, int64(child.id))
				putF64at(data, off+16, 0) // add
				putF64at(data, off+24, 0) // max
			}
			next = append(next, asbNodeRef{id: id, minKey: level[lo].minKey})
		}
		level = next
	}
	t.root = level[0].id
	return t, nil
}

// rangeAdd adds w to every elementary cell whose key lies in [x1, x2) and
// returns the new subtree maximum of node id (inclusive of lazy adds
// stored at or below it). hi is the exclusive upper key bound of the
// node's subtree.
func (t *asbTree) rangeAdd(id em.BlockID, hi float64, x1, x2, w float64) (float64, error) {
	data, err := t.pool.Get(id)
	if err != nil {
		return 0, err
	}
	n := int(binary.LittleEndian.Uint16(data[0:]))
	max := math.Inf(-1)
	if data[2] == 1 { // leaf
		for i := 0; i < n; i++ {
			off := asbHeader + i*asbLeafEntry
			k := f64at(data, off)
			if k >= x1 && k < x2 {
				putF64at(data, off+8, f64at(data, off+8)+w)
				// Mark dirty immediately: deferring past any eviction
				// point would silently drop the mutation.
				if err := t.pool.MarkDirty(id); err != nil {
					return 0, err
				}
			}
			if s := f64at(data, off+8); s > max {
				max = s
			}
		}
		return max, nil
	}
	for i := 0; i < n; i++ {
		off := asbHeader + i*asbIntEntry
		lo := f64at(data, off)
		entryHi := hi
		if i+1 < n {
			entryHi = f64at(data, off+asbIntEntry)
		}
		if lo >= x1 && entryHi <= x2 {
			// Fully covered: lazy add.
			putF64at(data, off+16, f64at(data, off+16)+w)
			putF64at(data, off+24, f64at(data, off+24)+w)
			if err := t.pool.MarkDirty(id); err != nil {
				return 0, err
			}
		} else if lo < x2 && x1 < entryHi {
			child := em.BlockID(i64at(data, off+8))
			childMax, err := t.rangeAdd(child, entryHi, x1, x2, w)
			if err != nil {
				return 0, err
			}
			// The recursion may have evicted this node; re-pin before
			// touching its bytes again.
			data, err = t.pool.Get(id)
			if err != nil {
				return 0, err
			}
			putF64at(data, off+24, childMax+f64at(data, off+16))
			if err := t.pool.MarkDirty(id); err != nil {
				return 0, err
			}
		}
		if m := f64at(data, off+24); m > max {
			max = m
		}
	}
	return max, nil
}

// rootMax returns the current global maximum location-weight.
func (t *asbTree) rootMax() (float64, error) {
	data, err := t.pool.Get(t.root)
	if err != nil {
		return 0, err
	}
	n := int(binary.LittleEndian.Uint16(data[0:]))
	max := math.Inf(-1)
	if data[2] == 1 {
		for i := 0; i < n; i++ {
			if s := f64at(data, asbHeader+i*asbLeafEntry+8); s > max {
				max = s
			}
		}
		return max, nil
	}
	for i := 0; i < n; i++ {
		if m := f64at(data, asbHeader+i*asbIntEntry+24); m > max {
			max = m
		}
	}
	return max, nil
}

// findMax descends greedily along the largest subtree maximum to an
// elementary cell attaining the global maximum and returns its interval.
// The descent uses argmax, not float equality, so it is robust to the
// rounding drift that lazy add accumulation can introduce with
// non-integer weights.
func (t *asbTree) findMax() (geom.Interval, error) {
	id := t.root
	hi := math.Inf(1)
	for {
		data, err := t.pool.Get(id)
		if err != nil {
			return geom.Interval{}, err
		}
		n := int(binary.LittleEndian.Uint16(data[0:]))
		if n == 0 {
			return geom.Interval{}, errors.New("baseline: empty aSB-tree node")
		}
		if data[2] == 1 {
			bestI, bestV := 0, math.Inf(-1)
			for i := 0; i < n; i++ {
				off := asbHeader + i*asbLeafEntry
				if s := f64at(data, off+8); s > bestV {
					bestI, bestV = i, s
				}
			}
			off := asbHeader + bestI*asbLeafEntry
			cellHi := hi
			if bestI+1 < n {
				cellHi = f64at(data, off+asbLeafEntry)
			}
			return geom.Interval{Lo: f64at(data, off), Hi: cellHi}, nil
		}
		bestI, bestV := 0, math.Inf(-1)
		for i := 0; i < n; i++ {
			off := asbHeader + i*asbIntEntry
			if m := f64at(data, off+24); m > bestV {
				bestI, bestV = i, m
			}
		}
		off := asbHeader + bestI*asbIntEntry
		if bestI+1 < n {
			hi = f64at(data, off+asbIntEntry)
		}
		id = em.BlockID(i64at(data, off+8))
	}
}

// ASBTreeSweep answers MaxRS for the objects in objFile with a w×h
// rectangle using the aSB-Tree plane sweep. Every intermediate file and
// the tree's node blocks are freed on all paths, including errors
// (File.Release is idempotent, so the deferred sweeps after the prompt
// in-line releases are free).
func ASBTreeSweep(env em.Env, objFile *em.File, w, h float64) (sweep.Result, error) {
	if err := env.Validate(); err != nil {
		return sweep.Result{}, err
	}
	if objFile.Size() == 0 {
		return sweep.Result{Region: geom.Rect{
			X: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
			Y: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
		}}, nil
	}
	events, _, err := transformToEvents(env, objFile, w, h)
	if err != nil {
		return sweep.Result{}, err
	}
	defer events.Release()
	// Key universe: sorted distinct x-edges.
	edges := env.NewFile()
	defer edges.Release()
	xw, err := em.NewRecordWriter(edges, rec.Float64Codec{})
	if err != nil {
		return sweep.Result{}, err
	}
	er, err := em.NewRecordReader(events, rec.EventCodec{})
	if err != nil {
		return sweep.Result{}, err
	}
	for {
		e, err := er.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return sweep.Result{}, err
		}
		if e.Top {
			continue
		}
		if err := xw.Write(e.X1); err != nil {
			return sweep.Result{}, err
		}
		if err := xw.Write(e.X2); err != nil {
			return sweep.Result{}, err
		}
	}
	if err := xw.Close(); err != nil {
		return sweep.Result{}, err
	}
	sortedEdges, err := extsort.Sort(env, edges, rec.Float64Codec{},
		func(a, b float64) bool { return a < b })
	if err != nil {
		return sweep.Result{}, err
	}
	defer sortedEdges.Release()
	if err := edges.Release(); err != nil {
		return sweep.Result{}, err
	}
	keys, err := dedupeSorted(env, sortedEdges)
	if err != nil {
		return sweep.Result{}, err
	}
	defer keys.Release()
	if err := sortedEdges.Release(); err != nil {
		return sweep.Result{}, err
	}
	tree, err := buildASBTree(env, keys)
	if err != nil {
		return sweep.Result{}, err
	}
	defer tree.release()
	if err := keys.Release(); err != nil {
		return sweep.Result{}, err
	}

	sortedEvents, err := extsort.Sort(env, events, rec.EventCodec{}, rec.Event.Less)
	if err != nil {
		return sweep.Result{}, err
	}
	defer sortedEvents.Release()
	if err := events.Release(); err != nil {
		return sweep.Result{}, err
	}

	res, err := asbSweep(tree, sortedEvents)
	if err != nil {
		return sweep.Result{}, err
	}
	if err := sortedEvents.Release(); err != nil {
		return sweep.Result{}, err
	}
	if err := tree.release(); err != nil {
		return sweep.Result{}, err
	}
	return res, nil
}

func asbSweep(tree *asbTree, events *em.File) (sweep.Result, error) {
	er, err := em.NewRecordReader(events, rec.EventCodec{})
	if err != nil {
		return sweep.Result{}, err
	}
	best := sweep.Result{Region: geom.Rect{
		X: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
		Y: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
	}}
	first := true
	pending := false

	var cur rec.Event
	haveCur := false
	for {
		if !haveCur {
			cur, err = er.Read()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return sweep.Result{}, err
			}
			haveCur = true
		}
		y := cur.Y
		if pending {
			best.Region.Y.Hi = y
			pending = false
		}
		for haveCur && cur.Y == y {
			d := cur.W
			if cur.Top {
				d = -d
			}
			if _, err := tree.rangeAdd(tree.root, math.Inf(1), cur.X1, cur.X2, d); err != nil {
				return sweep.Result{}, err
			}
			cur, err = er.Read()
			if err != nil {
				if errors.Is(err, io.EOF) {
					haveCur = false
					break
				}
				return sweep.Result{}, err
			}
		}
		m, err := tree.rootMax()
		if err != nil {
			return sweep.Result{}, err
		}
		if first || m > best.Sum {
			iv, err := tree.findMax()
			if err != nil {
				return sweep.Result{}, err
			}
			best = sweep.Result{
				Region: geom.Rect{X: iv, Y: geom.Interval{Lo: y, Hi: math.Inf(1)}},
				Sum:    m,
			}
			pending = true
			first = false
		}
	}
	return best, nil
}

// dedupeSorted streams a sorted float64 file into a new file with
// duplicates removed, releasing the partial output on error.
func dedupeSorted(env em.Env, in *em.File) (_ *em.File, err error) {
	rr, err := em.NewRecordReader(in, rec.Float64Codec{})
	if err != nil {
		return nil, err
	}
	out := env.NewFile()
	defer func() {
		if err != nil {
			_ = out.Release()
		}
	}()
	w, err := em.NewRecordWriter(out, rec.Float64Codec{})
	if err != nil {
		return nil, err
	}
	var last float64
	haveLast := false
	for {
		v, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if haveLast && v == last {
			continue
		}
		if err := w.Write(v); err != nil {
			return nil, err
		}
		last, haveLast = v, true
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
