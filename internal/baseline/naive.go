// Package baseline implements the two comparison methods of the paper's
// evaluation (§7.1), both externalizations of the in-memory plane sweep
// originally proposed by Du et al. [9] for optimal-location queries:
//
//   - NaiveSweep: the "Naive Plane Sweep" — the sweep status lives in a
//     plain sorted file that is re-read and re-written from disk for every
//     event, with no caching across events. When the whole input fits in
//     memory it degenerates to one loading scan plus an in-memory sweep,
//     reproducing the paper's observation that Naive wins on the small UX
//     dataset once the buffer swallows it (Fig. 15a).
//
//   - ASBTree: the "aSB-Tree" — a static, bulk-loaded, B-ary aggregate
//     tree over every rectangle edge x-coordinate, performing one lazy
//     range-add descent per sweep event through an LRU buffer pool. Its
//     cost is O(N log_B N) transfers, strongly buffer-sensitive because a
//     larger pool caches more tree levels.
//
// Both produce exactly the same MaxRS answers as ExactMaxRS; only the I/O
// cost differs. That is the point of the comparison.
package baseline

import (
	"errors"
	"io"
	"math"

	"maxrs/internal/em"
	"maxrs/internal/extsort"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

// transformToEvents streams the object file into an unsorted event file
// (two events per object's transformed rectangle) and reports the count.
// On error the partial output is released.
func transformToEvents(env em.Env, objFile *em.File, w, h float64) (_ *em.File, _ int64, err error) {
	rr, err := em.OpenRecordReader(env, objFile, rec.ObjectCodec{})
	if err != nil {
		return nil, 0, err
	}
	events := env.NewFile()
	defer func() {
		if err != nil {
			_ = events.Release()
		}
	}()
	ew, err := em.NewRecordWriter(events, rec.EventCodec{})
	if err != nil {
		return nil, 0, err
	}
	var n int64
	for {
		o, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, 0, err
		}
		r := rec.FromObject(o, w, h)
		bottom, top := rec.EventsOf(r)
		if err := ew.Write(bottom); err != nil {
			return nil, 0, err
		}
		if err := ew.Write(top); err != nil {
			return nil, 0, err
		}
		n += 2
	}
	if err := ew.Close(); err != nil {
		return nil, 0, err
	}
	return events, n, nil
}

// breakpoint is one status record: location-weight is Sum on [X, nextX).
type breakpoint struct {
	X, Sum float64
}

type breakpointCodec struct{}

func (breakpointCodec) Size() int { return 16 }
func (breakpointCodec) Encode(dst []byte, b breakpoint) {
	rec.Float64Codec{}.Encode(dst[0:], b.X)
	rec.Float64Codec{}.Encode(dst[8:], b.Sum)
}
func (breakpointCodec) Decode(src []byte) breakpoint {
	return breakpoint{
		X:   rec.Float64Codec{}.Decode(src[0:]),
		Sum: rec.Float64Codec{}.Decode(src[8:]),
	}
}

// NaiveSweep answers MaxRS for the objects in objFile with a w×h rectangle
// using the externalized naive plane sweep.
func NaiveSweep(env em.Env, objFile *em.File, w, h float64) (sweep.Result, error) {
	if err := env.Validate(); err != nil {
		return sweep.Result{}, err
	}
	// Practical shortcut (paper §7.2.4): when the dataset fits in the
	// buffer, a single scan loads it and the sweep runs in memory.
	if objFile.Size() <= int64(env.M) {
		return naiveInMemory(env, objFile, w, h)
	}
	events, _, err := transformToEvents(env, objFile, w, h)
	if err != nil {
		return sweep.Result{}, err
	}
	defer events.Release()
	sorted, err := extsort.Sort(env, events, rec.EventCodec{}, rec.Event.Less)
	if err != nil {
		return sweep.Result{}, err
	}
	defer sorted.Release()
	if err := events.Release(); err != nil {
		return sweep.Result{}, err
	}
	res, err := naiveExternalSweep(env, sorted)
	if err != nil {
		return sweep.Result{}, err
	}
	if err := sorted.Release(); err != nil {
		return sweep.Result{}, err
	}
	return res, nil
}

func naiveInMemory(env em.Env, objFile *em.File, w, h float64) (sweep.Result, error) {
	recs, err := em.ReadAllEnv(env, objFile, rec.ObjectCodec{})
	if err != nil {
		return sweep.Result{}, err
	}
	objs := make([]geom.Object, len(recs))
	for i, r := range recs {
		objs[i] = r.Geom()
	}
	return sweep.MaxRS(objs, w, h), nil
}

// naiveExternalSweep runs the sweep with the status file rewritten per
// event. The returned result carries the best strip found.
func naiveExternalSweep(env em.Env, events *em.File) (sweep.Result, error) {
	er, err := em.NewRecordReader(events, rec.EventCodec{})
	if err != nil {
		return sweep.Result{}, err
	}
	status := env.NewFile() // empty status: weight 0 everywhere
	// status is rewritten (old file released) per event; on an error return
	// the closure frees whichever incarnation is current.
	defer func() { _ = status.Release() }()

	best := sweep.Result{Region: geom.Rect{
		X: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
		Y: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
	}}
	first := true
	pending := false

	var cur rec.Event
	haveCur := false
	for {
		if !haveCur {
			cur, err = er.Read()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return sweep.Result{}, err
			}
			haveCur = true
		}
		y := cur.Y
		if pending {
			best.Region.Y.Hi = y
			pending = false
		}
		// Apply every event at this h-line, one status rewrite each.
		var lineMax float64
		var lineIv geom.Interval
		for haveCur && cur.Y == y {
			d := cur.W
			if cur.Top {
				d = -d
			}
			next, m, iv, rerr := rewriteStatus(env, status, cur.X1, cur.X2, d)
			if rerr != nil {
				return sweep.Result{}, rerr
			}
			status, lineMax, lineIv = next, m, iv
			cur, err = er.Read()
			if err != nil {
				if errors.Is(err, io.EOF) {
					haveCur = false
					break
				}
				return sweep.Result{}, err
			}
		}
		if first || lineMax > best.Sum {
			best = sweep.Result{
				Region: geom.Rect{X: lineIv, Y: geom.Interval{Lo: y, Hi: math.Inf(1)}},
				Sum:    lineMax,
			}
			pending = true
			first = false
		}
	}
	if err := status.Release(); err != nil {
		return sweep.Result{}, err
	}
	return best, nil
}

// rewriteStatus streams the old status file into a fresh one, adding delta
// on [x1, x2), and returns the new file together with the maximum
// location-weight and a maximal interval attaining it. On success old is
// released; on error old is kept (the caller still owns it) and the
// partial output is released here.
func rewriteStatus(env em.Env, old *em.File, x1, x2, delta float64) (_ *em.File, _ float64, _ geom.Interval, err error) {
	rr, err := em.NewRecordReader(old, breakpointCodec{})
	if err != nil {
		return nil, 0, geom.Interval{}, err
	}
	out := env.NewFile()
	defer func() {
		if err != nil {
			_ = out.Release()
		}
	}()
	w, err := em.NewRecordWriter(out, breakpointCodec{})
	if err != nil {
		return nil, 0, geom.Interval{}, err
	}

	// Max tracking over the emitted (deduplicated) breakpoint stream.
	maxSum := math.Inf(-1)
	maxIv := geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
	maxOpen := false
	lastWritten := math.NaN() // Sum of the last emitted breakpoint
	haveWritten := false
	emit := func(b breakpoint) error {
		// Drop redundant breakpoints (same value as the running region).
		if haveWritten && b.Sum == lastWritten {
			return nil
		}
		// Close the current max run when the value changes.
		if maxOpen && b.Sum != maxSum {
			maxIv.Hi = b.X
			maxOpen = false
		}
		if b.Sum > maxSum {
			maxSum = b.Sum
			maxIv = geom.Interval{Lo: b.X, Hi: math.Inf(1)}
			maxOpen = true
		}
		lastWritten = b.Sum
		haveWritten = true
		return w.Write(b)
	}

	// The new breakpoint positions are the old ones plus {x1, x2}. Merge
	// them in ascending order; at each distinct position compute the new
	// value = original running value + delta iff the position lies in
	// [x1, x2). The implicit leading region (-inf, first) has value 0.
	var oldB breakpoint
	haveOld := false
	readOld := func() error {
		b, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				haveOld = false
				return nil
			}
			return err
		}
		oldB, haveOld = b, true
		return nil
	}
	if err := readOld(); err != nil {
		return nil, 0, geom.Interval{}, err
	}
	injects := [2]float64{x1, x2}
	nextInject := 0
	orig := 0.0 // original value at the current position
	if err := emit(breakpoint{X: math.Inf(-1), Sum: 0}); err != nil {
		return nil, 0, geom.Interval{}, err
	}
	for haveOld || nextInject < 2 {
		// Next distinct position across both sources.
		p := math.Inf(1)
		if haveOld {
			p = oldB.X
		}
		if nextInject < 2 && injects[nextInject] < p {
			p = injects[nextInject]
		}
		if haveOld && oldB.X == p {
			orig = oldB.Sum
			if err := readOld(); err != nil {
				return nil, 0, geom.Interval{}, err
			}
		}
		for nextInject < 2 && injects[nextInject] == p {
			nextInject++
		}
		newVal := orig
		if p >= x1 && p < x2 {
			newVal += delta
		}
		if err := emit(breakpoint{X: p, Sum: newVal}); err != nil {
			return nil, 0, geom.Interval{}, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, 0, geom.Interval{}, err
	}
	if err := old.Release(); err != nil {
		return nil, 0, geom.Interval{}, err
	}
	return out, maxSum, maxIv, nil
}
