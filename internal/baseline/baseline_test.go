package baseline

import (
	"math"
	"math/rand"
	"testing"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

func writeObjs(t *testing.T, env em.Env, objs []geom.Object) *em.File {
	t.Helper()
	recs := make([]rec.Object, len(objs))
	for i, o := range objs {
		recs[i] = rec.FromGeom(o)
	}
	f, err := em.WriteAll(env.Disk, rec.ObjectCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randObjs(rng *rand.Rand, n int, coord float64) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.Object{
			Point: geom.Point{
				X: math.Floor(rng.Float64() * coord),
				Y: math.Floor(rng.Float64() * coord),
			},
			W: float64(rng.Intn(5) + 1),
		}
	}
	return objs
}

func TestRewriteStatusSingleInterval(t *testing.T) {
	env := em.MustNewEnv(64, 512)
	status := em.NewFile(env.Disk)
	status, max, iv, err := rewriteStatus(env, status, 2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if max != 3 {
		t.Fatalf("max = %g, want 3", max)
	}
	if iv.Lo != 2 || iv.Hi != 5 {
		t.Fatalf("interval = %+v, want [2,5)", iv)
	}
	// Add an overlapping interval.
	status, max, iv, err = rewriteStatus(env, status, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if max != 5 {
		t.Fatalf("max = %g, want 5", max)
	}
	if iv.Lo != 4 || iv.Hi != 5 {
		t.Fatalf("interval = %+v, want [4,5)", iv)
	}
	// Remove the first: [4,8) at 2 remains.
	status, max, iv, err = rewriteStatus(env, status, 2, 5, -3)
	if err != nil {
		t.Fatal(err)
	}
	if max != 2 {
		t.Fatalf("max = %g, want 2", max)
	}
	if iv.Lo != 4 || iv.Hi != 8 {
		t.Fatalf("interval = %+v, want [4,8)", iv)
	}
	if err := status.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteStatusCompacts(t *testing.T) {
	env := em.MustNewEnv(64, 512)
	status := em.NewFile(env.Disk)
	var err error
	// Insert then fully remove: status must shrink back to the trivial
	// zero breakpoint, not accumulate dead records.
	for i := 0; i < 20; i++ {
		status, _, _, err = rewriteStatus(env, status, float64(i), float64(i+10), 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		status, _, _, err = rewriteStatus(env, status, float64(i), float64(i+10), -1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := em.RecordCount(status, 16); n != 1 {
		t.Fatalf("status has %d breakpoints after full removal, want 1", n)
	}
}

func TestNaiveSweepSmallInMemoryPath(t *testing.T) {
	env := em.MustNewEnv(4096, 1<<20) // dataset fits: in-memory shortcut
	objs := []geom.Object{
		{Point: geom.Point{X: 1, Y: 1}, W: 1},
		{Point: geom.Point{X: 2, Y: 2}, W: 1},
		{Point: geom.Point{X: 9, Y: 9}, W: 1},
	}
	f := writeObjs(t, env, objs)
	res, err := NaiveSweep(env, f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 2 {
		t.Fatalf("sum = %g, want 2", res.Sum)
	}
}

func TestNaiveSweepExternalPath(t *testing.T) {
	env := em.MustNewEnv(128, 1024) // 1 KB memory, dataset larger
	rng := rand.New(rand.NewSource(5))
	objs := randObjs(rng, 150, 80)
	f := writeObjs(t, env, objs)
	if f.Size() <= int64(env.M) {
		t.Fatal("test setup: dataset must exceed memory for the external path")
	}
	res, err := NaiveSweep(env, f, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.MaxRS(objs, 8, 8)
	if res.Sum != want.Sum {
		t.Fatalf("naive = %g, in-memory = %g", res.Sum, want.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 8, 8); got != res.Sum {
		t.Fatalf("returned point covers %g, claimed %g", got, res.Sum)
	}
}

func TestASBTreeSweepMatchesInMemory(t *testing.T) {
	env := em.MustNewEnv(128, 1024)
	rng := rand.New(rand.NewSource(21))
	objs := randObjs(rng, 200, 100)
	f := writeObjs(t, env, objs)
	res, err := ASBTreeSweep(env, f, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.MaxRS(objs, 10, 10)
	if res.Sum != want.Sum {
		t.Fatalf("asb = %g, in-memory = %g", res.Sum, want.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 10, 10); got != res.Sum {
		t.Fatalf("returned point covers %g, claimed %g", got, res.Sum)
	}
}

func TestASBTreeEmptyInput(t *testing.T) {
	env := em.MustNewEnv(256, 2048)
	f := writeObjs(t, env, nil)
	res, err := ASBTreeSweep(env, f, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 0 {
		t.Fatalf("sum = %g", res.Sum)
	}
}

// All three algorithms (the two baselines and the reference in-memory
// sweep) must agree on random inputs across EM geometries.
func TestBaselinesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		blockSize := 128 * (rng.Intn(3) + 1) // ≥ 128: aSB-tree nodes need ≥ 2 internal entries
		memBlocks := rng.Intn(8) + 6
		env := em.MustNewEnv(blockSize, blockSize*memBlocks)
		n := rng.Intn(150) + 20
		objs := randObjs(rng, n, float64(rng.Intn(150)+30))
		w := math.Floor(rng.Float64()*20) + 2
		h := math.Floor(rng.Float64()*20) + 2
		want := sweep.MaxRS(objs, w, h)

		f := writeObjs(t, env, objs)
		naive, err := NaiveSweep(env, f, w, h)
		if err != nil {
			t.Fatalf("trial %d naive: %v", trial, err)
		}
		if naive.Sum != want.Sum {
			t.Fatalf("trial %d: naive %g, want %g", trial, naive.Sum, want.Sum)
		}
		asb, err := ASBTreeSweep(env, f, w, h)
		if err != nil {
			t.Fatalf("trial %d asb: %v", trial, err)
		}
		if asb.Sum != want.Sum {
			t.Fatalf("trial %d: asb %g, want %g", trial, asb.Sum, want.Sum)
		}
	}
}

// The I/O ordering that justifies the paper's headline claim: on inputs
// that exceed memory, NaiveSweep ≫ ASBTree ≫ (and both beaten by) the
// linear cost of scanning — checked here as Naive > ASB.
func TestBaselineCostOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objs := randObjs(rng, 600, 2400)
	cost := func(run func(env em.Env, f *em.File) error) uint64 {
		env := em.MustNewEnv(256, 2048)
		f := writeObjs(t, env, objs)
		env.Disk.ResetStats()
		if err := run(env, f); err != nil {
			t.Fatal(err)
		}
		return env.Disk.Stats().Total()
	}
	naive := cost(func(env em.Env, f *em.File) error {
		_, err := NaiveSweep(env, f, 100, 100)
		return err
	})
	asb := cost(func(env em.Env, f *em.File) error {
		_, err := ASBTreeSweep(env, f, 100, 100)
		return err
	})
	if naive <= asb {
		t.Fatalf("expected naive (%d) > aSB-tree (%d) I/O", naive, asb)
	}
}

func TestASBTreeBufferSensitivity(t *testing.T) {
	// More buffer ⇒ more cached levels ⇒ strictly less I/O.
	rng := rand.New(rand.NewSource(12))
	objs := randObjs(rng, 800, 3200)
	cost := func(mem int) uint64 {
		env := em.MustNewEnv(256, mem)
		f := writeObjs(t, env, objs)
		env.Disk.ResetStats()
		if _, err := ASBTreeSweep(env, f, 120, 120); err != nil {
			t.Fatal(err)
		}
		return env.Disk.Stats().Total()
	}
	small := cost(4 * 256)
	large := cost(64 * 256)
	if large >= small {
		t.Fatalf("buffer growth did not reduce aSB-tree I/O: %d → %d", small, large)
	}
}
