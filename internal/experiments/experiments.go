// Package experiments reproduces every table and figure of the paper's
// empirical study (§7). Each Fig/Table function generates the workload,
// runs the competing algorithms under the paper's EM parameters, and
// returns the measured block-transfer counts (the paper's metric) in a
// structured form; Render prints them as aligned text tables.
//
// The Scale knob shrinks cardinalities proportionally so the full suite
// can run in CI; Scale=1 is the paper's setup (Table 3). Shapes — who
// wins, by how many orders, where crossovers fall — are preserved at
// reduced scale because every cost is polynomial in N.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"maxrs/internal/baseline"
	"maxrs/internal/conc"
	"maxrs/internal/core"
	"maxrs/internal/crs"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/sweep"
	"maxrs/internal/workload"
)

// Paper defaults (Table 3).
const (
	DefaultBlockSize    = 4 * 1024
	DefaultBufSynthetic = 1024 * 1024
	DefaultBufReal      = 256 * 1024
	DefaultCardinality  = 250_000
	DefaultRange        = 1000.0
	DefaultDiameter     = 1000.0
)

// Algo names as they appear in the figures.
const (
	AlgoNaive = "Naive"
	AlgoASB   = "aSB-Tree"
	AlgoExact = "ExactMaxRS"
)

// Algos is the figure ordering of the compared algorithms.
var Algos = []string{AlgoNaive, AlgoASB, AlgoExact}

// Config controls an experiment run.
type Config struct {
	// Scale multiplies every dataset cardinality (1 = paper scale).
	Scale float64
	// BufScale multiplies every buffer size (1 = paper scale). Scaled-down
	// runs should shrink buffers along with cardinalities, or the Naive
	// baseline's everything-fits shortcut fires everywhere and the
	// figures degenerate.
	BufScale float64
	// BlockSize overrides the EM block size B (0 = paper's 4096).
	BlockSize int
	// Seed drives all data generation.
	Seed int64
	// OracleCap bounds the dataset size fed to the exact MaxCRS oracle
	// in the quality experiment (0 = 50k). The paper's oracle [8] is
	// O(n² log n); ours is cheaper but still superlinear on dense data.
	OracleCap int
	// Parallelism bounds the goroutines running figure panel points
	// concurrently, and is threaded into each solver (DESIGN.md §6).
	// 0 = GOMAXPROCS, 1 = sequential. Every panel point runs on its own
	// simulated disk, so the measured transfer counts are identical for
	// every value.
	Parallelism int
}

// par resolves the worker count.
func (c Config) par() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.BufScale <= 0 {
		c.BufScale = 1
	}
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Seed == 0 {
		c.Seed = 2012
	}
	if c.OracleCap <= 0 {
		c.OracleCap = 50_000
	}
	return c
}

// buf scales a buffer size in bytes, keeping at least 4 blocks.
func (c Config) buf(bytes int) int {
	b := int(float64(bytes) * c.BufScale)
	if min := 4 * c.BlockSize; b < min {
		b = min
	}
	return b
}

func (c Config) n(base int) int {
	n := int(math.Round(float64(base) * c.Scale))
	if n < 10 {
		n = 10
	}
	return n
}

// Series is one figure panel: a labelled family of curves over a shared
// x-axis. Values[algo][i] corresponds to X[i].
type Series struct {
	Title  string               `json:"title"`
	XLabel string               `json:"xlabel"`
	X      []float64            `json:"x"`
	Order  []string             `json:"order"`
	Values map[string][]float64 `json:"values"`
}

// runAlgo executes one algorithm over objs with the given EM parameters
// and returns the I/O cost of the query phase (data loading excluded, as
// in the paper: the dataset pre-exists on disk).
func runAlgo(algo string, objs []geom.Object, blockSize, mem, par int, w, h float64) (float64, error) {
	env := em.MustNewEnv(blockSize, mem)
	f, err := workload.Write(env.Disk, objs)
	if err != nil {
		return 0, err
	}
	env.Disk.ResetStats()
	var res sweep.Result
	switch algo {
	case AlgoNaive:
		res, err = baseline.NaiveSweep(env, f, w, h)
	case AlgoASB:
		res, err = baseline.ASBTreeSweep(env, f, w, h)
	case AlgoExact:
		var s *core.Solver
		s, err = core.NewSolver(env, core.Config{Parallelism: par})
		if err == nil {
			res, err = s.SolveObjects(f, w, h)
		}
	default:
		err = fmt.Errorf("experiments: unknown algorithm %q", algo)
	}
	if err != nil {
		return 0, err
	}
	_ = res
	return float64(env.Disk.Stats().Total()), nil
}

// forEachCell runs fn(i) for every panel cell i on up to par goroutines,
// returning the lowest-index error.
func forEachCell(n, par int, fn func(i int) error) error {
	return conc.ForEachIndexed(n, par, fn)
}

// ioSweep builds a Series by running every algorithm at every x. Panel
// points run concurrently (each on its own simulated disk); results land
// in their cells by index, so the Series is identical at any parallelism.
func ioSweep(cfg Config, title, xlabel string, xs []float64, gen func(x float64) []geom.Object,
	em func(x float64) (blockSize, mem int), rng func(x float64) (w, h float64)) (Series, error) {
	s := Series{Title: title, XLabel: xlabel, X: xs, Order: Algos, Values: map[string][]float64{}}
	for _, algo := range Algos {
		s.Values[algo] = make([]float64, len(xs))
	}
	err := forEachCell(len(xs), cfg.par(), func(xi int) error {
		x := xs[xi]
		objs := gen(x)
		bs, mem := em(x)
		w, h := rng(x)
		for _, algo := range Algos {
			io, err := runAlgo(algo, objs, bs, mem, cfg.Parallelism, w, h)
			if err != nil {
				return fmt.Errorf("%s at %g: %w", algo, x, err)
			}
			s.Values[algo][xi] = io
		}
		return nil
	})
	if err != nil {
		return Series{}, err
	}
	return s, nil
}

// Fig12 — effect of dataset cardinality (I/O vs N, Gaussian and Uniform).
// Paper: N = 100k..500k, range 1k×1k, buffer 1024 KB, space [0, 4N]².
func Fig12(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	var out []Series
	for _, dist := range []string{"Gaussian", "Uniform"} {
		var xs []float64
		for _, base := range []int{100_000, 200_000, 300_000, 400_000, 500_000} {
			xs = append(xs, float64(cfg.n(base)))
		}
		gen := func(x float64) []geom.Object {
			n := int(x)
			extent := 4 * float64(n) // paper: coordinates in [0, 4|O|]
			if dist == "Gaussian" {
				return workload.Gaussian(cfg.Seed, n, extent)
			}
			return workload.Uniform(cfg.Seed, n, extent)
		}
		s, err := ioSweep(
			cfg,
			fmt.Sprintf("Fig 12 (%s): I/O vs cardinality", dist), "N",
			xs, gen,
			func(float64) (int, int) { return cfg.BlockSize, cfg.buf(DefaultBufSynthetic) },
			func(x float64) (float64, float64) {
				// Keep the query/space ratio of the paper's defaults
				// (1k range in a 1M space at N=250k → range = 4N/1000).
				r := 4 * x / 1000
				return r, r
			},
		)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig13 — effect of buffer size (I/O vs M, Gaussian and Uniform).
// Paper: N = 250k, buffers up to 2048 KB, range 1k×1k.
func Fig13(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	n := cfg.n(DefaultCardinality)
	extent := 4 * float64(n)
	r := extent / 1000
	buffers := []float64{128, 256, 512, 1024, 2048} // KB
	var out []Series
	for _, dist := range []string{"Gaussian", "Uniform"} {
		var objs []geom.Object
		if dist == "Gaussian" {
			objs = workload.Gaussian(cfg.Seed, n, extent)
		} else {
			objs = workload.Uniform(cfg.Seed, n, extent)
		}
		s, err := ioSweep(
			cfg,
			fmt.Sprintf("Fig 13 (%s): I/O vs buffer size", dist), "buffer KB",
			buffers,
			func(float64) []geom.Object { return objs },
			func(x float64) (int, int) { return cfg.BlockSize, cfg.buf(int(x) * 1024) },
			func(float64) (float64, float64) { return r, r },
		)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig14 — effect of the range size (I/O vs d1=d2, Gaussian and Uniform).
// Paper: N = 250k, range 1k..10k, buffer 1024 KB.
func Fig14(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	n := cfg.n(DefaultCardinality)
	extent := 4 * float64(n)
	scaleR := extent / 1_000_000 // keep range/space ratio when scaled down
	ranges := []float64{1000, 2000, 4000, 6000, 8000, 10000}
	var out []Series
	for _, dist := range []string{"Gaussian", "Uniform"} {
		var objs []geom.Object
		if dist == "Gaussian" {
			objs = workload.Gaussian(cfg.Seed, n, extent)
		} else {
			objs = workload.Uniform(cfg.Seed, n, extent)
		}
		s, err := ioSweep(
			cfg,
			fmt.Sprintf("Fig 14 (%s): I/O vs range size", dist), "range",
			ranges,
			func(float64) []geom.Object { return objs },
			func(float64) (int, int) { return cfg.BlockSize, cfg.buf(DefaultBufSynthetic) },
			func(x float64) (float64, float64) { return x * scaleR, x * scaleR },
		)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// realDataset materializes a (possibly scaled) real-data stand-in.
func realDataset(cfg Config, name string) []geom.Object {
	var objs []geom.Object
	switch name {
	case "UX":
		objs = workload.SyntheticUX(cfg.Seed)
	default:
		objs = workload.SyntheticNE(cfg.Seed)
	}
	if cfg.Scale < 1 {
		objs = workload.Sample(cfg.Seed, objs, int(float64(len(objs))*cfg.Scale))
	}
	return objs
}

// Fig15 — effect of buffer size on the real datasets (UX, NE).
// Paper: buffers 64..512 KB, range 1k×1k.
func Fig15(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	buffers := []float64{64, 128, 256, 384, 512} // KB
	var out []Series
	for _, name := range []string{"UX", "NE"} {
		objs := realDataset(cfg, name)
		s, err := ioSweep(
			cfg,
			fmt.Sprintf("Fig 15 (%s): I/O vs buffer size", name), "buffer KB",
			buffers,
			func(float64) []geom.Object { return objs },
			func(x float64) (int, int) { return cfg.BlockSize, cfg.buf(int(x) * 1024) },
			func(float64) (float64, float64) { return DefaultRange, DefaultRange },
		)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig16 — effect of the range size on the real datasets (UX, NE).
// Paper: range 1k..10k, buffer 256 KB.
func Fig16(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	ranges := []float64{1000, 2000, 4000, 6000, 8000, 10000}
	var out []Series
	for _, name := range []string{"UX", "NE"} {
		objs := realDataset(cfg, name)
		s, err := ioSweep(
			cfg,
			fmt.Sprintf("Fig 16 (%s): I/O vs range size", name), "range",
			ranges,
			func(float64) []geom.Object { return objs },
			func(float64) (int, int) { return cfg.BlockSize, cfg.buf(DefaultBufReal) },
			func(x float64) (float64, float64) { return x, x },
		)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig17 — quality of approximation: W(ĉ)/W(c*) vs circle diameter on all
// four datasets. ApproxMaxCRS runs externally; the optimum comes from the
// in-memory oracle (crs.Exact), on a capped subsample when the dataset
// exceeds cfg.OracleCap (both sides see the same subsample, so the ratio
// is well-defined).
func Fig17(cfg Config) (Series, error) {
	cfg = cfg.withDefaults()
	diameters := []float64{1000, 2000, 4000, 6000, 8000, 10000}
	n := cfg.n(DefaultCardinality)
	datasets := map[string][]geom.Object{
		"Uniform":  workload.Uniform(cfg.Seed, n, workload.SpaceExtent),
		"Gaussian": workload.Gaussian(cfg.Seed, n, workload.SpaceExtent),
		"UX":       realDataset(cfg, "UX"),
		"NE":       realDataset(cfg, "NE"),
	}
	order := []string{"Uniform", "Gaussian", "UX", "NE"}
	s := Series{
		Title:  "Fig 17: approximation quality W(ĉ)/W(c*) vs diameter",
		XLabel: "diameter",
		X:      diameters,
		Order:  order,
		Values: map[string][]float64{},
	}
	samples := map[string][]geom.Object{}
	for _, name := range order {
		s.Values[name] = make([]float64, len(diameters))
		samples[name] = workload.Sample(cfg.Seed, datasets[name], cfg.OracleCap)
	}
	err := forEachCell(len(order)*len(diameters), cfg.par(), func(cell int) error {
		name := order[cell/len(diameters)]
		d := diameters[cell%len(diameters)]
		objs := samples[name]
		env := em.MustNewEnv(cfg.BlockSize, cfg.buf(DefaultBufSynthetic))
		f, err := workload.Write(env.Disk, objs)
		if err != nil {
			return err
		}
		solver, err := core.NewSolver(env, core.Config{Parallelism: cfg.Parallelism})
		if err != nil {
			return err
		}
		approx, err := crs.Approx(solver, f, d)
		if err != nil {
			return fmt.Errorf("%s d=%g: %w", name, d, err)
		}
		exact := crs.Exact(objs, d)
		ratio := 1.0
		if exact.Weight > 0 {
			ratio = approx.Weight / exact.Weight
		}
		s.Values[name][cell%len(diameters)] = ratio
		return nil
	})
	if err != nil {
		return Series{}, err
	}
	return s, nil
}

// Table2 prints the real dataset cardinalities.
func Table2(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "Table 2: real dataset cardinalities")
	fmt.Fprintf(w, "  UX  %d (paper: %d)\n", len(realDataset(cfg, "UX")), workload.UXCardinality)
	fmt.Fprintf(w, "  NE  %d (paper: %d)\n", len(realDataset(cfg, "NE")), workload.NECardinality)
	fmt.Fprintln(w)
}

// Table3 prints the default parameters.
func Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: default parameter values")
	fmt.Fprintf(w, "  Cardinality (|O|)     %d\n", DefaultCardinality)
	fmt.Fprintf(w, "  Block size            %d B\n", DefaultBlockSize)
	fmt.Fprintf(w, "  Buffer size           %d KB (real), %d KB (synthetic)\n",
		DefaultBufReal/1024, DefaultBufSynthetic/1024)
	fmt.Fprintf(w, "  Space size            %.0f x %.0f\n", workload.SpaceExtent, workload.SpaceExtent)
	fmt.Fprintf(w, "  Rectangle size        %.0f x %.0f\n", DefaultRange, DefaultRange)
	fmt.Fprintf(w, "  Circle diameter       %.0f\n", DefaultDiameter)
}

// Render prints a Series as an aligned table.
func Render(w io.Writer, s Series) {
	fmt.Fprintln(w, s.Title)
	fmt.Fprintf(w, "  %-12s", s.XLabel)
	for _, name := range s.Order {
		fmt.Fprintf(w, " %14s", name)
	}
	fmt.Fprintln(w)
	for i, x := range s.X {
		fmt.Fprintf(w, "  %-12.4g", x)
		for _, name := range s.Order {
			v := s.Values[name][i]
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				fmt.Fprintf(w, " %14.0f", v)
			} else {
				fmt.Fprintf(w, " %14.4f", v)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
