package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests: cardinalities
// and buffers shrink together so datasets still exceed memory and the
// baselines stay on their external paths.
func tiny() Config {
	return Config{Scale: 0.01, BufScale: 0.01, BlockSize: 256, Seed: 99, OracleCap: 2000}
}

func TestFig12ShapeAtSmallScale(t *testing.T) {
	series, err := Fig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want 2 panels, got %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != 5 {
			t.Fatalf("%s: %d points", s.Title, len(s.X))
		}
		for i := range s.X {
			naive := s.Values[AlgoNaive][i]
			asb := s.Values[AlgoASB][i]
			exact := s.Values[AlgoExact][i]
			if exact <= 0 {
				t.Fatalf("%s: ExactMaxRS reported zero I/O", s.Title)
			}
			// ExactMaxRS must beat the aSB-tree at every cardinality even
			// at unit-test scale. (Naive sits on its 2-block-per-event
			// floor at this scale, so the full paper ordering
			// Naive > aSB-Tree > ExactMaxRS is asserted only in the
			// paper-scale runs recorded in EXPERIMENTS.md.)
			if exact >= asb {
				t.Fatalf("%s at N=%g: ExactMaxRS not below aSB-tree: naive=%g asb=%g exact=%g",
					s.Title, s.X[i], naive, asb, exact)
			}
		}
		// Naive must grow at least linearly in N over the 5x sweep. (A
		// growth comparison against ExactMaxRS is meaningful only at
		// larger scales: at test scale Exact's recursion-depth staircase
		// dominates its curve; see EXPERIMENTS.md for the paper-scale
		// slopes.)
		if grow := s.Values[AlgoNaive][4] / s.Values[AlgoNaive][0]; grow < 4 {
			t.Fatalf("%s: naive growth %.2f over a 5x cardinality sweep", s.Title, grow)
		}
	}
}

func TestFig13BufferEffect(t *testing.T) {
	series, err := Fig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		exact := s.Values[AlgoExact]
		if exact[len(exact)-1] > exact[0] {
			t.Fatalf("%s: more buffer increased ExactMaxRS I/O: %v", s.Title, exact)
		}
		asb := s.Values[AlgoASB]
		if asb[len(asb)-1] > asb[0] {
			t.Fatalf("%s: more buffer increased aSB-tree I/O: %v", s.Title, asb)
		}
	}
}

func TestFig14RangeEffect(t *testing.T) {
	series, err := Fig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		// ExactMaxRS is insensitive to the range size (§7.2.3): allow a
		// small factor; Naive must grow clearly more.
		exact := s.Values[AlgoExact]
		naive := s.Values[AlgoNaive]
		exactGrowth := exact[len(exact)-1] / exact[0]
		naiveGrowth := naive[len(naive)-1] / naive[0]
		if exactGrowth > 3 {
			t.Fatalf("%s: ExactMaxRS grew %.2fx with range", s.Title, exactGrowth)
		}
		if naiveGrowth < exactGrowth {
			t.Fatalf("%s: naive growth %.2f below exact growth %.2f",
				s.Title, naiveGrowth, exactGrowth)
		}
	}
}

func TestFig15And16RunAtSmallScale(t *testing.T) {
	for _, fn := range []func(Config) ([]Series, error){Fig15, Fig16} {
		series, err := fn(tiny())
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 2 {
			t.Fatalf("want 2 panels, got %d", len(series))
		}
		for _, s := range series {
			for _, algo := range Algos {
				if len(s.Values[algo]) != len(s.X) {
					t.Fatalf("%s: missing values for %s", s.Title, algo)
				}
			}
		}
	}
}

func TestFig17QualityBounds(t *testing.T) {
	s, err := Fig17(Config{Scale: 0.02, Seed: 7, OracleCap: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for name, ratios := range s.Values {
		for i, r := range ratios {
			if r < 0.25 || r > 1.0000001 {
				t.Fatalf("%s at d=%g: ratio %g outside [1/4, 1]", name, s.X[i], r)
			}
		}
	}
}

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf, tiny())
	Table3(&buf)
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "UX", "NE", "Block size"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	series, err := Fig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	Render(&buf, series[0])
	if !strings.Contains(buf.String(), "ExactMaxRS") {
		t.Fatalf("render missing algorithm column:\n%s", buf.String())
	}
}
