package dist

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"maxrs/internal/em"
)

// ErrNetFault marks a worker call that failed at the network layer —
// injected or real. Transient network faults additionally satisfy
// em.IsTransient, so one classifier spans storage and network.
var ErrNetFault = errors.New("dist: network fault")

// markTransient marks a network fault retryable under the shared
// storage/network classifier.
func markTransient(err error) error { return em.MarkTransient(err) }

// FaultKind is a class of injected network fault.
type FaultKind int

// Network fault classes, mirroring em.FaultKind at the network layer.
const (
	// FaultConn fails the call before the request reaches the worker
	// (connection refused/reset). Transient: a retry may connect.
	FaultConn FaultKind = iota
	// FaultDisconnect drops the connection mid-stream: the response
	// status and headers arrive, the body breaks off halfway. Transient.
	FaultDisconnect
	// FaultCorrupt flips one byte of the response body in flight. The
	// checksum header (computed by the worker over the clean bytes)
	// exposes the damage; without verification it would be a silent
	// wrong answer — the network twin of storage FaultCorrupt.
	FaultCorrupt
	// FaultLatency delays the call by FaultPlan.Latency, then performs
	// it normally — a straggler, not an error. The hedging layer's prey.
	FaultLatency
)

// FaultAt schedules one fault at an exact call index, counted from the
// moment the transport is installed: Call == 1 targets the first
// request attempt that reaches the transport (retries and hedges count
// as their own calls). Exact schedules are reproducible regardless of
// goroutine interleaving.
type FaultAt struct {
	Call uint64 // 1-based request-attempt index
	Kind FaultKind
}

// FaultPlan configures deterministic network-fault injection on a
// Transport, mirroring em.FaultPlan: exact per-call schedules (At)
// compose with seed-driven per-call rates, each undecided call drawing
// once from a rand.Rand seeded with Seed and subdivided into cumulative
// bands. A zero plan injects nothing.
type FaultPlan struct {
	// Seed seeds the rate-driven draws (used only when a rate is > 0).
	Seed int64
	// ConnRate / DisconnectRate / CorruptRate are per-call fault
	// probabilities of the corresponding kind.
	ConnRate       float64
	DisconnectRate float64
	CorruptRate    float64
	// LatencyRate is the per-call probability of a latency spike of
	// Latency.
	LatencyRate float64
	Latency     time.Duration
	// At schedules faults at exact call indices, taking precedence over
	// the rates for those calls.
	At []FaultAt
}

// Injects reports whether the plan can ever fire a fault.
func (p FaultPlan) Injects() bool {
	return len(p.At) > 0 || p.ConnRate > 0 || p.DisconnectRate > 0 ||
		p.CorruptRate > 0 || p.LatencyRate > 0
}

// FaultStats counts the calls a Transport carried and the faults it
// fired, by kind.
type FaultStats struct {
	Calls              uint64
	InjectedConn       uint64
	InjectedDisconnect uint64
	InjectedCorrupt    uint64
	InjectedLatency    uint64
}

// Transport is an instrumented http.RoundTripper injecting network
// faults per a FaultPlan — the chaos hook under the coordinator's retry
// and hedging layers, so every failure path is exactly testable. A
// Transport with a zero plan forwards calls untouched (it still counts
// them).
type Transport struct {
	inner http.RoundTripper
	plan  FaultPlan

	mu    sync.Mutex
	rng   *rand.Rand
	calls uint64
	at    map[uint64]FaultKind

	injConn       uint64
	injDisconnect uint64
	injCorrupt    uint64
	injLatency    uint64
}

// NewTransport wraps inner (nil = http.DefaultTransport) with fault
// injection per plan.
func NewTransport(inner http.RoundTripper, plan FaultPlan) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	t := &Transport{inner: inner, plan: plan, at: make(map[uint64]FaultKind)}
	if plan.ConnRate > 0 || plan.DisconnectRate > 0 || plan.CorruptRate > 0 || plan.LatencyRate > 0 {
		t.rng = rand.New(rand.NewSource(plan.Seed))
	}
	for _, at := range plan.At {
		t.at[at.Call] = at.Kind
	}
	return t
}

// noFault is the sentinel "inject nothing" decision.
const noFault FaultKind = -1

// decide advances the call counter and returns the fault to inject for
// this attempt, mirroring faultBackend.decide: exact schedule first,
// then a single uniform draw subdivided into cumulative rate bands.
func (t *Transport) decide() FaultKind {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	k, ok := t.at[t.calls]
	if !ok {
		k = t.draw()
	}
	switch k {
	case FaultConn:
		t.injConn++
	case FaultDisconnect:
		t.injDisconnect++
	case FaultCorrupt:
		t.injCorrupt++
	case FaultLatency:
		t.injLatency++
	}
	return k
}

func (t *Transport) draw() FaultKind {
	if t.rng == nil {
		return noFault
	}
	r := t.rng.Float64()
	p := t.plan
	switch {
	case r < p.ConnRate:
		return FaultConn
	case r < p.ConnRate+p.DisconnectRate:
		return FaultDisconnect
	case r < p.ConnRate+p.DisconnectRate+p.CorruptRate:
		return FaultCorrupt
	case r < p.ConnRate+p.DisconnectRate+p.CorruptRate+p.LatencyRate:
		return FaultLatency
	}
	return noFault
}

// Stats snapshots the transport's call and fired-fault counters.
func (t *Transport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return FaultStats{
		Calls:              t.calls,
		InjectedConn:       t.injConn,
		InjectedDisconnect: t.injDisconnect,
		InjectedCorrupt:    t.injCorrupt,
		InjectedLatency:    t.injLatency,
	}
}

// corruptByte is XORed into the first body byte of a corrupted reply —
// the same deterministic damage the storage injector applies to blocks.
const corruptByte = 0xA5

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.decide() {
	case FaultConn:
		return nil, markTransient(fmt.Errorf("%w: injected connection fault (%s %s)",
			ErrNetFault, req.Method, req.URL.Path))
	case FaultLatency:
		timer := time.NewTimer(t.plan.Latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	case FaultDisconnect:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		damageBody(resp, func(body []byte) []byte {
			// Deliver the first half, then break the stream.
			return body[:len(body)/2]
		}, markTransient(fmt.Errorf("%w: injected mid-stream disconnect", ErrNetFault)))
		return resp, nil
	case FaultCorrupt:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		damageBody(resp, func(body []byte) []byte {
			if len(body) > 0 {
				body[0] ^= corruptByte
			}
			return body
		}, nil)
		return resp, nil
	}
	return t.inner.RoundTrip(req)
}

// damageBody replaces resp.Body with a reader delivering damage(body),
// then failing with tail (nil = clean EOF). The original body is fully
// read and closed; headers — including the checksum computed over the
// clean bytes — are left untouched, which is exactly what makes the
// corruption detectable.
func damageBody(resp *http.Response, damage func([]byte) []byte, tail error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		// The real stream already broke; keep that failure.
		resp.Body = &faultyBody{data: nil, err: err}
		return
	}
	resp.Body = &faultyBody{data: damage(body), err: tail}
}

// faultyBody serves data, then returns err (io.EOF when nil).
type faultyBody struct {
	data []byte
	err  error
}

func (b *faultyBody) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		if b.err != nil {
			return 0, b.err
		}
		return 0, io.EOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

func (b *faultyBody) Close() error { return nil }
