package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"maxrs/internal/conc"
	"maxrs/internal/em"
	"maxrs/internal/sweep"
)

// Typed terminal errors of the distributed path.
var (
	// ErrShardUnavailable marks a shard whose every recovery path —
	// retries, hedging, local halo-replica fallback — was exhausted.
	// The error message carries per-worker attribution; the coordinator
	// never substitutes a silently partial answer for it.
	ErrShardUnavailable = errors.New("dist: shard unavailable")
	// ErrNoWorkers means the membership table has no ready workers to
	// fan out to.
	ErrNoWorkers = errors.New("dist: no ready workers")
)

// HedgePolicy budgets duplicate calls for straggler shards. With a
// positive Delay, a shard call that has not answered within Delay is
// hedged: a duplicate request goes to the next ready worker, the first
// success wins, and the loser's context is cancelled.
type HedgePolicy struct {
	// Delay is how long a call may remain unanswered before it is
	// hedged. 0 disables hedging.
	Delay time.Duration
	// Max bounds the hedged duplicates per Solve (0 = 1): a budget, so
	// a query over many straggling shards cannot double the cluster's
	// load.
	Max int
}

// Config parameterizes a Coordinator.
type Config struct {
	// Client performs the solve calls. Wrap its transport in a fault
	// Transport to run chaos drills. nil uses http.DefaultClient.
	Client *http.Client
	// Retry caps per-shard worker-call retries, with the same jittered
	// capped-exponential backoff the storage layer uses (JitterSeed
	// decorrelates parallel shard loops).
	Retry em.RetryPolicy
	// Hedge budgets straggler duplicates.
	Hedge HedgePolicy
}

// ShardJob is one shard of a fan-out: the self-contained request and an
// optional local fallback that solves the shard from its halo-replicated
// partition file when every network path is exhausted.
type ShardJob struct {
	// Index is the shard's position in slab order (attribution).
	Index int
	// Req carries the query and the shard's objects.
	Req SolveRequest
	// Fallback, when non-nil, solves the shard locally. Exactness: the
	// fallback reads the same halo-extended partition the worker was
	// sent, so its answer is bit-identical to the worker's.
	Fallback func(ctx context.Context) (sweep.Result, error)
}

// ShardReport attributes one shard's outcome to the workers involved.
type ShardReport struct {
	// Index is the shard's position in slab order.
	Index int
	// Worker names the worker that answered (or the last one tried).
	Worker string
	// Attempts counts the network calls made for the shard, hedges
	// included.
	Attempts int
	// Hedged reports whether a straggler duplicate was launched.
	Hedged bool
	// FellBack reports whether the shard was solved locally from its
	// halo replica after the network paths were exhausted.
	FellBack bool
	// Reads / Writes are the worker-reported I/O of the remote solve
	// (zero for fallback-solved and failed shards).
	Reads, Writes uint64
	// Err is the shard's terminal error (wrapping ErrShardUnavailable),
	// nil on every recovered path.
	Err error
}

// Coordinator fans shard solves out to the membership's ready workers
// with retries, hedging, and graceful degradation. One Coordinator is
// safe for concurrent Solves.
type Coordinator struct {
	cfg     Config
	members *Membership
	jitter  *em.JitterSource
}

// NewCoordinator builds a coordinator over a membership table.
func NewCoordinator(members *Membership, cfg Config) *Coordinator {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	c := &Coordinator{cfg: cfg, members: members}
	if cfg.Retry.JitterSeed != 0 {
		c.jitter = em.NewJitterSource(cfg.Retry.JitterSeed)
	}
	return c
}

// Members exposes the coordinator's membership table.
func (c *Coordinator) Members() *Membership { return c.members }

// Solve fans jobs out over the ready workers and returns the per-shard
// results in job order plus an attribution report per shard. Shard i's
// primary worker is ready[i mod len(ready)]; retries rotate to the next
// ready worker. Every job runs to completion (success, fallback, or
// typed failure) — the returned error joins the terminal failures, and
// the reports say exactly which worker failed how, so a caller never
// has to guess whether an answer is partial: if err != nil, the results
// slice is incomplete at exactly the reported shards.
func (c *Coordinator) Solve(ctx context.Context, jobs []ShardJob) ([]sweep.Result, []ShardReport, error) {
	ready := c.members.Ready()
	if len(ready) == 0 {
		return nil, nil, ErrNoWorkers
	}
	results := make([]sweep.Result, len(jobs))
	reports := make([]ShardReport, len(jobs))
	var hedges atomic.Int64
	max := int64(c.cfg.Hedge.Max)
	if max <= 0 {
		max = 1
	}
	hedges.Store(max)
	_ = conc.ForEachIndexed(len(jobs), len(jobs), func(i int) error {
		c.solveJob(ctx, jobs[i], ready, &hedges, &results[i], &reports[i])
		return nil
	})
	var errs []error
	for i := range reports {
		if reports[i].Err != nil {
			errs = append(errs, reports[i].Err)
		}
	}
	return results, reports, errors.Join(errs...)
}

// solveJob runs one shard to its terminal outcome: answered, hedged,
// failed over, or typed-unavailable. It never leaves the result slot
// ambiguous — rep.Err is nil exactly when res holds the shard's answer.
func (c *Coordinator) solveJob(ctx context.Context, job ShardJob, ready []WorkerInfo,
	hedges *atomic.Int64, res *sweep.Result, rep *ShardReport) {
	rep.Index = job.Index
	body, sum, err := EncodeRequest(job.Req)
	if err != nil {
		rep.Err = fmt.Errorf("shard %d: %w: %v", job.Index, ErrShardUnavailable, err)
		return
	}
	bo := c.cfg.Retry.Backoff(c.jitter)
	var lastErr error
	for try := 0; try <= c.cfg.Retry.MaxRetries; try++ {
		w := ready[(job.Index+try)%len(ready)]
		rep.Worker = w.Name
		reply, retryAfter, err := c.callWithHedge(ctx, w, ready, job.Index+try, body, sum, hedges, rep)
		if err == nil {
			rep.Reads, rep.Writes = reply.Reads, reply.Writes
			*res = reply.Result()
			return
		}
		lastErr = err
		if ctx.Err() != nil || !em.IsTransient(err) {
			break
		}
		// Back off before the next worker, honoring the larger of the
		// worker's Retry-After and our own jittered schedule.
		delay := bo.Next()
		if retryAfter > delay {
			delay = retryAfter
		}
		if serr := sleepCtx(ctx, delay); serr != nil {
			lastErr = serr
			break
		}
	}
	c.members.MarkFailed(rep.Worker)
	if job.Fallback != nil && ctx.Err() == nil {
		if fres, ferr := job.Fallback(ctx); ferr == nil {
			rep.FellBack = true
			*res = fres
			return
		} else {
			lastErr = fmt.Errorf("%v; local fallback: %v", lastErr, ferr)
		}
	}
	rep.Err = fmt.Errorf("shard %d on worker %s after %d attempts: %w: %v",
		job.Index, rep.Worker, rep.Attempts, ErrShardUnavailable, lastErr)
}

// callWithHedge performs one logical call attempt with straggler
// hedging: if the primary has not answered within the hedge delay and
// the budget allows, a duplicate goes to the next ready worker; the
// first success cancels the other's context. Both calls failing fails
// the attempt with the primary's error.
func (c *Coordinator) callWithHedge(ctx context.Context, primary WorkerInfo, ready []WorkerInfo,
	idx int, body []byte, sum string, hedges *atomic.Int64, rep *ShardReport) (SolveReply, time.Duration, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		reply      SolveReply
		retryAfter time.Duration
		err        error
		worker     string
	}
	ch := make(chan outcome, 2)
	launched := 0
	launch := func(w WorkerInfo) {
		launched++
		rep.Attempts++
		go func() {
			reply, ra, err := c.call(cctx, w, body, sum)
			ch <- outcome{reply, ra, err, w.Name}
		}()
	}
	launch(primary)
	var hedgeC <-chan time.Time
	if c.cfg.Hedge.Delay > 0 && len(ready) > 1 {
		timer := time.NewTimer(c.cfg.Hedge.Delay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var firstErr *outcome
	failed := 0
	for {
		select {
		case out := <-ch:
			if out.err == nil {
				rep.Worker = out.worker
				return out.reply, 0, nil
			}
			failed++
			if firstErr == nil {
				o := out
				firstErr = &o
			}
			if failed == launched {
				// Every launched call has failed (the goroutines send
				// exactly once into a buffered channel, so none leaks).
				return SolveReply{}, firstErr.retryAfter, firstErr.err
			}
		case <-hedgeC:
			hedgeC = nil
			if hedges.Add(-1) >= 0 {
				rep.Hedged = true
				launch(ready[(idx+1)%len(ready)])
			} else {
				hedges.Add(1) // budget spent; put the reservation back
			}
		}
	}
}

// call performs one POST /shard/solve against one worker, classifying
// the outcome: transport errors, shed/overload statuses (429/503), 5xx,
// mid-read disconnects, and checksum mismatches are transient (wrapped
// for em.IsTransient); other 4xx statuses are permanent. Retry-After is
// parsed from shed responses so the coordinator backs off as the worker
// asked.
func (c *Coordinator) call(ctx context.Context, w WorkerInfo, body []byte, sum string) (SolveReply, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+PathSolve, bytes.NewReader(body))
	if err != nil {
		return SolveReply{}, 0, fmt.Errorf("dist: build request for %s: %w", w.Name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ChecksumHeader, sum)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return SolveReply{}, 0, ctx.Err()
		}
		if !em.IsTransient(err) {
			err = markTransient(fmt.Errorf("%w: %s: %v", ErrNetFault, w.Name, err))
		}
		return SolveReply{}, 0, err
	}
	defer resp.Body.Close()
	rbody, rerr := readBody(resp.Body)
	if resp.StatusCode != http.StatusOK {
		herr := fmt.Errorf("%w: worker %s returned HTTP %d: %s",
			ErrNetFault, w.Name, resp.StatusCode, firstLine(rbody))
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			return SolveReply{}, retryAfterOf(resp.Header), markTransient(herr)
		}
		return SolveReply{}, 0, herr
	}
	if rerr != nil {
		if ctx.Err() != nil {
			return SolveReply{}, 0, ctx.Err()
		}
		if !em.IsTransient(rerr) {
			rerr = markTransient(fmt.Errorf("%w: %s: read reply: %v", ErrNetFault, w.Name, rerr))
		}
		return SolveReply{}, 0, rerr
	}
	return replyOrErr(decodeReply(resp.Header, rbody))
}

func replyOrErr(reply SolveReply, err error) (SolveReply, time.Duration, error) {
	return reply, 0, err
}

// retryAfterOf parses an integer-seconds Retry-After header (the only
// form maxrsd emits); absent or unparsable yields 0.
func retryAfterOf(h http.Header) time.Duration {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// firstLine truncates an error body for attribution messages.
func firstLine(body []byte) string {
	if i := bytes.IndexByte(body, '\n'); i >= 0 {
		body = body[:i]
	}
	const max = 120
	if len(body) > max {
		body = body[:max]
	}
	return string(body)
}

// sleepCtx sleeps for d, aborting with the context's error on cancel.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
