// Package dist is the network twin of the storage robustness stack
// (DESIGN.md §11): it promotes internal/shard's partition boundary to a
// network boundary. A coordinator plans and routes a dataset locally
// with the exact shard seams, ships each halo-extended partition to a
// worker maxrsd over POST /shard/solve, and merges replies with the
// same exact K-way merge the in-process path uses — so a no-fault
// distributed solve is bit-identical to Options.Shards.
//
// The robustness stack mirrors internal/em's, layer for layer:
//
//   - Transport injects deterministic network faults (exact per-call
//     schedules plus seeded rate bands) below the retry layer, the way
//     em's faultBackend sits below the Disk's counters.
//   - Worker calls are retried under em.RetryPolicy with the same
//     jittered capped-exponential backoff the Disk uses, honoring
//     typed transient-vs-permanent classification and Retry-After.
//   - Straggler shards are hedged: a budgeted duplicate call races the
//     original, first success wins, the loser's ctx is cancelled.
//   - Exhausted retries degrade gracefully: the coordinator solves the
//     lost shard locally from its halo-replicated partition file, or
//     fails typed (ErrShardUnavailable) with per-worker attribution —
//     never a hang, never a silently partial answer.
package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"

	"maxrs/internal/geom"
	"maxrs/internal/sweep"
)

// Wire paths and headers of the internal cluster protocol.
const (
	// PathSolve is the worker's shard-solve endpoint (maxrsd serves the
	// pre-/v1/ path as a deprecated alias for one release).
	PathSolve = "/v1/shard/solve"
	// PathReady is the readiness endpoint membership probes.
	PathReady = "/v1/readyz"
	// ChecksumHeader carries the lowercase-hex CRC32C of the message
	// body. Replies always set it; receivers that find it verify before
	// decoding, turning in-flight corruption into a typed transient
	// error instead of a silent wrong answer — the network twin of the
	// storage layer's block checksums.
	ChecksumHeader = "X-Maxrs-Crc32c"
)

// SolveRequest ships one halo-extended partition to a worker: the query
// rectangle and the shard's objects (halo copies included). The shard is
// self-contained — the worker needs no dataset state, so any ready
// worker can solve any shard, which is what makes retry, hedging, and
// reassignment safe.
type SolveRequest struct {
	W       float64       `json:"w"`
	H       float64       `json:"h"`
	Unfused bool          `json:"unfused,omitempty"`
	Objects []geom.Object `json:"objects"`
}

// SolveReply is a worker's answer for one shard: the shard's
// unrestricted optimum plus the I/O the solve cost on the worker's
// private disk.
type SolveReply struct {
	Sum    float64   `json:"sum"`
	Region geom.Rect `json:"region"`
	Reads  uint64    `json:"reads"`
	Writes uint64    `json:"writes"`
}

// Result converts the reply to the sweep result the merge consumes.
func (r SolveReply) Result() sweep.Result { return sweep.Result{Region: r.Region, Sum: r.Sum} }

// ErrBadChecksum marks a message body that failed ChecksumHeader
// verification — in-flight damage, not a malformed message. Receivers
// should answer it retryably (the sender's resend carries clean bytes),
// unlike a genuine decode error, which no retry will fix.
var ErrBadChecksum = errors.New("dist: body failed checksum verification")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the wire form of body's CRC32C.
func Checksum(body []byte) string { return fmt.Sprintf("%08x", crc32.Checksum(body, crcTable)) }

// DecodeRequest reads and decodes a solve request from an HTTP request
// body, verifying ChecksumHeader when the sender set it.
func DecodeRequest(r *http.Request) (SolveRequest, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return SolveRequest{}, fmt.Errorf("dist: read request: %w", err)
	}
	if want := r.Header.Get(ChecksumHeader); want != "" && want != Checksum(body) {
		return SolveRequest{}, fmt.Errorf("dist: request: %w", ErrBadChecksum)
	}
	var req SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return SolveRequest{}, fmt.Errorf("dist: decode request: %w", err)
	}
	return req, nil
}

// EncodeRequest marshals a solve request and returns the body plus the
// checksum header value to send with it.
func EncodeRequest(req SolveRequest) (body []byte, checksum string, err error) {
	body, err = json.Marshal(req)
	if err != nil {
		return nil, "", fmt.Errorf("dist: encode request: %w", err)
	}
	return body, Checksum(body), nil
}

// WriteReply marshals reply and writes it with the checksum header set,
// so the coordinator can detect in-flight corruption.
func WriteReply(w http.ResponseWriter, reply SolveReply) error {
	body, err := json.Marshal(reply)
	if err != nil {
		return fmt.Errorf("dist: encode reply: %w", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ChecksumHeader, Checksum(body))
	_, err = w.Write(body)
	return err
}

// decodeReply verifies the reply body against ChecksumHeader (when set)
// and decodes it. A checksum mismatch is a transient fault: the bytes
// were damaged in flight, a retry rereads a clean reply.
func decodeReply(header http.Header, body []byte) (SolveReply, error) {
	if want := header.Get(ChecksumHeader); want != "" && want != Checksum(body) {
		return SolveReply{}, markTransient(fmt.Errorf("%w: reply: %v", ErrNetFault, ErrBadChecksum))
	}
	var reply SolveReply
	if err := json.Unmarshal(body, &reply); err != nil {
		// A truncated or garbled reply that happens to carry no checksum
		// header still must not kill the shard: decode failures are
		// in-flight damage until retries say otherwise.
		return SolveReply{}, markTransient(fmt.Errorf("%w: decode reply: %v", ErrNetFault, err))
	}
	return reply, nil
}

// readBody drains a response body, tolerating nothing: any read error
// (mid-stream disconnect, injected or real) surfaces to the caller.
func readBody(r io.Reader) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}
