package dist

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/sweep"
)

// echoServer answers PathSolve with a fixed, checksummed reply — enough
// surface for the transport and coordinator tests, with a call counter
// for attempt assertions.
func echoServer(t *testing.T, reply SolveReply) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if _, err := DecodeRequest(r); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_ = WriteReply(w, reply)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func solveBody(t *testing.T) ([]byte, string) {
	t.Helper()
	body, sum, err := EncodeRequest(SolveRequest{
		W: 2, H: 2,
		Objects: []geom.Object{{Point: geom.Point{X: 1, Y: 1}, W: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body, sum
}

// TestTransportExactSchedule pins the exact-At injection semantics:
// scheduled calls fire their fault regardless of interleaving, and each
// class damages the call the way its storage twin damages a block.
func TestTransportExactSchedule(t *testing.T) {
	want := SolveReply{Sum: 7, Region: geom.Rect{X: geom.Interval{Lo: 0, Hi: 2}, Y: geom.Interval{Lo: 0, Hi: 2}}}
	ts, _ := echoServer(t, want)
	tr := NewTransport(nil, FaultPlan{At: []FaultAt{
		{Call: 1, Kind: FaultConn},
		{Call: 2, Kind: FaultCorrupt},
		{Call: 3, Kind: FaultDisconnect},
	}})
	client := &http.Client{Transport: tr}
	body, sum := solveBody(t)
	post := func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+PathSolve, strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ChecksumHeader, sum)
		return client.Do(req)
	}

	// Call 1: connection fault — the request never reaches the worker,
	// and the error is typed transient (errors.As sees through the
	// client's url.Error wrapping).
	if _, err := post(); err == nil || !em.IsTransient(err) {
		t.Fatalf("call 1: err = %v, want a transient connection fault", err)
	}

	// Call 2: corrupt — the body arrives whole but damaged, and the
	// checksum (computed by the worker over clean bytes) exposes it.
	resp, err := post()
	if err != nil {
		t.Fatalf("call 2: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("call 2 read: %v", err)
	}
	if _, derr := decodeReply(resp.Header, b); derr == nil || !em.IsTransient(derr) {
		t.Fatalf("call 2: decodeReply err = %v, want a transient checksum failure", derr)
	}

	// Call 3: mid-stream disconnect — half the body, then a broken read.
	resp, err = post()
	if err != nil {
		t.Fatalf("call 3: %v", err)
	}
	_, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatal("call 3: full body read despite injected disconnect")
	}

	// Call 4: unscheduled — clean end to end.
	resp, err = post()
	if err != nil {
		t.Fatalf("call 4: %v", err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	got, derr := decodeReply(resp.Header, b)
	if derr != nil || got != want {
		t.Fatalf("call 4: reply %+v err %v, want the clean %+v", got, derr, want)
	}

	st := tr.Stats()
	if st.Calls != 4 || st.InjectedConn != 1 || st.InjectedCorrupt != 1 || st.InjectedDisconnect != 1 {
		t.Fatalf("stats %+v, want 4 calls with one fault of each scheduled kind", st)
	}
}

// TestTransportSeedDeterminism: two transports with the same plan fire
// the identical fault sequence over the same call count — the property
// that makes chaos runs reproducible.
func TestTransportSeedDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 99, ConnRate: 0.3, DisconnectRate: 0.2, CorruptRate: 0.1}
	run := func() FaultStats {
		tr := NewTransport(nil, plan)
		for i := 0; i < 200; i++ {
			tr.decide()
		}
		return tr.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.InjectedConn == 0 || a.InjectedDisconnect == 0 || a.InjectedCorrupt == 0 {
		t.Fatalf("stats %+v: 200 draws at these rates must fire every class", a)
	}
	if got := a.InjectedConn + a.InjectedDisconnect + a.InjectedCorrupt; got > 150 {
		t.Fatalf("%d faults fired out of 200 at a 0.6 cumulative rate — bands overlap?", got)
	}
}

// TestMembershipProbeAndOrder covers the membership table: registration
// defaults, deterministic name-sorted ready order (the shard-assignment
// contract), probe promotion/demotion, and re-registration resets.
func TestMembershipProbeAndOrder(t *testing.T) {
	ready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathReady {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(ready.Close)

	m := NewMembership(nil)
	if m.Add("", "") {
		t.Fatal("added a worker with no URL")
	}
	if !m.Add("b", ready.URL+"/") || !m.Add("a", ready.URL) {
		t.Fatal("registration failed")
	}
	names := func(ws []WorkerInfo) []string {
		out := make([]string, len(ws))
		for i, w := range ws {
			out[i] = w.Name
		}
		return out
	}
	if got := names(m.Ready()); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("ready order %v, want name-sorted [a b]", got)
	}
	if w := m.List()[0]; strings.HasSuffix(w.URL, "/") {
		t.Fatalf("URL %q kept its trailing slash", w.URL)
	}

	// A failed call sequence demotes; a successful probe promotes again.
	m.MarkFailed("a")
	if got := names(m.Ready()); len(got) != 1 || got[0] != "b" {
		t.Fatalf("ready after MarkFailed = %v, want [b]", got)
	}
	m.ProbeAll(context.Background())
	if got := names(m.Ready()); len(got) != 2 {
		t.Fatalf("ready after probe = %v, want both promoted", got)
	}

	// A dead worker is demoted by probing, and re-registration resets it.
	if !m.Add("c", "http://127.0.0.1:1") {
		t.Fatal("registration failed")
	}
	m.ProbeAll(context.Background())
	for _, w := range m.List() {
		if w.Name == "c" && (w.Ready || w.Failures == 0) {
			t.Fatalf("dead worker after probe: %+v, want demoted with failures", w)
		}
	}
	if !m.Add("c", "http://127.0.0.1:1") {
		t.Fatal("re-registration failed")
	}
	for _, w := range m.List() {
		if w.Name == "c" && (!w.Ready || w.Failures != 0) {
			t.Fatalf("re-registered worker: %+v, want reset to ready", w)
		}
	}
	if !m.Remove("c") || m.Remove("c") {
		t.Fatal("remove should succeed once then report absence")
	}
}

// TestCoordinatorHonorsRetryAfter: a worker that sheds with 429 +
// Retry-After is retried no sooner than it asked, and the shard still
// lands. The coordinator must wait max(backoff, Retry-After) — a 429'd
// worker hammered on the backoff schedule anyway defeats shedding.
func TestCoordinatorHonorsRetryAfter(t *testing.T) {
	want := SolveReply{Sum: 5, Region: geom.Rect{X: geom.Interval{Lo: 0, Hi: 1}, Y: geom.Interval{Lo: 0, Hi: 1}}}
	var calls atomic.Int64
	var firstCall, secondCall atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstCall.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			http.Error(w, "saturated", http.StatusTooManyRequests)
		default:
			secondCall.Store(time.Now().UnixNano())
			if _, err := DecodeRequest(r); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			_ = WriteReply(w, want)
		}
	}))
	t.Cleanup(ts.Close)

	m := NewMembership(nil)
	m.Add("w", ts.URL)
	c := NewCoordinator(m, Config{Retry: em.RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}})
	results, reports, err := c.Solve(context.Background(), []ShardJob{{Index: 0, Req: SolveRequest{W: 1, H: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != want.Result() {
		t.Fatalf("result %+v, want %+v", results[0], want.Result())
	}
	if reports[0].Attempts != 2 {
		t.Fatalf("%d attempts, want 2 (shed once, then served)", reports[0].Attempts)
	}
	if gap := time.Duration(secondCall.Load() - firstCall.Load()); gap < time.Second {
		t.Fatalf("retried after %v, sooner than the worker's Retry-After of 1s", gap)
	}
}

// TestCoordinatorPermanentErrorNoRetry: a permanent worker error (a
// plain 4xx) must not burn the retry budget, and without a fallback it
// surfaces as a typed ErrShardUnavailable naming the worker.
func TestCoordinatorPermanentErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "bad shard", http.StatusBadRequest)
	}))
	t.Cleanup(ts.Close)
	m := NewMembership(nil)
	m.Add("w", ts.URL)
	c := NewCoordinator(m, Config{Retry: em.RetryPolicy{MaxRetries: 5, BaseDelay: time.Millisecond}})
	_, reports, err := c.Solve(context.Background(), []ShardJob{{Index: 0, Req: SolveRequest{W: 1, H: 1}}})
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("%d calls for a permanent error, want 1", n)
	}
	if reports[0].Worker != "w" || reports[0].Err == nil {
		t.Fatalf("report %+v, want worker attribution and a terminal error", reports[0])
	}
	// The exhausted worker is demoted until the next successful probe.
	if len(m.Ready()) != 0 {
		t.Fatal("failed worker still listed ready")
	}
}

// TestCoordinatorFallbackAfterExhaustion: when every network attempt
// fails transiently, the local halo-replica fallback answers and the
// report says so.
func TestCoordinatorFallbackAfterExhaustion(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	m := NewMembership(nil)
	m.Add("w", ts.URL)
	c := NewCoordinator(m, Config{Retry: em.RetryPolicy{MaxRetries: 1, BaseDelay: time.Millisecond}})
	local := sweep.Result{Sum: 9, Region: geom.Rect{X: geom.Interval{Lo: 1, Hi: 2}, Y: geom.Interval{Lo: 1, Hi: 2}}}
	results, reports, err := c.Solve(context.Background(), []ShardJob{{
		Index:    0,
		Req:      SolveRequest{W: 1, H: 1},
		Fallback: func(context.Context) (sweep.Result, error) { return local, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != local {
		t.Fatalf("result %+v, want the fallback's %+v", results[0], local)
	}
	if !reports[0].FellBack || reports[0].Attempts != 2 {
		t.Fatalf("report %+v, want FellBack after 2 attempts", reports[0])
	}
}

// TestCoordinatorHedgeBudget: the hedge budget caps duplicates across a
// whole Solve — with budget 1 and two straggling shards, exactly one
// hedge launches.
func TestCoordinatorHedgeBudget(t *testing.T) {
	reply := SolveReply{Sum: 1, Region: geom.Rect{X: geom.Interval{Lo: 0, Hi: 1}, Y: geom.Interval{Lo: 0, Hi: 1}}}
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := DecodeRequest(r); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		_ = WriteReply(w, reply)
	}))
	t.Cleanup(slow.Close)
	fast, fastCalls := echoServer(t, reply)

	m := NewMembership(nil)
	m.Add("slow", slow.URL)
	m.Add("fast", fast.URL)
	c := NewCoordinator(m, Config{
		Retry: em.RetryPolicy{MaxRetries: 0},
		Hedge: HedgePolicy{Delay: 10 * time.Millisecond, Max: 1},
	})
	// Both shards route to the slow primary (index parity picks
	// ready[(i)%2]: "fast" sorts first, "slow" second).
	jobs := []ShardJob{
		{Index: 1, Req: SolveRequest{W: 1, H: 1}}, // ready[1] = slow
		{Index: 3, Req: SolveRequest{W: 1, H: 1}}, // ready[1] = slow
	}
	_, reports, err := c.Solve(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	hedgedCount := 0
	for _, r := range reports {
		if r.Hedged {
			hedgedCount++
		}
	}
	if hedgedCount != 1 {
		t.Fatalf("%d shards hedged with a budget of 1, want exactly 1", hedgedCount)
	}
	if n := fastCalls.Load(); n != 1 {
		t.Fatalf("fast worker saw %d calls, want exactly the 1 hedge", n)
	}
}

// TestCoordinatorNoWorkers: an empty membership fails fast and typed.
func TestCoordinatorNoWorkers(t *testing.T) {
	c := NewCoordinator(NewMembership(nil), Config{})
	if _, _, err := c.Solve(context.Background(), []ShardJob{{Index: 0}}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestWireChecksumRoundTrip: encode → decode round-trips, and one
// flipped byte is caught on both directions of the protocol.
func TestWireChecksumRoundTrip(t *testing.T) {
	req := SolveRequest{W: 3, H: 4, Objects: []geom.Object{{Point: geom.Point{X: 5, Y: 6}, W: 7}}}
	body, sum, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, _ := http.NewRequest(http.MethodPost, "/shard/solve", strings.NewReader(string(body)))
	hreq.Header.Set(ChecksumHeader, sum)
	got, err := DecodeRequest(hreq)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != req.W || got.H != req.H || len(got.Objects) != 1 || got.Objects[0] != req.Objects[0] {
		t.Fatalf("round trip %+v, want %+v", got, req)
	}

	damaged := append([]byte(nil), body...)
	damaged[0] ^= 0xA5
	hreq, _ = http.NewRequest(http.MethodPost, "/shard/solve", strings.NewReader(string(damaged)))
	hreq.Header.Set(ChecksumHeader, sum)
	if _, err := DecodeRequest(hreq); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("damaged request: err = %v, want ErrBadChecksum", err)
	}

	reply := SolveReply{Sum: 8}
	rbody, err := json.Marshal(reply)
	if err != nil {
		t.Fatal(err)
	}
	h := http.Header{}
	h.Set(ChecksumHeader, Checksum(rbody))
	if got, err := decodeReply(h, rbody); err != nil || got.Sum != reply.Sum {
		t.Fatalf("clean reply: %+v, %v", got, err)
	}
	rbody[0] ^= 0xA5
	if _, err := decodeReply(h, rbody); err == nil || !em.IsTransient(err) {
		t.Fatalf("damaged reply: err = %v, want transient", err)
	}
}
