package dist

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// WorkerInfo is one membership-table entry as seen from outside.
type WorkerInfo struct {
	// Name identifies the worker in attribution and stats.
	Name string `json:"name"`
	// URL is the worker's base URL (scheme://host:port).
	URL string `json:"url"`
	// Ready is the result of the last probe (or registration default).
	Ready bool `json:"ready"`
	// Failures counts consecutive failed probes/calls since the last
	// success.
	Failures int `json:"failures,omitempty"`
}

type workerState struct {
	name     string
	url      string
	ready    bool
	failures int
}

// Membership is the coordinator's worker table: registration, removal,
// and readiness probing against each worker's /readyz. Probes use their
// own plain client — NOT the fault-injected solve client — so a chaos
// plan's call indices target solve calls deterministically and a drill
// never blinds the prober itself.
type Membership struct {
	mu      sync.Mutex
	workers []*workerState
	probe   *http.Client
}

// NewMembership builds an empty table. probeClient may be nil, which
// uses a short-timeout plain client.
func NewMembership(probeClient *http.Client) *Membership {
	if probeClient == nil {
		probeClient = &http.Client{Timeout: 2 * time.Second}
	}
	return &Membership{probe: probeClient}
}

// Add registers (or re-registers) a worker by name. A new worker starts
// ready — the first failed call or probe demotes it — so registration
// alone suffices in tests and static topologies without a prober
// running. Returns false if the URL is empty.
func (m *Membership) Add(name, url string) bool {
	url = strings.TrimRight(url, "/")
	if url == "" {
		return false
	}
	if name == "" {
		name = url
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers {
		if w.name == name {
			w.url = url
			w.ready = true
			w.failures = 0
			return true
		}
	}
	m.workers = append(m.workers, &workerState{name: name, url: url, ready: true})
	return true
}

// Remove drops a worker from the table. Returns whether it was present.
func (m *Membership) Remove(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, w := range m.workers {
		if w.name == name {
			m.workers = append(m.workers[:i], m.workers[i+1:]...)
			return true
		}
	}
	return false
}

// List snapshots the table in registration order.
func (m *Membership) List() []WorkerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerInfo, len(m.workers))
	for i, w := range m.workers {
		out[i] = WorkerInfo{Name: w.name, URL: w.url, Ready: w.ready, Failures: w.failures}
	}
	return out
}

// Ready returns the ready workers, name-sorted so shard→worker
// assignment is deterministic for a fixed membership state.
func (m *Membership) Ready() []WorkerInfo {
	all := m.List()
	out := all[:0]
	for _, w := range all {
		if w.Ready {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MarkFailed records a failed solve call against a worker, demoting it
// to not-ready. The next successful probe promotes it back.
func (m *Membership) MarkFailed(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers {
		if w.name == name {
			w.ready = false
			w.failures++
			return
		}
	}
}

// ProbeAll probes every worker's /readyz once, updating readiness.
// HTTP 200 promotes; anything else (including transport errors)
// demotes. Probes run sequentially — tables are small and sequential
// probing keeps the order deterministic.
func (m *Membership) ProbeAll(ctx context.Context) {
	for _, w := range m.List() {
		m.probeOne(ctx, w)
	}
}

func (m *Membership) probeOne(ctx context.Context, w WorkerInfo) {
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+PathReady, nil)
	if err == nil {
		resp, perr := m.probe.Do(req)
		if perr == nil {
			ok = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ws := range m.workers {
		if ws.name != w.Name {
			continue
		}
		ws.ready = ok
		if ok {
			ws.failures = 0
		} else {
			ws.failures++
		}
		return
	}
}

// StartProber launches a background loop probing every interval until
// the returned stop function is called (which blocks until the loop
// exits). An initial probe runs immediately.
func (m *Membership) StartProber(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.ProbeAll(ctx)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				m.ProbeAll(ctx)
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// String summarizes the table for logs.
func (m *Membership) String() string {
	list := m.List()
	parts := make([]string, len(list))
	for i, w := range list {
		state := "ready"
		if !w.Ready {
			state = fmt.Sprintf("down(%d)", w.Failures)
		}
		parts[i] = fmt.Sprintf("%s=%s[%s]", w.Name, w.URL, state)
	}
	return strings.Join(parts, " ")
}
