package plan_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"maxrs/internal/plan"
	"maxrs/internal/rec"
)

// TestCollectorDeterminism: the reservoir PRNG is seeded with a fixed
// constant, so the same input sequence yields byte-identical Stats —
// and therefore the same plan — on every load.
func TestCollectorDeterminism(t *testing.T) {
	build := func() plan.Stats {
		c := plan.NewCollector()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			c.Add(rng.Float64()*1000, rng.Float64()*1000, 1)
		}
		return c.Finalize(4096, 1<<20)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two loads of the same sequence produced different Stats")
	}
	if len(a.SampleX) != 2048 {
		t.Fatalf("reservoir holds %d samples past the cap, want 2048", len(a.SampleX))
	}
	if !sort.Float64sAreSorted(a.SampleX) {
		t.Fatal("SampleX not sorted")
	}
}

func TestCollectorStats(t *testing.T) {
	c := plan.NewCollector()
	c.Add(3, -2, 5)
	c.Add(-1, 8, -0.5)
	c.Add(10, 0, 2)
	st := c.Finalize(4096, 1<<20)
	objSize := int64(rec.ObjectCodec{}.Size())
	if st.N != 3 || st.Bytes != 3*objSize || st.Blocks != 1 {
		t.Fatalf("sizes = %+v", st)
	}
	if st.MinX != -1 || st.MaxX != 10 || st.MinY != -2 || st.MaxY != 8 {
		t.Fatalf("extent = %+v", st)
	}
	if st.MinW != -0.5 || st.MaxW != 5 || st.SumW != 6.5 {
		t.Fatalf("weights = %+v", st)
	}
	if !st.Resident {
		t.Fatal("3 objects must be resident under a 1 MiB budget")
	}
	if got := st.MeanW(); got != 6.5/3 {
		t.Fatalf("MeanW = %g", got)
	}

	empty := plan.NewCollector().Finalize(4096, 1<<20)
	if empty.N != 0 || empty.MinX != 0 || empty.MaxX != 0 || empty.MinW != 0 || empty.MeanW() != 0 {
		t.Fatalf("empty stats not zeroed: %+v", empty)
	}
}

// syntheticStats builds Stats for n objects spread uniformly over x —
// enough structure for the chooser tests without running a loader.
func syntheticStats(n int64, minW float64, blockSize, memory int) plan.Stats {
	c := plan.NewCollector()
	rng := rand.New(rand.NewSource(42))
	for i := int64(0); i < n; i++ {
		w := 1.0
		if i == 0 {
			w = minW
		}
		c.Add(rng.Float64()*50000, rng.Float64()*50000, w)
	}
	return c.Finalize(blockSize, memory)
}

func TestChooseResidentPicksSingleScan(t *testing.T) {
	st := syntheticStats(100, 1, 4096, 1<<20)
	if !st.Resident {
		t.Fatal("setup: dataset must be resident")
	}
	strat, cands := plan.Choose(st, plan.Settings{B: 4096, M: 1 << 20, W: 50, H: 50})
	if strat.Algorithm != plan.InMemory || strat.Shards != 0 {
		t.Fatalf("resident choice = %+v, want InMemory unsharded", strat)
	}
	chosen := 0
	for _, c := range cands {
		if c.Chosen {
			chosen++
			if !c.Eligible {
				t.Fatal("chosen row is ineligible")
			}
			if !c.Cost.Exact {
				t.Fatal("the resident single scan is a closed-form schedule; Cost.Exact must hold")
			}
			if c.Cost.Reads != st.Blocks || c.Cost.Writes != 0 {
				t.Fatalf("resident scan cost = %+v, want %d reads", c.Cost, st.Blocks)
			}
		}
	}
	if chosen != 1 {
		t.Fatalf("%d rows chosen, want 1", chosen)
	}
}

func TestChooseNeverPicksIneligible(t *testing.T) {
	st := syntheticStats(12500, -3, 4096, 52428) // negative weights, external
	strat, cands := plan.Choose(st, plan.Settings{B: 4096, M: 52428, W: 50, H: 50})
	if strat.Shards >= 2 {
		t.Fatalf("chose %d-way sharding on negative weights", strat.Shards)
	}
	for _, c := range cands {
		if c.Shards >= 2 {
			if c.Eligible {
				t.Fatalf("sharded row eligible on negative weights: %+v", c)
			}
			if c.Note == "" {
				t.Fatal("ineligible row carries no note for explain output")
			}
		}
		if c.Chosen && !c.Eligible {
			t.Fatalf("ineligible row chosen: %+v", c)
		}
		if (c.Algorithm == plan.NaiveSweep || c.Algorithm == plan.ASBTree) && c.Eligible && !st.Resident {
			t.Fatalf("external baseline eligible: %+v", c)
		}
	}
}

func TestCandidatesRespectRestrictions(t *testing.T) {
	st := syntheticStats(12500, 1, 4096, 52428)
	for _, c := range plan.Candidates(st, plan.Settings{B: 4096, M: 52428, W: 50, H: 50, NoShards: true, SolverOnly: true}) {
		if c.Algorithm != plan.ExactMaxRS {
			t.Fatalf("SolverOnly table holds %v", c.Algorithm)
		}
		if c.Shards > 0 {
			t.Fatalf("NoShards table holds a %d-shard row", c.Shards)
		}
	}
}

// TestEstimateChargesExtras: kind-specific passes land on every candidate
// alike, so they shift the absolute prediction without touching the
// ranking.
func TestEstimateChargesExtras(t *testing.T) {
	st := syntheticStats(12500, 1, 4096, 52428)
	base := plan.Settings{B: 4096, M: 52428, W: 50, H: 50}
	extra := base
	extra.ExtraReads, extra.ExtraWrites = 7, 9
	s := plan.Strategy{Algorithm: plan.ExactMaxRS}
	c0, c1 := plan.Estimate(st, base, s), plan.Estimate(st, extra, s)
	if c1.Reads != c0.Reads+7 || c1.Writes != c0.Writes+9 {
		t.Fatalf("extras not charged: base %+v extra %+v", c0, c1)
	}
}

func TestEstimateDegenerate(t *testing.T) {
	empty := plan.NewCollector().Finalize(4096, 52428)
	c := plan.Estimate(empty, plan.Settings{B: 4096, M: 52428, W: 50, H: 50}, plan.Strategy{Algorithm: plan.ExactMaxRS})
	if c.Reads != 0 || c.Writes != 0 || !c.Exact {
		t.Fatalf("empty dataset cost = %+v, want exact zero", c)
	}
}
