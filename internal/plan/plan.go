// Package plan is the engine's decision layer: load-time dataset
// statistics, a calibrated cost model that predicts the block-transfer
// count of every execution strategy, and a chooser that picks
// algorithm × shards × fusion under the M budget.
//
// The EM layer counts block transfers deterministically, which makes the
// cost model exactly testable rather than merely plausible: for the
// strategies whose schedule is closed-form (a resident dataset scanned
// once) Estimate is bit-for-bit right and says so (Cost.Exact); for the
// recursive ExactMaxRS schedule, whose division boundaries and spanning
// populations are data-dependent, Estimate replays the real division and
// sharding rules over a small load-time sample of the x-distribution and
// scales the resulting counts — an expected-value simulation whose error
// against the measured counters is bounded by the calibration tests
// (DESIGN.md §12).
package plan

import (
	"math"
	"sort"

	"maxrs/internal/rec"
)

// sampleCap bounds the reservoir sample of x-coordinates kept per
// dataset (2048 float64s = 16 KB). The sample is the planner's picture
// of the x-distribution: division boundaries, fragment populations and
// shard balance are all replayed over it, so it must be big enough to
// resolve per-child event counts at two levels of a fan-out ~10
// recursion and small enough to be irrelevant next to the M budget.
const sampleCap = 2048

// Stats are the dataset statistics collected in the loader's existing
// streaming pass — no extra scan, no extra block transfers.
type Stats struct {
	N      int64 // object count
	Bytes  int64 // object-file bytes (N × record size)
	Blocks int64 // object-file blocks at the engine's block size

	MinX, MaxX float64 // extent
	MinY, MaxY float64
	MinW, MaxW float64 // weight range
	SumW       float64

	// Resident reports Bytes ≤ M at load time: the whole dataset fits
	// in the engine's memory budget, the regime where single-scan
	// strategies beat the external recursion outright.
	Resident bool

	// SampleX is a deterministic reservoir sample of object
	// x-coordinates, sorted ascending — the empirical x-distribution
	// the cost model simulates division and sharding against.
	SampleX []float64
}

// MeanW returns the mean object weight (0 for an empty dataset).
func (s Stats) MeanW() float64 {
	if s.N == 0 {
		return 0
	}
	return s.SumW / float64(s.N)
}

// Collector accumulates Stats record by record inside a loader pass.
type Collector struct {
	n          int64
	minX, maxX float64
	minY, maxY float64
	minW, maxW float64
	sumW       float64
	sample     []float64
	rng        uint64
}

// NewCollector returns an empty collector. The reservoir PRNG is seeded
// with a fixed constant so the sample — and therefore every plan — is a
// deterministic function of the input sequence.
func NewCollector() *Collector {
	return &Collector{
		minX: math.Inf(1), maxX: math.Inf(-1),
		minY: math.Inf(1), maxY: math.Inf(-1),
		minW: math.Inf(1), maxW: math.Inf(-1),
		sample: make([]float64, 0, sampleCap),
		rng:    0x9e3779b97f4a7c15,
	}
}

// next is splitmix64 — deterministic, fast, and plenty for reservoir
// index selection.
func (c *Collector) next() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add folds one object into the statistics (Algorithm R reservoir
// sampling for the x-coordinate).
func (c *Collector) Add(x, y, w float64) {
	c.n++
	c.minX = math.Min(c.minX, x)
	c.maxX = math.Max(c.maxX, x)
	c.minY = math.Min(c.minY, y)
	c.maxY = math.Max(c.maxY, y)
	c.minW = math.Min(c.minW, w)
	c.maxW = math.Max(c.maxW, w)
	c.sumW += w
	if len(c.sample) < sampleCap {
		c.sample = append(c.sample, x)
		return
	}
	if j := c.next() % uint64(c.n); j < sampleCap {
		c.sample[j] = x
	}
}

// Finalize seals the collector into Stats for an engine with the given
// block size and memory budget. The collector must not be reused.
func (c *Collector) Finalize(blockSize, memory int) Stats {
	sort.Float64s(c.sample)
	bytes := c.n * int64(rec.ObjectCodec{}.Size())
	st := Stats{
		N: c.n, Bytes: bytes, Blocks: ceilDiv(bytes, int64(blockSize)),
		MinX: c.minX, MaxX: c.maxX, MinY: c.minY, MaxY: c.maxY,
		MinW: c.minW, MaxW: c.maxW, SumW: c.sumW,
		Resident: bytes <= int64(memory),
		SampleX:  c.sample,
	}
	if c.n == 0 {
		st.MinX, st.MaxX, st.MinY, st.MaxY = 0, 0, 0, 0
		st.MinW, st.MaxW = 0, 0
	}
	return st
}

// Algorithm mirrors the public maxrs.Algorithm constants numerically
// (ExactMaxRS = 0 … InMemory = 3); the package stays import-cycle-free
// by not naming them.
type Algorithm int

const (
	ExactMaxRS Algorithm = iota
	NaiveSweep
	ASBTree
	InMemory
)

func (a Algorithm) String() string {
	switch a {
	case ExactMaxRS:
		return "ExactMaxRS"
	case NaiveSweep:
		return "NaiveSweep"
	case ASBTree:
		return "ASBTree"
	case InMemory:
		return "InMemory"
	}
	return "Algorithm(?)"
}

// Settings carries everything besides the dataset that determines a
// strategy's transfer count: the EM geometry, the solver configuration
// and the query rectangle.
type Settings struct {
	B      int     // block size
	M      int     // memory budget
	Fanout int     // explicit division fan-out (0 = auto)
	W, H   float64 // query rectangle (W doubles as the MaxCRS diameter)

	// NoShards excludes sharded candidates (MinRS, MaxCRS — kinds whose
	// execution path never shards).
	NoShards bool
	// SolverOnly restricts candidates to the ExactMaxRS solver (MaxCRS,
	// whose inner MaxRS call cannot be swapped for a baseline).
	SolverOnly bool
	// ExtraReads/ExtraWrites are kind-specific passes charged to every
	// candidate alike: the map pass of MinRS/CountRS (read + rewrite of
	// the object file), the candidate scan of MaxCRS.
	ExtraReads, ExtraWrites int64
	// DeltaPending is the dataset's buffered mutation count. > 0 adds
	// the informational combined base+delta row to the candidate table;
	// the chooser never picks it (the combined path is taken adaptively
	// at solve time when its soundness gates hold) and predictions stop
	// being Exact (the delta's work is data-dependent).
	DeltaPending int64
}

// Strategy is one executable point of the plan space.
type Strategy struct {
	Algorithm Algorithm
	Shards    int
	Unfused   bool
}

// Cost is a predicted transfer count. Exact marks the strategies whose
// schedule is closed-form — the calibration tests hold those bit-for-bit
// and the rest to a documented tolerance (DESIGN.md §12).
type Cost struct {
	Reads, Writes int64
	Exact         bool
}

// Total returns reads + writes — the io/op figure strategies are ranked
// by.
func (c Cost) Total() int64 { return c.Reads + c.Writes }

// Candidate is one row of the plan's candidate table: a strategy, its
// predicted cost, and whether the chooser may pick it. Ineligible rows
// (data-dependent baselines whose model is too coarse to trust) are kept
// for visibility in explain output.
type Candidate struct {
	Strategy
	Cost     Cost
	Eligible bool
	Chosen   bool
	// Delta marks the informational combined base+delta row shown when
	// the dataset has buffered mutations. It is never Chosen: the solve
	// path decides per query whether the influence bound holds.
	Delta bool
	Note  string
}

// Choose enumerates the candidate table for the dataset and settings and
// returns the cheapest eligible strategy by predicted Total (ties go to
// the earlier, simpler row). Transfer counts are parallelism-invariant
// throughout the engine (DESIGN.md §6), so parallelism is not part of
// the choice — the caller keeps its configured worker count.
func Choose(st Stats, set Settings) (Strategy, []Candidate) {
	cands := Candidates(st, set)
	best := -1
	for i, c := range cands {
		if !c.Eligible {
			continue
		}
		if best < 0 || c.Cost.Total() < cands[best].Cost.Total() {
			best = i
		}
	}
	if best < 0 {
		// Defensive: the fused unsharded solver is always eligible.
		return Strategy{Algorithm: ExactMaxRS}, cands
	}
	cands[best].Chosen = true
	return cands[best].Strategy, cands
}

// shardGrid is the shard-count grid Choose considers. 1 is included for
// the candidate table (it isolates the partition-pass overhead) even
// though it can never beat 0.
var shardGrid = [...]int{0, 1, 2, 4, 8}

// Candidates builds the full candidate table, eligibility flags
// included, without choosing.
func Candidates(st Stats, set Settings) []Candidate {
	var cands []Candidate
	add := func(s Strategy, eligible bool, note string) {
		cands = append(cands, Candidate{
			Strategy: s,
			Cost:     Estimate(st, set, s),
			Eligible: eligible,
			Note:     note,
		})
	}
	if !set.SolverOnly {
		if st.Resident {
			add(Strategy{Algorithm: InMemory}, true, "dataset fits in M: one scan")
			add(Strategy{Algorithm: NaiveSweep}, true, "resident shortcut: equals InMemory")
		} else {
			add(Strategy{Algorithm: NaiveSweep}, false, "external status rewrites are data-dependent; dominated")
			add(Strategy{Algorithm: ASBTree}, false, "buffer-sensitive descents; model too coarse to rank")
		}
	}
	for _, k := range shardGrid {
		if k > 0 && set.NoShards {
			continue
		}
		if k >= 2 && st.MinW < 0 {
			add(Strategy{Algorithm: ExactMaxRS, Shards: k}, false, "negative weights cannot be sharded exactly")
			continue
		}
		add(Strategy{Algorithm: ExactMaxRS, Shards: k}, true, "")
	}
	add(Strategy{Algorithm: ExactMaxRS, Unfused: true}, true, "unfused ablation: pays the materialized sort passes")
	if set.DeltaPending > 0 {
		cands = append(cands, Candidate{
			Strategy: Strategy{Algorithm: ExactMaxRS},
			Delta:    true,
			Eligible: false,
			Note:     "combined base+delta path: taken adaptively when the influence bound holds",
		})
	}
	return cands
}
