package plan_test

import (
	"context"
	"fmt"
	"testing"

	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/plan"
	"maxrs/internal/shard"
	"maxrs/internal/workload"
)

// measure runs one real solve and returns its scoped transfer counts.
func measure(t *testing.T, objs []geom.Object, blockSize, memory int, w, h float64, shards int, unfused bool) (reads, writes int64) {
	t.Helper()
	d, err := em.NewDisk(blockSize)
	if err != nil {
		t.Fatal(err)
	}
	f, err := workload.Write(d, objs)
	if err != nil {
		t.Fatal(err)
	}
	env := em.Env{Disk: d, M: memory}
	sc := &em.ScopeStats{}
	if shards > 0 {
		res, err := shard.SolveObjects(context.Background(), env.WithScope(sc), f, w, h, shard.Config{
			Shards: shards,
			Core:   core.Config{Unfused: unfused},
			NewDisk: func() (*em.Disk, error) {
				return em.NewDisk(blockSize)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sc.Add(res.Stats())
	} else {
		s, err := core.NewSolver(env, core.Config{Unfused: unfused})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.SolveObjectsScoped(context.Background(), f, w, h, sc); err != nil {
			t.Fatal(err)
		}
	}
	st := sc.Stats()
	return int64(st.Reads), int64(st.Writes)
}

func statsOf(objs []geom.Object, blockSize, memory int) plan.Stats {
	c := plan.NewCollector()
	for _, o := range objs {
		c.Add(o.X, o.Y, o.W)
	}
	return c.Finalize(blockSize, memory)
}

// TestCalibrationDev prints predicted-vs-measured for the shard-bench
// grid. Dev harness; run with -v.
func TestCalibrationDev(t *testing.T) {
	if testing.Short() {
		t.Skip("dev harness")
	}
	const (
		n         = 12500
		blockSize = 4096
		memory    = 52428
		seed      = 2012
	)
	extent := 4.0 * n
	q := extent / 1000
	for _, wl := range []struct {
		name string
		objs []geom.Object
	}{
		{"uniform", workload.Uniform(seed, n, extent)},
		{"gaussian", workload.Gaussian(seed, n, extent)},
	} {
		st := statsOf(wl.objs, blockSize, memory)
		set := plan.Settings{B: blockSize, M: memory, W: q, H: q}
		for _, k := range []int{0, 1, 2, 4, 8} {
			for _, unfused := range []bool{false, true} {
				if unfused && k > 0 {
					continue
				}
				pred := plan.Estimate(st, set, plan.Strategy{Algorithm: plan.ExactMaxRS, Shards: k, Unfused: unfused})
				r, w := measure(t, wl.objs, blockSize, memory, q, q, k, unfused)
				errPct := 100 * float64(pred.Total()-(r+w)) / float64(r+w)
				fmt.Printf("%-9s K=%d unfused=%-5v predicted=%6d (r=%5d w=%5d) measured=%6d (r=%5d w=%5d) err=%+6.1f%%\n",
					wl.name, k, unfused, pred.Total(), pred.Reads, pred.Writes, r+w, r, w, errPct)
			}
		}
	}
}
