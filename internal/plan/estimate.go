package plan

import (
	"math"
	"sort"

	"maxrs/internal/rec"
)

// Record sizes come straight from the codecs so the model can never
// drift from the on-disk layout.
var (
	objSize   = rec.ObjectCodec{}.Size()
	eventSize = rec.PieceEventCodec{}.Size()
	edgeSize  = rec.Float64Codec{}.Size()
	tupleSize = rec.TupleCodec{}.Size()
)

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Estimate predicts the block transfers of one strategy for one query
// over the dataset. The prediction replays the engine's real schedules
// — run formation, merge reduction, the division recursion, shard
// planning/partitioning — over the load-time sample, so everything
// structural (sort passes, fusion savings, reduce-level elimination
// under sharding, halo inflation) is modeled mechanically; only the
// populations are estimated. See DESIGN.md §12 for the derivation and
// the measured calibration error.
func Estimate(st Stats, set Settings, strat Strategy) Cost {
	c := estimate(st, set, strat)
	c.Reads += set.ExtraReads
	c.Writes += set.ExtraWrites
	return c
}

func estimate(st Stats, set Settings, strat Strategy) Cost {
	if st.N == 0 || set.B <= 0 || set.M <= 0 {
		return Cost{Exact: true}
	}
	switch strat.Algorithm {
	case InMemory:
		// ReadAll of the object file; the sweep itself is CPU-only.
		return Cost{Reads: st.Blocks, Exact: true}
	case NaiveSweep:
		if st.Resident {
			// The §7.2.4 shortcut: one loading scan, in-memory sweep.
			return Cost{Reads: st.Blocks, Exact: true}
		}
		return naiveExternalCost(st, set)
	case ASBTree:
		return asbCost(st, set)
	}
	s := newSim(st, set)
	s.sharded(st, strat.Shards, strat.Unfused)
	return s.c
}

// naiveExternalCost models the external naive sweep: transform to an
// event file, sort it, then one status-file rewrite per event. The
// status population is data-dependent (it holds the rectangles open at
// the sweep line); the expectation N·H/extentY is used. Never eligible
// for choosing — the row exists so explain output can show why.
func naiveExternalCost(st Stats, set Settings) Cost {
	s := newSim(st, set)
	events := 2 * float64(st.N)
	evFile := s.blocks(events, rec.EventCodec{}.Size())
	s.c.Reads += st.Blocks // transform scan
	s.c.Writes += evFile
	s.sortFile(events, rec.EventCodec{}.Size(), evFile)
	s.c.Reads += evFile // the sweep streams the sorted events once
	open := float64(st.N)
	if ey := st.MaxY - st.MinY; ey > 0 && set.H < ey {
		open = float64(st.N) * set.H / ey
	}
	statusBlocks := s.blocks(2*open+1, 16)
	s.c.Reads += int64(events) * statusBlocks
	s.c.Writes += int64(events) * statusBlocks
	s.c.Exact = false
	return s.c
}

// asbCost coarsely models the aSB-tree: bulk load (sort the edge
// values, write the tree) plus one lazy descent per event, with the
// buffer pool caching the top levels. Never eligible for choosing.
func asbCost(st Stats, set Settings) Cost {
	s := newSim(st, set)
	edges := 4 * float64(st.N)
	edFile := s.blocks(edges, edgeSize)
	s.c.Reads += st.Blocks
	s.c.Writes += edFile
	s.sortFile(edges, edgeSize, edFile)
	s.c.Reads += edFile
	s.c.Writes += 2 * edFile // tree nodes ≈ 2× the leaf level
	fan := float64(set.B / 16)
	if fan < 2 {
		fan = 2
	}
	height := math.Ceil(math.Log(math.Max(edges, 2)) / math.Log(fan))
	cached := math.Floor(math.Log(math.Max(float64(set.M/set.B), 1)) / math.Log(fan))
	uncached := math.Max(height-cached, 0)
	s.c.Reads += int64(2 * float64(st.N) * uncached)
	s.c.Exact = false
	return s.c
}

// span is one sample rectangle's x-extent carrying the number of real
// piece events it stands for. The division recursion is replayed over
// spans exactly as the router replays it over events. frag marks spans
// produced as boundary clips of the enclosing division (vs anchored
// wholly inside their child).
type span struct {
	x1, x2 float64
	w      float64
	frag   bool
}

// sim accumulates the predicted cost of one ExactMaxRS execution.
type sim struct {
	set   Settings
	b, m  int
	xs    []float64 // sorted x sample
	scale float64   // real objects per sample point
	c     Cost
}

func newSim(st Stats, set Settings) *sim {
	s := &sim{set: set, b: set.B, m: set.M, xs: st.SampleX}
	if len(s.xs) > 0 {
		s.scale = float64(st.N) / float64(len(s.xs))
	}
	return s
}

func (s *sim) blocks(records float64, recSize int) int64 {
	if records <= 0 {
		return 0
	}
	return int64(math.Ceil(records * float64(recSize) / float64(s.b)))
}

func (s *sim) memBlocks() int { return s.m / s.b }

func (s *sim) fanIn() int {
	f := s.memBlocks() - 1
	if f < 2 {
		f = 2
	}
	return f
}

func (s *sim) capacity() float64 { return float64(s.m / eventSize) }

func (s *sim) divisionFanout() int {
	m := s.set.Fanout
	if m <= 1 {
		m = s.memBlocks() - 2
		if m < 2 {
			m = 2
		}
		if m < 4 && s.set.Fanout == 0 {
			m = 4
		}
	}
	return m
}

// runBytes splits a record population into sorted-run byte sizes
// exactly as the RunBuilder spills them (full runs of M/recSize records,
// one trailing partial).
func (s *sim) runBytes(records float64, recSize int) []int64 {
	perRun := int64(s.m / recSize)
	if perRun < 1 {
		perRun = 1
	}
	r := int64(math.Round(records))
	if r <= 0 {
		return nil
	}
	var runs []int64
	for full := r / perRun; full > 0; full-- {
		runs = append(runs, perRun*int64(recSize))
	}
	if rem := r % perRun; rem > 0 {
		runs = append(runs, rem*int64(recSize))
	}
	return runs
}

// reduce replays Merger.Reduce: whole merge levels, groups of fanIn,
// until at most fanIn runs remain. Every level reads and rewrites
// everything, with per-file block rounding.
func (s *sim) reduce(runs []int64) []int64 {
	fanIn := s.fanIn()
	for len(runs) > fanIn {
		var next []int64
		for g := 0; g < len(runs); g += fanIn {
			hi := min(g+fanIn, len(runs))
			var tot int64
			for _, b := range runs[g:hi] {
				s.c.Reads += ceilDiv(b, int64(s.b))
				tot += b
			}
			s.c.Writes += ceilDiv(tot, int64(s.b))
			next = append(next, tot)
		}
		runs = next
	}
	return runs
}

// sortFused models the fused sort half: spill runs (writes only — the
// producer feeds records directly), reduce, then `passes` MergeInto
// replays over the surviving runs (events once; edges twice, for
// boundary selection then distribution).
func (s *sim) sortFused(records float64, recSize, passes int) {
	runs := s.runBytes(records, recSize)
	for _, b := range runs {
		s.c.Writes += ceilDiv(b, int64(s.b))
	}
	runs = s.reduce(runs)
	for p := 0; p < passes; p++ {
		for _, b := range runs {
			s.c.Reads += ceilDiv(b, int64(s.b))
		}
	}
}

// sortFile models the unfused SortP over a materialized input file of
// inBlocks: read the input, spill runs, reduce, and — unless a single
// run survives, which then is the sorted file — one final merge that
// writes the sorted output.
func (s *sim) sortFile(records float64, recSize int, inBlocks int64) {
	s.c.Reads += inBlocks
	runs := s.runBytes(records, recSize)
	for _, b := range runs {
		s.c.Writes += ceilDiv(b, int64(s.b))
	}
	runs = s.reduce(runs)
	if len(runs) <= 1 {
		return
	}
	var tot int64
	for _, b := range runs {
		s.c.Reads += ceilDiv(b, int64(s.b))
		tot += b
	}
	s.c.Writes += ceilDiv(tot, int64(s.b))
}

// sharded models the full query: the shard planner's scan, the
// partition pass with halo-duplicated routing, then one complete solve
// per shard on its private disk — or the plain unsharded solve when
// k ≤ 0. Mirrors shard.SolveObjects.
func (s *sim) sharded(st Stats, k int, unfused bool) {
	if k <= 0 || len(s.xs) == 0 {
		s.solve(s.xs, float64(st.N), st.Blocks, unfused)
		return
	}
	if k >= 2 {
		s.c.Reads += st.Blocks // planBounds scan
	}
	s.c.Reads += st.Blocks // partition scan
	bounds := s.shardBounds(k)
	half := s.set.W / 2
	shardPts := make([][]float64, len(bounds)+1)
	for _, x := range s.xs {
		lo := sort.SearchFloat64s(bounds, x-half)
		hi := sort.Search(len(bounds), func(j int) bool { return bounds[j] > x+half })
		for i := lo; i <= hi; i++ {
			shardPts[i] = append(shardPts[i], x)
		}
	}
	for _, pts := range shardPts {
		n := float64(len(pts)) * s.scale
		d := s.blocks(n, objSize)
		s.c.Writes += d // partition output
		s.solve(pts, n, d, unfused)
	}
}

// shardBounds mirrors shard.planBounds' quantile selection over the
// sorted sample: up to k−1 strictly increasing boundaries, each
// strictly above the minimum x.
func (s *sim) shardBounds(k int) []float64 {
	if k < 2 || len(s.xs) == 0 {
		return nil
	}
	var bounds []float64
	for i := 1; i < k; i++ {
		q := s.xs[i*len(s.xs)/k]
		if q > s.xs[0] && (len(bounds) == 0 || q > bounds[len(bounds)-1]) {
			bounds = append(bounds, q)
		}
	}
	return bounds
}

// solve models one core.Solver.SolveObjectsScoped call over nReal
// objects whose sample is pts, on an object file of objBlocks.
func (s *sim) solve(pts []float64, nReal float64, objBlocks int64, unfused bool) {
	s.c.Reads += objBlocks // the producer's object scan
	e := 2 * nReal
	if e <= 0 {
		return
	}
	if !unfused && e <= s.capacity() {
		// Fused resident base case: sort in memory, write the tuple
		// file, read it back for the result scan. No event or edge
		// file ever touches disk.
		t := s.blocks(e, tupleSize)
		s.c.Writes += t
		s.c.Reads += t
		return
	}
	spans := make([]span, len(pts))
	w := e / float64(len(pts))
	for i, x := range pts {
		spans[i] = span{x1: x - s.set.W/2, x2: x + s.set.W/2, w: w}
	}
	if unfused {
		ev := s.blocks(e, eventSize)
		ed := s.blocks(2*e, edgeSize)
		s.c.Writes += ev + ed // buildInput materializes both files
		s.sortFile(e, eventSize, ev)
		s.sortFile(2*e, edgeSize, ed)
		if e <= s.capacity() {
			s.c.Reads += ev // base case reads the sorted events only
			t := s.blocks(e, tupleSize)
			s.c.Writes += t
			s.c.Reads += t
			return
		}
		t := s.node(spans, e, math.Inf(-1), math.Inf(1), ev, ed, false, false, 0)
		s.c.Reads += t
		return
	}
	s.sortFused(e, eventSize, 1)
	s.sortFused(2*e, edgeSize, 2)
	t := s.node(spans, e, math.Inf(-1), math.Inf(1), 0, 0, true, false, 0)
	s.c.Reads += t
}

// maxSimDepth caps the simulated recursion: past this the sample is too
// thin to resolve further division and the node is costed as a base
// case (the real recursion has its own no-progress tripwire).
const maxSimDepth = 32

// child models one recursion child whose population estimate carries
// sampling noise sigma (from the fragment spans — the anchored share is
// denoised against the quantile ranks). Near the base-case capacity the
// divide-or-not decision is genuinely uncertain, so the two branch
// costs are blended by the probability that the true count exceeds
// capacity; away from the boundary it falls through to the hard
// decision in node.
func (s *sim) child(spans []span, count, sigma float64, lo, hi float64, evB, edB int64, depth int) int64 {
	capacity := s.capacity()
	if sigma > 0 && math.Abs(count-capacity) < 4*sigma && depth < maxSimDepth {
		p := 0.5 * (1 + math.Erf((count-capacity)/(sigma*math.Sqrt2)))
		t := s.blocks(count, tupleSize)
		scratch := &sim{set: s.set, b: s.b, m: s.m, xs: s.xs, scale: s.scale}
		scratch.node(spans, count, lo, hi, evB, edB, false, true, depth)
		// Both branches write the same tuple file (one tuple per
		// distinct event y); only the work before it differs.
		s.c.Reads += int64(math.Round((1-p)*float64(evB) + p*float64(scratch.c.Reads)))
		s.c.Writes += int64(math.Round((1-p)*float64(t) + p*float64(scratch.c.Writes)))
		return t
	}
	return s.node(spans, count, lo, hi, evB, edB, false, false, depth)
}

// node replays one recursion node and returns its tuple-file block
// count. rootFused marks the fused root, whose inputs arrive from the
// sort's final merge (already counted) rather than materialized files;
// forceDivide skips the base-case check (the divide branch of child's
// probability blend).
func (s *sim) node(spans []span, count float64, lo, hi float64, evB, edB int64, rootFused, forceDivide bool, depth int) int64 {
	base := func() int64 {
		s.c.Reads += evB
		t := s.blocks(count, tupleSize)
		s.c.Writes += t
		return t
	}
	if !rootFused && !forceDivide && (count <= s.capacity() || depth >= maxSimDepth) {
		return base()
	}
	if forceDivide && depth >= maxSimDepth {
		return base()
	}
	bounds, ranks, total := s.pickBounds(spans, count, lo, hi)
	if len(bounds) == 0 {
		if rootFused {
			// Degenerate sample: charge the root as one materialized
			// division level to keep the estimate finite.
			evB = s.blocks(count, eventSize)
		}
		return base()
	}
	if !rootFused {
		s.c.Reads += edB // chooseBounds
		s.c.Reads += evB // route
		s.c.Reads += edB // splitEdges
	}
	nc := len(bounds) + 1
	children := make([][]span, nc)
	childCount := make([]float64, nc)
	anchored := make([]float64, nc) // wholly-inside population per child
	fragVar := make([]float64, nc)  // sampling variance of the fragment share
	var spanCount float64
	slabLo := func(i int) float64 {
		if i == 0 {
			return lo
		}
		return bounds[i-1]
	}
	slabHi := func(i int) float64 {
		if i == nc-1 {
			return hi
		}
		return bounds[i]
	}
	for _, sp := range spans {
		i := childOfPoint(bounds, sp.x1)
		j := childOfSup(bounds, sp.x2)
		leftSpan := sp.x1 == slabLo(i)
		rightSpan := sp.x2 == slabHi(j)
		if i == j {
			if leftSpan && rightSpan {
				spanCount += sp.w
			} else {
				children[i] = append(children[i], span{x1: sp.x1, x2: sp.x2, w: sp.w})
				childCount[i] += sp.w
				anchored[i] += sp.w
			}
			continue
		}
		if !leftSpan {
			children[i] = append(children[i], span{x1: sp.x1, x2: slabHi(i), w: sp.w, frag: true})
			childCount[i] += sp.w
			fragVar[i] += sp.w * sp.w
		}
		if !rightSpan {
			children[j] = append(children[j], span{x1: slabLo(j), x2: sp.x2, w: sp.w, frag: true})
			childCount[j] += sp.w
			fragVar[j] += sp.w * sp.w
		}
		spanStart, spanEnd := i, j
		if !leftSpan {
			spanStart = i + 1
		}
		if !rightSpan {
			spanEnd = j - 1
		}
		if spanStart <= spanEnd {
			spanCount += sp.w
		}
	}
	// Denoise the anchored populations: the real boundsPicker splits the
	// edge-value multiset at exact quantile ranks, so each child's
	// anchored share is the deterministic rank span between its
	// boundaries — far more accurate than the reservoir sample's count,
	// which matters when children sit near the base-case capacity. The
	// fragment and spanning populations keep their sampled values (they
	// are the genuinely data-dependent part).
	var anchoredTotal float64
	for _, a := range anchored {
		anchoredTotal += a
	}
	if anchoredTotal > 0 && total > 0 {
		prev := int64(0)
		for i := range children {
			end := total
			if i < len(ranks) {
				end = ranks[i]
			}
			expect := anchoredTotal * float64(end-prev) / float64(total)
			prev = end
			if anchored[i] > 0 {
				factor := expect / anchored[i]
				for k := range children[i] {
					if !children[i][k].frag {
						children[i][k].w *= factor
					}
				}
				childCount[i] += expect - anchored[i]
			}
		}
	}
	spanB := s.blocks(spanCount, eventSize)
	s.c.Writes += spanB
	var childTuples int64
	for i := range children {
		cEvB := s.blocks(childCount[i], eventSize)
		cEdB := s.blocks(2*childCount[i], edgeSize)
		s.c.Writes += cEvB + cEdB
		if childCount[i] <= 0 {
			continue
		}
		childTuples += s.child(children[i], childCount[i], math.Sqrt(fragVar[i]), slabLo(i), slabHi(i), cEvB, cEdB, depth+1)
	}
	// mergeSweep: stream every child tuple file and the spanning file,
	// write one tuple per distinct event y — the node's event count.
	s.c.Reads += childTuples + spanB
	t := s.blocks(count, tupleSize)
	s.c.Writes += t
	return t
}

// pickBounds replays boundsPicker's quantile selection over the node's
// weighted edge-value multiset (each span contributes its two clipped
// x-values, one per edge pair). It returns the boundary values, the
// edge rank each one was picked at, and the total edge rank count —
// the ranks drive the anchored-population denoising in node.
func (s *sim) pickBounds(spans []span, count float64, lo, hi float64) (bounds []float64, ranks []int64, total int64) {
	type edge struct {
		v, w float64
	}
	edges := make([]edge, 0, 2*len(spans))
	for _, sp := range spans {
		edges = append(edges, edge{sp.x1, sp.w}, edge{sp.x2, sp.w})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].v < edges[j].v })
	m := s.divisionFanout()
	total = int64(math.Round(2 * count))
	step := total / int64(m)
	if step < 1 {
		step = 1
	}
	interior := func(v float64) bool { return v > lo && v < hi && !math.IsInf(v, 0) }
	var minInt, maxInt float64
	haveInt := false
	nextRank := step
	cum := 0.0
	for _, e := range edges {
		cum += e.w
		if interior(e.v) {
			if !haveInt {
				minInt, maxInt, haveInt = e.v, e.v, true
			} else {
				maxInt = e.v
			}
		}
		// The picker triggers at every integer multiple of step it
		// reaches, the final rank included (at the root's infinite
		// slab that adds a boundary at the maximum edge value, whose
		// rightmost child is then empty — the real recursion does
		// exactly this).
		for nextRank <= total && float64(nextRank) <= cum+1e-9 {
			if interior(e.v) && (len(bounds) == 0 || e.v > bounds[len(bounds)-1]) {
				bounds = append(bounds, e.v)
				ranks = append(ranks, nextRank)
			}
			nextRank += step
		}
	}
	if len(bounds) == 0 && haveInt {
		mid := minInt
		if minInt < maxInt {
			mid = minInt + (maxInt-minInt)/2
		}
		return []float64{mid}, []int64{total / 2}, total
	}
	return bounds, ranks, total
}

// childOfPoint mirrors core's: the number of bounds ≤ x.
func childOfPoint(bounds []float64, x float64) int {
	i := sort.SearchFloat64s(bounds, x)
	for i < len(bounds) && bounds[i] == x {
		i++
	}
	return i
}

// childOfSup mirrors core's: the number of bounds strictly below x.
func childOfSup(bounds []float64, x float64) int {
	return sort.SearchFloat64s(bounds, x)
}
