package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{1, 4}
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if iv.Len() != 3 {
		t.Fatalf("Len = %g, want 3", iv.Len())
	}
	if !iv.Contains(1) {
		t.Fatal("interval must contain its lower bound (closed)")
	}
	if iv.Contains(4) {
		t.Fatal("interval must exclude its upper bound (open)")
	}
	if !iv.Contains(3.999) {
		t.Fatal("interior point excluded")
	}
	if (Interval{2, 2}).Len() != 0 {
		t.Fatal("degenerate interval should have zero length")
	}
	if got := (Interval{5, 2}).Len(); got != 0 {
		t.Fatalf("inverted interval Len = %g, want 0", got)
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 15}
	got := a.Intersect(b)
	if got.Lo != 5 || got.Hi != 10 {
		t.Fatalf("Intersect = %+v, want [5,10)", got)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlapping intervals reported disjoint")
	}
	c := Interval{10, 20}
	if a.Overlaps(c) {
		t.Fatal("half-open touching intervals must not overlap")
	}
	if !a.Touches(c) || !c.Touches(a) {
		t.Fatal("adjacent intervals should touch")
	}
	u := a.Union(c)
	if u.Lo != 0 || u.Hi != 20 {
		t.Fatalf("Union = %+v, want [0,20)", u)
	}
	if got := (Interval{}).Union(b); got != b {
		t.Fatalf("union with empty = %+v, want %+v", got, b)
	}
	if got := b.Union(Interval{}); got != b {
		t.Fatalf("union with empty = %+v, want %+v", got, b)
	}
	if m := b.Mid(); m != 10 {
		t.Fatalf("Mid = %g, want 10", m)
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Point{10, 20}, 4, 6)
	if r.X.Lo != 8 || r.X.Hi != 12 || r.Y.Lo != 17 || r.Y.Hi != 23 {
		t.Fatalf("unexpected rect %v", r)
	}
	if c := r.Center(); c.X != 10 || c.Y != 20 {
		t.Fatalf("Center = %v", c)
	}
	if r.Area() != 24 {
		t.Fatalf("Area = %g, want 24", r.Area())
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := RectFromCenter(Point{0, 0}, 2, 2) // [-1,1) x [-1,1)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{-1, -1}, true}, // min corner included
		{Point{1, 0}, false},  // max x edge excluded
		{Point{0, 1}, false},  // max y edge excluded
		{Point{1, 1}, false},  // max corner excluded
		{Point{-1, 0.999}, true},
		{Point{-1.0001, 0}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %t, want %t", c.p, got, c.want)
		}
	}
}

func TestRectOverlapsAndIntersect(t *testing.T) {
	a := Rect{Interval{0, 10}, Interval{0, 10}}
	b := Rect{Interval{5, 15}, Interval{5, 15}}
	if !a.Overlaps(b) {
		t.Fatal("overlapping rects reported disjoint")
	}
	x := a.Intersect(b)
	if x.X.Lo != 5 || x.X.Hi != 10 || x.Y.Lo != 5 || x.Y.Hi != 10 {
		t.Fatalf("Intersect = %v", x)
	}
	c := Rect{Interval{10, 20}, Interval{0, 10}} // touching at x=10
	if a.Overlaps(c) {
		t.Fatal("edge-touching rects must not overlap under half-open semantics")
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("touching rects should have empty intersection")
	}
}

func TestCircle(t *testing.T) {
	c := Circle{C: Point{0, 0}, Diameter: 10}
	if !c.Contains(Point{4.9, 0}) {
		t.Fatal("interior point excluded")
	}
	if c.Contains(Point{5, 0}) {
		t.Fatal("boundary point must be excluded (§2)")
	}
	if c.Contains(Point{3.6, 3.6}) {
		t.Fatal("exterior point included")
	}
	mbr := c.MBR()
	if mbr.X.Lo != -5 || mbr.X.Hi != 5 || mbr.Y.Lo != -5 || mbr.Y.Hi != 5 {
		t.Fatalf("MBR = %v", mbr)
	}
}

func TestDist(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if d := p.Dist(q); d != 5 {
		t.Fatalf("Dist = %g, want 5", d)
	}
	if d2 := p.Dist2(q); d2 != 25 {
		t.Fatalf("Dist2 = %g, want 25", d2)
	}
	if got := p.Add(3, 4); got != q {
		t.Fatalf("Add = %v, want %v", got, q)
	}
}

func TestWeightIn(t *testing.T) {
	objs := []Object{
		{Point{0, 0}, 1},
		{Point{1, 1}, 2},
		{Point{5, 5}, 4},
		{Point{-1, -1}, 8}, // on min corner of the 4x4 rect at origin → included
		{Point{2, 0}, 16},  // on max x edge → excluded
	}
	got := WeightIn(objs, Point{0, 0}, 4, 4) // [-2,2) x [-2,2)
	if got != 1+2+8 {
		t.Fatalf("WeightIn = %g, want 11", got)
	}
	// radius 2 strict: (0,0), (1,1) and (-1,-1) are inside (dist √2 < 2);
	// (2,0) sits exactly on the boundary and is excluded.
	if w := WeightInCircle(objs, Point{0, 0}, 4); w != 1+2+8 {
		t.Fatalf("WeightInCircle = %g, want 11", w)
	}
}

// Property: Rect.Contains is consistent with interval containment on both
// axes, and Intersect/Overlaps agree.
func TestQuickRectConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randRect := func() Rect {
		x1, x2 := rng.Float64()*100, rng.Float64()*100
		y1, y2 := rng.Float64()*100, rng.Float64()*100
		return Rect{Interval{math.Min(x1, x2), math.Max(x1, x2)}, Interval{math.Min(y1, y2), math.Max(y1, y2)}}
	}
	for i := 0; i < 2000; i++ {
		a, b := randRect(), randRect()
		if a.Overlaps(b) != !a.Intersect(b).Empty() {
			t.Fatalf("Overlaps/Intersect disagree for %v and %v", a, b)
		}
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		inBoth := a.Contains(p) && b.Contains(p)
		if inBoth && !a.Intersect(b).Contains(p) {
			t.Fatalf("point %v in both rects but not in intersection", p)
		}
		if a.Intersect(b).Contains(p) && !inBoth {
			t.Fatalf("point %v in intersection but not in both rects", p)
		}
	}
}

// Property: the MBR of a circle contains every point the circle contains.
func TestQuickCircleMBR(t *testing.T) {
	prop := func(cx, cy, px, py int16, dRaw uint16) bool {
		d := float64(dRaw%1000) + 1
		c := Circle{C: Point{float64(cx), float64(cy)}, Diameter: d}
		// Probe near the circle so hits are common.
		p := Point{float64(cx) + float64(px%1200)/1000*d, float64(cy) + float64(py%1200)/1000*d}
		if c.Contains(p) && !c.MBR().Contains(p) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: RectFromCenter(c, w, h).Center() == c up to float rounding, and
// a point is in the rect iff both coordinate offsets are in [-w/2, w/2) etc.
func TestQuickRectFromCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		c := Point{rng.Float64()*1e6 - 5e5, rng.Float64()*1e6 - 5e5}
		w := rng.Float64()*1e3 + 1
		h := rng.Float64()*1e3 + 1
		r := RectFromCenter(c, w, h)
		got := r.Center()
		if math.Abs(got.X-c.X) > 1e-6 || math.Abs(got.Y-c.Y) > 1e-6 {
			t.Fatalf("Center drift: %v vs %v", got, c)
		}
		p := Point{c.X + (rng.Float64()-0.5)*2*w, c.Y + (rng.Float64()-0.5)*2*h}
		want := p.X >= c.X-w/2 && p.X < c.X+w/2 && p.Y >= c.Y-h/2 && p.Y < c.Y+h/2
		if r.Contains(p) != want {
			t.Fatalf("Contains mismatch at %v for rect %v", p, r)
		}
	}
}
