// Package geom provides the planar geometric primitives shared by every
// subsystem of the MaxRS reproduction: points, axis-aligned rectangles,
// one-dimensional intervals, and circles.
//
// # Conventions
//
// The data space follows the paper: coordinates are float64, rectangles are
// axis-aligned, and a query rectangle of size d1×d2 centered at p covers an
// object o iff o lies strictly inside the rectangle or on its min edges.
// Objects on the max edges are excluded ("objects on the boundary of the
// rectangle ... are excluded", §2); using half-open [min, max) semantics on
// both axes makes the transformed rectangle-intersection problem exactly
// equivalent and keeps sweep-line tie-breaking deterministic.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D data space.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance to q. It avoids the sqrt and
// is the preferred comparison form in hot paths.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Object is a weighted point, the element type of the input set O.
type Object struct {
	Point
	W float64
}

// Interval is a half-open interval [Lo, Hi) on one axis.
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the interval length (0 for empty intervals).
func (iv Interval) Len() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x < iv.Hi }

// Intersect returns the overlap of iv and other (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{math.Max(iv.Lo, other.Lo), math.Min(iv.Hi, other.Hi)}
}

// Overlaps reports whether the two half-open intervals share any point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

// Touches reports whether other begins exactly where iv ends or vice versa,
// so that their union is a single contiguous interval.
func (iv Interval) Touches(other Interval) bool {
	return iv.Hi == other.Lo || other.Hi == iv.Lo
}

// Union returns the smallest interval covering both.
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{math.Min(iv.Lo, other.Lo), math.Max(iv.Hi, other.Hi)}
}

// Mid returns the midpoint of the interval.
func (iv Interval) Mid() float64 { return iv.Lo + (iv.Hi-iv.Lo)/2 }

// Rect is an axis-aligned rectangle, half-open on the max edges:
// it covers points p with X.Lo ≤ p.X < X.Hi and Y.Lo ≤ p.Y < Y.Hi.
type Rect struct {
	X, Y Interval
}

// RectFromCenter returns the w×h rectangle centered at c.
func RectFromCenter(c Point, w, h float64) Rect {
	return Rect{
		X: Interval{c.X - w/2, c.X + w/2},
		Y: Interval{c.Y - h/2, c.Y + h/2},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g)x[%.6g,%.6g)", r.X.Lo, r.X.Hi, r.Y.Lo, r.Y.Hi)
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.X.Empty() || r.Y.Empty() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point { return Point{r.X.Mid(), r.Y.Mid()} }

// Contains reports whether p lies inside r under half-open semantics.
func (r Rect) Contains(p Point) bool { return r.X.Contains(p.X) && r.Y.Contains(p.Y) }

// Intersect returns the overlap of two rectangles (possibly empty).
func (r Rect) Intersect(other Rect) Rect {
	return Rect{r.X.Intersect(other.X), r.Y.Intersect(other.Y)}
}

// Overlaps reports whether the rectangles share interior points.
func (r Rect) Overlaps(other Rect) bool {
	return r.X.Overlaps(other.X) && r.Y.Overlaps(other.Y)
}

// Area returns the rectangle's area (0 if empty).
func (r Rect) Area() float64 { return r.X.Len() * r.Y.Len() }

// Circle is a disk of the given diameter centered at C. Following §2 it is
// open: points at exactly Diameter/2 from the center are excluded.
type Circle struct {
	C        Point
	Diameter float64
}

// Contains reports whether p lies strictly inside the circle.
func (c Circle) Contains(p Point) bool {
	r := c.Diameter / 2
	return c.C.Dist2(p) < r*r
}

// MBR returns the minimum bounding rectangle of the circle: the d×d square
// centered at c.C (§6.1).
func (c Circle) MBR() Rect {
	return RectFromCenter(c.C, c.Diameter, c.Diameter)
}

// WeightIn sums the weights of the objects covered by the rectangle centered
// at p of size w×h. It is the brute-force evaluator used by tests and by
// small examples; production paths use internal/grid for pruning.
func WeightIn(objs []Object, p Point, w, h float64) float64 {
	r := RectFromCenter(p, w, h)
	var sum float64
	for _, o := range objs {
		if r.Contains(o.Point) {
			sum += o.W
		}
	}
	return sum
}

// WeightInCircle sums the weights of the objects strictly inside the circle
// of the given diameter centered at p.
func WeightInCircle(objs []Object, p Point, diameter float64) float64 {
	c := Circle{C: p, Diameter: diameter}
	var sum float64
	for _, o := range objs {
		if c.Contains(o.Point) {
			sum += o.W
		}
	}
	return sum
}
