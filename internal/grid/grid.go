// Package grid provides a uniform in-memory grid index over weighted
// points. It serves the MaxCRS subsystem: neighbor enumeration within a
// fixed radius for the exact angular-sweep oracle, and fast evaluation of
// candidate centers for ApproxMaxCRS (Algorithm 3 line 7 is a single scan
// in the paper; the grid gives the same answers and is also handy for
// examples and tests).
package grid

import (
	"math"

	"maxrs/internal/geom"
)

// Grid is a uniform spatial hash of objects with square cells.
type Grid struct {
	cell    float64
	origin  geom.Point
	cells   map[[2]int32][]geom.Object
	objects int
}

// New builds a grid with the given cell size (> 0) over the objects.
func New(objs []geom.Object, cellSize float64) *Grid {
	if cellSize <= 0 || math.IsInf(cellSize, 0) || math.IsNaN(cellSize) {
		cellSize = 1
	}
	g := &Grid{cell: cellSize, cells: make(map[[2]int32][]geom.Object)}
	for _, o := range objs {
		k := g.key(o.Point)
		g.cells[k] = append(g.cells[k], o)
		g.objects++
	}
	return g
}

// Len returns the number of indexed objects.
func (g *Grid) Len() int { return g.objects }

// CellSize returns the grid resolution.
func (g *Grid) CellSize() float64 { return g.cell }

func (g *Grid) key(p geom.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

// VisitRect calls fn for every object inside the rectangle.
func (g *Grid) VisitRect(r geom.Rect, fn func(geom.Object)) {
	if r.Empty() {
		return
	}
	x0 := int32(math.Floor(r.X.Lo / g.cell))
	x1 := int32(math.Floor(r.X.Hi / g.cell))
	y0 := int32(math.Floor(r.Y.Lo / g.cell))
	y1 := int32(math.Floor(r.Y.Hi / g.cell))
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			for _, o := range g.cells[[2]int32{cx, cy}] {
				if r.Contains(o.Point) {
					fn(o)
				}
			}
		}
	}
}

// WeightInRect sums the weights of objects covered by the w×h rectangle
// centered at p.
func (g *Grid) WeightInRect(p geom.Point, w, h float64) float64 {
	var sum float64
	g.VisitRect(geom.RectFromCenter(p, w, h), func(o geom.Object) { sum += o.W })
	return sum
}

// VisitWithin calls fn for every object at distance strictly less than
// radius from p.
func (g *Grid) VisitWithin(p geom.Point, radius float64, fn func(geom.Object)) {
	if radius <= 0 {
		return
	}
	r2 := radius * radius
	g.VisitRect(geom.RectFromCenter(p, 2*radius+g.cell*1e-9, 2*radius+g.cell*1e-9), func(o geom.Object) {
		if p.Dist2(o.Point) < r2 {
			fn(o)
		}
	})
}

// WeightInCircle sums the weights of objects strictly inside the circle of
// the given diameter centered at p.
func (g *Grid) WeightInCircle(p geom.Point, diameter float64) float64 {
	var sum float64
	g.VisitWithin(p, diameter/2, func(o geom.Object) { sum += o.W })
	return sum
}
