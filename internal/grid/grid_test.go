package grid

import (
	"math"
	"math/rand"
	"testing"

	"maxrs/internal/geom"
)

func randObjs(rng *rand.Rand, n int, extent float64) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.Object{
			Point: geom.Point{X: rng.Float64()*extent - extent/2, Y: rng.Float64()*extent - extent/2},
			W:     float64(rng.Intn(5) + 1),
		}
	}
	return objs
}

func TestGridMatchesBruteForceRect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		objs := randObjs(rng, rng.Intn(200)+1, 100)
		g := New(objs, rng.Float64()*20+0.5)
		if g.Len() != len(objs) {
			t.Fatalf("Len = %d, want %d", g.Len(), len(objs))
		}
		for probe := 0; probe < 20; probe++ {
			p := geom.Point{X: rng.Float64()*120 - 60, Y: rng.Float64()*120 - 60}
			w := rng.Float64()*30 + 1
			h := rng.Float64()*30 + 1
			got := g.WeightInRect(p, w, h)
			want := geom.WeightIn(objs, p, w, h)
			if got != want {
				t.Fatalf("WeightInRect(%v,%g,%g) = %g, want %g", p, w, h, got, want)
			}
		}
	}
}

func TestGridMatchesBruteForceCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		objs := randObjs(rng, rng.Intn(200)+1, 100)
		g := New(objs, rng.Float64()*20+0.5)
		for probe := 0; probe < 20; probe++ {
			p := geom.Point{X: rng.Float64()*120 - 60, Y: rng.Float64()*120 - 60}
			d := rng.Float64()*40 + 1
			got := g.WeightInCircle(p, d)
			want := geom.WeightInCircle(objs, p, d)
			if got != want {
				t.Fatalf("WeightInCircle(%v,%g) = %g, want %g", p, d, got, want)
			}
		}
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	objs := []geom.Object{
		{Point: geom.Point{X: -10.5, Y: -20.5}, W: 1},
		{Point: geom.Point{X: -10.4, Y: -20.4}, W: 2},
	}
	g := New(objs, 3)
	if got := g.WeightInRect(geom.Point{X: -10.45, Y: -20.45}, 1, 1); got != 3 {
		t.Fatalf("weight = %g, want 3", got)
	}
}

func TestGridVisitWithinStrict(t *testing.T) {
	objs := []geom.Object{
		{Point: geom.Point{X: 5, Y: 0}, W: 1}, // exactly on radius-5 boundary
		{Point: geom.Point{X: 4.999, Y: 0}, W: 2},
	}
	g := New(objs, 2)
	var sum float64
	g.VisitWithin(geom.Point{}, 5, func(o geom.Object) { sum += o.W })
	if sum != 2 {
		t.Fatalf("sum = %g, want 2 (boundary excluded)", sum)
	}
}

func TestGridDegenerateCellSize(t *testing.T) {
	objs := []geom.Object{{Point: geom.Point{X: 1, Y: 1}, W: 1}}
	for _, cs := range []float64{0, -5, math.Inf(1), math.NaN()} {
		g := New(objs, cs)
		if got := g.WeightInRect(geom.Point{X: 1, Y: 1}, 2, 2); got != 1 {
			t.Fatalf("cellSize %g: weight = %g, want 1", cs, got)
		}
	}
}

func TestGridEmpty(t *testing.T) {
	g := New(nil, 10)
	if g.Len() != 0 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.WeightInRect(geom.Point{}, 100, 100); got != 0 {
		t.Fatalf("weight = %g", got)
	}
	g.VisitRect(geom.Rect{}, func(geom.Object) { t.Fatal("empty rect visited") })
}
