// Package sweep implements the optimal in-memory plane-sweep algorithm for
// the rectangle-intersection (max location-weight) problem of Imai–Asano
// [11] and Nandy–Bhattacharya [14], as reviewed in §4 of the paper. It is
// used three ways:
//
//   - as the base case of ExactMaxRS, producing the slab file of an
//     in-memory sub-problem (§5.2.4, Algorithm 2 line 9);
//   - as the reference exact MaxRS solver for tests and small inputs;
//   - as the sweep engine the external baselines emulate.
//
// The sweep moves a horizontal line bottom-to-top over the rectangles'
// horizontal edges. A segment tree over the elementary x-intervals between
// consecutive vertical edges maintains the location-weight of every cell;
// at each distinct event y it reports a maximal x-interval of maximum
// weight, which becomes one slab-file tuple (Definition 6).
package sweep

import (
	"math"
	"sort"

	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

// Slab computes the slab file for the given rectangles within the slab
// whose x-range is slabX: one tuple per distinct horizontal-edge y, in
// ascending y order. Rectangle x-ranges are clipped to the slab;
// rectangles that do not intersect the slab are ignored. The tuple at y
// describes the strip from y up to the next event (Definition 6): its
// interval is a maximal run of cells attaining the strip's maximum
// location-weight, and its Sum is that maximum.
func Slab(rects []rec.WRect, slabX geom.Interval) []rec.Tuple {
	if slabX.Empty() {
		return nil
	}
	// Collect clipped rectangles and their vertical edges.
	type clipped struct {
		x1, x2, y1, y2, w float64
	}
	cs := make([]clipped, 0, len(rects))
	xs := make([]float64, 0, 2*len(rects)+2)
	xs = append(xs, slabX.Lo, slabX.Hi)
	for _, r := range rects {
		x1 := math.Max(r.X1, slabX.Lo)
		x2 := math.Min(r.X2, slabX.Hi)
		if x1 >= x2 || r.Y1 >= r.Y2 {
			continue
		}
		cs = append(cs, clipped{x1, x2, r.Y1, r.Y2, r.W})
		xs = append(xs, x1, x2)
	}
	if len(cs) == 0 {
		return nil
	}
	xs = dedupSorted(xs)
	cellOf := func(x float64) int { return sort.SearchFloat64s(xs, x) }
	nCells := len(xs) - 1

	// Events: tops (removals) before bottoms (additions) at equal y, so a
	// rectangle half-open in y never coexists with one starting at its top.
	type event struct {
		y   float64
		top bool
		c   clipped
	}
	evs := make([]event, 0, 2*len(cs))
	for _, c := range cs {
		evs = append(evs, event{c.y1, false, c}, event{c.y2, true, c})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].y != evs[j].y {
			return evs[i].y < evs[j].y
		}
		return evs[i].top && !evs[j].top
	})

	tree := newSegTree(nCells)
	tuples := make([]rec.Tuple, 0, 2*len(cs))
	for i := 0; i < len(evs); {
		y := evs[i].y
		for ; i < len(evs) && evs[i].y == y; i++ {
			e := evs[i]
			d := e.c.w
			if e.top {
				d = -d
			}
			tree.Update(cellOf(e.c.x1), cellOf(e.c.x2), d)
		}
		l, r := tree.MaxRun()
		tuples = append(tuples, rec.Tuple{Y: y, X1: xs[l], X2: xs[r], Sum: tree.Max()})
	}
	return tuples
}

func dedupSorted(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Result is a solved MaxRS instance: Region is a rectangle of optimal
// center locations (any point of it is an optimal answer), and Sum is the
// total covered weight at those locations.
type Result struct {
	Region geom.Rect
	Sum    float64
}

// Best reports an optimal center location.
func (r Result) Best() geom.Point { return r.Region.Center() }

// BestRegion scans a slab file (tuples in ascending y) and returns the
// max-region: the strip of the tuple with the largest sum, extended to the
// next tuple's y. This converts the transformed problem's answer back to
// the original MaxRS answer (§5.1).
func BestRegion(tuples []rec.Tuple) Result {
	best := Result{Region: geom.Rect{
		X: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
		Y: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
	}}
	for i, t := range tuples {
		if i == 0 || t.Sum > best.Sum {
			yHi := math.Inf(1)
			if i+1 < len(tuples) {
				yHi = tuples[i+1].Y
			}
			best = Result{
				Region: geom.Rect{
					X: geom.Interval{Lo: t.X1, Hi: t.X2},
					Y: geom.Interval{Lo: t.Y, Hi: yHi},
				},
				Sum: t.Sum,
			}
		}
	}
	return best
}

// MaxRS solves the MaxRS problem exactly in memory: it transforms each
// object into its centered w×h rectangle (§5.1), sweeps, and returns the
// max-region and its weight. Intended for datasets that fit in memory and
// as the correctness oracle for the external algorithm.
func MaxRS(objs []geom.Object, w, h float64) Result {
	rects := make([]rec.WRect, 0, len(objs))
	for _, o := range objs {
		rects = append(rects, rec.FromObject(rec.FromGeom(o), w, h))
	}
	return MaxRSRects(rects)
}

// MaxRSRects solves the transformed problem directly on weighted rectangles.
func MaxRSRects(rects []rec.WRect) Result {
	full := geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
	return BestRegion(Slab(rects, full))
}
