package sweep

import "math"

// segTree is a segment tree over n cells (contiguous half-open x-ranges)
// supporting range-add of weights and O(log n) extraction of a maximal run
// of cells attaining the global maximum. It is the sweep-line status
// structure of the in-memory algorithm (Imai–Asano [11]): the cells are the
// elementary x-intervals between consecutive rectangle edges, and each
// active rectangle contributes its weight to the cells its x-range covers.
//
// Lazy adds are kept per node; node aggregates (min/max) include the node's
// own pending add, so queries accumulate ancestor adds on the way down and
// never need to materialize them.
type segTree struct {
	n    int
	minv []float64
	maxv []float64
	add  []float64
}

func newSegTree(n int) *segTree {
	if n < 1 {
		n = 1
	}
	return &segTree{
		n:    n,
		minv: make([]float64, 4*n),
		maxv: make([]float64, 4*n),
		add:  make([]float64, 4*n),
	}
}

// Update adds delta to every cell in [l, r). Out-of-range bounds are clamped.
func (t *segTree) Update(l, r int, delta float64) {
	if l < 0 {
		l = 0
	}
	if r > t.n {
		r = t.n
	}
	if l >= r {
		return
	}
	t.update(1, 0, t.n, l, r, delta)
}

func (t *segTree) update(node, lo, hi, l, r int, delta float64) {
	if l <= lo && hi <= r {
		t.add[node] += delta
		t.minv[node] += delta
		t.maxv[node] += delta
		return
	}
	mid := (lo + hi) / 2
	if l < mid {
		t.update(2*node, lo, mid, l, r, delta)
	}
	if r > mid {
		t.update(2*node+1, mid, hi, l, r, delta)
	}
	t.minv[node] = math.Min(t.minv[2*node], t.minv[2*node+1]) + t.add[node]
	t.maxv[node] = math.Max(t.maxv[2*node], t.maxv[2*node+1]) + t.add[node]
}

// Max returns the maximum cell value.
func (t *segTree) Max() float64 { return t.maxv[1] }

// MaxRun returns a maximal run [l, r) of cells whose value equals Max():
// the leftmost cell attaining the maximum, extended right as far as the
// value stays at the maximum. Cost O(log n).
func (t *segTree) MaxRun() (l, r int) {
	m := t.maxv[1]
	l = t.leftmostAt(1, 0, t.n, 0, m)
	r = t.nextBelow(1, 0, t.n, l+1, 0, m)
	return l, r
}

// leftmostAt returns the index of the leftmost leaf whose value equals v.
// Caller guarantees such a leaf exists (v is the subtree max).
func (t *segTree) leftmostAt(node, lo, hi int, acc, v float64) int {
	if hi-lo == 1 {
		return lo
	}
	acc += t.add[node]
	mid := (lo + hi) / 2
	if t.maxv[2*node]+acc == v {
		return t.leftmostAt(2*node, lo, mid, acc, v)
	}
	return t.leftmostAt(2*node+1, mid, hi, acc, v)
}

// nextBelow returns the index of the first leaf ≥ from whose value is < v,
// or n if every leaf from `from` on has value ≥ v.
func (t *segTree) nextBelow(node, lo, hi, from int, acc, v float64) int {
	if hi <= from || t.minv[node]+acc >= v {
		return t.n
	}
	if hi-lo == 1 {
		return lo // minv < v and this is a single leaf ≥ from
	}
	acc += t.add[node]
	mid := (lo + hi) / 2
	if got := t.nextBelow(2*node, lo, mid, from, acc, v); got < t.n {
		return got
	}
	return t.nextBelow(2*node+1, mid, hi, from, acc, v)
}

// CellValue returns the value of one cell (test/debug helper, O(log n)).
func (t *segTree) CellValue(i int) float64 {
	node, lo, hi := 1, 0, t.n
	var acc float64
	for hi-lo > 1 {
		acc += t.add[node]
		mid := (lo + hi) / 2
		if i < mid {
			node, hi = 2*node, mid
		} else {
			node, lo = 2*node+1, mid
		}
	}
	return t.maxv[node] + acc
}
