package sweep

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

func TestSegTreeBasics(t *testing.T) {
	tr := newSegTree(8)
	if tr.Max() != 0 {
		t.Fatalf("empty tree max = %g", tr.Max())
	}
	tr.Update(2, 6, 1) // cells 2..5 = 1
	if tr.Max() != 1 {
		t.Fatalf("max = %g, want 1", tr.Max())
	}
	l, r := tr.MaxRun()
	if l != 2 || r != 6 {
		t.Fatalf("run = [%d,%d), want [2,6)", l, r)
	}
	tr.Update(4, 8, 2) // cells 4,5 = 3; 6,7 = 2
	if tr.Max() != 3 {
		t.Fatalf("max = %g, want 3", tr.Max())
	}
	l, r = tr.MaxRun()
	if l != 4 || r != 6 {
		t.Fatalf("run = [%d,%d), want [4,6)", l, r)
	}
	tr.Update(4, 6, -3) // back to: 2,3=1; 4,5=0; 6,7=2
	l, r = tr.MaxRun()
	if tr.Max() != 2 || l != 6 || r != 8 {
		t.Fatalf("max=%g run=[%d,%d), want 2 [6,8)", tr.Max(), l, r)
	}
}

func TestSegTreeCellValue(t *testing.T) {
	tr := newSegTree(10)
	tr.Update(0, 10, 5)
	tr.Update(3, 7, 2)
	tr.Update(5, 6, -1)
	want := []float64{5, 5, 5, 7, 7, 6, 7, 5, 5, 5}
	for i, w := range want {
		if got := tr.CellValue(i); got != w {
			t.Fatalf("cell %d = %g, want %g", i, got, w)
		}
	}
}

// Reference implementation: a plain array.
func TestSegTreeAgainstArray(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60) + 1
		tr := newSegTree(n)
		ref := make([]float64, n)
		for op := 0; op < 200; op++ {
			l := rng.Intn(n)
			r := l + rng.Intn(n-l) + 1
			d := float64(rng.Intn(11) - 5)
			tr.Update(l, r, d)
			for i := l; i < r; i++ {
				ref[i] += d
			}
			// Check max.
			max := ref[0]
			for _, v := range ref[1:] {
				if v > max {
					max = v
				}
			}
			if tr.Max() != max {
				t.Fatalf("n=%d op=%d: max=%g, want %g", n, op, tr.Max(), max)
			}
			// Check the reported run is a maximal run at max.
			lo, hi := tr.MaxRun()
			if lo < 0 || hi > n || lo >= hi {
				t.Fatalf("invalid run [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				if ref[i] != max {
					t.Fatalf("cell %d in run = %g, want max %g", i, ref[i], max)
				}
			}
			if lo > 0 && ref[lo-1] == max {
				// must be the *leftmost* run start
				for i := lo - 1; i >= 0; i-- {
					if ref[i] != max {
						t.Fatalf("run start %d not leftmost (cell %d also max)", lo, i)
					}
				}
			}
			if hi < n && ref[hi] == max {
				t.Fatalf("run [%d,%d) not maximal: cell %d also at max", lo, hi, hi)
			}
		}
	}
}

func fullSlab() geom.Interval {
	return geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

func TestSlabPaperExample(t *testing.T) {
	// Figure 2/6 style: four unit-weight rectangles; verify tuple invariants
	// rather than exact paper coordinates (the figure gives no numbers).
	rects := []rec.WRect{
		{X1: 0, X2: 4, Y1: 0, Y2: 4, W: 1},
		{X1: 2, X2: 6, Y1: 2, Y2: 6, W: 1},
		{X1: 3, X2: 7, Y1: 1, Y2: 5, W: 1},
		{X1: 9, X2: 12, Y1: 0, Y2: 3, W: 1},
	}
	tuples := Slab(rects, fullSlab())
	// Tuples sorted by distinct y, one per event line.
	ys := map[float64]bool{}
	for _, r := range rects {
		ys[r.Y1] = true
		ys[r.Y2] = true
	}
	if len(tuples) != len(ys) {
		t.Fatalf("got %d tuples, want %d (one per distinct h-line)", len(tuples), len(ys))
	}
	if !sort.SliceIsSorted(tuples, func(i, j int) bool { return tuples[i].Y < tuples[j].Y }) {
		t.Fatal("tuples not sorted by y")
	}
	res := BestRegion(tuples)
	if res.Sum != 3 {
		t.Fatalf("best sum = %g, want 3", res.Sum)
	}
	// The triple overlap is [3,4) x [2,4); the h-line at y=3 (top of the
	// fourth rectangle) may split it into two strips, so only require the
	// returned strip to lie inside the true max-region.
	if res.Region.X.Lo != 3 || res.Region.X.Hi != 4 || res.Region.Y.Lo < 2 || res.Region.Y.Hi > 4 {
		t.Fatalf("best region = %v, want within [3,4)x[2,4)", res.Region)
	}
	// Last tuple: everything closed, sum 0 across the whole slab.
	last := tuples[len(tuples)-1]
	if last.Sum != 0 {
		t.Fatalf("final tuple sum = %g, want 0", last.Sum)
	}
	if !math.IsInf(last.X1, -1) || !math.IsInf(last.X2, 1) {
		t.Fatalf("final tuple interval = [%g,%g], want (-inf,+inf)", last.X1, last.X2)
	}
}

func TestSlabClipsToSlab(t *testing.T) {
	rects := []rec.WRect{
		{X1: 0, X2: 10, Y1: 0, Y2: 1, W: 1}, // spans the slab [2,4)
		{X1: 3, X2: 8, Y1: 0, Y2: 2, W: 1},
		{X1: 20, X2: 30, Y1: 0, Y2: 5, W: 1}, // outside entirely
	}
	tuples := Slab(rects, geom.Interval{Lo: 2, Hi: 4})
	for _, tp := range tuples {
		if tp.X1 < 2 || tp.X2 > 4 {
			t.Fatalf("tuple interval [%g,%g] escapes slab [2,4)", tp.X1, tp.X2)
		}
	}
	res := BestRegion(tuples)
	if res.Sum != 2 {
		t.Fatalf("best sum = %g, want 2 (both rects overlap [3,4))", res.Sum)
	}
	if res.Region.X.Lo != 3 || res.Region.X.Hi != 4 {
		t.Fatalf("region = %v, want x=[3,4)", res.Region)
	}
}

func TestSlabEmptyInputs(t *testing.T) {
	if got := Slab(nil, fullSlab()); got != nil {
		t.Fatalf("Slab(nil) = %v, want nil", got)
	}
	if got := Slab([]rec.WRect{{X1: 1, X2: 2, Y1: 3, Y2: 4, W: 1}}, geom.Interval{Lo: 5, Hi: 5}); got != nil {
		t.Fatalf("empty slab should yield nil, got %v", got)
	}
	// Degenerate rectangle (zero width) is skipped.
	if got := Slab([]rec.WRect{{X1: 1, X2: 1, Y1: 0, Y2: 4, W: 1}}, fullSlab()); got != nil {
		t.Fatalf("degenerate rect should be skipped, got %v", got)
	}
}

func TestHalfOpenStacking(t *testing.T) {
	// Two rectangles sharing the edge y=2: under half-open semantics the
	// top of the lower one must be processed before the bottom of the upper
	// one, so their weights never stack at y=2.
	rects := []rec.WRect{
		{X1: 0, X2: 2, Y1: 0, Y2: 2, W: 5},
		{X1: 0, X2: 2, Y1: 2, Y2: 4, W: 7},
	}
	res := BestRegion(Slab(rects, fullSlab()))
	if res.Sum != 7 {
		t.Fatalf("best sum = %g, want 7 (no stacking at shared edge)", res.Sum)
	}
}

// bruteMax computes the maximum location-weight over the plane by evaluating
// every elementary cell corner. O(n³) — oracle for randomized tests.
func bruteMax(rects []rec.WRect) float64 {
	if len(rects) == 0 {
		return 0
	}
	var xs, ys []float64
	for _, r := range rects {
		xs = append(xs, r.X1, r.X2)
		ys = append(ys, r.Y1, r.Y2)
	}
	best := 0.0
	for _, x := range xs {
		for _, y := range ys {
			var s float64
			for _, r := range rects {
				if x >= r.X1 && x < r.X2 && y >= r.Y1 && y < r.Y2 {
					s += r.W
				}
			}
			if s > best {
				best = s
			}
		}
	}
	return best
}

func randRects(rng *rand.Rand, n int, coord, size float64) []rec.WRect {
	rects := make([]rec.WRect, n)
	for i := range rects {
		x := math.Floor(rng.Float64() * coord)
		y := math.Floor(rng.Float64() * coord)
		w := math.Floor(rng.Float64()*size) + 1
		h := math.Floor(rng.Float64()*size) + 1
		rects[i] = rec.WRect{X1: x, X2: x + w, Y1: y, Y2: y + h, W: float64(rng.Intn(5) + 1)}
	}
	return rects
}

func TestSlabAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(25) + 1
		rects := randRects(rng, n, 20, 6)
		got := BestRegion(Slab(rects, fullSlab()))
		want := bruteMax(rects)
		if got.Sum != want {
			t.Fatalf("trial %d: sweep sum = %g, brute force = %g\nrects: %+v", trial, got.Sum, want, rects)
		}
		// The returned region must actually attain the sum.
		p := got.Region.Center()
		var s float64
		for _, r := range rects {
			if p.X >= r.X1 && p.X < r.X2 && p.Y >= r.Y1 && p.Y < r.Y2 {
				s += r.W
			}
		}
		if s != got.Sum {
			t.Fatalf("trial %d: region center %v attains %g, claimed %g", trial, p, s, got.Sum)
		}
	}
}

func TestMaxRSSmall(t *testing.T) {
	// 8 unit-weight objects clustered so a 4x4 rectangle can cover 5 of them.
	objs := []geom.Object{
		{Point: geom.Point{X: 1, Y: 1}, W: 1},
		{Point: geom.Point{X: 2, Y: 2}, W: 1},
		{Point: geom.Point{X: 3, Y: 1}, W: 1},
		{Point: geom.Point{X: 2, Y: 3}, W: 1},
		{Point: geom.Point{X: 4, Y: 3}, W: 1},
		{Point: geom.Point{X: 10, Y: 10}, W: 1},
		{Point: geom.Point{X: 11, Y: 10}, W: 1},
		{Point: geom.Point{X: 30, Y: 30}, W: 1},
	}
	res := MaxRS(objs, 4, 4)
	if res.Sum != 5 {
		t.Fatalf("sum = %g, want 5", res.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 4, 4); got != 5 {
		t.Fatalf("returned point covers %g, want 5", got)
	}
}

func TestMaxRSWeighted(t *testing.T) {
	objs := []geom.Object{
		{Point: geom.Point{X: 0, Y: 0}, W: 10},
		{Point: geom.Point{X: 1, Y: 0}, W: 1},
		{Point: geom.Point{X: 5, Y: 5}, W: 5},
		{Point: geom.Point{X: 5.5, Y: 5.5}, W: 5},
	}
	// 2x2 range: either {10,1}=11 or {5,5}=10 → 11.
	res := MaxRS(objs, 2, 2)
	if res.Sum != 11 {
		t.Fatalf("sum = %g, want 11", res.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 2, 2); got != 11 {
		t.Fatalf("point covers %g, want 11", got)
	}
}

// Property: the MaxRS answer equals a brute-force scan over candidate
// centers derived from object-coordinate offsets.
func TestMaxRSAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		n := rng.Intn(20) + 1
		objs := make([]geom.Object, n)
		for i := range objs {
			objs[i] = geom.Object{
				Point: geom.Point{
					X: math.Floor(rng.Float64() * 30),
					Y: math.Floor(rng.Float64() * 30),
				},
				W: float64(rng.Intn(4) + 1),
			}
		}
		w := math.Floor(rng.Float64()*8) + 2
		h := math.Floor(rng.Float64()*8) + 2
		res := MaxRS(objs, w, h)

		// Brute force: optimal centers occur with the rectangle's min corner
		// at cell corners of the transformed arrangement; equivalently probe
		// centers at (ox + w/2, oy + h/2) minus small offsets — every cell
		// lower-left corner is (ox - w/2 .. ) from some transformed rect
		// edge. Use transformed-rect corners directly.
		var best float64
		var xs, ys []float64
		for _, o := range objs {
			xs = append(xs, o.X-w/2, o.X+w/2)
			ys = append(ys, o.Y-h/2, o.Y+h/2)
		}
		for _, x := range xs {
			for _, y := range ys {
				if s := geom.WeightIn(objs, geom.Point{X: x, Y: y}, w, h); s > best {
					best = s
				}
			}
		}
		if res.Sum != best {
			t.Fatalf("trial %d: MaxRS = %g, brute force = %g", trial, res.Sum, best)
		}
		if got := geom.WeightIn(objs, res.Best(), w, h); got != res.Sum {
			t.Fatalf("trial %d: point covers %g, claimed %g", trial, got, res.Sum)
		}
	}
}

func TestBestRegionEmpty(t *testing.T) {
	res := BestRegion(nil)
	if res.Sum != 0 {
		t.Fatalf("empty BestRegion sum = %g", res.Sum)
	}
	if !math.IsInf(res.Region.X.Lo, -1) || !math.IsInf(res.Region.Y.Hi, 1) {
		t.Fatalf("empty BestRegion should be the whole plane, got %v", res.Region)
	}
}
