package crs

import (
	"math"
	"math/rand"
	"testing"

	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

func writeObjs(t *testing.T, env em.Env, objs []geom.Object) *em.File {
	t.Helper()
	recs := make([]rec.Object, len(objs))
	for i, o := range objs {
		recs[i] = rec.FromGeom(o)
	}
	f, err := em.WriteAll(env.Disk, rec.ObjectCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func solver(t *testing.T, env em.Env) *core.Solver {
	t.Helper()
	s, err := core.NewSolver(env, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSigmaInLegalRange(t *testing.T) {
	for _, d := range []float64{0.5, 1, 10, 1000, 1e6} {
		s := Sigma(d)
		lo := (math.Sqrt2 - 1) * d / 2
		hi := d / 2
		if !(s > lo && s < hi) {
			t.Fatalf("d=%g: σ=%g outside (%g, %g)", d, s, lo, hi)
		}
	}
}

// Lemma 5: the four shifted circles jointly cover the MBR of the circle
// at p0. Verified by dense sampling.
func TestShiftedCirclesCoverMBR(t *testing.T) {
	const d = 10.0
	p0 := geom.Point{X: 3, Y: -7}
	shifted := ShiftedPoints(p0, d)
	mbr := geom.Circle{C: p0, Diameter: d}.MBR()
	for i := 0; i <= 100; i++ {
		for j := 0; j <= 100; j++ {
			p := geom.Point{
				X: mbr.X.Lo + (mbr.X.Hi-mbr.X.Lo)*float64(i)/100,
				Y: mbr.Y.Lo + (mbr.Y.Hi-mbr.Y.Lo)*float64(j)/100,
			}
			if !mbr.Contains(p) {
				continue
			}
			covered := false
			for _, c := range shifted {
				if (geom.Circle{C: c, Diameter: d}).Contains(p) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("point %v in MBR not covered by any shifted circle", p)
			}
		}
	}
}

func TestCircleIntersections(t *testing.T) {
	a := geom.Point{X: 0, Y: 0}
	b := geom.Point{X: 2, Y: 0}
	p1, p2, ok := circleIntersections(a, b, math.Sqrt2)
	if !ok {
		t.Fatal("circles should intersect")
	}
	for _, p := range []geom.Point{p1, p2} {
		if math.Abs(p.X-1) > 1e-12 || math.Abs(math.Abs(p.Y)-1) > 1e-12 {
			t.Fatalf("intersection %v, want (1, ±1)", p)
		}
	}
	if _, _, ok := circleIntersections(a, geom.Point{X: 10, Y: 0}, 1); ok {
		t.Fatal("distant circles must not intersect")
	}
	if _, _, ok := circleIntersections(a, a, 1); ok {
		t.Fatal("coincident centers must not intersect")
	}
}

func TestExactSimpleCluster(t *testing.T) {
	// Three points pairwise within d=4 of a common center.
	objs := []geom.Object{
		{Point: geom.Point{X: 0, Y: 0}, W: 1},
		{Point: geom.Point{X: 1, Y: 0}, W: 1},
		{Point: geom.Point{X: 0, Y: 1}, W: 1},
		{Point: geom.Point{X: 100, Y: 100}, W: 1},
	}
	res := Exact(objs, 4)
	if res.Weight != 3 {
		t.Fatalf("weight = %g, want 3", res.Weight)
	}
	if got := geom.WeightInCircle(objs, res.Center, 4); got != 3 {
		t.Fatalf("center covers %g, claimed 3", got)
	}
}

func TestExactSingleAndEmpty(t *testing.T) {
	if res := Exact(nil, 5); res.Weight != 0 {
		t.Fatalf("empty: %g", res.Weight)
	}
	objs := []geom.Object{{Point: geom.Point{X: 2, Y: 3}, W: 7}}
	res := Exact(objs, 5)
	if res.Weight != 7 {
		t.Fatalf("single: weight %g, want 7", res.Weight)
	}
	if res := Exact(objs, 0); res.Weight != 0 {
		t.Fatalf("zero diameter: %g", res.Weight)
	}
}

func TestExactTwoFarPoints(t *testing.T) {
	// Two points farther than d apart: best is one of them.
	objs := []geom.Object{
		{Point: geom.Point{X: 0, Y: 0}, W: 2},
		{Point: geom.Point{X: 50, Y: 0}, W: 3},
	}
	res := Exact(objs, 10)
	if res.Weight != 3 {
		t.Fatalf("weight = %g, want 3", res.Weight)
	}
}

func TestExactLensPlacement(t *testing.T) {
	// Two points at distance 1.8 with d=2: circles of radius 1 around each
	// intersect; a point in the lens covers both.
	objs := []geom.Object{
		{Point: geom.Point{X: 0, Y: 0}, W: 1},
		{Point: geom.Point{X: 1.8, Y: 0}, W: 1},
	}
	res := Exact(objs, 2)
	if res.Weight != 2 {
		t.Fatalf("weight = %g, want 2", res.Weight)
	}
	if got := geom.WeightInCircle(objs, res.Center, 2); got != 2 {
		t.Fatalf("center covers %g", got)
	}
}

// Exact must dominate dense sampling (it is a maximum) and be attained by
// its own reported center.
func TestExactAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(40) + 2
		objs := make([]geom.Object, n)
		for i := range objs {
			objs[i] = geom.Object{
				Point: geom.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30},
				W:     float64(rng.Intn(4) + 1),
			}
		}
		d := rng.Float64()*8 + 2
		res := Exact(objs, d)
		if got := geom.WeightInCircle(objs, res.Center, d); got != res.Weight {
			t.Fatalf("trial %d: center attains %g, claimed %g", trial, got, res.Weight)
		}
		// Dense sampling lower bound.
		var sampled float64
		for i := 0; i < 60; i++ {
			for j := 0; j < 60; j++ {
				p := geom.Point{X: float64(i) / 2, Y: float64(j) / 2}
				if w := geom.WeightInCircle(objs, p, d); w > sampled {
					sampled = w
				}
			}
		}
		if res.Weight < sampled {
			t.Fatalf("trial %d: exact %g < sampled %g (d=%g)", trial, res.Weight, sampled, d)
		}
	}
}

func TestApproxBasic(t *testing.T) {
	env := em.MustNewEnv(256, 4096)
	objs := []geom.Object{
		{Point: geom.Point{X: 10, Y: 10}, W: 1},
		{Point: geom.Point{X: 11, Y: 10}, W: 1},
		{Point: geom.Point{X: 10, Y: 11}, W: 1},
		{Point: geom.Point{X: 60, Y: 60}, W: 1},
	}
	f := writeObjs(t, env, objs)
	res, err := Approx(solver(t, env), f, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight < 3 {
		t.Fatalf("approx weight = %g, want 3 (cluster coverable by d=6)", res.Weight)
	}
	if got := geom.WeightInCircle(objs, res.Center, 6); got != res.Weight {
		t.Fatalf("center covers %g, claimed %g", got, res.Weight)
	}
}

func TestApproxValidation(t *testing.T) {
	env := em.MustNewEnv(256, 4096)
	f := writeObjs(t, env, nil)
	if _, err := Approx(solver(t, env), f, -1); err == nil {
		t.Fatal("negative diameter must fail")
	}
	res, err := Approx(solver(t, env), f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 0 {
		t.Fatalf("empty input weight = %g", res.Weight)
	}
}

// Theorem 3: Approx ≥ Exact/4, always. Also Approx ≤ Exact (it is a
// feasible solution).
func TestApproxBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		env := em.MustNewEnv(128, 1024) // force recursion in the MaxRS step
		n := rng.Intn(150) + 5
		objs := make([]geom.Object, n)
		for i := range objs {
			objs[i] = geom.Object{
				Point: geom.Point{
					X: math.Floor(rng.Float64() * 200),
					Y: math.Floor(rng.Float64() * 200),
				},
				W: float64(rng.Intn(3) + 1),
			}
		}
		d := math.Floor(rng.Float64()*30) + 4
		f := writeObjs(t, env, objs)
		approx, err := Approx(solver(t, env), f, d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exact := Exact(objs, d)
		if approx.Weight > exact.Weight {
			t.Fatalf("trial %d (d=%g): approx %g exceeds exact %g",
				trial, d, approx.Weight, exact.Weight)
		}
		if 4*approx.Weight < exact.Weight {
			t.Fatalf("trial %d (d=%g): approx %g violates 1/4 bound of exact %g",
				trial, d, approx.Weight, exact.Weight)
		}
	}
}

// The paper's Theorem 4 worst case: a cross of circles where the MaxRS
// max-region centers on an empty spot. ApproxMaxCRS must still achieve ≥
// 1/4 — here exactly 1 of 4.
func TestApproxWorstCaseShape(t *testing.T) {
	env := em.MustNewEnv(256, 8192)
	// Four unit-weight objects arranged so their d×d MBRs share a common
	// intersection centered between them but their circles do not.
	const d = 10.0
	objs := []geom.Object{
		{Point: geom.Point{X: -4.9, Y: -4.9}, W: 1},
		{Point: geom.Point{X: 4.9, Y: -4.9}, W: 1},
		{Point: geom.Point{X: -4.9, Y: 4.9}, W: 1},
		{Point: geom.Point{X: 4.9, Y: 4.9}, W: 1},
	}
	f := writeObjs(t, env, objs)
	approx, err := Approx(solver(t, env), f, d)
	if err != nil {
		t.Fatal(err)
	}
	exact := Exact(objs, d)
	if 4*approx.Weight < exact.Weight {
		t.Fatalf("1/4 bound violated: approx %g, exact %g", approx.Weight, exact.Weight)
	}
	if approx.Weight < 1 {
		t.Fatalf("approx weight %g, want ≥ 1", approx.Weight)
	}
}

// Property: Exact is invariant under translation and uniform scaling, and
// monotone in the diameter (for non-negative weights).
func TestExactInvariances(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(30) + 2
		objs := make([]geom.Object, n)
		for i := range objs {
			objs[i] = geom.Object{
				Point: geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40},
				W:     float64(rng.Intn(5) + 1),
			}
		}
		d := rng.Float64()*10 + 2
		base := Exact(objs, d)

		// Translation.
		dx, dy := rng.Float64()*100-50, rng.Float64()*100-50
		moved := make([]geom.Object, n)
		for i, o := range objs {
			moved[i] = geom.Object{Point: o.Point.Add(dx, dy), W: o.W}
		}
		if got := Exact(moved, d); got.Weight != base.Weight {
			t.Fatalf("trial %d: translation changed weight %g → %g", trial, base.Weight, got.Weight)
		}

		// Uniform scaling by 2.
		scaled := make([]geom.Object, n)
		for i, o := range objs {
			scaled[i] = geom.Object{Point: geom.Point{X: 2 * o.X, Y: 2 * o.Y}, W: o.W}
		}
		if got := Exact(scaled, 2*d); got.Weight != base.Weight {
			t.Fatalf("trial %d: scaling changed weight %g → %g", trial, base.Weight, got.Weight)
		}

		// Monotone in d.
		if got := Exact(objs, d*1.5); got.Weight < base.Weight {
			t.Fatalf("trial %d: larger diameter decreased weight %g → %g", trial, base.Weight, got.Weight)
		}
	}
}

// Property: Exact is bounded by the total weight, reaches it when the
// diameter dwarfs the point spread, and never falls below the heaviest
// single object.
func TestExactBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(25) + 1
		var total, heaviest float64
		objs := make([]geom.Object, n)
		for i := range objs {
			w := float64(rng.Intn(9) + 1)
			objs[i] = geom.Object{
				Point: geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20},
				W:     w,
			}
			total += w
			if w > heaviest {
				heaviest = w
			}
		}
		d := rng.Float64()*15 + 1
		res := Exact(objs, d)
		if res.Weight > total {
			t.Fatalf("trial %d: weight %g exceeds total %g", trial, res.Weight, total)
		}
		if res.Weight < heaviest {
			t.Fatalf("trial %d: weight %g below heaviest object %g", trial, res.Weight, heaviest)
		}
		if big := Exact(objs, 1000); big.Weight != total {
			t.Fatalf("trial %d: huge diameter covers %g, want all %g", trial, big.Weight, total)
		}
	}
}

func TestGridCRSResolutionGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(30) + 2
		objs := make([]geom.Object, n)
		for i := range objs {
			objs[i] = geom.Object{
				Point: geom.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30},
				W:     float64(rng.Intn(4) + 1),
			}
		}
		d := rng.Float64()*8 + 3
		delta := d / 20
		got := GridCRS(objs, d, delta)
		// Feasibility: the reported center attains the reported weight.
		if w := geom.WeightInCircle(objs, got.Center, d); w != got.Weight {
			t.Fatalf("trial %d: center attains %g, claimed %g", trial, w, got.Weight)
		}
		// Never above the true optimum.
		exact := Exact(objs, d)
		if got.Weight > exact.Weight {
			t.Fatalf("trial %d: grid %g exceeds exact %g", trial, got.Weight, exact.Weight)
		}
		// Resolution bound: at least the optimum of the shrunken circle.
		shrunk := Exact(objs, d-delta*math.Sqrt2)
		if got.Weight < shrunk.Weight {
			t.Fatalf("trial %d: grid %g below shrunken-circle optimum %g (d=%g δ=%g)",
				trial, got.Weight, shrunk.Weight, d, delta)
		}
	}
}

func TestGridCRSDegenerate(t *testing.T) {
	if res := GridCRS(nil, 5, 1); res.Weight != 0 {
		t.Fatalf("empty: %g", res.Weight)
	}
	objs := []geom.Object{{Point: geom.Point{X: 3, Y: 3}, W: 2}}
	if res := GridCRS(objs, 0, 1); res.Weight != 0 {
		t.Fatalf("zero diameter: %g", res.Weight)
	}
	if res := GridCRS(objs, 5, 0); res.Weight != 0 {
		t.Fatalf("zero delta: %g", res.Weight)
	}
	res := GridCRS(objs, 5, 0.5)
	if res.Weight != 2 {
		t.Fatalf("single object: weight %g, want 2", res.Weight)
	}
}

func TestGridCRSFinerGridNotWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	objs := make([]geom.Object, 25)
	for i := range objs {
		objs[i] = geom.Object{
			Point: geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20},
			W:     1,
		}
	}
	const d = 6.0
	coarse := GridCRS(objs, d, d/4)
	fine := GridCRS(objs, d, d/32)
	if fine.Weight < coarse.Weight {
		t.Fatalf("finer grid got worse: %g < %g", fine.Weight, coarse.Weight)
	}
}
