// Package crs implements the MaxCRS subsystem (§6): the ApproxMaxCRS
// (1/4)-approximation algorithm built on ExactMaxRS, and an exact
// in-memory oracle used to measure approximation quality (Fig. 17 — the
// paper uses Drezner's O(n² log n) method for the same purpose).
package crs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/grid"
	"maxrs/internal/rec"
)

// Result is a MaxCRS answer: a circle center and the total weight of the
// objects it covers.
type Result struct {
	Center geom.Point
	Weight float64
}

// Sigma returns the shifting distance σ used for the four shifted
// candidate points. Any σ with (√2−1)d/2 < σ < d/2 preserves the
// approximation bound (§6.1); we use the midpoint of the legal range,
// σ = √2·d/4, which puts the shifted points at (±d/4, ±d/4) from p0.
func Sigma(d float64) float64 { return math.Sqrt2 * d / 4 }

// ShiftedPoints returns the four candidates p1..p4 of Algorithm 3
// (GetShiftedPoint): diagonal offsets at distance σ from p0, so that the
// circles centered on them jointly cover the MBR of the circle at p0
// (Lemma 5).
func ShiftedPoints(p0 geom.Point, d float64) [4]geom.Point {
	off := Sigma(d) / math.Sqrt2 // per-axis component = d/4
	return [4]geom.Point{
		p0.Add(off, off),
		p0.Add(off, -off),
		p0.Add(-off, -off),
		p0.Add(-off, off),
	}
}

// Approx is ApproxMaxCRS (Algorithm 3): it solves MaxRS over the d×d MBRs
// of the transformed circles with the external-memory ExactMaxRS, then
// returns the best of the max-region center p0 and its four shifted
// points, evaluated with a single scan of the object file. The answer is
// guaranteed to be ≥ 1/4 of the optimal MaxCRS weight (Theorem 3).
func Approx(s *core.Solver, objFile *em.File, d float64) (Result, error) {
	return ApproxScoped(context.Background(), s, objFile, d, nil)
}

// ApproxScoped is Approx with every block transfer of the call charged to
// sc (per-query I/O accounting; nil disables scoping) and both the inner
// ExactMaxRS solve and the candidate scan bound to ctx: a cancelled
// context stops the call within one block-transfer's work and returns
// ctx.Err(). A nil ctx never cancels.
func ApproxScoped(ctx context.Context, s *core.Solver, objFile *em.File, d float64, sc *em.ScopeStats) (Result, error) {
	if d <= 0 {
		return Result{}, fmt.Errorf("crs: diameter %g must be positive", d)
	}
	if objFile.Size() == 0 {
		return Result{}, nil
	}
	// The MBR of the circle of diameter d centered at an object is exactly
	// the transformed d×d rectangle, so SolveObjects(d, d) is the MaxRS
	// call of Algorithm 3 line 2.
	rs, err := s.SolveObjectsScoped(ctx, objFile, d, d, sc)
	if err != nil {
		return Result{}, err
	}
	p0 := rs.Best()
	if math.IsNaN(p0.X) || math.IsInf(p0.X, 0) || math.IsNaN(p0.Y) || math.IsInf(p0.Y, 0) {
		// Degenerate (e.g. all-zero weights): any location is optimal.
		p0 = geom.Point{}
	}
	shifted := ShiftedPoints(p0, d)
	candidates := [5]geom.Point{p0, shifted[0], shifted[1], shifted[2], shifted[3]}

	// Algorithm 3 line 7: one scan of the objects, five accumulators.
	weights, err := scanCandidates(s.Env().WithScope(sc).WithContext(ctx), objFile, candidates[:], d)
	if err != nil {
		return Result{}, err
	}
	best := Result{Center: candidates[0], Weight: weights[0]}
	for i := 1; i < len(candidates); i++ {
		if weights[i] > best.Weight {
			best = Result{Center: candidates[i], Weight: weights[i]}
		}
	}
	return best, nil
}

// scanCandidates streams the object file once and returns, for each
// candidate center, the total weight of objects strictly inside the
// diameter-d circle around it.
func scanCandidates(env em.Env, objFile *em.File, candidates []geom.Point, d float64) ([]float64, error) {
	rr, err := em.OpenRecordReader(env, objFile, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(candidates))
	r2 := (d / 2) * (d / 2)
	for {
		o, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		p := geom.Point{X: o.X, Y: o.Y}
		for i, c := range candidates {
			if c.Dist2(p) < r2 {
				weights[i] += o.W
			}
		}
	}
	return weights, nil
}

// Exact computes the optimal MaxCRS answer in memory. It is the oracle of
// the quality experiment (Fig. 17), replacing the paper's Drezner [8]
// O(n² log n) procedure with a grid-pruned candidate enumeration:
//
//   - the optimal cell of the circle arrangement either has a vertex — an
//     intersection point of two transformed circles, approached from
//     inside their lens (for non-negative weights the deepest cell at a
//     vertex lies inside both circles) — or is bounded by a single
//     circle, in which case points just inside/outside that boundary and
//     the circle centers cover it;
//   - every candidate is nudged off degenerate boundaries and evaluated
//     with the exact open-circle predicate.
//
// Runtime is O(n·k²) for k average neighbors within distance d — fast for
// the paper's densities. Weights must be non-negative.
func Exact(objs []geom.Object, d float64) Result {
	if len(objs) == 0 || d <= 0 {
		return Result{}
	}
	r := d / 2
	g := grid.New(objs, d)
	// The nudge must be far smaller than any arrangement feature but large
	// enough to survive float cancellation at coordinates ~1e6.
	eps := r * 1e-9

	best := Result{Center: objs[0].Point, Weight: -1}
	consider := func(p geom.Point) {
		if w := g.WeightInCircle(p, d); w > best.Weight {
			best = Result{Center: p, Weight: w}
		}
	}

	for _, o := range objs {
		// Circle centers and points just inside/outside each boundary
		// (handles isolated circles and annulus-shaped cells).
		consider(o.Point)
		for _, dir := range [4][2]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			consider(o.Point.Add(dir[0]*(r-eps), dir[1]*(r-eps)))
			consider(o.Point.Add(dir[0]*(r+eps), dir[1]*(r+eps)))
		}
		// Vertices: intersections with every neighboring circle. Visit
		// each unordered pair once via a coordinate tiebreak.
		oi := o
		g.VisitWithin(o.Point, d, func(oj geom.Object) {
			if oj.Point == oi.Point {
				return
			}
			if oj.X < oi.X || (oj.X == oi.X && oj.Y <= oi.Y) {
				return
			}
			p1, p2, ok := circleIntersections(oi.Point, oj.Point, r)
			if !ok {
				return
			}
			mid := geom.Point{X: (oi.X + oj.X) / 2, Y: (oi.Y + oj.Y) / 2}
			consider(nudgeToward(p1, mid, eps))
			consider(nudgeToward(p2, mid, eps))
		})
	}
	if best.Weight < 0 {
		best.Weight = 0
	}
	return best
}

// circleIntersections returns the two intersection points of equal-radius
// circles centered at a and b, or ok=false if they do not intersect.
func circleIntersections(a, b geom.Point, r float64) (geom.Point, geom.Point, bool) {
	d2 := a.Dist2(b)
	if d2 == 0 || d2 >= 4*r*r {
		return geom.Point{}, geom.Point{}, false
	}
	d := math.Sqrt(d2)
	// Midpoint plus/minus the half-chord along the perpendicular.
	h := math.Sqrt(r*r - d2/4)
	mx, my := (a.X+b.X)/2, (a.Y+b.Y)/2
	ux, uy := (b.X-a.X)/d, (b.Y-a.Y)/d // unit a→b
	px, py := -uy, ux                  // unit perpendicular
	p1 := geom.Point{X: mx + h*px, Y: my + h*py}
	p2 := geom.Point{X: mx - h*px, Y: my - h*py}
	return p1, p2, true
}

// nudgeToward moves p a distance eps toward q (the lens interior).
func nudgeToward(p, q geom.Point, eps float64) geom.Point {
	dx, dy := q.X-p.X, q.Y-p.Y
	n := math.Hypot(dx, dy)
	if n == 0 {
		return p
	}
	return geom.Point{X: p.X + dx/n*eps, Y: p.Y + dy/n*eps}
}

// GridCRS is a resolution-bounded MaxCRS approximation in the spirit of
// the grid-based (1−ε) schemes discussed in §3 (de Berg et al. [7]): it
// evaluates every candidate center on a δ-spaced grid restricted to the
// disks of radius d/2 around objects, in memory, and returns the best.
//
// Guarantee: the returned weight is at least the optimal weight for a
// circle of diameter d − δ√2 — the optimum center moved to its nearest
// grid point (distance ≤ δ/√2 away) still covers every object that the
// smaller circle covers. Smaller δ sharpens the answer at O(1/δ²) extra
// candidates per object; the paper's point is precisely that such schemes
// trade unbounded work for accuracy, unlike ApproxMaxCRS's fixed five
// candidates. Used for comparison benches; weights must be non-negative.
func GridCRS(objs []geom.Object, d, delta float64) Result {
	if len(objs) == 0 || d <= 0 || delta <= 0 {
		return Result{}
	}
	g := grid.New(objs, d)
	r := d / 2
	steps := int(math.Ceil(r / delta))
	seen := make(map[[2]int64]struct{})
	best := Result{Center: objs[0].Point, Weight: -1}
	for _, o := range objs {
		baseI := int64(math.Round(o.X / delta))
		baseJ := int64(math.Round(o.Y / delta))
		for di := -int64(steps); di <= int64(steps); di++ {
			for dj := -int64(steps); dj <= int64(steps); dj++ {
				key := [2]int64{baseI + di, baseJ + dj}
				if _, ok := seen[key]; ok {
					continue
				}
				seen[key] = struct{}{}
				p := geom.Point{X: float64(key[0]) * delta, Y: float64(key[1]) * delta}
				if o.Point.Dist2(p) > (r+delta)*(r+delta) {
					continue
				}
				if w := g.WeightInCircle(p, d); w > best.Weight {
					best = Result{Center: p, Weight: w}
				}
			}
		}
	}
	if best.Weight < 0 {
		best.Weight = 0
	}
	return best
}
