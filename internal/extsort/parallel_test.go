package extsort

import (
	"math/rand"
	"testing"

	"maxrs/internal/em"
)

// TestSortPMatchesSort checks the PEM contract (DESIGN.md §6): for every
// parallelism value SortP must produce a byte-identical output file and
// count exactly the same transfers as the sequential sort — run boundaries
// and the merge tree do not depend on the worker count.
func TestSortPMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := make([]int64, 20_000)
	for i := range vals {
		vals[i] = rng.Int63n(1000) // many duplicates: stability matters
	}

	var (
		want      []int64
		wantTotal uint64
	)
	for _, p := range []int{1, 2, 4, 8} {
		env := em.MustNewEnv(128, 1024) // 128 records per run, fan-in 7
		in, err := em.WriteAll[int64](env.Disk, int64Codec{}, vals)
		if err != nil {
			t.Fatal(err)
		}
		env.Disk.ResetStats()
		out, err := SortP(env, in, int64Codec{}, lessInt64, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		got, err := em.ReadAll[int64](out, int64Codec{})
		if err != nil {
			t.Fatal(err)
		}
		total := env.Disk.Stats().Total()
		if p == 1 {
			want, wantTotal = got, total
			if !sorted(want) {
				t.Fatal("sequential output not sorted")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d records, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p=%d: record %d = %d, want %d", p, i, got[i], want[i])
			}
		}
		if total != wantTotal {
			t.Fatalf("p=%d: %d transfers, want %d", p, total, wantTotal)
		}
	}
}

func sorted(vs []int64) bool {
	for i := 1; i < len(vs); i++ {
		if vs[i-1] > vs[i] {
			return false
		}
	}
	return true
}

// TestSortPAuto checks that the GOMAXPROCS default works end to end.
func TestSortPAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	env := em.MustNewEnv(128, 1024)
	in, err := em.WriteAll[int64](env.Disk, int64Codec{}, vals)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SortP(env, in, int64Codec{}, lessInt64, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.ReadAll[int64](out, int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) || !sorted(got) {
		t.Fatalf("auto-parallel sort: %d records, sorted=%v", len(got), sorted(got))
	}
}
