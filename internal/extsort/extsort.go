// Package extsort implements the textbook external merge sort in the EM
// model: run formation fills the M-byte memory with records, sorts them, and
// spills sorted runs; then repeated (M/B − 1)-way merges reduce the runs to
// one. Total cost O((N/B) log_{M/B}(N/B)) block transfers — the same bound
// as, and a prerequisite of, ExactMaxRS (§5, Theorem 2).
package extsort

import (
	"container/heap"
	"fmt"
	"io"
	"sort"

	"maxrs/internal/em"
)

// Sort sorts the records of in according to less and returns a new sorted
// file. The input file is not modified and not released. The memory budget
// env.M bounds both the run-formation buffer and the merge fan-in.
func Sort[T any](env em.Env, in *em.File, codec em.Codec[T], less func(a, b T) bool) (*em.File, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	runs, err := formRuns(env, in, codec, less)
	if err != nil {
		return nil, err
	}
	return mergeRuns(env, runs, codec, less, true)
}

// formRuns produces sorted runs of ≤ M bytes each.
func formRuns[T any](env em.Env, in *em.File, codec em.Codec[T], less func(a, b T) bool) ([]*em.File, error) {
	rr, err := em.NewRecordReader(in, codec)
	if err != nil {
		return nil, err
	}
	perRun := env.M / codec.Size()
	if perRun < 1 {
		return nil, fmt.Errorf("extsort: memory %dB cannot hold one %dB record", env.M, codec.Size())
	}
	var runs []*em.File
	buf := make([]T, 0, perRun)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
		f, err := em.WriteAll(env.Disk, codec, buf)
		if err != nil {
			return err
		}
		runs = append(runs, f)
		buf = buf[:0]
		return nil
	}
	for {
		v, err := rr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		buf = append(buf, v)
		if len(buf) == perRun {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(runs) == 0 { // empty input → empty sorted file
		runs = append(runs, em.NewFile(env.Disk))
	}
	return runs, nil
}

// mergeRuns repeatedly merges groups of up to fanIn runs until one remains.
// If releaseInputs is true, merged-away runs are released.
func mergeRuns[T any](env em.Env, runs []*em.File, codec em.Codec[T], less func(a, b T) bool, releaseInputs bool) (*em.File, error) {
	fanIn := env.MemBlocks() - 1 // one block reserved for the output buffer
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		var next []*em.File
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			merged, err := mergeOnce(env, runs[lo:hi], codec, less)
			if err != nil {
				return nil, err
			}
			if releaseInputs {
				for _, r := range runs[lo:hi] {
					if err := r.Release(); err != nil {
						return nil, err
					}
				}
			}
			next = append(next, merged)
		}
		runs = next
		releaseInputs = true // intermediate levels are always ours to free
	}
	return runs[0], nil
}

// mergeOnce k-way merges the given sorted runs into a fresh file.
func mergeOnce[T any](env em.Env, runs []*em.File, codec em.Codec[T], less func(a, b T) bool) (*em.File, error) {
	out := em.NewFile(env.Disk)
	w, err := em.NewRecordWriter(out, codec)
	if err != nil {
		return nil, err
	}
	h := &mergeHeap[T]{less: less}
	for i, r := range runs {
		rr, err := em.NewRecordReader(r, codec)
		if err != nil {
			return nil, err
		}
		v, err := rr.Read()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return nil, err
		}
		h.items = append(h.items, mergeItem[T]{v: v, src: rr, idx: i})
	}
	heap.Init(h)
	for h.Len() > 0 {
		top := h.items[0]
		if err := w.Write(top.v); err != nil {
			return nil, err
		}
		v, err := top.src.Read()
		if err == io.EOF {
			heap.Pop(h)
			continue
		}
		if err != nil {
			return nil, err
		}
		h.items[0].v = v
		heap.Fix(h, 0)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

type mergeItem[T any] struct {
	v   T
	src *em.RecordReader[T]
	idx int // run index, tiebreak for stability
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	less  func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int { return len(h.items) }

func (h *mergeHeap[T]) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.less(a.v, b.v) {
		return true
	}
	if h.less(b.v, a.v) {
		return false
	}
	return a.idx < b.idx // stable across runs
}

func (h *mergeHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *mergeHeap[T]) Push(x any) { h.items = append(h.items, x.(mergeItem[T])) }

func (h *mergeHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
