// Package extsort implements the textbook external merge sort in the EM
// model: run formation fills the M-byte memory with records, sorts them, and
// spills sorted runs; then repeated (M/B − 1)-way merges reduce the runs to
// one. Total cost O((N/B) log_{M/B}(N/B)) block transfers — the same bound
// as, and a prerequisite of, ExactMaxRS (§5, Theorem 2).
//
// SortP additionally exploits CPU parallelism in the PEM style (DESIGN.md
// §6): run buffers are sorted and spilled by worker goroutines pipelined
// behind the single reader, and independent merge groups of one level run
// concurrently. Run boundaries and the merge tree are byte-identical to the
// sequential schedule, so the counted transfer total never depends on the
// worker count.
//
// The two halves of the sort are also exposed separately for pass fusion
// (DESIGN.md §8): a RunBuilder accepts records from a producer and spills
// sorted runs directly — no unsorted input file is ever written or re-read
// — and a Merger reduces runs to one final merge level and replays that
// final merge into a caller sink via MergeInto, so the sorted output need
// never be materialized either. SortP itself is RunBuilder + Merger with a
// file reader on one end and a file writer on the other; the run boundaries
// and the merge tree are identical however the halves are driven.
package extsort

import (
	"container/heap"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"maxrs/internal/conc"
	"maxrs/internal/em"
)

// Sort sorts the records of in according to less and returns a new sorted
// file. The input file is not modified and not released. The memory budget
// env.M bounds both the run-formation buffer and the merge fan-in.
func Sort[T any](env em.Env, in *em.File, codec em.Codec[T], less func(a, b T) bool) (*em.File, error) {
	return SortP(env, in, codec, less, 1)
}

// SortP is Sort with up to parallelism worker goroutines (≤ 0 selects
// GOMAXPROCS). The output file and the block-transfer counts are identical
// for every parallelism value; only wall-clock time changes.
func SortP[T any](env em.Env, in *em.File, codec em.Codec[T], less func(a, b T) bool, parallelism int) (*em.File, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	runs, err := formRuns(env, in, codec, less, parallelism)
	if err != nil {
		return nil, err
	}
	return mergeRuns(env, runs, codec, less, true, parallelism)
}

// fanInOf returns the merge fan-in: all memory blocks minus one reserved
// for the output buffer, floored at 2 so the merge always makes progress.
func fanInOf(env em.Env) int {
	fanIn := env.MemBlocks() - 1
	if fanIn < 2 {
		fanIn = 2
	}
	return fanIn
}

// sortAndSpill sorts one run buffer and writes it out as a run file. The
// cancellation check runs before the in-memory sort — the one long
// CPU-only stretch of run formation — and the spill writes themselves
// abort at block granularity through the env-carried context.
func sortAndSpill[T any](env em.Env, codec em.Codec[T], less func(a, b T) bool, buf []T) (*em.File, error) {
	if err := env.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
	return em.WriteAllEnv(env, codec, buf)
}

// spiller owns the sort-and-spill worker pool shared by formRuns and
// RunBuilder: full run buffers are handed to dispatch in input order, and
// run i lands in slot i of the result regardless of which worker spilled
// it — the PEM invariant that keeps run boundaries worker-count-free.
type spiller[T any] struct {
	env     em.Env
	codec   em.Codec[T]
	less    func(a, b T) bool
	workers int

	jobs    chan spillJob[T]
	started bool
	wg      sync.WaitGroup

	mu       sync.Mutex
	runs     []*em.File
	firstErr error
}

type spillJob[T any] struct {
	idx int
	buf []T
}

func newSpiller[T any](env em.Env, codec em.Codec[T], less func(a, b T) bool, parallelism int) *spiller[T] {
	return &spiller[T]{env: env, codec: codec, less: less, workers: parallelism}
}

func (sp *spiller[T]) place(idx int, f *em.File, err error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if err != nil {
		if sp.firstErr == nil {
			sp.firstErr = err
		}
		return
	}
	for len(sp.runs) <= idx {
		sp.runs = append(sp.runs, nil)
	}
	sp.runs[idx] = f
}

// dispatch hands one full run buffer over for sorting and spilling. With a
// single worker it runs inline and reports the error directly; otherwise
// the error surfaces at finish. Workers are started lazily so builders
// that never spill cost no goroutines. An unbuffered channel with p
// workers bounds in-flight run buffers to p+1 (p sorting/spilling + 1
// filling): the PEM budget of DESIGN.md §6.
func (sp *spiller[T]) dispatch(idx int, buf []T) error {
	if sp.workers <= 1 {
		f, err := sortAndSpill(sp.env, sp.codec, sp.less, buf)
		sp.place(idx, f, err)
		return err
	}
	if !sp.started {
		sp.started = true
		sp.jobs = make(chan spillJob[T])
		for w := 0; w < sp.workers; w++ {
			sp.wg.Add(1)
			go func() {
				defer sp.wg.Done()
				for j := range sp.jobs {
					f, err := sortAndSpill(sp.env, sp.codec, sp.less, j.buf)
					sp.place(j.idx, f, err)
				}
			}()
		}
	}
	sp.jobs <- spillJob[T]{idx: idx, buf: buf}
	sp.mu.Lock()
	err := sp.firstErr
	sp.mu.Unlock()
	return err
}

// finish drains the workers and returns the spilled runs in input order,
// releasing everything on error.
func (sp *spiller[T]) finish() ([]*em.File, error) {
	if sp.started {
		close(sp.jobs)
		sp.wg.Wait()
		sp.started = false
		sp.jobs = nil
	}
	if sp.firstErr != nil {
		sp.releaseAll()
		return nil, sp.firstErr
	}
	return sp.runs, nil
}

func (sp *spiller[T]) releaseAll() {
	for _, r := range sp.runs {
		if r != nil {
			_ = r.Release()
		}
	}
	sp.runs = nil
}

// RunBuilder accepts records one at a time and spills them as sorted runs
// of ≤ M bytes each — the input half of the external sort, exposed so
// producers (core.buildInput) can stream records straight into run
// formation instead of materializing an unsorted file first (input→run
// fusion, DESIGN.md §8). Run i always holds records [i·R, (i+1)·R) of the
// Add sequence, exactly as if the sequence had been written to a file and
// sorted with SortP, so downstream merge trees — and transfer counts — are
// identical to the unfused pipeline minus the eliminated passes.
type RunBuilder[T any] struct {
	env    em.Env
	codec  em.Codec[T]
	perRun int
	buf    []T
	idx    int
	count  int64
	sp     *spiller[T]
	done   bool
}

// NewRunBuilder validates the environment and returns an empty builder.
// parallelism bounds the sort/spill worker goroutines exactly as in SortP
// (≤ 0 selects GOMAXPROCS); run boundaries never depend on it.
func NewRunBuilder[T any](env em.Env, codec em.Codec[T], less func(a, b T) bool, parallelism int) (*RunBuilder[T], error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	perRun := env.M / codec.Size()
	if perRun < 1 {
		return nil, fmt.Errorf("extsort: memory %dB cannot hold one %dB record", env.M, codec.Size())
	}
	return &RunBuilder[T]{
		env:    env,
		codec:  codec,
		perRun: perRun,
		buf:    make([]T, 0, perRun),
		sp:     newSpiller(env, codec, less, parallelism),
	}, nil
}

// spillIfFull spills the buffer as the next run when — and only when — it
// holds exactly perRun records. Every spill goes through here, which is
// what keeps run boundaries identical between Add- and fill-driven
// builders and preserves the lazy-spill invariant Take depends on.
func (rb *RunBuilder[T]) spillIfFull() error {
	if len(rb.buf) < rb.perRun {
		return nil
	}
	if err := rb.sp.dispatch(rb.idx, rb.buf); err != nil {
		return err
	}
	rb.idx++
	rb.buf = make([]T, 0, rb.perRun)
	return nil
}

// Add appends one record. The full buffer is spilled lazily — on the Add
// that overflows it — so a sequence of exactly perRun records stays
// resident and can be taken with Take.
func (rb *RunBuilder[T]) Add(v T) error {
	if err := rb.spillIfFull(); err != nil {
		return err
	}
	rb.buf = append(rb.buf, v)
	rb.count++
	return nil
}

// fill drains read — a ReadBatch-shaped source decoding records straight
// into the buffer's free space, so batch producers skip the per-record
// Add call — until it returns io.EOF, spilling full buffers as runs.
func (rb *RunBuilder[T]) fill(read func(dst []T) (int, error)) error {
	for {
		if err := rb.spillIfFull(); err != nil {
			return err
		}
		n, err := read(rb.buf[len(rb.buf):rb.perRun])
		rb.buf = rb.buf[:len(rb.buf)+n]
		rb.count += int64(n)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Count returns the number of records added so far.
func (rb *RunBuilder[T]) Count() int64 { return rb.count }

// Spilled reports whether any run has been written to disk yet. False
// means every record is still in the memory buffer.
func (rb *RunBuilder[T]) Spilled() bool { return rb.idx > 0 }

// Take hands over the in-memory record buffer, in Add order, for callers
// that discover the whole input fits in memory (the fused base case). It
// must only be called when Spilled() is false; the builder is consumed.
func (rb *RunBuilder[T]) Take() ([]T, error) {
	if rb.Spilled() {
		return nil, fmt.Errorf("extsort: Take after %d runs spilled", rb.idx)
	}
	rb.done = true
	buf := rb.buf
	rb.buf = nil
	return buf, nil
}

// Finish spills the final partial buffer and returns the sorted runs in
// input order. An empty input yields one empty run, matching SortP. On
// error every spilled run is released. The builder is consumed.
func (rb *RunBuilder[T]) Finish() ([]*em.File, error) {
	rb.done = true
	if len(rb.buf) > 0 {
		err := rb.sp.dispatch(rb.idx, rb.buf)
		rb.idx++
		rb.buf = nil
		if err != nil {
			_, _ = rb.sp.finish() // drain workers; releases runs on error
			rb.sp.releaseAll()
			return nil, err
		}
	}
	runs, err := rb.sp.finish()
	if err != nil {
		return nil, err
	}
	if rb.idx == 0 { // empty input → empty sorted run
		runs = append(runs, rb.env.NewFile())
	}
	return runs, nil
}

// Discard drains the workers and releases every spilled run — the error
// path counterpart of Finish/Take. Safe to call after either (a no-op).
func (rb *RunBuilder[T]) Discard() {
	if rb.done {
		return
	}
	rb.done = true
	rb.buf = nil
	_, _ = rb.sp.finish()
	rb.sp.releaseAll()
}

// formRuns produces sorted runs of ≤ M bytes each. Run i always holds
// records [i·perRun, (i+1)·perRun) of the input regardless of parallelism:
// workers only take over the sort + spill of a buffer the reader has
// already filled. On error every already-spilled run is released.
func formRuns[T any](env em.Env, in *em.File, codec em.Codec[T], less func(a, b T) bool, parallelism int) ([]*em.File, error) {
	rb, err := NewRunBuilder(env, codec, less, parallelism)
	if err != nil {
		return nil, err
	}
	rr, err := em.OpenRecordReader(env, in, codec)
	if err != nil {
		return nil, err
	}
	if err := rb.fill(rr.ReadBatch); err != nil {
		rb.Discard()
		return nil, err
	}
	return rb.Finish()
}

// Merger owns a set of sorted runs and merges them down. Reduce collapses
// whole merge levels — with the exact grouping of SortP — until at most
// fanIn runs remain; MergeInto then replays the final merge into a caller
// sink without writing the sorted output (merge→sink fusion, DESIGN.md
// §8). MergeInto may be called repeatedly: each call costs one read pass
// over the remaining runs, which lets a consumer that needs two passes
// over the sorted stream (boundary selection, then distribution) trade
// the eliminated write+read of the sorted file for a second run read.
type Merger[T any] struct {
	env   em.Env
	codec em.Codec[T]
	less  func(a, b T) bool
	par   int
	runs  []*em.File
}

// NewMerger wraps sorted runs for merging. The Merger owns the runs:
// Reduce releases merged-away levels and Release frees the remainder.
func NewMerger[T any](env em.Env, runs []*em.File, codec em.Codec[T], less func(a, b T) bool, parallelism int) *Merger[T] {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Merger[T]{env: env, codec: codec, less: less, par: parallelism, runs: runs}
}

// Runs returns the current number of runs.
func (m *Merger[T]) Runs() int { return len(m.runs) }

// Reduce merges levels until one final merge pass remains (≤ fanIn runs).
// The grouping per level is identical to SortP's, so every transfer up to
// — but excluding — the final merge matches the unfused sort exactly.
func (m *Merger[T]) Reduce() error {
	fanIn := fanInOf(m.env)
	for len(m.runs) > fanIn {
		if err := m.env.Err(); err != nil {
			_ = m.Release()
			return err
		}
		next, err := mergeLevel(m.env, m.runs, m.codec, m.less, true, m.par)
		if err != nil {
			m.runs = nil // mergeLevel released everything
			return err
		}
		m.runs = next
	}
	return nil
}

// MergeInto streams the merge of the remaining runs into sink in sorted
// order. The runs are read, not consumed; call Release when done.
func (m *Merger[T]) MergeInto(sink func(T) error) error {
	return mergeInto(m.runs, m.codec, m.less, sink)
}

// Release frees the remaining runs. Idempotent.
func (m *Merger[T]) Release() error {
	var first error
	for _, r := range m.runs {
		if err := r.Release(); err != nil && first == nil {
			first = err
		}
	}
	m.runs = nil
	return first
}

// mergeRuns repeatedly merges groups of up to fanIn runs until one remains.
// If releaseInputs is true, merged-away runs are released. Groups of one
// level are independent and run on up to parallelism goroutines. On error
// every owned file — current-level inputs (when owned) and the partial
// next level — is released; File.Release is idempotent, so runs a group
// already freed are skipped for free.
func mergeRuns[T any](env em.Env, runs []*em.File, codec em.Codec[T], less func(a, b T) bool, releaseInputs bool, parallelism int) (*em.File, error) {
	fanIn := fanInOf(env)
	for len(runs) > fanIn {
		next, err := mergeLevel(env, runs, codec, less, releaseInputs, parallelism)
		if err != nil {
			return nil, err
		}
		runs = next
		releaseInputs = true // intermediate levels are always ours to free
	}
	if len(runs) == 1 {
		return runs[0], nil
	}
	out, err := mergeOnce(env, runs, codec, less)
	if err != nil {
		if releaseInputs {
			for _, r := range runs {
				_ = r.Release()
			}
		}
		return nil, err
	}
	if releaseInputs {
		for _, r := range runs {
			if err := r.Release(); err != nil {
				_ = out.Release()
				return nil, err
			}
		}
	}
	return out, nil
}

// mergeLevel merges one level of runs in groups of fanIn, releasing the
// group inputs when release is set. On error everything owned — inputs
// (when owned) and the partial next level — is released.
func mergeLevel[T any](env em.Env, runs []*em.File, codec em.Codec[T], less func(a, b T) bool, release bool, parallelism int) ([]*em.File, error) {
	fanIn := fanInOf(env)
	groups := (len(runs) + fanIn - 1) / fanIn
	next := make([]*em.File, groups)
	err := conc.ForEachIndexed(groups, parallelism, func(g int) error {
		lo := g * fanIn
		hi := min(lo+fanIn, len(runs))
		merged, err := mergeOnce(env, runs[lo:hi], codec, less)
		if err != nil {
			return err
		}
		if release {
			for _, r := range runs[lo:hi] {
				if err := r.Release(); err != nil {
					return err
				}
			}
		}
		next[g] = merged
		return nil
	})
	if err != nil {
		for _, f := range next {
			if f != nil {
				_ = f.Release()
			}
		}
		if release {
			for _, r := range runs {
				_ = r.Release()
			}
		}
		return nil, err
	}
	return next, nil
}

// mergeOnce k-way merges the given sorted runs into a fresh file,
// releasing the partial output on error.
func mergeOnce[T any](env em.Env, runs []*em.File, codec em.Codec[T], less func(a, b T) bool) (_ *em.File, err error) {
	out := env.NewFile()
	defer func() {
		if err != nil {
			_ = out.Release()
		}
	}()
	w, err := em.NewRecordWriter(out, codec)
	if err != nil {
		return nil, err
	}
	if err := mergeInto(runs, codec, less, w.Write); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// mergeInto k-way merges the given sorted runs, emitting every record to
// sink in sorted order (stable across runs by run index).
func mergeInto[T any](runs []*em.File, codec em.Codec[T], less func(a, b T) bool, sink func(T) error) error {
	h := &mergeHeap[T]{less: less}
	for i, r := range runs {
		rr, err := em.NewRecordReader(r, codec)
		if err != nil {
			return err
		}
		v, err := rr.Read()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		h.items = append(h.items, mergeItem[T]{v: v, src: rr, idx: i})
	}
	heap.Init(h)
	for h.Len() > 0 {
		top := h.items[0]
		if err := sink(top.v); err != nil {
			return err
		}
		v, err := top.src.Read()
		if err == io.EOF {
			heap.Pop(h)
			continue
		}
		if err != nil {
			return err
		}
		h.items[0].v = v
		heap.Fix(h, 0)
	}
	return nil
}

type mergeItem[T any] struct {
	v   T
	src *em.RecordReader[T]
	idx int // run index, tiebreak for stability
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	less  func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int { return len(h.items) }

func (h *mergeHeap[T]) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.less(a.v, b.v) {
		return true
	}
	if h.less(b.v, a.v) {
		return false
	}
	return a.idx < b.idx // stable across runs
}

func (h *mergeHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *mergeHeap[T]) Push(x any) { h.items = append(h.items, x.(mergeItem[T])) }

func (h *mergeHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
