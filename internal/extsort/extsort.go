// Package extsort implements the textbook external merge sort in the EM
// model: run formation fills the M-byte memory with records, sorts them, and
// spills sorted runs; then repeated (M/B − 1)-way merges reduce the runs to
// one. Total cost O((N/B) log_{M/B}(N/B)) block transfers — the same bound
// as, and a prerequisite of, ExactMaxRS (§5, Theorem 2).
//
// SortP additionally exploits CPU parallelism in the PEM style (DESIGN.md
// §6): run buffers are sorted and spilled by worker goroutines pipelined
// behind the single reader, and independent merge groups of one level run
// concurrently. Run boundaries and the merge tree are byte-identical to the
// sequential schedule, so the counted transfer total never depends on the
// worker count.
package extsort

import (
	"container/heap"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"maxrs/internal/conc"
	"maxrs/internal/em"
)

// Sort sorts the records of in according to less and returns a new sorted
// file. The input file is not modified and not released. The memory budget
// env.M bounds both the run-formation buffer and the merge fan-in.
func Sort[T any](env em.Env, in *em.File, codec em.Codec[T], less func(a, b T) bool) (*em.File, error) {
	return SortP(env, in, codec, less, 1)
}

// SortP is Sort with up to parallelism worker goroutines (≤ 0 selects
// GOMAXPROCS). The output file and the block-transfer counts are identical
// for every parallelism value; only wall-clock time changes.
func SortP[T any](env em.Env, in *em.File, codec em.Codec[T], less func(a, b T) bool, parallelism int) (*em.File, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	runs, err := formRuns(env, in, codec, less, parallelism)
	if err != nil {
		return nil, err
	}
	return mergeRuns(env, runs, codec, less, true, parallelism)
}

// sortAndSpill sorts one run buffer and writes it out as a run file.
func sortAndSpill[T any](env em.Env, codec em.Codec[T], less func(a, b T) bool, buf []T) (*em.File, error) {
	sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
	return em.WriteAllScoped(env.Disk, env.Scope, codec, buf)
}

// formRuns produces sorted runs of ≤ M bytes each. Run i always holds
// records [i·perRun, (i+1)·perRun) of the input regardless of parallelism:
// workers only take over the sort + spill of a buffer the reader has
// already filled. On error every already-spilled run is released.
func formRuns[T any](env em.Env, in *em.File, codec em.Codec[T], less func(a, b T) bool, parallelism int) (_ []*em.File, err error) {
	rr, err := em.NewRecordReaderScoped(in, codec, env.Scope)
	if err != nil {
		return nil, err
	}
	perRun := env.M / codec.Size()
	if perRun < 1 {
		return nil, fmt.Errorf("extsort: memory %dB cannot hold one %dB record", env.M, codec.Size())
	}

	type runJob struct {
		idx int
		buf []T
	}
	var (
		mu       sync.Mutex
		runs     []*em.File
		firstErr error
		wg       sync.WaitGroup
	)
	defer func() {
		if err != nil {
			for _, r := range runs {
				if r != nil {
					_ = r.Release()
				}
			}
		}
	}()
	place := func(idx int, f *em.File, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		for len(runs) <= idx {
			runs = append(runs, nil)
		}
		runs[idx] = f
	}
	// An unbuffered channel with p workers bounds in-flight run buffers to
	// p+1 (p sorting/spilling + 1 filling): the PEM budget of DESIGN.md §6.
	jobs := make(chan runJob)
	workers := parallelism
	if workers > 1 {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					f, err := sortAndSpill(env, codec, less, j.buf)
					place(j.idx, f, err)
				}
			}()
		}
	}
	dispatch := func(idx int, buf []T) {
		if workers > 1 {
			jobs <- runJob{idx: idx, buf: buf}
			return
		}
		f, err := sortAndSpill(env, codec, less, buf)
		place(idx, f, err)
	}
	finish := func() {
		close(jobs)
		wg.Wait()
	}

	idx := 0
	buf := make([]T, 0, perRun)
	for {
		n, err := rr.ReadBatch(buf[len(buf):perRun])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			finish()
			return nil, err
		}
		if len(buf) == perRun {
			dispatch(idx, buf)
			idx++
			buf = make([]T, 0, perRun)
		}
	}
	if len(buf) > 0 {
		dispatch(idx, buf)
		idx++
	}
	finish()
	if firstErr != nil {
		return nil, firstErr
	}
	if idx == 0 { // empty input → empty sorted file
		runs = append(runs, env.NewFile())
	}
	return runs, nil
}

// mergeRuns repeatedly merges groups of up to fanIn runs until one remains.
// If releaseInputs is true, merged-away runs are released. Groups of one
// level are independent and run on up to parallelism goroutines. On error
// every owned file — current-level inputs (when owned) and the partial
// next level — is released; File.Release is idempotent, so runs a group
// already freed are skipped for free.
func mergeRuns[T any](env em.Env, runs []*em.File, codec em.Codec[T], less func(a, b T) bool, releaseInputs bool, parallelism int) (*em.File, error) {
	fanIn := env.MemBlocks() - 1 // one block reserved for the output buffer
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		groups := (len(runs) + fanIn - 1) / fanIn
		next := make([]*em.File, groups)
		release := releaseInputs
		err := conc.ForEachIndexed(groups, parallelism, func(g int) error {
			lo := g * fanIn
			hi := min(lo+fanIn, len(runs))
			merged, err := mergeOnce(env, runs[lo:hi], codec, less)
			if err != nil {
				return err
			}
			if release {
				for _, r := range runs[lo:hi] {
					if err := r.Release(); err != nil {
						return err
					}
				}
			}
			next[g] = merged
			return nil
		})
		if err != nil {
			for _, f := range next {
				if f != nil {
					_ = f.Release()
				}
			}
			if release {
				for _, r := range runs {
					_ = r.Release()
				}
			}
			return nil, err
		}
		runs = next
		releaseInputs = true // intermediate levels are always ours to free
	}
	return runs[0], nil
}

// mergeOnce k-way merges the given sorted runs into a fresh file,
// releasing the partial output on error.
func mergeOnce[T any](env em.Env, runs []*em.File, codec em.Codec[T], less func(a, b T) bool) (_ *em.File, err error) {
	out := env.NewFile()
	defer func() {
		if err != nil {
			_ = out.Release()
		}
	}()
	w, err := em.NewRecordWriter(out, codec)
	if err != nil {
		return nil, err
	}
	h := &mergeHeap[T]{less: less}
	for i, r := range runs {
		rr, err := em.NewRecordReader(r, codec)
		if err != nil {
			return nil, err
		}
		v, err := rr.Read()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return nil, err
		}
		h.items = append(h.items, mergeItem[T]{v: v, src: rr, idx: i})
	}
	heap.Init(h)
	for h.Len() > 0 {
		top := h.items[0]
		if err := w.Write(top.v); err != nil {
			return nil, err
		}
		v, err := top.src.Read()
		if err == io.EOF {
			heap.Pop(h)
			continue
		}
		if err != nil {
			return nil, err
		}
		h.items[0].v = v
		heap.Fix(h, 0)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

type mergeItem[T any] struct {
	v   T
	src *em.RecordReader[T]
	idx int // run index, tiebreak for stability
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	less  func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int { return len(h.items) }

func (h *mergeHeap[T]) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.less(a.v, b.v) {
		return true
	}
	if h.less(b.v, a.v) {
		return false
	}
	return a.idx < b.idx // stable across runs
}

func (h *mergeHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *mergeHeap[T]) Push(x any) { h.items = append(h.items, x.(mergeItem[T])) }

func (h *mergeHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
