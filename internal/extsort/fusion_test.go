package extsort

import (
	"math/rand"
	"sort"
	"testing"

	"maxrs/internal/em"
)

// addAll feeds vals into a fresh RunBuilder.
func addAll(t *testing.T, env em.Env, vals []int64, par int) *RunBuilder[int64] {
	t.Helper()
	rb, err := NewRunBuilder(env, int64Codec{}, lessInt64, par)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := rb.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return rb
}

// mergeAll drains the builder through Reduce+MergeInto and returns the
// sorted sequence.
func mergeAll(t *testing.T, env em.Env, rb *RunBuilder[int64], par int) ([]int64, *Merger[int64]) {
	t.Helper()
	runs, err := rb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMerger(env, runs, int64Codec{}, lessInt64, par)
	if err := m.Reduce(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	if err := m.MergeInto(func(v int64) error { got = append(got, v); return nil }); err != nil {
		t.Fatal(err)
	}
	return got, m
}

// TestRunBuilderMergerMatchesSort is the fusion-primitive contract: for
// every parallelism, Add → Finish → Reduce → MergeInto yields exactly the
// record sequence SortP writes, and costs exactly the SortP transfer total
// minus one full read pass of the input and one full write pass of the
// output — the two passes fusion eliminates per stream.
func TestRunBuilderMergerMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 15, 16, 17, 5000, 20_000} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1000) // duplicates: stability must match too
		}

		// Reference: the unfused sort, counted without the input write.
		refEnv := em.MustNewEnv(128, 1024) // 16 records per run, fan-in 7
		in, err := em.WriteAll[int64](refEnv.Disk, int64Codec{}, vals)
		if err != nil {
			t.Fatal(err)
		}
		refEnv.Disk.ResetStats()
		out, err := SortP(refEnv, in, int64Codec{}, lessInt64, 1)
		if err != nil {
			t.Fatal(err)
		}
		sortStats := refEnv.Disk.Stats() // before the verification ReadAll
		want, err := em.ReadAllScoped(out, int64Codec{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		inBlocks, outBlocks := uint64(in.Blocks()), uint64(out.Blocks())

		for _, par := range []int{1, 2, 4} {
			env2 := em.MustNewEnv(128, 1024)
			rb2 := addAll(t, env2, vals, par)
			got, m := mergeAll(t, env2, rb2, par)
			fusedTotal := env2.Disk.Stats().Total()

			if len(got) != len(want) {
				t.Fatalf("n=%d p=%d: %d records, want %d", n, par, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: record %d = %d, want %d", n, par, i, got[i], want[i])
				}
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("n=%d p=%d: output not sorted", n, par)
			}
			// Golden delta. Multi-run: SortP reads the input and writes the
			// final merge's file; the fused primitives do neither, so they
			// cost exactly inBlocks + outBlocks less. Single-run (n ≤ one
			// run of 128): SortP's output *is* the run — no final merge —
			// while MergeInto still pays one read pass over it to deliver
			// the records (the pass the consumer of the sorted file would
			// otherwise pay), so the saving is the input read alone.
			wantTotal := sortStats.Total() - inBlocks - outBlocks
			if n <= 128 {
				wantTotal = sortStats.Total() - inBlocks + outBlocks
			}
			if fusedTotal != wantTotal {
				t.Fatalf("n=%d p=%d: fused primitives cost %d transfers, want %d (SortP %d, input %d, output %d blocks)",
					n, par, fusedTotal, wantTotal, sortStats.Total(), inBlocks, outBlocks)
			}
			// A second MergeInto replays the same sequence for one more read
			// pass over the remaining runs.
			before := env2.Disk.Stats().Total()
			var again []int64
			if err := m.MergeInto(func(v int64) error { again = append(again, v); return nil }); err != nil {
				t.Fatal(err)
			}
			replay := env2.Disk.Stats().Total() - before
			if len(again) != len(want) {
				t.Fatalf("n=%d p=%d: replay lost records: %d vs %d", n, par, len(again), len(want))
			}
			for i := range want {
				if again[i] != want[i] {
					t.Fatalf("n=%d p=%d: replay record %d = %d, want %d", n, par, i, again[i], want[i])
				}
			}
			if replay == 0 && n > 0 {
				t.Fatalf("n=%d p=%d: replay pass counted no transfers", n, par)
			}
			if err := m.Release(); err != nil {
				t.Fatal(err)
			}
			if env2.Disk.InUse() != 0 {
				t.Fatalf("n=%d p=%d: %d blocks leaked", n, par, env2.Disk.InUse())
			}
		}
	}
}

// TestRunBuilderTake covers the resident fast path: when nothing spilled,
// Take hands back the records in Add order and no disk blocks were used.
func TestRunBuilderTake(t *testing.T) {
	env := em.MustNewEnv(128, 1024) // 128 records per run
	vals := []int64{9, 3, 7, 1}
	rb := addAll(t, env, vals, 2)
	if rb.Spilled() {
		t.Fatal("4 records must not spill")
	}
	got, err := rb.Take()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("Take()[%d] = %d, want %d (Add order)", i, got[i], v)
		}
	}
	if env.Disk.InUse() != 0 || env.Disk.Stats().Total() != 0 {
		t.Fatalf("resident path touched the disk: %d blocks, %v", env.Disk.InUse(), env.Disk.Stats())
	}

	// Exactly one full buffer stays resident (lazy spill)...
	rbFull := addAll(t, env, make([]int64, 128), 1)
	if rbFull.Spilled() {
		t.Fatal("exactly perRun records must not spill (lazy dispatch)")
	}
	if _, err := rbFull.Take(); err != nil {
		t.Fatal(err)
	}
	// ...and one more record forces the spill, after which Take must fail.
	rbOver := addAll(t, env, make([]int64, 129), 1)
	if !rbOver.Spilled() {
		t.Fatal("perRun+1 records must spill")
	}
	if _, err := rbOver.Take(); err == nil {
		t.Fatal("Take after a spill must fail")
	}
	rbOver.Discard()
	if env.Disk.InUse() != 0 {
		t.Fatalf("Discard leaked %d blocks", env.Disk.InUse())
	}
}

// TestRunBuilderEmptyFinish matches SortP's empty-input convention: one
// empty run.
func TestRunBuilderEmptyFinish(t *testing.T) {
	env := em.MustNewEnv(128, 1024)
	rb := addAll(t, env, nil, 1)
	runs, err := rb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Size() != 0 {
		t.Fatalf("empty Finish: %d runs", len(runs))
	}
	m := NewMerger(env, runs, int64Codec{}, lessInt64, 1)
	if err := m.Reduce(); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := m.MergeInto(func(int64) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("empty merge emitted %d records", calls)
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}
