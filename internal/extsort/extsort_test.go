package extsort

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"maxrs/internal/em"
	"maxrs/internal/rec"
)

type int64Codec struct{}

func (int64Codec) Size() int                { return 8 }
func (int64Codec) Encode(d []byte, v int64) { binary.LittleEndian.PutUint64(d, uint64(v)) }
func (int64Codec) Decode(s []byte) int64    { return int64(binary.LittleEndian.Uint64(s)) }

func lessInt64(a, b int64) bool { return a < b }

func sortInts(t *testing.T, env em.Env, vals []int64) []int64 {
	t.Helper()
	in, err := em.WriteAll[int64](env.Disk, int64Codec{}, vals)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Sort(env, in, int64Codec{}, lessInt64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.ReadAll[int64](out, int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSortSmall(t *testing.T) {
	env := em.MustNewEnv(64, 128) // tiny memory: forces multi-level merging
	vals := []int64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	got := sortInts(t, env, vals)
	want := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSortEmpty(t *testing.T) {
	env := em.MustNewEnv(64, 128)
	got := sortInts(t, env, nil)
	if len(got) != 0 {
		t.Fatalf("sorting empty input returned %d records", len(got))
	}
}

func TestSortSingle(t *testing.T) {
	env := em.MustNewEnv(64, 128)
	got := sortInts(t, env, []int64{42})
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v, want [42]", got)
	}
}

func TestSortAlreadySorted(t *testing.T) {
	env := em.MustNewEnv(64, 192)
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(i)
	}
	got := sortInts(t, env, vals)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestSortWithDuplicates(t *testing.T) {
	env := em.MustNewEnv(64, 128)
	vals := []int64{3, 1, 3, 1, 3, 1, 2, 2, 2}
	got := sortInts(t, env, vals)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("output not sorted: %v", got)
	}
	if len(got) != len(vals) {
		t.Fatalf("lost records: %d vs %d", len(got), len(vals))
	}
}

func TestSortLargeRandom(t *testing.T) {
	env := em.MustNewEnv(256, 1024) // 4 blocks of memory, fan-in 3
	rng := rand.New(rand.NewSource(99))
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = rng.Int63n(1000) - 500
	}
	got := sortInts(t, env, vals)
	want := append([]int64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSortReleasesIntermediates(t *testing.T) {
	env := em.MustNewEnv(64, 128)
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	in, err := em.WriteAll[int64](env.Disk, int64Codec{}, vals)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Sort(env, in, int64Codec{}, lessInt64)
	if err != nil {
		t.Fatal(err)
	}
	// Only the input and the final output should remain allocated.
	if got, want := env.Disk.InUse(), in.Blocks()+out.Blocks(); got != want {
		t.Fatalf("blocks in use = %d, want %d (intermediate runs leaked)", got, want)
	}
}

func TestSortInvalidEnv(t *testing.T) {
	// M < 2B violates the EM model and must fail cleanly up front.
	d := em.MustNewDisk(64)
	env := em.Env{Disk: d, M: 64}
	in, err := em.WriteAll(d, rec.ObjectCodec{}, []rec.Object{{X: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(env, in, rec.ObjectCodec{}, func(a, b rec.Object) bool { return a.X < b.X }); err == nil {
		t.Fatal("expected failure for M < 2B")
	}
}

func TestSortRectsByX(t *testing.T) {
	env := em.MustNewEnv(128, 512)
	rng := rand.New(rand.NewSource(17))
	var rects []rec.WRect
	for i := 0; i < 3000; i++ {
		o := rec.Object{X: rng.Float64() * 1e6, Y: rng.Float64() * 1e6, W: 1}
		rects = append(rects, rec.FromObject(o, 1000, 1000))
	}
	in, err := em.WriteAll(env.Disk, rec.WRectCodec{}, rects)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Sort(env, in, rec.WRectCodec{}, func(a, b rec.WRect) bool { return a.X1 < b.X1 })
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.ReadAll(out, rec.WRectCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rects) {
		t.Fatalf("lost rects: %d vs %d", len(got), len(rects))
	}
	for i := 1; i < len(got); i++ {
		if got[i].X1 < got[i-1].X1 {
			t.Fatalf("not sorted at %d: %g < %g", i, got[i].X1, got[i-1].X1)
		}
	}
}

// Property: for random inputs and random (small) EM geometries, Sort output
// equals the in-memory sort.
func TestQuickSortMatchesStdlib(t *testing.T) {
	prop := func(raw []int16, bsRaw, memRaw uint8) bool {
		bs := 16 * (int(bsRaw%8) + 1)   // 16..128
		mem := bs * (int(memRaw%6) + 2) // 2..7 blocks
		env := em.MustNewEnv(bs, mem)
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		in, err := em.WriteAll[int64](env.Disk, int64Codec{}, vals)
		if err != nil {
			return false
		}
		out, err := Sort(env, in, int64Codec{}, lessInt64)
		if err != nil {
			return false
		}
		got, err := em.ReadAll[int64](out, int64Codec{})
		if err != nil {
			return false
		}
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The I/O cost of sorting must scale like (N/B) log_{M/B}(N/B): doubling the
// memory with fixed N and B must not increase transfers, and the measured
// cost must stay within a small constant of the formula.
func TestSortIOCost(t *testing.T) {
	const n = 50000
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	cost := func(mem int) uint64 {
		env := em.MustNewEnv(512, mem)
		in, err := em.WriteAll[int64](env.Disk, int64Codec{}, vals)
		if err != nil {
			t.Fatal(err)
		}
		env.Disk.ResetStats()
		if _, err := Sort(env, in, int64Codec{}, lessInt64); err != nil {
			t.Fatal(err)
		}
		return env.Disk.Stats().Total()
	}
	small := cost(2 * 512)  // M/B = 2
	large := cost(64 * 512) // M/B = 64
	if large >= small {
		t.Fatalf("more memory did not reduce I/O: M/B=2 → %d, M/B=64 → %d", small, large)
	}
	// With M/B = 64 the merge is single-level: cost ≈ 2 passes over ~782
	// blocks plus the run write = read N + write runs + read runs + write out
	// ≈ 4 * N/B. Allow 1.5x slack.
	blocks := float64(n*8) / 512
	if got, bound := float64(large), 4*blocks*1.5; got > bound {
		t.Fatalf("I/O cost %g exceeds %g (≈4·N/B with slack)", got, bound)
	}
	_ = math.Log // keep math import honest if bounds change
}
