package core

import (
	"math"
	"math/rand"
	"testing"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

// writeObjects stores objects on a fresh file in env's disk.
func writeObjects(t *testing.T, env em.Env, objs []geom.Object) *em.File {
	t.Helper()
	recs := make([]rec.Object, len(objs))
	for i, o := range objs {
		recs[i] = rec.FromGeom(o)
	}
	f, err := em.WriteAll(env.Disk, rec.ObjectCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustSolver(t *testing.T, env em.Env, cfg Config) *Solver {
	t.Helper()
	s, err := NewSolver(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randObjects produces integer-coordinate objects so float arithmetic in
// both the external and in-memory algorithms is exact and comparable.
func randObjects(rng *rand.Rand, n int, coord float64) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.Object{
			Point: geom.Point{
				X: math.Floor(rng.Float64() * coord),
				Y: math.Floor(rng.Float64() * coord),
			},
			W: float64(rng.Intn(9) + 1),
		}
	}
	return objs
}

func TestSolverValidation(t *testing.T) {
	if _, err := NewSolver(em.Env{}, Config{}); err == nil {
		t.Fatal("zero Env must be rejected")
	}
	env := em.MustNewEnv(256, 2048)
	if _, err := NewSolver(env, Config{Fanout: 1}); err == nil {
		t.Fatal("fanout 1 must be rejected")
	}
	if _, err := NewSolver(env, Config{Fanout: -3}); err == nil {
		t.Fatal("negative fanout must be rejected")
	}
	s := mustSolver(t, env, Config{})
	f := writeObjects(t, env, []geom.Object{{Point: geom.Point{X: 1, Y: 1}, W: 1}})
	if _, err := s.SolveObjects(f, 0, 5); err == nil {
		t.Fatal("zero-width query must be rejected")
	}
	if _, err := s.SolveObjects(f, 5, -1); err == nil {
		t.Fatal("negative-height query must be rejected")
	}
}

func TestExactMaxRSInMemoryBase(t *testing.T) {
	// Memory large enough that the whole problem is one base case.
	env := em.MustNewEnv(4096, 1<<20)
	s := mustSolver(t, env, Config{})
	objs := []geom.Object{
		{Point: geom.Point{X: 1, Y: 1}, W: 1},
		{Point: geom.Point{X: 2, Y: 2}, W: 1},
		{Point: geom.Point{X: 3, Y: 1}, W: 1},
		{Point: geom.Point{X: 50, Y: 50}, W: 1},
	}
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 3 {
		t.Fatalf("sum = %g, want 3", res.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 4, 4); got != 3 {
		t.Fatalf("returned point covers %g, want 3", got)
	}
}

func TestExactMaxRSForcedRecursion(t *testing.T) {
	// Tiny memory: 8 blocks of 128 B → capacity ≈ 24 events, forcing
	// several levels of recursion on 300 objects (600 events).
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	rng := rand.New(rand.NewSource(42))
	objs := randObjects(rng, 300, 100)
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.MaxRS(objs, 10, 10)
	if res.Sum != want.Sum {
		t.Fatalf("external sum = %g, in-memory = %g", res.Sum, want.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 10, 10); got != res.Sum {
		t.Fatalf("returned point covers %g, claimed %g", got, res.Sum)
	}
}

// The central correctness property: for random datasets, EM geometries and
// query sizes, ExactMaxRS equals the in-memory plane sweep, and the
// returned location attains the claimed sum.
func TestExactMaxRSMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		blockSize := 64 * (rng.Intn(4) + 1) // 64..256
		memBlocks := rng.Intn(12) + 6       // 6..17
		env := em.MustNewEnv(blockSize, blockSize*memBlocks)
		s := mustSolver(t, env, Config{})
		n := rng.Intn(400) + 20
		coord := float64(rng.Intn(400) + 50)
		objs := randObjects(rng, n, coord)
		w := math.Floor(rng.Float64()*40) + 2
		h := math.Floor(rng.Float64()*40) + 2
		f := writeObjects(t, env, objs)
		res, err := s.SolveObjects(f, w, h)
		if err != nil {
			t.Fatalf("trial %d (B=%d M/B=%d n=%d %gx%g): %v",
				trial, blockSize, memBlocks, n, w, h, err)
		}
		want := sweep.MaxRS(objs, w, h)
		if res.Sum != want.Sum {
			t.Fatalf("trial %d (B=%d M/B=%d n=%d %gx%g): external %g, in-memory %g",
				trial, blockSize, memBlocks, n, w, h, res.Sum, want.Sum)
		}
		if got := geom.WeightIn(objs, res.Best(), w, h); got != res.Sum {
			t.Fatalf("trial %d: point %v covers %g, claimed %g",
				trial, res.Best(), got, res.Sum)
		}
	}
}

func TestExactMaxRSClusteredTies(t *testing.T) {
	// Many identical coordinates stress boundary-coincidence handling:
	// duplicated points, grid-aligned clusters, shared rectangle edges.
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	rng := rand.New(rand.NewSource(13))
	var objs []geom.Object
	for c := 0; c < 10; c++ {
		cx, cy := math.Floor(rng.Float64()*50), math.Floor(rng.Float64()*50)
		for k := 0; k < 30; k++ {
			objs = append(objs, geom.Object{
				Point: geom.Point{X: cx + float64(k%3), Y: cy + float64(k/10)},
				W:     1,
			})
		}
	}
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.MaxRS(objs, 6, 6)
	if res.Sum != want.Sum {
		t.Fatalf("external %g, in-memory %g", res.Sum, want.Sum)
	}
}

func TestExactMaxRSIdenticalPoints(t *testing.T) {
	// All objects at one location: every transformed rectangle identical —
	// the degenerate case where division must divert everything to R′.
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	objs := make([]geom.Object, 200)
	for i := range objs {
		objs[i] = geom.Object{Point: geom.Point{X: 10, Y: 10}, W: 2}
	}
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 400 {
		t.Fatalf("sum = %g, want 400", res.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 4, 4); got != 400 {
		t.Fatalf("point covers %g, want 400", got)
	}
}

func TestExactMaxRSVerticalLine(t *testing.T) {
	// All objects share one x: every vertical edge value is one of two
	// numbers — stresses quantile tie handling.
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	objs := make([]geom.Object, 150)
	for i := range objs {
		objs[i] = geom.Object{Point: geom.Point{X: 50, Y: float64(i)}, W: 1}
	}
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.MaxRS(objs, 10, 10)
	if res.Sum != want.Sum {
		t.Fatalf("external %g, in-memory %g", res.Sum, want.Sum)
	}
}

func TestExactMaxRSHorizontalLine(t *testing.T) {
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	objs := make([]geom.Object, 150)
	for i := range objs {
		objs[i] = geom.Object{Point: geom.Point{X: float64(i * 2), Y: 7}, W: 1}
	}
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.MaxRS(objs, 9, 3)
	if res.Sum != want.Sum {
		t.Fatalf("external %g, in-memory %g", res.Sum, want.Sum)
	}
}

func TestExactMaxRSEmptyInput(t *testing.T) {
	env := em.MustNewEnv(256, 2048)
	s := mustSolver(t, env, Config{})
	f := writeObjects(t, env, nil)
	res, err := s.SolveObjects(f, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 0 {
		t.Fatalf("empty input sum = %g", res.Sum)
	}
}

func TestExactMaxRSSingleObject(t *testing.T) {
	env := em.MustNewEnv(256, 2048)
	s := mustSolver(t, env, Config{})
	objs := []geom.Object{{Point: geom.Point{X: 5, Y: 5}, W: 3}}
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 3 {
		t.Fatalf("sum = %g, want 3", res.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 2, 2); got != 3 {
		t.Fatalf("point covers %g, want 3", got)
	}
}

func TestSolveRects(t *testing.T) {
	// Feed pre-transformed rectangles directly (the ApproxMaxCRS path).
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	rects := []rec.WRect{
		{X1: 0, X2: 4, Y1: 0, Y2: 4, W: 1},
		{X1: 2, X2: 6, Y1: 2, Y2: 6, W: 1},
		{X1: 3, X2: 7, Y1: 1, Y2: 5, W: 1},
		{X1: 100, X2: 104, Y1: 0, Y2: 4, W: 1},
	}
	f, err := em.WriteAll(env.Disk, rec.WRectCodec{}, rects)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveRects(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 3 {
		t.Fatalf("sum = %g, want 3", res.Sum)
	}
	want := sweep.MaxRSRects(rects)
	if res.Sum != want.Sum {
		t.Fatalf("external %g, in-memory %g", res.Sum, want.Sum)
	}
}

func TestFanoutOverride(t *testing.T) {
	// Any fanout ≥ 2 must give the same answer (ablation knob sanity).
	rng := rand.New(rand.NewSource(77))
	objs := randObjects(rng, 250, 120)
	want := sweep.MaxRS(objs, 12, 12)
	for _, fanout := range []int{0, 2, 3, 4, 8, 64} {
		env := em.MustNewEnv(128, 1024)
		s := mustSolver(t, env, Config{Fanout: fanout})
		f := writeObjects(t, env, objs)
		res, err := s.SolveObjects(f, 12, 12)
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if res.Sum != want.Sum {
			t.Fatalf("fanout %d: sum %g, want %g", fanout, res.Sum, want.Sum)
		}
	}
}

func TestDiskNotLeaked(t *testing.T) {
	// After solving, only the input file should remain on disk: every
	// intermediate (runs, events, edges, slab files) must be released.
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	rng := rand.New(rand.NewSource(3))
	objs := randObjects(rng, 200, 80)
	f := writeObjects(t, env, objs)
	if _, err := s.SolveObjects(f, 8, 8); err != nil {
		t.Fatal(err)
	}
	if got, want := env.Disk.InUse(), f.Blocks(); got != want {
		t.Fatalf("blocks in use = %d, want %d (intermediates leaked)", got, want)
	}
}

func TestIOCostScaling(t *testing.T) {
	// Theorem 2: cost is O((N/B) log_{M/B}(N/B)). Doubling N must grow
	// transfers by ~2x (not 4x as in the quadratic baselines), and more
	// memory must not increase the cost.
	run := func(n int, mem int) uint64 {
		env := em.MustNewEnv(512, mem)
		s := mustSolver(t, env, Config{})
		rng := rand.New(rand.NewSource(int64(n)))
		objs := randObjects(rng, n, float64(4*n))
		f := writeObjects(t, env, objs)
		env.Disk.ResetStats()
		if _, err := s.SolveObjects(f, 1000, 1000); err != nil {
			t.Fatal(err)
		}
		return env.Disk.Stats().Total()
	}
	c1 := run(2000, 8*512)
	c2 := run(4000, 8*512)
	ratio := float64(c2) / float64(c1)
	if ratio > 3.0 {
		t.Fatalf("doubling N scaled I/O by %.2f (want ≈2, certainly <3)", ratio)
	}
	cBig := run(4000, 64*512)
	if cBig > c2 {
		t.Fatalf("more memory increased I/O: %d (M/B=8) → %d (M/B=64)", c2, cBig)
	}
}

func TestBestOfSlabFileStreaming(t *testing.T) {
	env := em.MustNewEnv(128, 1024)
	tuples := []rec.Tuple{
		{Y: 0, X1: 0, X2: 10, Sum: 1},
		{Y: 2, X1: 3, X2: 5, Sum: 4},
		{Y: 5, X1: 0, X2: 10, Sum: 2},
		{Y: 9, X1: 0, X2: 10, Sum: 0},
	}
	f, err := em.WriteAll(env.Disk, rec.TupleCodec{}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BestOfSlabFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 4 {
		t.Fatalf("sum = %g, want 4", res.Sum)
	}
	r := res.Region
	if r.X.Lo != 3 || r.X.Hi != 5 || r.Y.Lo != 2 || r.Y.Hi != 5 {
		t.Fatalf("region = %v, want [3,5)x[2,5)", r)
	}
}

func TestExactMaxRSLargeRealistic(t *testing.T) {
	// A paper-shaped instance: 20k points in [0, 80k]^2, 1 MB-scaled
	// memory, default-ratio query. Cross-validates the external solver at
	// a scale with multiple base-case slabs and non-trivial spanning
	// traffic. Skipped with -short.
	if testing.Short() {
		t.Skip("large realistic instance")
	}
	env := em.MustNewEnv(4096, 64*1024)
	s := mustSolver(t, env, Config{})
	rng := rand.New(rand.NewSource(404))
	objs := randObjects(rng, 20000, 80000)
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 320, 320)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.MaxRS(objs, 320, 320)
	if res.Sum != want.Sum {
		t.Fatalf("external %g, in-memory %g", res.Sum, want.Sum)
	}
	if got := geom.WeightIn(objs, res.Best(), 320, 320); got != res.Sum {
		t.Fatalf("point covers %g, claimed %g", got, res.Sum)
	}
}

func TestExactMaxRSOnFileBackedDisk(t *testing.T) {
	d, err := em.NewFileBackedDisk(t.TempDir(), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	env := em.Env{Disk: d, M: 4096}
	s := mustSolver(t, env, Config{})
	rng := rand.New(rand.NewSource(88))
	objs := randObjects(rng, 400, 300)
	f := writeObjects(t, env, objs)
	res, err := s.SolveObjects(f, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.MaxRS(objs, 20, 20)
	if res.Sum != want.Sum {
		t.Fatalf("file-backed %g, in-memory %g", res.Sum, want.Sum)
	}
}
