package core

import (
	"errors"
	"io"
	"math"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

// tupleSource streams one child slab file with one-record lookahead.
type tupleSource struct {
	rr   *em.RecordReader[rec.Tuple]
	cur  rec.Tuple
	done bool
}

func newTupleSource(f *em.File) (*tupleSource, error) {
	rr, err := em.NewRecordReader(f, rec.TupleCodec{})
	if err != nil {
		return nil, err
	}
	ts := &tupleSource{rr: rr}
	return ts, ts.advance()
}

func (ts *tupleSource) advance() error {
	t, err := ts.rr.Read()
	if err != nil {
		if errors.Is(err, io.EOF) {
			ts.done = true
			return nil
		}
		return err
	}
	ts.cur = t
	return nil
}

// spanSource streams the spanning event file with one-record lookahead.
type spanSource struct {
	rr   *em.RecordReader[rec.PieceEvent]
	cur  rec.PieceEvent
	done bool
}

func newSpanSource(f *em.File) (*spanSource, error) {
	rr, err := em.NewRecordReader(f, rec.PieceEventCodec{})
	if err != nil {
		return nil, err
	}
	ss := &spanSource{rr: rr}
	return ss, ss.advance()
}

func (ss *spanSource) advance() error {
	e, err := ss.rr.Read()
	if err != nil {
		if errors.Is(err, io.EOF) {
			ss.done = true
			return nil
		}
		return err
	}
	ss.cur = e
	return nil
}

// mergeSweep is Algorithm 1: it sweeps a horizontal line bottom-to-top
// across the m child slab files and the spanning file, maintaining the
// current max-interval tuple per child (tslab) and the weight of spanning
// rectangles currently covering each child (upSum), and emits the parent's
// slab file: at every event y, the best (possibly merged across adjacent
// children) max-interval.
func (s *task) mergeSweep(slabFiles []*em.File, spanning *em.File, bounds []float64, slab geom.Interval) (_ *em.File, err error) {
	nc := len(slabFiles)
	sources := make([]*tupleSource, nc)
	for i, f := range slabFiles {
		ts, err := newTupleSource(f)
		if err != nil {
			return nil, err
		}
		sources[i] = ts
	}
	spans, err := newSpanSource(spanning)
	if err != nil {
		return nil, err
	}

	tslab := make([]rec.Tuple, nc)
	upSum := make([]float64, nc)
	for i := range tslab {
		tslab[i] = rec.Tuple{
			Y:  math.Inf(-1),
			X1: slabLo(slab, bounds, i),
			X2: slabHi(slab, bounds, i),
		}
	}

	out := s.env.NewFile()
	defer func() {
		if err != nil {
			_ = out.Release()
		}
	}()
	w, err := em.NewRecordWriter(out, rec.TupleCodec{})
	if err != nil {
		return nil, err
	}

	for {
		// Next event line: the smallest unconsumed y over all sources.
		y := math.Inf(1)
		any := false
		for _, ts := range sources {
			if !ts.done && ts.cur.Y < y {
				y = ts.cur.Y
				any = true
			}
		}
		if !spans.done && spans.cur.Y() <= y {
			y = spans.cur.Y()
			any = true
		}
		if !any {
			break
		}
		// Apply every record at this h-line before emitting (tops and
		// bottoms at equal y cancel within the line, matching the
		// half-open semantics of the children's own sweeps).
		for !spans.done && spans.cur.Y() == y {
			e := spans.cur
			a := childOfPoint(bounds, e.R.X1)
			b := childOfSup(bounds, e.R.X2)
			d := e.R.W
			if e.Top {
				d = -d
			}
			for j := a; j <= b && j < nc; j++ {
				upSum[j] += d
			}
			if err := spans.advance(); err != nil {
				return nil, err
			}
		}
		for i, ts := range sources {
			if !ts.done && ts.cur.Y == y {
				tslab[i] = ts.cur
				if err := ts.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := w.Write(bestTuple(y, tslab, upSum, slab, bounds)); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// bestTuple implements lines 17–18 of Algorithm 1 plus GetMaxInterval: it
// finds the children whose effective sum (local tuple sum + spanning
// weight) is maximal, merges max-intervals of adjacent maximal children
// when they touch at the shared slab boundary, and returns the longest
// merged interval (leftmost on ties).
func bestTuple(y float64, tslab []rec.Tuple, upSum []float64, slab geom.Interval, bounds []float64) rec.Tuple {
	nc := len(tslab)
	best := math.Inf(-1)
	for i := 0; i < nc; i++ {
		if eff := tslab[i].Sum + upSum[i]; eff > best {
			best = eff
		}
	}
	var out geom.Interval
	haveOut := false
	for i := 0; i < nc; {
		if tslab[i].Sum+upSum[i] != best {
			i++
			continue
		}
		run := geom.Interval{Lo: tslab[i].X1, Hi: tslab[i].X2}
		j := i + 1
		for j < nc && tslab[j].Sum+upSum[j] == best &&
			run.Hi == slabHi(slab, bounds, j-1) && tslab[j].X1 == run.Hi {
			run.Hi = tslab[j].X2
			j++
		}
		if !haveOut || run.Len() > out.Len() {
			out = run
			haveOut = true
		}
		i = j
	}
	return rec.Tuple{Y: y, X1: out.Lo, X2: out.Hi, Sum: best}
}
