package core

import (
	"math/rand"
	"testing"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/workload"
)

// fusionEnv is the EM geometry of the equivalence tests: small enough
// memory that 4000 objects (8000 events) divide at the root with
// multi-run sorts on both streams — the precondition for the golden
// transfer-saving formula below.
func fusionEnv() em.Env { return em.MustNewEnv(4096, 52*1024) }

// TestFusionEquivalence is the golden contract of the fused pipeline
// (DESIGN.md §8), checked across workload shapes and parallelism values:
//
//  1. The fused result is bit-identical to Config.Unfused.
//  2. The fused transfer total is identical at every Parallelism.
//  3. The fusion saves at least four full passes over the event stream
//     plus two over the edge stream at the root: the unsorted write and
//     run-formation read of both streams (input→run fusion) and the final
//     merge write and root re-read of the event stream (merge→divide
//     fusion). The edges' two root reads trade for two final-merge
//     replays, so they contribute the input→run half only — the floor
//     asserted here; run-padding slack is why the events' merge half is
//     asserted as a floor too. 4·⌈N_events/B⌉ alone exceeds 4 full passes
//     over the 24-byte input objects, the ISSUE's per-stream-pair bound.
//
// Run under -race in CI, it doubles as the data-race test of the fused
// concurrent root.
func TestFusionEquivalence(t *testing.T) {
	const n = 4000
	extent := 4.0 * n
	workloads := map[string][]geom.Object{
		"uniform":     workload.Uniform(2012, n, extent),
		"gaussian":    workload.Gaussian(2013, n, extent),
		"syntheticNE": workload.Sample(7, workload.SyntheticNE(2012), n),
	}
	const w, h = 900, 900

	for name, objs := range workloads {
		// Reference: the unfused pipeline.
		refEnv := fusionEnv()
		refFile := writeObjects(t, refEnv, objs)
		refSolver := mustSolver(t, refEnv, Config{Unfused: true, Parallelism: 1})
		refEnv.Disk.ResetStats()
		want, err := refSolver.SolveObjects(refFile, w, h)
		if err != nil {
			t.Fatalf("%s unfused: %v", name, err)
		}
		unfusedTotal := refEnv.Disk.Stats().Total()
		if got, wantBlocks := refEnv.Disk.InUse(), refFile.Blocks(); got != wantBlocks {
			t.Fatalf("%s unfused: %d blocks in use, want %d", name, got, wantBlocks)
		}

		// The asserted saving floor, from the record counts: every object
		// produces two 41-byte events and four 8-byte edge values.
		blockOf := func(bytes int) uint64 { return uint64((bytes + 4095) / 4096) }
		evBlocks := blockOf(2 * n * rec.PieceEventCodec{}.Size())
		edBlocks := blockOf(4 * n * rec.Float64Codec{}.Size())
		minSaving := 4*evBlocks + 2*edBlocks

		var fusedTotal uint64
		for _, p := range []int{1, 2, 4, 8} {
			env := fusionEnv()
			f := writeObjects(t, env, objs)
			s := mustSolver(t, env, Config{Parallelism: p})
			env.Disk.ResetStats()
			got, err := s.SolveObjects(f, w, h)
			if err != nil {
				t.Fatalf("%s fused p=%d: %v", name, p, err)
			}
			total := env.Disk.Stats().Total()
			if got.Region != want.Region || got.Sum != want.Sum {
				t.Errorf("%s fused p=%d: result %+v sum %g differs from unfused %+v sum %g",
					name, p, got.Region, got.Sum, want.Region, want.Sum)
			}
			if p == 1 {
				fusedTotal = total
				if saving := unfusedTotal - total; total >= unfusedTotal || saving < minSaving {
					t.Errorf("%s: fused %d vs unfused %d transfers: saving %d < asserted floor %d (events %d, edges %d blocks)",
						name, total, unfusedTotal, saving, minSaving, evBlocks, edBlocks)
				}
			} else if total != fusedTotal {
				t.Errorf("%s fused p=%d: %d transfers, want %d (same as p=1)", name, p, total, fusedTotal)
			}
			if got, wantBlocks := env.Disk.InUse(), f.Blocks(); got != wantBlocks {
				t.Errorf("%s fused p=%d: %d blocks in use, want %d (intermediates leaked)",
					name, p, got, wantBlocks)
			}
		}
	}
}

// TestFusionEquivalenceSmall covers the resident base case and near-
// capacity boundaries, where the fused path skips the disk entirely:
// results must still match the unfused pipeline exactly.
func TestFusionEquivalenceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		blockSize := 64 * (rng.Intn(4) + 1)
		memBlocks := rng.Intn(12) + 6
		n := rng.Intn(250) + 1
		coord := float64(rng.Intn(300) + 40)
		objs := randObjects(rng, n, coord)
		w := float64(rng.Intn(30) + 2)
		h := float64(rng.Intn(30) + 2)

		run := func(unfused bool) (geom.Rect, float64) {
			env := em.MustNewEnv(blockSize, blockSize*memBlocks)
			f := writeObjects(t, env, objs)
			s := mustSolver(t, env, Config{Unfused: unfused})
			res, err := s.SolveObjects(f, w, h)
			if err != nil {
				t.Fatalf("trial %d (unfused=%v): %v", trial, unfused, err)
			}
			if got, want := env.Disk.InUse(), f.Blocks(); got != want {
				t.Fatalf("trial %d (unfused=%v): %d blocks in use, want %d", trial, unfused, got, want)
			}
			return res.Region, res.Sum
		}
		fr, fs := run(false)
		ur, us := run(true)
		if fr != ur || fs != us {
			t.Fatalf("trial %d (B=%d M/B=%d n=%d): fused %+v/%g != unfused %+v/%g",
				trial, blockSize, memBlocks, n, fr, fs, ur, us)
		}
	}
}

// TestFusedEmptyAndDegenerate pins the fused edge cases: empty input and
// all-degenerate rectangles resolve in memory with zero transfers beyond
// the input read.
func TestFusedEmptyAndDegenerate(t *testing.T) {
	env := em.MustNewEnv(256, 2048)
	s := mustSolver(t, env, Config{})
	f := writeObjects(t, env, nil)
	res, err := s.SolveObjects(f, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 0 {
		t.Fatalf("empty input sum = %g", res.Sum)
	}
	// Degenerate rectangles (zero area after transform) are skipped by
	// both pipelines.
	rects := []rec.WRect{{X1: 5, X2: 5, Y1: 0, Y2: 4, W: 1}}
	rf, err := em.WriteAll(env.Disk, rec.WRectCodec{}, rects)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.SolveRects(rf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 0 {
		t.Fatalf("degenerate rect sum = %g", res.Sum)
	}
}
