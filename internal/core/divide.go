package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

// chooseBounds reads the node's x-sorted edge-value file once and returns
// up to fanout−1 strictly increasing boundary values, each strictly inside
// the node's slab, splitting the edge multiset into roughly equal parts
// (the division criterion of §5.2.1 / Lemma 1).
func (s *task) chooseBounds(n node) ([]float64, error) {
	m := s.fanout()
	if m < 4 && s.cfg.Fanout == 0 {
		// For pathologically small memories an auto-selected fan-out below
		// 4 cannot guarantee that tied edge values straddle a quantile
		// rank; clamp (documented deviation, ≤ 2 blocks of slack). An
		// explicitly configured fan-out (ablation) is honored as-is.
		m = 4
	}
	total := em.RecordCount(n.edges, rec.Float64Codec{}.Size())
	if total == 0 {
		return nil, nil
	}
	rr, err := em.NewRecordReader(n.edges, rec.Float64Codec{})
	if err != nil {
		return nil, err
	}
	step := total / int64(m)
	if step < 1 {
		step = 1
	}
	var bounds []float64
	nextRank := step
	var minInterior, maxInterior float64
	haveInterior := false
	batch := make([]float64, edgeBatch)
	for i := int64(0); i < total; {
		k, err := rr.ReadBatch(batch)
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
		if k == 0 {
			return nil, fmt.Errorf("core: edge file ended at %d of %d values", i, total)
		}
		for _, v := range batch[:k] {
			i++
			interior := v > n.slab.Lo && v < n.slab.Hi && !math.IsInf(v, 0)
			if interior {
				if !haveInterior {
					minInterior, maxInterior, haveInterior = v, v, true
				} else {
					maxInterior = v
				}
			}
			if i == nextRank {
				nextRank += step
				if !interior {
					continue
				}
				if len(bounds) == 0 || v > bounds[len(bounds)-1] {
					bounds = append(bounds, v)
				}
			}
		}
	}
	if len(bounds) == 0 && haveInterior {
		// Quantile ranks all landed on border-valued edges; fall back to a
		// single interior split so recursion still progresses.
		if minInterior < maxInterior {
			bounds = []float64{minInterior + (maxInterior-minInterior)/2}
		} else {
			bounds = []float64{minInterior}
		}
	}
	return bounds, nil
}

// slabLo returns the low x-boundary of child i under bounds within slab.
func slabLo(slab geom.Interval, bounds []float64, i int) float64 {
	if i == 0 {
		return slab.Lo
	}
	return bounds[i-1]
}

// slabHi returns the high x-boundary of child i under bounds within slab.
func slabHi(slab geom.Interval, bounds []float64, i int) float64 {
	if i == len(bounds) {
		return slab.Hi
	}
	return bounds[i]
}

// childOfPoint returns the child slab containing x: the number of bounds ≤ x.
func childOfPoint(bounds []float64, x float64) int {
	// sort.SearchFloat64s returns the count of bounds < x; add equals.
	i := sort.SearchFloat64s(bounds, x)
	for i < len(bounds) && bounds[i] == x {
		i++
	}
	return i
}

// childOfSup returns the child slab containing the supremum of [_, x): the
// number of bounds strictly below x.
func childOfSup(bounds []float64, x float64) int {
	return sort.SearchFloat64s(bounds, x)
}

// route performs the division phase (§5.2.1): it distributes the node's
// piece events into len(bounds)+1 child nodes, diverting every fragment
// that spans a whole child slab into the spanning file R′. Event order (y)
// is preserved in every output file. It also splits the x-sorted
// edge-value file, inserting the clipped boundary values at the splice
// points so each child's file remains sorted. On error every partial
// output file is released.
func (s *task) route(n node, bounds []float64) (_ []node, _ *em.File, err error) {
	nc := len(bounds) + 1
	childEvents := make([]*em.File, nc)
	eventWriters := make([]*em.RecordWriter[rec.PieceEvent], nc)
	counts := make([]int64, nc)
	nLow := make([]int64, nc)  // right-fragment clips at each child's low bound
	nHigh := make([]int64, nc) // left-fragment clips at each child's high bound
	for i := range childEvents {
		childEvents[i] = s.env.NewFile()
	}
	spanning := s.env.NewFile()
	defer func() {
		if err != nil {
			for _, f := range childEvents {
				_ = f.Release()
			}
			_ = spanning.Release()
		}
	}()
	for i := range childEvents {
		w, err := em.NewRecordWriter(childEvents[i], rec.PieceEventCodec{})
		if err != nil {
			return nil, nil, err
		}
		eventWriters[i] = w
	}
	spanWriter, err := em.NewRecordWriter(spanning, rec.PieceEventCodec{})
	if err != nil {
		return nil, nil, err
	}

	rr, err := em.NewRecordReader(n.events, rec.PieceEventCodec{})
	if err != nil {
		return nil, nil, err
	}
	emit := func(i int, e rec.PieceEvent, x1, x2 float64) error {
		e.R.X1, e.R.X2 = x1, x2
		counts[i]++
		return eventWriters[i].Write(e)
	}
	batch := make([]rec.PieceEvent, eventBatch)
	k, bi := 0, 0
	var batchErr error
	for {
		if bi == k {
			if batchErr != nil {
				if errors.Is(batchErr, io.EOF) {
					break
				}
				return nil, nil, batchErr
			}
			k, batchErr = rr.ReadBatch(batch)
			bi = 0
			if k == 0 {
				continue
			}
		}
		e := batch[bi]
		bi++
		x1, x2 := e.R.X1, e.R.X2
		i := childOfPoint(bounds, x1)
		j := childOfSup(bounds, x2)
		leftSpan := x1 == slabLo(n.slab, bounds, i)
		rightSpan := x2 == slabHi(n.slab, bounds, j)
		if i == j {
			if leftSpan && rightSpan {
				// The fragment coincides with a whole child slab.
				spanEvent := e
				spanEvent.R.X1, spanEvent.R.X2 = x1, x2
				if err := spanWriter.Write(spanEvent); err != nil {
					return nil, nil, err
				}
			} else if err := emit(i, e, x1, x2); err != nil {
				return nil, nil, err
			}
			continue
		}
		spanStart, spanEnd := i, j
		if !leftSpan {
			if err := emit(i, e, x1, slabHi(n.slab, bounds, i)); err != nil {
				return nil, nil, err
			}
			nHigh[i]++
			spanStart = i + 1
		}
		if !rightSpan {
			if err := emit(j, e, slabLo(n.slab, bounds, j), x2); err != nil {
				return nil, nil, err
			}
			nLow[j]++
			spanEnd = j - 1
		}
		if spanStart <= spanEnd {
			spanEvent := e
			spanEvent.R.X1 = slabLo(n.slab, bounds, spanStart)
			spanEvent.R.X2 = slabHi(n.slab, bounds, spanEnd)
			if err := spanWriter.Write(spanEvent); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, w := range eventWriters {
		if err := w.Close(); err != nil {
			return nil, nil, err
		}
	}
	if err := spanWriter.Close(); err != nil {
		return nil, nil, err
	}

	childEdges, err := s.splitEdges(n, bounds, nLow, nHigh)
	if err != nil {
		return nil, nil, err
	}
	children := make([]node, nc)
	for i := range children {
		children[i] = node{
			events: childEvents[i],
			edges:  childEdges[i],
			slab:   geom.Interval{Lo: slabLo(n.slab, bounds, i), Hi: slabHi(n.slab, bounds, i)},
			count:  counts[i],
		}
	}
	return children, spanning, nil
}

// splitEdges routes the parent's sorted edge values into per-child sorted
// files: nLow[i] copies of the child's low bound, then the parent values
// falling in the child's x-range, then nHigh[i] copies of the high bound.
// On error every partial output file is released.
func (s *task) splitEdges(n node, bounds []float64, nLow, nHigh []int64) (_ []*em.File, err error) {
	nc := len(bounds) + 1
	files := make([]*em.File, nc)
	writers := make([]*em.RecordWriter[float64], nc)
	defer func() {
		if err != nil {
			for _, f := range files {
				if f != nil {
					_ = f.Release()
				}
			}
		}
	}()
	for i := range files {
		files[i] = s.env.NewFile()
		w, err := em.NewRecordWriter(files[i], rec.Float64Codec{})
		if err != nil {
			return nil, err
		}
		writers[i] = w
		lo := slabLo(n.slab, bounds, i)
		if nLow[i] > 0 && math.IsInf(lo, 0) {
			return nil, fmt.Errorf("core: %d clips at infinite bound %g", nLow[i], lo)
		}
		for k := int64(0); k < nLow[i]; k++ {
			if err := w.Write(lo); err != nil {
				return nil, err
			}
		}
	}
	rr, err := em.NewRecordReader(n.edges, rec.Float64Codec{})
	if err != nil {
		return nil, err
	}
	batch := make([]float64, edgeBatch)
	for {
		k, err := rr.ReadBatch(batch)
		for _, v := range batch[:k] {
			i := childOfPoint(bounds, v)
			if err := writers[i].Write(v); err != nil {
				return nil, err
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
	}
	for i, w := range writers {
		hi := slabHi(n.slab, bounds, i)
		if nHigh[i] > 0 && math.IsInf(hi, 0) {
			return nil, fmt.Errorf("core: %d clips at infinite bound %g", nHigh[i], hi)
		}
		for k := int64(0); k < nHigh[i]; k++ {
			if err := w.Write(hi); err != nil {
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	return files, nil
}
