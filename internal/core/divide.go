package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"maxrs/internal/em"
	"maxrs/internal/extsort"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

// The division phase is written as three streaming sinks — boundsPicker,
// router, edgeSplitter — each consuming one record at a time, so the same
// per-record logic serves both pipelines: the unfused path feeds them from
// sorted files (route, chooseBounds, splitEdges below), and the fused root
// feeds them straight from the sort's final merge (divideFused), which is
// what guarantees the two paths are bit-identical.

// divisionFanout returns the slab fan-out m for one division step. For
// pathologically small memories an auto-selected fan-out below 4 cannot
// guarantee that tied edge values straddle a quantile rank; clamp
// (documented deviation, ≤ 2 blocks of slack). An explicitly configured
// fan-out (ablation) is honored as-is.
func (s *task) divisionFanout() int {
	m := s.fanout()
	if m < 4 && s.cfg.Fanout == 0 {
		m = 4
	}
	return m
}

// boundsPicker streams the x-sorted edge-value multiset once and selects
// up to m−1 strictly increasing boundary values, each strictly inside the
// slab, splitting the multiset into roughly equal parts (the division
// criterion of §5.2.1 / Lemma 1). total must be the exact value count.
type boundsPicker struct {
	slab                     geom.Interval
	i, step, nextRank        int64
	bounds                   []float64
	minInterior, maxInterior float64
	haveInterior             bool
}

func newBoundsPicker(m int, total int64, slab geom.Interval) *boundsPicker {
	step := total / int64(m)
	if step < 1 {
		step = 1
	}
	return &boundsPicker{slab: slab, step: step, nextRank: step}
}

// add consumes the next edge value (ascending order).
func (bp *boundsPicker) add(v float64) {
	bp.i++
	interior := v > bp.slab.Lo && v < bp.slab.Hi && !math.IsInf(v, 0)
	if interior {
		if !bp.haveInterior {
			bp.minInterior, bp.maxInterior, bp.haveInterior = v, v, true
		} else {
			bp.maxInterior = v
		}
	}
	if bp.i == bp.nextRank {
		bp.nextRank += bp.step
		if !interior {
			return
		}
		if len(bp.bounds) == 0 || v > bp.bounds[len(bp.bounds)-1] {
			bp.bounds = append(bp.bounds, v)
		}
	}
}

// finish returns the selected boundaries. If every quantile rank landed on
// a border-valued edge it falls back to a single interior split so the
// recursion still progresses.
func (bp *boundsPicker) finish() []float64 {
	if len(bp.bounds) == 0 && bp.haveInterior {
		if bp.minInterior < bp.maxInterior {
			return []float64{bp.minInterior + (bp.maxInterior-bp.minInterior)/2}
		}
		return []float64{bp.minInterior}
	}
	return bp.bounds
}

// chooseBounds reads the node's x-sorted edge-value file once and returns
// the boundary values via a boundsPicker.
func (s *task) chooseBounds(n node) ([]float64, error) {
	total := em.RecordCount(n.edges, rec.Float64Codec{}.Size())
	if total == 0 {
		return nil, nil
	}
	bp := newBoundsPicker(s.divisionFanout(), total, n.slab)
	rr, err := em.NewRecordReader(n.edges, rec.Float64Codec{})
	if err != nil {
		return nil, err
	}
	batch := make([]float64, edgeBatch)
	for bp.i < total {
		k, err := rr.ReadBatch(batch)
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
		if k == 0 {
			return nil, fmt.Errorf("core: edge file ended at %d of %d values", bp.i, total)
		}
		for _, v := range batch[:k] {
			bp.add(v)
		}
	}
	return bp.finish(), nil
}

// slabLo returns the low x-boundary of child i under bounds within slab.
func slabLo(slab geom.Interval, bounds []float64, i int) float64 {
	if i == 0 {
		return slab.Lo
	}
	return bounds[i-1]
}

// slabHi returns the high x-boundary of child i under bounds within slab.
func slabHi(slab geom.Interval, bounds []float64, i int) float64 {
	if i == len(bounds) {
		return slab.Hi
	}
	return bounds[i]
}

// childOfPoint returns the child slab containing x: the number of bounds ≤ x.
func childOfPoint(bounds []float64, x float64) int {
	// sort.SearchFloat64s returns the count of bounds < x; add equals.
	i := sort.SearchFloat64s(bounds, x)
	for i < len(bounds) && bounds[i] == x {
		i++
	}
	return i
}

// childOfSup returns the child slab containing the supremum of [_, x): the
// number of bounds strictly below x.
func childOfSup(bounds []float64, x float64) int {
	return sort.SearchFloat64s(bounds, x)
}

// router is the division sink (§5.2.1): it distributes piece events into
// len(bounds)+1 child event files, diverting every fragment that spans a
// whole child slab into the spanning file R′. Event order (y) is preserved
// in every output file. It also tallies the clip counts (nLow, nHigh) the
// edge splitter needs.
type router struct {
	bounds []float64
	slab   geom.Interval

	childEvents  []*em.File
	eventWriters []*em.RecordWriter[rec.PieceEvent]
	spanning     *em.File
	spanWriter   *em.RecordWriter[rec.PieceEvent]

	counts []int64
	nLow   []int64 // right-fragment clips at each child's low bound
	nHigh  []int64 // left-fragment clips at each child's high bound
}

// newRouter allocates the child event files, the spanning file and their
// writers. On error every partial file is released.
func (s *task) newRouter(bounds []float64, slab geom.Interval) (_ *router, err error) {
	nc := len(bounds) + 1
	rt := &router{
		bounds:       bounds,
		slab:         slab,
		childEvents:  make([]*em.File, nc),
		eventWriters: make([]*em.RecordWriter[rec.PieceEvent], nc),
		counts:       make([]int64, nc),
		nLow:         make([]int64, nc),
		nHigh:        make([]int64, nc),
	}
	for i := range rt.childEvents {
		rt.childEvents[i] = s.env.NewFile()
	}
	rt.spanning = s.env.NewFile()
	defer func() {
		if err != nil {
			rt.abort()
		}
	}()
	for i := range rt.childEvents {
		w, err := em.NewRecordWriter(rt.childEvents[i], rec.PieceEventCodec{})
		if err != nil {
			return nil, err
		}
		rt.eventWriters[i] = w
	}
	rt.spanWriter, err = em.NewRecordWriter(rt.spanning, rec.PieceEventCodec{})
	if err != nil {
		return nil, err
	}
	return rt, nil
}

func (rt *router) emit(i int, e rec.PieceEvent, x1, x2 float64) error {
	e.R.X1, e.R.X2 = x1, x2
	rt.counts[i]++
	return rt.eventWriters[i].Write(e)
}

// add routes one piece event (ascending y order).
func (rt *router) add(e rec.PieceEvent) error {
	x1, x2 := e.R.X1, e.R.X2
	i := childOfPoint(rt.bounds, x1)
	j := childOfSup(rt.bounds, x2)
	leftSpan := x1 == slabLo(rt.slab, rt.bounds, i)
	rightSpan := x2 == slabHi(rt.slab, rt.bounds, j)
	if i == j {
		if leftSpan && rightSpan {
			// The fragment coincides with a whole child slab.
			spanEvent := e
			spanEvent.R.X1, spanEvent.R.X2 = x1, x2
			return rt.spanWriter.Write(spanEvent)
		}
		return rt.emit(i, e, x1, x2)
	}
	spanStart, spanEnd := i, j
	if !leftSpan {
		if err := rt.emit(i, e, x1, slabHi(rt.slab, rt.bounds, i)); err != nil {
			return err
		}
		rt.nHigh[i]++
		spanStart = i + 1
	}
	if !rightSpan {
		if err := rt.emit(j, e, slabLo(rt.slab, rt.bounds, j), x2); err != nil {
			return err
		}
		rt.nLow[j]++
		spanEnd = j - 1
	}
	if spanStart <= spanEnd {
		spanEvent := e
		spanEvent.R.X1 = slabLo(rt.slab, rt.bounds, spanStart)
		spanEvent.R.X2 = slabHi(rt.slab, rt.bounds, spanEnd)
		return rt.spanWriter.Write(spanEvent)
	}
	return nil
}

// finish seals every output file. On error the router's files are
// released.
func (rt *router) finish() (err error) {
	defer func() {
		if err != nil {
			rt.abort()
		}
	}()
	for _, w := range rt.eventWriters {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return rt.spanWriter.Close()
}

// abort releases the router's files (best effort, idempotent).
func (rt *router) abort() {
	for _, f := range rt.childEvents {
		_ = f.Release()
	}
	_ = rt.spanning.Release()
}

// route performs the division phase over the node's y-sorted event file,
// returning the child nodes (with their split edge files) and the spanning
// file. On error every partial output file is released.
func (s *task) route(n node, bounds []float64) (_ []node, _ *em.File, err error) {
	rt, err := s.newRouter(bounds, n.slab)
	if err != nil {
		return nil, nil, err
	}
	rr, err := em.NewRecordReader(n.events, rec.PieceEventCodec{})
	if err != nil {
		rt.abort()
		return nil, nil, err
	}
	batch := make([]rec.PieceEvent, eventBatch)
	for {
		k, rerr := rr.ReadBatch(batch)
		for _, e := range batch[:k] {
			if err := rt.add(e); err != nil {
				rt.abort()
				return nil, nil, err
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			rt.abort()
			return nil, nil, rerr
		}
	}
	if err := rt.finish(); err != nil {
		return nil, nil, err
	}
	childEdges, err := s.splitEdges(n, bounds, rt.nLow, rt.nHigh)
	if err != nil {
		rt.abort()
		return nil, nil, err
	}
	return assembleChildren(rt, childEdges, n.slab), rt.spanning, nil
}

// assembleChildren zips the router's event files with the split edge files
// into child nodes.
func assembleChildren(rt *router, childEdges []*em.File, slab geom.Interval) []node {
	children := make([]node, len(rt.childEvents))
	for i := range children {
		children[i] = node{
			events: rt.childEvents[i],
			edges:  childEdges[i],
			slab:   geom.Interval{Lo: slabLo(slab, rt.bounds, i), Hi: slabHi(slab, rt.bounds, i)},
			count:  rt.counts[i],
		}
	}
	return children
}

// edgeSplitter routes the parent's sorted edge values into per-child
// sorted files: nLow[i] copies of the child's low bound (written up
// front), then the parent values falling in the child's x-range, then
// nHigh[i] copies of the high bound (written by finish). The splice keeps
// each child's file sorted.
type edgeSplitter struct {
	bounds  []float64
	slab    geom.Interval
	files   []*em.File
	writers []*em.RecordWriter[float64]
	nHigh   []int64
}

// newEdgeSplitter allocates the per-child edge files and writes the
// low-bound prologue. On error every partial file is released.
func (s *task) newEdgeSplitter(bounds []float64, slab geom.Interval, nLow, nHigh []int64) (_ *edgeSplitter, err error) {
	nc := len(bounds) + 1
	es := &edgeSplitter{
		bounds:  bounds,
		slab:    slab,
		files:   make([]*em.File, nc),
		writers: make([]*em.RecordWriter[float64], nc),
		nHigh:   nHigh,
	}
	defer func() {
		if err != nil {
			es.abort()
		}
	}()
	for i := range es.files {
		es.files[i] = s.env.NewFile()
		w, err := em.NewRecordWriter(es.files[i], rec.Float64Codec{})
		if err != nil {
			return nil, err
		}
		es.writers[i] = w
		lo := slabLo(slab, bounds, i)
		if nLow[i] > 0 && math.IsInf(lo, 0) {
			return nil, fmt.Errorf("core: %d clips at infinite bound %g", nLow[i], lo)
		}
		for k := int64(0); k < nLow[i]; k++ {
			if err := w.Write(lo); err != nil {
				return nil, err
			}
		}
	}
	return es, nil
}

// add routes one parent edge value (ascending order).
func (es *edgeSplitter) add(v float64) error {
	return es.writers[childOfPoint(es.bounds, v)].Write(v)
}

// finish writes the high-bound epilogues, seals the files and returns
// them. On error every file is released.
func (es *edgeSplitter) finish() (_ []*em.File, err error) {
	defer func() {
		if err != nil {
			es.abort()
		}
	}()
	for i, w := range es.writers {
		hi := slabHi(es.slab, es.bounds, i)
		if es.nHigh[i] > 0 && math.IsInf(hi, 0) {
			return nil, fmt.Errorf("core: %d clips at infinite bound %g", es.nHigh[i], hi)
		}
		for k := int64(0); k < es.nHigh[i]; k++ {
			if err := w.Write(hi); err != nil {
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	return es.files, nil
}

// abort releases the splitter's files (best effort, idempotent).
func (es *edgeSplitter) abort() {
	for _, f := range es.files {
		if f != nil {
			_ = f.Release()
		}
	}
}

// splitEdges streams the node's x-sorted edge-value file through an
// edgeSplitter. On error every partial output file is released.
func (s *task) splitEdges(n node, bounds []float64, nLow, nHigh []int64) ([]*em.File, error) {
	es, err := s.newEdgeSplitter(bounds, n.slab, nLow, nHigh)
	if err != nil {
		return nil, err
	}
	rr, err := em.NewRecordReader(n.edges, rec.Float64Codec{})
	if err != nil {
		es.abort()
		return nil, err
	}
	batch := make([]float64, edgeBatch)
	for {
		k, rerr := rr.ReadBatch(batch)
		for _, v := range batch[:k] {
			if err := es.add(v); err != nil {
				es.abort()
				return nil, err
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			es.abort()
			return nil, rerr
		}
	}
	return es.finish()
}

// divideFused is the root division driven straight off the final merge of
// the two root sorts (merge→divide fusion, DESIGN.md §8). The sorted root
// event and edge files are never written or re-read: the events merge
// feeds the router directly, and the edges merge is replayed twice — once
// into the boundsPicker, once into the edgeSplitter — at the cost of
// re-reading the final merge level, which is never more expensive than the
// write+read+read of the sorted edge file it replaces. Every record
// reaches each sink in exactly the order the unfused path reads it from
// the sorted files, so the children, the recursion below them, and the
// result are bit-identical to Config.Unfused.
func (s *task) divideFused(evb *extsort.RunBuilder[rec.PieceEvent], edb *extsort.RunBuilder[float64]) (_ *em.File, err error) {
	count, countX := evb.Count(), edb.Count()
	evRuns, err := evb.Finish()
	if err != nil {
		edb.Discard()
		return nil, err
	}
	evm := extsort.NewMerger(s.env, evRuns, rec.PieceEventCodec{}, lessEventY, s.par)
	defer func() {
		if err != nil {
			_ = evm.Release()
		}
	}()
	edRuns, err := edb.Finish()
	if err != nil {
		return nil, err
	}
	edm := extsort.NewMerger(s.env, edRuns, rec.Float64Codec{}, lessFloat64, s.par)
	defer func() {
		if err != nil {
			_ = edm.Release()
		}
	}()
	if err := evm.Reduce(); err != nil {
		return nil, err
	}
	if err := edm.Reduce(); err != nil {
		return nil, err
	}

	slab := geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
	bp := newBoundsPicker(s.divisionFanout(), countX, slab)
	if err := edm.MergeInto(func(v float64) error { bp.add(v); return nil }); err != nil {
		return nil, err
	}
	bounds := bp.finish()
	if len(bounds) == 0 {
		// See solve: every edge value on the (infinite) root border is
		// impossible for finite inputs. Tripwire.
		return nil, fmt.Errorf("%w: no interior boundary in slab %v", ErrNoProgress, slab)
	}

	rt, err := s.newRouter(bounds, slab)
	if err != nil {
		return nil, err
	}
	if err := evm.MergeInto(rt.add); err != nil {
		rt.abort()
		return nil, err
	}
	if err := rt.finish(); err != nil {
		return nil, err
	}
	if err := evm.Release(); err != nil {
		rt.abort()
		return nil, err
	}

	es, err := s.newEdgeSplitter(bounds, slab, rt.nLow, rt.nHigh)
	if err != nil {
		rt.abort()
		return nil, err
	}
	if err := edm.MergeInto(es.add); err != nil {
		rt.abort()
		es.abort()
		return nil, err
	}
	childEdges, err := es.finish()
	if err != nil {
		rt.abort()
		return nil, err
	}
	if err := edm.Release(); err != nil {
		rt.abort()
		for _, f := range childEdges {
			_ = f.Release()
		}
		return nil, err
	}
	return s.conquer(assembleChildren(rt, childEdges, slab), rt.spanning, bounds, slab, count, 0)
}
