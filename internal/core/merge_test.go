package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

// handPartition splits rects at the given bounds within slab exactly like
// the division phase, but independently (no file machinery): it returns
// the non-spanning fragments per child and the spanning pieces.
func handPartition(rects []rec.WRect, slab geom.Interval, bounds []float64) (children [][]rec.WRect, spanning []rec.WRect) {
	children = make([][]rec.WRect, len(bounds)+1)
	for _, r := range rects {
		i := childOfPoint(bounds, r.X1)
		j := childOfSup(bounds, r.X2)
		leftSpan := r.X1 == slabLo(slab, bounds, i)
		rightSpan := r.X2 == slabHi(slab, bounds, j)
		if i == j {
			if leftSpan && rightSpan {
				spanning = append(spanning, r)
			} else {
				children[i] = append(children[i], r)
			}
			continue
		}
		spanStart, spanEnd := i, j
		if !leftSpan {
			lf := r
			lf.X2 = slabHi(slab, bounds, i)
			children[i] = append(children[i], lf)
			spanStart = i + 1
		}
		if !rightSpan {
			rf := r
			rf.X1 = slabLo(slab, bounds, j)
			children[j] = append(children[j], rf)
			spanEnd = j - 1
		}
		if spanStart <= spanEnd {
			sp := r
			sp.X1 = slabLo(slab, bounds, spanStart)
			sp.X2 = slabHi(slab, bounds, spanEnd)
			spanning = append(spanning, sp)
		}
	}
	return children, spanning
}

// runMergeSweep drives s.mergeSweep over hand-built child slab files and a
// spanning event file, returning the merged tuples.
func runMergeSweep(t *testing.T, s *Solver, slab geom.Interval, bounds []float64,
	children [][]rec.WRect, spanning []rec.WRect) []rec.Tuple {
	t.Helper()
	slabFiles := make([]*em.File, len(children))
	for i, frags := range children {
		childSlab := geom.Interval{Lo: slabLo(slab, bounds, i), Hi: slabHi(slab, bounds, i)}
		tuples := sweep.Slab(frags, childSlab)
		f, err := em.WriteAll(s.env.Disk, rec.TupleCodec{}, tuples)
		if err != nil {
			t.Fatal(err)
		}
		slabFiles[i] = f
	}
	var spanEvents []rec.PieceEvent
	for _, r := range spanning {
		b, top := rec.PieceEventsOf(r)
		spanEvents = append(spanEvents, b, top)
	}
	sort.SliceStable(spanEvents, func(a, b int) bool { return spanEvents[a].Y() < spanEvents[b].Y() })
	spanFile, err := em.WriteAll(s.env.Disk, rec.PieceEventCodec{}, spanEvents)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.task(nil, nil).mergeSweep(slabFiles, spanFile, bounds, slab)
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := em.ReadAll(out, rec.TupleCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return tuples
}

// locationWeightAt computes the brute-force location-weight at (x, y).
func locationWeightAt(rects []rec.WRect, x, y float64) float64 {
	var s float64
	for _, r := range rects {
		if x >= r.X1 && x < r.X2 && y >= r.Y1 && y < r.Y2 {
			s += r.W
		}
	}
	return s
}

// TestMergeSweepMatchesWholeSweep is the direct Algorithm 1 correctness
// test: hand-partition random rectangles into children + spanning pieces,
// build the child slab files with the independent in-memory sweep, merge,
// and verify every merged tuple against the whole-space sweep.
func TestMergeSweepMatchesWholeSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 30; trial++ {
		env := em.MustNewEnv(256, 4096)
		s := mustSolver(t, env, Config{})
		slab := geom.Interval{Lo: 0, Hi: 100}
		nb := rng.Intn(3) + 1
		boundSet := map[float64]bool{}
		for len(boundSet) < nb {
			boundSet[math.Floor(rng.Float64()*80)+10] = true
		}
		var bounds []float64
		for b := range boundSet {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)

		n := rng.Intn(60) + 5
		rects := make([]rec.WRect, n)
		for i := range rects {
			x := math.Floor(rng.Float64() * 90)
			y := math.Floor(rng.Float64() * 90)
			w := math.Floor(rng.Float64()*40) + 1
			h := math.Floor(rng.Float64()*20) + 1
			x2 := math.Min(x+w, 100)
			rects[i] = rec.WRect{X1: x, X2: x2, Y1: y, Y2: y + h, W: float64(rng.Intn(4) + 1)}
		}

		children, spanning := handPartition(rects, slab, bounds)
		merged := runMergeSweep(t, s, slab, bounds, children, spanning)
		want := sweep.Slab(rects, slab)

		// Every whole-space tuple must have a merged counterpart at the
		// same y with the same max sum.
		mergedAt := map[float64]rec.Tuple{}
		for _, m := range merged {
			mergedAt[m.Y] = m // last tuple at y wins; ys are distinct anyway
		}
		for _, wt := range want {
			m, ok := mergedAt[wt.Y]
			if !ok {
				t.Fatalf("trial %d: no merged tuple at y=%g", trial, wt.Y)
			}
			if m.Sum != wt.Sum {
				t.Fatalf("trial %d: at y=%g merged sum %g, want %g (bounds %v)",
					trial, wt.Y, m.Sum, wt.Sum, bounds)
			}
			// The merged interval must attain the sum just above the h-line.
			if m.X2 > m.X1 {
				px := m.X1 + (m.X2-m.X1)/2
				if math.IsInf(m.X1, -1) {
					px = m.X2 - 1e-3
				}
				if math.IsInf(m.X2, 1) {
					px = m.X1
				}
				if got := locationWeightAt(rects, px, wt.Y); got != m.Sum {
					t.Fatalf("trial %d: merged interval [%g,%g) at y=%g attains %g, claimed %g",
						trial, m.X1, m.X2, wt.Y, got, m.Sum)
				}
			}
		}
	}
}

// TestMergeSweepSpanningOnly exercises the degenerate division where every
// piece spans a child (all-identical rectangles): children are empty and
// the whole answer comes from upSum bookkeeping.
func TestMergeSweepSpanningOnly(t *testing.T) {
	env := em.MustNewEnv(256, 4096)
	s := mustSolver(t, env, Config{})
	slab := geom.Interval{Lo: 0, Hi: 100}
	bounds := []float64{20, 80}
	// Pieces exactly covering child 1 = [20, 80) at varying y.
	var spanning []rec.WRect
	for i := 0; i < 5; i++ {
		spanning = append(spanning, rec.WRect{
			X1: 20, X2: 80, Y1: float64(10 * i), Y2: float64(10*i + 25), W: 2,
		})
	}
	children := make([][]rec.WRect, 3)
	merged := runMergeSweep(t, s, slab, bounds, children, spanning)
	if len(merged) == 0 {
		t.Fatal("no merged tuples")
	}
	var best rec.Tuple
	for _, m := range merged {
		if m.Sum > best.Sum {
			best = m
		}
	}
	// At y in [20,25) three pieces overlap: sum 6.
	if best.Sum != 6 {
		t.Fatalf("best sum = %g, want 6", best.Sum)
	}
	if best.X1 != 20 || best.X2 != 80 {
		t.Fatalf("best interval [%g,%g), want [20,80)", best.X1, best.X2)
	}
}

// TestBestTupleMergesAdjacent checks GetMaxInterval's merge step: two
// adjacent children at the same effective sum with touching intervals
// produce one extended interval.
func TestBestTupleMergesAdjacent(t *testing.T) {
	slab := geom.Interval{Lo: 0, Hi: 100}
	bounds := []float64{50}
	tslab := []rec.Tuple{
		{Y: 1, X1: 30, X2: 50, Sum: 4}, // reaches its slab's right edge
		{Y: 1, X1: 50, X2: 70, Sum: 4}, // starts at its slab's left edge
	}
	upSum := []float64{0, 0}
	got := bestTuple(5, tslab, upSum, slab, bounds)
	if got.Sum != 4 || got.X1 != 30 || got.X2 != 70 {
		t.Fatalf("bestTuple = %+v, want [30,70) sum 4", got)
	}
	// Non-touching intervals with equal sums must NOT merge; the longer
	// run wins ([50,70) is 20 long vs [30,45) at 15).
	tslab[0].X2 = 45
	got = bestTuple(5, tslab, upSum, slab, bounds)
	if got.X1 != 50 || got.X2 != 70 {
		t.Fatalf("bestTuple = %+v, want longest [50,70)", got)
	}
	// Equal lengths: leftmost wins.
	tslab[1].X2 = 65
	got = bestTuple(5, tslab, upSum, slab, bounds)
	if got.X1 != 30 || got.X2 != 45 {
		t.Fatalf("bestTuple = %+v, want leftmost [30,45) on tie", got)
	}
	tslab[1].X2 = 70
	// upSum shifts the effective sums: child 1 wins outright.
	upSum[1] = 3
	got = bestTuple(5, tslab, upSum, slab, bounds)
	if got.Sum != 7 || got.X1 != 50 || got.X2 != 70 {
		t.Fatalf("bestTuple = %+v, want [50,70) sum 7", got)
	}
}
