package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"maxrs/internal/em"
	"maxrs/internal/geom"
)

// gaussObjects produces integer-coordinate objects from a clamped Gaussian
// so that, as with randObjects, float arithmetic is exact and comparable.
func gaussObjects(rng *rand.Rand, n int, coord float64) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		clamp := func(v float64) float64 {
			return math.Min(coord-1, math.Max(0, math.Floor(v)))
		}
		objs[i] = geom.Object{
			Point: geom.Point{
				X: clamp(coord/2 + rng.NormFloat64()*coord/8),
				Y: clamp(coord/2 + rng.NormFloat64()*coord/8),
			},
			W: float64(rng.Intn(9) + 1),
		}
	}
	return objs
}

// sameXObjects puts every object on one vertical line: after the §5.1
// transform every rectangle shares its x-extent, so every slab boundary
// lands on tied edge values and all pieces divert to spanning files — the
// degenerate extreme of the division phase.
func sameXObjects(rng *rand.Rand, n int) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.Object{
			Point: geom.Point{X: 500, Y: math.Floor(rng.Float64() * 10_000)},
			W:     float64(rng.Intn(9) + 1),
		}
	}
	return objs
}

// TestParallelEquivalence is the contract of DESIGN.md §6: for every
// workload shape and every Parallelism value, ExactMaxRS must return the
// same result and count exactly the same number of block transfers as the
// sequential schedule. Run under -race in CI, this doubles as the data-race
// test of the concurrent solver.
func TestParallelEquivalence(t *testing.T) {
	const n = 3000
	workloads := map[string][]geom.Object{
		"uniform":    randObjects(rand.New(rand.NewSource(42)), n, 40_000),
		"gaussian":   gaussObjects(rand.New(rand.NewSource(43)), n, 40_000),
		"all-same-x": sameXObjects(rand.New(rand.NewSource(44)), n),
	}
	parallelisms := []int{1, 2, runtime.GOMAXPROCS(0)}
	const w, h = 600, 600

	for name, objs := range workloads {
		var (
			baseRes   geom.Rect
			baseSum   float64
			baseTotal uint64
			haveBase  bool
		)
		for _, p := range parallelisms {
			// Small memory forces several recursion levels (capacity ≈ 49
			// events against 2n of them) so the worker pool really fans out.
			env := em.MustNewEnv(256, 2048)
			f := writeObjects(t, env, objs)
			s := mustSolver(t, env, Config{Parallelism: p})
			env.Disk.ResetStats()
			res, err := s.SolveObjects(f, w, h)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			total := env.Disk.Stats().Total()
			if !haveBase {
				baseRes, baseSum, baseTotal, haveBase = res.Region, res.Sum, total, true
				continue
			}
			if res.Region != baseRes || res.Sum != baseSum {
				t.Errorf("%s p=%d: result %+v sum %g differs from p=1 result %+v sum %g",
					name, p, res.Region, res.Sum, baseRes, baseSum)
			}
			if total != baseTotal {
				t.Errorf("%s p=%d: %d block transfers, want %d (same as p=1)",
					name, p, total, baseTotal)
			}
		}
	}
}

// TestParallelismValidation checks the Config contract.
func TestParallelismValidation(t *testing.T) {
	env := em.MustNewEnv(256, 2048)
	if _, err := NewSolver(env, Config{Parallelism: -1}); err == nil {
		t.Fatal("negative parallelism must be rejected")
	}
	for _, p := range []int{0, 1, 7} {
		if _, err := NewSolver(env, Config{Parallelism: p}); err != nil {
			t.Fatalf("parallelism %d rejected: %v", p, err)
		}
	}
}

// TestParallelOnFileBackedDisk runs the parallel solver against the OS-file
// backend, exercising the pooled scratch path of fileBackend.write under
// concurrency.
func TestParallelOnFileBackedDisk(t *testing.T) {
	d, err := em.NewFileBackedDisk(t.TempDir(), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	env := em.Env{Disk: d, M: 2048}
	objs := randObjects(rand.New(rand.NewSource(7)), 1500, 20_000)
	f := writeObjects(t, env, objs)
	s := mustSolver(t, env, Config{Parallelism: 4})
	res, err := s.SolveObjects(f, 500, 500)
	if err != nil {
		t.Fatal(err)
	}

	memEnv := em.MustNewEnv(256, 2048)
	memF := writeObjects(t, memEnv, objs)
	memS := mustSolver(t, memEnv, Config{Parallelism: 1})
	want, err := memS.SolveObjects(memF, 500, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Region != want.Region || res.Sum != want.Sum {
		t.Fatalf("file-backed parallel result %+v/%g != sequential in-memory %+v/%g",
			res.Region, res.Sum, want.Region, want.Sum)
	}
}
