// Package core implements ExactMaxRS (§5), the paper's primary
// contribution: the first external-memory algorithm for the MaxRS problem,
// I/O-optimal at O((N/B) log_{M/B}(N/B)) block transfers.
//
// # Structure
//
// The algorithm is the distribution-sweep divide and conquer of Algorithm 2:
//
//  1. Transform every object into its centered d1×d2 rectangle (§5.1).
//  2. Recursively divide the data space into m = Θ(M/B) vertical slabs so
//     that each slab receives roughly the same number of rectangle vertical
//     edges (Lemma 1). Rectangle pieces that span a whole sub-slab are
//     diverted to a per-node spanning file R′ and never recursed on.
//  3. When a sub-problem fits in memory, solve it with the in-memory plane
//     sweep (internal/sweep), emitting a slab file of max-interval tuples.
//  4. MergeSweep (Algorithm 1) zips the m child slab files and the spanning
//     file bottom-to-top into the parent's slab file.
//
// # Representation choices
//
// A recursion node's rectangle set is stored as an *event file*: two
// records per rectangle piece (bottom edge, top edge), each carrying the
// full piece geometry, kept sorted by y. Sorting by y is established once
// at the root and preserved by distribution, which makes every later pass
// — including the spanning files consumed by MergeSweep — a linear scan.
//
// Slab boundaries must split the *vertical edges* evenly (Lemma 1's
// termination argument), and the paper's input is x-sorted for that
// purpose. Because our piece files are y-sorted instead, every node also
// carries an x-sorted *edge-value file* holding the multiset of its
// pieces' vertical-edge x-coordinates; boundary quantiles are read off it
// in one linear pass, and it is split (order-preserving, with clipped
// boundary values inserted at the splice points) alongside the events.
// This keeps the whole recursion free of sorts below the root and
// preserves the optimal I/O bound.
//
// # Pass fusion
//
// By default the two ends of the root pipeline are fused (DESIGN.md §8):
// input records stream straight into sorted run formation
// (extsort.RunBuilder — no unsorted event/edge files are ever written or
// re-read), and the final merge of each root sort streams straight into
// the division sinks (extsort.Merger.MergeInto — no sorted root files are
// ever written or re-read). Config.Unfused restores the materializing
// pipeline; results are bit-identical either way, only the transfer count
// differs, and everything below the root is shared by both paths.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"maxrs/internal/em"
	"maxrs/internal/extsort"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

// maxDepth bounds the recursion. The divide phase shrinks every child
// geometrically, so real inputs stay far below this; it exists to convert
// a logic bug into an error instead of a hang.
const maxDepth = 200

// eventBatch and edgeBatch size the record batches of streaming read loops
// — roughly a block's worth, so the per-record reader round-trip is
// amortized without materially denting the M budget.
const (
	eventBatch = 128
	edgeBatch  = 512
)

// ErrNoProgress reports that a recursion step failed to shrink a
// sub-problem — impossible for valid inputs, kept as a tripwire.
var ErrNoProgress = errors.New("core: division made no progress")

// Config tunes ExactMaxRS. The zero value means "paper defaults".
type Config struct {
	// Fanout overrides the number of sub-slabs m per recursion step.
	// 0 selects the paper's m = Θ(M/B) (all memory blocks minus the
	// reader and spanning-writer buffers). Used by ablation benches.
	Fanout int

	// Parallelism bounds the worker goroutines used to solve independent
	// child slabs, form sort runs, and merge independent run groups
	// (DESIGN.md §6). 0 selects GOMAXPROCS; 1 is fully sequential
	// execution. The result and the counted block transfers are identical
	// for every value — the divide-and-conquer sub-problems are
	// independent and the transfer tally is order-free — so this knob
	// trades wall-clock time only.
	Parallelism int

	// Unfused disables the root pass fusion (DESIGN.md §8): the input is
	// materialized as unsorted event/edge files, externally sorted into
	// new files, and those are re-read for the root division — the
	// pre-fusion pipeline, kept for ablation and the fusion-equivalence
	// tests. Results are bit-identical either way; only the block-transfer
	// count changes (the fused default saves four full passes over the
	// event stream and at least two over the edge stream at the root).
	Unfused bool
}

// Solver runs ExactMaxRS instances under one EM environment.
//
// A Solver is safe for concurrent use: each Solve* call carries its own
// per-call state (a task below), while the shared worker-slot semaphore
// bounds the *total* extra goroutines across all in-flight solves at
// Parallelism−1. Slot acquisition never blocks — every call's own
// goroutine always makes progress inline — so concurrent solves cannot
// deadlock on the pool, they only share it.
type Solver struct {
	env em.Env
	cfg Config
	par int // resolved Parallelism (≥ 1)

	// sem holds the par−1 extra worker slots of one solver (the calling
	// goroutine is the implicit first worker). Acquisition never blocks:
	// when no slot is free the child is solved inline, which both bounds
	// concurrency and makes recursive fan-out deadlock-free.
	sem chan struct{}
}

// NewSolver validates the environment and returns a Solver.
func NewSolver(env em.Env, cfg Config) (*Solver, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if cfg.Fanout == 1 || cfg.Fanout < 0 {
		return nil, fmt.Errorf("core: fanout %d must be 0 (auto) or ≥ 2", cfg.Fanout)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("core: parallelism %d must be ≥ 0", cfg.Parallelism)
	}
	par := cfg.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return &Solver{env: env, cfg: cfg, par: par, sem: make(chan struct{}, par-1)}, nil
}

// tryAcquire claims a worker slot without blocking.
func (s *Solver) tryAcquire() bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a worker slot claimed by tryAcquire.
func (s *Solver) release() { <-s.sem }

// Env returns the solver's EM environment.
func (s *Solver) Env() em.Env { return s.env }

// task is the per-call state of one Solve* invocation: the shared Solver
// plus an env copy carrying the call's stat scope and cancellation
// context, so concurrent solves on one Solver charge their transfers to —
// and are cancelled by — their own query. The receiver name s is kept so
// the recursion reads the same as before; s.env (the task's scoped env)
// shadows the embedded Solver's unscoped env.
type task struct {
	*Solver
	env em.Env
	ctx context.Context
}

func (s *Solver) task(ctx context.Context, sc *em.ScopeStats) *task {
	if ctx == nil {
		ctx = context.Background()
	}
	return &task{Solver: s, env: s.env.WithScope(sc).WithContext(ctx), ctx: ctx}
}

// fanout returns m for the current configuration.
func (s *Solver) fanout() int {
	if s.cfg.Fanout > 1 {
		return s.cfg.Fanout
	}
	// One block for the input reader, one for the spanning writer, the
	// rest for the m child writers (division) / child readers (merge).
	m := s.env.MemBlocks() - 2
	if m < 2 {
		m = 2
	}
	return m
}

// capacity returns the number of event records that fit in memory — the
// base-case threshold |R| ≤ M of Algorithm 2.
func (s *Solver) capacity() int64 {
	return int64(s.env.M / rec.PieceEventCodec{}.Size())
}

// node is one sub-problem of the recursion.
type node struct {
	events *em.File // piece events, sorted by y (2 per piece)
	edges  *em.File // piece vertical-edge x values, sorted ascending
	slab   geom.Interval
	count  int64 // number of event records
}

// SolveObjects answers MaxRS for the objects in objFile with a w×h query
// rectangle: it transforms objects to rectangles (§5.1) and solves the
// transformed problem. The object file is not modified. Convenience form
// of SolveObjectsScoped with a background context and no stat scope.
func (s *Solver) SolveObjects(objFile *em.File, w, h float64) (sweep.Result, error) {
	return s.SolveObjectsScoped(context.Background(), objFile, w, h, nil)
}

// SolveObjectsScoped is SolveObjects with every block transfer of the call
// — including reads of objFile and all intermediate files — additionally
// charged to sc, enabling per-query I/O accounting under concurrency, and
// the whole solve bound to ctx: once ctx is cancelled, the recursion stops
// within one block-transfer's work (checks sit at every recursion node and
// on every stream), all intermediate files are released, and ctx.Err() is
// returned. A nil ctx never cancels.
func (s *Solver) SolveObjectsScoped(ctx context.Context, objFile *em.File, w, h float64, sc *em.ScopeStats) (sweep.Result, error) {
	if w <= 0 || h <= 0 {
		return sweep.Result{}, fmt.Errorf("core: query size %gx%g must be positive", w, h)
	}
	t := s.task(ctx, sc)
	rr, err := em.OpenRecordReader(t.env, objFile, rec.ObjectCodec{})
	if err != nil {
		return sweep.Result{}, err
	}
	return t.run(func() (rec.WRect, error) {
		o, err := rr.Read()
		if err != nil {
			return rec.WRect{}, err
		}
		return rec.FromObject(o, w, h), nil
	})
}

// SolveRects answers the transformed MaxRS problem (Definition 5) for an
// arbitrary weighted-rectangle file, e.g. circle MBRs from ApproxMaxCRS.
func (s *Solver) SolveRects(rectFile *em.File) (sweep.Result, error) {
	return s.SolveRectsScoped(context.Background(), rectFile, nil)
}

// SolveRectsScoped is SolveRects with per-call stat scoping and
// cancellation (see SolveObjectsScoped).
func (s *Solver) SolveRectsScoped(ctx context.Context, rectFile *em.File, sc *em.ScopeStats) (sweep.Result, error) {
	t := s.task(ctx, sc)
	rr, err := em.OpenRecordReader(t.env, rectFile, rec.WRectCodec{})
	if err != nil {
		return sweep.Result{}, err
	}
	return t.run(rr.Read)
}

// lessEventY orders piece events by sweep y — the root event sort order.
func lessEventY(a, b rec.PieceEvent) bool { return a.Y() < b.Y() }

// lessFloat64 is the root edge-value sort order.
func lessFloat64(a, b float64) bool { return a < b }

// run drains next() and solves the transformed problem on the configured
// pipeline: fused by default, materializing when Config.Unfused.
func (s *task) run(next func() (rec.WRect, error)) (sweep.Result, error) {
	if s.cfg.Unfused {
		events, edges, n, err := s.buildInput(next)
		if err != nil {
			return sweep.Result{}, err
		}
		return s.solveTransformed(events, edges, n)
	}
	return s.solveFused(next)
}

// resultOfSlabFile extracts the answer from the whole-space slab file and
// releases it on every path.
func resultOfSlabFile(slabFile *em.File) (sweep.Result, error) {
	defer slabFile.Release()
	res, err := BestOfSlabFile(slabFile)
	if err != nil {
		return sweep.Result{}, err
	}
	if err := slabFile.Release(); err != nil {
		return sweep.Result{}, err
	}
	return res, nil
}

func (s *task) solveTransformed(events, edges *em.File, count int64) (sweep.Result, error) {
	slabFile, err := s.slabFileOf(events, edges, count)
	if err != nil {
		return sweep.Result{}, err
	}
	return resultOfSlabFile(slabFile)
}

// solveFused is the fused pipeline (DESIGN.md §8): records stream from
// next() straight into sorted run formation — the unsorted event and edge
// files of buildInput are never written or re-read — and, when the input
// exceeds memory, the root sorts' final merges stream straight into the
// division (divideFused), so the sorted root files are never materialized
// either. Everything below the root is the shared recursion, and every
// sink consumes the exact record sequence the unfused path reads from its
// files, so results are bit-identical to Config.Unfused at every
// Parallelism.
func (s *task) solveFused(next func() (rec.WRect, error)) (_ sweep.Result, err error) {
	evb, err := extsort.NewRunBuilder(s.env, rec.PieceEventCodec{}, lessEventY, s.par)
	if err != nil {
		return sweep.Result{}, err
	}
	edb, err := extsort.NewRunBuilder(s.env, rec.Float64Codec{}, lessFloat64, s.par)
	if err != nil {
		evb.Discard()
		return sweep.Result{}, err
	}
	defer func() {
		if err != nil {
			evb.Discard()
			edb.Discard()
		}
	}()
	err = forEachRect(next, func(r rec.WRect) error {
		bottom, top := rec.PieceEventsOf(r)
		if err := evb.Add(bottom); err != nil {
			return err
		}
		if err := evb.Add(top); err != nil {
			return err
		}
		// Two copies of each vertical edge — one per event record — so the
		// edge-file invariant (two values per piece edge) is uniform across
		// recursion levels.
		for i := 0; i < 2; i++ {
			if err := edb.Add(r.X1); err != nil {
				return err
			}
			if err := edb.Add(r.X2); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return sweep.Result{}, err
	}
	var slabFile *em.File
	if evb.Count() <= s.capacity() {
		slabFile, err = s.baseCaseResident(evb, edb)
	} else {
		slabFile, err = s.divideFused(evb, edb)
	}
	if err != nil {
		return sweep.Result{}, err
	}
	return resultOfSlabFile(slabFile)
}

// baseCaseResident handles a root problem that fits in memory. The event
// run buffer cannot have spilled (capacity equals the events-per-run
// bound, and the edge buffer is strictly smaller than its own), so the
// resident events are sorted in place — the same stable sort, comparator
// and input order as the run the unfused path would spill — and swept
// without any event, edge, or sorted file ever touching the disk.
func (s *task) baseCaseResident(evb *extsort.RunBuilder[rec.PieceEvent], edb *extsort.RunBuilder[float64]) (*em.File, error) {
	events, err := evb.Take()
	if err != nil {
		return nil, err
	}
	edb.Discard()
	sort.SliceStable(events, func(i, j int) bool { return lessEventY(events[i], events[j]) })
	rects := make([]rec.WRect, 0, len(events)/2)
	for _, e := range events {
		if e.Top {
			continue // the bottom event carries the full geometry
		}
		rects = append(rects, e.R)
	}
	slab := geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
	return s.writeSlab(sweep.Slab(rects, slab))
}

// slabFileOf sorts the freshly built input files and runs the recursion,
// returning the final whole-space slab file. Input files are consumed on
// every path, including errors.
func (s *task) slabFileOf(events, edges *em.File, count int64) (*em.File, error) {
	defer events.Release()
	defer edges.Release()
	sortedEvents, err := extsort.SortP(s.env, events, rec.PieceEventCodec{},
		func(a, b rec.PieceEvent) bool { return a.Y() < b.Y() }, s.par)
	if err != nil {
		return nil, err
	}
	if err := events.Release(); err != nil {
		_ = sortedEvents.Release()
		return nil, err
	}
	sortedEdges, err := extsort.SortP(s.env, edges, rec.Float64Codec{},
		func(a, b float64) bool { return a < b }, s.par)
	if err != nil {
		_ = sortedEvents.Release()
		return nil, err
	}
	if err := edges.Release(); err != nil {
		_ = sortedEvents.Release()
		_ = sortedEdges.Release()
		return nil, err
	}
	root := node{
		events: sortedEvents,
		edges:  sortedEdges,
		slab:   geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
		count:  count,
	}
	return s.solve(root, 0)
}

// forEachRect drains next() until io.EOF, passing every non-degenerate
// rectangle to emit — the input iteration shared by both pipelines.
func forEachRect(next func() (rec.WRect, error), emit func(rec.WRect) error) error {
	for {
		r, err := next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if r.X1 >= r.X2 || r.Y1 >= r.Y2 {
			continue // degenerate rectangle covers nothing
		}
		if err := emit(r); err != nil {
			return err
		}
	}
}

// buildInput drains next() until io.EOF, writing two events and four edge
// values per rectangle (unsorted) — the materializing front end of the
// Config.Unfused pipeline. On error the partial outputs are released.
func (s *task) buildInput(next func() (rec.WRect, error)) (_, _ *em.File, _ int64, err error) {
	events := s.env.NewFile()
	edges := s.env.NewFile()
	defer func() {
		if err != nil {
			_ = events.Release()
			_ = edges.Release()
		}
	}()
	var count int64
	ew, err := em.NewRecordWriter(events, rec.PieceEventCodec{})
	if err != nil {
		return nil, nil, 0, err
	}
	xw, err := em.NewRecordWriter(edges, rec.Float64Codec{})
	if err != nil {
		return nil, nil, 0, err
	}
	err = forEachRect(next, func(r rec.WRect) error {
		bottom, top := rec.PieceEventsOf(r)
		if err := ew.Write(bottom); err != nil {
			return err
		}
		if err := ew.Write(top); err != nil {
			return err
		}
		// Two copies of each vertical edge — one per event record — so the
		// edge-file invariant (two values per piece edge) is uniform across
		// recursion levels.
		for i := 0; i < 2; i++ {
			if err := xw.Write(r.X1); err != nil {
				return err
			}
			if err := xw.Write(r.X2); err != nil {
				return err
			}
		}
		count += 2
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	if err := ew.Close(); err != nil {
		return nil, nil, 0, err
	}
	if err := xw.Close(); err != nil {
		return nil, nil, 0, err
	}
	return events, edges, count, nil
}

// release frees the node's input files (best effort, for error paths).
func (n node) release() {
	_ = n.events.Release()
	_ = n.edges.Release()
}

// solve is Algorithm 2: recursive divide, conquer, MergeSweep. The node's
// input files are consumed on every path — success or error — as are all
// intermediates, so a failed solve leaves no blocks allocated.
func (s *task) solve(n node, depth int) (*em.File, error) {
	if depth > maxDepth {
		n.release()
		return nil, fmt.Errorf("%w: depth %d exceeded", ErrNoProgress, depth)
	}
	// One cancellation check per recursion node, on top of the per-block
	// checks inside every stream: a cancelled query unwinds here with its
	// input files released, and conquer's error path frees the rest.
	if err := s.ctx.Err(); err != nil {
		n.release()
		return nil, err
	}
	if n.count <= s.capacity() {
		return s.baseCase(n)
	}
	bounds, err := s.chooseBounds(n)
	if err != nil {
		n.release()
		return nil, err
	}
	if len(bounds) == 0 {
		// No usable split point: every edge value sits on the slab border,
		// which would mean every piece spans the slab — impossible because
		// such pieces are diverted to R′ by the parent. Tripwire.
		n.release()
		return nil, fmt.Errorf("%w: no interior boundary in slab %v", ErrNoProgress, n.slab)
	}
	children, spanning, err := s.route(n, bounds)
	if err != nil {
		n.release()
		return nil, err
	}
	releaseChildren := func() {
		for _, c := range children {
			c.release()
		}
		_ = spanning.Release()
	}
	if err := n.events.Release(); err != nil {
		releaseChildren()
		_ = n.edges.Release()
		return nil, err
	}
	if err := n.edges.Release(); err != nil {
		releaseChildren()
		return nil, err
	}
	return s.conquer(children, spanning, bounds, n.slab, n.count, depth)
}

// conquer solves the child nodes — in parallel where pool slots allow —
// and MergeSweeps their slab files with the spanning file into the
// parent's slab file. It consumes the children's input files and the
// spanning file on every path; parentCount drives the progress tripwire.
// Both the recursive divide (solve) and the fused root (divideFused) end
// here.
func (s *task) conquer(children []node, spanning *em.File, bounds []float64, slab geom.Interval, parentCount int64, depth int) (*em.File, error) {
	releaseChildren := func() {
		for _, c := range children {
			c.release()
		}
		_ = spanning.Release()
	}
	// The progress tripwire runs for every child before any is solved:
	// returning mid-spawn would orphan goroutines still using the disk.
	for i, c := range children {
		if c.count >= parentCount {
			releaseChildren()
			return nil, fmt.Errorf("%w: child %d kept all %d events", ErrNoProgress, i, parentCount)
		}
	}
	// Child slabs are fully independent sub-problems (they share only the
	// concurrency-safe Disk), so they run on the solver's worker pool. A
	// free slot spawns a goroutine; otherwise the child is solved inline —
	// Parallelism=1 reproduces the sequential schedule exactly.
	slabFiles := make([]*em.File, len(children))
	childErrs := make([]error, len(children))
	var wg sync.WaitGroup
	for i, c := range children {
		if s.tryAcquire() {
			wg.Add(1)
			go func(i int, c node) {
				defer wg.Done()
				defer s.release()
				slabFiles[i], childErrs[i] = s.solve(c, depth+1)
			}(i, c)
		} else {
			slabFiles[i], childErrs[i] = s.solve(c, depth+1)
		}
	}
	wg.Wait()
	releaseSlabs := func() {
		for _, sf := range slabFiles {
			if sf != nil {
				_ = sf.Release()
			}
		}
		_ = spanning.Release()
	}
	for _, err := range childErrs {
		if err != nil {
			// Each failed child consumed its own inputs; free the slab files
			// of the children that succeeded.
			releaseSlabs()
			return nil, err
		}
	}
	out, err := s.mergeSweep(slabFiles, spanning, bounds, slab)
	if err != nil {
		releaseSlabs()
		return nil, err
	}
	for _, sf := range slabFiles {
		if err := sf.Release(); err != nil {
			releaseSlabs()
			_ = out.Release()
			return nil, err
		}
	}
	if err := spanning.Release(); err != nil {
		_ = out.Release()
		return nil, err
	}
	return out, nil
}

// baseCase loads a memory-sized node and runs the in-memory plane sweep
// (Algorithm 2 line 9), writing the node's slab file. The node's input
// files are consumed on every path; on error the partial output is
// released too.
func (s *task) baseCase(n node) (_ *em.File, err error) {
	defer func() {
		if err != nil {
			n.release()
		}
	}()
	rr, err := em.NewRecordReader(n.events, rec.PieceEventCodec{})
	if err != nil {
		return nil, err
	}
	rects := make([]rec.WRect, 0, n.count/2)
	batch := make([]rec.PieceEvent, eventBatch)
	for {
		k, err := rr.ReadBatch(batch)
		for _, e := range batch[:k] {
			if e.Top {
				continue // the bottom event carries the full geometry
			}
			rects = append(rects, e.R)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
	}
	out, err := s.writeSlab(sweep.Slab(rects, n.slab))
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			_ = out.Release()
		}
	}()
	if err := n.events.Release(); err != nil {
		return nil, err
	}
	if err := n.edges.Release(); err != nil {
		return nil, err
	}
	return out, nil
}

// writeSlab materializes one node's slab file from its sweep tuples,
// releasing the partial output on error.
func (s *task) writeSlab(tuples []rec.Tuple) (_ *em.File, err error) {
	out := s.env.NewFile()
	defer func() {
		if err != nil {
			_ = out.Release()
		}
	}()
	tw, err := em.NewRecordWriter(out, rec.TupleCodec{})
	if err != nil {
		return nil, err
	}
	if err := tw.WriteBatch(tuples); err != nil {
		return nil, err
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// BestOfSlabFile streams a whole-space slab file and returns the
// max-region: the strip of the best tuple, extended up to the next tuple's
// h-line (§5.2.4, "we can find the max-region by comparing sum values of
// tuples trivially").
func BestOfSlabFile(slabFile *em.File) (sweep.Result, error) {
	rr, err := em.NewRecordReader(slabFile, rec.TupleCodec{})
	if err != nil {
		return sweep.Result{}, err
	}
	best := sweep.Result{Region: geom.Rect{
		X: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
		Y: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
	}}
	first := true
	havePending := false // best awaits its strip's top y (the next tuple's y)
	for {
		t, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return sweep.Result{}, err
		}
		if havePending {
			best.Region.Y.Hi = t.Y
			havePending = false
		}
		if first || t.Sum > best.Sum {
			best = sweep.Result{
				Region: geom.Rect{
					X: geom.Interval{Lo: t.X1, Hi: t.X2},
					Y: geom.Interval{Lo: t.Y, Hi: math.Inf(1)},
				},
				Sum: t.Sum,
			}
			havePending = true
			first = false
		}
	}
	return best, nil
}
