package core

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

// buildNode creates a root-style node from rectangles for direct testing
// of the division machinery.
func buildNode(t *testing.T, s *Solver, rects []rec.WRect) node {
	t.Helper()
	i := 0
	events, edges, count, err := s.task(nil, nil).buildInput(func() (rec.WRect, error) {
		if i == len(rects) {
			return rec.WRect{}, io.EOF
		}
		r := rects[i]
		i++
		return r, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sortedEvents, err := sortEventsForTest(s, events)
	if err != nil {
		t.Fatal(err)
	}
	sortedEdges, err := sortEdgesForTest(s, edges)
	if err != nil {
		t.Fatal(err)
	}
	return node{
		events: sortedEvents,
		edges:  sortedEdges,
		slab:   geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
		count:  count,
	}
}

func sortEventsForTest(s *Solver, f *em.File) (*em.File, error) {
	evs, err := em.ReadAll(f, rec.PieceEventCodec{})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Y() < evs[j-1].Y(); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	if err := f.Release(); err != nil {
		return nil, err
	}
	return em.WriteAll(s.env.Disk, rec.PieceEventCodec{}, evs)
}

func sortEdgesForTest(s *Solver, f *em.File) (*em.File, error) {
	xs, err := em.ReadAll(f, rec.Float64Codec{})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	if err := f.Release(); err != nil {
		return nil, err
	}
	return em.WriteAll(s.env.Disk, rec.Float64Codec{}, xs)
}

func randRectsForDivide(rng *rand.Rand, n int) []rec.WRect {
	rects := make([]rec.WRect, n)
	for i := range rects {
		x := math.Floor(rng.Float64() * 100)
		y := math.Floor(rng.Float64() * 100)
		w := math.Floor(rng.Float64()*20) + 1
		h := math.Floor(rng.Float64()*20) + 1
		rects[i] = rec.WRect{X1: x, X2: x + w, Y1: y, Y2: y + h, W: 1}
	}
	return rects
}

func TestChooseBoundsProperties(t *testing.T) {
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	rng := rand.New(rand.NewSource(50))
	n := buildNode(t, s, randRectsForDivide(rng, 100))
	bounds, err := s.task(nil, nil).chooseBounds(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) == 0 {
		t.Fatal("no bounds chosen for a 100-rect node")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			t.Fatalf("bound %d not finite: %g", i, b)
		}
		if i > 0 && bounds[i-1] >= b {
			t.Fatalf("bounds not strictly increasing: %v", bounds)
		}
		if !(b > n.slab.Lo && b < n.slab.Hi) {
			t.Fatalf("bound %g outside slab %v", b, n.slab)
		}
	}
	if got, max := len(bounds), s.fanout(); got > max {
		t.Fatalf("%d bounds exceed fanout %d", got, max)
	}
}

func TestChooseBoundsEmptyEdgeFile(t *testing.T) {
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	empty := em.NewFile(env.Disk)
	n := node{events: em.NewFile(env.Disk), edges: empty,
		slab: geom.Interval{Lo: 0, Hi: 10}}
	bounds, err := s.task(nil, nil).chooseBounds(n)
	if err != nil {
		t.Fatal(err)
	}
	if bounds != nil {
		t.Fatalf("bounds for empty node: %v", bounds)
	}
}

// Routing invariants: every child's events stay y-sorted and inside the
// child's slab; the total geometry (per y-strip coverage) is conserved
// between parent and children+spanning.
func TestRouteInvariants(t *testing.T) {
	env := em.MustNewEnv(128, 2048)
	s := mustSolver(t, env, Config{})
	rng := rand.New(rand.NewSource(51))
	rects := randRectsForDivide(rng, 200)
	n := buildNode(t, s, rects)
	bounds, err := s.task(nil, nil).chooseBounds(n)
	if err != nil {
		t.Fatal(err)
	}
	children, spanning, err := s.task(nil, nil).route(n, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != len(bounds)+1 {
		t.Fatalf("children = %d, want %d", len(children), len(bounds)+1)
	}
	var totalChildEvents int64
	for i, c := range children {
		evs, err := em.ReadAll(c.events, rec.PieceEventCodec{})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(evs)) != c.count {
			t.Fatalf("child %d count %d, file has %d", i, c.count, len(evs))
		}
		totalChildEvents += c.count
		lastY := math.Inf(-1)
		for _, e := range evs {
			if e.Y() < lastY {
				t.Fatalf("child %d events out of y order", i)
			}
			lastY = e.Y()
			if e.R.X1 < c.slab.Lo || e.R.X2 > c.slab.Hi {
				t.Fatalf("child %d fragment [%g,%g) escapes slab %v",
					i, e.R.X1, e.R.X2, c.slab)
			}
			if e.R.X1 == c.slab.Lo && e.R.X2 == c.slab.Hi {
				t.Fatalf("child %d holds a spanning fragment [%g,%g)", i, e.R.X1, e.R.X2)
			}
		}
	}
	spans, err := em.ReadAll(spanning, rec.PieceEventCodec{})
	if err != nil {
		t.Fatal(err)
	}
	lastY := math.Inf(-1)
	for _, e := range spans {
		if e.Y() < lastY {
			t.Fatal("spanning events out of y order")
		}
		lastY = e.Y()
		// Spanning parts must exactly tile whole child slabs.
		a := childOfPoint(bounds, e.R.X1)
		b := childOfSup(bounds, e.R.X2)
		if e.R.X1 != slabLo(n.slab, bounds, a) || e.R.X2 != slabHi(n.slab, bounds, b) {
			t.Fatalf("spanning part [%g,%g) not aligned to slab boundaries", e.R.X1, e.R.X2)
		}
	}

	// Mass conservation: total (area × weight) of fragments equals the
	// parent's. Bottom events only, to count each piece once.
	mass := func(evs []rec.PieceEvent) float64 {
		var m float64
		for _, e := range evs {
			if e.Top {
				continue
			}
			m += (e.R.X2 - e.R.X1) * (e.R.Y2 - e.R.Y1) * e.R.W
		}
		return m
	}
	var childMass float64
	for _, c := range children {
		evs, err := em.ReadAll(c.events, rec.PieceEventCodec{})
		if err != nil {
			t.Fatal(err)
		}
		childMass += mass(evs)
	}
	childMass += mass(spans)
	var parentMass float64
	for _, r := range rects {
		parentMass += (r.X2 - r.X1) * (r.Y2 - r.Y1) * r.W
	}
	if math.Abs(childMass-parentMass) > 1e-6*parentMass {
		t.Fatalf("mass not conserved: parent %g, children+spanning %g",
			parentMass, childMass)
	}
}

func TestChildOfPointAndSup(t *testing.T) {
	bounds := []float64{10, 20, 30}
	cases := []struct {
		x         float64
		point, up int
	}{
		{5, 0, 0},
		{10, 1, 0}, // at a boundary: point belongs right, sup belongs left
		{15, 1, 1},
		{20, 2, 1},
		{30, 3, 2},
		{35, 3, 3},
	}
	for _, c := range cases {
		if got := childOfPoint(bounds, c.x); got != c.point {
			t.Errorf("childOfPoint(%g) = %d, want %d", c.x, got, c.point)
		}
		if got := childOfSup(bounds, c.x); got != c.up {
			t.Errorf("childOfSup(%g) = %d, want %d", c.x, got, c.up)
		}
	}
}

func TestSlabBounds(t *testing.T) {
	slab := geom.Interval{Lo: 0, Hi: 100}
	bounds := []float64{25, 50}
	wantLo := []float64{0, 25, 50}
	wantHi := []float64{25, 50, 100}
	for i := 0; i < 3; i++ {
		if got := slabLo(slab, bounds, i); got != wantLo[i] {
			t.Errorf("slabLo(%d) = %g, want %g", i, got, wantLo[i])
		}
		if got := slabHi(slab, bounds, i); got != wantHi[i] {
			t.Errorf("slabHi(%d) = %g, want %g", i, got, wantHi[i])
		}
	}
}

func TestNoProgressTripwire(t *testing.T) {
	// Directly exercise the maxDepth guard.
	env := em.MustNewEnv(128, 1024)
	s := mustSolver(t, env, Config{})
	n := node{events: em.NewFile(env.Disk), edges: em.NewFile(env.Disk),
		slab: geom.Interval{Lo: 0, Hi: 1}, count: 1 << 40}
	if _, err := s.task(nil, nil).solve(n, maxDepth+1); !errors.Is(err, ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
}
