package shard

import (
	"context"
	"errors"
	"math"
	"testing"

	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/workload"
)

const (
	testBlock = 512
	testMem   = 8 * 1024 // small enough that a few thousand objects go external
)

// solveUnsharded is the reference: one ExactMaxRS over the whole file.
func solveUnsharded(t *testing.T, env em.Env, f *em.File, w, h float64) (res struct {
	Sum    float64
	Region geom.Rect
}) {
	t.Helper()
	solver, err := core.NewSolver(env, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := solver.SolveObjects(f, w, h)
	if err != nil {
		t.Fatal(err)
	}
	res.Sum = r.Sum
	res.Region = r.Region
	return res
}

func writeObjects(t *testing.T, env em.Env, objs []geom.Object) *em.File {
	t.Helper()
	f, err := workload.Write(env.Disk, objs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestEquivalenceAcrossShardCounts is the core exactness gate: for the
// paper's Uniform and Gaussian workloads, the sharded solve returns the
// same optimal score as the unsharded solver at every shard count, and
// the winning candidate's score is bit-identical (unit weights make every
// partial sum exact).
func TestEquivalenceAcrossShardCounts(t *testing.T) {
	workloads := map[string][]geom.Object{
		"uniform":  workload.Uniform(7, 3000, 12000),
		"gaussian": workload.Gaussian(7, 3000, 12000),
	}
	for name, objs := range workloads {
		t.Run(name, func(t *testing.T) {
			env := em.MustNewEnv(testBlock, testMem)
			defer env.Disk.Close()
			f := writeObjects(t, env, objs)
			defer f.Release()
			const edge = 480.0
			want := solveUnsharded(t, env, f, edge, edge)
			if want.Sum <= 0 {
				t.Fatalf("degenerate reference score %g", want.Sum)
			}
			for _, k := range []int{1, 2, 4, 8} {
				res, err := SolveObjects(context.Background(), env, f, edge, edge, Config{Shards: k})
				if err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				if res.Res.Sum != want.Sum {
					t.Errorf("K=%d: score %g, want %g", k, res.Res.Sum, want.Sum)
				}
				if len(res.Shards) > k {
					t.Errorf("K=%d: %d effective shards", k, len(res.Shards))
				}
				var routed int64
				for _, sh := range res.Shards {
					routed += sh.Objects
				}
				if routed < int64(len(objs)) {
					t.Errorf("K=%d: only %d of %d objects routed", k, routed, len(objs))
				}
			}
		})
	}
}

// TestSingleShardBitIdentical: the degenerate K=1 shard is a verbatim
// copy of the input file, so its solve must match the unsharded solver
// bit for bit — region included.
func TestSingleShardBitIdentical(t *testing.T) {
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	objs := workload.Uniform(11, 2500, 10000)
	f := writeObjects(t, env, objs)
	defer f.Release()
	want := solveUnsharded(t, env, f, 300, 300)
	res, err := SolveObjects(context.Background(), env, f, 300, 300, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.Sum != want.Sum || res.Res.Region != want.Region {
		t.Fatalf("K=1 differs: got %+v sum %g, want %+v sum %g",
			res.Res.Region, res.Res.Sum, want.Region, want.Sum)
	}
	if len(res.Shards) != 1 || res.Winner != 0 {
		t.Fatalf("K=1: %d shards, winner %d", len(res.Shards), res.Winner)
	}
	if res.Shards[0].Objects != int64(len(objs)) {
		t.Fatalf("K=1 shard holds %d objects, want %d", res.Shards[0].Objects, len(objs))
	}
}

// TestStraddlingOptimum forces the optimal rectangle across a shard
// boundary: a symmetric cluster around x=500 puts the K=2 boundary (the
// x-median) in the middle of the best placement, so only halo duplication
// can keep the score exact.
func TestStraddlingOptimum(t *testing.T) {
	var objs []geom.Object
	// 20 points tightly clustered around (500, 100): the unique optimum
	// for a 30×30 query covers all of them, straddling x=500.
	for i := 0; i < 10; i++ {
		d := float64(i + 1)
		objs = append(objs,
			geom.Object{Point: geom.Point{X: 500 - d, Y: 100 - d/2}, W: 1},
			geom.Object{Point: geom.Point{X: 500 + d, Y: 100 + d/2}, W: 1},
		)
	}
	// Background noise far away, spread over x so boundaries land mid-cluster.
	bg := workload.Uniform(3, 400, 1000)
	for _, o := range bg {
		o.Y += 5000 // same x spread, y far from the cluster
		objs = append(objs, o)
	}
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	f := writeObjects(t, env, objs)
	defer f.Release()
	want := solveUnsharded(t, env, f, 30, 30)
	if want.Sum != 20 {
		t.Fatalf("reference score %g, want the full 20-point cluster", want.Sum)
	}
	for _, k := range []int{2, 3, 5, 8} {
		res, err := SolveObjects(context.Background(), env, f, 30, 30, Config{Shards: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if res.Res.Sum != want.Sum {
			t.Errorf("K=%d: score %g, want %g (optimum straddles a boundary)", k, res.Res.Sum, want.Sum)
		}
		best := res.Res.Region.Center()
		if math.Abs(best.X-500) > 15 || math.Abs(best.Y-100) > 15 {
			t.Errorf("K=%d: optimum at %v, want near (500, 100)", k, best)
		}
	}
}

// TestMoreShardsThanDistinctX: boundary deduplication must absorb a shard
// count exceeding the number of distinct x-coordinates instead of
// producing degenerate empty slabs or failing.
func TestMoreShardsThanDistinctX(t *testing.T) {
	var objs []geom.Object
	for i := 0; i < 60; i++ {
		objs = append(objs, geom.Object{
			Point: geom.Point{X: float64(i%3) * 10, Y: float64(i)},
			W:     1,
		})
	}
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	f := writeObjects(t, env, objs)
	defer f.Release()
	want := solveUnsharded(t, env, f, 25, 8)
	for _, k := range []int{4, 8, 16} {
		res, err := SolveObjects(context.Background(), env, f, 25, 8, Config{Shards: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if res.Res.Sum != want.Sum {
			t.Errorf("K=%d: score %g, want %g", k, res.Res.Sum, want.Sum)
		}
		if len(res.Shards) > 3 {
			t.Errorf("K=%d: %d effective shards from 3 distinct x values", k, len(res.Shards))
		}
	}
}

// TestWeightedEquivalence: with arbitrary float weights the winning
// shard sums the same weights as the reference but possibly in another
// order, so equality is asserted to a relative tolerance.
func TestWeightedEquivalence(t *testing.T) {
	objs := workload.Uniform(19, 2000, 8000)
	for i := range objs {
		objs[i].W = 0.25 + float64((i*2654435761)%1000)/997.0
	}
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	f := writeObjects(t, env, objs)
	defer f.Release()
	want := solveUnsharded(t, env, f, 400, 400)
	for _, k := range []int{2, 4, 8} {
		res, err := SolveObjects(context.Background(), env, f, 400, 400, Config{Shards: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if rel := math.Abs(res.Res.Sum-want.Sum) / want.Sum; rel > 1e-12 {
			t.Errorf("K=%d: score %g vs %g (rel %g)", k, res.Res.Sum, want.Sum, rel)
		}
	}
}

// TestWideQueryReplicatesEverywhere: a halo wider than the data extent
// routes every object into every shard — maximum duplication, still
// exact.
func TestWideQueryReplicatesEverywhere(t *testing.T) {
	objs := workload.Uniform(23, 500, 100)
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	f := writeObjects(t, env, objs)
	defer f.Release()
	res, err := SolveObjects(context.Background(), env, f, 1000, 1000, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.Sum != float64(len(objs)) {
		t.Fatalf("score %g, want all %d objects covered", res.Res.Sum, len(objs))
	}
	for i, sh := range res.Shards {
		if sh.Objects != int64(len(objs)) {
			t.Errorf("shard %d holds %d objects, want all %d (halo spans the space)", i, sh.Objects, len(objs))
		}
	}
}

// TestEmptyDataset: zero objects collapse to one empty shard and a zero
// score, like the unsharded solver.
func TestEmptyDataset(t *testing.T) {
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	f := writeObjects(t, env, nil)
	defer f.Release()
	res, err := SolveObjects(context.Background(), env, f, 10, 10, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.Sum != 0 {
		t.Fatalf("score %g on empty dataset", res.Res.Sum)
	}
	if len(res.Shards) != 1 {
		t.Fatalf("%d shards on empty dataset, want 1", len(res.Shards))
	}
}

// TestNoLeaksOnPrimaryDisk: a sharded solve must leave the primary disk
// exactly as it found it — only the dataset's own blocks live.
func TestNoLeaksOnPrimaryDisk(t *testing.T) {
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	objs := workload.Uniform(29, 1500, 6000)
	f := writeObjects(t, env, objs)
	defer f.Release()
	before := env.Disk.InUse()
	if _, err := SolveObjects(context.Background(), env, f, 200, 200, Config{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if after := env.Disk.InUse(); after != before {
		t.Fatalf("primary disk: %d blocks in use after solve, want %d", after, before)
	}
}

// TestScopeChargesPrimaryScans: the caller's scope must see exactly the
// planner's and router's scans of the object file (shard-disk traffic is
// reported per shard instead).
func TestScopeChargesPrimaryScans(t *testing.T) {
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	objs := workload.Uniform(31, 2000, 8000)
	f := writeObjects(t, env, objs)
	defer f.Release()
	sc := new(em.ScopeStats)
	res, err := SolveObjects(context.Background(), env.WithScope(sc), f, 250, 250, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := sc.Stats()
	wantReads := uint64(2 * f.Blocks()) // one planning scan + one routing scan
	if got.Reads != wantReads || got.Writes != 0 {
		t.Fatalf("scope saw %v, want reads=%d writes=0", got, wantReads)
	}
	if agg := res.Stats(); agg.Total() == 0 {
		t.Fatalf("aggregate shard stats empty: %v", agg)
	}
}

// TestRoute pins the routing arithmetic at boundaries and beyond.
func TestRoute(t *testing.T) {
	bounds := []float64{10, 20, 30}
	cases := []struct {
		x, hw  float64
		lo, hi int
	}{
		{5, 1, 0, 0},    // interior of shard 0
		{9.5, 1, 0, 1},  // within halo of b_1=10
		{10, 0, 0, 1},   // exactly on a boundary: both sides (inclusive slack)
		{10, 1, 0, 1},   // boundary with halo: both neighbors
		{25, 1, 2, 2},   // interior of shard 2
		{35, 1, 3, 3},   // last shard
		{20, 15, 0, 3},  // halo swallows everything
		{-50, 1, 0, 0},  // far left
		{999, 1, 3, 3},  // far right
		{19, 1.5, 1, 2}, // halo reaches b_2=20 exactly (19+1.5 > 20? yes 20.5>20)
	}
	for _, c := range cases {
		lo, hi := route(bounds, c.x, c.hw)
		if lo != c.lo || hi != c.hi {
			t.Errorf("route(%g, hw=%g) = [%d,%d], want [%d,%d]", c.x, c.hw, lo, hi, c.lo, c.hi)
		}
		if lo > hi {
			t.Errorf("route(%g, hw=%g): empty range", c.x, c.hw)
		}
	}
}

// TestSlabsPartitionCenterSpace: consecutive shard slabs must tile
// (−∞, +∞) without gaps or overlap.
func TestSlabsPartitionCenterSpace(t *testing.T) {
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	objs := workload.Gaussian(37, 2000, 10000)
	f := writeObjects(t, env, objs)
	defer f.Release()
	res, err := SolveObjects(context.Background(), env, f, 100, 100, Config{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	slabs := res.Shards
	if !math.IsInf(slabs[0].Slab.Lo, -1) || !math.IsInf(slabs[len(slabs)-1].Slab.Hi, 1) {
		t.Fatalf("outer slabs not unbounded: %v .. %v", slabs[0].Slab, slabs[len(slabs)-1].Slab)
	}
	for i := 1; i < len(slabs); i++ {
		if slabs[i].Slab.Lo != slabs[i-1].Slab.Hi {
			t.Errorf("gap between slab %d and %d: %v vs %v", i-1, i, slabs[i-1].Slab, slabs[i].Slab)
		}
		if slabs[i].Slab.Lo >= slabs[i].Slab.Hi && !math.IsInf(slabs[i].Slab.Hi, 1) {
			t.Errorf("degenerate slab %d: %v", i, slabs[i].Slab)
		}
	}
}

// TestConfigValidation: rejects bad shapes without leaking.
func TestConfigValidation(t *testing.T) {
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	f := writeObjects(t, env, workload.Uniform(41, 50, 100))
	defer f.Release()
	if _, err := SolveObjects(context.Background(), env, f, 10, 10, Config{Shards: 0}); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := SolveObjects(context.Background(), env, f, 0, 10, Config{Shards: 2}); err == nil {
		t.Error("zero-width query accepted")
	}
	if before := env.Disk.InUse(); before != f.Blocks() {
		t.Errorf("validation errors leaked blocks: %d in use", before)
	}
}

// TestNegativeWeightRejected: the router must refuse datasets the merge
// cannot handle exactly, without leaking shard disks or primary blocks.
func TestNegativeWeightRejected(t *testing.T) {
	objs := workload.Uniform(43, 200, 1000)
	objs[57].W = -2
	env := em.MustNewEnv(testBlock, testMem)
	defer env.Disk.Close()
	f := writeObjects(t, env, objs)
	defer f.Release()
	before := env.Disk.InUse()
	_, err := SolveObjects(context.Background(), env, f, 50, 50, Config{Shards: 3})
	if !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("err = %v, want ErrNegativeWeight", err)
	}
	if after := env.Disk.InUse(); after != before {
		t.Fatalf("rejection leaked primary blocks: %d -> %d", before, after)
	}
}
