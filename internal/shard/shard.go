// Package shard partitions a MaxRS instance into K vertical shards that
// are solved as independent ExactMaxRS sub-problems, each on its own
// em.Disk, and merged by candidate comparison — the paper's slab division
// (§5.2) lifted one level up, from recursion steps inside one solver to a
// planner above whole solver instances.
//
// # Why the merge is exact
//
// Shard i owns the center slab [b_i, b_{i+1}) (b_0 = −∞, b_K = +∞) and
// receives every object whose x lies in [b_i − a/2, b_{i+1} + a/2], where
// a is the query width: the halo. A query rectangle centered inside shard
// i's slab covers only objects inside the halo-extended slab (an object is
// covered iff its x is within a/2 of the center's x), so for every center
// in the slab the shard-local coverage equals the true coverage — shard
// i's unrestricted optimum is ≥ the best true score attainable in its
// slab. Conversely a shard's points are a subset of all points, so its
// local score anywhere is ≤ the true score there ≤ the global optimum —
// this direction needs every weight ≥ 0 (a missing negative-weight
// object would *raise* a local score), which is why the router rejects
// negative weights with ErrNegativeWeight. The slabs partition the
// center space, hence
//
//	max_i ShardOpt_i = global optimum,
//
// and every center the winning shard reports attains the global optimum
// in the full dataset too (its local score equals the global optimum and
// is a lower bound on its true score, which cannot exceed the optimum).
// This mirrors the slab-file argument behind Theorem 2: correctness needs
// only that each sub-problem sees every rectangle that can intersect its
// slab, and duplication across shards is harmless because no single
// shard's sweep ever counts an object twice.
//
// # Cost
//
// Planning and routing are two linear scans of the object file charged to
// the caller's environment; each shard additionally pays the writes of
// its halo-extended partition and a full ExactMaxRS on |shard| objects.
// All counts are deterministic for a fixed dataset, query, and shard
// count — independent of worker scheduling — so sharded queries keep the
// repo's counts-are-reproducible contract (DESIGN.md §9).
package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"maxrs/internal/conc"
	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

// ErrNegativeWeight rejects datasets the shard merge cannot handle
// exactly: with a negative weight present, a shard's unrestricted
// optimum can land outside its slab where objects beyond the halo —
// invisible to the shard — would lower the true score, breaking the "no
// shard overcounts" invariant (see the package comment). Callers must
// route such datasets to an unsharded solver.
var ErrNegativeWeight = errors.New("shard: negative weights cannot be sharded exactly")

// maxPlanSample bounds the x-coordinate sample the planner sorts in
// memory (32 Ki values = 256 KB). Boundaries only steer balance — any
// strictly increasing boundary set is exact — so a bounded deterministic
// stride sample is enough even when the dataset itself is disk-resident.
const maxPlanSample = 1 << 15

// objectBatch sizes the record batches of the planner's and router's
// scan loops, amortizing the per-record reader round-trip.
const objectBatch = 256

// Config parameterizes one sharded solve.
type Config struct {
	// Shards is the requested shard count K (≥ 1). The effective count
	// can be lower when the data has fewer distinct x-coordinates than
	// requested — boundaries are deduplicated, never degenerate.
	Shards int

	// Workers bounds how many shards are solved concurrently (0 = all of
	// them at once). Worker scheduling never changes results or counted
	// transfers; it trades wall-clock only.
	Workers int

	// Core configures the per-shard ExactMaxRS solver. Leave
	// Core.Parallelism zero to have the worker budget split evenly
	// across the *effective* shard count (which the planner may have
	// deduplicated below Shards): shard-level fan-out then replaces
	// slab-level fan-out, so a sharded solve never runs more workers
	// than Workers. A non-zero value is taken as an explicit per-shard
	// setting.
	Core core.Config

	// NewDisk allocates one shard's private disk. nil defaults to an
	// in-memory disk with the caller's block size. Every disk obtained
	// through NewDisk is closed before SolveObjects returns, on success
	// and on error alike. Each shard solver runs under the caller
	// environment's full memory budget M: sharding scales out aggregate
	// memory and disk, K budgets instead of one.
	NewDisk func() (*em.Disk, error)
}

// Info describes one shard of a completed solve.
type Info struct {
	// Slab is the half-open center interval [Lo, Hi) the shard owns.
	Slab geom.Interval
	// Objects is the number of objects routed to the shard, halo copies
	// included.
	Objects int64
	// Stats is the I/O charged to the shard's private disk: its
	// partition writes plus its full ExactMaxRS solve.
	Stats em.Stats
}

// Result is a sharded solve: the merged answer plus the per-shard
// breakdown.
type Result struct {
	// Res is the merged (globally optimal) sweep result.
	Res sweep.Result
	// Winner is the index into Shards of the shard whose candidate won.
	Winner int
	// Shards describes the effective shards in slab order.
	Shards []Info
}

// Stats sums the per-shard I/O (the traffic on the private disks; the
// caller's scope separately carries the planner's and router's scans of
// the object file).
func (r Result) Stats() em.Stats {
	var total em.Stats
	for _, s := range r.Shards {
		total.Reads += s.Stats.Reads
		total.Writes += s.Stats.Writes
	}
	return total
}

// SolveObjects answers MaxRS for the objects in objFile with a w×h query
// rectangle by sharding the dataset into cfg.Shards halo-extended
// vertical shards, solving each independently, and merging. Reads of
// objFile are charged to env (and its scope, if any); each shard's
// partition writes and solve are charged to its own disk and reported in
// Result.Shards. The object file is not modified.
//
// Cancelling ctx fans out to every layer of the solve: the planner's and
// router's scans, each shard's partition writes, and all in-flight
// per-shard ExactMaxRS solves abort within one block-transfer's work, and
// every shard's private disk is closed (removing its backing temp file)
// before SolveObjects returns ctx.Err(). A nil ctx never cancels.
func SolveObjects(ctx context.Context, env em.Env, objFile *em.File, w, h float64, cfg Config) (Result, error) {
	if err := env.Validate(); err != nil {
		return Result{}, err
	}
	if w <= 0 || h <= 0 {
		return Result{}, fmt.Errorf("shard: query size %gx%g must be positive", w, h)
	}
	if cfg.Shards < 1 {
		return Result{}, fmt.Errorf("shard: shard count %d must be ≥ 1", cfg.Shards)
	}
	if ctx != nil {
		env = env.WithContext(ctx)
	}
	bounds, err := PlanBounds(env, objFile, cfg.Shards)
	if err != nil {
		return Result{}, err
	}
	shards, err := PartitionObjects(env, objFile, bounds, w/2, cfg)
	if err != nil {
		return Result{}, err
	}
	// Shard disks are ephemeral: whatever happens below — success, error,
	// or a cancelled ctx — close them all before returning.
	defer func() {
		for _, sh := range shards {
			_ = sh.Close()
		}
	}()
	results := make([]sweep.Result, len(shards))
	workers := cfg.Workers
	if workers <= 0 {
		workers = len(shards)
	}
	coreCfg := cfg.Core
	if coreCfg.Parallelism == 0 && cfg.Workers > 0 {
		// Split the worker budget over the effective shard count, not
		// the requested one — a deduplicated plan must not idle workers.
		coreCfg.Parallelism = workers / len(shards)
		if coreCfg.Parallelism < 1 {
			coreCfg.Parallelism = 1
		}
	}
	err = conc.ForEachIndexed(len(shards), workers, func(i int) error {
		return shards[i].solveAndRelease(ctx, w, h, coreCfg, &results[i])
	})
	if err != nil {
		return Result{}, err
	}
	out := Result{Shards: make([]Info, len(shards))}
	for i, sh := range shards {
		out.Shards[i] = Info{Slab: sh.slab, Objects: sh.count, Stats: sh.Stats()}
	}
	out.Winner = Merge(results)
	out.Res = results[out.Winner]
	return out, nil
}

// Merge picks the winning candidate of a sharded solve: the highest
// score, lowest shard index on ties, so the merged answer is
// deterministic. It is the exact K-way merge argued in the package
// comment, shared by the in-process path and the distributed
// coordinator so both produce bit-identical answers.
func Merge(results []sweep.Result) int {
	best := 0
	for i := 1; i < len(results); i++ {
		if results[i].Sum > results[best].Sum {
			best = i
		}
	}
	return best
}

// Partition is one halo-extended shard of a partitioned dataset: its
// private disk, the partition file routed onto it, and the center slab
// it owns. PartitionObjects creates them; the caller must Close every
// partition it receives. Unlike the one-shot SolveObjects path, a
// Partition keeps its file until Close, so it can be read (to ship the
// shard to a remote worker) and solved locally (halo-replica failover)
// any number of times — the file doubles as the shard's replica.
type Partition struct {
	env   em.Env
	file  *em.File
	slab  geom.Interval
	count int64
}

// Slab is the half-open center interval [Lo, Hi) the partition owns.
func (p *Partition) Slab() geom.Interval { return p.slab }

// Objects is the number of objects routed to the partition, halo copies
// included.
func (p *Partition) Objects() int64 { return p.count }

// Stats is the I/O charged to the partition's private disk so far.
func (p *Partition) Stats() em.Stats { return p.env.Disk.Stats() }

// Close closes the partition's private disk, releasing its blocks and
// any backing temp file. The partition is unusable afterwards.
func (p *Partition) Close() error { return p.env.Disk.Close() }

// Solve runs the partition's private ExactMaxRS and leaves the
// partition file intact, so a failed-over shard can be re-solved and a
// shipped shard re-read. Transfers land on the partition's own disk;
// ctx cancellation aborts within one block-transfer's work.
func (p *Partition) Solve(ctx context.Context, w, h float64, cfg core.Config) (sweep.Result, error) {
	solver, err := core.NewSolver(p.env, cfg)
	if err != nil {
		return sweep.Result{}, err
	}
	res, err := solver.SolveObjectsScoped(ctx, p.file, w, h, nil)
	if err != nil {
		return sweep.Result{}, fmt.Errorf("shard %v: %w", p.slab, err)
	}
	return res, nil
}

// ReadObjects decodes the whole partition file into memory — the
// coordinator's seam for shipping a shard's objects to a remote worker.
// Reads are charged to the partition's private disk. The file survives,
// so the same partition can be re-read (hedge, resend) or solved
// locally afterwards.
func (p *Partition) ReadObjects(ctx context.Context) ([]geom.Object, error) {
	env := p.env
	if ctx != nil {
		env = env.WithContext(ctx)
	}
	rr, err := em.OpenRecordReader(env, p.file, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	out := make([]geom.Object, 0, p.count)
	batch := make([]rec.Object, objectBatch)
	for {
		got, rerr := rr.ReadBatch(batch)
		for _, o := range batch[:got] {
			out = append(out, geom.Object{Point: geom.Point{X: o.X, Y: o.Y}, W: o.W})
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return out, nil
			}
			return nil, rerr
		}
	}
}

// solveAndRelease is the one-shot SolveObjects path: solve, then release
// the partition file eagerly (the blocks are dead weight once the shard
// has its candidate) rather than waiting for Close.
func (p *Partition) solveAndRelease(ctx context.Context, w, h float64, cfg core.Config, out *sweep.Result) error {
	defer p.file.Release()
	res, err := p.Solve(ctx, w, h, cfg)
	if err != nil {
		return err
	}
	if err := p.file.Release(); err != nil {
		return err
	}
	*out = res
	return nil
}

// PlanBounds scans objFile once and returns up to k−1 strictly increasing
// interior slab boundaries — x-quantiles of a deterministic stride sample,
// so repeated plans of the same file agree bit-for-bit. Fewer boundaries
// than requested (down to none) come back when the data has too few
// distinct x-coordinates; the effective shard count shrinks accordingly.
func PlanBounds(env em.Env, objFile *em.File, k int) ([]float64, error) {
	if k < 2 {
		return nil, nil
	}
	n := em.RecordCount(objFile, rec.ObjectCodec{}.Size())
	if n == 0 {
		return nil, nil
	}
	stride := (n + maxPlanSample - 1) / maxPlanSample
	if stride < 1 {
		stride = 1
	}
	rr, err := em.OpenRecordReader(env, objFile, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	sample := make([]float64, 0, (n+stride-1)/stride)
	batch := make([]rec.Object, objectBatch)
	var idx int64
	for {
		got, err := rr.ReadBatch(batch)
		for _, o := range batch[:got] {
			if idx%stride == 0 {
				sample = append(sample, o.X)
			}
			idx++
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
	}
	sort.Float64s(sample)
	bounds := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		q := sample[i*len(sample)/k]
		// Strictly increasing, and strictly above the minimum x: a
		// boundary at the minimum would leave shard 0 owning no points
		// (an all-halo shard can tie the optimum but never beat it).
		if q > sample[0] && (len(bounds) == 0 || q > bounds[len(bounds)-1]) {
			bounds = append(bounds, q)
		}
	}
	return bounds, nil
}

// PartitionObjects scans objFile once and routes every object into each
// shard whose halo-extended slab contains it: shard i receives the
// objects with x ∈ [b_i − halfWidth, b_{i+1} + halfWidth] (closed on
// both ends — one float of slack beyond the half-open need never hurts
// correctness, only duplicates a boundary object once more). bounds
// come from PlanBounds; halfWidth is half the query width a/2. On error
// every already-created shard disk is closed and nothing stays
// allocated; on success the caller owns the partitions and must Close
// each one.
func PartitionObjects(env em.Env, objFile *em.File, bounds []float64, halfWidth float64, cfg Config) (_ []*Partition, err error) {
	k := len(bounds) + 1
	newDisk := cfg.NewDisk
	if newDisk == nil {
		blockSize := env.B()
		newDisk = func() (*em.Disk, error) { return em.NewDisk(blockSize) }
	}
	shards := make([]*Partition, 0, k)
	defer func() {
		if err != nil {
			for _, sh := range shards {
				_ = sh.Close()
			}
		}
	}()
	writers := make([]*em.RecordWriter[rec.Object], k)
	for i := 0; i < k; i++ {
		disk, err := newDisk()
		if err != nil {
			return nil, err
		}
		// The shard env inherits the caller's ctx (one cancel reaches the
		// partition writers too) but not its scope: shard-disk traffic is
		// accounted via Disk.Stats and folded in by the caller.
		shEnv := em.Env{Disk: disk, M: env.M, Ctx: env.Ctx}
		sh := &Partition{env: shEnv, file: shEnv.NewFile(), slab: slabOf(bounds, i)}
		shards = append(shards, sh) // before Validate: the defer owns the disk now
		if err := shEnv.Validate(); err != nil {
			return nil, err
		}
		writers[i], err = em.NewRecordWriter(sh.file, rec.ObjectCodec{})
		if err != nil {
			return nil, err
		}
	}
	rr, err := em.OpenRecordReader(env, objFile, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	batch := make([]rec.Object, objectBatch)
	for {
		got, rerr := rr.ReadBatch(batch)
		for _, o := range batch[:got] {
			if o.W < 0 {
				return nil, fmt.Errorf("%w: object at (%g, %g) has weight %g", ErrNegativeWeight, o.X, o.Y, o.W)
			}
			lo, hi := route(bounds, o.X, halfWidth)
			for i := lo; i <= hi; i++ {
				if err := writers[i].Write(o); err != nil {
					return nil, err
				}
				shards[i].count++
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return nil, rerr
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	return shards, nil
}

// slabOf returns shard i's center slab for the given interior boundaries.
func slabOf(bounds []float64, i int) geom.Interval {
	slab := geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
	if i > 0 {
		slab.Lo = bounds[i-1]
	}
	if i < len(bounds) {
		slab.Hi = bounds[i]
	}
	return slab
}

// route returns the inclusive range [lo, hi] of shard indices whose
// halo-extended slab contains x. The range is contiguous and never empty;
// when the halo is wider than a slab it spans several shards.
func route(bounds []float64, x, halfWidth float64) (lo, hi int) {
	// Shard i is needed iff b_i ≤ x + halfWidth (lower bound exists for
	// i ≥ 1) and b_{i+1} ≥ x − halfWidth (upper bound exists for i < K−1).
	lo = sort.SearchFloat64s(bounds, x-halfWidth) // first b_{i+1} ≥ x − a/2
	hi = sort.Search(len(bounds), func(j int) bool { return bounds[j] > x+halfWidth })
	return lo, hi
}
