package ratree

import (
	"math"
	"math/rand"
	"testing"

	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/sweep"
	"maxrs/internal/workload"
)

func randObjs(rng *rand.Rand, n int, extent float64) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.Object{
			Point: geom.Point{
				X: math.Floor(rng.Float64() * extent),
				Y: math.Floor(rng.Float64() * extent),
			},
			W: float64(rng.Intn(5) + 1),
		}
	}
	return objs
}

func TestBuildValidation(t *testing.T) {
	env := em.MustNewEnv(4096, 64*1024)
	if _, err := Build(env, nil); err == nil {
		t.Fatal("empty set must fail")
	}
	tiny := em.MustNewEnv(64, 256)
	if _, err := Build(tiny, randObjs(rand.New(rand.NewSource(1)), 10, 100)); err == nil {
		t.Fatal("too-small blocks must fail")
	}
	if _, err := Build(em.Env{}, randObjs(rand.New(rand.NewSource(1)), 10, 100)); err == nil {
		t.Fatal("invalid env must fail")
	}
}

func TestRAQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		env := em.MustNewEnv(256, 4096)
		objs := randObjs(rng, rng.Intn(500)+1, 200)
		tree, err := Build(env, objs)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != len(objs) {
			t.Fatalf("Len = %d, want %d", tree.Len(), len(objs))
		}
		for probe := 0; probe < 30; probe++ {
			p := geom.Point{X: rng.Float64() * 220, Y: rng.Float64() * 220}
			w := rng.Float64()*60 + 1
			h := rng.Float64()*60 + 1
			got, err := tree.RAQuery(geom.RectFromCenter(p, w, h))
			if err != nil {
				t.Fatal(err)
			}
			want := geom.WeightIn(objs, p, w, h)
			if got != want {
				t.Fatalf("trial %d: RAQuery = %g, brute force = %g (center %v, %gx%g)",
					trial, got, want, p, w, h)
			}
		}
	}
}

func TestRAQueryEmptyAndWhole(t *testing.T) {
	env := em.MustNewEnv(256, 4096)
	objs := randObjs(rand.New(rand.NewSource(2)), 300, 100)
	tree, err := Build(env, objs)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := tree.RAQuery(geom.Rect{}); err != nil || got != 0 {
		t.Fatalf("empty query = %g, %v", got, err)
	}
	var total float64
	for _, o := range objs {
		total += o.W
	}
	whole := geom.Rect{
		X: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
		Y: geom.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)},
	}
	got, err := tree.RAQuery(whole)
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("whole-space query = %g, want %g", got, total)
	}
}

func TestContainedSubtreesSkipDescent(t *testing.T) {
	// A query containing everything must touch only the root: aggregates
	// make it O(1) pool accesses after warm-up.
	env := em.MustNewEnv(256, 8192)
	objs := randObjs(rand.New(rand.NewSource(3)), 2000, 1000)
	tree, err := Build(env, objs)
	if err != nil {
		t.Fatal(err)
	}
	env.Disk.ResetStats()
	whole := geom.Rect{
		X: geom.Interval{Lo: -1, Hi: 1e9},
		Y: geom.Interval{Lo: -1, Hi: 1e9},
	}
	if _, err := tree.RAQuery(whole); err != nil {
		t.Fatal(err)
	}
	// Root read is at most one miss; everything else is aggregated.
	if r := env.Disk.Stats().Reads; r > 1 {
		t.Fatalf("whole-space RA query read %d blocks, want ≤ 1", r)
	}
}

func TestGridMaxRSApproximatesExact(t *testing.T) {
	env := em.MustNewEnv(256, 8192)
	objs := workload.Uniform(5, 800, 400)
	tree, err := Build(env, objs)
	if err != nil {
		t.Fatal(err)
	}
	const w, h = 40, 40
	_, gridScore, err := tree.GridMaxRS(w, h, 10)
	if err != nil {
		t.Fatal(err)
	}
	exact := sweep.MaxRS(objs, w, h)
	if gridScore > exact.Sum {
		t.Fatalf("grid enumeration %g exceeds exact optimum %g", gridScore, exact.Sum)
	}
	// With a step of w/4 the grid should land near the optimum.
	if gridScore < 0.5*exact.Sum {
		t.Fatalf("grid enumeration %g too far below optimum %g", gridScore, exact.Sum)
	}
	if _, _, err := tree.GridMaxRS(0, 10, 5); err == nil {
		t.Fatal("invalid params must fail")
	}
}

// The §3 claim, measured: approaching exactness via RA enumeration needs a
// grid fine relative to the data geometry, and at that resolution the
// query count (hence I/O) dwarfs one ExactMaxRS run on the same data,
// while the score still cannot exceed the true optimum.
func TestGridEnumerationLosesToExactMaxRS(t *testing.T) {
	objs := workload.Uniform(11, 3000, 4000)
	const w, h = 100.0, 100.0

	envA := em.MustNewEnv(512, 4096)
	tree, err := Build(envA, objs)
	if err != nil {
		t.Fatal(err)
	}
	envA.Disk.ResetStats()
	_, gridScore, err := tree.GridMaxRS(w, h, w/20) // fine grid: 640k+ RA queries
	if err != nil {
		t.Fatal(err)
	}
	gridIO := envA.Disk.Stats().Total()

	exact := sweep.MaxRS(objs, w, h)
	if gridScore > exact.Sum {
		t.Fatalf("grid %g exceeds exact %g", gridScore, exact.Sum)
	}

	envB := em.MustNewEnv(512, 4096)
	f, err := workload.Write(envB.Disk, objs)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.NewSolver(envB, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	envB.Disk.ResetStats()
	res, err := solver.SolveObjects(f, w, h)
	if err != nil {
		t.Fatal(err)
	}
	exactIO := envB.Disk.Stats().Total()
	if res.Sum != exact.Sum {
		t.Fatalf("solver %g vs sweep %g", res.Sum, exact.Sum)
	}
	if gridIO < 5*exactIO {
		t.Fatalf("fine RA grid (%d transfers) not clearly above ExactMaxRS (%d)",
			gridIO, exactIO)
	}
}
