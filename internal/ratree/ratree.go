// Package ratree implements an external-memory aggregate R-tree
// supporting range aggregate (RA) queries — the related-work substrate of
// §3: "To calculate the aggregate value of a query region, a common idea
// is to store a pre-calculated value for each entry in the index".
//
// The paper argues that RA indexes cannot solve MaxRS efficiently because
// "the key is to find out where the best rectangle is. A naive solution
// to the MaxRS problem is to issue an infinite number of RA queries,
// which is prohibitively expensive." This package makes that argument
// measurable: it provides the aggregate index (STR bulk-loaded, served
// through an LRU buffer pool with counted transfers) plus GridMaxRS, the
// RA-enumeration heuristic, so examples and benches can compare its cost
// and quality against ExactMaxRS.
package ratree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"maxrs/internal/em"
	"maxrs/internal/geom"
)

// Node block layout:
//
//	[0:2)  uint16 entry count
//	[2:3)  1 if leaf
//	[3:]   entries —
//	  leaf:     x f64, y f64, w f64                      (24 B)
//	  internal: minX, minY, maxX, maxY f64, child i64,
//	            agg f64                                  (48 B)
const (
	raHeader   = 3
	raLeafEnt  = 24
	raIntEnt   = 48
	raMinBlock = raHeader + 2*raIntEnt
)

// Tree is a bulk-loaded aggregate R-tree on a simulated disk.
type Tree struct {
	disk   *em.Disk
	pool   *em.BufferPool
	root   em.BlockID
	height int
	bounds geom.Rect
	n      int
}

type nodeRef struct {
	id  em.BlockID
	mbr geom.Rect
	agg float64
}

// Build bulk-loads an aggregate R-tree over the objects using the
// Sort-Tile-Recursive packing, with a buffer pool of env.MemBlocks frames.
func Build(env em.Env, objs []geom.Object) (*Tree, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if env.B() < raMinBlock {
		return nil, fmt.Errorf("ratree: block size %d too small", env.B())
	}
	if len(objs) == 0 {
		return nil, errors.New("ratree: empty object set")
	}
	pool, err := em.NewBufferPool(env.Disk, env.MemBlocks())
	if err != nil {
		return nil, err
	}
	t := &Tree{disk: env.Disk, pool: pool, n: len(objs)}

	leafCap := (env.B() - raHeader) / raLeafEnt
	intCap := (env.B() - raHeader) / raIntEnt

	// STR: sort by x, slice into vertical runs of √(n/cap) tiles, sort
	// each run by y, pack.
	sorted := append([]geom.Object(nil), objs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	nLeaves := (len(sorted) + leafCap - 1) / leafCap
	runLen := int(math.Ceil(math.Sqrt(float64(nLeaves)))) * leafCap

	var level []nodeRef
	for lo := 0; lo < len(sorted); lo += runLen {
		hi := lo + runLen
		if hi > len(sorted) {
			hi = len(sorted)
		}
		run := sorted[lo:hi]
		sort.Slice(run, func(i, j int) bool { return run[i].Y < run[j].Y })
		for l := 0; l < len(run); l += leafCap {
			h := l + leafCap
			if h > len(run) {
				h = len(run)
			}
			ref, err := t.writeLeaf(run[l:h])
			if err != nil {
				return nil, err
			}
			level = append(level, ref)
		}
	}
	t.height = 1
	for len(level) > 1 {
		var next []nodeRef
		for lo := 0; lo < len(level); lo += intCap {
			hi := lo + intCap
			if hi > len(level) {
				hi = len(level)
			}
			ref, err := t.writeInternal(level[lo:hi])
			if err != nil {
				return nil, err
			}
			next = append(next, ref)
		}
		level = next
		t.height++
	}
	t.root = level[0].id
	t.bounds = level[0].mbr
	return t, nil
}

func (t *Tree) writeLeaf(objs []geom.Object) (nodeRef, error) {
	id := t.disk.Alloc()
	data, err := t.pool.GetNew(id)
	if err != nil {
		return nodeRef{}, err
	}
	binary.LittleEndian.PutUint16(data[0:], uint16(len(objs)))
	data[2] = 1
	mbr := geom.Rect{
		X: geom.Interval{Lo: math.Inf(1), Hi: math.Inf(-1)},
		Y: geom.Interval{Lo: math.Inf(1), Hi: math.Inf(-1)},
	}
	var agg float64
	for i, o := range objs {
		off := raHeader + i*raLeafEnt
		putF(data, off, o.X)
		putF(data, off+8, o.Y)
		putF(data, off+16, o.W)
		mbr.X.Lo = math.Min(mbr.X.Lo, o.X)
		mbr.X.Hi = math.Max(mbr.X.Hi, o.X)
		mbr.Y.Lo = math.Min(mbr.Y.Lo, o.Y)
		mbr.Y.Hi = math.Max(mbr.Y.Hi, o.Y)
		agg += o.W
	}
	return nodeRef{id: id, mbr: mbr, agg: agg}, nil
}

func (t *Tree) writeInternal(children []nodeRef) (nodeRef, error) {
	id := t.disk.Alloc()
	data, err := t.pool.GetNew(id)
	if err != nil {
		return nodeRef{}, err
	}
	binary.LittleEndian.PutUint16(data[0:], uint16(len(children)))
	data[2] = 0
	mbr := children[0].mbr
	var agg float64
	for i, c := range children {
		off := raHeader + i*raIntEnt
		putF(data, off, c.mbr.X.Lo)
		putF(data, off+8, c.mbr.Y.Lo)
		putF(data, off+16, c.mbr.X.Hi)
		putF(data, off+24, c.mbr.Y.Hi)
		binary.LittleEndian.PutUint64(data[off+32:], uint64(c.id))
		putF(data, off+40, c.agg)
		mbr.X = mbr.X.Union(c.mbr.X)
		mbr.Y = mbr.Y.Union(c.mbr.Y)
		agg += c.agg
	}
	return nodeRef{id: id, mbr: mbr, agg: agg}, nil
}

func putF(b []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
}

func getF(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.n }

// Height returns the number of tree levels.
func (t *Tree) Height() int { return t.height }

// Bounds returns the MBR of the whole dataset. Note: leaf MBRs are tight
// point bounds, so Bounds is closed on all sides.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// RAQuery returns the total weight of the objects covered by q under the
// half-open semantics of geom.Rect. Cost: one pool access per visited
// node; fully contained subtrees contribute their aggregate without
// descent (the defining optimization of aggregate indexes, §3).
func (t *Tree) RAQuery(q geom.Rect) (float64, error) {
	if q.Empty() {
		return 0, nil
	}
	return t.query(t.root, q)
}

func (t *Tree) query(id em.BlockID, q geom.Rect) (float64, error) {
	data, err := t.pool.Get(id)
	if err != nil {
		return 0, err
	}
	n := int(binary.LittleEndian.Uint16(data[0:]))
	var sum float64
	if data[2] == 1 {
		for i := 0; i < n; i++ {
			off := raHeader + i*raLeafEnt
			p := geom.Point{X: getF(data, off), Y: getF(data, off+8)}
			if q.Contains(p) {
				sum += getF(data, off+16)
			}
		}
		return sum, nil
	}
	type pending struct {
		child em.BlockID
	}
	var descend []pending
	for i := 0; i < n; i++ {
		off := raHeader + i*raIntEnt
		mbr := geom.Rect{
			X: geom.Interval{Lo: getF(data, off), Hi: getF(data, off+16)},
			Y: geom.Interval{Lo: getF(data, off+8), Hi: getF(data, off+24)},
		}
		// MBRs are closed point bounds; the query is half-open.
		if !overlapsClosed(q, mbr) {
			continue
		}
		if containsClosed(q, mbr) {
			sum += getF(data, off+40)
			continue
		}
		descend = append(descend, pending{child: em.BlockID(binary.LittleEndian.Uint64(data[off+32:]))})
	}
	// Collect children first: recursion may evict this node's frame.
	for _, p := range descend {
		s, err := t.query(p.child, q)
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum, nil
}

// overlapsClosed reports whether the half-open query q can contain any
// point of the closed box mbr.
func overlapsClosed(q geom.Rect, mbr geom.Rect) bool {
	return mbr.X.Lo < q.X.Hi && q.X.Lo <= mbr.X.Hi &&
		mbr.Y.Lo < q.Y.Hi && q.Y.Lo <= mbr.Y.Hi
}

// containsClosed reports whether every point of the closed box mbr lies
// inside the half-open query q.
func containsClosed(q geom.Rect, mbr geom.Rect) bool {
	return q.X.Lo <= mbr.X.Lo && mbr.X.Hi < q.X.Hi &&
		q.Y.Lo <= mbr.Y.Lo && mbr.Y.Hi < q.Y.Hi
}

// GridMaxRS is the RA-enumeration heuristic the paper dismisses in §3: it
// issues one RA query per cell of a step×step grid of candidate centers
// over the data bounds and returns the best. It is approximate (the true
// optimum may fall between grid points) and its cost grows with the
// number of candidates — the point of the comparison with ExactMaxRS.
func (t *Tree) GridMaxRS(w, h float64, step float64) (geom.Point, float64, error) {
	if w <= 0 || h <= 0 || step <= 0 {
		return geom.Point{}, 0, fmt.Errorf("ratree: invalid GridMaxRS parameters %g %g %g", w, h, step)
	}
	var (
		best    float64 = math.Inf(-1)
		bestPt  geom.Point
		queries int
	)
	for x := t.bounds.X.Lo; x <= t.bounds.X.Hi+step; x += step {
		for y := t.bounds.Y.Lo; y <= t.bounds.Y.Hi+step; y += step {
			p := geom.Point{X: x, Y: y}
			s, err := t.RAQuery(geom.RectFromCenter(p, w, h))
			if err != nil {
				return geom.Point{}, 0, err
			}
			queries++
			if s > best {
				best, bestPt = s, p
			}
		}
	}
	_ = queries
	return bestPt, best, nil
}
