// Package workload generates the datasets of the paper's evaluation (§7.1):
// synthetic Uniform and Gaussian point sets over [0, 4|O|]² (default
// [0, 10⁶]²), and synthetic stand-ins for the two real datasets from the
// (now defunct) R-tree Portal:
//
//	UX — United States of America and Mexico,  19,499 points
//	NE — North East USA,                      123,593 points
//
// Substitution note (documented in DESIGN.md §3.5): the original files are
// unavailable offline, so SyntheticUX/SyntheticNE reproduce the published
// cardinalities, the normalized [0, 10⁶]² coordinate range, and the
// qualitative structure the experiments depend on — UX sparse with
// wide-area clusters, NE dense with anisotropic coastline-like clusters.
// No experiment in the paper depends on actual geography.
//
// All generators are deterministic in their seed.
package workload

import (
	"math"
	"math/rand"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

// Paper cardinalities (Table 2).
const (
	UXCardinality = 19499
	NECardinality = 123593
)

// SpaceExtent is the default normalized coordinate range [0, SpaceExtent]²
// (Table 3: space size 1M × 1M).
const SpaceExtent = 1_000_000.0

// Uniform returns n unit-weight objects uniformly distributed over
// [0, extent]².
func Uniform(seed int64, n int, extent float64) []geom.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.Object{
			Point: geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
			W:     1,
		}
	}
	return objs
}

// Gaussian returns n unit-weight objects from an isotropic Gaussian
// centered in [0, extent]² with standard deviation extent/8, clamped to
// the space (the paper's "Gaussian distribution" synthetic data).
func Gaussian(seed int64, n int, extent float64) []geom.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	sigma := extent / 8
	for i := range objs {
		objs[i] = geom.Object{
			Point: geom.Point{
				X: clamp(extent/2+rng.NormFloat64()*sigma, 0, extent),
				Y: clamp(extent/2+rng.NormFloat64()*sigma, 0, extent),
			},
			W: 1,
		}
	}
	return objs
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clustered generates a cluster mixture: nClusters anisotropic Gaussian
// clusters with power-law sizes plus a uniform background fraction.
func clustered(seed int64, n, nClusters int, extent, spreadFrac, bgFrac float64) []geom.Object {
	rng := rand.New(rand.NewSource(seed))
	type cluster struct {
		cx, cy, sx, sy, rot, mass float64
	}
	clusters := make([]cluster, nClusters)
	var totalMass float64
	for i := range clusters {
		mass := math.Pow(rng.Float64(), 2) + 0.05 // power-law-ish sizes
		spread := extent * spreadFrac * (0.3 + rng.Float64())
		clusters[i] = cluster{
			cx: rng.Float64() * extent,
			cy: rng.Float64() * extent,
			// Anisotropic: elongated along a random direction, like
			// settlements along coasts and corridors.
			sx:   spread,
			sy:   spread * (0.15 + 0.5*rng.Float64()),
			rot:  rng.Float64() * math.Pi,
			mass: mass,
		}
		totalMass += mass
	}
	objs := make([]geom.Object, n)
	for i := range objs {
		if rng.Float64() < bgFrac {
			objs[i] = geom.Object{
				Point: geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
				W:     1,
			}
			continue
		}
		// Pick a cluster proportional to mass.
		pick := rng.Float64() * totalMass
		var c cluster
		for _, cl := range clusters {
			pick -= cl.mass
			c = cl
			if pick <= 0 {
				break
			}
		}
		dx := rng.NormFloat64() * c.sx
		dy := rng.NormFloat64() * c.sy
		cos, sin := math.Cos(c.rot), math.Sin(c.rot)
		objs[i] = geom.Object{
			Point: geom.Point{
				X: clamp(c.cx+dx*cos-dy*sin, 0, extent),
				Y: clamp(c.cy+dx*sin+dy*cos, 0, extent),
			},
			W: 1,
		}
	}
	return objs
}

// SyntheticUX is the stand-in for the UX (USA and Mexico) dataset:
// 19,499 points, sparse, wide-area clusters over [0, 10⁶]².
func SyntheticUX(seed int64) []geom.Object {
	return clustered(seed, UXCardinality, 25, SpaceExtent, 0.08, 0.25)
}

// SyntheticNE is the stand-in for the NE (North East USA) dataset:
// 123,593 points, dense, strongly clustered over [0, 10⁶]².
func SyntheticNE(seed int64) []geom.Object {
	return clustered(seed, NECardinality, 60, SpaceExtent, 0.03, 0.10)
}

// Write stores objects as a record file on the disk.
func Write(d *em.Disk, objs []geom.Object) (*em.File, error) {
	recs := make([]rec.Object, len(objs))
	for i, o := range objs {
		recs[i] = rec.FromGeom(o)
	}
	return em.WriteAll(d, rec.ObjectCodec{}, recs)
}

// Sample returns a deterministic subsample of k objects (or all of them if
// k ≥ len(objs)), used by quality experiments whose oracle is superlinear.
func Sample(seed int64, objs []geom.Object, k int) []geom.Object {
	if k >= len(objs) {
		return objs
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(objs))[:k]
	out := make([]geom.Object, k)
	for i, j := range idx {
		out[i] = objs[j]
	}
	return out
}
