package workload

import (
	"testing"

	"maxrs/internal/em"
	"maxrs/internal/rec"
)

func TestUniformDeterministicAndBounded(t *testing.T) {
	a := Uniform(7, 1000, 500)
	b := Uniform(7, 1000, 500)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
		if a[i].X < 0 || a[i].X > 500 || a[i].Y < 0 || a[i].Y > 500 {
			t.Fatalf("out of bounds: %v", a[i].Point)
		}
		if a[i].W != 1 {
			t.Fatalf("weight = %g", a[i].W)
		}
	}
	c := Uniform(8, 1000, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGaussianConcentration(t *testing.T) {
	objs := Gaussian(3, 5000, 1000)
	center := 0
	for _, o := range objs {
		if o.X < 0 || o.X > 1000 || o.Y < 0 || o.Y > 1000 {
			t.Fatalf("out of bounds: %v", o.Point)
		}
		if o.X > 250 && o.X < 750 && o.Y > 250 && o.Y < 750 {
			center++
		}
	}
	// ±2σ box around the center must hold the bulk of the mass.
	if frac := float64(center) / float64(len(objs)); frac < 0.85 {
		t.Fatalf("only %.2f of Gaussian mass near center", frac)
	}
}

func TestSyntheticRealCardinalities(t *testing.T) {
	ux := SyntheticUX(1)
	if len(ux) != UXCardinality {
		t.Fatalf("UX cardinality = %d, want %d", len(ux), UXCardinality)
	}
	ne := SyntheticNE(1)
	if len(ne) != NECardinality {
		t.Fatalf("NE cardinality = %d, want %d", len(ne), NECardinality)
	}
	for _, o := range append(ux, ne...) {
		if o.X < 0 || o.X > SpaceExtent || o.Y < 0 || o.Y > SpaceExtent {
			t.Fatalf("out of bounds: %v", o.Point)
		}
	}
}

func TestSyntheticNEIsMoreClusteredThanUniform(t *testing.T) {
	// Clustering proxy: peak grid-cell density. The clustered NE stand-in
	// must have a far denser hottest cell than a uniform set of equal size.
	peak := func(objsLen int, getter func(i int) (float64, float64)) int {
		const g = 50
		counts := make(map[[2]int]int)
		best := 0
		for i := 0; i < objsLen; i++ {
			x, y := getter(i)
			k := [2]int{int(x / (SpaceExtent / g)), int(y / (SpaceExtent / g))}
			counts[k]++
			if counts[k] > best {
				best = counts[k]
			}
		}
		return best
	}
	ne := SyntheticNE(2)
	uni := Uniform(2, len(ne), SpaceExtent)
	nePeak := peak(len(ne), func(i int) (float64, float64) { return ne[i].X, ne[i].Y })
	uniPeak := peak(len(uni), func(i int) (float64, float64) { return uni[i].X, uni[i].Y })
	if nePeak < 3*uniPeak {
		t.Fatalf("NE peak density %d vs uniform %d — not clustered enough", nePeak, uniPeak)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	d := em.MustNewDisk(4096)
	objs := Uniform(5, 500, 1000)
	f, err := Write(d, objs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.ReadAll(f, rec.ObjectCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("len = %d, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i].Geom() != objs[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSample(t *testing.T) {
	objs := Uniform(9, 100, 100)
	s := Sample(1, objs, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	s2 := Sample(1, objs, 10)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("sample not deterministic")
		}
	}
	if got := Sample(1, objs, 1000); len(got) != len(objs) {
		t.Fatalf("oversample returned %d", len(got))
	}
	seen := make(map[[2]float64]int)
	for _, o := range s {
		seen[[2]float64{o.X, o.Y}]++
	}
	// Permutation-based: no duplicates beyond what the input contains.
	for k, c := range seen {
		if c > 1 {
			t.Fatalf("duplicate sample %v", k)
		}
	}
}
