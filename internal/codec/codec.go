// Package codec implements the physical block codecs of the storage
// layer (DESIGN.md §15): given one logical disk block — a fixed-layout
// byte image of fixed-size records — a BlockCodec produces a smaller
// physical representation, so each counted block transfer moves fewer
// physical bytes. Codecs sit strictly below the EM transfer counters:
// they change what a transfer costs the hardware, never how many
// transfers the schedule performs.
//
// Two families cover the repo's record layouts:
//
//   - WordDelta (ids 1–8): column-split delta coding over N interleaved
//     8-byte word columns. A block of fixed-size records whose size is a
//     multiple of 8 (Object 24 B, Tuple 32 B, WRect 40 B, bare float64s)
//     decomposes into per-field float64 columns; consecutive values of a
//     column — sorted coordinates above all — have small bit-level
//     deltas, which zigzag varints store in one or two bytes instead of
//     eight.
//
//   - ByteDelta (ids 9–255): byte-stride delta + zero run-length coding
//     for record sizes that are not word-aligned (Event 33 B, PieceEvent
//     41 B). Subtracting the byte one record earlier turns the shared
//     high-order exponent/mantissa bytes of neighboring records into
//     zero runs, which RLE collapses.
//
// Both are exact: Decode(Encode(b)) is bit-identical to b for every
// input, asserted by the round-trip property tests. Neither assumes
// record alignment to block boundaries — records straddling blocks
// merely shift which column a field lands in, leaving correctness (and
// most of the ratio) intact.
//
// The Encoder tries a candidate family per block and keeps the smallest
// strictly-compressing encoding, falling back to the raw layout (id 0)
// for incompressible blocks, so compression never inflates a block
// beyond its fixed layout plus the store's constant header.
package codec

import (
	"encoding/binary"
	"fmt"
)

// RawID is the codec id of the identity (fixed-layout) encoding. A block
// stored with RawID has its logical bytes as the physical payload.
const RawID uint8 = 0

// BlockCodec is one reversible block encoding. Implementations must be
// stateless and safe for concurrent use.
type BlockCodec interface {
	// ID is the codec's registry id, recorded in the per-block header so
	// readers can decode blocks written under any selection policy.
	ID() uint8
	// Name identifies the codec in stats and logs.
	Name() string
	// AppendEncode appends the encoded form of src to dst and returns
	// the extended slice. It never fails: every input has an encoding
	// (possibly longer than src — the Encoder discards those).
	AppendEncode(dst, src []byte) []byte
	// Decode reconstructs exactly len(dst) logical bytes from payload.
	// It fails on truncated or inconsistent payloads instead of reading
	// out of bounds.
	Decode(dst, payload []byte) error
}

// registry maps codec ids to decoders. Populated at init with the
// built-in families; Register extends it (tests, future codecs).
var registry [256]BlockCodec

// Register adds c to the decoder registry. Registering id 0 or an id
// already taken by a different codec panics — block headers reference
// ids forever, so collisions are corruption waiting to happen.
func Register(c BlockCodec) {
	id := c.ID()
	if id == RawID {
		panic("codec: id 0 is reserved for the raw layout")
	}
	if prev := registry[id]; prev != nil && prev.Name() != c.Name() {
		panic(fmt.Sprintf("codec: id %d already registered to %s", id, prev.Name()))
	}
	registry[id] = c
}

// Lookup returns the codec registered under id. RawID has no codec (the
// payload is the block); unknown ids return nil.
func Lookup(id uint8) BlockCodec {
	return registry[id]
}

// Registered returns every registered codec, ascending by id — the
// domain of the round-trip property tests.
func Registered() []BlockCodec {
	var out []BlockCodec
	for _, c := range registry {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

func init() {
	// Word-stride deltas for every aligned record period up to 8 words.
	for s := 1; s <= 8; s++ {
		Register(WordDelta{Stride: s})
	}
	// Byte-stride deltas for the repo's record sizes (aligned ones too —
	// on some blocks the byte form wins) — ids 9–255 are byte strides.
	for _, s := range []int{24, 32, 33, 40, 41} {
		Register(ByteDelta{Stride: s})
	}
}

// DeltaFamily returns the default encode-side candidate set: the word
// strides matching the repo's aligned record layouts (1 = float64,
// 3 = Object, 4 = Tuple, 5 = WRect) and the byte strides matching the
// unaligned event records (33 = Event, 41 = PieceEvent). The Encoder
// tries each per block and keeps the smallest, so one family serves
// every file of a disk without per-file configuration.
func DeltaFamily() []BlockCodec {
	return []BlockCodec{
		WordDelta{Stride: 1},
		WordDelta{Stride: 3},
		WordDelta{Stride: 4},
		WordDelta{Stride: 5},
		ByteDelta{Stride: 33},
		ByteDelta{Stride: 41},
	}
}

// Encoder picks the best candidate encoding per block. Not safe for
// concurrent use — callers pool Encoders (the scratch buffers are the
// point: per-block encoding allocates nothing in steady state).
type Encoder struct {
	cands []BlockCodec
	a, b  []byte
}

// NewEncoder returns an Encoder over cands. An empty cands always picks
// the raw layout.
func NewEncoder(cands []BlockCodec) *Encoder {
	return &Encoder{cands: cands}
}

// Encode returns the id and payload of the smallest candidate encoding
// strictly shorter than src, or (RawID, src) when none compresses. The
// returned payload aliases either src or the Encoder's scratch and is
// valid until the next Encode call.
func (e *Encoder) Encode(src []byte) (uint8, []byte) {
	bestID, best := RawID, src
	for _, c := range e.cands {
		e.a = c.AppendEncode(e.a[:0], src)
		if len(e.a) < len(best) {
			bestID, best = c.ID(), e.a
			e.a, e.b = e.b, e.a
		}
	}
	return bestID, best
}

// zigzag maps signed deltas to unsigned varint-friendly values:
// 0,-1,1,-2,2… → 0,1,2,3,4…
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WordDelta is the column-split word-delta codec: the block's 8-byte
// little-endian words are split into Stride interleaved columns, each
// column delta-coded (wrapping uint64 subtraction of the previous word)
// and stored as zigzag varints; the sub-word tail of the block rides
// verbatim. Exact for arbitrary bytes — the delta is in bit space, not
// float arithmetic.
type WordDelta struct {
	// Stride is the column period in words, 1–8: the record size of the
	// stream the codec targets, in 8-byte words.
	Stride int
}

// ID implements BlockCodec: word strides own ids 1–8.
func (w WordDelta) ID() uint8 { return uint8(w.Stride) }

// Name implements BlockCodec.
func (w WordDelta) Name() string { return fmt.Sprintf("word-delta/%d", w.Stride) }

// AppendEncode implements BlockCodec.
func (w WordDelta) AppendEncode(dst, src []byte) []byte {
	nw := len(src) / 8
	var tmp [binary.MaxVarintLen64]byte
	for c := 0; c < w.Stride; c++ {
		var prev uint64
		for i := c; i < nw; i += w.Stride {
			word := binary.LittleEndian.Uint64(src[i*8:])
			n := binary.PutUvarint(tmp[:], zigzag(int64(word-prev)))
			dst = append(dst, tmp[:n]...)
			prev = word
		}
	}
	return append(dst, src[nw*8:]...)
}

// Decode implements BlockCodec.
func (w WordDelta) Decode(dst, payload []byte) error {
	nw := len(dst) / 8
	tail := len(dst) - nw*8
	for c := 0; c < w.Stride; c++ {
		var prev uint64
		for i := c; i < nw; i += w.Stride {
			u, n := binary.Uvarint(payload)
			if n <= 0 {
				return fmt.Errorf("codec: %s: truncated varint at word %d", w.Name(), i)
			}
			payload = payload[n:]
			prev += uint64(unzigzag(u))
			binary.LittleEndian.PutUint64(dst[i*8:], prev)
		}
	}
	if len(payload) != tail {
		return fmt.Errorf("codec: %s: tail %d bytes, want %d", w.Name(), len(payload), tail)
	}
	copy(dst[nw*8:], payload)
	return nil
}

// ByteDelta is the byte-stride delta + zero-RLE codec for record sizes
// that are not multiples of 8: residual[i] = src[i] − src[i−Stride]
// (bytes before the first full record ride unchanged), then the
// residual stream is stored as alternating ⟨zero-run length, literal
// length, literal bytes⟩ varint tokens. Neighboring records sharing
// high-order float bytes produce long zero runs.
type ByteDelta struct {
	// Stride is the record size in bytes, 9–255 (the codec id).
	Stride int
}

// ID implements BlockCodec: byte strides own ids 9–255.
func (b ByteDelta) ID() uint8 { return uint8(b.Stride) }

// Name implements BlockCodec.
func (b ByteDelta) Name() string { return fmt.Sprintf("byte-delta/%d", b.Stride) }

// AppendEncode implements BlockCodec.
func (b ByteDelta) AppendEncode(dst, src []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(src) {
		// Zero run.
		run := 0
		for i+run < len(src) && b.residual(src, i+run) == 0 {
			run++
		}
		n := binary.PutUvarint(tmp[:], uint64(run))
		dst = append(dst, tmp[:n]...)
		i += run
		// Literal run: extends until the next zero residual. A lone zero
		// between literals would cost two token bytes to encode as a run,
		// so runs of one zero stay literal.
		lit := 0
		for i+lit < len(src) {
			if b.residual(src, i+lit) == 0 &&
				(i+lit+1 >= len(src) || b.residual(src, i+lit+1) == 0) {
				break
			}
			lit++
		}
		n = binary.PutUvarint(tmp[:], uint64(lit))
		dst = append(dst, tmp[:n]...)
		for j := i; j < i+lit; j++ {
			dst = append(dst, b.residual(src, j))
		}
		i += lit
	}
	return dst
}

// residual is the byte-stride delta at position i.
func (b ByteDelta) residual(src []byte, i int) byte {
	if i < b.Stride {
		return src[i]
	}
	return src[i] - src[i-b.Stride]
}

// Decode implements BlockCodec.
func (b ByteDelta) Decode(dst, payload []byte) error {
	i := 0
	for i < len(dst) {
		run, n := binary.Uvarint(payload)
		if n <= 0 {
			return fmt.Errorf("codec: %s: truncated zero-run token at byte %d", b.Name(), i)
		}
		payload = payload[n:]
		lit, n := binary.Uvarint(payload)
		if n <= 0 {
			return fmt.Errorf("codec: %s: truncated literal token at byte %d", b.Name(), i)
		}
		payload = payload[n:]
		if run+lit > uint64(len(dst)-i) || lit > uint64(len(payload)) {
			return fmt.Errorf("codec: %s: run %d+%d overflows block at byte %d", b.Name(), run, lit, i)
		}
		for ; run > 0; run-- {
			dst[i] = b.prior(dst, i)
			i++
		}
		for j := uint64(0); j < lit; j++ {
			dst[i] = payload[j] + b.prior(dst, i)
			i++
		}
		payload = payload[lit:]
	}
	if len(payload) != 0 {
		return fmt.Errorf("codec: %s: %d trailing payload bytes", b.Name(), len(payload))
	}
	return nil
}

// prior is the reconstruction base at position i: the byte one stride
// earlier, or zero before the first full record.
func (b ByteDelta) prior(dst []byte, i int) byte {
	if i < b.Stride {
		return 0
	}
	return dst[i-b.Stride]
}
