package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// roundTrip asserts Decode(Encode(src)) == src for codec c.
func roundTrip(t *testing.T, c BlockCodec, src []byte) {
	t.Helper()
	payload := c.AppendEncode(nil, src)
	got := make([]byte, len(src))
	if err := c.Decode(got, payload); err != nil {
		t.Fatalf("%s: decode %d-byte block: %v", c.Name(), len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("%s: round trip of %d-byte block not bit-identical", c.Name(), len(src))
	}
}

// appendRecord appends a synthetic fixed-size record of size bytes built
// from sorted-ish float64 coordinates — the shape the codecs target.
func appendRecord(dst []byte, rng *rand.Rand, size int, base float64) []byte {
	rec := make([]byte, size)
	for off := 0; off+8 <= size; off += 8 {
		v := base + rng.Float64()
		binary.LittleEndian.PutUint64(rec[off:], math.Float64bits(v))
	}
	for off := size / 8 * 8; off < size; off++ {
		rec[off] = byte(rng.Intn(4)) // small enums/flags in tail bytes
	}
	return append(dst, rec...)
}

// block builds a block of n records of recSize bytes with sorted first
// coordinates, sliced to blockLen (records may straddle the block edge,
// like the real em.Writer byte stream).
func block(rng *rand.Rand, recSize, blockLen int) []byte {
	var buf []byte
	base := rng.Float64() * 1000
	for len(buf) < blockLen {
		base += rng.Float64() // sorted stream
		buf = appendRecord(buf, rng, recSize, base)
	}
	return buf[:blockLen]
}

// TestRoundTripAllCodecs is the core property test: random event/edge
// record batches encode→decode bit-identical across every registered
// codec, including empty and single-record blocks and blocks whose last
// record is truncated at the block boundary.
func TestRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	recSizes := []int{8, 24, 32, 33, 40, 41} // Float64, Object, Tuple, Event, WRect, PieceEvent
	for _, c := range Registered() {
		for _, rs := range recSizes {
			// Empty block.
			roundTrip(t, c, nil)
			// Single record.
			roundTrip(t, c, appendRecord(nil, rng, rs, rng.Float64()))
			// Full blocks, including lengths that truncate the last record.
			for _, bl := range []int{rs, 4 * rs, 512, 511, 4096, 4095, 4097} {
				roundTrip(t, c, block(rng, rs, bl))
			}
		}
	}
}

// TestRoundTripAdversarial feeds shapes that defeat the delta model:
// pure noise, all-zero, all-0xFF, and maximal bit-flip alternation. The
// codecs must stay exact even when they cannot compress.
func TestRoundTripAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	noise := make([]byte, 4096)
	rng.Read(noise)
	zero := make([]byte, 4096)
	ff := bytes.Repeat([]byte{0xFF}, 4096)
	alt := make([]byte, 4096)
	for i := range alt {
		if i%16 < 8 {
			alt[i] = 0xFF
		}
	}
	for _, c := range Registered() {
		for _, src := range [][]byte{noise, zero, ff, alt, noise[:1], noise[:7], noise[:9]} {
			roundTrip(t, c, src)
		}
	}
}

// TestEncoderPicksSmallest checks the Encoder returns the byte-smallest
// candidate and falls back to raw for incompressible blocks.
func TestEncoderPicksSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	enc := NewEncoder(DeltaFamily())

	src := block(rng, 24, 4096) // sorted Object records: must compress
	id, payload := enc.Encode(src)
	if id == RawID {
		t.Fatalf("sorted Object block did not compress")
	}
	if len(payload) >= len(src) {
		t.Fatalf("winner not smaller: %d >= %d", len(payload), len(src))
	}
	// The winner must be ≤ every candidate's own encoding.
	for _, c := range DeltaFamily() {
		if n := len(c.AppendEncode(nil, src)); n < len(payload) {
			t.Fatalf("Encoder picked %d bytes but %s encodes to %d", len(payload), c.Name(), n)
		}
	}
	got := make([]byte, len(src))
	if err := Lookup(id).Decode(got, payload); err != nil {
		t.Fatalf("decode winner: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("winner round trip not bit-identical")
	}

	noise := make([]byte, 4096)
	rng.Read(noise)
	id, payload = enc.Encode(noise)
	if id != RawID {
		t.Fatalf("noise block compressed under id %d", id)
	}
	if !bytes.Equal(payload, noise) {
		t.Fatalf("raw fallback payload is not the source block")
	}
}

// TestEncoderScratchReuse ensures the two-buffer scratch rotation never
// lets a later candidate clobber the current best payload.
func TestEncoderScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	enc := NewEncoder(DeltaFamily())
	for i := 0; i < 200; i++ {
		rs := []int{8, 24, 32, 33, 40, 41}[rng.Intn(6)]
		src := block(rng, rs, 256+rng.Intn(4096))
		id, payload := enc.Encode(src)
		got := make([]byte, len(src))
		if id == RawID {
			copy(got, payload)
		} else if err := Lookup(id).Decode(got, payload); err != nil {
			t.Fatalf("iter %d: decode id %d: %v", i, id, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("iter %d: codec %d round trip not bit-identical", i, id)
		}
	}
}

// TestDecodeRejectsCorruptPayloads checks decoders fail cleanly (no
// panic, no out-of-bounds) on truncated and bit-flipped payloads.
func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	src := block(rng, 40, 4096)
	for _, c := range Registered() {
		payload := c.AppendEncode(nil, src)
		dst := make([]byte, len(src))
		for cut := 0; cut < len(payload); cut += 1 + len(payload)/17 {
			// Truncations must either error or decode to *something* —
			// never panic or write outside dst.
			_ = c.Decode(dst, payload[:cut])
		}
		for i := 0; i < 64; i++ {
			mut := append([]byte(nil), payload...)
			mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
			_ = c.Decode(dst, mut)
		}
	}
}

// TestSortedStreamCompresses pins the headline property: a block of
// sorted coordinate records compresses well under the matching stride.
func TestSortedStreamCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = rng.Float64() * 1e6
	}
	sort.Float64s(xs)
	src := make([]byte, 0, len(xs)*8)
	for _, x := range xs {
		src = binary.LittleEndian.AppendUint64(src, math.Float64bits(x))
	}
	enc := c8(src, t)
	if ratio := float64(enc) / float64(len(src)); ratio > 0.9 {
		t.Fatalf("sorted float64 stream ratio %.2f, want < 0.9", ratio)
	}
}

func c8(src []byte, t *testing.T) int {
	t.Helper()
	c := WordDelta{Stride: 1}
	payload := c.AppendEncode(nil, src)
	got := make([]byte, len(src))
	if err := c.Decode(got, payload); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip not bit-identical")
	}
	return len(payload)
}

// TestRegisterRejectsCollisions pins the registry's safety rails.
func TestRegisterRejectsCollisions(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("id 0", func() { Register(ByteDelta{Stride: 256}) }) // uint8(256) == 0
	mustPanic("collision", func() { Register(WordDelta{Stride: 33}) })
	// Re-registering the identical codec is idempotent, not a panic.
	Register(WordDelta{Stride: 3})
}

// FuzzRoundTrip drives every registered codec over arbitrary blocks.
func FuzzRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(16))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(block(rng, 33, 512))
	f.Add(block(rng, 41, 300))
	f.Fuzz(func(t *testing.T, src []byte) {
		for _, c := range Registered() {
			payload := c.AppendEncode(nil, src)
			got := make([]byte, len(src))
			if err := c.Decode(got, payload); err != nil {
				t.Fatalf("%s: decode: %v", c.Name(), err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s: round trip not bit-identical", c.Name())
			}
		}
	})
}
