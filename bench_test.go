package maxrs

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§7), plus ablation benches for the design choices
// called out in DESIGN.md §5. Each bench reports the EM-model block
// transfers per operation (io/op) — the paper's cost metric — alongside
// Go's own timing.
//
// These run at a reduced scale so `go test -bench=.` completes in minutes;
// cmd/maxrsbench regenerates the figures at any scale up to the paper's.

import (
	"context"
	"fmt"
	"testing"

	"maxrs/internal/core"
	"maxrs/internal/crs"
	"maxrs/internal/em"
	"maxrs/internal/experiments"
	"maxrs/internal/geom"
	"maxrs/internal/workload"
)

// benchCfg is the reduced-scale configuration for benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.05, BufScale: 0.05, Seed: 2012, OracleCap: 10_000}
}

// reportSeries runs a figure once per b.N iteration batch and reports the
// summed I/O of its first panel point as io/op for visibility.
func benchFigure(b *testing.B, fn func(experiments.Config) ([]experiments.Series, error)) {
	b.Helper()
	var lastIO float64
	for i := 0; i < b.N; i++ {
		series, err := fn(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		lastIO = 0
		for _, s := range series {
			for _, vs := range s.Values {
				for _, v := range vs {
					lastIO += v
				}
			}
		}
	}
	b.ReportMetric(lastIO, "io/op")
}

// BenchmarkTable2Datasets regenerates Table 2 (real dataset loading).
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ux := workload.SyntheticUX(2012)
		ne := workload.SyntheticNE(2012)
		if len(ux) != workload.UXCardinality || len(ne) != workload.NECardinality {
			b.Fatal("cardinality mismatch")
		}
	}
}

// BenchmarkFig12Cardinality regenerates Fig. 12 (I/O vs cardinality).
func BenchmarkFig12Cardinality(b *testing.B) { benchFigure(b, experiments.Fig12) }

// BenchmarkFig13BufferSize regenerates Fig. 13 (I/O vs buffer size).
func BenchmarkFig13BufferSize(b *testing.B) { benchFigure(b, experiments.Fig13) }

// BenchmarkFig14RangeSize regenerates Fig. 14 (I/O vs range size).
func BenchmarkFig14RangeSize(b *testing.B) { benchFigure(b, experiments.Fig14) }

// BenchmarkFig15RealBuffer regenerates Fig. 15 (real datasets, buffer).
func BenchmarkFig15RealBuffer(b *testing.B) { benchFigure(b, experiments.Fig15) }

// BenchmarkFig16RealRange regenerates Fig. 16 (real datasets, range).
func BenchmarkFig16RealRange(b *testing.B) { benchFigure(b, experiments.Fig16) }

// BenchmarkFig17ApproxQuality regenerates Fig. 17 (approximation quality);
// reports the mean ratio as ratio/op.
func BenchmarkFig17ApproxQuality(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig17(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, vs := range s.Values {
			for _, v := range vs {
				sum += v
				n++
			}
		}
		mean = sum / float64(n)
	}
	b.ReportMetric(mean, "ratio/op")
}

// --- Per-algorithm benches at a fixed workload (the Fig. 12 default
// point, scaled): direct comparison of the three MaxRS solvers.

func benchAlgo(b *testing.B, algo Algorithm) {
	const n = 12_500 // 250k × 0.05
	pts := workload.Uniform(2012, n, 4*float64(n))
	objs := make([]Object, len(pts))
	for i, p := range pts {
		objs[i] = Object{X: p.X, Y: p.Y, Weight: p.W}
	}
	queryEdge := 4 * float64(n) / 1000
	var io uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(&Options{
			BlockSize: 4096,
			Memory:    52 * 1024, // 1 MB × 0.05 scale
			Algorithm: algo,
		})
		if err != nil {
			b.Fatal(err)
		}
		d, err := e.Load(context.Background(), objs)
		if err != nil {
			b.Fatal(err)
		}
		e.ResetStats()
		if _, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge); err != nil {
			b.Fatal(err)
		}
		io = e.Stats().Total()
	}
	b.ReportMetric(float64(io), "io/op")
}

func BenchmarkExactMaxRS(b *testing.B) { benchAlgo(b, ExactMaxRS) }
func BenchmarkNaiveSweep(b *testing.B) { benchAlgo(b, NaiveSweep) }
func BenchmarkASBTree(b *testing.B)    { benchAlgo(b, ASBTree) }
func BenchmarkInMemory(b *testing.B)   { benchAlgo(b, InMemory) }

// BenchmarkParallelExactMaxRS runs the BenchmarkExactMaxRS workload at
// several Parallelism values (DESIGN.md §6). io/op must be identical at
// every p — the transfer schedule does not depend on the worker count —
// while ns/op drops toward 1/min(p, cores); the sub-benches assert the
// io/op half of that contract against the p=1 baseline.
func BenchmarkParallelExactMaxRS(b *testing.B) {
	const n = 12_500
	pts := workload.Uniform(2012, n, 4*float64(n))
	objs := make([]Object, len(pts))
	for i, p := range pts {
		objs[i] = Object{X: p.X, Y: p.Y, Weight: p.W}
	}
	queryEdge := 4 * float64(n) / 1000
	var baseIO uint64 // io/op at p=1; 0 when that sub-bench was filtered out
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var io uint64
			for i := 0; i < b.N; i++ {
				e, err := NewEngine(&Options{
					BlockSize:   4096,
					Memory:      52 * 1024,
					Algorithm:   ExactMaxRS,
					Parallelism: p,
				})
				if err != nil {
					b.Fatal(err)
				}
				d, err := e.Load(context.Background(), objs)
				if err != nil {
					b.Fatal(err)
				}
				e.ResetStats()
				if _, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge); err != nil {
					b.Fatal(err)
				}
				io = e.Stats().Total()
			}
			if p == 1 {
				baseIO = io
			} else if baseIO != 0 && io != baseIO {
				b.Fatalf("p=%d: io/op %d != p=1 io/op %d", p, io, baseIO)
			}
			b.ReportMetric(float64(io), "io/op")
		})
	}
}

// BenchmarkFusionExactMaxRS compares the fused root pipeline (the
// default) against Options.Unfused (DESIGN.md §8) at the
// BenchmarkExactMaxRS workload: identical results, with io/op lower by
// the four eliminated event-stream passes plus the eliminated edge-stream
// passes at the root. The sub-benches assert the direction of the delta.
func BenchmarkFusionExactMaxRS(b *testing.B) {
	const n = 12_500
	pts := workload.Uniform(2012, n, 4*float64(n))
	objs := make([]Object, len(pts))
	for i, p := range pts {
		objs[i] = Object{X: p.X, Y: p.Y, Weight: p.W}
	}
	queryEdge := 4 * float64(n) / 1000
	var unfusedIO uint64
	for _, variant := range []string{"unfused", "fused"} {
		b.Run(variant, func(b *testing.B) {
			var io uint64
			for i := 0; i < b.N; i++ {
				e, err := NewEngine(&Options{
					BlockSize: 4096,
					Memory:    52 * 1024,
					Unfused:   variant == "unfused",
				})
				if err != nil {
					b.Fatal(err)
				}
				d, err := e.Load(context.Background(), objs)
				if err != nil {
					b.Fatal(err)
				}
				e.ResetStats()
				if _, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge); err != nil {
					b.Fatal(err)
				}
				io = e.Stats().Total()
			}
			if variant == "unfused" {
				unfusedIO = io
			} else if unfusedIO != 0 && io >= unfusedIO {
				b.Fatalf("fused io/op %d ≥ unfused io/op %d", io, unfusedIO)
			}
			b.ReportMetric(float64(io), "io/op")
		})
	}
}

// BenchmarkPipelinedDisk measures the prefetch/write-behind layer on the
// file-backed disk (DESIGN.md §8): wall-clock is the benchmark, while the
// sub-benches assert io/op is bit-identical with pipelining on and off —
// the layer may only hide latency, never change the transfer schedule.
func BenchmarkPipelinedDisk(b *testing.B) {
	const n = 12_500
	pts := workload.Uniform(2012, n, 4*float64(n))
	objs := make([]Object, len(pts))
	for i, p := range pts {
		objs[i] = Object{X: p.X, Y: p.Y, Weight: p.W}
	}
	queryEdge := 4 * float64(n) / 1000
	var syncIO uint64
	for _, mode := range []PipelineMode{PipelineOff, PipelineOn} {
		name := "sync"
		if mode == PipelineOn {
			name = "pipelined"
		}
		b.Run(name, func(b *testing.B) {
			var io uint64
			for i := 0; i < b.N; i++ {
				e, err := NewEngine(&Options{
					BlockSize: 4096,
					Memory:    52 * 1024,
					OnDisk:    true,
					OnDiskDir: b.TempDir(),
					Pipeline:  mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				d, err := e.Load(context.Background(), objs)
				if err != nil {
					b.Fatal(err)
				}
				e.ResetStats()
				if _, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge); err != nil {
					b.Fatal(err)
				}
				io = e.Stats().Total()
				if err := e.Close(); err != nil {
					b.Fatal(err)
				}
			}
			if mode == PipelineOff {
				syncIO = io
			} else if syncIO != 0 && io != syncIO {
				b.Fatalf("pipelined io/op %d != synchronous io/op %d", io, syncIO)
			}
			b.ReportMetric(float64(io), "io/op")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationFanout sweeps the recursion fan-in m of ExactMaxRS,
// isolating the effect of the paper's m = Θ(M/B) choice: small fan-ins
// add recursion levels, each a full extra pass over the data.
func BenchmarkAblationFanout(b *testing.B) {
	const n = 50_000 // deep recursion at M=64KB: N/M ratio ≈ 64
	pts := workload.Uniform(2012, n, 4*float64(n))
	queryEdge := 4 * float64(n) / 1000
	for _, fanout := range []int{2, 4, 8, 0 /* Θ(M/B) */} {
		name := fmt.Sprintf("m=%d", fanout)
		if fanout == 0 {
			name = "m=M/B"
		}
		b.Run(name, func(b *testing.B) {
			var io uint64
			for i := 0; i < b.N; i++ {
				env := em.MustNewEnv(4096, 64*1024)
				f, err := workload.Write(env.Disk, pts)
				if err != nil {
					b.Fatal(err)
				}
				s, err := core.NewSolver(env, core.Config{Fanout: fanout})
				if err != nil {
					b.Fatal(err)
				}
				env.Disk.ResetStats()
				if _, err := s.SolveObjects(f, queryEdge, queryEdge); err != nil {
					b.Fatal(err)
				}
				io = env.Disk.Stats().Total()
			}
			b.ReportMetric(float64(io), "io/op")
		})
	}
}

// BenchmarkAblationShiftedPoints compares ApproxMaxCRS as published
// (center + 4 shifted points) against a center-only variant, measuring
// achieved quality. The shifted points are what rescue the worst case
// (Theorem 4); this shows what they buy on average.
func BenchmarkAblationShiftedPoints(b *testing.B) {
	objs := workload.Sample(7, workload.SyntheticNE(2012), 10_000)
	const d = 4000.0
	for _, variant := range []string{"center-only", "center+4shifted"} {
		b.Run(variant, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				env := em.MustNewEnv(4096, 256*1024)
				f, err := workload.Write(env.Disk, objs)
				if err != nil {
					b.Fatal(err)
				}
				solver, err := core.NewSolver(env, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				exact := crs.Exact(objs, d)
				var got float64
				if variant == "center-only" {
					rs, err := solver.SolveObjects(f, d, d)
					if err != nil {
						b.Fatal(err)
					}
					p0 := rs.Best()
					got = geom.WeightInCircle(objs, p0, d)
				} else {
					res, err := crs.Approx(solver, f, d)
					if err != nil {
						b.Fatal(err)
					}
					got = res.Weight
				}
				if exact.Weight > 0 {
					ratio = got / exact.Weight
				}
			}
			b.ReportMetric(ratio, "ratio/op")
		})
	}
}

// BenchmarkAblationBaseCaseThreshold varies the memory budget (hence the
// base-case size and recursion depth) at fixed block size, isolating the
// log_{M/B} factor of Theorem 2.
func BenchmarkAblationBaseCaseThreshold(b *testing.B) {
	const n = 25_000
	pts := workload.Uniform(2012, n, 4*float64(n))
	queryEdge := 4 * float64(n) / 1000
	for _, memKB := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("M=%dKB", memKB), func(b *testing.B) {
			var io uint64
			for i := 0; i < b.N; i++ {
				env := em.MustNewEnv(4096, memKB*1024)
				f, err := workload.Write(env.Disk, pts)
				if err != nil {
					b.Fatal(err)
				}
				s, err := core.NewSolver(env, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				env.Disk.ResetStats()
				if _, err := s.SolveObjects(f, queryEdge, queryEdge); err != nil {
					b.Fatal(err)
				}
				io = env.Disk.Stats().Total()
			}
			b.ReportMetric(float64(io), "io/op")
		})
	}
}

// BenchmarkAblationGridCRS compares ApproxMaxCRS (five candidates, EM
// cost) against the resolution-bounded grid scheme of §3's related work
// at several grid resolutions: quality converges only as the candidate
// count explodes, which is the paper's argument for the fixed-candidate
// design.
func BenchmarkAblationGridCRS(b *testing.B) {
	objs := workload.Sample(3, workload.SyntheticNE(2012), 5000)
	const d = 4000.0
	exact := crs.Exact(objs, d)
	for _, div := range []float64{2, 8, 32} {
		b.Run(fmt.Sprintf("delta=d/%g", div), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res := crs.GridCRS(objs, d, d/div)
				if exact.Weight > 0 {
					ratio = res.Weight / exact.Weight
				}
			}
			b.ReportMetric(ratio, "ratio/op")
		})
	}
	b.Run("ApproxMaxCRS", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			env := em.MustNewEnv(4096, 256*1024)
			f, err := workload.Write(env.Disk, objs)
			if err != nil {
				b.Fatal(err)
			}
			solver, err := core.NewSolver(env, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := crs.Approx(solver, f, d)
			if err != nil {
				b.Fatal(err)
			}
			if exact.Weight > 0 {
				ratio = res.Weight / exact.Weight
			}
		}
		b.ReportMetric(ratio, "ratio/op")
	})
}
