package maxrs

import (
	"context"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	csv := `# comment line
1, 1
2,2,5

3,1,1
`
	d, err := e.LoadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	res, err := e.MaxRS(context.Background(), d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 7 { // 1 + 5 + 1, all within one 4x4 placement
		t.Fatalf("score = %g, want 7", res.Score)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"1",       // too few fields
		"1,2,3,4", // too many fields
		"a,2",     // bad x
		"1,b",     // bad y
		"1,2,c",   // bad weight
		"NaN,2",   // NaN coordinate
	}
	for _, c := range cases {
		if _, err := e.LoadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("LoadCSV(%q) should fail", c)
		}
	}
}

func TestLoadCSVMatchesLoad(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	objs := []Object{{X: 1, Y: 2, Weight: 3}, {X: 4, Y: 5, Weight: 6}}
	d1, err := e.LoadCSV(strings.NewReader("1,2,3\n4,5,6\n"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.Load(objs)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.MaxRS(context.Background(), d1, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.MaxRS(context.Background(), d2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Score != r2.Score {
		t.Fatalf("CSV load score %g != Load score %g", r1.Score, r2.Score)
	}
}
