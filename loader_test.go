package maxrs

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	csv := `# comment line
1, 1
2,2,5

3,1,1
`
	d, err := e.LoadCSV(context.Background(), strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	res, err := e.MaxRS(context.Background(), d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 7 { // 1 + 5 + 1, all within one 4x4 placement
		t.Fatalf("score = %g, want 7", res.Score)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"1",       // too few fields
		"1,2,3,4", // too many fields
		"a,2",     // bad x
		"1,b",     // bad y
		"1,2,c",   // bad weight
		"NaN,2",   // NaN coordinate
	}
	for _, c := range cases {
		if _, err := e.LoadCSV(context.Background(), strings.NewReader(c)); err == nil {
			t.Fatalf("LoadCSV(%q) should fail", c)
		}
	}
}

// errAfter yields its payload, then fails with err — an io.Reader whose
// underlying medium dies mid-load.
type errAfter struct {
	r   io.Reader
	err error
}

func (e *errAfter) Read(p []byte) (int, error) {
	n, rerr := e.r.Read(p)
	if rerr == io.EOF {
		return n, e.err
	}
	return n, rerr
}

// TestLoadCSVTruncatedMidRecord: a CSV whose final record is cut off in
// the middle of a field fails with the offending line number and leaks no
// blocks — even though earlier blocks were already flushed to disk.
func TestLoadCSVTruncatedMidRecord(t *testing.T) {
	e := newLeakEngine(t)
	valid := strings.Repeat("1,2,3\n", 200)
	_, err := e.LoadCSV(context.Background(), strings.NewReader(valid+"17,"))
	if err == nil {
		t.Fatal("LoadCSV on a mid-record truncation must fail")
	}
	if !strings.Contains(err.Error(), "line 201") {
		t.Fatalf("error %q does not name the truncated line", err)
	}
	wantInUse(t, e, 0, "after truncated load")
}

// TestLoadCSVShortFinalLine: a final line with too few columns (the tail
// of a partial transfer) fails cleanly, with and without a trailing
// newline.
func TestLoadCSVShortFinalLine(t *testing.T) {
	e := newLeakEngine(t)
	valid := strings.Repeat("1,2,3\n", 200)
	for _, tail := range []string{"42\n", "42"} {
		_, err := e.LoadCSV(context.Background(), strings.NewReader(valid+tail))
		if err == nil {
			t.Fatalf("LoadCSV with short final line %q must fail", tail)
		}
		if !strings.Contains(err.Error(), "line 201") {
			t.Fatalf("error %q does not name the short line", err)
		}
		wantInUse(t, e, 0, "after short final line")
	}
}

// TestLoadCSVReaderErrorMidLoad: the underlying reader failing partway
// through the stream surfaces its error (not a silent short dataset) and
// releases every block written so far.
func TestLoadCSVReaderErrorMidLoad(t *testing.T) {
	e := newLeakEngine(t)
	cause := errors.New("read: device went away")
	valid := strings.Repeat("1,2,3\n", 200)
	_, err := e.LoadCSV(context.Background(), &errAfter{r: strings.NewReader(valid), err: cause})
	if err == nil {
		t.Fatal("LoadCSV must surface the reader's error")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error %q does not wrap the reader's error", err)
	}
	wantInUse(t, e, 0, "after reader error")
}

func TestLoadCSVMatchesLoad(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	objs := []Object{{X: 1, Y: 2, Weight: 3}, {X: 4, Y: 5, Weight: 6}}
	d1, err := e.LoadCSV(context.Background(), strings.NewReader("1,2,3\n4,5,6\n"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.MaxRS(context.Background(), d1, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.MaxRS(context.Background(), d2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Score != r2.Score {
		t.Fatalf("CSV load score %g != Load score %g", r1.Score, r2.Score)
	}
}
