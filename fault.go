package maxrs

import (
	"time"

	"maxrs/internal/em"
)

// Typed storage-fault errors, surfaced by queries when the EM layer hits
// a fault it cannot recover (DESIGN.md §11). They are the em package's
// sentinel values re-exported, so errors.Is classifies faults across the
// API boundary without message matching.
var (
	// ErrIOFault wraps every read or write transfer that failed at the
	// storage layer: a transient fault that exhausted its retries, or a
	// permanent one (a bad block).
	ErrIOFault = em.ErrIOFault
	// ErrBlockCorrupt wraps every block whose content failed CRC32C
	// verification (torn write, bit rot, injected corruption) and could
	// not be recovered by rereading.
	ErrBlockCorrupt = em.ErrBlockCorrupt
)

// IsTransientFault reports whether err is a retryable storage fault —
// one that a retry (or a retried query) may clear, as opposed to a
// permanent fault or a corrupt block that keeps failing.
func IsTransientFault(err error) bool { return em.IsTransient(err) }

// RetryPolicy caps how transient storage faults and checksum mismatches
// are retried on the engine's block transfers (Options.Retry), and how
// the distributed coordinator retries worker calls (DistOptions.Retry).
// The zero value never retries. Backoff doubles from BaseDelay per
// attempt, capped at MaxDelay (0 = uncapped), and respects the query
// context: a cancelled query aborts its backoff sleep immediately.
// Retries never change the counted transfer schedule of a fault-free run
// — the I/O metric stays bit-identical with any policy.
type RetryPolicy struct {
	// MaxRetries is the number of additional attempts after the first
	// failed transfer (0 = fail on the first fault).
	MaxRetries int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0 = no cap).
	MaxDelay time.Duration
	// JitterSeed, when non-zero, replaces the deterministic doubling with
	// seeded decorrelated jitter: each retry sleeps a duration drawn
	// uniformly from [BaseDelay, min(3·previous, MaxDelay)]. Without it,
	// parallel workers tripping over the same transient fault retry in
	// lockstep and collide again; with it their backoffs spread out, while
	// a fixed seed keeps serial retry schedules exactly reproducible.
	JitterSeed int64
}

func (p RetryPolicy) em() em.RetryPolicy {
	return em.RetryPolicy{
		MaxRetries: p.MaxRetries, BaseDelay: p.BaseDelay,
		MaxDelay: p.MaxDelay, JitterSeed: p.JitterSeed,
	}
}

// FaultOp selects which transfer direction a scheduled fault targets.
type FaultOp int

// Fault operations.
const (
	// OpRead targets read transfers (disk → memory).
	OpRead FaultOp = iota
	// OpWrite targets write transfers (memory → disk).
	OpWrite
)

// FaultKind is a class of injected storage fault (DESIGN.md §11).
type FaultKind int

// Fault classes.
const (
	// FaultTransient fails the targeted transfer once, retryably; the
	// next attempt succeeds.
	FaultTransient FaultKind = iota
	// FaultPermanent fails the targeted transfer and marks the block bad
	// until it is freed (a realloc models a remapped sector).
	FaultPermanent
	// FaultCorrupt delivers the targeted read with flipped bits, once;
	// checksums detect it, a retry rereads clean data.
	FaultCorrupt
	// FaultTorn persists the targeted write with flipped bits; every
	// later read fails verification until the block is overwritten.
	FaultTorn
	// FaultLatency delays the targeted transfer by FaultPlan.Latency,
	// then performs it normally.
	FaultLatency
)

// FaultAt schedules one fault at an exact transfer index, counted per
// direction from the moment the plan is installed: Transfer == 1 targets
// the first read (OpRead) or write (OpWrite) attempt on the disk.
type FaultAt struct {
	Op       FaultOp
	Transfer uint64 // 1-based transfer-attempt index within Op
	Kind     FaultKind
}

// FaultPlan configures deterministic storage-fault injection
// (Engine.InjectFaults): exact per-transfer schedules (At) compose with
// seed-driven per-transfer fault rates. A zero plan injects nothing, and
// an installed plan that fires nothing leaves the counted transfer
// schedule bit-identical to an uninstrumented engine. The chaos hook for
// tests and benchmarks — not meant for production configuration.
type FaultPlan struct {
	// Seed seeds the rate-driven draws (used only when a rate is > 0).
	Seed int64
	// TransientReadRate / TransientWriteRate are per-transfer
	// probabilities of a retryable fault.
	TransientReadRate  float64
	TransientWriteRate float64
	// CorruptReadRate is the per-read probability of one-shot corruption.
	CorruptReadRate float64
	// LatencyRate is the per-transfer probability of a latency spike of
	// Latency.
	LatencyRate float64
	Latency     time.Duration
	// At schedules faults at exact transfer indices, taking precedence
	// over the rates for those transfers.
	At []FaultAt
}

func (p FaultPlan) em() em.FaultPlan {
	out := em.FaultPlan{
		Seed:               p.Seed,
		TransientReadRate:  p.TransientReadRate,
		TransientWriteRate: p.TransientWriteRate,
		CorruptReadRate:    p.CorruptReadRate,
		LatencyRate:        p.LatencyRate,
		Latency:            p.Latency,
	}
	for _, at := range p.At {
		out.At = append(out.At, em.FaultAt{
			Op:       em.FaultOp(at.Op),
			Transfer: at.Transfer,
			Kind:     em.FaultKind(at.Kind),
		})
	}
	return out
}

// FaultStats counts fault-handling activity on the engine's primary disk
// since the last InjectFaults (injected counts) / engine creation (retry
// and checksum counts). Shard disks inherit the engine's retry policy,
// checksums, and fault plan, so faults there are recovered identically,
// but their counters are ephemeral (per query) and not folded in.
type FaultStats struct {
	// ReadRetries / WriteRetries count retry attempts performed under the
	// retry policy (not the initial attempts, which count in IOStats only
	// when they succeed).
	ReadRetries  uint64
	WriteRetries uint64
	// ChecksumFailures counts read attempts whose content failed CRC32C
	// verification.
	ChecksumFailures uint64
	// Injected* count faults the injected plan actually fired, by kind.
	InjectedTransient uint64
	InjectedPermanent uint64
	InjectedCorrupt   uint64
	InjectedTorn      uint64
	InjectedLatency   uint64
}

// InjectFaults arms deterministic storage-fault injection on the engine's
// primary disk per plan, and on every shard disk created afterwards
// (each shard disk's transfer indices count from zero). Calling it again
// replaces the previous plan and restarts the transfer indices; a zero
// plan disarms injection. An armed plan that fires nothing leaves results
// and counted transfers bit-identical.
func (e *Engine) InjectFaults(plan FaultPlan) {
	ep := plan.em()
	e.faultPlan.Store(&ep)
	e.env.Disk.InjectFaults(ep)
}

// FaultStats returns the engine's fault-handling counters (see the
// FaultStats type for scope).
func (e *Engine) FaultStats() FaultStats {
	fs := e.env.Disk.FaultStats()
	return FaultStats{
		ReadRetries:       fs.ReadRetries,
		WriteRetries:      fs.WriteRetries,
		ChecksumFailures:  fs.ChecksumFailures,
		InjectedTransient: fs.InjectedTransient,
		InjectedPermanent: fs.InjectedPermanent,
		InjectedCorrupt:   fs.InjectedCorrupt,
		InjectedTorn:      fs.InjectedTorn,
		InjectedLatency:   fs.InjectedLatency,
	}
}
