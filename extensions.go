package maxrs

import (
	"errors"
	"fmt"
	"io"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

// This file implements the extensions the paper lists as future work (§8):
// the MaxkRS problem (top-k placements), the MinRS problem, and the
// alternative aggregates mentioned in §2 (COUNT alongside SUM).

// TopK solves the MaxkRS problem with the standard greedy semantics: it
// repeatedly finds the best location, removes the objects its rectangle
// covers, and recurses, returning up to k results in non-increasing score
// order. Results therefore cover disjoint object subsets (their rectangles
// may still geometrically overlap empty space). Iteration stops early when
// no remaining object can be covered.
//
// Each round costs one full MaxRS solve plus one linear filtering scan, so
// the total is k times the cost of Engine.MaxRS.
func (e *Engine) TopK(d *Dataset, w, h float64, k int) ([]Result, error) {
	if err := checkQuery(w, h); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("maxrs: k = %d must be ≥ 1", k)
	}
	results := make([]Result, 0, k)
	cur := d.file
	owned := false // whether cur is an intermediate we must release
	for round := 0; round < k; round++ {
		if cur.Size() == 0 {
			break
		}
		res, err := e.solver.SolveObjects(cur, w, h)
		if err != nil {
			return nil, err
		}
		if res.Sum <= 0 {
			break // nothing left to cover
		}
		results = append(results, fromSweep(res))
		rect := geom.RectFromCenter(res.Best(), w, h)
		next, err := filterObjects(e.env, cur, func(o rec.Object) bool {
			return !rect.Contains(geom.Point{X: o.X, Y: o.Y})
		})
		if err != nil {
			return nil, err
		}
		if owned {
			if err := cur.Release(); err != nil {
				return nil, err
			}
		}
		cur, owned = next, true
	}
	if owned {
		if err := cur.Release(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// filterObjects streams in into a fresh file keeping objects where keep
// returns true.
func filterObjects(env em.Env, in *em.File, keep func(rec.Object) bool) (*em.File, error) {
	rr, err := em.NewRecordReader(in, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	out := em.NewFile(env.Disk)
	w, err := em.NewRecordWriter(out, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	for {
		o, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if keep(o) {
			if err := w.Write(o); err != nil {
				return nil, err
			}
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// MinRS finds the center location of a w×h rectangle minimizing the total
// covered weight — the MinRS problem of §8. It negates every weight and
// runs ExactMaxRS, so a location whose rectangle covers nothing is a valid
// (score 0) answer when one exists; with negative-weight objects present
// the optimum may be strictly below zero.
func (e *Engine) MinRS(d *Dataset, w, h float64) (Result, error) {
	if err := checkQuery(w, h); err != nil {
		return Result{}, err
	}
	negated, err := mapObjects(e.env, d.file, func(o rec.Object) rec.Object {
		o.W = -o.W
		return o
	})
	if err != nil {
		return Result{}, err
	}
	res, err := e.solver.SolveObjects(negated, w, h)
	if err != nil {
		return Result{}, err
	}
	if err := negated.Release(); err != nil {
		return Result{}, err
	}
	out := fromSweep(res)
	out.Score = -out.Score
	return out, nil
}

// CountRS solves MaxRS under the COUNT aggregate (§2): every object
// contributes 1 regardless of its weight.
func (e *Engine) CountRS(d *Dataset, w, h float64) (Result, error) {
	if err := checkQuery(w, h); err != nil {
		return Result{}, err
	}
	unit, err := mapObjects(e.env, d.file, func(o rec.Object) rec.Object {
		o.W = 1
		return o
	})
	if err != nil {
		return Result{}, err
	}
	res, err := e.solver.SolveObjects(unit, w, h)
	if err != nil {
		return Result{}, err
	}
	if err := unit.Release(); err != nil {
		return Result{}, err
	}
	return fromSweep(res), nil
}

// mapObjects streams in into a fresh file applying f to every record.
func mapObjects(env em.Env, in *em.File, f func(rec.Object) rec.Object) (*em.File, error) {
	rr, err := em.NewRecordReader(in, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	out := em.NewFile(env.Disk)
	w, err := em.NewRecordWriter(out, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	for {
		o, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if err := w.Write(f(o)); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
