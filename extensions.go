package maxrs

import (
	"context"
	"errors"
	"fmt"
	"io"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
)

// This file implements the extensions the paper lists as future work (§8):
// the MaxkRS problem (top-k placements), the MinRS problem, and the
// alternative aggregates mentioned in §2 (COUNT alongside SUM).

// TopK solves the MaxkRS problem with the standard greedy semantics: it
// repeatedly finds the best location, removes the objects its rectangle
// covers, and recurses, returning up to k results in non-increasing score
// order. Results therefore cover disjoint object subsets (their rectangles
// may still geometrically overlap empty space). Iteration stops early when
// no remaining object can be covered. Safe to call concurrently with other
// queries; each Result's Stats is the cost of its round alone.
//
// Each round costs one full MaxRS solve plus one linear filtering scan, so
// the total is k times the cost of Engine.MaxRS. Cancelling ctx aborts the
// current round within one block-transfer's work, releasing the round's
// intermediates; QueryOptions override the engine defaults for every
// round of this call.
func (e *Engine) TopK(ctx context.Context, d *Dataset, w, h float64, k int, opts ...QueryOption) (_ []Result, err error) {
	if err := checkQuery(w, h); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k = %d must be ≥ 1", ErrInvalidQuery, k)
	}
	q, err := e.begin(ctx, d, kindTopK, w, h, opts)
	if err != nil {
		return nil, err
	}
	defer q.end(&err)
	env := q.env()
	// Every round removes ≥ 1 object, so results never exceed d.Len();
	// don't let an untrusted huge k size the allocation.
	results := make([]Result, 0, min(k, d.Len()))
	cur := q.base.f
	owned := false // whether cur is an intermediate we must release
	defer func() {
		if owned {
			_ = cur.Release()
		}
	}()
	shards := q.shardsFor() // resolved once; every round solves alike
	if q.delta != nil {
		// Pending mutations: every round solves the materialized
		// effective set (and its filtrates), with the shard guard on its
		// exact statistics — the rounds run bit-identically to a reload.
		f, st, err := q.materializeEff(nil)
		if err != nil {
			return nil, err
		}
		cur, owned = f, true
		shards = 0
		if st.MinW >= 0 {
			shards = q.requestedShards()
		}
	}
	var prev QueryStats // scope snapshot at the start of the round
	for round := 0; round < k; round++ {
		if cur.Size() == 0 {
			break
		}
		res, shardStats, err := q.solveObjects(cur, w, h, shards)
		if err != nil {
			return nil, err
		}
		if res.Sum <= 0 {
			break // nothing left to cover
		}
		out := fromSweep(res)
		out.Algorithm = ExactMaxRS
		out.Shards = len(shardStats)
		out.ShardStats = shardStats
		// Every round carries the same plan; its prediction covers one
		// solve over the full dataset — later rounds solve shrinking
		// filtrates, so their measured Stats fall below it.
		q.annotate(&out)
		if round < k-1 {
			// The final round's filtrate would never be solved — skip the
			// pass instead of paying its scan + rewrite.
			rect := geom.RectFromCenter(res.Best(), w, h)
			next, err := filterObjects(env, cur, func(o rec.Object) bool {
				return !rect.Contains(geom.Point{X: o.X, Y: o.Y})
			})
			if err != nil {
				return nil, err
			}
			if owned {
				if err := cur.Release(); err != nil {
					_ = next.Release()
					return nil, err
				}
			}
			cur, owned = next, true
		}
		now := queryStatsOf(q.sc)
		out.Stats.Reads, out.Stats.Writes = now.Reads-prev.Reads, now.Writes-prev.Writes
		prev = now
		results = append(results, out)
	}
	if owned {
		owned = false
		if err := cur.Release(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// filterObjects streams in into a fresh file keeping objects where keep
// returns true. The input is read and the output written under env's stat
// scope; on error the partial output is released.
func filterObjects(env em.Env, in *em.File, keep func(rec.Object) bool) (*em.File, error) {
	return transformObjects(env, in, func(o rec.Object, emit func(rec.Object) error) error {
		if keep(o) {
			return emit(o)
		}
		return nil
	})
}

// mapObjects streams in into a fresh file applying f to every record.
func mapObjects(env em.Env, in *em.File, f func(rec.Object) rec.Object) (*em.File, error) {
	return transformObjects(env, in, func(o rec.Object, emit func(rec.Object) error) error {
		return emit(f(o))
	})
}

// transformObjects streams in into a fresh file on env's disk via fn,
// which may emit zero or more records per input. On error no blocks of
// the partial output stay allocated.
func transformObjects(env em.Env, in *em.File, fn func(o rec.Object, emit func(rec.Object) error) error) (_ *em.File, err error) {
	rr, err := em.NewRecordReaderScoped(in, rec.ObjectCodec{}, env.Scope)
	if err != nil {
		return nil, err
	}
	out := env.NewFile()
	defer func() {
		if err != nil {
			_ = out.Release()
		}
	}()
	w, err := em.NewRecordWriter(out, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	for {
		o, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if err := fn(o, w.Write); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// MinRS finds the center location of a w×h rectangle minimizing the total
// covered weight — the MinRS problem of §8. It negates every weight and
// runs ExactMaxRS, so a location whose rectangle covers nothing is a valid
// (score 0) answer when one exists; with negative-weight objects present
// the optimum may be strictly below zero. Safe to call concurrently with
// other queries, and cancellable through ctx like every query. MinRS
// never shards — WithShards included: the negation produces negative
// weights, for which the shard merge is not exact (DESIGN.md §9.3);
// Result.Shards is always 0.
func (e *Engine) MinRS(ctx context.Context, d *Dataset, w, h float64, opts ...QueryOption) (Result, error) {
	res, err := e.solveMapped(ctx, d, w, h, opts, kindMinRS, func(o rec.Object) rec.Object {
		o.W = -o.W
		return o
	})
	if err != nil {
		return Result{}, err
	}
	res.Score = -res.Score
	return res, nil
}

// CountRS solves MaxRS under the COUNT aggregate (§2): every object
// contributes 1 regardless of its weight. Safe to call concurrently with
// other queries, and cancellable through ctx like every query. The mapped
// weights are all 1, so CountRS shards even on datasets whose own weights
// would force MaxRS to fall back.
func (e *Engine) CountRS(ctx context.Context, d *Dataset, w, h float64, opts ...QueryOption) (Result, error) {
	return e.solveMapped(ctx, d, w, h, opts, kindCountRS, func(o rec.Object) rec.Object {
		o.W = 1
		return o
	})
}

// solveMapped runs ExactMaxRS on a weight-transformed copy of the dataset
// with the shard count the kind allows (MinRS never shards — the mapped
// weights are negative; CountRS shards on the requested count regardless
// of the dataset's own weights — the mapped weights are all 1), releasing
// the intermediate file on every path (solve errors and cancellation
// included).
func (e *Engine) solveMapped(ctx context.Context, d *Dataset, w, h float64, opts []QueryOption, kind queryKind, f func(rec.Object) rec.Object) (_ Result, err error) {
	if err := checkQuery(w, h); err != nil {
		return Result{}, err
	}
	q, err := e.begin(ctx, d, kind, w, h, opts)
	if err != nil {
		return Result{}, err
	}
	defer q.end(&err)
	mapped, owned, err := q.effFile(f)
	if err != nil {
		return Result{}, err
	}
	defer func() {
		if !owned {
			return
		}
		if rerr := mapped.Release(); rerr != nil && err == nil {
			err = rerr
		}
	}()
	shards := 0
	if kind == kindCountRS {
		shards = q.requestedShards()
	}
	res, shardStats, err := q.solveObjects(mapped, w, h, shards)
	if err != nil {
		return Result{}, err
	}
	return q.result(res, shardStats, ExactMaxRS), nil
}
