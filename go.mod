module maxrs

go 1.24
