package maxrs

import (
	"bufio"
	"context"
	"errors"
	"math"
	"os"
	"strings"
	"testing"

	"maxrs/internal/plan"
)

// newLeakEngine returns a small-budget engine whose disk starts empty.
func newLeakEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func wantInUse(t *testing.T, e *Engine, want int, context string) {
	t.Helper()
	if n := e.BlocksInUse(); n != want {
		t.Fatalf("%s: BlocksInUse = %d, want %d", context, n, want)
	}
}

func TestLoadErrorLeaksNothing(t *testing.T) {
	e := newLeakEngine(t)
	// Enough valid objects to flush blocks before the bad one errors out.
	objs := make([]Object, 200)
	for i := range objs {
		objs[i] = Object{X: float64(i), Y: float64(i), Weight: 1}
	}
	for _, bad := range []Object{
		{X: math.NaN(), Y: 0, Weight: 1},
		{X: math.Inf(1), Y: 0, Weight: 1},
		{X: 0, Y: math.Inf(-1), Weight: 1},
		{X: 0, Y: 0, Weight: math.Inf(1)},
	} {
		if _, err := e.Load(context.Background(), append(append([]Object{}, objs...), bad)); err == nil {
			t.Fatalf("Load(%+v) must fail", bad)
		}
		wantInUse(t, e, 0, "after failed Load")
	}
}

func TestLoadCSVErrorLeaksNothing(t *testing.T) {
	e := newLeakEngine(t)
	valid := strings.Repeat("1,2,3\n", 200) // several blocks before the error
	cases := []struct {
		name, csv, wantErr string
	}{
		{"parse", valid + "1,notanumber\n", "line 201"},
		{"inf", valid + "1,+Inf\n", "line 201"},
		{"nan", valid + "NaN,2\n", "line 201"},
		{"columns", valid + "1,2,3,4\n", "line 201"},
		{"toolong", valid + strings.Repeat("9", 2<<20) + ",1\n", "line 201"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.LoadCSV(context.Background(), strings.NewReader(tc.csv))
			if err == nil {
				t.Fatal("LoadCSV must fail")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending line (%s)", err, tc.wantErr)
			}
			if tc.name == "toolong" && !errors.Is(err, bufio.ErrTooLong) {
				t.Fatalf("error %q does not wrap bufio.ErrTooLong", err)
			}
			wantInUse(t, e, 0, "after failed LoadCSV")
		})
	}
}

// corruptDataset returns a Dataset whose file ends mid-record, so every
// scan of it fails with a truncated-record error partway through — after
// intermediate files have already been created and partially written.
func corruptDataset(t *testing.T, e *Engine) *Dataset {
	t.Helper()
	f := e.env.NewFile()
	w := f.NewWriter()
	// Many whole records (several blocks), then a ragged tail.
	if _, err := w.Write(make([]byte, 24*200+7)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return e.newDataset(f, 200, plan.Stats{N: 200})
}

// TestQueryErrorLeaksNothing drives every query type and algorithm into a
// mid-stream failure (truncated dataset) and requires Disk.InUse to come
// back to the pre-call level — the dataset's own blocks.
func TestQueryErrorLeaksNothing(t *testing.T) {
	algorithms := []Algorithm{ExactMaxRS, NaiveSweep, ASBTree, InMemory}
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			e, err := NewEngine(&Options{BlockSize: 512, Memory: 4096, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			d := corruptDataset(t, e)
			base := e.BlocksInUse()
			if _, err := e.MaxRS(context.Background(), d, 10, 10); err == nil {
				t.Fatal("MaxRS on corrupt dataset must fail")
			}
			wantInUse(t, e, base, "after failed MaxRS")
		})
	}

	e := newLeakEngine(t)
	d := corruptDataset(t, e)
	base := e.BlocksInUse()
	if _, err := e.MinRS(context.Background(), d, 10, 10); err == nil {
		t.Fatal("MinRS must fail")
	}
	wantInUse(t, e, base, "after failed MinRS")
	if _, err := e.CountRS(context.Background(), d, 10, 10); err == nil {
		t.Fatal("CountRS must fail")
	}
	wantInUse(t, e, base, "after failed CountRS")
	if _, err := e.TopK(context.Background(), d, 10, 10, 3); err == nil {
		t.Fatal("TopK must fail")
	}
	wantInUse(t, e, base, "after failed TopK")
	if _, err := e.MaxCRS(context.Background(), d, 10); err == nil {
		t.Fatal("MaxCRS must fail")
	}
	wantInUse(t, e, base, "after failed MaxCRS")
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	wantInUse(t, e, 0, "after release")
}

// TestOneShotCleansUpOnDisk verifies the one-shot convenience functions
// close their OnDisk engine — removing the backing temp file — on success
// and on load/solve errors.
func TestOneShotCleansUpOnDisk(t *testing.T) {
	dir := t.TempDir()
	opts := &Options{OnDisk: true, OnDiskDir: dir}
	objs := []Object{{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 1}}

	if _, err := MaxRS(context.Background(), objs, 4, 4, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := MaxRS(context.Background(), []Object{{X: math.Inf(1)}}, 4, 4, opts); err == nil {
		t.Fatal("load error expected")
	}
	if _, err := MaxRS(context.Background(), objs, -1, 4, opts); err == nil {
		t.Fatal("solve error expected")
	}
	if _, err := MaxCRS(context.Background(), objs, 4, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := MaxCRS(context.Background(), []Object{{X: math.NaN()}}, 4, opts); err == nil {
		t.Fatal("load error expected")
	}
	if _, err := MaxCRS(context.Background(), objs, -2, opts); err == nil {
		t.Fatal("solve error expected")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("leaked backing files: %v", names)
	}
}
