package maxrs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// deltaEngineOpts builds the option matrix legs for the mutate/reload
// equivalence tests: backing (in-memory vs on-disk blocks) × solver
// parallelism. Shard counts vary per dataset via SetShards.
func deltaEngineOpts(mem bool, parallelism int) *Options {
	o := &Options{BlockSize: 512, Memory: 8192, Parallelism: parallelism}
	if !mem {
		o.OnDisk = true
	}
	return o
}

// idObj tracks one live effective object with its engine-assigned id,
// in the engine's canonical materialization order (base order, then
// inserts by ascending id) — the order a reload must use to be
// bit-identical.
type idObj struct {
	id  uint64
	obj Object
}

// reloadSolve loads the effective objects into a fresh engine with the
// same options and solves, returning the reference Result. The fresh
// engine's disk is independent, so the reference run never perturbs the
// mutated engine's block accounting.
func reloadSolve(t *testing.T, opts *Options, objs []idObj, shards int, w, h float64) Result {
	t.Helper()
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	plain := make([]Object, len(objs))
	for i, o := range objs {
		plain[i] = o.obj
	}
	d, err := e.Load(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Release() }()
	if err := d.SetShards(shards); err != nil {
		t.Fatal(err)
	}
	res, err := e.MaxRS(context.Background(), d, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameGeometry compares the solution geometry — Location, Score, Region
// — bit-exactly (NaN equals NaN: an unbounded optimal region, as MinRS
// produces on sparse data, has a NaN center in both results). Stats are
// intentionally excluded: the delta paths exist to spend fewer transfers
// than a reload.
func sameGeometry(a, b Result) bool {
	return eqF(a.Location.X, b.Location.X) && eqF(a.Location.Y, b.Location.Y) &&
		eqF(a.Score, b.Score) &&
		eqF(a.Region.MinX, b.Region.MinX) && eqF(a.Region.MaxX, b.Region.MaxX) &&
		eqF(a.Region.MinY, b.Region.MinY) && eqF(a.Region.MaxY, b.Region.MaxY)
}

// eqF is float equality with NaN == NaN.
func eqF(a, b float64) bool {
	return a == b || (a != a && b != b)
}

// TestMutateReloadEquivalence is the exactness matrix of the delta
// layer: random insert/delete/compact sequences across backing ×
// shards × parallelism, with the mutated dataset's answer required to
// be bit-identical to a from-scratch reload of the effective objects
// after every step. Weights are positive (sharded legs stay eligible —
// negative weights force the unsharded fallback) and dyadic, so the
// sweep sums are exact and bit-identity is well-defined.
func TestMutateReloadEquivalence(t *testing.T) {
	const (
		w, h  = 8.0, 6.0
		baseN = 120
		steps = 14
	)
	for _, mem := range []bool{true, false} {
		for _, shards := range []int{0, 2} {
			for _, par := range []int{1, 4} {
				name := fmt.Sprintf("mem=%v/shards=%d/p=%d", mem, shards, par)
				t.Run(name, func(t *testing.T) {
					opts := deltaEngineOpts(mem, par)
					e, err := NewEngine(opts)
					if err != nil {
						t.Fatal(err)
					}
					defer e.Close()
					rng := rand.New(rand.NewSource(int64(baseN + shards*10 + par)))
					objs := make([]Object, baseN)
					for i := range objs {
						objs[i] = Object{
							X:      rng.Float64() * 100,
							Y:      rng.Float64() * 100,
							Weight: 1 + dyadic(rng),
						}
					}
					d, err := e.Load(context.Background(), objs)
					if err != nil {
						t.Fatal(err)
					}
					defer func() { _ = d.Release() }()
					if err := d.SetShards(shards); err != nil {
						t.Fatal(err)
					}
					live := make([]idObj, len(objs))
					for i, o := range objs {
						live[i] = idObj{id: uint64(i), obj: o}
					}
					check := func(step string) {
						t.Helper()
						got, err := e.MaxRS(context.Background(), d, w, h)
						if err != nil {
							t.Fatalf("%s: MaxRS: %v", step, err)
						}
						want := reloadSolve(t, opts, live, shards, w, h)
						if !sameGeometry(got, want) {
							t.Fatalf("%s: mutated dataset diverged from reload:\ngot  loc=%+v score=%v region=%+v (delta=%+v)\nwant loc=%+v score=%v region=%+v",
								step, got.Location, got.Score, got.Region, got.Plan.Delta,
								want.Location, want.Score, want.Region)
						}
						if d.Len() != len(live) {
							t.Fatalf("%s: Len() = %d, want %d", step, d.Len(), len(live))
						}
					}
					check("initial")
					for step := 0; step < steps; step++ {
						switch op := rng.Intn(5); {
						case op <= 1: // insert a batch
							n := 1 + rng.Intn(6)
							batch := make([]Object, n)
							for i := range batch {
								batch[i] = Object{
									X:      rng.Float64() * 100,
									Y:      rng.Float64() * 100,
									Weight: 1 + dyadic(rng),
								}
							}
							ids, err := d.Insert(context.Background(), batch)
							if err != nil {
								t.Fatalf("step %d: Insert: %v", step, err)
							}
							for i, id := range ids {
								live = append(live, idObj{id: id, obj: batch[i]})
							}
						case op <= 3: // delete a batch of live ids
							if len(live) == 0 {
								continue
							}
							n := 1 + rng.Intn(4)
							if n > len(live) {
								n = len(live)
							}
							ids := make([]uint64, 0, n)
							seen := make(map[int]bool)
							for len(ids) < n {
								i := rng.Intn(len(live))
								if seen[i] {
									continue
								}
								seen[i] = true
								ids = append(ids, live[i].id)
							}
							removed, err := d.Delete(context.Background(), ids)
							if err != nil {
								t.Fatalf("step %d: Delete(%v): %v", step, ids, err)
							}
							if len(removed) != len(ids) {
								t.Fatalf("step %d: Delete removed %d, want %d", step, len(removed), len(ids))
							}
							kept := live[:0]
							for _, o := range live {
								if !seen2(ids, o.id) {
									kept = append(kept, o)
								}
							}
							live = kept
						default: // compact
							if err := d.Compact(context.Background()); err != nil {
								t.Fatalf("step %d: Compact: %v", step, err)
							}
							if d.Pending() != 0 {
								t.Fatalf("step %d: Pending() = %d after Compact", step, d.Pending())
							}
						}
						check(fmt.Sprintf("step %d", step))
					}
					// The other query kinds must see the same effective
					// dataset; spot-check them once per leg against reload.
					checkKinds(t, e, opts, d, live, shards)
					if err := d.Release(); err != nil {
						t.Fatal(err)
					}
					if n := e.BlocksInUse(); n != 0 {
						t.Fatalf("BlocksInUse = %d after Release, want 0", n)
					}
				})
			}
		}
	}
}

// dyadic returns a random weight increment that is a multiple of 1/8.
// Fixed-point weights make every float64 partial sum exact, so the slab
// sweep's sums are independent of summation order and the combined
// delta path is bit-identical to a reload — with arbitrary float
// weights the two can differ in the last ULP because the delta objects
// add x-edges to the reload's elementary-interval grid.
func dyadic(rng *rand.Rand) float64 {
	return float64(rng.Intn(8)) / 8
}

func closeTo(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func seen2(ids []uint64, id uint64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// checkKinds cross-checks TopK, MinRS, CountRS and MaxCRS on the
// mutated dataset against a reload of the effective objects.
func checkKinds(t *testing.T, e *Engine, opts *Options, d *Dataset, live []idObj, shards int) {
	t.Helper()
	ref, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	plain := make([]Object, len(live))
	for i, o := range live {
		plain[i] = o.obj
	}
	rd, err := ref.Load(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rd.Release() }()
	if err := rd.SetShards(shards); err != nil {
		t.Fatal(err)
	}
	const w, h = 8.0, 6.0
	gotK, err := e.TopK(context.Background(), d, w, h, 3)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	wantK, err := ref.TopK(context.Background(), rd, w, h, 3)
	if err != nil {
		t.Fatalf("reload TopK: %v", err)
	}
	if len(gotK) != len(wantK) {
		t.Fatalf("TopK returned %d results, reload %d", len(gotK), len(wantK))
	}
	for i := range gotK {
		if !sameGeometry(gotK[i], wantK[i]) {
			t.Fatalf("TopK[%d] diverged: got %+v score %v, want %+v score %v",
				i, gotK[i].Location, gotK[i].Score, wantK[i].Location, wantK[i].Score)
		}
	}
	for _, kind := range []struct {
		name string
		run  func(*Engine, *Dataset) (Result, error)
	}{
		{"MinRS", func(e *Engine, d *Dataset) (Result, error) {
			return e.MinRS(context.Background(), d, w, h)
		}},
		{"CountRS", func(e *Engine, d *Dataset) (Result, error) {
			return e.CountRS(context.Background(), d, w, h)
		}},
	} {
		got, err := kind.run(e, d)
		if err != nil {
			t.Fatalf("%s: %v", kind.name, err)
		}
		want, err := kind.run(ref, rd)
		if err != nil {
			t.Fatalf("reload %s: %v", kind.name, err)
		}
		if !sameGeometry(got, want) {
			t.Fatalf("%s diverged: got %+v score %v, want %+v score %v",
				kind.name, got.Location, got.Score, want.Location, want.Score)
		}
	}
	gotC, err := e.MaxCRS(context.Background(), d, w)
	if err != nil {
		t.Fatalf("MaxCRS: %v", err)
	}
	wantC, err := ref.MaxCRS(context.Background(), rd, w)
	if err != nil {
		t.Fatalf("reload MaxCRS: %v", err)
	}
	if gotC.Location != wantC.Location || gotC.Score != wantC.Score {
		t.Fatalf("MaxCRS diverged: got %+v score %v, want %+v score %v",
			gotC.Location, gotC.Score, wantC.Location, wantC.Score)
	}
}

// TestDeltaCombinedPath pins the adaptive fast path: a light insert far
// from the incumbent optimum is answered from the cached base solution
// ("combined", no re-solve), a heavy insert near it forces the fused
// re-solve — and both answers are bit-identical to a reload.
func TestDeltaCombinedPath(t *testing.T) {
	opts := &Options{BlockSize: 512, Memory: 8192}
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// A dense heavy cluster near the origin and scattered light noise.
	// Weights are dyadic (multiples of 1/8) so every partial sum is exact
	// in float64 and bit-identity between the combined and reload paths
	// is well-defined (see the tryCombined doc comment).
	rng := rand.New(rand.NewSource(7))
	var objs []Object
	for i := 0; i < 40; i++ {
		objs = append(objs, Object{X: rng.Float64() * 4, Y: rng.Float64() * 3, Weight: 10 + dyadic(rng)})
	}
	for i := 0; i < 40; i++ {
		objs = append(objs, Object{X: 200 + rng.Float64()*400, Y: 200 + rng.Float64()*300, Weight: 0.5 + dyadic(rng)})
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Release() }()
	const w, h = 8.0, 6.0

	// Warm the per-generation base-solution cache.
	if _, err := e.MaxRS(context.Background(), d, w, h); err != nil {
		t.Fatal(err)
	}

	// Far + light: influence rectangle disjoint from the incumbent
	// strip, delta bound below the incumbent sum → combined.
	ids, err := d.Insert(context.Background(), []Object{{X: 600, Y: 600, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	live := append(sliceOf(objs), idObj{id: ids[0], obj: Object{X: 600, Y: 600, Weight: 1}})
	res, err := e.MaxRS(context.Background(), d, w, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Delta == nil || res.Plan.Delta.Path != "combined" {
		t.Fatalf("far light insert: Plan.Delta = %+v, want path \"combined\"", res.Plan.Delta)
	}
	if want := reloadSolve(t, opts, live, 0, w, h); !sameGeometry(res, want) {
		t.Fatalf("combined path diverged from reload: got %+v/%v, want %+v/%v",
			res.Location, res.Score, want.Location, want.Score)
	}
	// The first combined query solved the base generation and cached the
	// solution; an identical repeat serves the incumbent from that cache.
	again, err := e.MaxRS(context.Background(), d, w, h)
	if err != nil {
		t.Fatal(err)
	}
	if again.Plan.Delta == nil || again.Plan.Delta.Path != "combined" || !again.Plan.Delta.BaseCached {
		t.Fatalf("repeat combined query: Plan.Delta = %+v, want combined with BaseCached", again.Plan.Delta)
	}
	if !sameGeometry(again, res) {
		t.Fatalf("repeat combined query diverged: %+v vs %+v", again, res)
	}

	// Near + heavy: the influence rectangle overlaps the incumbent
	// strip → fused re-solve, still exact.
	ids2, err := d.Insert(context.Background(), []Object{{X: 1, Y: 1, Weight: 500}})
	if err != nil {
		t.Fatal(err)
	}
	live = append(live, idObj{id: ids2[0], obj: Object{X: 1, Y: 1, Weight: 500}})
	res2, err := e.MaxRS(context.Background(), d, w, h)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Plan.Delta == nil || res2.Plan.Delta.Path != "fused" {
		t.Fatalf("near heavy insert: Plan.Delta = %+v, want path \"fused\"", res2.Plan.Delta)
	}
	if want := reloadSolve(t, opts, live, 0, w, h); !sameGeometry(res2, want) {
		t.Fatalf("fused path diverged from reload: got %+v/%v, want %+v/%v",
			res2.Location, res2.Score, want.Location, want.Score)
	}
}

func sliceOf(objs []Object) []idObj {
	out := make([]idObj, len(objs))
	for i, o := range objs {
		out[i] = idObj{id: uint64(i), obj: o}
	}
	return out
}

// TestDeltaCompactionTrigger pins the compact-before-append policy: an
// insert that would push the buffer past Options.DeltaCompactAt first
// folds the existing delta into the base, so the buffer never exceeds
// the limit and a cancelled insert can never leave a half-applied batch.
func TestDeltaCompactionTrigger(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192, DeltaCompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.Load(context.Background(), []Object{{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Release() }()
	if _, err := d.Insert(context.Background(), []Object{{X: 3, Y: 3, Weight: 3}, {X: 4, Y: 4, Weight: 4}}); err != nil {
		t.Fatal(err)
	}
	if p, c := d.Pending(), d.Compactions(); p != 2 || c != 0 {
		t.Fatalf("after first insert: pending %d compactions %d, want 2, 0", p, c)
	}
	// 2 pending + 2 incoming > 3 → compacts first, then buffers the batch.
	if _, err := d.Insert(context.Background(), []Object{{X: 5, Y: 5, Weight: 5}, {X: 6, Y: 6, Weight: 6}}); err != nil {
		t.Fatal(err)
	}
	if p, c := d.Pending(), d.Compactions(); p != 2 || c != 1 {
		t.Fatalf("after second insert: pending %d compactions %d, want 2, 1", p, c)
	}
	if n := d.Len(); n != 6 {
		t.Fatalf("Len() = %d, want 6", n)
	}
	// DeltaCompactAt < 0 disables the trigger entirely.
	e2, err := NewEngine(&Options{BlockSize: 512, Memory: 8192, DeltaCompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	d2, err := e2.Load(context.Background(), []Object{{X: 1, Y: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d2.Release() }()
	for i := 0; i < 8; i++ {
		if _, err := d2.Insert(context.Background(), []Object{{X: float64(i), Y: 1, Weight: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if p, c := d2.Pending(), d2.Compactions(); p != 8 || c != 0 {
		t.Fatalf("DeltaCompactAt=-1: pending %d compactions %d, want 8, 0", p, c)
	}
}

// TestDeltaMutationCancellation drives each mutation into cancellation
// and requires atomicity: no partial application, and the engine's
// block accounting back at its pre-call value.
func TestDeltaMutationCancellation(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Larger than the engine's 16-buffer pool, so the base scans below
	// must transfer blocks (each transfer is a cancellation point).
	objs := make([]Object, 2000)
	for i := range objs {
		objs[i] = Object{X: float64(i), Y: float64(i % 17), Weight: 1 + float64(i%5)}
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Release() }()
	base := e.BlocksInUse()

	// Pre-cancelled Insert applies nothing.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Insert(cancelled, []Object{{X: 1, Y: 1, Weight: 1}}); !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("pre-cancelled Insert: err = %v, want ErrQueryCancelled", err)
	}
	if p := d.Pending(); p != 0 {
		t.Fatalf("pending %d after cancelled Insert, want 0", p)
	}

	// Delete cancelled mid-scan of the base file: nothing deleted,
	// nothing leaked. The wanted id sits at the end of the file, so the
	// scan cannot finish before the cancellation point.
	if _, err := d.Delete(newCancelAfter(3), []uint64{1995}); !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("mid-scan Delete: err = %v, want ErrQueryCancelled", err)
	}
	if p, n := d.Pending(), d.Len(); p != 0 || n != 2000 {
		t.Fatalf("after cancelled Delete: pending %d len %d, want 0, 2000", p, n)
	}
	if n := e.BlocksInUse(); n != base {
		t.Fatalf("BlocksInUse = %d after cancelled Delete, want %d", n, base)
	}

	// Compact cancelled mid-rewrite: the delta survives, the partial
	// output is released, queries still answer exactly.
	if _, err := d.Insert(context.Background(), []Object{{X: 500, Y: 500, Weight: 2}}); err != nil {
		t.Fatal(err)
	}
	inUse := e.BlocksInUse()
	if err := d.Compact(newCancelAfter(3)); !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("mid-rewrite Compact: err = %v, want ErrQueryCancelled", err)
	}
	if p := d.Pending(); p != 1 {
		t.Fatalf("pending %d after cancelled Compact, want 1", p)
	}
	if n := e.BlocksInUse(); n != inUse {
		t.Fatalf("BlocksInUse = %d after cancelled Compact, want %d", n, inUse)
	}
	if got, err := e.MaxRS(context.Background(), d, 4, 4); err != nil || got.Score <= 0 {
		t.Fatalf("query after cancelled Compact: %v (score %v)", err, got.Score)
	}
}

// TestLoadCancellation covers the ctx-first loaders: a load cancelled at
// block granularity releases every partial block.
func TestLoadCancellation(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	objs := make([]Object, 500)
	for i := range objs {
		objs[i] = Object{X: float64(i), Y: float64(i), Weight: 1}
	}
	if _, err := e.Load(newCancelAfter(2), objs); !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("mid-load Load: err = %v, want ErrQueryCancelled", err)
	}
	if n := e.BlocksInUse(); n != 0 {
		t.Fatalf("BlocksInUse = %d after cancelled Load, want 0", n)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Load(cancelled, objs); !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("pre-cancelled Load: err = %v, want ErrQueryCancelled", err)
	}
	if n := e.BlocksInUse(); n != 0 {
		t.Fatalf("BlocksInUse = %d after pre-cancelled Load, want 0", n)
	}
}

// TestDeleteUnknownID pins the atomic all-or-nothing contract.
func TestDeleteUnknownID(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.Load(context.Background(), []Object{{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Release() }()
	if _, err := d.Delete(context.Background(), []uint64{0, 99}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("Delete with unknown id: err = %v, want ErrUnknownID", err)
	}
	if n := d.Len(); n != 2 {
		t.Fatalf("Len() = %d after failed Delete, want 2 (atomic)", n)
	}
	// Duplicate ids in one call are rejected the same way.
	if _, err := d.Delete(context.Background(), []uint64{0, 0}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("Delete with duplicate id: err = %v, want ErrUnknownID", err)
	}
	// Deleting a buffered insert works and never touches the base.
	ids, err := d.Insert(context.Background(), []Object{{X: 9, Y: 9, Weight: 9}})
	if err != nil {
		t.Fatal(err)
	}
	removed, err := d.Delete(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0].X != 9 {
		t.Fatalf("Delete of buffered insert returned %+v", removed)
	}
	if n := d.Len(); n != 2 {
		t.Fatalf("Len() = %d, want 2", n)
	}
}

// TestConcurrentMutation races queries, inserts, deletes and explicit
// compactions against each other. Every query must return a result that
// was exact for SOME consistent delta state (the generation fencing and
// the frozen-delta snapshot guarantee it); afterwards the dataset must
// agree with a reload of the surviving objects and release cleanly.
func TestConcurrentMutation(t *testing.T) {
	opts := &Options{BlockSize: 512, Memory: 8192, DeltaCompactAt: 16}
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(42))
	objs := make([]Object, 100)
	for i := range objs {
		objs[i] = Object{X: rng.Float64() * 100, Y: rng.Float64() * 100, Weight: 1 + dyadic(rng)}
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Release() }()

	const writers = 2
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards live
		live = sliceOf(objs)
	)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 20; step++ {
				switch rng.Intn(3) {
				case 0:
					o := Object{X: rng.Float64() * 100, Y: rng.Float64() * 100, Weight: 1 + dyadic(rng)}
					mu.Lock()
					ids, err := d.Insert(context.Background(), []Object{o})
					if err == nil {
						live = append(live, idObj{id: ids[0], obj: o})
					}
					mu.Unlock()
					if err != nil {
						t.Errorf("concurrent Insert: %v", err)
						return
					}
				case 1:
					mu.Lock()
					if len(live) > 10 {
						i := rng.Intn(len(live))
						id := live[i].id
						if _, err := d.Delete(context.Background(), []uint64{id}); err != nil {
							mu.Unlock()
							t.Errorf("concurrent Delete(%d): %v", id, err)
							return
						}
						live = append(live[:i], live[i+1:]...)
					}
					mu.Unlock()
				default:
					if err := d.Compact(context.Background()); err != nil {
						t.Errorf("concurrent Compact: %v", err)
						return
					}
				}
			}
		}(int64(1000 + wi))
	}
	for ri := 0; ri < 2; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < 15; q++ {
				if _, err := e.MaxRS(context.Background(), d, 8, 6); err != nil {
					t.Errorf("concurrent MaxRS: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	got, err := e.MaxRS(context.Background(), d, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := reloadSolve(t, opts, live, 0, 8, 6)
	if !sameGeometry(got, want) {
		t.Fatalf("after concurrent mutation: got %+v/%v, want %+v/%v",
			got.Location, got.Score, want.Location, want.Score)
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	if n := e.BlocksInUse(); n != 0 {
		t.Fatalf("BlocksInUse = %d after Release, want 0", n)
	}
}

// TestEffectiveStats requires Dataset.Stats to reflect pending
// mutations: inserts extend N/SumW/extent exactly; deletes decrement
// the counts (extent and MinW stay conservative until compaction).
func TestEffectiveStats(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.Load(context.Background(), []Object{{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Release() }()
	if _, err := d.Insert(context.Background(), []Object{{X: 50, Y: -3, Weight: 7}}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.N != 3 || st.MaxX != 50 || st.MinY != -3 || st.MaxW != 7 {
		t.Fatalf("effective stats after insert: %+v", st)
	}
	if got, want := st.MeanW, 10.0/3; !closeTo(got, want) {
		t.Fatalf("effective MeanW after insert = %v, want %v", got, want)
	}
	if _, err := d.Delete(context.Background(), []uint64{0}); err != nil {
		t.Fatal(err)
	}
	st = d.Stats()
	if st.N != 2 {
		t.Fatalf("effective stats after delete: %+v", st)
	}
	if got, want := st.MeanW, 9.0/2; !closeTo(got, want) {
		t.Fatalf("effective MeanW after delete = %v, want %v", got, want)
	}
	// Compaction makes the conservative fields exact again.
	if err := d.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = d.Stats()
	if st.N != 2 || st.MinX != 2 || st.MinW != 2 {
		t.Fatalf("stats after compaction: %+v", st)
	}
}
