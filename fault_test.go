package maxrs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

// faultClasses enumerates the injected fault classes of the fault matrix
// and what each must surface. A torn write may go undetected when the
// damaged block is never reread (mayComplete): then the query must
// succeed with the result of a clean run — the tear touched dead data.
var faultClasses = []struct {
	name        string
	op          FaultOp
	kind        FaultKind
	wantErr     error
	mayComplete bool
}{
	{"permanentRead", OpRead, FaultPermanent, ErrIOFault, false},
	{"permanentWrite", OpWrite, FaultPermanent, ErrIOFault, true},
	{"tornWrite", OpWrite, FaultTorn, ErrBlockCorrupt, true},
}

// hardenedEngine returns an engine with checksums, a small retry budget,
// and the matrix's EM configuration.
func hardenedEngine(t *testing.T, onDisk bool, dir string, shards int) *Engine {
	t.Helper()
	e, err := NewEngine(&Options{
		BlockSize: 512,
		Memory:    4096,
		OnDisk:    onDisk,
		OnDiskDir: dir,
		Shards:    shards,
		Checksums: true,
		Retry:     RetryPolicy{MaxRetries: 2, BaseDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestFaultMatrix is the robustness acceptance matrix (DESIGN.md §11):
// every fault class × {in-memory, OnDisk} × {unsharded, sharded},
// injected at exact and randomized transfer indices across the query's
// schedule. Every faulted query must surface the class's typed error (or,
// where the fault can land on dead data, complete with a bit-identical
// result), release every intermediate and shard disk, and leave no temp
// file behind. Runs race-clean under -race in CI.
func TestFaultMatrix(t *testing.T) {
	for _, onDisk := range []bool{false, true} {
		for _, shards := range []int{0, 3} {
			name := fmt.Sprintf("onDisk=%v/shards=%d", onDisk, shards)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				e := hardenedEngine(t, onDisk, dir, shards)
				d := testDataset(t, e, 1200)
				base := e.BlocksInUse()

				// Measure a clean run's primary-disk transfer counts: the
				// index space the exact fault schedules sample. (Sharded
				// queries keep their writes on shard disks — the engine's
				// plan reaches those too, with per-disk indices counting
				// from zero, so small indices exercise them.)
				before := e.env.Disk.Stats()
				want, err := e.MaxRS(context.Background(), d, 200, 200)
				if err != nil {
					t.Fatal(err)
				}
				clean := e.env.Disk.Stats().Sub(before)
				wantInUse(t, e, base, "after clean run")

				for _, fc := range faultClasses {
					t.Run(fc.name, func(t *testing.T) {
						total := clean.Writes
						if fc.op == OpRead {
							total = clean.Reads
						}
						points := []uint64{1, 2} // early: hits shard disks too
						if total > 2 {
							points = append(points,
								total/2, total,
								2+uint64(rand.Int63n(int64(total-2)))) // one randomized point per run
						}
						for _, p := range points {
							e.InjectFaults(FaultPlan{At: []FaultAt{
								{Op: fc.op, Transfer: p, Kind: fc.kind},
							}})
							got, err := e.MaxRS(context.Background(), d, 200, 200)
							if err == nil {
								if !fc.mayComplete {
									t.Fatalf("%s at transfer %d/%d: query completed", fc.name, p, total)
								}
								if !sameResult(got, want) {
									t.Fatalf("%s at transfer %d: undetected fault perturbed the result: %+v != %+v",
										fc.name, p, got, want)
								}
							} else {
								if !errors.Is(err, fc.wantErr) {
									t.Fatalf("%s at transfer %d/%d: err = %v, want %v", fc.name, p, total, err, fc.wantErr)
								}
								if errors.Is(err, ErrQueryCancelled) {
									t.Fatalf("%s at transfer %d: fault misclassified as cancellation: %v", fc.name, p, err)
								}
							}
							// Disarm and discard the injector: permanent
							// faults poison their block until freed, and the
							// fault may have landed on a dataset block.
							e.InjectFaults(FaultPlan{})
							wantInUse(t, e, base, fmt.Sprintf("after %s at transfer %d/%d", fc.name, p, total))
						}
						if onDisk {
							entries, err := os.ReadDir(dir)
							if err != nil {
								t.Fatal(err)
							}
							if len(entries) != 1 {
								names := make([]string, len(entries))
								for i, en := range entries {
									names[i] = en.Name()
								}
								t.Fatalf("leaked backing files after faults: %v", names)
							}
						}
						// The engine must still serve clean queries
						// bit-identically after surviving the class.
						got, err := e.MaxRS(context.Background(), d, 200, 200)
						if err != nil {
							t.Fatalf("clean query after %s faults: %v", fc.name, err)
						}
						if !sameResult(got, want) {
							t.Fatalf("result drifted after %s faults: %+v != %+v", fc.name, got, want)
						}
					})
				}

				if err := d.Release(); err != nil {
					t.Fatal(err)
				}
				wantInUse(t, e, 0, "after release")
			})
		}
	}
}

// TestTransientFaultRecovery is the 1%-rate acceptance check: with a 1%
// transient fault rate on both transfer directions, queries succeed with
// bit-identical results and the recoveries show up in FaultStats.
func TestTransientFaultRecovery(t *testing.T) {
	e := hardenedEngine(t, false, "", 0)
	d := testDataset(t, e, 1200)
	want, err := e.MaxRS(context.Background(), d, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	e.InjectFaults(FaultPlan{
		Seed:               99,
		TransientReadRate:  0.01,
		TransientWriteRate: 0.01,
	})
	for i := 0; i < 5; i++ {
		got, err := e.MaxRS(context.Background(), d, 200, 200)
		if err != nil {
			t.Fatalf("run %d under 1%% transient faults: %v", i, err)
		}
		if !sameResult(got, want) {
			t.Fatalf("run %d: result under transient faults = %+v, want %+v", i, got, want)
		}
	}
	fs := e.FaultStats()
	if fs.InjectedTransient == 0 {
		t.Fatal("1% rate fired no transient faults across 5 runs")
	}
	if fs.ReadRetries+fs.WriteRetries < fs.InjectedTransient {
		t.Fatalf("retries (%d+%d) < injected transients (%d): recoveries not counted",
			fs.ReadRetries, fs.WriteRetries, fs.InjectedTransient)
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	wantInUse(t, e, 0, "after release")
}

// TestChecksumRetryInvariance extends the count-invariance contract to
// the hardened configuration: checksums on, retries armed, a fault
// injector installed (firing nothing), pipelining forced — results and
// per-query transfer counts must stay bit-identical to a plain engine at
// every parallelism level, sharded and not.
func TestChecksumRetryInvariance(t *testing.T) {
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func(par int, hardened bool) Result {
				opts := &Options{
					BlockSize:   512,
					Memory:      8192,
					Parallelism: par,
					Shards:      shards,
				}
				if hardened {
					opts.Checksums = true
					opts.Retry = RetryPolicy{MaxRetries: 3, BaseDelay: time.Microsecond}
					opts.Pipeline = PipelineOn
				}
				e, err := NewEngine(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				e.InjectFaults(FaultPlan{}) // armed, fires nothing
				d := testDataset(t, e, 1500)
				res, err := e.MaxRS(context.Background(), d, 150, 150)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(1, false)
			for _, par := range []int{1, 2, 4, 8} {
				if got := run(par, true); !sameResult(got, want) {
					t.Fatalf("p=%d hardened result diverged: %+v != %+v", par, got, want)
				}
			}
		})
	}
}
