package maxrs

import (
	"context"
	"fmt"
	"math"

	"maxrs/internal/crs"
	"maxrs/internal/geom"
)

// CRSResult is a MaxCRS answer.
type CRSResult struct {
	// Location is the chosen circle center.
	Location Point
	// Score is the total weight covered by the diameter-d circle at
	// Location.
	Score float64
	// LowerBoundRatio is the guaranteed worst-case fraction of the
	// optimum that Score attains (1/4 for ApproxMaxCRS, 1 for the exact
	// solver).
	LowerBoundRatio float64
	// Stats is the I/O cost of this query alone (zero for the in-memory
	// exact solver).
	Stats QueryStats
	// Plan is the materialized execution decision (zero for the
	// in-memory exact solver); PredictedCost is its cost-model
	// prediction, comparable against Stats. See DESIGN.md §12.
	Plan          Plan
	PredictedCost PredictedCost
	// FallbackReason is non-empty when the settings requested something
	// MaxCRS never does (e.g. sharding — the rectangle transform runs
	// unsharded by construction).
	FallbackReason string
}

// MaxCRS approximates the circular MaxRS problem with the paper's
// ApproxMaxCRS algorithm (§6): it runs the external-memory ExactMaxRS on
// the circles' bounding squares and returns the best of the max-region
// center and four shifted candidates. The answer is guaranteed to cover
// at least 1/4 of the optimal weight (Theorem 3) and empirically ~90% for
// realistic densities (Fig. 17).
//
// Cancelling ctx aborts the inner solve or the candidate scan within one
// block-transfer's work. Of the QueryOptions, WithUnfused and
// WithParallelism apply; WithAlgorithm and WithShards are ignored — the
// rectangle transform is ExactMaxRS by construction and stays unsharded.
func (e *Engine) MaxCRS(ctx context.Context, d *Dataset, diameter float64, opts ...QueryOption) (_ CRSResult, err error) {
	if !(diameter > 0) || math.IsInf(diameter, 0) {
		return CRSResult{}, fmt.Errorf("%w: diameter %g must be positive and finite", ErrInvalidQuery, diameter)
	}
	q, err := e.begin(ctx, d, kindMaxCRS, diameter, diameter, opts)
	if err != nil {
		return CRSResult{}, err
	}
	defer q.end(&err)
	f, owned, err := q.effFile(nil)
	if err != nil {
		return CRSResult{}, err
	}
	res, err := crs.ApproxScoped(q.ctx, q.solver, f, diameter, q.sc)
	if owned {
		if rerr := f.Release(); rerr != nil && err == nil {
			err = rerr
		}
	}
	if err != nil {
		return CRSResult{}, err
	}
	out := CRSResult{
		Location:        Point{X: res.Center.X, Y: res.Center.Y},
		Score:           res.Weight,
		LowerBoundRatio: 0.25,
		Stats:           queryStatsOf(q.sc),
		Plan:            q.plan,
		PredictedCost:   q.plan.Predicted,
		FallbackReason:  q.fallback,
	}
	out.Stats.PredictedReads = uint64(q.plan.Predicted.Reads)
	out.Stats.PredictedWrites = uint64(q.plan.Predicted.Writes)
	return out, nil
}

// MaxCRS is the one-shot convenience form of Engine.MaxCRS: it builds an
// engine, loads objs, solves under ctx, and closes the engine on every
// path — with Options.OnDisk the backing temp file is removed even when
// loading or solving fails.
func MaxCRS(ctx context.Context, objs []Object, diameter float64, opts *Options, qopts ...QueryOption) (_ CRSResult, err error) {
	e, err := NewEngine(opts)
	if err != nil {
		return CRSResult{}, err
	}
	defer closeEngine(e, &err)
	d, err := e.Load(ctx, objs)
	if err != nil {
		return CRSResult{}, err
	}
	return e.MaxCRS(ctx, d, diameter, qopts...)
}

// MaxCRSExact solves MaxCRS exactly with the in-memory arrangement-sweep
// oracle (the role Drezner's O(n² log n) algorithm plays in the paper's
// quality experiment). It requires the dataset in memory and non-negative
// weights; use it for moderate n or as a quality reference.
func MaxCRSExact(objs []Object, diameter float64) (CRSResult, error) {
	if !(diameter > 0) || math.IsInf(diameter, 0) {
		return CRSResult{}, fmt.Errorf("maxrs: diameter %g must be positive and finite", diameter)
	}
	gobjs := make([]geom.Object, len(objs))
	for i, o := range objs {
		if o.Weight < 0 {
			return CRSResult{}, fmt.Errorf("maxrs: MaxCRSExact requires non-negative weights, got %g", o.Weight)
		}
		gobjs[i] = geom.Object{Point: geom.Point{X: o.X, Y: o.Y}, W: o.Weight}
	}
	res := crs.Exact(gobjs, diameter)
	return CRSResult{
		Location:        Point{X: res.Center.X, Y: res.Center.Y},
		Score:           res.Weight,
		LowerBoundRatio: 1,
	}, nil
}
