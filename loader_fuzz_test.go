package maxrs

import (
	"context"
	"strings"
	"testing"
)

// FuzzLoadCSV drives LoadCSV over arbitrary input — malformed lines,
// non-finite coordinates, truncated records, hostile junk — and asserts
// the engine-level resource contract: a rejected load leaves zero
// allocated blocks, and an accepted load releases down to zero. The
// delta-codec engine rides along so the fuzzer also exercises the slot
// store under every rejection path.
func FuzzLoadCSV(f *testing.F) {
	seeds := []string{
		"",
		"1,2\n3,4\n",
		"1,2,5\n# comment\n\n 7 , 8 , 9 \n",
		"1\n",
		"1,2,3,4\n",
		"a,b\n",
		"1,2\n3",
		"Inf,0\n",
		"0,-Inf\n",
		"1,2,NaN\n",
		"1e400,2\n",
		"1,2,+Inf\n",
		"9007199254740993,2,-0\n",
		strings.Repeat("5,6\n", 200) + "bad line\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		for _, c := range []CodecKind{CodecNone, CodecDelta} {
			e, err := NewEngine(&Options{BlockSize: 128, Memory: 1024, Codec: c})
			if err != nil {
				t.Fatal(err)
			}
			d, err := e.LoadCSV(context.Background(), strings.NewReader(input))
			if err == nil {
				if err := d.Release(); err != nil {
					t.Fatalf("codec %v: release: %v", c, err)
				}
			}
			if n := e.BlocksInUse(); n != 0 {
				t.Fatalf("codec %v: %d blocks leaked on %q (load err: %v)", c, n, input, err)
			}
			if err := e.Close(); err != nil {
				t.Fatalf("codec %v: close: %v", c, err)
			}
		}
	})
}
