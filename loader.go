package maxrs

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"maxrs/internal/em"
	"maxrs/internal/plan"
	"maxrs/internal/rec"
)

// maxCSVLine bounds one input line of LoadCSV (1 MiB) — far beyond any
// well-formed "x,y,weight" line, small enough to keep memory bounded on
// hostile input.
const maxCSVLine = 1 << 20

// LoadCSV streams objects from r directly onto the engine's disk without
// materializing them in memory, so datasets far larger than RAM can be
// loaded under an OnDisk engine. The format is one object per line,
// "x,y[,weight]" (weight defaults to 1); blank lines and lines starting
// with '#' are skipped. Coordinates and weights must be finite (NaN and
// ±Inf are rejected with the offending line number, as are lines longer
// than 1 MiB). Cancelling ctx (or exceeding its deadline) aborts the
// load at block-transfer granularity and returns an error matching both
// ErrQueryCancelled and the context error. On every error path — partial
// blocks included — nothing stays allocated.
func (e *Engine) LoadCSV(ctx context.Context, r io.Reader) (_ *Dataset, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	f := em.NewFile(e.env.Disk)
	defer func() {
		if err != nil {
			err = wrapCancel(errors.Join(err, f.Release()))
		}
	}()
	// The context binds the writer, not the file (see Load).
	w, err := em.OpenRecordWriter(e.env.WithContext(ctx), f, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxCSVLine)
	n := 0
	lineNo := 0
	col := plan.NewCollector()
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		o, err := parseObjectLine(line)
		if err != nil {
			return nil, fmt.Errorf("maxrs: line %d: %w", lineNo, err)
		}
		if err := w.Write(o); err != nil {
			return nil, err
		}
		col.Add(o.X, o.Y, o.W)
		n++
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stopped on the line after the last delivered one.
			return nil, fmt.Errorf("maxrs: line %d: longer than %d bytes: %w",
				lineNo+1, maxCSVLine, err)
		}
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return e.newDataset(f, n, col.Finalize(e.opts.BlockSize, e.opts.Memory)), nil
}

// LoadCSVReader is the pre-context form of LoadCSV.
//
// Deprecated: use LoadCSV(ctx, r). LoadCSVReader remains for one release
// as a thin wrapper over LoadCSV with context.Background().
func (e *Engine) LoadCSVReader(r io.Reader) (*Dataset, error) {
	return e.LoadCSV(context.Background(), r)
}

func parseObjectLine(line string) (rec.Object, error) {
	parts := strings.Split(line, ",")
	if len(parts) < 2 || len(parts) > 3 {
		return rec.Object{}, fmt.Errorf("want x,y[,weight], got %q", line)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return rec.Object{}, fmt.Errorf("bad x: %w", err)
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return rec.Object{}, fmt.Errorf("bad y: %w", err)
	}
	wt := 1.0
	if len(parts) == 3 {
		wt, err = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return rec.Object{}, fmt.Errorf("bad weight: %w", err)
		}
	}
	if err := checkObject(x, y, wt); err != nil {
		return rec.Object{}, fmt.Errorf("%w in %q", err, line)
	}
	return rec.Object{X: x, Y: y, W: wt}, nil
}
