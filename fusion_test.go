package maxrs

import (
	"context"
	"math/rand"
	"testing"
)

// fusionObjects is a deterministic workload big enough to divide at the
// root under the small engine memory used below.
func fusionObjects(n int) []Object {
	rng := rand.New(rand.NewSource(2026))
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			X:      float64(rng.Intn(4 * n)),
			Y:      float64(rng.Intn(4 * n)),
			Weight: float64(rng.Intn(9) + 1),
		}
	}
	return objs
}

// TestEngineFusionEquivalence pins the public contract of Options.Unfused:
// identical results, with the fused default strictly cheaper in per-query
// block transfers.
func TestEngineFusionEquivalence(t *testing.T) {
	objs := fusionObjects(4000)
	queryEdge := 4.0 * 4000 / 1000
	run := func(unfused bool) Result {
		e, err := NewEngine(&Options{Memory: 52 * 1024, Unfused: unfused})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		d, err := e.Load(context.Background(), objs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Release(); err != nil {
			t.Fatal(err)
		}
		if n := e.BlocksInUse(); n != 0 {
			t.Fatalf("unfused=%v: %d blocks leaked", unfused, n)
		}
		return res
	}
	fused, unfused := run(false), run(true)
	if fused.Location != unfused.Location || fused.Score != unfused.Score || fused.Region != unfused.Region {
		t.Fatalf("fused result %+v != unfused %+v", fused, unfused)
	}
	if fused.Stats.Total() >= unfused.Stats.Total() {
		t.Fatalf("fused query cost %d ≥ unfused %d transfers", fused.Stats.Total(), unfused.Stats.Total())
	}
}

// TestEnginePipelineInvariance pins the public contract of
// Options.Pipeline: on an OnDisk engine, prefetch/write-behind (the Auto
// default) changes neither the result nor a single counted transfer
// relative to PipelineOff — and PipelineOn works on the in-memory backend
// too.
func TestEnginePipelineInvariance(t *testing.T) {
	objs := fusionObjects(3000)
	queryEdge := 4.0 * 3000 / 1000
	run := func(opts Options) Result {
		e, err := NewEngine(&opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		d, err := e.Load(context.Background(), objs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(Options{Memory: 52 * 1024, OnDisk: true, OnDiskDir: t.TempDir(), Pipeline: PipelineOff})
	for name, opts := range map[string]Options{
		"disk/auto":   {Memory: 52 * 1024, OnDisk: true, Pipeline: PipelineAuto},
		"disk/forced": {Memory: 52 * 1024, OnDisk: true, Pipeline: PipelineOn},
		"mem/forced":  {Memory: 52 * 1024, Pipeline: PipelineOn},
		"mem/auto":    {Memory: 52 * 1024},
	} {
		opts.OnDiskDir = t.TempDir()
		got := run(opts)
		if !sameResult(got, base) {
			t.Errorf("%s: result %+v (stats %+v) != PipelineOff baseline %+v (stats %+v)",
				name, got, got.Stats, base, base.Stats)
		}
	}
	if _, err := NewEngine(&Options{Pipeline: PipelineMode(42)}); err == nil {
		t.Fatal("bogus pipeline mode must be rejected")
	}
}
