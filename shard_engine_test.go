package maxrs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// newShardTestEngine builds an engine with a small external budget and
// the given shard count.
func newShardTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.BlockSize == 0 {
		opts.BlockSize = 512
	}
	if opts.Memory == 0 {
		opts.Memory = 8 * 1024
	}
	e, err := NewEngine(&opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestEngineShardedEquivalence: Options.Shards never changes the score,
// and the degenerate K=1 engine matches the unsharded one bit for bit on
// location, region and score.
func TestEngineShardedEquivalence(t *testing.T) {
	ref := newShardTestEngine(t, Options{})
	dRef := testDataset(t, ref, 500)
	want, err := ref.MaxRS(context.Background(), dRef, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if want.ShardStats != nil {
		t.Fatalf("unsharded query reported shard stats: %+v", want.ShardStats)
	}
	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			e := newShardTestEngine(t, Options{Shards: k})
			d := testDataset(t, e, 500)
			got, err := e.MaxRS(context.Background(), d, 300, 300)
			if err != nil {
				t.Fatal(err)
			}
			if got.Score != want.Score {
				t.Errorf("score %g, want %g", got.Score, want.Score)
			}
			if k == 1 && (got.Location != want.Location || got.Region != want.Region) {
				t.Errorf("K=1 not bit-identical: got %+v / %+v, want %+v / %+v",
					got.Location, got.Region, want.Location, want.Region)
			}
			if len(got.ShardStats) == 0 || len(got.ShardStats) > k {
				t.Fatalf("K=%d: %d shard stats", k, len(got.ShardStats))
			}
			// Stats aggregation: the per-query total must cover the sum of
			// the shard-disk traffic plus the primary-disk scans (routing
			// always scans once; planning scans only when K ≥ 2).
			var shardTotal uint64
			for _, s := range got.ShardStats {
				shardTotal += s.Stats.Total()
			}
			if shardTotal == 0 {
				t.Error("empty shard stats on a sharded query")
			}
			wantScans := uint64(d.Blocks())
			if k >= 2 {
				wantScans *= 2
			}
			if got.Stats.Total() != shardTotal+wantScans {
				t.Errorf("stats %d != shard sum %d + %d primary scans",
					got.Stats.Total(), shardTotal, wantScans)
			}
		})
	}
}

// TestEngineShardStatsInGlobalTotals: Engine.Stats must include the
// ephemeral shard-disk traffic, and ResetStats must clear it.
func TestEngineShardStatsInGlobalTotals(t *testing.T) {
	e := newShardTestEngine(t, Options{Shards: 4})
	d := testDataset(t, e, 500)
	e.ResetStats()
	res, err := e.MaxRS(context.Background(), d, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if g, q := e.Stats().Total(), res.Stats.Total(); g < q {
		t.Errorf("engine-global total %d < per-query total %d", g, q)
	}
	e.ResetStats()
	if g := e.Stats().Total(); g != 0 {
		t.Errorf("stats after reset: %d", g)
	}
	if n := e.BlocksInUse(); n != d.Blocks() {
		t.Errorf("%d blocks in use, want the dataset's %d", n, d.Blocks())
	}
}

// TestDatasetSetShards: the per-dataset override beats the engine
// default, 0 restores it, and negative counts are rejected.
func TestDatasetSetShards(t *testing.T) {
	e := newShardTestEngine(t, Options{})
	d := testDataset(t, e, 400)
	want, err := e.MaxRS(context.Background(), d, 250, 250)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetShards(3); err != nil {
		t.Fatal(err)
	}
	got, err := e.MaxRS(context.Background(), d, 250, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ShardStats) == 0 {
		t.Error("SetShards(3) did not shard the query")
	}
	if got.Score != want.Score {
		t.Errorf("sharded score %g != unsharded %g", got.Score, want.Score)
	}
	if err := d.SetShards(0); err != nil {
		t.Fatal(err)
	}
	got, err = e.MaxRS(context.Background(), d, 250, 250)
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardStats != nil {
		t.Error("SetShards(0) did not restore the unsharded default")
	}
	if err := d.SetShards(-1); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := NewEngine(&Options{Shards: -2}); err == nil {
		t.Error("NewEngine accepted negative Options.Shards")
	}
}

// TestShardedExtensions: MinRS, CountRS and TopK run through the shard
// layer and agree with their unsharded answers.
func TestShardedExtensions(t *testing.T) {
	ref := newShardTestEngine(t, Options{})
	e := newShardTestEngine(t, Options{Shards: 4})
	dRef := testDataset(t, ref, 400)
	d := testDataset(t, e, 400)

	wantMin, err := ref.MinRS(context.Background(), dRef, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	gotMin, err := e.MinRS(context.Background(), d, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if gotMin.Score != wantMin.Score {
		t.Errorf("MinRS: %g != %g", gotMin.Score, wantMin.Score)
	}
	// MinRS negates every weight, so it must bypass the shard layer
	// (the merge is only exact for nonnegative weights, DESIGN.md §9.3).
	if gotMin.ShardStats != nil {
		t.Error("MinRS must not shard (negated weights)")
	}

	wantCount, err := ref.CountRS(context.Background(), dRef, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	gotCount, err := e.CountRS(context.Background(), d, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if gotCount.Score != wantCount.Score {
		t.Errorf("CountRS: %g != %g", gotCount.Score, wantCount.Score)
	}

	wantTop, err := ref.TopK(context.Background(), dRef, 200, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, err := e.TopK(context.Background(), d, 200, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTop) != len(wantTop) {
		t.Fatalf("TopK: %d results, want %d", len(gotTop), len(wantTop))
	}
	for i := range gotTop {
		if gotTop[i].Score != wantTop[i].Score {
			t.Errorf("TopK[%d]: %g != %g", i, gotTop[i].Score, wantTop[i].Score)
		}
		if len(gotTop[i].ShardStats) == 0 {
			t.Errorf("TopK[%d] missing shard stats", i)
		}
	}
}

// TestConcurrentShardedQueries: goroutines sharing one sharded engine
// get identical scores and a clean leak gauge — the §7 concurrency
// contract extended to the shard layer (run under -race in CI).
func TestConcurrentShardedQueries(t *testing.T) {
	e := newShardTestEngine(t, Options{Shards: 3, Parallelism: 4})
	d := testDataset(t, e, 500)
	want, err := e.MaxRS(context.Background(), d, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := e.MaxRS(context.Background(), d, 300, 300)
			if err != nil {
				errs[g] = err
				return
			}
			if got.Score != want.Score || got.Stats != want.Stats {
				errs[g] = fmt.Errorf("goroutine %d: got score %g stats %+v, want %g %+v",
					g, got.Score, got.Stats, want.Score, want.Stats)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	if n := e.BlocksInUse(); n != 0 {
		t.Errorf("%d blocks leaked", n)
	}
}

// TestNegativeWeightsFallBackUnsharded pins the nonnegativity guard: a
// shard's unrestricted optimum can land outside its slab, where a
// negative-weight object beyond its halo is invisible and the local
// score overshoots the truth. The construction pins the K=2 boundary at
// x≈500 via zero-weight fillers, puts +10 between two −100 guards less
// than the query width apart (so every covering window also catches a
// guard; the true optimum is 0), and would read 10 from shard 0 — which
// cannot see the guard at x=502.5 — if the engine sharded it.
func TestNegativeWeightsFallBackUnsharded(t *testing.T) {
	objs := make([]Object, 0, 1004)
	for i := 0; i <= 1000; i++ {
		objs = append(objs, Object{X: float64(i), Y: 50, Weight: 0})
	}
	objs = append(objs,
		Object{X: 498.6, Y: 50, Weight: -100},
		Object{X: 501.5, Y: 50, Weight: 10},
		Object{X: 502.5, Y: 50, Weight: -100},
	)
	ref := newShardTestEngine(t, Options{})
	dRef, err := ref.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MaxRS(context.Background(), dRef, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := newShardTestEngine(t, Options{Shards: 2})
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MaxRS(context.Background(), d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("sharded engine returned %g on a negative-weight dataset, want %g", got.Score, want.Score)
	}
	if got.ShardStats != nil {
		t.Fatal("negative-weight dataset was sharded")
	}
	// TopK rides the same guard.
	top, err := e.TopK(context.Background(), d, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range top {
		if r.ShardStats != nil {
			t.Fatalf("TopK[%d] sharded a negative-weight dataset", i)
		}
	}
	// CountRS maps weights to 1 and may shard regardless.
	cnt, err := e.CountRS(context.Background(), d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cnt.ShardStats) == 0 {
		t.Error("CountRS (all-ones weights) should still shard")
	}
}

// TestShardedOnDisk: the sharded path works with file-backed primary and
// shard disks, and the per-query counts match the in-memory engine
// exactly (the backend never changes a count).
func TestShardedOnDisk(t *testing.T) {
	mem := newShardTestEngine(t, Options{Shards: 4})
	dMem := testDataset(t, mem, 500)
	want, err := mem.MaxRS(context.Background(), dMem, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	disk := newShardTestEngine(t, Options{Shards: 4, OnDisk: true, OnDiskDir: t.TempDir()})
	dDisk := testDataset(t, disk, 500)
	got, err := disk.MaxRS(context.Background(), dDisk, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score || got.Stats != want.Stats {
		t.Errorf("on-disk sharded query: score %g stats %+v, want %g %+v",
			got.Score, got.Stats, want.Score, want.Stats)
	}
}
