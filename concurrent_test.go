package maxrs

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// sameResult compares two Results field by field — Result itself stopped
// being ==-comparable when it grew the ShardStats slice.
func sameResult(a, b Result) bool {
	if len(a.ShardStats) != len(b.ShardStats) {
		return false
	}
	for i := range a.ShardStats {
		if a.ShardStats[i] != b.ShardStats[i] {
			return false
		}
	}
	return a.Location == b.Location && a.Score == b.Score &&
		a.Region == b.Region && a.Stats == b.Stats
}

// testDataset loads a pseudo-random weighted dataset large enough to push
// ExactMaxRS through external recursion under the tiny test EM budget.
func testDataset(t *testing.T, e *Engine, n int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			X:      math.Floor(rng.Float64() * 8000),
			Y:      math.Floor(rng.Float64() * 8000),
			Weight: float64(1 + rng.Intn(5)),
		}
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// mixedQuery runs the i-th query of the deterministic mixed workload and
// returns a comparable fingerprint of its results.
func mixedQuery(e *Engine, d *Dataset, i int) (string, error) {
	size := float64(50 * (1 + i%5))
	switch i % 5 {
	case 0:
		r, err := e.MaxRS(context.Background(), d, size, size)
		return fmt.Sprintf("maxrs %+v", r), err
	case 1:
		rs, err := e.TopK(context.Background(), d, size, size, 3)
		return fmt.Sprintf("topk %+v", rs), err
	case 2:
		r, err := e.MinRS(context.Background(), d, size, size)
		return fmt.Sprintf("minrs %+v", r), err
	case 3:
		r, err := e.CountRS(context.Background(), d, size, size)
		return fmt.Sprintf("countrs %+v", r), err
	default:
		r, err := e.MaxCRS(context.Background(), d, size)
		return fmt.Sprintf("maxcrs %+v", r), err
	}
}

// TestConcurrentQueriesMatchSequential drives N goroutines of mixed
// MaxRS/TopK/MinRS/CountRS/MaxCRS queries against one shared engine and
// dataset and requires bit-identical results — including the per-query
// Stats — versus sequential execution. Run under -race in CI.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d := testDataset(t, e, 1500)

	const queries = 20
	want := make([]string, queries)
	for i := range want {
		s, err := mixedQuery(e, d, i)
		if err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
		want[i] = s
	}

	const goroutines = 10
	got := make([][]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]string, queries)
			// Each goroutine runs the full mix in a different order.
			for k := 0; k < queries; k++ {
				i := (k + g) % queries
				s, err := mixedQuery(e, d, i)
				if err != nil {
					errs[g] = fmt.Errorf("query %d: %w", i, err)
					return
				}
				got[g][i] = s
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := range got {
		for i := range want {
			if got[g][i] != want[i] {
				t.Fatalf("goroutine %d query %d:\n got  %s\n want %s", g, i, got[g][i], want[i])
			}
		}
	}

	// Every query's intermediates must be back; only the dataset remains.
	if n := e.BlocksInUse(); n != d.Blocks() {
		t.Fatalf("BlocksInUse = %d after queries, want dataset's %d", n, d.Blocks())
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	if n := e.BlocksInUse(); n != 0 {
		t.Fatalf("BlocksInUse = %d after release, want 0", n)
	}
}

// TestConcurrentBaselineAlgorithms exercises the NaiveSweep and ASBTree
// baselines concurrently too — they share the engine env rather than the
// solver, so their reentrancy is separately load-bearing.
func TestConcurrentBaselineAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{NaiveSweep, ASBTree, InMemory} {
		t.Run(alg.String(), func(t *testing.T) {
			e, err := NewEngine(&Options{BlockSize: 512, Memory: 4096, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			d := testDataset(t, e, 400)
			want, err := e.MaxRS(context.Background(), d, 200, 200)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make([]error, 8)
			for g := range errs {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					got, err := e.MaxRS(context.Background(), d, 200, 200)
					if err != nil {
						errs[g] = err
						return
					}
					if !sameResult(got, want) {
						errs[g] = fmt.Errorf("got %+v, want %+v", got, want)
					}
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if n := e.BlocksInUse(); n != d.Blocks() {
				t.Fatalf("BlocksInUse = %d, want %d", n, d.Blocks())
			}
		})
	}
}

// TestDatasetReleaseDuringQueries releases a dataset while queries are in
// flight: running queries either finish normally or observe
// ErrDatasetReleased (if they started after Release), and the blocks are
// freed exactly once, when the last query drains.
func TestDatasetReleaseDuringQueries(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d := testDataset(t, e, 800)

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 4; i++ {
				_, err := e.MaxRS(context.Background(), d, 100, 100)
				if err != nil && err != ErrDatasetReleased {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	close(start)
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if n := e.BlocksInUse(); n != 0 {
		t.Fatalf("BlocksInUse = %d after release + drain, want 0", n)
	}
	// Queries after release must fail cleanly.
	if _, err := e.MaxRS(context.Background(), d, 100, 100); err != ErrDatasetReleased {
		t.Fatalf("query on released dataset: err = %v, want ErrDatasetReleased", err)
	}
	if err := d.Release(); err != nil {
		t.Fatalf("double release: %v", err)
	}
}

// TestPerQueryStats checks that Result.Stats reports this query's cost:
// deterministic across runs, additive against the global counters, and
// zero-read for nothing.
func TestPerQueryStats(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d := testDataset(t, e, 1000)
	e.ResetStats()

	r1, err := e.MaxRS(context.Background(), d, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Total() == 0 {
		t.Fatal("per-query stats are zero")
	}
	global := e.Stats()
	if r1.Stats.Reads != global.Reads || r1.Stats.Writes != global.Writes {
		t.Fatalf("solo query stats %+v != global delta %+v", r1.Stats, global)
	}
	r2, err := e.MaxRS(context.Background(), d, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats != r1.Stats {
		t.Fatalf("same query, different stats: %+v vs %+v", r2.Stats, r1.Stats)
	}

	// TopK rounds: per-round stats sum to the call's global delta.
	e.ResetStats()
	rs, err := e.TopK(context.Background(), d, 300, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, r := range rs {
		sum += r.Stats.Total()
	}
	if g := e.Stats().Total(); sum != g {
		t.Fatalf("topk per-round stats sum %d != global delta %d", sum, g)
	}
}
