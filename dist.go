package maxrs

import (
	"context"
	"errors"
	"net/http"
	"time"

	"maxrs/internal/conc"
	"maxrs/internal/core"
	"maxrs/internal/dist"
	"maxrs/internal/em"
	"maxrs/internal/shard"
	"maxrs/internal/sweep"
)

// Typed distributed-execution errors (internal/dist's sentinels
// re-exported, so errors.Is classifies across the API boundary).
var (
	// ErrShardUnavailable marks a distributed query that lost a shard
	// for good: retries, hedging, and (when enabled) the local
	// halo-replica fallback were all exhausted. The query's Result still
	// carries per-worker attribution in ShardStats — the coordinator
	// fails typed, never with a silently partial answer.
	ErrShardUnavailable = dist.ErrShardUnavailable
	// ErrNoWorkers means a distributed query found no ready workers. By
	// default the engine degrades to the in-process sharded path instead
	// of surfacing it; it appears when local fallback is disabled.
	ErrNoWorkers = dist.ErrNoWorkers
)

// WorkerAddr names one worker maxrsd instance for DistOptions.Workers.
type WorkerAddr struct {
	// Name identifies the worker in attribution and stats; defaults to
	// URL when empty.
	Name string
	// URL is the worker's base URL, e.g. "http://10.0.0.7:8080".
	URL string
}

// WorkerStatus is one entry of the engine's membership table.
type WorkerStatus struct {
	Name  string
	URL   string
	Ready bool
	// Failures counts consecutive failed probes or exhausted call
	// sequences since the last success.
	Failures int
}

// HedgePolicy budgets duplicate requests for straggler shards
// (DESIGN.md §13): a shard call unanswered after Delay is duplicated to
// the next ready worker, first success wins, and the loser is cancelled
// through the standard query-cancellation contract.
type HedgePolicy struct {
	// Delay is how long a shard call may remain unanswered before it is
	// hedged. 0 disables hedging.
	Delay time.Duration
	// Max bounds the hedged duplicates per query (0 = 1), so a query
	// over many straggling shards cannot double the cluster's load.
	Max int
}

// DistOptions configures the engine's distributed execution mode
// (Options.Dist): sharded queries are fanned out over worker maxrsd
// instances instead of solving every shard in process. Planning,
// routing, and the exact K-way merge are the same code the in-process
// path runs, so a no-fault distributed solve is bit-identical to
// Options.Shards; the options below configure what happens when the
// network is not fault-free.
type DistOptions struct {
	// Workers statically registers the initial membership. More can be
	// added at runtime with Engine.RegisterWorker (or maxrsd's
	// /cluster/workers endpoint).
	Workers []WorkerAddr
	// Retry caps per-shard worker-call retries with the same jittered
	// capped-exponential backoff the storage layer uses; Retry-After
	// from shed workers is honored when it exceeds the backoff. The
	// zero value never retries.
	Retry RetryPolicy
	// Hedge budgets straggler duplicates. The zero value never hedges.
	Hedge HedgePolicy
	// ProbeInterval starts a background prober hitting every worker's
	// /readyz at this interval. 0 disables it; readiness then changes
	// only through registration, call failures, and Engine.ProbeWorkers.
	ProbeInterval time.Duration
	// DisableLocalFallback turns off graceful degradation: by default a
	// shard whose every network path is exhausted is solved locally from
	// its halo-replicated partition file (bit-identical — the replica is
	// the exact byte stream the worker was sent), and a query that finds
	// no ready workers at all runs the plain in-process sharded path
	// with Result.FallbackReason set. With the fallback disabled those
	// queries fail typed instead: ErrShardUnavailable / ErrNoWorkers.
	DisableLocalFallback bool
	// Transport is the base HTTP transport for worker calls (nil =
	// http.DefaultTransport). The NetFaults injector wraps it.
	Transport http.RoundTripper
	// NetFaults arms deterministic network-fault injection on every
	// worker call — the chaos hook for tests and drills, mirroring
	// Engine.InjectFaults at the network layer. The zero plan injects
	// nothing.
	NetFaults NetFaultPlan
}

// NetFaultKind is a class of injected network fault (DESIGN.md §13).
type NetFaultKind int

// Network fault classes.
const (
	// NetFaultConn fails the call before it reaches the worker
	// (connection refused/reset); transient, the retry layer recovers.
	NetFaultConn NetFaultKind = iota
	// NetFaultDisconnect breaks the connection mid-response: status and
	// headers arrive, the body truncates halfway. Transient.
	NetFaultDisconnect
	// NetFaultCorrupt flips one byte of the response body in flight;
	// the reply checksum exposes it and the call is retried.
	NetFaultCorrupt
	// NetFaultLatency delays the call by NetFaultPlan.Latency, then
	// performs it normally — a straggler, the hedging layer's target.
	NetFaultLatency
)

// NetFaultAt schedules one fault at an exact call index, counted from
// engine creation: Call == 1 targets the first worker call (retries and
// hedges count as their own calls).
type NetFaultAt struct {
	Call uint64 // 1-based worker-call index
	Kind NetFaultKind
}

// NetFaultPlan configures deterministic network-fault injection on the
// engine's worker calls, mirroring FaultPlan one layer up: exact
// per-call schedules (At) compose with seed-driven per-call rates. A
// zero plan injects nothing, and an armed plan that fires nothing
// leaves distributed results bit-identical.
type NetFaultPlan struct {
	// Seed seeds the rate-driven draws (used only when a rate is > 0).
	Seed int64
	// ConnRate / DisconnectRate / CorruptRate are per-call fault
	// probabilities by kind.
	ConnRate       float64
	DisconnectRate float64
	CorruptRate    float64
	// LatencyRate is the per-call probability of a latency spike of
	// Latency.
	LatencyRate float64
	Latency     time.Duration
	// At schedules faults at exact call indices, taking precedence over
	// the rates for those calls.
	At []NetFaultAt
}

func (p NetFaultPlan) dist() dist.FaultPlan {
	out := dist.FaultPlan{
		Seed:           p.Seed,
		ConnRate:       p.ConnRate,
		DisconnectRate: p.DisconnectRate,
		CorruptRate:    p.CorruptRate,
		LatencyRate:    p.LatencyRate,
		Latency:        p.Latency,
	}
	for _, at := range p.At {
		out.At = append(out.At, dist.FaultAt{Call: at.Call, Kind: dist.FaultKind(at.Kind)})
	}
	return out
}

// NetFaultStats counts the engine's worker calls and the network faults
// its injector fired, by kind. Zero when the engine is not distributed.
type NetFaultStats struct {
	Calls              uint64
	InjectedConn       uint64
	InjectedDisconnect uint64
	InjectedCorrupt    uint64
	InjectedLatency    uint64
}

// RegisterWorker adds (or re-registers) a worker in the engine's
// membership table; it starts ready and is demoted by failed probes or
// exhausted call sequences. Returns false when the engine is not
// distributed (Options.Dist unset) or url is empty.
func (e *Engine) RegisterWorker(name, url string) bool {
	if e.coord == nil {
		return false
	}
	return e.coord.Members().Add(name, url)
}

// RemoveWorker drops a worker from the membership table, reporting
// whether it was present.
func (e *Engine) RemoveWorker(name string) bool {
	if e.coord == nil {
		return false
	}
	return e.coord.Members().Remove(name)
}

// Workers snapshots the membership table in registration order (empty
// when the engine is not distributed).
func (e *Engine) Workers() []WorkerStatus {
	if e.coord == nil {
		return nil
	}
	list := e.coord.Members().List()
	out := make([]WorkerStatus, len(list))
	for i, w := range list {
		out[i] = WorkerStatus{Name: w.Name, URL: w.URL, Ready: w.Ready, Failures: w.Failures}
	}
	return out
}

// ProbeWorkers probes every registered worker's /readyz once, updating
// the membership table — the synchronous form of the background prober,
// for tests and admin endpoints. No-op when the engine is not
// distributed.
func (e *Engine) ProbeWorkers(ctx context.Context) {
	if e.coord == nil {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.coord.Members().ProbeAll(ctx)
}

// solveDistributed fans one sharded ExactMaxRS solve out to the
// engine's workers: plan and route locally with the exact shard seams
// (so shard boundaries and halos are bit-identical to the in-process
// path), ship each partition's objects over POST /shard/solve, and
// merge replies with the same exact K-way merge. The partition files
// stay alive until the query ends — they are the halo replicas that
// make resends, hedges, and the local fallback possible.
func (q *query) solveDistributed(f *em.File, w, h float64, k int) (sweep.Result, []ShardStat, error) {
	env := q.e.env.WithScope(q.sc).WithContext(q.ctx)
	bounds, err := shard.PlanBounds(env, f, k)
	if err != nil {
		return sweep.Result{}, nil, err
	}
	parts, err := shard.PartitionObjects(env, f, bounds, w/2, shard.Config{NewDisk: q.e.newShardDisk})
	if err != nil {
		return sweep.Result{}, nil, err
	}
	defer func() {
		// Fold the partition disks' traffic into the query scope and the
		// engine totals (the in-process accounting contract), then drop
		// the disks — replicas live exactly as long as the query.
		var ext em.Stats
		for _, p := range parts {
			s := p.Stats()
			ext.Reads += s.Reads
			ext.Writes += s.Writes
			_ = p.Close()
		}
		q.sc.Add(ext)
		q.e.shardReads.Add(ext.Reads)
		q.e.shardWrites.Add(ext.Writes)
	}()
	coreCfg := core.Config{Fanout: q.e.opts.Fanout, Unfused: q.set.unfused}
	if coreCfg.Parallelism = q.par / len(parts); coreCfg.Parallelism < 1 {
		coreCfg.Parallelism = 1
	}
	jobs := make([]dist.ShardJob, len(parts))
	for i, p := range parts {
		objs, err := p.ReadObjects(q.ctx)
		if err != nil {
			return sweep.Result{}, nil, err
		}
		jobs[i] = dist.ShardJob{
			Index: i,
			Req:   dist.SolveRequest{W: w, H: h, Unfused: q.set.unfused, Objects: objs},
		}
		if !q.e.opts.Dist.DisableLocalFallback {
			part := p
			jobs[i].Fallback = func(ctx context.Context) (sweep.Result, error) {
				return part.Solve(ctx, w, h, coreCfg)
			}
		}
	}
	results, reports, err := q.e.coord.Solve(q.ctx, jobs)
	if errors.Is(err, ErrNoWorkers) {
		if q.e.opts.Dist.DisableLocalFallback {
			return sweep.Result{}, nil, err
		}
		// Graceful degradation: an empty (or fully demoted) membership
		// never fails a query that can still be answered — the replicas
		// are right here.
		q.noteFallback("no ready workers; distributed query solved in process")
		return q.solvePartitions(parts, w, h, coreCfg)
	}
	q.distributedRan = true
	stats := make([]ShardStat, len(parts))
	for i, p := range parts {
		s := p.Stats()
		stats[i] = ShardStat{
			Objects: p.Objects(),
			Stats:   QueryStats{Reads: s.Reads, Writes: s.Writes},
		}
		if i < len(reports) {
			r := reports[i]
			stats[i].Worker = r.Worker
			stats[i].Attempts = r.Attempts
			stats[i].Hedged = r.Hedged
			stats[i].FellBack = r.FellBack
			stats[i].RemoteStats = QueryStats{Reads: r.Reads, Writes: r.Writes}
			stats[i].Err = r.Err
		}
	}
	if err != nil {
		if cerr := q.ctx.Err(); cerr != nil {
			// A cancelled fan-out is a cancelled query, not a lost shard.
			return sweep.Result{}, nil, cerr
		}
		return sweep.Result{}, stats, err
	}
	win := shard.Merge(results)
	return results[win], stats, nil
}

// solvePartitions solves already-routed partitions in process — the
// degraded path when no workers are ready. Results are bit-identical to
// both the distributed and the plain in-process sharded paths: same
// partitions, same solver, same merge.
func (q *query) solvePartitions(parts []*shard.Partition, w, h float64, coreCfg core.Config) (sweep.Result, []ShardStat, error) {
	results := make([]sweep.Result, len(parts))
	err := conc.ForEachIndexed(len(parts), q.par, func(i int) error {
		res, err := parts[i].Solve(q.ctx, w, h, coreCfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return sweep.Result{}, nil, err
	}
	stats := make([]ShardStat, len(parts))
	for i, p := range parts {
		s := p.Stats()
		stats[i] = ShardStat{Objects: p.Objects(), Stats: QueryStats{Reads: s.Reads, Writes: s.Writes}}
	}
	win := shard.Merge(results)
	return results[win], stats, nil
}

// NetFaultStats returns the worker-call and injected-network-fault
// counters (zero when the engine is not distributed).
func (e *Engine) NetFaultStats() NetFaultStats {
	if e.netTransport == nil {
		return NetFaultStats{}
	}
	s := e.netTransport.Stats()
	return NetFaultStats{
		Calls:              s.Calls,
		InjectedConn:       s.InjectedConn,
		InjectedDisconnect: s.InjectedDisconnect,
		InjectedCorrupt:    s.InjectedCorrupt,
		InjectedLatency:    s.InjectedLatency,
	}
}
