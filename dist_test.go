package maxrs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maxrs/internal/dist"
	"maxrs/internal/geom"
)

// testWorker is a minimal in-process worker maxrsd: it serves /readyz
// and /shard/solve against its own engine, exactly the way a real
// worker does (cmd/maxrsd registers the same endpoints on the same
// wire helpers). delay, when positive, stalls every solve — the
// straggler knob for the hedging tests.
func testWorker(t *testing.T, delay time.Duration) *httptest.Server {
	t.Helper()
	eng, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+dist.PathReady, func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST "+dist.PathSolve, func(w http.ResponseWriter, r *http.Request) {
		req, err := dist.DecodeRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Stall after consuming the body: only then does net/http's
		// background read detect a client disconnect and cancel r.Context,
		// which the cancellation test relies on.
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		objs := make([]Object, len(req.Objects))
		for i, o := range req.Objects {
			objs[i] = Object{X: o.X, Y: o.Y, Weight: o.W}
		}
		ds, err := eng.Load(context.Background(), objs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer func() { _ = ds.Release() }()
		res, err := eng.MaxRS(r.Context(), ds, req.W, req.H, WithShards(0), WithUnfused(req.Unfused))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = dist.WriteReply(w, dist.SolveReply{
			Sum: res.Score,
			Region: geom.Rect{
				X: geom.Interval{Lo: res.Region.MinX, Hi: res.Region.MaxX},
				Y: geom.Interval{Lo: res.Region.MinY, Hi: res.Region.MaxY},
			},
			Reads:  res.Stats.Reads,
			Writes: res.Stats.Writes,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// distTestEngine builds a distributed engine over the given worker URLs
// with a small retry budget; mut customizes the DistOptions further.
func distTestEngine(t *testing.T, shards int, workerURLs []string, mut func(*DistOptions)) *Engine {
	t.Helper()
	do := &DistOptions{
		Retry: RetryPolicy{MaxRetries: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, JitterSeed: 42},
	}
	for i, u := range workerURLs {
		do.Workers = append(do.Workers, WorkerAddr{Name: fmt.Sprintf("w%d", i), URL: u})
	}
	if mut != nil {
		mut(do)
	}
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192, Shards: shards, Dist: do})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// checkSameResult asserts bit-identical answers: distribution must never
// change a score, location, or region, only where shards solve.
func checkSameResult(t *testing.T, got, want Result) {
	t.Helper()
	if got.Score != want.Score || got.Location != want.Location || got.Region != want.Region {
		t.Fatalf("distributed result diverged:\n got  %+v %+v %g\n want %+v %+v %g",
			got.Location, got.Region, got.Score, want.Location, want.Region, want.Score)
	}
}

// TestDistributedNoFaultBitIdentical: with a clean network, a
// distributed solve is bit-identical to the in-process sharded path at
// K=2 and K=4 — same planner, same router, same merge, so the wire must
// be invisible. Also pins the attribution plumbing and the leak gauge.
func TestDistributedNoFaultBitIdentical(t *testing.T) {
	workers := []string{testWorker(t, 0).URL, testWorker(t, 0).URL}
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			e := distTestEngine(t, k, workers, nil)
			d := testDataset(t, e, 500)
			defer func() { _ = d.Release() }()
			want, err := e.MaxRS(context.Background(), d, 300, 300, WithDistributed(false))
			if err != nil {
				t.Fatal(err)
			}
			if want.Distributed {
				t.Fatal("WithDistributed(false) still reported a distributed run")
			}
			got, err := e.MaxRS(context.Background(), d, 300, 300)
			if err != nil {
				t.Fatal(err)
			}
			checkSameResult(t, got, want)
			if !got.Distributed {
				t.Fatal("distributed query did not report Distributed")
			}
			if len(got.ShardStats) == 0 {
				t.Fatal("distributed query reported no shard stats")
			}
			for i, s := range got.ShardStats {
				if s.Worker == "" || s.Attempts < 1 {
					t.Errorf("shard %d: attribution %+v, want a worker and ≥1 attempt", i, s)
				}
				if s.FellBack || s.Err != nil {
					t.Errorf("shard %d: unexpected degradation %+v on a clean network", i, s)
				}
				if s.RemoteStats.Total() == 0 {
					t.Errorf("shard %d: no worker-reported I/O", i)
				}
			}
			if fs := e.NetFaultStats(); fs.Calls == 0 {
				t.Error("no worker calls counted")
			}
			if in, blocks := e.BlocksInUse(), d.Blocks(); in != blocks {
				t.Fatalf("BlocksInUse = %d after distributed query, want the dataset's %d (leaked replicas?)", in, blocks)
			}
		})
	}
}

// TestDistributedFaultMatrix is the chaos matrix (DESIGN.md §13): every
// injected network fault class must leave the answer bit-identical to
// the in-process solve — recovered by retry, hedging, or the
// halo-replica fallback — and never hang, leak blocks, or return a
// silently partial result.
func TestDistributedFaultMatrix(t *testing.T) {
	classes := []struct {
		name string
		mut  func(*DistOptions)
		// wantKind asserts a specific injected counter fired (exact At
		// schedules only — rate-driven classes assert on total calls).
		wantKind func(NetFaultStats) bool
	}{
		{
			name: "connExact",
			mut: func(do *DistOptions) {
				do.NetFaults = NetFaultPlan{At: []NetFaultAt{{Call: 1, Kind: NetFaultConn}}}
			},
			wantKind: func(s NetFaultStats) bool { return s.InjectedConn == 1 },
		},
		{
			name: "disconnectMidStream",
			mut: func(do *DistOptions) {
				do.NetFaults = NetFaultPlan{At: []NetFaultAt{{Call: 1, Kind: NetFaultDisconnect}}}
			},
			wantKind: func(s NetFaultStats) bool { return s.InjectedDisconnect == 1 },
		},
		{
			name: "corruptReply",
			mut: func(do *DistOptions) {
				do.NetFaults = NetFaultPlan{At: []NetFaultAt{{Call: 2, Kind: NetFaultCorrupt}}}
			},
			wantKind: func(s NetFaultStats) bool { return s.InjectedCorrupt == 1 },
		},
		{
			name: "connRate",
			mut: func(do *DistOptions) {
				do.NetFaults = NetFaultPlan{Seed: 7, ConnRate: 0.4}
			},
		},
		{
			name: "mixedRates",
			mut: func(do *DistOptions) {
				do.NetFaults = NetFaultPlan{Seed: 11, ConnRate: 0.2, DisconnectRate: 0.2, CorruptRate: 0.2}
			},
		},
		{
			name: "stragglerHedged",
			mut: func(do *DistOptions) {
				do.NetFaults = NetFaultPlan{Seed: 3, LatencyRate: 0.5, Latency: 50 * time.Millisecond}
				do.Hedge = HedgePolicy{Delay: 5 * time.Millisecond, Max: 4}
			},
		},
	}
	for _, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			workers := []string{testWorker(t, 0).URL, testWorker(t, 0).URL}
			e := distTestEngine(t, 2, workers, tc.mut)
			d := testDataset(t, e, 500)
			defer func() { _ = d.Release() }()
			want, err := e.MaxRS(context.Background(), d, 300, 300, WithDistributed(false))
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.MaxRS(context.Background(), d, 300, 300)
			if err != nil {
				t.Fatalf("distributed query under %s faults: %v", tc.name, err)
			}
			checkSameResult(t, got, want)
			fs := e.NetFaultStats()
			if fs.Calls == 0 {
				t.Fatal("no worker calls counted")
			}
			if tc.wantKind != nil && !tc.wantKind(fs) {
				t.Errorf("injected counters %+v: scheduled fault did not fire", fs)
			}
			if in, blocks := e.BlocksInUse(), d.Blocks(); in != blocks {
				t.Fatalf("BlocksInUse = %d after faulted query, want %d", in, blocks)
			}
		})
	}
}

// TestDistributedPermanentLossFallsBack: a worker pool that rejects
// every call permanently must not fail the query — each lost shard is
// solved from the coordinator's halo-replicated partition file,
// bit-identically, with FellBack attribution.
func TestDistributedPermanentLossFallsBack(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no such endpoint", http.StatusNotFound) // permanent: no retry can help
	}))
	t.Cleanup(dead.Close)
	e := distTestEngine(t, 2, []string{dead.URL}, nil)
	d := testDataset(t, e, 500)
	defer func() { _ = d.Release() }()
	want, err := e.MaxRS(context.Background(), d, 300, 300, WithDistributed(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MaxRS(context.Background(), d, 300, 300)
	if err != nil {
		t.Fatalf("query with dead workers: %v (fallback should have saved it)", err)
	}
	checkSameResult(t, got, want)
	if !got.Distributed {
		t.Fatal("fallback run lost the Distributed mark")
	}
	for i, s := range got.ShardStats {
		if !s.FellBack {
			t.Errorf("shard %d: FellBack = false, want the halo-replica fallback", i)
		}
		if s.Attempts != 1 {
			t.Errorf("shard %d: %d attempts on a permanent error, want exactly 1 (no useless retries)", i, s.Attempts)
		}
	}
	if in, blocks := e.BlocksInUse(), d.Blocks(); in != blocks {
		t.Fatalf("BlocksInUse = %d after fallback, want %d", in, blocks)
	}
}

// TestDistributedUnavailableTyped: with the local fallback disabled, a
// lost shard fails typed — ErrShardUnavailable, carrying per-worker
// attribution in the partial Result — rather than hanging or answering
// partially.
func TestDistributedUnavailableTyped(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no", http.StatusNotFound)
	}))
	t.Cleanup(dead.Close)
	e := distTestEngine(t, 2, []string{dead.URL}, func(do *DistOptions) {
		do.DisableLocalFallback = true
	})
	d := testDataset(t, e, 500)
	defer func() { _ = d.Release() }()
	res, err := e.MaxRS(context.Background(), d, 300, 300)
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if len(res.ShardStats) == 0 {
		t.Fatal("typed failure carried no shard attribution")
	}
	for i, s := range res.ShardStats {
		if s.Err == nil || s.Worker == "" {
			t.Errorf("shard %d: attribution %+v, want the failing worker and its error", i, s)
		}
		if s.FellBack {
			t.Errorf("shard %d: FellBack with the fallback disabled", i)
		}
	}
	if res.Score != 0 {
		t.Fatalf("failed query carried a score %g: partial answers must not look authoritative", res.Score)
	}
	if in, blocks := e.BlocksInUse(), d.Blocks(); in != blocks {
		t.Fatalf("BlocksInUse = %d after typed failure, want %d", in, blocks)
	}
}

// TestDistributedNoWorkersDegrades: an empty (or fully demoted)
// membership solves in process with FallbackReason set by default, and
// fails typed with ErrNoWorkers when the fallback is disabled.
func TestDistributedNoWorkersDegrades(t *testing.T) {
	e := distTestEngine(t, 2, nil, nil)
	d := testDataset(t, e, 400)
	defer func() { _ = d.Release() }()
	want, err := e.MaxRS(context.Background(), d, 300, 300, WithDistributed(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MaxRS(context.Background(), d, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	checkSameResult(t, got, want)
	if got.Distributed {
		t.Fatal("in-process degradation still claimed Distributed")
	}
	if !strings.Contains(got.FallbackReason, "no ready workers") {
		t.Fatalf("FallbackReason = %q, want it to name the missing workers", got.FallbackReason)
	}

	strict := distTestEngine(t, 2, nil, func(do *DistOptions) { do.DisableLocalFallback = true })
	ds := testDataset(t, strict, 400)
	defer func() { _ = ds.Release() }()
	if _, err := strict.MaxRS(context.Background(), ds, 300, 300); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestDistributedHedgeStraggler: a straggling worker is hedged to the
// next ready one after the hedge delay; the fast duplicate wins, the
// answer is bit-identical, and the report says the shard was hedged.
func TestDistributedHedgeStraggler(t *testing.T) {
	slow := testWorker(t, 300*time.Millisecond)
	fast := testWorker(t, 0)
	e := distTestEngine(t, 2, []string{slow.URL, fast.URL}, func(do *DistOptions) {
		do.Hedge = HedgePolicy{Delay: 10 * time.Millisecond, Max: 4}
	})
	d := testDataset(t, e, 500)
	defer func() { _ = d.Release() }()
	want, err := e.MaxRS(context.Background(), d, 300, 300, WithDistributed(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MaxRS(context.Background(), d, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	checkSameResult(t, got, want)
	hedged := false
	for _, s := range got.ShardStats {
		hedged = hedged || s.Hedged
	}
	if !hedged {
		t.Fatal("no shard was hedged despite a straggling worker")
	}
}

// TestDistributedCancellation: cancelling the query ctx mid-fan-out
// surfaces as a cancelled query (ErrQueryCancelled wrapping the ctx
// error), never as a lost shard — and releases everything.
func TestDistributedCancellation(t *testing.T) {
	stuck := testWorker(t, time.Hour)
	e := distTestEngine(t, 2, []string{stuck.URL}, nil)
	d := testDataset(t, e, 500)
	defer func() { _ = d.Release() }()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.MaxRS(ctx, d, 300, 300)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrQueryCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want ErrQueryCancelled wrapping context.Canceled", err)
		}
		if errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("cancellation misreported as a lost shard: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled distributed query hung")
	}
	if in, blocks := e.BlocksInUse(), d.Blocks(); in != blocks {
		t.Fatalf("BlocksInUse = %d after cancellation, want %d", in, blocks)
	}
}

// TestDistributedMembership exercises the membership table end to end:
// registration, probing (promote and demote), and the deterministic
// ready ordering the shard assignment depends on.
func TestDistributedMembership(t *testing.T) {
	up := testWorker(t, 0)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(down.Close)
	e := distTestEngine(t, 2, nil, nil)
	if e.RegisterWorker("", "") {
		t.Fatal("registered a worker with no URL")
	}
	if !e.RegisterWorker("up", up.URL) || !e.RegisterWorker("down", down.URL) {
		t.Fatal("registration failed")
	}
	e.ProbeWorkers(context.Background())
	byName := map[string]WorkerStatus{}
	for _, w := range e.Workers() {
		byName[w.Name] = w
	}
	if !byName["up"].Ready {
		t.Errorf("worker up: %+v, want ready after a 200 probe", byName["up"])
	}
	if byName["down"].Ready || byName["down"].Failures == 0 {
		t.Errorf("worker down: %+v, want demoted with counted failures", byName["down"])
	}
	if !e.RemoveWorker("down") || e.RemoveWorker("down") {
		t.Fatal("remove should succeed once and then report absence")
	}
	if n := len(e.Workers()); n != 1 {
		t.Fatalf("%d workers after removal, want 1", n)
	}
	// A query against the surviving worker still answers exactly.
	d := testDataset(t, e, 400)
	defer func() { _ = d.Release() }()
	want, err := e.MaxRS(context.Background(), d, 300, 300, WithDistributed(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MaxRS(context.Background(), d, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	checkSameResult(t, got, want)
}
