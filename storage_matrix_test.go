package maxrs

import (
	"context"
	"fmt"
	"testing"
)

// storageVariants is the backend × codec grid of the extended invariance
// matrix: every storage stack an engine can run on.
var storageVariants = []struct {
	name    string
	onDisk  bool
	backend BackendKind
	codec   CodecKind
}{
	{"file+none", true, BackendFile, CodecNone},
	{"file+delta", true, BackendFile, CodecDelta},
	{"mmap+none", true, BackendMmap, CodecNone},
	{"mmap+delta", true, BackendMmap, CodecDelta},
	{"mem+delta", false, BackendAuto, CodecDelta},
}

// TestStorageInvarianceMatrix is the acceptance matrix of the storage
// subsystem (DESIGN.md §15): counted read/write transfers must be
// bit-identical between the file and mmap backends and across all
// codecs, at parallelism 1, 2, 4 and 8, unsharded and sharded — the
// codecs and the mmap path live below the transfer counters, so the
// counted schedule cannot move. Results must be bit-identical too, and
// codec-bearing variants must actually measure physical bytes.
func TestStorageInvarianceMatrix(t *testing.T) {
	objs := fusionObjects(3000)
	queryEdge := 4.0 * 3000 / 1000

	run := func(t *testing.T, opts Options) (Result, PhysIO) {
		t.Helper()
		e, err := NewEngine(&opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		d, err := e.Load(context.Background(), objs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Release(); err != nil {
			t.Fatal(err)
		}
		if n := e.BlocksInUse(); n != 0 {
			t.Fatalf("%d blocks leaked", n)
		}
		return res, e.PhysIO()
	}

	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base, _ := run(t, Options{
				Memory: 52 * 1024, Shards: shards,
				OnDisk: true, OnDiskDir: t.TempDir(),
			})
			for _, v := range storageVariants {
				for _, par := range []int{1, 2, 4, 8} {
					name := fmt.Sprintf("%s/p=%d", v.name, par)
					opts := Options{
						Memory: 52 * 1024, Shards: shards, Parallelism: par,
						OnDisk: v.onDisk, Backend: v.backend, Codec: v.codec,
					}
					if v.onDisk {
						opts.OnDiskDir = t.TempDir()
					}
					got, phys := run(t, opts)
					if !sameResult(got, base) {
						t.Errorf("%s: result %+v != baseline %+v", name, got, base)
					}
					if got.Stats != base.Stats {
						t.Errorf("%s: per-query transfers %+v != baseline %+v — the counted schedule moved",
							name, got.Stats, base.Stats)
					}
					if v.codec == CodecDelta && !phys.Measured {
						t.Errorf("%s: codec armed but physical bytes not measured", name)
					}
				}
			}
		})
	}
}

// TestStorageOptionValidation pins NewEngine's rejection of
// misconfigured storage selections.
func TestStorageOptionValidation(t *testing.T) {
	if _, err := NewEngine(&Options{Backend: BackendMmap}); err == nil {
		t.Fatal("in-memory engine with BackendMmap must be rejected")
	}
	if _, err := NewEngine(&Options{Backend: BackendKind(42), OnDisk: true}); err == nil {
		t.Fatal("bogus backend kind must be rejected")
	}
	if _, err := NewEngine(&Options{Codec: CodecKind(42)}); err == nil {
		t.Fatal("bogus codec kind must be rejected")
	}
	for _, k := range []BackendKind{BackendAuto, BackendFile, BackendMmap} {
		if k.String() == "" {
			t.Fatal("BackendKind.String empty")
		}
	}
	for _, k := range []CodecKind{CodecNone, CodecDelta} {
		if k.String() == "" {
			t.Fatal("CodecKind.String empty")
		}
	}
}

// TestStoragePhysBytesCompressWorkload pins the compression win on real
// engine traffic: loading and querying a workload under CodecDelta must
// move strictly fewer physical bytes than the fixed layout, and report
// compressed blocks.
func TestStoragePhysBytesCompressWorkload(t *testing.T) {
	objs := fusionObjects(3000)
	queryEdge := 4.0 * 3000 / 1000
	phys := func(c CodecKind) (PhysIO, IOStats) {
		e, err := NewEngine(&Options{
			Memory: 52 * 1024, OnDisk: true, OnDiskDir: t.TempDir(), Codec: c,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		d, err := e.Load(context.Background(), objs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge); err != nil {
			t.Fatal(err)
		}
		return e.PhysIO(), e.Stats()
	}
	delta, dStats := phys(CodecDelta)
	raw, rStats := phys(CodecNone)
	if dStats != rStats {
		t.Fatalf("counted transfers moved: delta %+v vs none %+v", dStats, rStats)
	}
	if !delta.Measured {
		t.Fatal("delta engine did not measure physical bytes")
	}
	if delta.BlocksCompressed == 0 {
		t.Fatal("no block beat the fixed layout on a sorted workload")
	}
	// raw is derived (transfers × B) — the fixed layout's exact cost.
	if delta.Bytes() >= raw.Bytes() {
		t.Fatalf("delta moved %d physical bytes, fixed layout %d — no compression win",
			delta.Bytes(), raw.Bytes())
	}
}
