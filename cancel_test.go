package maxrs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
)

// cancelKinds enumerates the five query kinds for the cancellation matrix.
var cancelKinds = []struct {
	name string
	run  func(ctx context.Context, e *Engine, d *Dataset) error
}{
	{"MaxRS", func(ctx context.Context, e *Engine, d *Dataset) error {
		_, err := e.MaxRS(ctx, d, 200, 200)
		return err
	}},
	{"MaxCRS", func(ctx context.Context, e *Engine, d *Dataset) error {
		_, err := e.MaxCRS(ctx, d, 200)
		return err
	}},
	{"TopK", func(ctx context.Context, e *Engine, d *Dataset) error {
		_, err := e.TopK(ctx, d, 200, 200, 3)
		return err
	}},
	{"MinRS", func(ctx context.Context, e *Engine, d *Dataset) error {
		_, err := e.MinRS(ctx, d, 200, 200)
		return err
	}},
	{"CountRS", func(ctx context.Context, e *Engine, d *Dataset) error {
		_, err := e.CountRS(ctx, d, 200, 200)
		return err
	}},
}

// countingCtx counts how many times the query machinery polls Err —
// every layer checks between block transfers, so the count measures the
// cancellation points a query of this shape passes through.
type countingCtx struct {
	context.Context
	n atomic.Int64
}

func (c *countingCtx) Err() error {
	c.n.Add(1)
	return nil
}

// cancelAfterCtx reports context.Canceled from its n-th Err check on. It
// exploits the library's polling contract — ctx.Err() is consulted at
// block-transfer granularity on every layer — to place cancellation at an
// exact, scheduler-independent point inside the query's work, which a
// real context.WithCancel racing the solve cannot do. Done is inherited
// from context.Background (never closes); the engine never blocks on
// Done, so Err is the only signal it needs.
type cancelAfterCtx struct {
	context.Context
	left atomic.Int64
}

func newCancelAfter(n int64) *cancelAfterCtx {
	c := &cancelAfterCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *cancelAfterCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// runCancelled runs kind under a context cancelling at its checksIn-th
// cancellation check and requires the query to actually fail with an
// error matching both ErrQueryCancelled and context.Canceled.
func runCancelled(t *testing.T, e *Engine, d *Dataset, run func(context.Context, *Engine, *Dataset) error, checksIn int64) {
	t.Helper()
	err := run(newCancelAfter(checksIn), e, d)
	if err == nil {
		t.Fatalf("query cancelled at check %d completed anyway", checksIn)
	}
	if !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("cancelled query error %v does not match ErrQueryCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query error %v does not match context.Canceled", err)
	}
}

// TestCancelMidQuery is the acceptance matrix: every query kind ×
// {in-memory, OnDisk} × {unsharded, sharded}, cancelled at several points
// across the query's transfer schedule. After every attempt the engine
// must be back to exactly the dataset's blocks (all intermediates and
// shard disks released), and for OnDisk engines no shard temp file may
// survive. Runs race-clean under -race in CI.
func TestCancelMidQuery(t *testing.T) {
	for _, onDisk := range []bool{false, true} {
		for _, shards := range []int{0, 3} {
			name := fmt.Sprintf("onDisk=%v/shards=%d", onDisk, shards)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				e, err := NewEngine(&Options{
					BlockSize: 512,
					Memory:    4096,
					OnDisk:    onDisk,
					OnDiskDir: dir,
					Shards:    shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				d := testDataset(t, e, 1200)
				base := e.BlocksInUse()

				for _, kind := range cancelKinds {
					t.Run(kind.name, func(t *testing.T) {
						// Count this query shape's cancellation checks on a
						// full run, then cancel across that range: start,
						// 1/4, 1/2, 3/4, and the final check.
						counter := &countingCtx{Context: context.Background()}
						if err := kind.run(counter, e, d); err != nil {
							t.Fatal(err)
						}
						checks := counter.n.Load()
						wantInUse(t, e, base, "after uncancelled "+kind.name)

						points := []int64{0, checks / 4, checks / 2, checks * 3 / 4, checks - 1}
						points = append(points, rand.Int63n(checks)) // one randomized point per run
						for _, p := range points {
							runCancelled(t, e, d, kind.run, p)
							wantInUse(t, e, base, fmt.Sprintf("after cancel at check %d/%d", p, checks))
						}
						if onDisk {
							// Shard disks are file-backed too; a cancelled
							// sharded query must have removed every one of
							// its temp files. Only the engine's own backing
							// file may remain.
							entries, err := os.ReadDir(dir)
							if err != nil {
								t.Fatal(err)
							}
							if len(entries) != 1 {
								names := make([]string, len(entries))
								for i, en := range entries {
									names[i] = en.Name()
								}
								t.Fatalf("leaked backing files after cancellation: %v", names)
							}
						}
					})
				}

				if err := d.Release(); err != nil {
					t.Fatal(err)
				}
				wantInUse(t, e, 0, "after release")
			})
		}
	}
}

// TestPreCancelledQuery verifies the fast path: a context cancelled
// before the call starts fails every query kind up front — no transfers,
// no dataset reference held, nothing allocated.
func TestPreCancelledQuery(t *testing.T) {
	e := newLeakEngine(t)
	d := testDataset(t, e, 300)
	base := e.BlocksInUse()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := e.Stats()
	for _, kind := range cancelKinds {
		err := kind.run(ctx, e, d)
		if !errors.Is(err, ErrQueryCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%s with pre-cancelled ctx: err = %v, want ErrQueryCancelled wrapping context.Canceled", kind.name, err)
		}
	}
	if after := e.Stats(); after != before {
		t.Fatalf("pre-cancelled queries transferred blocks: %+v -> %+v", before, after)
	}
	wantInUse(t, e, base, "after pre-cancelled queries")
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	wantInUse(t, e, 0, "after release")
}

// TestDeadlineExceededQuery verifies deadline expiry is wrapped the same
// way as explicit cancellation.
func TestDeadlineExceededQuery(t *testing.T) {
	e := newLeakEngine(t)
	d := testDataset(t, e, 1200)
	base := e.BlocksInUse()
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, err := e.MaxRS(ctx, d, 200, 200)
	if !errors.Is(err, ErrQueryCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrQueryCancelled wrapping context.DeadlineExceeded", err)
	}
	wantInUse(t, e, base, "after deadline-exceeded query")
}

// TestCancelOneQueryLeavesOthersAlone runs a query to completion while a
// sibling on the same engine and dataset is cancelled mid-flight: the
// completed query's result and per-query stats must be bit-identical to
// an undisturbed run (the count-determinism contract survives
// cancellation of neighbors).
func TestCancelOneQueryLeavesOthersAlone(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d := testDataset(t, e, 1500)

	want, err := e.MaxRS(context.Background(), d, 150, 150)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		victimCtx, cancelVictim := context.WithCancel(context.Background())
		victimDone := make(chan error, 1)
		go func() {
			_, err := e.CountRS(victimCtx, d, 250, 250)
			victimDone <- err
		}()
		got, err := e.MaxRS(context.Background(), d, 150, 150)
		cancelVictim()
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(got, want) {
			t.Fatalf("round %d: result with cancelled sibling = %+v, want %+v", i, got, want)
		}
		if verr := <-victimDone; verr != nil && !errors.Is(verr, ErrQueryCancelled) {
			t.Fatalf("victim failed with a non-cancellation error: %v", verr)
		}
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	wantInUse(t, e, 0, "after release")
}
