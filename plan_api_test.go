package maxrs_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"maxrs"
)

func planTestEngine(t *testing.T, opts *maxrs.Options) (*maxrs.Engine, *maxrs.Dataset) {
	t.Helper()
	if opts == nil {
		opts = &maxrs.Options{BlockSize: 512, Memory: 8192}
	}
	eng, err := maxrs.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	d, err := eng.Load(context.Background(), []maxrs.Object{
		{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 5},
		{X: 3, Y: 1, Weight: 1}, {X: 90, Y: 90, Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestDatasetStats(t *testing.T) {
	_, d := planTestEngine(t, nil)
	st := d.Stats()
	if st.N != 4 || st.MinX != 1 || st.MaxX != 90 || st.MinY != 1 || st.MaxY != 90 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MinW != 1 || st.MaxW != 5 || st.MeanW != 9.0/4 {
		t.Fatalf("weight stats = %+v", st)
	}
	if st.Bytes <= 0 || st.Blocks <= 0 || !st.Resident {
		t.Fatalf("size stats = %+v, want resident", st)
	}
}

// TestExplainDoesNoIO: Explain is pure planning — not one block transfer.
func TestExplainDoesNoIO(t *testing.T) {
	eng, d := planTestEngine(t, nil)
	eng.ResetStats()
	ex, err := eng.Explain(context.Background(), d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if io := eng.Stats(); io.Reads != 0 || io.Writes != 0 {
		t.Fatalf("Explain performed I/O: %+v", io)
	}
	if len(ex.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	chosen := 0
	for _, c := range ex.Candidates {
		if c.Chosen {
			chosen++
		}
	}
	if chosen != 1 {
		t.Fatalf("%d rows chosen, want 1", chosen)
	}
	if ex.Plan.Auto {
		t.Fatal("default engine plan marked Auto")
	}
	if ex.Stats.N != 4 {
		t.Fatalf("explanation stats = %+v", ex.Stats)
	}
}

func TestExplainReleasedDataset(t *testing.T) {
	eng, d := planTestEngine(t, nil)
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(context.Background(), d, 4, 4); !errors.Is(err, maxrs.ErrDatasetReleased) {
		t.Fatalf("err = %v, want ErrDatasetReleased", err)
	}
	if _, err := eng.Explain(context.Background(), d, 0, 4); !errors.Is(err, maxrs.ErrInvalidQuery) {
		t.Fatalf("err = %v, want ErrInvalidQuery before acquire", err)
	}
}

// TestResultCarriesPlan: every query kind comes back with its
// materialized plan and a prediction next to the measured stats.
func TestResultCarriesPlan(t *testing.T) {
	ctx := context.Background()
	eng, d := planTestEngine(t, nil)

	res, err := eng.MaxRS(ctx, d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Algorithm != maxrs.ExactMaxRS || res.Plan.Auto {
		t.Fatalf("plan = %+v, want explicit ExactMaxRS", res.Plan)
	}
	if res.Plan.Parallelism < 1 {
		t.Fatalf("plan parallelism = %d", res.Plan.Parallelism)
	}
	if res.PredictedCost != res.Plan.Predicted {
		t.Fatal("Result.PredictedCost diverges from Plan.Predicted")
	}
	if res.Stats.PredictedReads != uint64(res.PredictedCost.Reads) ||
		res.Stats.PredictedWrites != uint64(res.PredictedCost.Writes) {
		t.Fatalf("QueryStats prediction fields = %+v", res.Stats)
	}

	topk, err := eng.TopK(ctx, d, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range topk {
		if r.Plan.Algorithm != maxrs.ExactMaxRS || r.PredictedCost.Total() <= 0 {
			t.Fatalf("topk round %d plan = %+v predicted %+v", i, r.Plan, r.PredictedCost)
		}
	}

	minrs, err := eng.MinRS(ctx, d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if minrs.Plan.Shards != 0 || minrs.PredictedCost.Total() <= 0 {
		t.Fatalf("minrs plan = %+v predicted %+v", minrs.Plan, minrs.PredictedCost)
	}

	crs, err := eng.MaxCRS(ctx, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if crs.Plan.Algorithm != maxrs.ExactMaxRS || crs.Plan.Shards != 0 || crs.PredictedCost.Total() <= 0 {
		t.Fatalf("maxcrs plan = %+v predicted %+v", crs.Plan, crs.PredictedCost)
	}
}

// TestFallbackReasons: every silent "ran less than requested" path names
// itself; clean queries stay silent.
func TestFallbackReasons(t *testing.T) {
	ctx := context.Background()
	eng, err := maxrs.NewEngine(&maxrs.Options{BlockSize: 512, Memory: 8192, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	pos, err := eng.Load(context.Background(), []maxrs.Object{{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 5}, {X: 3, Y: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := eng.Load(context.Background(), []maxrs.Object{{X: 1, Y: 1, Weight: 2}, {X: 2, Y: 2, Weight: -1}, {X: 3, Y: 1, Weight: 4}})
	if err != nil {
		t.Fatal(err)
	}

	if res, err := eng.MaxRS(ctx, pos, 4, 4); err != nil || res.FallbackReason != "" {
		t.Fatalf("clean sharded maxrs: err %v reason %q", err, res.FallbackReason)
	}
	res, err := eng.MaxRS(ctx, neg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.FallbackReason, "negative weights") || res.Shards != 0 {
		t.Fatalf("negative-weight fallback: shards %d reason %q", res.Shards, res.FallbackReason)
	}
	if res, err := eng.MinRS(ctx, pos, 4, 4); err != nil || !strings.Contains(res.FallbackReason, "MinRS never shards") {
		t.Fatalf("minrs fallback: err %v reason %q", err, res.FallbackReason)
	}
	if res, err := eng.CountRS(ctx, neg, 4, 4); err != nil || res.FallbackReason != "" {
		t.Fatalf("countrs on negative weights shards fine: err %v reason %q", err, res.FallbackReason)
	}
	if res, err := eng.MaxCRS(ctx, pos, 4); err != nil || !strings.Contains(res.FallbackReason, "MaxCRS never shards") {
		t.Fatalf("maxcrs fallback: err %v reason %q", err, res.FallbackReason)
	}
	if res, err := eng.MaxRS(ctx, pos, 4, 4, maxrs.WithAlgorithm(maxrs.InMemory)); err != nil || !strings.Contains(res.FallbackReason, "ignores sharding") {
		t.Fatalf("baseline-algorithm fallback: err %v reason %q", err, res.FallbackReason)
	}

	// Without a shard request there is nothing to explain away.
	if res, err := eng.MinRS(ctx, pos, 4, 4, maxrs.WithShards(0)); err != nil || res.FallbackReason != "" {
		t.Fatalf("unsharded minrs: err %v reason %q", err, res.FallbackReason)
	}
}

// TestAutoOnResident: the planner routes a resident dataset to the
// single-scan strategy and the result says so.
func TestAutoOnResident(t *testing.T) {
	ctx := context.Background()
	eng, d := planTestEngine(t, nil)
	res, err := eng.MaxRS(ctx, d, 4, 4, maxrs.WithAlgorithm(maxrs.AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Auto || res.Plan.Algorithm != maxrs.InMemory {
		t.Fatalf("auto plan on resident data = %+v, want InMemory", res.Plan)
	}
	if res.Score != 7 {
		t.Fatalf("auto score = %g, want 7", res.Score)
	}
	if !res.PredictedCost.Exact || res.Stats.Total() != uint64(res.PredictedCost.Total()) {
		t.Fatalf("resident scan prediction %+v vs measured %+v, want exact match", res.PredictedCost, res.Stats)
	}

	// Engine-wide Auto via Options.Algorithm behaves identically.
	auto, err := maxrs.NewEngine(&maxrs.Options{BlockSize: 512, Memory: 8192, Algorithm: maxrs.AlgorithmAuto})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { auto.Close() })
	d2, err := auto.Load(context.Background(), []maxrs.Object{{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 5}})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := auto.MaxRS(ctx, d2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Plan.Auto || res2.Algorithm != maxrs.InMemory {
		t.Fatalf("engine-default auto result = alg %v plan %+v", res2.Algorithm, res2.Plan)
	}
}
