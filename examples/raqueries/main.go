// RA queries: the paper's §3 argument, measured. Aggregate indexes answer
// "how much weight is in THIS rectangle?" efficiently, but MaxRS asks
// "WHERE is the best rectangle?". Enumerating RA queries on a center grid
// always undershoots the optimum (exactness needs a grid finer than any
// fixed resolution — "an infinite number of RA queries"), and once the
// buffer is smaller than the index, fine grids thrash it.
//
//	go run ./examples/raqueries
package main

import (
	"flag"
	"fmt"
	"log"

	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/ratree"
	"maxrs/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "dataset scale factor (CI smoke runs use a tiny value)")
	flag.Parse()
	const (
		blockSize = 4096
		memory    = 256 * 1024
		query     = 1000.0 // 1k × 1k range, the paper's default
	)
	objs := workload.SyntheticNE(2012)
	if *scale < 1 {
		objs = workload.Sample(2012, objs, int(float64(len(objs))**scale))
	}
	fmt.Printf("NE stand-in: %d points in [0, 10^6]^2, %g x %g query\n\n",
		len(objs), query, query)

	// Approach 1: aggregate R-tree + grid of RA queries (§3's naive idea).
	envRA := em.MustNewEnv(blockSize, memory)
	tree, err := ratree.Build(envRA, objs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate R-tree: height %d, built over %d objects\n",
		tree.Height(), tree.Len())
	for _, step := range []float64{8 * query, 4 * query, 2 * query, query} {
		envRA.Disk.ResetStats()
		_, score, err := tree.GridMaxRS(query, query, step)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  RA grid, step %5.0f: best score %4.0f, %9d transfers\n",
			step, score, envRA.Disk.Stats().Total())
	}

	// Approach 2: one ExactMaxRS run.
	envEx := em.MustNewEnv(blockSize, memory)
	f, err := workload.Write(envEx.Disk, objs)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := core.NewSolver(envEx, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	envEx.Disk.ResetStats()
	res, err := solver.SolveObjects(f, query, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExactMaxRS:           best score %4.0f, %9d transfers (exact)\n",
		res.Sum, envEx.Disk.Stats().Total())
	fmt.Println("\nEvery finite grid stays below the optimum: exactness would need a")
	fmt.Println("grid finer than the (data-dependent, unbounded) minimum feature of")
	fmt.Println("the arrangement — \"an infinite number of RA queries\" (§3). And with")
	fmt.Println("a buffer smaller than the index, fine grids thrash:")

	small := em.MustNewEnv(blockSize, 8*blockSize)
	tree2, err := ratree.Build(small, objs)
	if err != nil {
		log.Fatal(err)
	}
	small.Disk.ResetStats()
	_, _, err = tree2.GridMaxRS(query, query, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  same 1000-step grid at a 32 KB buffer: %d transfers\n",
		small.Disk.Stats().Total())
	fmt.Println("ExactMaxRS returns the guaranteed optimum in one bounded-cost run.")
}
