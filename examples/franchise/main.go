// Franchise: the paper's motivating scenario (§1) — place new pizza
// stores with a limited rectangular delivery range so each store reaches
// as many residents as possible.
//
// We synthesize a city of 200,000 resident locations (clustered like the
// NE dataset), then:
//
//  1. find the single best store location for a 1km × 1km delivery zone
//     with the external-memory ExactMaxRS under a 1 MB memory budget;
//
//  2. use the MaxkRS extension to plan 3 stores whose delivery zones
//     serve disjoint resident sets;
//
//  3. report the EM-model I/O cost of each query.
//
//     go run ./examples/franchise
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"maxrs"
	"maxrs/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "population scale factor (CI smoke runs use a tiny value)")
	flag.Parse()
	// One map unit = 1 meter; the city spans 100 km × 100 km.
	residents := workload.SyntheticNE(42)
	if *scale < 1 {
		residents = workload.Sample(42, residents, int(float64(len(residents))**scale))
	}
	objs := make([]maxrs.Object, len(residents))
	for i, r := range residents {
		objs[i] = maxrs.Object{X: r.X / 10, Y: r.Y / 10, Weight: r.W} // 100 km extent
	}
	fmt.Printf("city with %d residents\n", len(objs))

	engine, err := maxrs.NewEngine(&maxrs.Options{
		BlockSize: 4096,
		Memory:    1 << 20, // 1 MB — far below the ~5 MB dataset
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := engine.Load(context.Background(), objs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset occupies %d disk blocks\n\n", ds.Blocks())

	const zone = 1000.0 // 1 km delivery zone edge
	engine.ResetStats()
	best, err := engine.MaxRS(context.Background(), ds, zone, zone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best single store: (%.0f, %.0f) reaching %.0f residents\n",
		best.Location.X, best.Location.Y, best.Score)
	fmt.Printf("  query cost: %d block transfers\n\n", engine.Stats().Total())

	engine.ResetStats()
	stores, err := engine.TopK(context.Background(), ds, zone, zone, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-store expansion plan (disjoint service populations):")
	total := 0.0
	for i, s := range stores {
		fmt.Printf("  store %d: (%.0f, %.0f) reaching %.0f residents\n",
			i+1, s.Location.X, s.Location.Y, s.Score)
		total += s.Score
	}
	fmt.Printf("  total reach: %.0f residents, cost %d transfers\n",
		total, engine.Stats().Total())
}
