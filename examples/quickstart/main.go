// Quickstart: the smallest possible MaxRS program.
//
// A handful of points, a 4×4 query rectangle, one call — prints the best
// center location and the weight it covers.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"maxrs"
)

func main() {
	objs := []maxrs.Object{
		{X: 1, Y: 1, Weight: 1},
		{X: 2, Y: 2, Weight: 1},
		{X: 3, Y: 1, Weight: 1},
		{X: 2, Y: 3, Weight: 1},
		{X: 40, Y: 40, Weight: 1},
		{X: 41, Y: 40, Weight: 1},
	}

	// nil options = paper defaults: 4 KB blocks, 1 MB memory, ExactMaxRS.
	res, err := maxrs.MaxRS(context.Background(), objs, 4, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best 4x4 placement: center (%.2f, %.2f) covering weight %.0f\n",
		res.Location.X, res.Location.Y, res.Score)
	fmt.Printf("all optimal centers: x in [%g, %g), y in [%g, %g)\n",
		res.Region.MinX, res.Region.MaxX, res.Region.MinY, res.Region.MaxY)

	// The circular variant: ApproxMaxCRS with its 1/4 worst-case bound
	// (about 0.9 in practice — see Fig. 17 of the paper).
	crs, err := maxrs.MaxCRS(context.Background(), objs, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best circle (d=4): center (%.2f, %.2f) covering weight %.0f\n",
		crs.Location.X, crs.Location.Y, crs.Score)
}
