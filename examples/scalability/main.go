// Scalability: the paper's headline claim in miniature — ExactMaxRS vs
// the two plane-sweep baselines as the dataset grows past the memory
// budget, measured in EM-model block transfers (the paper's metric).
//
// Prints a small version of Fig. 12: I/O per algorithm per cardinality.
//
//	go run ./examples/scalability
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"maxrs"
	"maxrs/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "cardinality scale factor (CI smoke runs use a tiny value)")
	flag.Parse()
	const (
		blockSize = 1024
		memory    = 64 * 1024 // 64 KB budget: datasets below quickly outgrow it
	)
	algos := []maxrs.Algorithm{maxrs.NaiveSweep, maxrs.ASBTree, maxrs.ExactMaxRS}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "N\tdataset\t")
	for _, a := range algos {
		fmt.Fprintf(tw, "%v I/O\t", a)
	}
	fmt.Fprintln(tw, "best score")

	for _, base := range []int{5000, 10000, 20000, 40000} {
		n := int(float64(base) * *scale)
		if n < 200 {
			n = 200
		}
		pts := workload.Uniform(99, n, float64(4*n))
		objs := make([]maxrs.Object, len(pts))
		for i, p := range pts {
			objs[i] = maxrs.Object{X: p.X, Y: p.Y, Weight: 1}
		}
		queryEdge := float64(4*n) / 100 // covers ~1/10000 of the space

		fmt.Fprintf(tw, "%d\t%dKB\t", n, n*24/1024)
		var score float64
		for _, algo := range algos {
			engine, err := maxrs.NewEngine(&maxrs.Options{
				BlockSize: blockSize,
				Memory:    memory,
				Algorithm: algo,
			})
			if err != nil {
				log.Fatal(err)
			}
			ds, err := engine.Load(context.Background(), objs)
			if err != nil {
				log.Fatal(err)
			}
			engine.ResetStats()
			res, err := engine.MaxRS(context.Background(), ds, queryEdge, queryEdge)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%d\t", engine.Stats().Total())
			score = res.Score
		}
		fmt.Fprintf(tw, "%.0f\n", score)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAll three algorithms return identical optima; only the I/O differs.")
	fmt.Println("ExactMaxRS scales near-linearly (Theorem 2); the baselines do not.")
}
