// Tourist: the paper's second motivating scenario (§1) — find the most
// representative spot of a city for a visitor with a limited walking
// radius, i.e. the MaxCRS problem: the circle of diameter d covering the
// largest number of attractions.
//
// We synthesize attractions around a handful of neighborhoods, solve with
// the paper's ApproxMaxCRS (external-memory, 1/4-approximate), and compare
// against the exact in-memory oracle to show the practical quality.
//
//	go run ./examples/tourist
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"maxrs"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	// Five neighborhoods of varying attraction density in a 20 km city.
	type hood struct {
		x, y, sigma float64
		n           int
		name        string
	}
	hoods := []hood{
		{5000, 5000, 500, 120, "old town"},
		{12000, 6000, 900, 80, "museum mile"},
		{8000, 14000, 700, 60, "riverfront"},
		{16000, 15000, 1200, 40, "markets"},
		{3000, 17000, 800, 25, "hills"},
	}
	var objs []maxrs.Object
	for _, h := range hoods {
		for i := 0; i < h.n; i++ {
			objs = append(objs, maxrs.Object{
				X:      h.x + rng.NormFloat64()*h.sigma,
				Y:      h.y + rng.NormFloat64()*h.sigma,
				Weight: 1 + math.Floor(rng.Float64()*5), // attraction rating 1..5
			})
		}
	}
	fmt.Printf("%d attractions across %d neighborhoods\n\n", len(objs), len(hoods))

	for _, walk := range []float64{500, 1500, 3000} { // walking diameter in meters
		approx, err := maxrs.MaxCRS(context.Background(), objs, walk, nil)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := maxrs.MaxCRSExact(objs, walk)
		if err != nil {
			log.Fatal(err)
		}
		ratio := 1.0
		if exact.Score > 0 {
			ratio = approx.Score / exact.Score
		}
		fmt.Printf("walking diameter %4.0fm: stay near (%.0f, %.0f), rating sum %.0f\n",
			walk, approx.Location.X, approx.Location.Y, approx.Score)
		fmt.Printf("  exact optimum %.0f → approximation ratio %.3f (guarantee: ≥ 0.25)\n\n",
			exact.Score, ratio)
	}
}
