package maxrs

import (
	"context"
	"fmt"
	"runtime"

	"maxrs/internal/plan"
)

// This file is the public face of the engine's decision layer
// (internal/plan, DESIGN.md §12): load-time dataset statistics, the
// calibrated transfer-count cost model, and the planner behind
// AlgorithmAuto. Every query — explicit algorithm or Auto — flows
// through a materialized Plan; Result carries it back next to the
// effective-settings fields.

// DatasetStats are the statistics collected in the loader's single
// streaming pass (no extra scan, no extra block transfers) and stored on
// the Dataset. They are the planner's entire picture of the data.
type DatasetStats struct {
	// N is the object count; Bytes and Blocks the object file's size on
	// the engine's disk.
	N      int64
	Bytes  int64
	Blocks int64
	// MinX..MaxY is the dataset extent.
	MinX, MaxX float64
	MinY, MaxY float64
	// MinW/MaxW/MeanW summarize the weights. MinW < 0 is the condition
	// that disables exact sharding (DESIGN.md §9.3).
	MinW, MaxW, MeanW float64
	// Resident reports that the whole dataset fits in the engine's
	// memory budget M — the regime where single-scan strategies win.
	Resident bool
}

// Stats returns the dataset's effective statistics: the base file's
// load-time statistics merged with the pending delta (inserts folded in
// exactly; deletes decrement the count and weight sum but conservatively
// never shrink the extent or weight range — see DESIGN.md §14.2). For a
// dataset with no pending mutations they are exactly the load-time
// statistics.
func (d *Dataset) Stats() DatasetStats {
	d.mu.Lock()
	st := d.effStatsLocked(d.snapLocked())
	d.mu.Unlock()
	return DatasetStats{
		N: st.N, Bytes: st.Bytes, Blocks: st.Blocks,
		MinX: st.MinX, MaxX: st.MaxX,
		MinY: st.MinY, MaxY: st.MaxY,
		MinW: st.MinW, MaxW: st.MaxW, MeanW: st.MeanW(),
		Resident: st.Resident,
	}
}

// PredictedCost is the cost model's transfer-count prediction for a
// strategy. Exact marks closed-form schedules the calibration tests hold
// bit-for-bit; the rest are expected values whose measured error is
// bounded by the calibration matrix (DESIGN.md §12.4).
type PredictedCost struct {
	Reads, Writes int64
	Exact         bool
}

// Total returns Reads + Writes — the paper's I/O metric, and what the
// planner ranks candidates by.
func (c PredictedCost) Total() int64 { return c.Reads + c.Writes }

// Plan is the materialized execution decision of one query: the strategy
// that ran (or is about to run, in an Explanation) and its predicted
// cost. Auto distinguishes a planner choice from explicitly resolved
// settings carried through unchanged.
type Plan struct {
	Algorithm   Algorithm
	Shards      int // effective shard count (fallbacks applied), as requested of the shard planner
	Unfused     bool
	Parallelism int // resolved worker budget (≥ 1); never affects transfer counts
	Auto        bool
	Predicted   PredictedCost
	// Delta reports the base+delta composition of a query that ran on a
	// dataset with pending mutations (DESIGN.md §14); nil on a clean
	// dataset — the immutable fast path, whose execution is untouched.
	Delta *DeltaPlan
}

// DeltaPlan is the delta-maintenance composition of one query's answer.
type DeltaPlan struct {
	// Pending is the buffered delta size the query saw (inserts +
	// deleted base records); Inserts/Deletes break it into live buffered
	// inserts and pending deletions (of base records and of buffered
	// inserts).
	Pending int
	Inserts int
	Deletes int
	// Path is how the solve answered: "combined" (the cached base
	// solution survived the influence-bound gates and is the exact
	// answer) or "fused" (full re-solve of the materialized effective
	// set). Empty in an Explanation — the path is chosen adaptively at
	// solve time.
	Path string
	// BaseCached reports that the combined path's base incumbent came
	// from the dataset's per-generation solution cache rather than a
	// fresh base solve.
	BaseCached bool
}

// PlanCandidate is one row of the planner's candidate table: a strategy,
// its predicted cost, and whether the planner may pick it. Ineligible
// rows (baselines whose data-dependent cost the model is too coarse to
// rank) are kept for explain visibility.
type PlanCandidate struct {
	Algorithm Algorithm
	Shards    int
	Unfused   bool
	// Delta marks the informational combined base+delta row shown when
	// the dataset has pending mutations; it is never chosen by the
	// planner (the path is taken adaptively at solve time when its
	// soundness gates hold — DESIGN.md §14.3).
	Delta     bool
	Predicted PredictedCost
	Eligible  bool
	Chosen    bool
	Note      string
}

// Explanation is the result of Engine.Explain: the plan a MaxRS query
// with these options would run, without executing anything.
type Explanation struct {
	Plan Plan
	// FallbackReason is non-empty when the settings requested something
	// the query would silently not do (see Result.FallbackReason).
	FallbackReason string
	Stats          DatasetStats
	Candidates     []PlanCandidate
}

// Explain plans a MaxRS query without executing it: no disk transfers,
// no worker time — just the planner over the dataset's effective
// statistics. With AlgorithmAuto (via WithAlgorithm or the engine
// default) the returned plan is the planner's choice and the candidate
// table marks the chosen row; with an explicit algorithm the plan
// reflects the resolved settings and the table shows what the planner
// would have considered. Explain holds a dataset reference for its
// duration — it matches begin, so it never races a concurrent Release —
// and checks ctx before planning (there is no I/O to interrupt after
// that).
func (e *Engine) Explain(ctx context.Context, d *Dataset, w, h float64, opts ...QueryOption) (Explanation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkQuery(w, h); err != nil {
		return Explanation{}, err
	}
	set, err := e.resolveQuery(opts)
	if err != nil {
		return Explanation{}, err
	}
	if err := ctx.Err(); err != nil {
		return Explanation{}, wrapCancel(err)
	}
	base, snap, effSt, err := d.acquireQuery()
	if err != nil {
		return Explanation{}, err
	}
	defer func() { _ = base.release() }()
	pl, fallback, cands := e.planQuery(d, effSt, snap.pending(), kindMaxRS, w, h, &set, true)
	out := Explanation{
		Plan:           pl,
		FallbackReason: fallback,
		Stats: DatasetStats{
			N: effSt.N, Bytes: effSt.Bytes, Blocks: effSt.Blocks,
			MinX: effSt.MinX, MaxX: effSt.MaxX,
			MinY: effSt.MinY, MaxY: effSt.MaxY,
			MinW: effSt.MinW, MaxW: effSt.MaxW, MeanW: effSt.MeanW(),
			Resident: effSt.Resident,
		},
		Candidates: make([]PlanCandidate, len(cands)),
	}
	for i, c := range cands {
		out.Candidates[i] = PlanCandidate{
			Algorithm: Algorithm(c.Algorithm),
			Shards:    c.Shards,
			Unfused:   c.Unfused,
			Delta:     c.Delta,
			Predicted: PredictedCost{Reads: c.Cost.Reads, Writes: c.Cost.Writes, Exact: c.Cost.Exact},
			Eligible:  c.Eligible,
			Chosen:    c.Chosen,
			Note:      c.Note,
		}
	}
	return out, nil
}

// ExplainQuery is the pre-context form of Explain.
//
// Deprecated: use Explain(ctx, d, w, h, opts...). ExplainQuery remains
// for one release as a thin wrapper with context.Background().
func (e *Engine) ExplainQuery(d *Dataset, w, h float64, opts ...QueryOption) (Explanation, error) {
	return e.Explain(context.Background(), d, w, h, opts...)
}

// queryKind names the five query shapes the plan layer distinguishes:
// they differ in which strategy dimensions are free (MinRS and MaxCRS
// never shard, only MaxRS swaps algorithms) and in the kind-specific
// passes charged on top of the solve.
type queryKind int

const (
	kindMaxRS queryKind = iota
	kindTopK
	kindMinRS
	kindCountRS
	kindMaxCRS
)

// planStatsFor adapts the dataset statistics to the solve the kind
// actually runs: MinRS negates every weight, CountRS maps them all to 1
// — which is exactly why CountRS shards on datasets whose own weights
// would force MaxRS to fall back.
func planStatsFor(st plan.Stats, kind queryKind) plan.Stats {
	switch kind {
	case kindMinRS:
		st.MinW, st.MaxW = -st.MaxW, -st.MinW
		st.SumW = -st.SumW
	case kindCountRS:
		st.MinW, st.MaxW = 1, 1
		st.SumW = float64(st.N)
	}
	return st
}

// planSettingsFor builds the cost-model settings for one query kind:
// the engine's EM geometry, the query rectangle, the kind's strategy
// restrictions, and its extra passes (charged to every candidate alike,
// so they never change the ranking — only the absolute prediction).
func (e *Engine) planSettingsFor(st plan.Stats, kind queryKind, w, h float64) plan.Settings {
	set := plan.Settings{B: e.opts.BlockSize, M: e.opts.Memory, Fanout: e.opts.Fanout, W: w, H: h}
	switch kind {
	case kindMinRS:
		// The weight-negation map pass: read the object file, write the
		// mapped copy. Negated weights also rule sharding out.
		set.SolverOnly, set.NoShards = true, true
		set.ExtraReads, set.ExtraWrites = st.Blocks, st.Blocks
	case kindCountRS:
		set.SolverOnly = true
		set.ExtraReads, set.ExtraWrites = st.Blocks, st.Blocks
	case kindTopK:
		// The prediction covers one round's solve over the full dataset;
		// later rounds solve shrinking filtrates and cost less.
		set.SolverOnly = true
	case kindMaxCRS:
		// The inner MaxRS on the bounding squares is ExactMaxRS by
		// construction and stays unsharded; the candidate scan streams
		// the object file once more.
		set.SolverOnly, set.NoShards = true, true
		set.ExtraReads = st.Blocks
	}
	return set
}

// planQuery materializes the query's Plan. Under AlgorithmAuto it runs
// the planner and rewrites set to the chosen strategy (so the execution
// path downstream is byte-identical to an explicit query with those
// settings); otherwise set passes through untouched and only the
// prediction is computed. The candidate table is built when wantCands
// (Explain); begin skips it.
func (e *Engine) planQuery(d *Dataset, st plan.Stats, pending int64, kind queryKind, w, h float64, set *querySettings, wantCands bool) (Plan, string, []plan.Candidate) {
	pst := planStatsFor(st, kind)
	pset := e.planSettingsFor(st, kind, w, h)
	pset.DeltaPending = pending
	auto := set.algorithm == AlgorithmAuto
	var cands []plan.Candidate
	if auto {
		var strat plan.Strategy
		strat, cands = plan.Choose(pst, pset)
		set.algorithm = Algorithm(strat.Algorithm)
		set.shards, set.shardsSet = strat.Shards, true
		set.unfused = strat.Unfused
	} else if wantCands {
		cands = plan.Candidates(pst, pset)
	}
	eff := e.effectiveStrategy(d, kind, *set, st)
	cost := plan.Estimate(pst, pset, eff)
	if pending > 0 {
		// A pending delta adds data-dependent work (the base incumbent,
		// the influence sweep or the fused materialization) the model
		// does not schedule exactly.
		cost.Exact = false
	}
	if !auto {
		for i := range cands {
			if cands[i].Delta {
				continue // informational row, never the executed strategy
			}
			if cands[i].Strategy == eff {
				cands[i].Chosen = true
				break
			}
		}
	}
	par := set.parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	pl := Plan{
		Algorithm:   Algorithm(eff.Algorithm),
		Shards:      eff.Shards,
		Unfused:     eff.Unfused,
		Parallelism: par,
		Auto:        auto,
		Predicted:   PredictedCost{Reads: cost.Reads, Writes: cost.Writes, Exact: cost.Exact},
	}
	if !wantCands {
		cands = nil
	}
	return pl, e.fallbackReason(d, kind, *set, st), cands
}

// effectiveStrategy applies the kind's execution rules to the resolved
// settings, yielding the strategy that will actually run — the one the
// prediction must be for. It mirrors the dispatch in maxRS/TopK/
// solveMapped/MaxCRS exactly. st are the effective statistics the
// query's shard guard reads.
func (e *Engine) effectiveStrategy(d *Dataset, kind queryKind, set querySettings, st plan.Stats) plan.Strategy {
	alg := set.algorithm
	if kind != kindMaxRS {
		alg = ExactMaxRS // TopK, MinRS, CountRS and MaxCRS only ever solve with ExactMaxRS
	}
	k := 0
	switch kind {
	case kindMaxRS, kindTopK:
		if alg == ExactMaxRS && st.MinW >= 0 {
			k = e.requestedShardsFor(d, set)
		}
	case kindCountRS:
		k = e.requestedShardsFor(d, set)
	}
	return plan.Strategy{Algorithm: plan.Algorithm(alg), Shards: k, Unfused: set.unfused}
}

// requestedShardsFor is the shard-count resolution chain — query option,
// dataset override, engine default — without the exactness guards.
func (e *Engine) requestedShardsFor(d *Dataset, set querySettings) int {
	if set.shardsSet {
		return set.shards
	}
	if k := d.Shards(); k > 0 {
		return k
	}
	return e.opts.Shards
}

// fallbackReason explains — in Result.FallbackReason — why a query that
// requested sharding ran unsharded. Empty when nothing was overridden.
func (e *Engine) fallbackReason(d *Dataset, kind queryKind, set querySettings, st plan.Stats) string {
	if e.requestedShardsFor(d, set) <= 0 {
		return ""
	}
	switch kind {
	case kindMinRS:
		return "MinRS never shards: weight negation produces negative weights, for which the shard merge is not exact (DESIGN.md §9.3)"
	case kindMaxCRS:
		return "MaxCRS never shards: the rectangle transform runs unsharded by construction"
	case kindCountRS:
		return "" // COUNT weights are all 1; sharding proceeds
	}
	if set.algorithm != ExactMaxRS {
		return fmt.Sprintf("algorithm %v ignores sharding: only ExactMaxRS shards", set.algorithm)
	}
	if st.MinW < 0 {
		return "dataset holds negative weights: the shard merge is only exact for nonnegative weights (DESIGN.md §9.3); ran unsharded"
	}
	return ""
}
