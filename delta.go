package maxrs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/plan"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

// This file implements mutable datasets with delta maintenance
// (DESIGN.md §14): Dataset.Insert/Delete buffer mutations in a bounded
// in-memory delta, queries fold the delta in exactly — combining the
// cached base solution with an exact in-memory solve of the delta's
// influence regions when a soundness gate holds, re-solving the fused
// effective set otherwise — and the delta compacts into a fresh base
// generation once it passes Options.DeltaCompactAt. The contract is
// exactness: every query on a mutated dataset answers bit-identically to
// a reload-from-scratch of the effective object set.

// ErrUnknownID is wrapped by Dataset.Delete for IDs that name no live
// object — never assigned, already deleted, or deleted earlier in the
// same call. Delete is all-or-nothing: when any ID fails, no deletion
// applies.
var ErrUnknownID = errors.New("maxrs: unknown object id")

// deltaPath values reported in Plan.Delta.Path.
const (
	// deltaPathCombined answered from the cached base solution: every
	// influence rectangle was disjoint from the incumbent strip and the
	// exact delta-neighborhood sweep bounded the effective score inside
	// the influence regions strictly below the incumbent.
	deltaPathCombined = "combined"
	// deltaPathFused re-solved the materialized effective set.
	deltaPathFused = "fused"
)

// solCacheCap bounds the per-dataset base-solution cache (solKey →
// sweep.Result, ~100 bytes each).
const solCacheCap = 64

// maxDeltaSweepRects bounds the total clipped-rect count of the
// influence-bound sweep; denser update neighborhoods skip the bound and
// re-solve fused.
const maxDeltaSweepRects = 1 << 20

// deltaSnap is one query's immutable view of the pending delta, taken
// under Dataset.mu at begin time. The maps are copy-on-write (Delete
// replaces them wholesale) and the insert slice is append-only until
// compaction, so a snapshot stays valid however the dataset mutates or
// compacts while the query runs. baseIDs/baseN ride along because a
// concurrent compaction swaps the dataset's own copies.
type deltaSnap struct {
	inserts []pendingInsert       // buffered inserts, ascending ID
	delBase map[uint64]rec.Object // deleted base records by ID
	delIns  map[uint64]struct{}   // deleted pending-insert IDs
	baseIDs []uint64              // base index → ID (nil = identity)
	baseN   int
	seq     uint64
	gen     uint64
}

// pending counts the buffered delta entries — what DeltaCompactAt
// bounds.
func (s *deltaSnap) pending() int64 {
	if s == nil {
		return 0
	}
	return int64(len(s.inserts) + len(s.delBase))
}

// liveInserts counts buffered inserts not deleted again.
func (s *deltaSnap) liveInserts() int {
	return len(s.inserts) - len(s.delIns)
}

// changedObjects returns the delta's changed points — live inserts and
// deleted base records — whose w×h neighborhoods are the only places a
// query's answer can differ from the base's.
func (s *deltaSnap) changedObjects() []rec.Object {
	out := make([]rec.Object, 0, len(s.inserts)+len(s.delBase))
	for _, p := range s.inserts {
		if _, dead := s.delIns[p.id]; dead {
			continue
		}
		out = append(out, p.obj)
	}
	for _, o := range s.delBase {
		out = append(out, o)
	}
	return out
}

// snapLocked snapshots the pending delta (nil when clean). Caller holds
// d.mu.
func (d *Dataset) snapLocked() *deltaSnap {
	if len(d.inserts) == 0 && len(d.delBase) == 0 {
		return nil
	}
	return &deltaSnap{
		inserts: d.inserts[:len(d.inserts):len(d.inserts)],
		delBase: d.delBase,
		delIns:  d.delIns,
		baseIDs: d.baseIDs,
		baseN:   d.n,
		seq:     d.seq,
		gen:     d.gen,
	}
}

// effStatsLocked merges the base statistics with the pending delta into
// the effective statistics queries plan and guard against. Inserts fold
// in exactly; deletes decrement the count and weight sum but never
// shrink the extent or weight range (recomputing those would need a full
// scan) — conservative in the safe direction: a negative weight is never
// missed, so the shard-exactness guard (DESIGN.md §9.3) stays sound.
// Caller holds d.mu.
func (d *Dataset) effStatsLocked(snap *deltaSnap) plan.Stats {
	st := d.stats
	if snap == nil {
		return st
	}
	for _, p := range snap.inserts {
		if _, dead := snap.delIns[p.id]; dead {
			continue
		}
		st.N++
		st.MinX = math.Min(st.MinX, p.obj.X)
		st.MaxX = math.Max(st.MaxX, p.obj.X)
		st.MinY = math.Min(st.MinY, p.obj.Y)
		st.MaxY = math.Max(st.MaxY, p.obj.Y)
		st.MinW = math.Min(st.MinW, p.obj.W)
		st.MaxW = math.Max(st.MaxW, p.obj.W)
		st.SumW += p.obj.W
	}
	for _, o := range snap.delBase {
		st.N--
		st.SumW -= o.W
	}
	st.Bytes = st.N * int64(rec.ObjectCodec{}.Size())
	st.Blocks = ceilBlocks(st.Bytes, int64(d.eng.opts.BlockSize))
	st.Resident = st.Bytes <= int64(d.eng.opts.Memory)
	return st
}

func ceilBlocks(n, b int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + b - 1) / b
}

// Pending returns the number of buffered delta entries — what
// Options.DeltaCompactAt bounds.
func (d *Dataset) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.inserts) + len(d.delBase)
}

// Mutations returns the dataset's mutation sequence number: it advances
// by one per successful Insert/Delete call and never goes backwards
// (compaction changes the base generation, not the sequence). Cache
// layers key result freshness on it.
func (d *Dataset) Mutations() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Compactions returns how many times the delta has been compacted into a
// fresh base generation.
func (d *Dataset) Compactions() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ncomp
}

// baseIDAt maps a base record index to its object ID under the
// dataset's (or a snapshot's) index→ID table.
func baseIDAt(ids []uint64, i int) uint64 {
	if ids == nil {
		return uint64(i)
	}
	return ids[i]
}

// baseIndexOf finds the base record index of id, if id names a base
// record. ids is sorted ascending (compaction preserves ID order), so
// membership is a binary search.
func baseIndexOf(ids []uint64, n int, id uint64) (int, bool) {
	if ids == nil {
		if id < uint64(n) {
			return int(id), true
		}
		return 0, false
	}
	j := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if j < len(ids) && ids[j] == id {
		return j, true
	}
	return 0, false
}

// Insert buffers objs into the dataset's delta and returns their
// assigned object IDs (for Delete). The IDs of a fresh dataset's loaded
// records are their load positions 0..Len()-1; inserts continue the
// sequence. Queries begun after Insert returns fold the new objects in
// exactly — bit-identical to a reload of the mutated set.
//
// When the buffered delta would pass Options.DeltaCompactAt, Insert
// first compacts the existing delta into a fresh base generation and
// only then buffers objs, so cancelling ctx mid-compaction applies
// nothing: the mutation either happens entirely or not at all, and a
// cancelled call leaves Engine.BlocksInUse exactly where it was.
// Concurrent queries are never blocked — they keep the base generation
// and delta snapshot they started with.
func (d *Dataset) Insert(ctx context.Context, objs []Object) ([]uint64, error) {
	if len(objs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for _, o := range objs {
		if err := checkObject(o.X, o.Y, o.Weight); err != nil {
			return nil, fmt.Errorf("maxrs: object %+v: %w", o, err)
		}
	}
	d.mutMu.Lock()
	defer d.mutMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	d.mu.Lock()
	released := d.released
	d.mu.Unlock()
	if released {
		return nil, ErrDatasetReleased
	}
	if err := d.compactIfNeeded(ctx, len(objs)); err != nil {
		return nil, err
	}
	// The append itself is memory-only and atomic under mu: nothing
	// below can fail or block on I/O.
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.released {
		return nil, ErrDatasetReleased
	}
	ids := make([]uint64, len(objs))
	for i, o := range objs {
		id := d.nextID
		d.nextID++
		ids[i] = id
		d.insIdx[id] = len(d.inserts)
		d.inserts = append(d.inserts, pendingInsert{id: id, obj: rec.Object{X: o.X, Y: o.Y, W: o.Weight}})
	}
	d.seq++
	return ids, nil
}

// Delete removes the objects named by ids and returns them in request
// order. All IDs are validated first — an unknown or already-deleted ID
// (or one repeated within the call) fails with ErrUnknownID and nothing
// is deleted. Deleting a base record costs one cancellable scan of the
// base file (to recover its coordinates — the influence region that
// cache invalidation and the combined query path need); deleting a
// buffered insert is memory-only. Queries begun after Delete returns are
// bit-identical to a reload without the deleted objects.
func (d *Dataset) Delete(ctx context.Context, ids []uint64) (_ []Object, err error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	d.mutMu.Lock()
	defer d.mutMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	d.mu.Lock()
	released := d.released
	base := d.base
	baseIDs := d.baseIDs
	n := d.n
	if !released {
		base.acquire()
	}
	d.mu.Unlock()
	if released {
		return nil, ErrDatasetReleased
	}
	defer func() {
		if rerr := base.release(); rerr != nil {
			err = errors.Join(err, rerr)
		}
	}()

	// Validate every ID before touching anything. mutMu excludes other
	// mutators, so insIdx/delBase/delIns are stable here.
	removed := make([]Object, len(ids))
	seen := make(map[uint64]struct{}, len(ids))
	var (
		insDel   []uint64    // pending-insert IDs to mark deleted
		baseWant map[int]int // base record index → position in ids
	)
	for i, id := range ids {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("%w: id %d repeated in one call", ErrUnknownID, id)
		}
		seen[id] = struct{}{}
		if _, dead := d.delIns[id]; dead {
			return nil, fmt.Errorf("%w: id %d already deleted", ErrUnknownID, id)
		}
		if _, dead := d.delBase[id]; dead {
			return nil, fmt.Errorf("%w: id %d already deleted", ErrUnknownID, id)
		}
		if idx, ok := d.insIdx[id]; ok {
			o := d.inserts[idx].obj
			removed[i] = Object{X: o.X, Y: o.Y, Weight: o.W}
			insDel = append(insDel, id)
			continue
		}
		bi, ok := baseIndexOf(baseIDs, n, id)
		if !ok {
			return nil, fmt.Errorf("%w: id %d", ErrUnknownID, id)
		}
		if baseWant == nil {
			baseWant = make(map[int]int)
		}
		baseWant[bi] = i
	}

	// Recover the coordinates of deleted base records with one scan,
	// cancellable at block granularity and stopped as soon as the last
	// wanted record is seen.
	baseDel := make(map[uint64]rec.Object, len(baseWant))
	if len(baseWant) > 0 {
		rr, rerr := em.OpenRecordReader(d.eng.env.WithContext(ctx), base.f, rec.ObjectCodec{})
		if rerr != nil {
			return nil, rerr
		}
		idx, found := 0, 0
		for found < len(baseWant) {
			o, rerr := rr.Read()
			if rerr != nil {
				if errors.Is(rerr, io.EOF) {
					break
				}
				return nil, wrapCancel(rerr)
			}
			if pos, want := baseWant[idx]; want {
				removed[pos] = Object{X: o.X, Y: o.Y, Weight: o.W}
				baseDel[baseIDAt(baseIDs, idx)] = o
				found++
			}
			idx++
		}
		if found < len(baseWant) {
			// Unreachable: membership was validated against the same base.
			return nil, fmt.Errorf("maxrs: base scan found %d of %d records", found, len(baseWant))
		}
	}

	// Apply all-or-nothing: replace the copy-on-write maps under mu so
	// in-flight snapshots keep the state they began with.
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.released {
		return nil, ErrDatasetReleased
	}
	if len(baseDel) > 0 {
		nb := make(map[uint64]rec.Object, len(d.delBase)+len(baseDel))
		for k, v := range d.delBase {
			nb[k] = v
		}
		for k, v := range baseDel {
			nb[k] = v
		}
		d.delBase = nb
	}
	if len(insDel) > 0 {
		ni := make(map[uint64]struct{}, len(d.delIns)+len(insDel))
		for k := range d.delIns {
			ni[k] = struct{}{}
		}
		for _, k := range insDel {
			ni[k] = struct{}{}
		}
		d.delIns = ni
	}
	d.seq++
	return removed, nil
}

// Compact folds the pending delta into a fresh base generation now:
// base survivors and buffered inserts are streamed into a new file, the
// dataset atomically swaps to it, and the old generation's blocks free
// once the last query pinned to it finishes. A no-op when the delta is
// empty. Cancelling ctx aborts the rewrite at block granularity,
// releases the partial file, and leaves the dataset exactly as it was.
// Intended for background goroutines (maxrsd runs it off the mutation
// path with Options.DeltaCompactAt < 0) and tests; mutations compact
// automatically past Options.DeltaCompactAt.
func (d *Dataset) Compact(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	d.mutMu.Lock()
	defer d.mutMu.Unlock()
	d.mu.Lock()
	released := d.released
	pending := len(d.inserts) + len(d.delBase)
	d.mu.Unlock()
	if released {
		return ErrDatasetReleased
	}
	if pending == 0 {
		return nil
	}
	return d.compact(ctx)
}

// compactIfNeeded compacts the existing delta when buffering incoming
// more entries would pass the engine's threshold. Caller holds mutMu.
func (d *Dataset) compactIfNeeded(ctx context.Context, incoming int) error {
	limit := d.eng.deltaCompactAt()
	d.mu.Lock()
	pending := len(d.inserts) + len(d.delBase)
	d.mu.Unlock()
	if pending == 0 || pending+incoming <= limit {
		return nil
	}
	return d.compact(ctx)
}

// compact rewrites base + delta into a fresh generation. Caller holds
// mutMu (so the delta is frozen); queries keep running against the old
// generation until the swap, and across it on their pinned baseRef.
func (d *Dataset) compact(ctx context.Context) (err error) {
	d.mu.Lock()
	snap := d.snapLocked()
	base := d.base
	base.acquire()
	d.mu.Unlock()
	defer func() {
		if rerr := base.release(); rerr != nil {
			err = errors.Join(err, rerr)
		}
	}()
	if snap == nil {
		return nil
	}

	e := d.eng
	f := em.NewFile(e.env.Disk)
	defer func() {
		if err != nil {
			err = wrapCancel(errors.Join(err, f.Release()))
		}
	}()
	// Like Load, the context binds the writer and reader, never the new
	// base file itself.
	w, err := em.OpenRecordWriter(e.env.WithContext(ctx), f, rec.ObjectCodec{})
	if err != nil {
		return err
	}
	col := plan.NewCollector()
	// The new index→ID table. Stays nil (identity) while no deletion has
	// ever happened; otherwise survivors keep their IDs (ascending, in
	// base order) and appended inserts continue above them — IDs were
	// assigned after every existing base ID, so the table stays sorted.
	needIDs := snap.baseIDs != nil || len(snap.delBase) > 0 || len(snap.delIns) > 0
	var ids []uint64
	newN := 0
	rr, err := em.OpenRecordReader(e.env.WithContext(ctx), base.f, rec.ObjectCodec{})
	if err != nil {
		return err
	}
	for idx := 0; ; idx++ {
		o, rerr := rr.Read()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return rerr
		}
		id := baseIDAt(snap.baseIDs, idx)
		if _, dead := snap.delBase[id]; dead {
			continue
		}
		if err := w.Write(o); err != nil {
			return err
		}
		col.Add(o.X, o.Y, o.W)
		if needIDs {
			ids = append(ids, id)
		}
		newN++
	}
	for _, p := range snap.inserts {
		if _, dead := snap.delIns[p.id]; dead {
			continue
		}
		if err := w.Write(p.obj); err != nil {
			return err
		}
		col.Add(p.obj.X, p.obj.Y, p.obj.W)
		if needIDs {
			ids = append(ids, p.id)
		}
		newN++
	}
	if err := w.Close(); err != nil {
		return err
	}

	d.mu.Lock()
	if d.released {
		d.mu.Unlock()
		return ErrDatasetReleased // deferred cleanup releases f
	}
	old := d.base
	d.base = &baseRef{f: f}
	d.n = newN
	d.stats = col.Finalize(e.opts.BlockSize, e.opts.Memory)
	d.baseIDs = ids
	d.inserts = nil
	d.insIdx = make(map[uint64]int)
	d.delBase = make(map[uint64]rec.Object)
	d.delIns = make(map[uint64]struct{})
	d.gen++
	d.ncomp++
	d.sol = nil // the base changed; cached incumbents are stale
	d.mu.Unlock()
	return old.kill()
}

// scanEff streams the query's effective object set — base records minus
// pending deletes, then live buffered inserts — in exactly the order a
// reload of the mutated set would store them. Reads are charged to the
// query scope and cancellable at block granularity.
func (q *query) scanEff(emit func(rec.Object) error) error {
	snap := q.delta
	rr, err := em.OpenRecordReader(q.env(), q.base.f, rec.ObjectCodec{})
	if err != nil {
		return err
	}
	for idx := 0; ; idx++ {
		o, rerr := rr.Read()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return rerr
		}
		if _, dead := snap.delBase[baseIDAt(snap.baseIDs, idx)]; dead {
			continue
		}
		if err := emit(o); err != nil {
			return err
		}
	}
	for _, p := range snap.inserts {
		if _, dead := snap.delIns[p.id]; dead {
			continue
		}
		if err := emit(p.obj); err != nil {
			return err
		}
	}
	return nil
}

// materializeEff writes the query's effective object set (optionally
// weight-mapped by fn) to a fresh file on the query's scope — the input
// a reload-from-scratch would have loaded, bit for bit — and returns it
// with its exact statistics. The caller releases the file.
func (q *query) materializeEff(fn func(rec.Object) rec.Object) (_ *em.File, _ plan.Stats, err error) {
	q.deltaPath = deltaPathFused
	env := q.env()
	out := env.NewFile()
	defer func() {
		if err != nil {
			err = errors.Join(err, out.Release())
		}
	}()
	w, err := em.NewRecordWriter(out, rec.ObjectCodec{})
	if err != nil {
		return nil, plan.Stats{}, err
	}
	col := plan.NewCollector()
	err = q.scanEff(func(o rec.Object) error {
		if fn != nil {
			o = fn(o)
		}
		col.Add(o.X, o.Y, o.W)
		return w.Write(o)
	})
	if err != nil {
		return nil, plan.Stats{}, err
	}
	if err = w.Close(); err != nil {
		return nil, plan.Stats{}, err
	}
	return out, col.Finalize(q.e.opts.BlockSize, q.e.opts.Memory), nil
}

// effFile returns the file a solve should read: the base file itself for
// a clean dataset with no weight map (owned = false), a mapped copy for
// a clean dataset with one, or the materialized effective set when a
// delta is pending. The caller releases owned files.
func (q *query) effFile(fn func(rec.Object) rec.Object) (*em.File, bool, error) {
	if q.delta == nil {
		if fn == nil {
			return q.base.f, false, nil
		}
		f, err := mapObjects(q.env(), q.base.f, fn)
		return f, true, err
	}
	f, _, err := q.materializeEff(fn)
	return f, true, err
}

// solveDelta runs an ExactMaxRS solve over a dataset with a pending
// delta. Unsharded queries first try the combined path — answer from the
// cached base solution when the delta provably cannot move the optimum
// (tryCombined) — and every other case re-solves the materialized
// effective set, with the shard guard evaluated on its exact statistics
// so the execution (and the answer) matches a reload bit for bit.
func (q *query) solveDelta(w, h float64) (_ sweep.Result, _ []ShardStat, err error) {
	if q.requestedShards() == 0 {
		res, ok, err := q.tryCombined(w, h)
		if err != nil || ok {
			return res, nil, err
		}
	}
	f, st, err := q.materializeEff(nil)
	if err != nil {
		return sweep.Result{}, nil, err
	}
	defer func() {
		if rerr := f.Release(); rerr != nil {
			err = errors.Join(err, rerr)
		}
	}()
	k := 0
	if st.MinW >= 0 {
		k = q.requestedShards()
		if k > 0 && q.effSt.MinW < 0 {
			// The conservative merged statistics flagged a negative weight
			// the effective set no longer holds (it was deleted): the solve
			// shards exactly like a reload would, and the begin-time
			// fallback note no longer applies.
			q.fallback = ""
			q.plan.Shards = k
		}
	}
	return q.solveObjects(f, w, h, k)
}

// tryCombined attempts the combined base+delta answer (DESIGN.md §14.3):
// obtain the base generation's exact solution for (w,h) — from the
// dataset's solution cache, else one unsharded solve of the base file,
// cached for subsequent queries — and keep it as the final answer when
// two gates prove the delta cannot change it:
//
//  1. every changed point's influence rectangle (the w×h neighborhood
//     where the rectangle-coverage of that point changes) is closed-
//     disjoint in y from the incumbent optimal strip, so the reload's
//     sweep produces the identical best tuple and strip boundaries; and
//  2. an exact mini-sweep of the effective objects clipped to each
//     influence rectangle bounds the best effective score inside every
//     influence region strictly below the incumbent score.
//
// Together they make the cached answer equal to a reload's: the optimum
// is outside every influence region (where nothing changed) and nothing
// inside an influence region can reach it. The equality is exact in real
// arithmetic, and bit-exact whenever the weight sums are (e.g. integer
// or fixed-point weights, which the equivalence tests use); arbitrary
// float64 weights can differ from a reload in the last ULP because the
// delta objects add elementary x-intervals to the reload's segment-tree
// grid and reassociate its additions. ok = false falls back to the fused
// re-solve.
func (q *query) tryCombined(w, h float64) (_ sweep.Result, ok bool, err error) {
	base, cached, err := q.baseSolution(w, h)
	if err != nil {
		return sweep.Result{}, false, err
	}
	q.deltaBaseCached = cached
	changed := q.delta.changedObjects()
	if len(changed) == 0 {
		// Every buffered insert was deleted again and no base record is
		// deleted: the effective set IS the base set.
		q.deltaPath = deltaPathCombined
		return base, true, nil
	}
	for _, o := range changed {
		r := rec.FromObject(o, w, h)
		if r.Y2 >= base.Region.Y.Lo && r.Y1 <= base.Region.Y.Hi {
			return sweep.Result{}, false, nil
		}
	}
	bound, sound, err := q.deltaBound(changed, w, h)
	if err != nil || !sound || bound >= base.Sum {
		return sweep.Result{}, false, err
	}
	q.deltaPath = deltaPathCombined
	return base, true, nil
}

// baseSolution returns the base generation's exact unsharded solution
// for (w,h), consulting and feeding the dataset's per-generation cache.
// The solve (on a miss) is charged to the query's scope like any other
// delta work. cached reports a cache hit.
func (q *query) baseSolution(w, h float64) (_ sweep.Result, cached bool, err error) {
	d := q.d
	key := solKey{w: w, h: h}
	d.mu.Lock()
	res, ok := d.sol[key]
	valid := ok && d.gen == q.delta.gen
	d.mu.Unlock()
	if valid {
		return res, true, nil
	}
	res, err = q.solver.SolveObjectsScoped(q.ctx, q.base.f, w, h, q.sc)
	if err != nil {
		return sweep.Result{}, false, err
	}
	d.mu.Lock()
	if !d.released && d.gen == q.delta.gen {
		if d.sol == nil {
			d.sol = make(map[solKey]sweep.Result)
		}
		if len(d.sol) >= solCacheCap {
			for k := range d.sol {
				delete(d.sol, k)
				break
			}
		}
		d.sol[key] = res
	}
	d.mu.Unlock()
	return res, false, nil
}

// errDeltaTooDense aborts the influence-bound collection when the
// neighborhood rect count passes maxDeltaSweepRects.
var errDeltaTooDense = errors.New("maxrs: delta neighborhood too dense")

// deltaBound computes, exactly, the best effective score attainable
// inside any changed point's influence rectangle: one scan of the
// effective set collects, per changed point p, every effective object
// whose coverage rectangle can intersect I_p (center within (w,h) in
// L∞ — found via a uniform grid of w×h cells over the changed points),
// then a small in-memory sweep of those rects clipped to I_p.Y over the
// slab I_p.X yields the exact maximum per region. sound = false means
// the bound was skipped (overflowing cell coordinates or too dense a
// neighborhood) and the caller must re-solve fused. The floor is 0:
// covering nothing is always attainable.
func (q *query) deltaBound(changed []rec.Object, w, h float64) (bound float64, sound bool, err error) {
	type gridKey struct{ cx, cy int64 }
	grid := make(map[gridKey][]int, len(changed))
	for i, p := range changed {
		cx, okx := cellOf(p.X, w)
		cy, oky := cellOf(p.Y, h)
		if !okx || !oky {
			return 0, false, nil
		}
		k := gridKey{cx, cy}
		grid[k] = append(grid[k], i)
	}
	rects := make([][]rec.WRect, len(changed))
	total := 0
	err = q.scanEff(func(o rec.Object) error {
		cx, okx := cellOf(o.X, w)
		cy, oky := cellOf(o.Y, h)
		if !okx || !oky {
			// Too far from every changed point to matter (their cell
			// coordinates fit; this one overflows).
			return nil
		}
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, i := range grid[gridKey{cx + dx, cy + dy}] {
					p := changed[i]
					if math.Abs(o.X-p.X) <= w && math.Abs(o.Y-p.Y) <= h {
						rects[i] = append(rects[i], rec.FromObject(o, w, h))
						total++
					}
				}
			}
		}
		if total > maxDeltaSweepRects {
			return errDeltaTooDense
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, errDeltaTooDense) {
			return 0, false, nil
		}
		return 0, false, err
	}
	for i, p := range changed {
		ip := rec.FromObject(p, w, h)
		var clipped []rec.WRect
		for _, r := range rects[i] {
			y1 := math.Max(r.Y1, ip.Y1)
			y2 := math.Min(r.Y2, ip.Y2)
			if y1 > y2 {
				continue
			}
			r.Y1, r.Y2 = y1, y2
			clipped = append(clipped, r)
		}
		if len(clipped) == 0 {
			continue
		}
		tuples := sweep.Slab(clipped, geom.Interval{Lo: ip.X1, Hi: ip.X2})
		if s := sweep.BestRegion(tuples).Sum; s > bound {
			bound = s
		}
	}
	return bound, true, nil
}

// cellOf maps a coordinate to its grid cell at the given cell size,
// failing when the quotient leaves int64 range.
func cellOf(v, size float64) (int64, bool) {
	r := math.Floor(v / size)
	if r > 9.0e18 || r < -9.0e18 || math.IsNaN(r) {
		return 0, false
	}
	return int64(r), true
}
