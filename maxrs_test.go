package maxrs

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func cluster(cx, cy float64, n int, w float64) []Object {
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{X: cx + float64(i%3), Y: cy + float64(i/3), Weight: w}
	}
	return objs
}

func TestMaxRSQuickstart(t *testing.T) {
	objs := append(cluster(10, 10, 6, 1), cluster(100, 100, 3, 1)...)
	res, err := MaxRS(context.Background(), objs, 5, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 6 {
		t.Fatalf("score = %g, want 6", res.Score)
	}
	if !res.Region.Contains(res.Location) {
		t.Fatalf("location %v outside region %+v", res.Location, res.Region)
	}
}

func TestMaxRSValidation(t *testing.T) {
	objs := []Object{{X: 1, Y: 1, Weight: 1}}
	if _, err := MaxRS(context.Background(), objs, 0, 5, nil); err == nil {
		t.Fatal("zero width must fail")
	}
	if _, err := MaxRS(context.Background(), objs, 5, math.Inf(1), nil); err == nil {
		t.Fatal("infinite height must fail")
	}
	if _, err := MaxRS(context.Background(), []Object{{X: math.NaN(), Y: 0, Weight: 1}}, 5, 5, nil); err == nil {
		t.Fatal("NaN coordinates must fail")
	}
	if _, err := NewEngine(&Options{BlockSize: 100, Memory: 100}); err == nil {
		t.Fatal("M < 2B must fail")
	}
}

func TestEngineStatsAndReuse(t *testing.T) {
	e, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	objs := make([]Object, 2000)
	for i := range objs {
		objs[i] = Object{X: math.Floor(rng.Float64() * 8000), Y: math.Floor(rng.Float64() * 8000), Weight: 1}
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2000 {
		t.Fatalf("Len = %d", d.Len())
	}
	e.ResetStats()
	if got := e.Stats().Total(); got != 0 {
		t.Fatalf("stats after reset = %d", got)
	}
	r1, err := e.MaxRS(context.Background(), d, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	io1 := e.Stats().Total()
	if io1 == 0 {
		t.Fatal("ExactMaxRS on an out-of-core dataset reported zero I/O")
	}
	// The dataset is reusable: a second identical query gives the same answer.
	r2, err := e.MaxRS(context.Background(), d, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Score != r2.Score {
		t.Fatalf("repeat query changed score: %g vs %g", r1.Score, r2.Score)
	}
}

func TestAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := make([]Object, 400)
	for i := range objs {
		objs[i] = Object{
			X:      math.Floor(rng.Float64() * 300),
			Y:      math.Floor(rng.Float64() * 300),
			Weight: float64(rng.Intn(4) + 1),
		}
	}
	var scores []float64
	for _, alg := range []Algorithm{ExactMaxRS, NaiveSweep, ASBTree, InMemory} {
		e, err := NewEngine(&Options{BlockSize: 256, Memory: 4096, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.Load(context.Background(), objs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.MaxRS(context.Background(), d, 20, 20)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		scores = append(scores, res.Score)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] != scores[0] {
			t.Fatalf("algorithm disagreement: %v", scores)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{
		ExactMaxRS:    "ExactMaxRS",
		NaiveSweep:    "NaiveSweep",
		ASBTree:       "aSB-Tree",
		InMemory:      "InMemory",
		Algorithm(99): "Algorithm(99)",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestMaxCRS(t *testing.T) {
	objs := append(cluster(50, 50, 5, 1), Object{X: 500, Y: 500, Weight: 1})
	res, err := MaxCRS(context.Background(), objs, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LowerBoundRatio != 0.25 {
		t.Fatalf("bound = %g", res.LowerBoundRatio)
	}
	exact, err := MaxCRSExact(objs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if exact.LowerBoundRatio != 1 {
		t.Fatalf("exact bound = %g", exact.LowerBoundRatio)
	}
	if res.Score > exact.Score {
		t.Fatalf("approx %g exceeds exact %g", res.Score, exact.Score)
	}
	if 4*res.Score < exact.Score {
		t.Fatalf("approx %g violates 1/4 bound of %g", res.Score, exact.Score)
	}
	if _, err := MaxCRS(context.Background(), objs, -1, nil); err == nil {
		t.Fatal("negative diameter must fail")
	}
	if _, err := MaxCRSExact(objs, 0); err == nil {
		t.Fatal("zero diameter must fail")
	}
	if _, err := MaxCRSExact([]Object{{Weight: -1}}, 5); err == nil {
		t.Fatal("negative weights must fail in exact solver")
	}
}

func TestTopK(t *testing.T) {
	objs := append(cluster(10, 10, 6, 1), cluster(200, 200, 4, 1)...)
	objs = append(objs, cluster(400, 10, 2, 1)...)
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.TopK(context.Background(), d, 6, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	wantScores := []float64{6, 4, 2}
	for i, r := range results {
		if r.Score != wantScores[i] {
			t.Fatalf("result %d score = %g, want %g", i, r.Score, wantScores[i])
		}
	}
	// k larger than available clusters: stops early.
	results, err = e.TopK(context.Background(), d, 6, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 (early stop)", len(results))
	}
	if _, err := e.TopK(context.Background(), d, 6, 6, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestMinRS(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dense field with one sparse corner: minimum is 0 (empty placement).
	var objs []Object
	for i := 0; i < 20; i++ {
		objs = append(objs, Object{X: float64(i * 3), Y: 0, Weight: 2})
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.MinRS(context.Background(), d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 {
		t.Fatalf("MinRS score = %g, want 0 (an empty spot exists)", res.Score)
	}
}

func TestCountRS(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two heavy objects vs three light ones: SUM prefers the heavy pair,
	// COUNT the triple.
	objs := []Object{
		{X: 0, Y: 0, Weight: 100},
		{X: 1, Y: 0, Weight: 100},
		{X: 50, Y: 50, Weight: 1},
		{X: 51, Y: 50, Weight: 1},
		{X: 50, Y: 51, Weight: 1},
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.MaxRS(context.Background(), d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Score != 200 {
		t.Fatalf("SUM score = %g, want 200", sum.Score)
	}
	count, err := e.CountRS(context.Background(), d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if count.Score != 3 {
		t.Fatalf("COUNT score = %g, want 3", count.Score)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if !r.Contains(Point{X: 0, Y: 0}) {
		t.Fatal("min corner must be contained")
	}
	if r.Contains(Point{X: 10, Y: 5}) {
		t.Fatal("max edge must be excluded")
	}
}

func TestOnDiskEngine(t *testing.T) {
	e, err := NewEngine(&Options{
		BlockSize: 512,
		Memory:    8192,
		OnDisk:    true,
		OnDiskDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(6))
	objs := make([]Object, 1500)
	for i := range objs {
		objs[i] = Object{X: math.Floor(rng.Float64() * 6000), Y: math.Floor(rng.Float64() * 6000), Weight: 1}
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MaxRS(context.Background(), d, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the default in-memory-backed engine.
	e2, err := NewEngine(&Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e2.Load(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e2.MaxRS(context.Background(), d2, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("on-disk engine score %g, in-memory %g", got.Score, want.Score)
	}
}

func TestOnDiskEngineValidation(t *testing.T) {
	// Invalid memory with OnDisk must clean up the backing file.
	if _, err := NewEngine(&Options{BlockSize: 4096, Memory: 4096, OnDisk: true}); err == nil {
		t.Fatal("M < 2B must fail for on-disk engines too")
	}
}
