// Package maxrs solves the Maximizing Range Sum (MaxRS) problem and its
// circular variant (MaxCRS) at scale, reproducing the algorithms of
//
//	D.-W. Choi, C.-W. Chung, Y. Tao:
//	"A Scalable Algorithm for Maximizing Range Sum in Spatial Databases",
//	PVLDB 5(11), 2012.
//
// Given a set of weighted points and a rectangle of a fixed size d1×d2,
// MaxRS asks for the center location maximizing the total weight of the
// points the rectangle covers. MaxCRS asks the same for a circle of a
// fixed diameter. Typical uses: placing a store with a fixed delivery
// range over customer locations, or finding the spot of a city with the
// most attractions in walking distance.
//
// # Quick start
//
//	objs := []maxrs.Object{{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 1}}
//	res, err := maxrs.MaxRS(context.Background(), objs, 4, 4, nil)
//	// res.Location is an optimal center; res.Score the covered weight.
//
// Every query takes a context.Context first: cancel it (or let its
// deadline pass) and the query stops within one block-transfer's work,
// releases everything it allocated, and returns an error matching both
// ErrQueryCancelled and the context error. Variadic QueryOptions
// (WithAlgorithm, WithShards, WithUnfused, WithParallelism) override the
// engine defaults per call.
//
// # Algorithms
//
// The default solver is ExactMaxRS, the paper's I/O-optimal
// external-memory distribution sweep — it runs in O((N/B) log_{M/B}(N/B))
// block transfers under the configured EM model and handles datasets far
// larger than the memory budget. The two baselines of the paper's
// evaluation (NaiveSweep, ASBTree) and a plain in-memory solver are also
// available for comparison via Options.Algorithm.
//
// All computation runs against a simulated block device that counts
// transfers; Engine.Stats exposes the I/O cost exactly as the paper
// measures it.
package maxrs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"maxrs/internal/baseline"
	"maxrs/internal/core"
	"maxrs/internal/dist"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/plan"
	"maxrs/internal/rec"
	"maxrs/internal/shard"
	"maxrs/internal/sweep"
)

// Object is a weighted point of the input set O.
type Object struct {
	X, Y   float64
	Weight float64
}

// Point is a location in the data space.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned region of optimal locations, half-open on its
// max edges. Infinite bounds mean the optimum extends indefinitely in
// that direction (possible only for degenerate inputs).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies in the region.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// Result is a solved MaxRS/MaxCRS instance.
type Result struct {
	// Location is an optimal center position.
	Location Point
	// Score is the total covered weight at Location.
	Score float64
	// Region is the full set of optimal center positions (for MaxRS).
	// Every point of Region attains Score. For sharded queries
	// (Options.Shards) it is the winning shard's optimal region: every
	// point of it still attains Score on the full dataset, but equally
	// good centers in other shards are not enumerated.
	Region Rect
	// Stats is the I/O cost of this query alone (see QueryStats).
	Stats QueryStats
	// Algorithm is the solver that actually ran. For MaxRS it is the
	// resolved Options.Algorithm / WithAlgorithm; TopK, MinRS and CountRS
	// always report ExactMaxRS (the only solver they use).
	Algorithm Algorithm
	// Shards is the effective shard count the query ran with: 0 for an
	// unsharded solve, otherwise the number of shards actually planned
	// (the planner may deduplicate below the requested count). It makes
	// the silent fallbacks observable: a query requested sharded that
	// reports Shards == 0 hit the negative-weight guard, a non-ExactMaxRS
	// algorithm, or MinRS — no more inferring from a nil ShardStats.
	Shards int
	// ShardStats breaks Stats down per shard for sharded queries
	// (Options.Shards / Dataset.SetShards): entry i is shard i's routed
	// object count and the transfers of its private partition + solve.
	// Stats additionally includes the planner's and router's scans of
	// the dataset, so Stats ≥ the sum of ShardStats. Nil for unsharded
	// queries.
	ShardStats []ShardStat
	// Plan is the materialized execution decision this query ran under —
	// the planner's choice for AlgorithmAuto queries (Plan.Auto), the
	// resolved explicit settings otherwise — with its predicted cost.
	Plan Plan
	// PredictedCost is Plan.Predicted, surfaced for direct comparison
	// against Stats (the measured counts). See DESIGN.md §12.
	PredictedCost PredictedCost
	// FallbackReason is non-empty when the query silently did less than
	// the settings requested — e.g. a sharded request that ran unsharded
	// because the dataset holds negative weights (DESIGN.md §9.3), a
	// non-ExactMaxRS algorithm ignoring WithShards, or a distributed
	// request degraded to in-process execution because no workers were
	// ready. Empty otherwise.
	FallbackReason string
	// Distributed reports whether the query's shards were fanned out to
	// workers (Options.Dist) rather than solved in process. ShardStats
	// then carries the per-worker attribution.
	Distributed bool
}

// ShardStat is one shard's contribution to a sharded query (DESIGN.md §9).
// For distributed queries (Options.Dist) it additionally attributes the
// shard to the workers involved: which worker answered (or failed),
// how many network attempts it took, and which recovery path — hedge or
// local halo-replica fallback — produced the answer.
type ShardStat struct {
	// Objects is the number of objects routed to the shard, halo
	// duplicates included.
	Objects int64
	// Stats is the I/O on the shard's private disk. In process that is
	// partition writes plus the shard's independent ExactMaxRS solve;
	// distributed it is the partition writes plus the reads that shipped
	// (and, on fallback, re-solved) the shard — the remote solve's I/O
	// is the worker's and reported separately in RemoteStats.
	Stats QueryStats
	// Worker names the worker that answered the shard (the last one
	// tried, on failure). Empty for in-process shards.
	Worker string
	// Attempts counts the network calls made for the shard, hedges
	// included. 0 for in-process shards.
	Attempts int
	// Hedged reports whether a straggler duplicate was launched.
	Hedged bool
	// FellBack reports whether the shard was solved locally from its
	// halo-replicated partition file after every network path failed.
	FellBack bool
	// RemoteStats is the worker-reported I/O of the remote solve — the
	// transfers charged on the worker's disk, not this engine's.
	RemoteStats QueryStats
	// Err is the shard's terminal failure, nil on every recovered path.
	// Set only when the query itself returns ErrShardUnavailable.
	Err error
}

// QueryStats reports the block transfers attributable to one query: reads
// of the dataset plus all traffic of the query's intermediate files. It is
// scoped per call, so concurrent queries on one Engine each report their
// own meaningful cost, while Engine.Stats keeps the disk-global total. For
// a fixed dataset and query the counts are deterministic — independent of
// Options.Parallelism and of other queries in flight. Sharded queries
// (Options.Shards) include their per-shard disk traffic; the counts then
// additionally depend on the shard count, but on nothing else.
type QueryStats struct {
	Reads, Writes uint64
	// PredictedReads/PredictedWrites are the plan's cost-model prediction
	// for this query (DESIGN.md §12), riding alongside the measured
	// counts so prediction-vs-actual deltas are one subtraction away.
	// Zero in per-shard breakdown entries (the model predicts whole
	// queries, not slices).
	PredictedReads, PredictedWrites uint64
}

// Total returns Reads + Writes — the paper's I/O cost metric.
func (s QueryStats) Total() uint64 { return s.Reads + s.Writes }

func queryStatsOf(sc *em.ScopeStats) QueryStats {
	s := sc.Stats()
	return QueryStats{Reads: s.Reads, Writes: s.Writes}
}

// Algorithm selects the solver implementation.
type Algorithm int

// Available algorithms.
const (
	// ExactMaxRS is the paper's I/O-optimal external algorithm (§5).
	ExactMaxRS Algorithm = iota
	// NaiveSweep is the externalized naive plane sweep baseline (§7.1).
	NaiveSweep
	// ASBTree is the aggregate SB-tree plane sweep baseline (§7.1).
	ASBTree
	// InMemory is the RAM-model plane sweep of Imai–Asano (§4); it
	// ignores the EM budget and is intended for small inputs and tests.
	InMemory
	// AlgorithmAuto asks the engine's planner to choose: algorithm,
	// shard count and fusion are picked by the calibrated cost model over
	// the dataset's load-time statistics (DESIGN.md §12), and the chosen
	// plan rides back in Result.Plan. Opt-in — the zero value stays
	// ExactMaxRS, so existing explicit queries keep bit-identical
	// transfer schedules.
	AlgorithmAuto
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case ExactMaxRS:
		return "ExactMaxRS"
	case NaiveSweep:
		return "NaiveSweep"
	case ASBTree:
		return "aSB-Tree"
	case InMemory:
		return "InMemory"
	case AlgorithmAuto:
		return "Auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures an Engine. The zero value (and nil) selects the
// paper's defaults: 4 KB blocks, 1 MB memory, ExactMaxRS.
type Options struct {
	// BlockSize is the EM-model block size B in bytes (default 4096,
	// Table 3).
	BlockSize int
	// Memory is the EM-model memory budget M in bytes (default 1 MiB,
	// the paper's synthetic-data default buffer).
	Memory int
	// Algorithm selects the solver (default ExactMaxRS).
	Algorithm Algorithm
	// Fanout overrides the recursion fan-in m of ExactMaxRS (0 = the
	// paper's Θ(M/B)); exposed for ablation studies.
	Fanout int
	// Parallelism bounds the worker goroutines ExactMaxRS uses for
	// independent child slabs, sort-run formation, and merge groups
	// (0 = GOMAXPROCS, 1 = sequential). The pool is shared by all
	// concurrent queries on the engine, bounding its total extra
	// goroutines; each query always progresses on its caller's goroutine
	// regardless. Results and the counted block transfers are identical
	// for every value; only wall-clock time changes. See DESIGN.md §6–7.
	Parallelism int
	// OnDisk stores blocks in a temporary OS file under OnDiskDir
	// (default: the system temp directory) instead of process memory, so
	// datasets larger than RAM work too. Call Engine.Close to remove the
	// backing file. Transfer accounting is identical either way.
	OnDisk    bool
	OnDiskDir string
	// Backend selects the physical storage under an OnDisk engine
	// (DESIGN.md §15). BackendAuto (the default) and BackendFile use the
	// portable positioned-I/O temp file; BackendMmap memory-maps the
	// backing file — page-cache reads, batched write-behind submission —
	// and falls back to the file backend when mapping is unavailable.
	// Counted transfers are bit-identical across backends; only
	// wall-clock and physical bytes change. Non-Auto values require
	// OnDisk. Shard disks mirror the selection.
	Backend BackendKind
	// Codec selects the physical block codec family (DESIGN.md §15).
	// CodecNone (the default) stores blocks in the fixed layout;
	// CodecDelta column-splits and delta/varint-compresses each block,
	// choosing the smallest encoding per block with a raw fallback, so a
	// counted transfer never moves more than the fixed layout plus a
	// constant header — and on sorted record streams moves far less
	// (Engine.PhysIO). Counted transfers are bit-identical across
	// codecs. Works with OnDisk and in-memory engines alike; shard disks
	// mirror the selection.
	Codec CodecKind
	// Pipeline controls prefetch / write-behind on the engine's disk
	// streams (DESIGN.md §8): readers double-buffer read-ahead and writers
	// write behind, overlapping storage latency with CPU. PipelineAuto
	// (the default) enables it for OnDisk engines — where a block transfer
	// is a real syscall worth hiding — and disables it in memory, where
	// there is nothing to overlap. For every query that completes, results
	// and block-transfer counts (global and per-query Stats) are identical
	// in every mode; only wall-clock changes. A query abandoned by an
	// error mid-scan may charge one extra read per dropped stream for a
	// block the synchronous mode would not have fetched yet.
	Pipeline PipelineMode
	// Unfused disables ExactMaxRS's root pass fusion (DESIGN.md §8),
	// restoring the materialize-sort-reread pipeline. Kept for ablation
	// and regression comparison: results are bit-identical, the fused
	// default just transfers fewer blocks.
	Unfused bool
	// Shards splits object queries (MaxRS, CountRS, TopK — not MaxCRS,
	// whose rectangle transform stays unsharded) into K vertical shards
	// with halo duplication, solved as independent ExactMaxRS instances
	// on their own private disks and merged exactly (DESIGN.md §9).
	// Each shard disk mirrors the engine's backend (in-memory or a temp
	// file under OnDiskDir) and gets the full Memory budget, so sharding
	// scales aggregate memory and disk K-fold — the lever for datasets
	// that outgrow a single disk's block budget. 0 (the default) leaves
	// queries unsharded; 1 forces the degenerate single-shard path (the
	// shard machinery with one shard — useful for testing); K ≥ 2 shards
	// K ways. Scores are exact for every value, and per-query transfer
	// counts are deterministic for a fixed dataset, query, and K.
	// Dataset.SetShards overrides the count per dataset.
	//
	// The shard merge is exact only for nonnegative weights (DESIGN.md
	// §9.3), so two cases always run unsharded regardless of this
	// setting: queries on datasets holding a negative weight, and MinRS
	// (whose solve negates every weight). Non-ExactMaxRS Algorithms also
	// ignore it for MaxRS (CountRS and TopK always solve with
	// ExactMaxRS).
	Shards int
	// Retry is the policy for transient storage faults and checksum
	// mismatches on block transfers (DESIGN.md §11). The zero value never
	// retries. Retries respect the query context and count in
	// Engine.FaultStats, never in the I/O metric: a fault-free run's
	// counted transfer schedule is bit-identical with any policy. Applies
	// to the primary disk and to every shard disk.
	Retry RetryPolicy
	// Checksums enables per-block CRC32C verification: every block write
	// records a checksum in disk metadata, every read verifies it, and a
	// mismatch (torn write, bit rot) is retried under Retry before
	// surfacing as ErrBlockCorrupt. Checksums change no transfer counts
	// (DESIGN.md §11). Applies to the primary disk and every shard disk.
	Checksums bool
	// Dist enables distributed execution (DESIGN.md §13): sharded
	// queries plan and route locally, then fan each halo-extended shard
	// out to a worker maxrsd over HTTP and merge replies with the same
	// exact K-way merge the in-process path uses. nil (the default)
	// keeps every shard in process. Distribution changes where shards
	// solve, never what they answer: a no-fault distributed query is
	// bit-identical to the in-process sharded query, and the unsharded
	// path (Shards 0) ignores Dist entirely.
	Dist *DistOptions
	// DeltaCompactAt bounds a mutable dataset's in-memory delta buffer
	// (DESIGN.md §14): once the pending entries — buffered inserts plus
	// deleted base records — reach the threshold, the next mutation first
	// compacts the delta into a fresh base file (rewriting survivors and
	// appending the buffered inserts) before buffering anything new, so
	// a cancelled mutation never leaves a half-applied delta. 0 selects
	// the default (1024 entries); a negative value disables automatic
	// compaction entirely — Dataset.Compact still works, which is how
	// maxrsd runs compaction on a background goroutine instead of a
	// mutation's critical path.
	DeltaCompactAt int
}

// defaultDeltaCompactAt is the Options.DeltaCompactAt default: small
// enough that the delta sweep of the combined query path stays trivially
// in-memory, large enough that compaction is rare under mixed workloads.
const defaultDeltaCompactAt = 1024

// deltaCompactAt resolves Options.DeltaCompactAt (0 = default, < 0 =
// never).
func (e *Engine) deltaCompactAt() int {
	switch {
	case e.opts.DeltaCompactAt == 0:
		return defaultDeltaCompactAt
	case e.opts.DeltaCompactAt < 0:
		return math.MaxInt
	default:
		return e.opts.DeltaCompactAt
	}
}

// PipelineMode selects the stream prefetch / write-behind behavior of an
// Engine's disk (see Options.Pipeline).
type PipelineMode int

// Pipeline modes.
const (
	// PipelineAuto pipelines OnDisk engines and leaves in-memory engines
	// synchronous.
	PipelineAuto PipelineMode = iota
	// PipelineOff forces synchronous streams.
	PipelineOff
	// PipelineOn forces pipelined streams (useful for testing the
	// count-invariance contract on the in-memory backend).
	PipelineOn
)

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.BlockSize == 0 {
		out.BlockSize = 4096
	}
	if out.Memory == 0 {
		out.Memory = 1 << 20
	}
	return out
}

// IOStats reports block transfers on the engine's simulated disk.
type IOStats struct {
	Reads, Writes uint64
}

// Total returns Reads + Writes — the paper's I/O cost metric.
func (s IOStats) Total() uint64 { return s.Reads + s.Writes }

// Engine owns an EM environment (simulated disk + memory budget) and
// solves MaxRS/MaxCRS instances on datasets stored on that disk.
//
// # Concurrency
//
// An Engine is safe for concurrent queries: any number of goroutines may
// call MaxRS, MaxCRS, TopK, MinRS and CountRS against shared Datasets at
// the same time (see DESIGN.md §7 for the full contract). Results are
// bit-identical to sequential execution, and each Result carries its own
// per-query Stats. Datasets are reference-counted: Release during
// in-flight queries is safe — the blocks are freed when the last query
// using the dataset finishes. Load/LoadCSV may also run concurrently with
// queries. Only Close requires exclusivity: it must not run while any
// query or load is in flight. ResetStats zeroes the disk-global counters
// and therefore makes a concurrent Stats window meaningless, but it never
// affects the per-query Stats in Results.
//
// # Cancellation
//
// Every query is bound to its ctx (DESIGN.md §10): cancellation
// propagates through the solver recursion, the external sort, the disk
// streams, and — for sharded queries — every shard's private solve, each
// checking at block-transfer granularity. A cancelled query releases all
// its intermediate files and shard disks (BlocksInUse drains to 0 once
// every query has returned) and never perturbs concurrent queries or the
// determinism of completed-query Stats; the transfers it charged before
// the cancel remain in the engine-global totals.
type Engine struct {
	opts   Options
	env    em.Env
	solver *core.Solver
	par    int // resolved Options.Parallelism (≥ 1)

	// shardReads/shardWrites accumulate the traffic of sharded queries'
	// ephemeral per-shard disks, so Engine.Stats stays the engine-global
	// total even though that traffic never touches the primary disk.
	shardReads  atomic.Uint64
	shardWrites atomic.Uint64

	// faultPlan is the armed fault-injection plan (InjectFaults), applied
	// to shard disks at creation so injection covers the whole query path.
	faultPlan atomic.Pointer[em.FaultPlan]

	// Distributed execution (Options.Dist; all nil when not distributed):
	// the coordinator owning the worker membership and fan-out policy,
	// the instrumented transport under it, and the background prober's
	// stop hook.
	coord        *dist.Coordinator
	netTransport *dist.Transport
	stopProber   func()
}

// NewEngine validates opts and returns an Engine. Misconfiguration —
// including an unknown Options.Algorithm — surfaces here, not on the
// first query.
func NewEngine(opts *Options) (*Engine, error) {
	o := opts.withDefaults()
	if o.Shards < 0 {
		return nil, fmt.Errorf("maxrs: shard count %d must be ≥ 0", o.Shards)
	}
	if !validAlgorithm(o.Algorithm) {
		return nil, fmt.Errorf("maxrs: unknown algorithm %v", o.Algorithm)
	}
	d, err := o.newDisk()
	if err != nil {
		return nil, err
	}
	env := em.Env{Disk: d, M: o.Memory}
	if err = env.Validate(); err != nil {
		return nil, errors.Join(err, d.Close())
	}
	switch o.Pipeline {
	case PipelineAuto:
		env.Disk.SetPipelining(o.OnDisk)
	case PipelineOn:
		env.Disk.SetPipelining(true)
	case PipelineOff:
		env.Disk.SetPipelining(false)
	default:
		_ = env.Disk.Close()
		return nil, fmt.Errorf("maxrs: unknown pipeline mode %d", o.Pipeline)
	}
	env.Disk.SetRetryPolicy(o.Retry.em())
	env.Disk.SetChecksums(o.Checksums)
	solver, err := core.NewSolver(env, core.Config{Fanout: o.Fanout, Parallelism: o.Parallelism, Unfused: o.Unfused})
	if err != nil {
		return nil, errors.Join(err, env.Disk.Close())
	}
	par := o.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: o, env: env, solver: solver, par: par}
	if o.Dist != nil {
		e.netTransport = dist.NewTransport(o.Dist.Transport, o.Dist.NetFaults.dist())
		members := dist.NewMembership(nil)
		for _, w := range o.Dist.Workers {
			members.Add(w.Name, w.URL)
		}
		e.coord = dist.NewCoordinator(members, dist.Config{
			Client: &http.Client{Transport: e.netTransport},
			Retry:  o.Dist.Retry.em(),
			Hedge:  dist.HedgePolicy{Delay: o.Dist.Hedge.Delay, Max: o.Dist.Hedge.Max},
		})
		if o.Dist.ProbeInterval > 0 {
			e.stopProber = members.StartProber(o.Dist.ProbeInterval)
		}
	}
	return e, nil
}

// Close releases the engine's storage (removes the backing file of an
// OnDisk engine) and stops the distributed membership prober, if one is
// running. It must not be called while queries or loads are in flight;
// the engine and its datasets must not be used afterwards.
func (e *Engine) Close() error {
	if e.stopProber != nil {
		e.stopProber()
		e.stopProber = nil
	}
	return e.env.Disk.Close()
}

// Dataset is a point set stored on the engine's disk.
//
// A Dataset is mutable: Insert and Delete buffer changes in a bounded
// in-memory delta that queries fold in exactly (DESIGN.md §14) — every
// query answers as if the dataset had been reloaded from scratch with
// the mutations applied. Once the delta passes Options.DeltaCompactAt
// the next mutation compacts it into a fresh base file (Compact forces
// it); compaction is generation-fenced, so queries in flight keep the
// base they started on.
//
// A Dataset is reference-counted through its base file: every running
// query holds a reference to the base generation it began on, and
// Release marks the dataset dead, deferring the actual freeing of its
// disk blocks until the last in-flight query finishes. Queries and
// mutations started after Release fail with ErrDatasetReleased.
type Dataset struct {
	eng *Engine

	mu sync.Mutex
	// base is the current base generation: the on-disk object file plus
	// the per-generation reference count that keeps it alive for queries
	// begun before a compaction swapped it out.
	base *baseRef
	// n is the base file's record count.
	n int
	// stats are the base file's statistics (internal/plan), collected in
	// the loader's (or compactor's) streaming pass: the planner's whole
	// picture of the data, and the home of the smallest weight — the
	// shard merge's exactness argument needs nonnegative weights
	// (DESIGN.md §9.3), so queries on a dataset with any negative weight
	// silently fall back to the unsharded path. Queries see these merged
	// conservatively with the pending delta (effStatsLocked).
	stats plan.Stats
	// baseIDs maps base record index → object ID. nil (the common case:
	// no deletions have ever been compacted) means record i has ID i.
	// After a compaction that dropped records it is the sorted ID list
	// of the survivors — ascending by construction, so membership is a
	// binary search (delta.go).
	baseIDs  []uint64
	released bool // Release called
	shards   int  // per-dataset shard-count override (0 = engine default)

	// Pending delta (DESIGN.md §14). Snapshots are taken under mu;
	// mutators additionally serialize on mutMu (below) so validation,
	// the base-coordinate scan of Delete, and compaction never interleave.
	inserts []pendingInsert       // append-only until compaction
	insIdx  map[uint64]int        // pending-insert ID → inserts index (mutMu)
	delBase map[uint64]rec.Object // deleted base records (copy-on-write)
	delIns  map[uint64]struct{}   // deleted pending-insert IDs (copy-on-write)
	nextID  uint64                // next ID to assign to an insert
	seq     uint64                // mutation sequence number (one per Insert/Delete)
	gen     uint64                // base generation (one per compaction)
	ncomp   uint64                // compactions performed
	// sol caches the base generation's exact unsharded solutions per
	// query size — the incumbent the combined delta path merges against.
	// Cleared on compaction (the base changed).
	sol map[solKey]sweep.Result

	// mutMu serializes mutators (Insert, Delete, Compact) against each
	// other. Never held while queries run; queries only take mu.
	mutMu sync.Mutex
}

// baseRef is one base generation of a Dataset: the object file and the
// count of in-flight queries pinned to it. kill marks the generation
// dead (compaction swapped it out, or the dataset was released); the
// blocks are freed when the last reference drops.
type baseRef struct {
	mu   sync.Mutex
	f    *em.File
	refs int
	dead bool
}

func (b *baseRef) acquire() {
	b.mu.Lock()
	b.refs++
	b.mu.Unlock()
}

func (b *baseRef) release() error {
	b.mu.Lock()
	b.refs--
	free := b.dead && b.refs == 0
	b.mu.Unlock()
	if free {
		return b.f.Release()
	}
	return nil
}

func (b *baseRef) kill() error {
	b.mu.Lock()
	if b.dead {
		b.mu.Unlock()
		return nil
	}
	b.dead = true
	free := b.refs == 0
	b.mu.Unlock()
	if free {
		return b.f.Release()
	}
	return nil
}

// pendingInsert is one buffered insert: the assigned ID and the object.
type pendingInsert struct {
	id  uint64
	obj rec.Object
}

// solKey keys the base-solution cache by query rectangle size.
type solKey struct{ w, h float64 }

// newDataset wraps a freshly written base file.
func (e *Engine) newDataset(f *em.File, n int, st plan.Stats) *Dataset {
	return &Dataset{
		eng:     e,
		base:    &baseRef{f: f},
		n:       n,
		stats:   st,
		nextID:  uint64(n),
		insIdx:  make(map[uint64]int),
		delBase: make(map[uint64]rec.Object),
		delIns:  make(map[uint64]struct{}),
	}
}

// ErrDatasetReleased is returned by queries on a released Dataset.
var ErrDatasetReleased = errors.New("maxrs: dataset released")

// Len returns the effective number of objects in the dataset: the base
// records plus pending inserts, minus pending deletes.
func (d *Dataset) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n - len(d.delBase) + len(d.inserts) - len(d.delIns)
}

// SetShards overrides the engine's Options.Shards for queries on this
// dataset: 0 restores the engine default, 1 forces the degenerate
// single-shard path, K ≥ 2 shards the dataset K ways (DESIGN.md §9).
// Safe to call concurrently with queries; a query in flight keeps the
// count it started with.
func (d *Dataset) SetShards(k int) error {
	if k < 0 {
		return fmt.Errorf("%w: shard count %d must be ≥ 0", ErrInvalidQuery, k)
	}
	d.mu.Lock()
	d.shards = k
	d.mu.Unlock()
	return nil
}

// Shards returns the dataset's shard-count override (0 = engine default).
func (d *Dataset) Shards() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.shards
}

// Blocks returns the number of disk blocks the dataset's base file
// occupies (the pending delta lives in memory until compaction).
func (d *Dataset) Blocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.base.f.Blocks()
}

// Release frees the dataset's disk blocks. Safe to call while queries are
// running (they keep the blocks alive until they finish) and safe to call
// more than once.
func (d *Dataset) Release() error {
	d.mu.Lock()
	if d.released {
		d.mu.Unlock()
		return nil
	}
	d.released = true
	b := d.base
	d.sol = nil
	d.mu.Unlock()
	return b.kill()
}

// acquireQuery pins one query to the dataset's current state: the base
// generation (reference-counted so a concurrent compaction or Release
// cannot free it mid-query), an immutable snapshot of the pending delta
// (nil when there is none), and the effective statistics the planner and
// the shard guard must see — the base statistics merged conservatively
// with the delta.
func (d *Dataset) acquireQuery() (*baseRef, *deltaSnap, plan.Stats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.released {
		return nil, nil, plan.Stats{}, ErrDatasetReleased
	}
	b := d.base
	b.acquire()
	snap := d.snapLocked()
	return b, snap, d.effStatsLocked(snap), nil
}

// Load writes objects to the engine's disk and returns the Dataset.
// Loading is charged to the engine's I/O statistics; call ResetStats
// afterwards to measure a query in isolation. Coordinates and weights
// must be finite. Cancelling ctx (or exceeding its deadline) aborts the
// load at block-transfer granularity and returns an error matching both
// ErrQueryCancelled and the context error. On every error path — partial
// blocks included — nothing stays allocated.
func (e *Engine) Load(ctx context.Context, objs []Object) (_ *Dataset, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	f := em.NewFile(e.env.Disk)
	defer func() {
		if err != nil {
			err = wrapCancel(errors.Join(err, f.Release()))
		}
	}()
	// The context binds the writer, not the file: a dataset must not
	// carry its load context permanently (readers opened on it later
	// would inherit the cancellation).
	w, err := em.OpenRecordWriter(e.env.WithContext(ctx), f, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	col := plan.NewCollector()
	for _, o := range objs {
		if err := checkObject(o.X, o.Y, o.Weight); err != nil {
			return nil, fmt.Errorf("maxrs: object %+v: %w", o, err)
		}
		if err := w.Write(rec.Object{X: o.X, Y: o.Y, W: o.Weight}); err != nil {
			return nil, err
		}
		col.Add(o.X, o.Y, o.Weight)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return e.newDataset(f, len(objs), col.Finalize(e.opts.BlockSize, e.opts.Memory)), nil
}

// LoadObjects is the pre-context form of Load.
//
// Deprecated: use Load(ctx, objs). LoadObjects remains for one release
// as a thin wrapper over Load with context.Background().
func (e *Engine) LoadObjects(objs []Object) (*Dataset, error) {
	return e.Load(context.Background(), objs)
}

// checkObject rejects NaN and ±Inf coordinates/weights — infinities
// poison the rectangle transform (an object at +Inf produces an invalid
// empty rectangle and, worse, ±Inf edge values break slab division).
func checkObject(x, y, w float64) error {
	for _, v := range [3]float64{x, y, w} {
		if math.IsNaN(v) {
			return errors.New("NaN value")
		}
		if math.IsInf(v, 0) {
			return errors.New("infinite value")
		}
	}
	return nil
}

// Stats returns the engine's accumulated block-transfer counts across all
// loads and queries — the primary disk's total plus the traffic of
// sharded queries' ephemeral per-shard disks, so the engine-global tally
// covers everything the engine transferred anywhere. For the cost of a
// single query under concurrency, use the Stats field of its Result
// instead.
func (e *Engine) Stats() IOStats {
	s := e.env.Disk.Stats()
	return IOStats{
		Reads:  s.Reads + e.shardReads.Load(),
		Writes: s.Writes + e.shardWrites.Load(),
	}
}

// ResetStats zeroes the engine-global transfer counters (primary disk and
// accumulated shard traffic). Per-query Result stats are unaffected.
func (e *Engine) ResetStats() {
	e.env.Disk.ResetStats()
	e.shardReads.Store(0)
	e.shardWrites.Store(0)
}

// BlocksInUse returns the number of live (allocated, unfreed) blocks on
// the engine's disk. After every dataset is released and every query has
// finished it returns 0; anything else indicates a leak — useful as an
// operational health check for long-running servers.
func (e *Engine) BlocksInUse() int { return e.env.Disk.InUse() }

// ErrQueryCancelled wraps the context error of every query abandoned by
// cancellation or deadline: errors.Is(err, ErrQueryCancelled) identifies
// "the caller gave up", and errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) still matches the underlying cause. A
// cancelled query stops within one block-transfer's work, releases every
// intermediate file and shard disk it held (Engine.BlocksInUse drains to
// 0), and leaves concurrent queries untouched — see DESIGN.md §10 for the
// full contract.
var ErrQueryCancelled = errors.New("maxrs: query cancelled")

// wrapCancel marks an error caused by ctx cancellation with
// ErrQueryCancelled, preserving the context error for errors.Is.
func wrapCancel(err error) error {
	if err == nil || errors.Is(err, ErrQueryCancelled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrQueryCancelled, err)
	}
	return err
}

// query is one in-flight query: the unified request path every public
// query method funnels through. It pins the resolved per-call settings
// (engine defaults + QueryOptions), the cancellation context, the
// per-query stat scope, and the core solver the call runs on, so the five
// query kinds share one begin/solve/end shape.
type query struct {
	e      *Engine
	ctx    context.Context
	d      *Dataset
	set    querySettings
	sc     *em.ScopeStats
	solver *core.Solver
	par    int // resolved parallelism (≥ 1) for the shard worker budget

	// base pins the dataset's base generation for the query's duration;
	// delta is the immutable snapshot of the pending mutations (nil when
	// the dataset is clean — the overwhelmingly common case, whose
	// execution and transfer schedule are bit-identical to pre-delta
	// builds); effSt are the effective statistics both merged.
	base  *baseRef
	delta *deltaSnap
	effSt plan.Stats

	// deltaPath records how a delta-carrying solve answered ("combined":
	// cached base solution survived the influence-bound check; "fused":
	// full re-solve over the materialized effective set); deltaBaseCached
	// whether the base incumbent came from the dataset's solution cache.
	deltaPath       string
	deltaBaseCached bool

	// plan is the materialized execution decision (DESIGN.md §12):
	// under AlgorithmAuto the planner's choice (already folded back into
	// set, so execution downstream is byte-identical to an explicit
	// query), otherwise the resolved settings with their predicted cost.
	plan     Plan
	fallback string // Result.FallbackReason

	// distributedRan records that the coordinator actually fanned this
	// query's shards out (Result.Distributed) — not set when distribution
	// degraded to in-process execution.
	distributedRan bool
}

// distribute reports whether this query's sharded solve should fan out
// to workers, noting the fallback when distribution was requested on an
// engine that has none configured.
func (q *query) distribute() bool {
	if !q.set.distributed {
		return false
	}
	if q.e.coord == nil {
		if q.set.distributedSet {
			q.noteFallback("distributed execution requested but Options.Dist is not configured; solved in process")
		}
		return false
	}
	return true
}

// noteFallback appends one reason to the query's FallbackReason.
func (q *query) noteFallback(reason string) {
	if q.fallback == "" {
		q.fallback = reason
		return
	}
	q.fallback += "; " + reason
}

// begin opens the unified request path: it resolves the call's options
// against the engine defaults, rejects an already-cancelled context
// before any work, acquires the dataset reference, materializes the
// query's Plan (running the planner for AlgorithmAuto), and picks the
// solver the planned settings need. Every error that can be diagnosed
// without touching the disk surfaces here. The caller must
// `defer q.end(&err)` on success.
func (e *Engine) begin(ctx context.Context, d *Dataset, kind queryKind, w, h float64, opts []QueryOption) (*query, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	set, err := e.resolveQuery(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	base, snap, effSt, err := d.acquireQuery()
	if err != nil {
		return nil, err
	}
	pl, fallback, _ := e.planQuery(d, effSt, snap.pending(), kind, w, h, &set, false)
	solver, par, err := e.solverFor(set)
	if err != nil {
		return nil, errors.Join(err, base.release())
	}
	pl.Parallelism = par
	return &query{
		e: e, ctx: ctx, d: d, set: set, sc: new(em.ScopeStats),
		base: base, delta: snap, effSt: effSt,
		solver: solver, par: par, plan: pl, fallback: fallback,
	}, nil
}

// end is the deferred tail of every query: it drops the base-generation
// reference, joins in a final-free failure (the query error, if any,
// stays primary), and wraps cancellation-caused failures in
// ErrQueryCancelled.
func (q *query) end(err *error) {
	if rerr := q.base.release(); rerr != nil {
		*err = errors.Join(*err, rerr)
	}
	*err = wrapCancel(*err)
}

// env returns the engine env bound to this query's scope and context —
// what every stream and sub-solver of the query runs under.
func (q *query) env() em.Env {
	return q.e.env.WithScope(q.sc).WithContext(q.ctx)
}

// result assembles a Result from a finished solve: geometry, per-query
// stats, the effective algorithm / shard count actually used, and the
// plan the query ran under.
func (q *query) result(res sweep.Result, shards []ShardStat, alg Algorithm) Result {
	out := fromSweep(res)
	out.Stats = queryStatsOf(q.sc)
	out.Algorithm = alg
	out.Shards = len(shards)
	out.ShardStats = shards
	q.annotate(&out)
	return out
}

// annotate stamps the query's plan, prediction and fallback reason onto
// a Result (TopK calls it per round; result covers the single-result
// queries).
func (q *query) annotate(out *Result) {
	if q.delta != nil {
		q.plan.Delta = &DeltaPlan{
			Pending:    int(q.delta.pending()),
			Inserts:    q.delta.liveInserts(),
			Deletes:    len(q.delta.delBase) + len(q.delta.delIns),
			Path:       q.deltaPath,
			BaseCached: q.deltaBaseCached,
		}
	}
	out.Plan = q.plan
	out.PredictedCost = q.plan.Predicted
	out.FallbackReason = q.fallback
	out.Distributed = q.distributedRan
	out.Stats.PredictedReads = uint64(q.plan.Predicted.Reads)
	out.Stats.PredictedWrites = uint64(q.plan.Predicted.Writes)
}

// MaxRS finds a center location for a w×h rectangle maximizing the total
// covered weight of the dataset. Safe to call concurrently with other
// queries on the same engine and dataset. Cancelling ctx (or exceeding
// its deadline) aborts the solve within one block-transfer's work,
// releases every intermediate file, and returns an error matching both
// ErrQueryCancelled and the context error. QueryOptions override the
// engine defaults for this call only.
func (e *Engine) MaxRS(ctx context.Context, d *Dataset, w, h float64, opts ...QueryOption) (_ Result, err error) {
	if err := checkQuery(w, h); err != nil {
		return Result{}, err
	}
	q, err := e.begin(ctx, d, kindMaxRS, w, h, opts)
	if err != nil {
		return Result{}, err
	}
	defer q.end(&err)
	res, shards, alg, err := q.maxRS(w, h)
	if err != nil {
		if errors.Is(err, ErrShardUnavailable) && shards != nil {
			// A distributed query that lost a shard for good fails typed,
			// but the partial Result still carries the per-worker
			// attribution (ShardStats) so operators can see exactly which
			// worker failed how. Location/Score are zero — never a
			// silently partial answer.
			out := Result{Algorithm: alg, Shards: len(shards), ShardStats: shards}
			out.Stats = queryStatsOf(q.sc)
			q.annotate(&out)
			return out, err
		}
		return Result{}, err
	}
	return q.result(res, shards, alg), nil
}

// maxRS dispatches one already-begun MaxRS solve. Only the ExactMaxRS
// algorithm honors sharding; the per-shard breakdown (nil when unsharded)
// and the algorithm that ran ride back alongside the result.
func (q *query) maxRS(w, h float64) (sweep.Result, []ShardStat, Algorithm, error) {
	var (
		res sweep.Result
		err error
	)
	switch q.set.algorithm {
	case ExactMaxRS:
		if q.delta != nil {
			r, shards, err := q.solveDelta(w, h)
			return r, shards, ExactMaxRS, err
		}
		r, shards, err := q.solveObjects(q.base.f, w, h, q.shardsFor())
		return r, shards, ExactMaxRS, err
	case NaiveSweep:
		res, err = q.solveBaseline(baseline.NaiveSweep, w, h)
	case ASBTree:
		res, err = q.solveBaseline(baseline.ASBTreeSweep, w, h)
	case InMemory:
		var objs []geom.Object
		objs, err = q.readEffObjects()
		if err == nil {
			res = sweep.MaxRS(objs, w, h)
		}
	default:
		// Unreachable: NewEngine and WithAlgorithm validate. Tripwire.
		err = fmt.Errorf("%w: unknown algorithm %v", ErrInvalidQuery, q.set.algorithm)
	}
	return res, nil, q.set.algorithm, err
}

// solveBaseline runs one of the externalized baseline sweeps over the
// query's effective object file (the base file directly when the dataset
// is clean).
func (q *query) solveBaseline(fn func(em.Env, *em.File, float64, float64) (sweep.Result, error), w, h float64) (sweep.Result, error) {
	f, owned, err := q.effFile(nil)
	if err != nil {
		return sweep.Result{}, err
	}
	res, err := fn(q.env(), f, w, h)
	if owned {
		if rerr := f.Release(); rerr != nil && err == nil {
			err = rerr
		}
	}
	return res, err
}

// shardsFor resolves the shard count for this query: WithShards when
// given, else the dataset's override, else the engine's Options.Shards.
// Datasets holding any negative weight always resolve to 0 (unsharded): a
// shard's unrestricted optimum can land outside its slab, where missing
// negative-weight objects beyond the halo would inflate its local score
// — the merge is only exact for nonnegative weights (DESIGN.md §9.3).
// The guard reads the effective statistics, so a buffered insert with a
// negative weight disables sharding exactly like a loaded one.
func (q *query) shardsFor() int {
	if q.effSt.MinW < 0 {
		return 0
	}
	return q.requestedShards()
}

// requestedShards is the resolution step alone — query option, dataset
// override, engine default — without the weight-sign guard, for solves on
// a weight-mapped copy whose shardability does not depend on the
// dataset's own weights (CountRS).
func (q *query) requestedShards() int {
	return q.e.requestedShardsFor(q.d, q.set)
}

// solveObjects runs one ExactMaxRS object solve, sharded K ways when
// k ≥ 1 (0 = the plain single-solver path). All transfers — the primary
// disk's and, for sharded solves, the ephemeral shard disks' — are
// charged to the query scope and to the engine-global totals, keeping
// both accounting contracts intact (DESIGN.md §7.2, §9).
func (q *query) solveObjects(f *em.File, w, h float64, k int) (sweep.Result, []ShardStat, error) {
	if k < 1 {
		res, err := q.solver.SolveObjectsScoped(q.ctx, f, w, h, q.sc)
		return res, nil, err
	}
	if q.distribute() {
		return q.solveDistributed(f, w, h, k)
	}
	// Shard-level fan-out replaces slab-level fan-out as the outer
	// parallelism: the shard pool is bounded by the query's resolved
	// parallelism, and the shard layer splits that budget evenly over
	// the effective shard count (Core.Parallelism left zero), so a
	// sharded query never runs more workers than an unsharded one.
	r, err := shard.SolveObjects(q.ctx, q.e.env.WithScope(q.sc), f, w, h, shard.Config{
		Shards:  k,
		Workers: q.par,
		Core:    core.Config{Fanout: q.e.opts.Fanout, Unfused: q.set.unfused},
		NewDisk: q.e.newShardDisk,
	})
	if err != nil {
		return sweep.Result{}, nil, err
	}
	stats := make([]ShardStat, len(r.Shards))
	for i, si := range r.Shards {
		stats[i] = ShardStat{
			Objects: si.Objects,
			Stats:   QueryStats{Reads: si.Stats.Reads, Writes: si.Stats.Writes},
		}
	}
	ext := r.Stats()
	q.sc.Add(ext)
	q.e.shardReads.Add(ext.Reads)
	q.e.shardWrites.Add(ext.Writes)
	return r.Res, stats, nil
}

// newShardDisk allocates one shard's private disk, mirroring the
// engine's backend, codec and pipelining choices.
func (e *Engine) newShardDisk() (*em.Disk, error) {
	d, err := e.opts.newDisk()
	if err != nil {
		return nil, err
	}
	d.SetPipelining(e.env.Disk.Pipelined())
	d.SetRetryPolicy(e.opts.Retry.em())
	d.SetChecksums(e.opts.Checksums)
	if p := e.faultPlan.Load(); p != nil {
		d.InjectFaults(*p)
	}
	return d, nil
}

// ErrInvalidQuery is wrapped by every query-parameter validation failure
// (non-positive or infinite sizes, k < 1), so callers — e.g. an HTTP
// layer mapping errors to status codes — can classify with errors.Is
// instead of matching message text.
var ErrInvalidQuery = errors.New("maxrs: invalid query")

func checkQuery(w, h float64) error {
	if !(w > 0) || !(h > 0) || math.IsInf(w, 0) || math.IsInf(h, 0) {
		return fmt.Errorf("%w: size %gx%g must be positive and finite", ErrInvalidQuery, w, h)
	}
	return nil
}

// readEffObjects loads the query's effective object set into memory, in
// exactly the order a reload of the mutated set would store it: the base
// records minus pending deletes, then the live pending inserts in ID
// order. For a clean dataset it is a plain scan of the base file.
func (q *query) readEffObjects() ([]geom.Object, error) {
	if q.delta == nil {
		recs, err := em.ReadAllEnv(q.env(), q.base.f, rec.ObjectCodec{})
		if err != nil {
			return nil, err
		}
		objs := make([]geom.Object, len(recs))
		for i, r := range recs {
			objs[i] = r.Geom()
		}
		return objs, nil
	}
	var objs []geom.Object
	err := q.scanEff(func(o rec.Object) error {
		objs = append(objs, o.Geom())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return objs, nil
}

func fromSweep(res sweep.Result) Result {
	best := res.Best()
	return Result{
		Location: Point{X: best.X, Y: best.Y},
		Score:    res.Sum,
		Region: Rect{
			MinX: res.Region.X.Lo, MaxX: res.Region.X.Hi,
			MinY: res.Region.Y.Lo, MaxY: res.Region.Y.Hi,
		},
	}
}

// MaxRS is the one-shot convenience form: it builds a default engine
// (paper-default EM parameters, or opts), loads objs, solves under ctx,
// and closes the engine on every path — with Options.OnDisk the backing
// temp file is removed even when loading, solving, or cancellation fails
// the call.
func MaxRS(ctx context.Context, objs []Object, w, h float64, opts *Options, qopts ...QueryOption) (_ Result, err error) {
	e, err := NewEngine(opts)
	if err != nil {
		return Result{}, err
	}
	defer closeEngine(e, &err)
	d, err := e.Load(ctx, objs)
	if err != nil {
		return Result{}, err
	}
	return e.MaxRS(ctx, d, w, h, qopts...)
}

// closeEngine is the deferred tail of the one-shot forms: it closes the
// engine and joins the close failure into the call's error (the earlier
// error, if any, stays primary).
func closeEngine(e *Engine, err *error) {
	if cerr := e.Close(); cerr != nil {
		*err = errors.Join(*err, cerr)
	}
}

// ErrEmptyDataset is returned by queries that need at least one object.
var ErrEmptyDataset = errors.New("maxrs: empty dataset")
