// Package maxrs solves the Maximizing Range Sum (MaxRS) problem and its
// circular variant (MaxCRS) at scale, reproducing the algorithms of
//
//	D.-W. Choi, C.-W. Chung, Y. Tao:
//	"A Scalable Algorithm for Maximizing Range Sum in Spatial Databases",
//	PVLDB 5(11), 2012.
//
// Given a set of weighted points and a rectangle of a fixed size d1×d2,
// MaxRS asks for the center location maximizing the total weight of the
// points the rectangle covers. MaxCRS asks the same for a circle of a
// fixed diameter. Typical uses: placing a store with a fixed delivery
// range over customer locations, or finding the spot of a city with the
// most attractions in walking distance.
//
// # Quick start
//
//	objs := []maxrs.Object{{X: 1, Y: 1, Weight: 1}, {X: 2, Y: 2, Weight: 1}}
//	res, err := maxrs.MaxRS(objs, 4, 4, nil)
//	// res.Location is an optimal center; res.Score the covered weight.
//
// # Algorithms
//
// The default solver is ExactMaxRS, the paper's I/O-optimal
// external-memory distribution sweep — it runs in O((N/B) log_{M/B}(N/B))
// block transfers under the configured EM model and handles datasets far
// larger than the memory budget. The two baselines of the paper's
// evaluation (NaiveSweep, ASBTree) and a plain in-memory solver are also
// available for comparison via Options.Algorithm.
//
// All computation runs against a simulated block device that counts
// transfers; Engine.Stats exposes the I/O cost exactly as the paper
// measures it.
package maxrs

import (
	"errors"
	"fmt"
	"math"

	"maxrs/internal/baseline"
	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/geom"
	"maxrs/internal/rec"
	"maxrs/internal/sweep"
)

// Object is a weighted point of the input set O.
type Object struct {
	X, Y   float64
	Weight float64
}

// Point is a location in the data space.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned region of optimal locations, half-open on its
// max edges. Infinite bounds mean the optimum extends indefinitely in
// that direction (possible only for degenerate inputs).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies in the region.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// Result is a solved MaxRS/MaxCRS instance.
type Result struct {
	// Location is an optimal center position.
	Location Point
	// Score is the total covered weight at Location.
	Score float64
	// Region is the full set of optimal center positions (for MaxRS).
	// Every point of Region attains Score.
	Region Rect
}

// Algorithm selects the solver implementation.
type Algorithm int

// Available algorithms.
const (
	// ExactMaxRS is the paper's I/O-optimal external algorithm (§5).
	ExactMaxRS Algorithm = iota
	// NaiveSweep is the externalized naive plane sweep baseline (§7.1).
	NaiveSweep
	// ASBTree is the aggregate SB-tree plane sweep baseline (§7.1).
	ASBTree
	// InMemory is the RAM-model plane sweep of Imai–Asano (§4); it
	// ignores the EM budget and is intended for small inputs and tests.
	InMemory
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case ExactMaxRS:
		return "ExactMaxRS"
	case NaiveSweep:
		return "NaiveSweep"
	case ASBTree:
		return "aSB-Tree"
	case InMemory:
		return "InMemory"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures an Engine. The zero value (and nil) selects the
// paper's defaults: 4 KB blocks, 1 MB memory, ExactMaxRS.
type Options struct {
	// BlockSize is the EM-model block size B in bytes (default 4096,
	// Table 3).
	BlockSize int
	// Memory is the EM-model memory budget M in bytes (default 1 MiB,
	// the paper's synthetic-data default buffer).
	Memory int
	// Algorithm selects the solver (default ExactMaxRS).
	Algorithm Algorithm
	// Fanout overrides the recursion fan-in m of ExactMaxRS (0 = the
	// paper's Θ(M/B)); exposed for ablation studies.
	Fanout int
	// Parallelism bounds the worker goroutines ExactMaxRS uses for
	// independent child slabs, sort-run formation, and merge groups
	// (0 = GOMAXPROCS, 1 = sequential). Results and the counted block
	// transfers are identical for every value; only wall-clock time
	// changes. See DESIGN.md §6.
	Parallelism int
	// OnDisk stores blocks in a temporary OS file under OnDiskDir
	// (default: the system temp directory) instead of process memory, so
	// datasets larger than RAM work too. Call Engine.Close to remove the
	// backing file. Transfer accounting is identical either way.
	OnDisk    bool
	OnDiskDir string
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.BlockSize == 0 {
		out.BlockSize = 4096
	}
	if out.Memory == 0 {
		out.Memory = 1 << 20
	}
	return out
}

// IOStats reports block transfers on the engine's simulated disk.
type IOStats struct {
	Reads, Writes uint64
}

// Total returns Reads + Writes — the paper's I/O cost metric.
func (s IOStats) Total() uint64 { return s.Reads + s.Writes }

// Engine owns an EM environment (simulated disk + memory budget) and
// solves MaxRS/MaxCRS instances on datasets stored on that disk.
// An Engine is not safe for concurrent use.
type Engine struct {
	opts   Options
	env    em.Env
	solver *core.Solver
}

// NewEngine validates opts and returns an Engine.
func NewEngine(opts *Options) (*Engine, error) {
	o := opts.withDefaults()
	var (
		env em.Env
		err error
	)
	if o.OnDisk {
		var d *em.Disk
		d, err = em.NewFileBackedDisk(o.OnDiskDir, o.BlockSize)
		if err != nil {
			return nil, err
		}
		env = em.Env{Disk: d, M: o.Memory}
		if err = env.Validate(); err != nil {
			_ = d.Close()
			return nil, err
		}
	} else {
		env, err = em.NewEnv(o.BlockSize, o.Memory)
		if err != nil {
			return nil, err
		}
	}
	solver, err := core.NewSolver(env, core.Config{Fanout: o.Fanout, Parallelism: o.Parallelism})
	if err != nil {
		return nil, err
	}
	return &Engine{opts: o, env: env, solver: solver}, nil
}

// Close releases the engine's storage (removes the backing file of an
// OnDisk engine). The engine and its datasets must not be used afterwards.
func (e *Engine) Close() error { return e.env.Disk.Close() }

// Dataset is a point set stored on the engine's disk.
type Dataset struct {
	file *em.File
	n    int
}

// Len returns the number of objects in the dataset.
func (d *Dataset) Len() int { return d.n }

// Blocks returns the number of disk blocks the dataset occupies.
func (d *Dataset) Blocks() int { return d.file.Blocks() }

// Release frees the dataset's disk blocks.
func (d *Dataset) Release() error { return d.file.Release() }

// Load writes objects to the engine's disk and returns the Dataset.
// Loading is charged to the engine's I/O statistics; call ResetStats
// afterwards to measure a query in isolation.
func (e *Engine) Load(objs []Object) (*Dataset, error) {
	f := em.NewFile(e.env.Disk)
	w, err := em.NewRecordWriter(f, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	for _, o := range objs {
		if math.IsNaN(o.X) || math.IsNaN(o.Y) || math.IsNaN(o.Weight) {
			return nil, fmt.Errorf("maxrs: NaN in object %+v", o)
		}
		if err := w.Write(rec.Object{X: o.X, Y: o.Y, W: o.Weight}); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Dataset{file: f, n: len(objs)}, nil
}

// Stats returns the engine's accumulated block-transfer counts.
func (e *Engine) Stats() IOStats {
	s := e.env.Disk.Stats()
	return IOStats{Reads: s.Reads, Writes: s.Writes}
}

// ResetStats zeroes the transfer counters.
func (e *Engine) ResetStats() { e.env.Disk.ResetStats() }

// MaxRS finds a center location for a w×h rectangle maximizing the total
// covered weight of the dataset.
func (e *Engine) MaxRS(d *Dataset, w, h float64) (Result, error) {
	if err := checkQuery(w, h); err != nil {
		return Result{}, err
	}
	var (
		res sweep.Result
		err error
	)
	switch e.opts.Algorithm {
	case ExactMaxRS:
		res, err = e.solver.SolveObjects(d.file, w, h)
	case NaiveSweep:
		res, err = baseline.NaiveSweep(e.env, d.file, w, h)
	case ASBTree:
		res, err = baseline.ASBTreeSweep(e.env, d.file, w, h)
	case InMemory:
		var objs []geom.Object
		objs, err = readObjects(d)
		if err == nil {
			res = sweep.MaxRS(objs, w, h)
		}
	default:
		err = fmt.Errorf("maxrs: unknown algorithm %v", e.opts.Algorithm)
	}
	if err != nil {
		return Result{}, err
	}
	return fromSweep(res), nil
}

func checkQuery(w, h float64) error {
	if !(w > 0) || !(h > 0) || math.IsInf(w, 0) || math.IsInf(h, 0) {
		return fmt.Errorf("maxrs: query size %gx%g must be positive and finite", w, h)
	}
	return nil
}

func readObjects(d *Dataset) ([]geom.Object, error) {
	recs, err := em.ReadAll(d.file, rec.ObjectCodec{})
	if err != nil {
		return nil, err
	}
	objs := make([]geom.Object, len(recs))
	for i, r := range recs {
		objs[i] = r.Geom()
	}
	return objs, nil
}

func fromSweep(res sweep.Result) Result {
	best := res.Best()
	return Result{
		Location: Point{X: best.X, Y: best.Y},
		Score:    res.Sum,
		Region: Rect{
			MinX: res.Region.X.Lo, MaxX: res.Region.X.Hi,
			MinY: res.Region.Y.Lo, MaxY: res.Region.Y.Hi,
		},
	}
}

// MaxRS is the one-shot convenience form: it builds a default engine
// (paper-default EM parameters, or opts), loads objs, and solves.
func MaxRS(objs []Object, w, h float64, opts *Options) (Result, error) {
	e, err := NewEngine(opts)
	if err != nil {
		return Result{}, err
	}
	d, err := e.Load(objs)
	if err != nil {
		return Result{}, err
	}
	return e.MaxRS(d, w, h)
}

// ErrEmptyDataset is returned by queries that need at least one object.
var ErrEmptyDataset = errors.New("maxrs: empty dataset")
