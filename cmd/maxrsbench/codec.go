package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"maxrs"
	"maxrs/internal/experiments"
)

// codecBenchConfig parameterizes the -exp=codec mode: the storage-stack
// grid of DESIGN.md §15 — file vs mmap backend, fixed vs delta-compressed
// block layout — on a Fig. 12-style uniform workload. The run doubles as
// a regression gate: it asserts bit-identical results and bit-identical
// counted transfer schedules across every stack (the codecs and the mmap
// path live below the transfer counters), and a strict physical-byte win
// for the delta codec over the fixed layout. It then reports io/op,
// wall-clock ns/op and physical bytes moved so `-json=BENCH_10.json`
// leaves a machine-readable record. Only the "(block transfers)" series
// is baseline-gated; wall-clock and physical bytes are recorded, never
// gated — real hardware is allowed to be noisy, the in-run gates above
// are not.
type codecBenchConfig struct {
	objects int
	iters   int // timing iterations per variant (best-of)
	seed    int64
	memory  int // EM budget M in bytes
	par     int
	out     io.Writer
}

// codecBenchVariant is one measured storage stack.
type codecBenchVariant struct {
	name    string
	backend maxrs.BackendKind
	codec   maxrs.CodecKind
}

var codecBenchVariants = []codecBenchVariant{
	{name: "file/none", backend: maxrs.BackendFile, codec: maxrs.CodecNone},
	{name: "file/delta", backend: maxrs.BackendFile, codec: maxrs.CodecDelta},
	{name: "mmap/none", backend: maxrs.BackendMmap, codec: maxrs.CodecNone},
	{name: "mmap/delta", backend: maxrs.BackendMmap, codec: maxrs.CodecDelta},
}

// codecObjects builds the uniform workload the grid runs on — the same
// distribution the paper's Fig. 12 sweep uses.
func codecObjects(seed int64, n int) []maxrs.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]maxrs.Object, n)
	extent := 4 * float64(n)
	for i := range objs {
		objs[i] = maxrs.Object{
			X:      rng.Float64() * extent,
			Y:      rng.Float64() * extent,
			Weight: float64(rng.Intn(9) + 1),
		}
	}
	return objs
}

// runCodec measures every storage stack and returns the metric series.
func runCodec(cfg codecBenchConfig) ([]experiments.Series, error) {
	if cfg.iters < 1 {
		cfg.iters = 1
	}
	objs := codecObjects(cfg.seed, cfg.objects)
	queryEdge := 4 * float64(cfg.objects) / 1000

	fmt.Fprintf(cfg.out, "codec: %d uniform objects, M=%dKB, B=%d, query %gx%g, %d iterations, parallelism %d\n",
		cfg.objects, cfg.memory/1024, experiments.DefaultBlockSize, queryEdge, queryEdge, cfg.iters, cfg.par)
	fmt.Fprintf(cfg.out, "%-16s %-12s %10s %12s %14s %8s\n",
		"variant", "resolved", "io/op", "best ns/op", "phys bytes/op", "ratio")

	type measured struct {
		io         uint64
		ns         int64
		physBytes  uint64
		compressed uint64
		measured   bool
		backend    string
		result     maxrs.Result
	}
	results := make([]measured, len(codecBenchVariants))

	for vi, v := range codecBenchVariants {
		var m measured
		m.ns = int64(1) << 62
		for it := 0; it < cfg.iters; it++ {
			e, err := maxrs.NewEngine(&maxrs.Options{
				BlockSize:   experiments.DefaultBlockSize,
				Memory:      cfg.memory,
				Parallelism: cfg.par,
				OnDisk:      true,
				Backend:     v.backend,
				Codec:       v.codec,
			})
			if err != nil {
				return nil, fmt.Errorf("codec: %s: %w", v.name, err)
			}
			d, err := e.Load(context.Background(), objs)
			if err != nil {
				_ = e.Close()
				return nil, fmt.Errorf("codec: %s: %w", v.name, err)
			}
			e.ResetStats() // scope counted and physical I/O to the query
			start := time.Now()
			res, err := e.MaxRS(context.Background(), d, queryEdge, queryEdge)
			elapsed := time.Since(start)
			if err != nil {
				_ = e.Close()
				return nil, fmt.Errorf("codec: %s: %w", v.name, err)
			}
			stats := e.Stats()
			phys := e.PhysIO()
			info := e.StorageInfo()
			if err := d.Release(); err != nil {
				_ = e.Close()
				return nil, fmt.Errorf("codec: %s: %w", v.name, err)
			}
			if err := e.Close(); err != nil {
				return nil, fmt.Errorf("codec: %s: %w", v.name, err)
			}
			m.io = stats.Total()
			if ns := elapsed.Nanoseconds(); ns < m.ns {
				m.ns = ns
			}
			m.physBytes = phys.Bytes()
			m.compressed = phys.BlocksCompressed
			m.measured = phys.Measured
			m.backend = info.Backend
			m.result = res
		}
		results[vi] = m
		fixed := m.io * uint64(experiments.DefaultBlockSize)
		fmt.Fprintf(cfg.out, "%-16s %-12s %10d %12d %14d %7.1f%%\n",
			v.name, m.backend, m.io, m.ns, m.physBytes, 100*float64(m.physBytes)/float64(fixed))
	}

	// Invariants (DESIGN.md §15). 1: every stack returns the same answer.
	for vi := 1; vi < len(results); vi++ {
		a, b := results[vi].result, results[0].result
		if a.Region != b.Region || a.Score != b.Score {
			return nil, fmt.Errorf("codec: %s result differs from %s",
				codecBenchVariants[vi].name, codecBenchVariants[0].name)
		}
	}
	// 2: the counted transfer schedule is bit-identical across every
	// backend and codec — compression and mmap sit below the counters.
	for vi := 1; vi < len(results); vi++ {
		if results[vi].io != results[0].io {
			return nil, fmt.Errorf("codec: io/op %d (%s) != %d (%s) — the counted schedule moved",
				results[vi].io, codecBenchVariants[vi].name, results[0].io, codecBenchVariants[0].name)
		}
	}
	// 3: the delta codec moves strictly fewer physical bytes than the
	// uncompressed fixed layout (io × B — exactly what file/none derives),
	// and actually compressed blocks to get there.
	byName := func(name string) measured {
		for vi, v := range codecBenchVariants {
			if v.name == name {
				return results[vi]
			}
		}
		panic("unknown variant " + name)
	}
	fixedBytes := results[0].io * uint64(experiments.DefaultBlockSize)
	for _, name := range []string{"file/delta", "mmap/delta"} {
		m := byName(name)
		if !m.measured {
			return nil, fmt.Errorf("codec: %s did not measure physical bytes", name)
		}
		if m.compressed == 0 {
			return nil, fmt.Errorf("codec: %s compressed no blocks on a sorted stream workload", name)
		}
		if m.physBytes >= fixedBytes {
			return nil, fmt.Errorf("codec: %s moved %d physical bytes ≥ fixed layout %d — no compression win",
				name, m.physBytes, fixedBytes)
		}
	}
	fmt.Fprintf(cfg.out, "results identical, io/op backend- and codec-invariant, delta moves %d < %d fixed-layout bytes ✓\n",
		byName("file/delta").physBytes, fixedBytes)

	names := make([]string, len(codecBenchVariants))
	for i, v := range codecBenchVariants {
		names[i] = v.name
	}
	mkSeries := func(title string, val func(measured) float64) experiments.Series {
		s := experiments.Series{
			Title:  title,
			XLabel: "variant",
			X:      []float64{1},
			Order:  names,
			Values: map[string][]float64{},
		}
		for i, v := range codecBenchVariants {
			s.Values[v.name] = []float64{val(results[i])}
		}
		return s
	}
	return []experiments.Series{
		// Gated by the committed baseline: deterministic transfer counts.
		mkSeries("codec: I/O per query (block transfers)", func(m measured) float64 { return float64(m.io) }),
		// Recorded, never gated: wall-clock and physical bytes vary with
		// the hardware; the in-run gates above hold the compression win.
		mkSeries("codec: best wall-clock per query (ns)", func(m measured) float64 { return float64(m.ns) }),
		mkSeries("codec: physical bytes per query", func(m measured) float64 { return float64(m.physBytes) }),
		mkSeries("codec: blocks compressed per query", func(m measured) float64 { return float64(m.compressed) }),
	}, nil
}
