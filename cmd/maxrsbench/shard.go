package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"maxrs"
	"maxrs/internal/experiments"
	"maxrs/internal/geom"
	"maxrs/internal/workload"
)

// shardBenchConfig parameterizes the -exp=shard mode: the sharded engine
// (DESIGN.md §9) against the unsharded reference on the paper's Uniform
// and Gaussian workloads. The run is a regression gate first and a
// benchmark second: it asserts bit-identical best scores for K = 1, 2,
// 4, 8 versus the unsharded engine (unit weights make every partial sum
// exact, so "identical" means identical to the last bit), and that each
// sharded query's per-shard stats add up to its reported total. It then
// reports io/op (deterministic block transfers — the baseline-gated
// metric), best wall-clock, and halo duplication, so `-json=BENCH_4.json`
// leaves a machine-readable perf-trajectory record.
type shardBenchConfig struct {
	objects int
	iters   int // timing iterations per point (best-of)
	seed    int64
	memory  int // per-engine EM budget M in bytes
	par     int
	out     io.Writer
}

// shardCounts are the measured shard counts; 0 is the unsharded
// reference engine.
var shardCounts = []int{0, 1, 2, 4, 8}

// runShard measures every (workload, K) point and returns the metric
// series.
func runShard(cfg shardBenchConfig) ([]experiments.Series, error) {
	if cfg.iters < 1 {
		cfg.iters = 1
	}
	extent := 4 * float64(cfg.objects)
	queryEdge := extent / 1000
	loads := []struct {
		name string
		objs []geom.Object
	}{
		{"uniform", workload.Uniform(cfg.seed, cfg.objects, extent)},
		{"gaussian", workload.Gaussian(cfg.seed, cfg.objects, extent)},
	}

	fmt.Fprintf(cfg.out, "shard: %d objects per workload, M=%dKB, B=%d, query %gx%g, %d iterations, parallelism %d\n",
		cfg.objects, cfg.memory/1024, experiments.DefaultBlockSize, queryEdge, queryEdge, cfg.iters, cfg.par)
	fmt.Fprintf(cfg.out, "%-10s %8s %12s %12s %12s %10s\n",
		"workload", "K", "io/op", "best ns/op", "routed", "score")

	type measured struct {
		io     uint64
		ns     int64
		routed int64 // objects across all shards, halo copies included
		score  float64
	}
	results := map[string][]measured{}

	for _, load := range loads {
		objs := make([]maxrs.Object, len(load.objs))
		for i, o := range load.objs {
			objs[i] = maxrs.Object{X: o.X, Y: o.Y, Weight: o.W}
		}
		points := make([]measured, 0, len(shardCounts))
		for _, k := range shardCounts {
			var m measured
			m.ns = int64(1) << 62
			for it := 0; it < cfg.iters; it++ {
				eng, err := maxrs.NewEngine(&maxrs.Options{
					BlockSize:   experiments.DefaultBlockSize,
					Memory:      cfg.memory,
					Parallelism: cfg.par,
					Shards:      k,
				})
				if err != nil {
					return nil, err
				}
				ds, err := eng.Load(context.Background(), objs)
				if err != nil {
					_ = eng.Close()
					return nil, err
				}
				eng.ResetStats()
				start := time.Now()
				res, err := eng.MaxRS(context.Background(), ds, queryEdge, queryEdge)
				elapsed := time.Since(start)
				if err != nil {
					_ = eng.Close()
					return nil, fmt.Errorf("shard: %s K=%d: %w", load.name, k, err)
				}
				// Aggregation invariant: with a single query since
				// ResetStats, the engine-global total (primary disk +
				// shard-disk traffic) must equal the per-query total.
				if g, q := eng.Stats().Total(), res.Stats.Total(); g != q {
					_ = eng.Close()
					return nil, fmt.Errorf("shard: %s K=%d: engine total %d != query total %d",
						load.name, k, g, q)
				}
				if err := eng.Close(); err != nil {
					return nil, err
				}
				m.io = res.Stats.Total()
				if ns := elapsed.Nanoseconds(); ns < m.ns {
					m.ns = ns
				}
				m.routed = int64(len(objs))
				if k >= 1 {
					m.routed = 0
					for _, s := range res.ShardStats {
						m.routed += s.Objects
					}
				}
				m.score = res.Score
			}
			points = append(points, m)
			fmt.Fprintf(cfg.out, "%-10s %8d %12d %12d %12d %10.0f\n",
				load.name, k, m.io, m.ns, m.routed, m.score)
		}
		// The gate: every shard count returns the unsharded score, bit
		// for bit.
		for i, k := range shardCounts {
			if points[i].score != points[0].score {
				return nil, fmt.Errorf("shard: %s K=%d score %g differs from unsharded %g",
					load.name, k, points[i].score, points[0].score)
			}
		}
		results[load.name] = points
	}
	fmt.Fprintf(cfg.out, "scores bit-identical across K=%v on every workload ✓\n", shardCounts)

	xs := make([]float64, len(shardCounts))
	for i, k := range shardCounts {
		xs[i] = float64(k)
	}
	order := make([]string, 0, len(loads))
	for _, l := range loads {
		order = append(order, l.name)
	}
	mkSeries := func(title string, val func(measured) float64) experiments.Series {
		s := experiments.Series{
			Title:  title,
			XLabel: "shards (0 = unsharded)",
			X:      xs,
			Order:  order,
			Values: map[string][]float64{},
		}
		for _, l := range loads {
			vals := make([]float64, len(shardCounts))
			for i, m := range results[l.name] {
				vals[i] = val(m)
			}
			s.Values[l.name] = vals
		}
		return s
	}
	return []experiments.Series{
		mkSeries("shard: I/O per query (block transfers)", func(m measured) float64 { return float64(m.io) }),
		mkSeries("shard: best wall-clock per query (ns)", func(m measured) float64 { return float64(m.ns) }),
		mkSeries("shard: halo duplication (routed objects / input objects)", func(m measured) float64 {
			return float64(m.routed) / float64(cfg.objects)
		}),
	}, nil
}
