package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maxrs/internal/experiments"
)

// benchSummary builds a minimal summary with one gated I/O series and
// one wall-clock series that must never gate.
func benchSummary(ioVal, nsVal float64) jsonSummary {
	return jsonSummary{
		Scale: 0.05, BufScale: 0.05, Seed: 2012,
		Experiments: []jsonExperiment{{
			Name: "shard",
			Series: []experiments.Series{
				{
					Title:  "shard: I/O per query (block transfers)",
					X:      []float64{0, 2},
					Values: map[string][]float64{"uniform": {ioVal, ioVal - 1}},
				},
				{
					Title:  "shard: best wall-clock per query (ns)",
					X:      []float64{0, 2},
					Values: map[string][]float64{"uniform": {nsVal, nsVal}},
				},
			},
		}},
	}
}

func writeBaseline(t *testing.T, sum jsonSummary) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaseline(t *testing.T) {
	base := benchSummary(1000, 5e6)
	path := writeBaseline(t, base)

	// Identical run: passes.
	if err := compareBaseline(io.Discard, path, benchSummary(1000, 5e6)); err != nil {
		t.Fatalf("identical run failed the gate: %v", err)
	}
	// Fewer transfers: passes (improvement).
	if err := compareBaseline(io.Discard, path, benchSummary(900, 5e6)); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
	// More transfers: fails.
	err := compareBaseline(io.Discard, path, benchSummary(1001, 5e6))
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("transfer increase passed the gate: %v", err)
	}
	// Slower wall-clock alone: passes — ns is machine-dependent.
	if err := compareBaseline(io.Discard, path, benchSummary(1000, 9e9)); err != nil {
		t.Fatalf("wall-clock noise failed the gate: %v", err)
	}
	// Mismatched workload configuration: refused.
	other := benchSummary(1000, 5e6)
	other.Scale = 1
	if err := compareBaseline(io.Discard, path, other); err == nil {
		t.Fatal("scale mismatch passed the gate")
	}
	// A run with nothing comparable: refused (the gate must not
	// silently pass when the experiments were not run).
	empty := jsonSummary{Scale: 0.05, BufScale: 0.05, Seed: 2012}
	if err := compareBaseline(io.Discard, path, empty); err == nil {
		t.Fatal("empty run passed the gate")
	}
	// Missing baseline file: surfaced.
	if err := compareBaseline(io.Discard, filepath.Join(t.TempDir(), "nope.json"), base); err == nil {
		t.Fatal("missing baseline passed the gate")
	}
}
