package main

import (
	"fmt"
	"io"
	"time"

	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/experiments"
	"maxrs/internal/rec"
	"maxrs/internal/workload"
)

// fusionConfig parameterizes the -exp=fusion mode: a head-to-head of the
// fused root pipeline (DESIGN.md §8) against the materializing one, on the
// in-memory and the file-backed disk, with and without stream pipelining.
// The run doubles as a regression gate: it asserts bit-identical results
// across all six variants, the golden transfer-saving floor of the
// fusion, and count-invariance of prefetch/write-behind — then reports
// io/op, ns/op and pipeline coverage so `-json=BENCH_3.json` leaves a
// machine-readable perf-trajectory record.
type fusionConfig struct {
	objects int
	iters   int // timing iterations per variant (best-of)
	seed    int64
	memory  int // EM budget M in bytes
	par     int
	out     io.Writer
}

// fusionVariant is one measured configuration.
type fusionVariant struct {
	name       string
	fileBacked bool
	unfused    bool
	pipeline   bool
}

var fusionVariants = []fusionVariant{
	{name: "mem/unfused", unfused: true},
	{name: "mem/fused"},
	{name: "disk/unfused/sync", fileBacked: true, unfused: true},
	{name: "disk/fused/sync", fileBacked: true},
	{name: "disk/fused/pipelined", fileBacked: true, pipeline: true},
	{name: "disk/unfused/pipelined", fileBacked: true, unfused: true, pipeline: true},
}

// runFusion measures every variant and returns the three metric series.
func runFusion(cfg fusionConfig) ([]experiments.Series, error) {
	if cfg.iters < 1 {
		cfg.iters = 1
	}
	objs := workload.Uniform(cfg.seed, cfg.objects, 4*float64(cfg.objects))
	queryEdge := 4 * float64(cfg.objects) / 1000

	fmt.Fprintf(cfg.out, "fusion: %d uniform objects, M=%dKB, B=%d, query %gx%g, %d iterations, parallelism %d\n",
		cfg.objects, cfg.memory/1024, experiments.DefaultBlockSize, queryEdge, queryEdge, cfg.iters, cfg.par)
	fmt.Fprintf(cfg.out, "%-24s %12s %12s %12s %12s\n", "variant", "io/op", "best ns/op", "pre-reads", "wb-writes")

	type measured struct {
		io       uint64
		ns       int64
		preReads float64 // prefetched reads / total reads
		wbWrites float64 // write-behind writes / total writes
		region   [4]float64
		sum      float64
	}
	results := make([]measured, len(fusionVariants))

	for vi, v := range fusionVariants {
		var m measured
		m.ns = int64(1) << 62
		for it := 0; it < cfg.iters; it++ {
			var (
				d   *em.Disk
				err error
			)
			if v.fileBacked {
				d, err = em.NewFileBackedDisk("", experiments.DefaultBlockSize)
				if err != nil {
					return nil, err
				}
			} else {
				d, err = em.NewDisk(experiments.DefaultBlockSize)
				if err != nil {
					return nil, err
				}
			}
			d.SetPipelining(v.pipeline)
			env := em.Env{Disk: d, M: cfg.memory}
			f, err := workload.Write(d, objs)
			if err != nil {
				_ = d.Close()
				return nil, err
			}
			solver, err := core.NewSolver(env, core.Config{Parallelism: cfg.par, Unfused: v.unfused})
			if err != nil {
				_ = d.Close()
				return nil, err
			}
			d.ResetStats()
			start := time.Now()
			res, err := solver.SolveObjects(f, queryEdge, queryEdge)
			elapsed := time.Since(start)
			if err != nil {
				_ = d.Close()
				return nil, fmt.Errorf("fusion: %s: %w", v.name, err)
			}
			stats := d.Stats()
			pr, pw := d.PipelineStats()
			if err := d.Close(); err != nil {
				return nil, err
			}
			m.io = stats.Total()
			if ns := elapsed.Nanoseconds(); ns < m.ns {
				m.ns = ns
			}
			if stats.Reads > 0 {
				m.preReads = float64(pr) / float64(stats.Reads)
			}
			if stats.Writes > 0 {
				m.wbWrites = float64(pw) / float64(stats.Writes)
			}
			m.region = [4]float64{res.Region.X.Lo, res.Region.X.Hi, res.Region.Y.Lo, res.Region.Y.Hi}
			m.sum = res.Sum
		}
		results[vi] = m
		fmt.Fprintf(cfg.out, "%-24s %12d %12d %11.1f%% %11.1f%%\n",
			v.name, m.io, m.ns, 100*m.preReads, 100*m.wbWrites)
	}

	// Invariants (DESIGN.md §8). 1: every variant returns the same answer.
	for vi := 1; vi < len(results); vi++ {
		if results[vi].region != results[0].region || results[vi].sum != results[0].sum {
			return nil, fmt.Errorf("fusion: %s result differs from %s",
				fusionVariants[vi].name, fusionVariants[0].name)
		}
	}
	byName := func(name string) measured {
		for vi, v := range fusionVariants {
			if v.name == name {
				return results[vi]
			}
		}
		panic("unknown variant " + name)
	}
	// 2: io/op depends only on fused/unfused — never on the backend or on
	// pipelining.
	for _, pair := range [][2]string{
		{"mem/fused", "disk/fused/sync"},
		{"disk/fused/sync", "disk/fused/pipelined"},
		{"mem/unfused", "disk/unfused/sync"},
		{"disk/unfused/sync", "disk/unfused/pipelined"},
	} {
		if a, b := byName(pair[0]), byName(pair[1]); a.io != b.io {
			return nil, fmt.Errorf("fusion: io/op %d (%s) != %d (%s)", a.io, pair[0], b.io, pair[1])
		}
	}
	// 3: the fusion saves at least four event-stream passes and two
	// edge-stream passes at the root (the golden floor of
	// core.TestFusionEquivalence).
	blockOf := func(bytes int) uint64 {
		return uint64((bytes + experiments.DefaultBlockSize - 1) / experiments.DefaultBlockSize)
	}
	minSaving := 4*blockOf(2*cfg.objects*rec.PieceEventCodec{}.Size()) +
		2*blockOf(4*cfg.objects*rec.Float64Codec{}.Size())
	fusedIO, unfusedIO := byName("mem/fused").io, byName("mem/unfused").io
	if fusedIO >= unfusedIO || unfusedIO-fusedIO < minSaving {
		return nil, fmt.Errorf("fusion: saving %d transfers < asserted floor %d (fused %d, unfused %d)",
			unfusedIO-fusedIO, minSaving, fusedIO, unfusedIO)
	}
	fmt.Fprintf(cfg.out, "results identical, io/op backend- and pipeline-invariant, fusion saves %d ≥ %d transfers ✓\n",
		unfusedIO-fusedIO, minSaving)

	names := make([]string, len(fusionVariants))
	for i, v := range fusionVariants {
		names[i] = v.name
	}
	mkSeries := func(title string, val func(measured) float64) experiments.Series {
		s := experiments.Series{
			Title:  title,
			XLabel: "variant",
			X:      []float64{1},
			Order:  names,
			Values: map[string][]float64{},
		}
		for i, v := range fusionVariants {
			s.Values[v.name] = []float64{val(results[i])}
		}
		return s
	}
	return []experiments.Series{
		mkSeries("fusion: I/O per query (block transfers)", func(m measured) float64 { return float64(m.io) }),
		mkSeries("fusion: best wall-clock per query (ns)", func(m measured) float64 { return float64(m.ns) }),
		mkSeries("fusion: prefetch coverage (reads via read-ahead)", func(m measured) float64 { return m.preReads }),
		mkSeries("fusion: write-behind coverage (writes via background)", func(m measured) float64 { return m.wbWrites }),
	}, nil
}
