// Command maxrsbench regenerates the tables and figures of the paper's
// evaluation (§7). Each experiment prints the same rows/series the paper
// reports, measured on the EM simulator.
//
// Usage:
//
//	maxrsbench -exp=all                 # everything, paper scale
//	maxrsbench -exp=fig12 -scale=0.1    # one figure at 10% cardinality
//	maxrsbench -exp=fig13,fig17
//
// At -scale below 1 the buffer sizes shrink with the data (-bufscale
// defaults to -scale) so the baselines stay on their external paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"maxrs/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated: table2,table3,fig12,fig13,fig14,fig15,fig16,fig17,all")
		scale     = flag.Float64("scale", 1.0, "cardinality scale factor (1 = paper scale)")
		bufscale  = flag.Float64("bufscale", 0, "buffer scale factor (default: same as -scale)")
		seed      = flag.Int64("seed", 2012, "data generation seed")
		oracleCap = flag.Int("oraclecap", 50000, "max points fed to the exact MaxCRS oracle (fig17)")
	)
	flag.Parse()
	if *bufscale == 0 {
		*bufscale = *scale
	}
	cfg := experiments.Config{
		Scale:     *scale,
		BufScale:  *bufscale,
		Seed:      *seed,
		OracleCap: *oracleCap,
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("maxrsbench: scale=%g bufscale=%g seed=%d\n\n", *scale, *bufscale, *seed)
	run("table2", func() error { experiments.Table2(os.Stdout, cfg); return nil })
	run("table3", func() error { experiments.Table3(os.Stdout); return nil })
	multi := func(fn func(experiments.Config) ([]experiments.Series, error)) func() error {
		return func() error {
			series, err := fn(cfg)
			if err != nil {
				return err
			}
			for _, s := range series {
				experiments.Render(os.Stdout, s)
			}
			return nil
		}
	}
	run("fig12", multi(experiments.Fig12))
	run("fig13", multi(experiments.Fig13))
	run("fig14", multi(experiments.Fig14))
	run("fig15", multi(experiments.Fig15))
	run("fig16", multi(experiments.Fig16))
	run("fig17", func() error {
		s, err := experiments.Fig17(cfg)
		if err != nil {
			return err
		}
		experiments.Render(os.Stdout, s)
		return nil
	})
}
