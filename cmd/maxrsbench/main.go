// Command maxrsbench regenerates the tables and figures of the paper's
// evaluation (§7). Each experiment prints the same rows/series the paper
// reports, measured on the EM simulator.
//
// Usage:
//
//	maxrsbench -exp=all                 # everything, paper scale
//	maxrsbench -exp=fig12 -scale=0.1    # one figure at 10% cardinality
//	maxrsbench -exp=fig13,fig17
//	maxrsbench -exp=all -parallel=8     # panel points on 8 goroutines
//	maxrsbench -exp=fig12 -json=BENCH_fig12.json
//	maxrsbench -exp=fusion -json=BENCH_3.json   # fused-vs-unfused record
//
// At -scale below 1 the buffer sizes shrink with the data (-bufscale
// defaults to -scale) so the baselines stay on their external paths.
// Measured transfer counts are identical at every -parallel value; the
// flag trades wall-clock time only (DESIGN.md §6).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"maxrs/internal/experiments"
)

// jsonExperiment is one experiment's entry in the -json summary.
type jsonExperiment struct {
	Name      string               `json:"name"`
	ElapsedMS int64                `json:"elapsed_ms"`
	Series    []experiments.Series `json:"series,omitempty"`
}

// jsonSummary is the BENCH_*.json payload: enough to track the perf and
// I/O trajectory across revisions without re-parsing the text tables.
type jsonSummary struct {
	Bench       string           `json:"bench"`
	Scale       float64          `json:"scale"`
	BufScale    float64          `json:"bufscale"`
	Seed        int64            `json:"seed"`
	Parallelism int              `json:"parallelism"`
	TotalMS     int64            `json:"total_ms"`
	Experiments []jsonExperiment `json:"experiments"`
}

// parseLevels parses the -loadlevels list of goroutine counts.
func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad goroutine count %q", part)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("no levels in %q", s)
	}
	return levels, nil
}

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated: table2,table3,fig12,fig13,fig14,fig15,fig16,fig17,all,load,fusion,shard,fault,plan,dist,incr,codec (load, fusion, shard, fault, plan, dist, incr and codec are never part of all)")
		scale      = flag.Float64("scale", 1.0, "cardinality scale factor (1 = paper scale)")
		bufscale   = flag.Float64("bufscale", 0, "buffer scale factor (default: same as -scale)")
		seed       = flag.Int64("seed", 2012, "data generation seed")
		oracleCap  = flag.Int("oraclecap", 50000, "max points fed to the exact MaxCRS oracle (fig17)")
		parallel   = flag.Int("parallel", 0, "worker goroutines for panel points and the solver (0 = GOMAXPROCS, 1 = sequential)")
		jsonPath   = flag.String("json", "", "also write a BENCH_*.json summary to this path")
		baseline   = flag.String("baseline", "", "compare this run's I/O metrics against a committed BENCH summary and exit 1 on any increase (the CI perf-regression gate)")
		loadObjs   = flag.Int("loadobjs", 20000, "load mode: dataset cardinality")
		loadQuery  = flag.Int("loadqueries", 64, "load mode: queries per concurrency level")
		loadLevels = flag.String("loadlevels", "1,2,4,8", "load mode: comma-separated query-goroutine counts")
	)
	flag.Parse()
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "maxrsbench: -parallel=%d must be ≥ 0 (0 = GOMAXPROCS)\n", *parallel)
		os.Exit(2)
	}
	if *bufscale == 0 {
		*bufscale = *scale
	}
	cfg := experiments.Config{
		Scale:       *scale,
		BufScale:    *bufscale,
		Seed:        *seed,
		OracleCap:   *oracleCap,
		Parallelism: *parallel,
	}

	registered := []string{
		"all", "table2", "table3", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"load", "fusion", "shard", "fault", "plan", "dist", "incr", "codec",
	}
	known := map[string]bool{}
	for _, name := range registered {
		known[name] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		name := strings.TrimSpace(strings.ToLower(e))
		if name == "" {
			continue
		}
		if !known[name] {
			fmt.Fprintf(os.Stderr, "maxrsbench: unknown experiment %q; registered: %s\n",
				name, strings.Join(registered, ", "))
			os.Exit(2)
		}
		want[name] = true
	}
	all := want["all"]
	summary := jsonSummary{
		Bench:       "maxrsbench",
		Scale:       *scale,
		BufScale:    *bufscale,
		Seed:        *seed,
		Parallelism: *parallel,
	}
	started := time.Now()
	writeSummary := func() {
		if *jsonPath == "" {
			return
		}
		summary.TotalMS = time.Since(started).Milliseconds()
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[json summary written to %s]\n", *jsonPath)
	}
	// finish ends the run: write the JSON summary, then gate on the
	// committed baseline (deterministic transfer counts only — see
	// compareBaseline) when -baseline is set.
	finish := func() {
		writeSummary()
		if *baseline != "" {
			if err := compareBaseline(os.Stdout, *baseline, summary); err != nil {
				fmt.Fprintf(os.Stderr, "maxrsbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	// scaledWorkload sizes the fusion and shard gate workloads from the
	// shared flags — one definition, so the two experiments' baselines
	// stay comparable.
	scaledWorkload := func() (n, mem int) {
		n = int(float64(experiments.DefaultCardinality) * *scale)
		if n < 2000 {
			n = 2000 // keep the workload non-trivial at tiny scales
		}
		mem = int(float64(experiments.DefaultBufSynthetic) * *bufscale)
		if mem < 8*experiments.DefaultBlockSize {
			mem = 8 * experiments.DefaultBlockSize
		}
		return n, mem
	}
	if want["shard"] {
		n, mem := scaledWorkload()
		start := time.Now()
		series, err := runShard(shardBenchConfig{
			objects: n,
			iters:   3,
			seed:    *seed,
			memory:  mem,
			par:     *parallel,
			out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "shard: %v\n", err)
			os.Exit(1)
		}
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      "shard",
			ElapsedMS: time.Since(start).Milliseconds(),
			Series:    series,
		})
		delete(want, "shard")
		if len(want) == 0 {
			finish()
			return
		}
		fmt.Println()
	}
	if want["fault"] {
		n, mem := scaledWorkload()
		start := time.Now()
		series, err := runFault(faultConfig{
			objects: n,
			iters:   3,
			seed:    *seed,
			memory:  mem,
			par:     *parallel,
			out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault: %v\n", err)
			os.Exit(1)
		}
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      "fault",
			ElapsedMS: time.Since(start).Milliseconds(),
			Series:    series,
		})
		delete(want, "fault")
		if len(want) == 0 {
			finish()
			return
		}
		fmt.Println()
	}
	if want["dist"] {
		n, mem := scaledWorkload()
		start := time.Now()
		series, err := runDist(distBenchConfig{
			objects: n,
			iters:   3,
			seed:    *seed,
			memory:  mem,
			par:     *parallel,
			out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist: %v\n", err)
			os.Exit(1)
		}
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      "dist",
			ElapsedMS: time.Since(start).Milliseconds(),
			Series:    series,
		})
		delete(want, "dist")
		if len(want) == 0 {
			finish()
			return
		}
		fmt.Println()
	}
	if want["plan"] {
		n, mem := scaledWorkload()
		start := time.Now()
		series, err := runPlan(planConfig{
			objects: n,
			seed:    *seed,
			memory:  mem,
			par:     *parallel,
			out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "plan: %v\n", err)
			os.Exit(1)
		}
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      "plan",
			ElapsedMS: time.Since(start).Milliseconds(),
			Series:    series,
		})
		delete(want, "plan")
		if len(want) == 0 {
			finish()
			return
		}
		fmt.Println()
	}
	if want["incr"] {
		n, mem := scaledWorkload()
		start := time.Now()
		series, err := runIncr(incrConfig{
			objects: n,
			seed:    *seed,
			memory:  mem,
			par:     *parallel,
			out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "incr: %v\n", err)
			os.Exit(1)
		}
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      "incr",
			ElapsedMS: time.Since(start).Milliseconds(),
			Series:    series,
		})
		delete(want, "incr")
		if len(want) == 0 {
			finish()
			return
		}
		fmt.Println()
	}
	if want["codec"] {
		n, mem := scaledWorkload()
		start := time.Now()
		series, err := runCodec(codecBenchConfig{
			objects: n,
			iters:   3,
			seed:    *seed,
			memory:  mem,
			par:     *parallel,
			out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "codec: %v\n", err)
			os.Exit(1)
		}
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      "codec",
			ElapsedMS: time.Since(start).Milliseconds(),
			Series:    series,
		})
		delete(want, "codec")
		if len(want) == 0 {
			finish()
			return
		}
		fmt.Println()
	}
	if want["fusion"] {
		n, mem := scaledWorkload()
		start := time.Now()
		series, err := runFusion(fusionConfig{
			objects: n,
			iters:   3,
			seed:    *seed,
			memory:  mem,
			par:     *parallel,
			out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusion: %v\n", err)
			os.Exit(1)
		}
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      "fusion",
			ElapsedMS: time.Since(start).Milliseconds(),
			Series:    series,
		})
		delete(want, "fusion")
		if len(want) == 0 {
			finish()
			return
		}
		fmt.Println()
	}
	if want["load"] {
		levels, err := parseLevels(*loadLevels)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maxrsbench: -loadlevels: %v\n", err)
			os.Exit(2)
		}
		start := time.Now()
		series, err := runLoad(loadConfig{
			objects: *loadObjs,
			queries: *loadQuery,
			levels:  levels,
			seed:    *seed,
			par:     *parallel,
			out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      "load",
			ElapsedMS: time.Since(start).Milliseconds(),
			Series:    []experiments.Series{series},
		})
		delete(want, "load")
		if len(want) == 0 {
			finish()
			return
		}
		fmt.Println()
	}
	run := func(name string, fn func() ([]experiments.Series, error)) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		series, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Printf("[%s done in %v]\n\n", name, elapsed.Round(time.Millisecond))
		summary.Experiments = append(summary.Experiments, jsonExperiment{
			Name:      name,
			ElapsedMS: elapsed.Milliseconds(),
			Series:    series,
		})
	}

	fmt.Printf("maxrsbench: scale=%g bufscale=%g seed=%d parallel=%d\n\n",
		*scale, *bufscale, *seed, *parallel)
	run("table2", func() ([]experiments.Series, error) { experiments.Table2(os.Stdout, cfg); return nil, nil })
	run("table3", func() ([]experiments.Series, error) { experiments.Table3(os.Stdout); return nil, nil })
	multi := func(fn func(experiments.Config) ([]experiments.Series, error)) func() ([]experiments.Series, error) {
		return func() ([]experiments.Series, error) {
			series, err := fn(cfg)
			if err != nil {
				return nil, err
			}
			for _, s := range series {
				experiments.Render(os.Stdout, s)
			}
			return series, nil
		}
	}
	run("fig12", multi(experiments.Fig12))
	run("fig13", multi(experiments.Fig13))
	run("fig14", multi(experiments.Fig14))
	run("fig15", multi(experiments.Fig15))
	run("fig16", multi(experiments.Fig16))
	run("fig17", func() ([]experiments.Series, error) {
		s, err := experiments.Fig17(cfg)
		if err != nil {
			return nil, err
		}
		experiments.Render(os.Stdout, s)
		return []experiments.Series{s}, nil
	})

	finish()
}
