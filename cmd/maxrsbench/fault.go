package main

import (
	"errors"
	"fmt"
	"io"
	"time"

	"maxrs/internal/core"
	"maxrs/internal/em"
	"maxrs/internal/experiments"
	"maxrs/internal/workload"
)

// faultConfig parameterizes the -exp=fault mode: the hardening-overhead and
// fault-recovery record (DESIGN.md §11). It answers two questions with one
// run. First, what do checksums, a retry policy, and an armed-but-silent
// fault injector cost at zero fault rate — the answer must be zero block
// transfers, asserted internally and gated by the -baseline comparator via
// the "(block transfers)" series. Second, how does the hardened stack
// behave at 0.1% and 1% transient fault rates — recovery wall-clock and
// retry counts, reported as ungated series since they are probabilistic
// and time-based.
type faultConfig struct {
	objects int
	iters   int // timing iterations per variant (best-of)
	seed    int64
	memory  int // EM budget M in bytes
	par     int
	out     io.Writer
}

// faultVariant is one measured configuration.
type faultVariant struct {
	name      string
	checksums bool
	retry     bool
	armed     bool    // install an injector (with the variant's rate)
	rate      float64 // transient read+write fault probability per transfer
}

var faultVariants = []faultVariant{
	{name: "plain"},
	{name: "checksummed", checksums: true},
	{name: "hardened/armed", checksums: true, retry: true, armed: true},
	{name: "recover/0.1%", checksums: true, retry: true, armed: true, rate: 0.001},
	{name: "recover/1%", checksums: true, retry: true, armed: true, rate: 0.01},
}

// faultRetryPolicy is the hardened variants' policy. The backoff is kept
// short so the recovery series measures the retry machinery, not sleep.
var faultRetryPolicy = em.RetryPolicy{
	MaxRetries: 8,
	BaseDelay:  50 * time.Microsecond,
	MaxDelay:   time.Millisecond,
}

// closeJoin closes d on an error path, folding its Close error into err.
func closeJoin(d *em.Disk, err error) error {
	return errors.Join(err, d.Close())
}

// runFault measures every variant and returns the metric series.
func runFault(cfg faultConfig) ([]experiments.Series, error) {
	if cfg.iters < 1 {
		cfg.iters = 1
	}
	objs := workload.Uniform(cfg.seed, cfg.objects, 4*float64(cfg.objects))
	queryEdge := 4 * float64(cfg.objects) / 1000

	fmt.Fprintf(cfg.out, "fault: %d uniform objects, M=%dKB, B=%d, query %gx%g, %d iterations, parallelism %d\n",
		cfg.objects, cfg.memory/1024, experiments.DefaultBlockSize, queryEdge, queryEdge, cfg.iters, cfg.par)
	fmt.Fprintf(cfg.out, "%-16s %12s %12s %10s %10s\n", "variant", "io/op", "best ns/op", "injected", "retries")

	type measured struct {
		io       uint64
		ns       int64
		injected uint64 // transients fired by the injector (last iteration)
		retries  uint64 // read+write retry attempts (last iteration)
		region   [4]float64
		sum      float64
	}
	results := make([]measured, len(faultVariants))

	for vi, v := range faultVariants {
		var m measured
		m.ns = int64(1) << 62
		for it := 0; it < cfg.iters; it++ {
			d, err := em.NewDisk(experiments.DefaultBlockSize)
			if err != nil {
				return nil, err
			}
			d.SetChecksums(v.checksums)
			if v.retry {
				d.SetRetryPolicy(faultRetryPolicy)
			}
			if v.armed {
				d.InjectFaults(em.FaultPlan{
					Seed:               cfg.seed + int64(it),
					TransientReadRate:  v.rate,
					TransientWriteRate: v.rate,
				})
			}
			env := em.Env{Disk: d, M: cfg.memory}
			f, err := workload.Write(d, objs)
			if err != nil {
				return nil, closeJoin(d, err)
			}
			solver, err := core.NewSolver(env, core.Config{Parallelism: cfg.par})
			if err != nil {
				return nil, closeJoin(d, err)
			}
			d.ResetStats()
			start := time.Now()
			res, err := solver.SolveObjects(f, queryEdge, queryEdge)
			elapsed := time.Since(start)
			if err != nil {
				return nil, closeJoin(d, fmt.Errorf("fault: %s: %w", v.name, err))
			}
			stats := d.Stats()
			fs := d.FaultStats()
			if err := d.Close(); err != nil {
				return nil, err
			}
			m.io = stats.Total()
			if ns := elapsed.Nanoseconds(); ns < m.ns {
				m.ns = ns
			}
			m.injected = fs.InjectedTransient
			m.retries = fs.ReadRetries + fs.WriteRetries
			m.region = [4]float64{res.Region.X.Lo, res.Region.X.Hi, res.Region.Y.Lo, res.Region.Y.Hi}
			m.sum = res.Sum
		}
		results[vi] = m
		fmt.Fprintf(cfg.out, "%-16s %12d %12d %10d %10d\n",
			v.name, m.io, m.ns, m.injected, m.retries)
	}

	// Invariants (DESIGN.md §11). 1: every variant — including those that
	// recovered from injected faults — returns the same answer.
	for vi := 1; vi < len(results); vi++ {
		if results[vi].region != results[0].region || results[vi].sum != results[0].sum {
			return nil, fmt.Errorf("fault: %s result differs from %s",
				faultVariants[vi].name, faultVariants[0].name)
		}
	}
	// 2: io/op is identical across every variant. Checksums live in disk
	// metadata, the counters count successful transfers only, so neither
	// hardening nor recovered transient faults may change the counted
	// schedule.
	for vi := 1; vi < len(results); vi++ {
		if results[vi].io != results[0].io {
			return nil, fmt.Errorf("fault: io/op %d (%s) != %d (%s)",
				results[vi].io, faultVariants[vi].name, results[0].io, faultVariants[0].name)
		}
	}
	// 3: the recovery variants actually exercised the fault path — faults
	// fired and every one of them was retried into success.
	for vi, v := range faultVariants {
		if v.rate == 0 {
			if results[vi].injected != 0 || results[vi].retries != 0 {
				return nil, fmt.Errorf("fault: %s fired %d faults / %d retries at rate 0",
					v.name, results[vi].injected, results[vi].retries)
			}
			continue
		}
		if results[vi].injected == 0 {
			return nil, fmt.Errorf("fault: %s injected no faults at rate %g", v.name, v.rate)
		}
		if results[vi].retries < results[vi].injected {
			return nil, fmt.Errorf("fault: %s retried %d < %d injected",
				v.name, results[vi].retries, results[vi].injected)
		}
	}
	fmt.Fprintf(cfg.out, "results identical, io/op hardening- and fault-invariant, recovery exercised ✓\n")

	names := make([]string, len(faultVariants))
	for i, v := range faultVariants {
		names[i] = v.name
	}
	mkSeries := func(title string, val func(measured) float64) experiments.Series {
		s := experiments.Series{
			Title:  title,
			XLabel: "variant",
			X:      []float64{1},
			Order:  names,
			Values: map[string][]float64{},
		}
		for i, v := range faultVariants {
			s.Values[v.name] = []float64{val(results[i])}
		}
		return s
	}
	// Only the transfer-count series carries the "(block transfers)"
	// marker: it is deterministic and the -baseline comparator gates it.
	// Wall-clock and retry counts vary run to run and stay ungated.
	return []experiments.Series{
		mkSeries("fault: I/O per query (block transfers)", func(m measured) float64 { return float64(m.io) }),
		mkSeries("fault: best wall-clock per query (ns)", func(m measured) float64 { return float64(m.ns) }),
		mkSeries("fault: injected transients per query", func(m measured) float64 { return float64(m.injected) }),
		mkSeries("fault: retries per query", func(m measured) float64 { return float64(m.retries) }),
	}, nil
}
