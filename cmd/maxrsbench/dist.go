package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"maxrs"
	"maxrs/internal/dist"
	"maxrs/internal/experiments"
	"maxrs/internal/geom"
	"maxrs/internal/workload"
)

// distBenchConfig parameterizes the -exp=dist mode: the distributed
// fan-out record (DESIGN.md §13). It answers two questions with one run.
// First, what does shipping shards to workers cost over solving the same
// shards in process — coordinator-side block transfers (gated by the
// -baseline comparator) and wall-clock (ungated). Second, what does
// recovery cost when the network misbehaves: deterministic exact-call
// faults (a refused connection, a corrupted reply) must be retried into
// the bit-identical answer, and a seeded random fault mix must too.
type distBenchConfig struct {
	objects int
	iters   int // timing iterations per variant (best-of)
	seed    int64
	memory  int // EM budget M in bytes
	par     int
	out     io.Writer
}

// distVariant is one measured configuration.
type distVariant struct {
	name        string
	distributed bool
	faults      maxrs.NetFaultPlan
	// wantInjected requires the plan to have actually fired ≥ 1 fault —
	// the recovery-exercised invariant for the exact-schedule variants.
	wantInjected bool
}

const distShards = 4

func distVariants(seed int64) []distVariant {
	return []distVariant{
		{name: "inprocess"},
		{name: "dist/clean", distributed: true},
		{name: "dist/conn@1", distributed: true, wantInjected: true,
			faults: maxrs.NetFaultPlan{At: []maxrs.NetFaultAt{{Call: 1, Kind: maxrs.NetFaultConn}}}},
		{name: "dist/corrupt@2", distributed: true, wantInjected: true,
			faults: maxrs.NetFaultPlan{At: []maxrs.NetFaultAt{{Call: 2, Kind: maxrs.NetFaultCorrupt}}}},
		{name: "dist/mixed-1%", distributed: true,
			faults: maxrs.NetFaultPlan{Seed: seed, ConnRate: 0.005, CorruptRate: 0.005}},
	}
}

// startBenchWorker runs a worker over its own engine and disk — the
// same /shard/solve contract maxrsd serves, minus the HTTP server
// around it — so the bench measures the protocol, not maxrsd's cache
// and admission layers.
func startBenchWorker(memory, par int) (*httptest.Server, *maxrs.Engine, error) {
	eng, err := maxrs.NewEngine(&maxrs.Options{
		BlockSize:   experiments.DefaultBlockSize,
		Memory:      memory,
		Parallelism: par,
	})
	if err != nil {
		return nil, nil, err
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == dist.PathReady {
			w.WriteHeader(http.StatusOK)
			return
		}
		req, err := dist.DecodeRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		objs := make([]maxrs.Object, len(req.Objects))
		for i, o := range req.Objects {
			objs[i] = maxrs.Object{X: o.X, Y: o.Y, Weight: o.W}
		}
		ds, err := eng.Load(r.Context(), objs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer func() { _ = ds.Release() }()
		res, err := eng.MaxRS(r.Context(), ds, req.W, req.H,
			maxrs.WithShards(0), maxrs.WithUnfused(req.Unfused))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = dist.WriteReply(w, dist.SolveReply{
			Sum: res.Score,
			Region: geom.Rect{
				X: geom.Interval{Lo: res.Region.MinX, Hi: res.Region.MaxX},
				Y: geom.Interval{Lo: res.Region.MinY, Hi: res.Region.MaxY},
			},
			Reads:  res.Stats.Reads,
			Writes: res.Stats.Writes,
		})
	}))
	return ts, eng, nil
}

// runDist measures every variant and returns the metric series.
func runDist(cfg distBenchConfig) ([]experiments.Series, error) {
	if cfg.iters < 1 {
		cfg.iters = 1
	}
	gobjs := workload.Uniform(cfg.seed, cfg.objects, 4*float64(cfg.objects))
	objs := make([]maxrs.Object, len(gobjs))
	for i, o := range gobjs {
		objs[i] = maxrs.Object{X: o.X, Y: o.Y, Weight: o.W}
	}
	queryEdge := 4 * float64(cfg.objects) / 1000

	// Two long-lived workers shared by every distributed variant; each
	// request loads, solves, and releases its shard, so no state leaks
	// between variants.
	var workers []maxrs.WorkerAddr
	for i := 0; i < 2; i++ {
		ts, eng, err := startBenchWorker(cfg.memory, cfg.par)
		if err != nil {
			return nil, err
		}
		defer ts.Close()
		defer eng.Close()
		workers = append(workers, maxrs.WorkerAddr{Name: fmt.Sprintf("w%d", i), URL: ts.URL})
	}

	variants := distVariants(cfg.seed)
	fmt.Fprintf(cfg.out, "dist: %d uniform objects, M=%dKB, B=%d, query %gx%g, K=%d over %d workers, %d iterations\n",
		cfg.objects, cfg.memory/1024, experiments.DefaultBlockSize, queryEdge, queryEdge, distShards, len(workers), cfg.iters)
	fmt.Fprintf(cfg.out, "%-16s %12s %12s %9s %9s %9s\n", "variant", "coord io/op", "best ns/op", "netcalls", "injected", "fellback")

	type measured struct {
		io       uint64
		ns       int64
		calls    uint64
		injected uint64
		fellback int
		region   maxrs.Rect
		score    float64
	}
	results := make([]measured, len(variants))

	for vi, v := range variants {
		var m measured
		m.ns = int64(1) << 62
		for it := 0; it < cfg.iters; it++ {
			// A fresh engine per iteration restarts the fault plan's call
			// counter, so exact-At schedules fire every iteration and the
			// per-query counters are iteration-invariant.
			opts := &maxrs.Options{
				BlockSize:   experiments.DefaultBlockSize,
				Memory:      cfg.memory,
				Parallelism: cfg.par,
				Shards:      distShards,
			}
			if v.distributed {
				opts.Dist = &maxrs.DistOptions{
					Workers: workers,
					Retry: maxrs.RetryPolicy{
						MaxRetries: 4,
						BaseDelay:  200 * time.Microsecond,
						MaxDelay:   2 * time.Millisecond,
						JitterSeed: cfg.seed,
					},
					NetFaults: v.faults,
				}
			}
			eng, err := maxrs.NewEngine(opts)
			if err != nil {
				return nil, err
			}
			ds, err := eng.Load(context.Background(), objs)
			if err != nil {
				return nil, errJoinClose(eng, err)
			}
			start := time.Now()
			res, err := eng.MaxRS(context.Background(), ds, queryEdge, queryEdge)
			elapsed := time.Since(start)
			if err != nil {
				return nil, errJoinClose(eng, fmt.Errorf("dist: %s: %w", v.name, err))
			}
			ns := eng.NetFaultStats()
			m.io = res.Stats.Total()
			if e := elapsed.Nanoseconds(); e < m.ns {
				m.ns = e
			}
			m.calls = ns.Calls
			m.injected = ns.InjectedConn + ns.InjectedDisconnect + ns.InjectedCorrupt + ns.InjectedLatency
			m.fellback = 0
			for _, sh := range res.ShardStats {
				if sh.FellBack {
					m.fellback++
				}
			}
			m.region = res.Region
			m.score = res.Score
			if err := eng.Close(); err != nil {
				return nil, err
			}
		}
		results[vi] = m
		fmt.Fprintf(cfg.out, "%-16s %12d %12d %9d %9d %9d\n",
			v.name, m.io, m.ns, m.calls, m.injected, m.fellback)
	}

	// Invariants (DESIGN.md §13). 1: every variant — in-process, clean
	// fan-out, and all recovered fault drills — returns the identical
	// answer. This is the exactness claim distributed mode rests on.
	for vi := 1; vi < len(results); vi++ {
		if results[vi].region != results[0].region || results[vi].score != results[0].score {
			return nil, fmt.Errorf("dist: %s result (%v, %g) differs from %s (%v, %g)",
				variants[vi].name, results[vi].region, results[vi].score,
				variants[0].name, results[0].region, results[0].score)
		}
	}
	// 2: the exact-schedule drills exercised recovery — their fault fired
	// and the query still succeeded (checked above) without falling back
	// to a local solve (retries, not degradation, absorbed it).
	for vi, v := range variants {
		if v.wantInjected && results[vi].injected == 0 {
			return nil, fmt.Errorf("dist: %s fired no faults", v.name)
		}
		if v.wantInjected && results[vi].fellback != 0 {
			return nil, fmt.Errorf("dist: %s fell back on %d shards; retries should have recovered",
				v.name, results[vi].fellback)
		}
	}
	// 3: the clean fan-out used exactly one call per shard and no
	// degradation path.
	cleanIdx := 1
	if results[cleanIdx].calls != distShards || results[cleanIdx].fellback != 0 {
		return nil, fmt.Errorf("dist: clean fan-out made %d calls (%d fallbacks), want %d calls, 0 fallbacks",
			results[cleanIdx].calls, results[cleanIdx].fellback, distShards)
	}
	fmt.Fprintf(cfg.out, "results bit-identical across all variants, recovery exercised ✓\n")

	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	mkSeries := func(title string, include func(distVariant) bool, val func(measured) float64) experiments.Series {
		s := experiments.Series{
			Title:  title,
			XLabel: "variant",
			X:      []float64{1},
			Values: map[string][]float64{},
		}
		for i, v := range variants {
			if !include(v) {
				continue
			}
			s.Order = append(s.Order, names[i])
			s.Values[v.name] = []float64{val(results[i])}
		}
		return s
	}
	all := func(distVariant) bool { return true }
	// Only the deterministic variants join the gated transfer-count
	// series: the rate-driven mix could (with vanishing probability)
	// exhaust a shard's retries and fall back, which adds local-solve
	// reads. Everything else is ungated.
	deterministic := func(v distVariant) bool {
		f := v.faults
		return f.ConnRate == 0 && f.DisconnectRate == 0 && f.CorruptRate == 0 && f.LatencyRate == 0
	}
	return []experiments.Series{
		mkSeries("dist: coordinator I/O per query (block transfers)", deterministic,
			func(m measured) float64 { return float64(m.io) }),
		mkSeries("dist: best wall-clock per query (ns)", all,
			func(m measured) float64 { return float64(m.ns) }),
		mkSeries("dist: worker calls per query", all,
			func(m measured) float64 { return float64(m.calls) }),
		mkSeries("dist: injected faults per query", all,
			func(m measured) float64 { return float64(m.injected) }),
	}, nil
}

// errJoinClose closes eng on an error path, folding its Close error in.
func errJoinClose(eng *maxrs.Engine, err error) error {
	if cerr := eng.Close(); cerr != nil {
		return fmt.Errorf("%w (and close: %v)", err, cerr)
	}
	return err
}
