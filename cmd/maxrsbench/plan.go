package main

import (
	"context"
	"fmt"
	"io"
	"math"

	"maxrs"
	"maxrs/internal/experiments"
	"maxrs/internal/geom"
	"maxrs/internal/workload"
)

// planConfig parameterizes the -exp=plan mode: the cost model's
// calibration grid (DESIGN.md §12.4). For every (workload, strategy)
// point it runs one real query, records the measured block transfers
// next to the model's prediction, and prints the error. Both counts are
// deterministic at a fixed seed/scale, so `-baseline` gates them: a
// regression in either the engine's schedules or the model's fidelity
// fails CI.
type planConfig struct {
	objects int
	seed    int64
	memory  int // per-engine EM budget M in bytes
	par     int
	out     io.Writer
}

// runPlan measures predicted vs actual transfers over the shard grid
// (fused), the unfused ablation, and the planner's own AlgorithmAuto
// pick, on the Uniform and Gaussian workloads.
func runPlan(cfg planConfig) ([]experiments.Series, error) {
	extent := 4 * float64(cfg.objects)
	queryEdge := extent / 1000
	loads := []struct {
		name string
		objs []geom.Object
	}{
		{"uniform", workload.Uniform(cfg.seed, cfg.objects, extent)},
		{"gaussian", workload.Gaussian(cfg.seed, cfg.objects, extent)},
	}

	type strat struct {
		label   string
		shards  int
		unfused bool
		auto    bool
	}
	strats := []strat{
		{"K=0", 0, false, false},
		{"K=1", 1, false, false},
		{"K=2", 2, false, false},
		{"K=4", 4, false, false},
		{"K=8", 8, false, false},
		{"unfused", 0, true, false},
		{"auto", 0, false, true},
	}

	fmt.Fprintf(cfg.out, "plan: %d objects per workload, M=%dKB, B=%d, query %gx%g, parallelism %d\n",
		cfg.objects, cfg.memory/1024, experiments.DefaultBlockSize, queryEdge, queryEdge, cfg.par)
	fmt.Fprintf(cfg.out, "%-10s %-10s %10s %10s %8s %8s\n",
		"workload", "strategy", "measured", "predicted", "err%", "exact")

	measured := map[string][]float64{}
	predicted := map[string][]float64{}
	order := make([]string, 0, len(loads))
	for _, load := range loads {
		order = append(order, load.name)
		objs := make([]maxrs.Object, len(load.objs))
		for i, o := range load.objs {
			objs[i] = maxrs.Object{X: o.X, Y: o.Y, Weight: o.W}
		}
		for _, st := range strats {
			opts := &maxrs.Options{
				BlockSize:   experiments.DefaultBlockSize,
				Memory:      cfg.memory,
				Parallelism: cfg.par,
			}
			if st.auto {
				opts.Algorithm = maxrs.AlgorithmAuto
			}
			eng, err := maxrs.NewEngine(opts)
			if err != nil {
				return nil, err
			}
			ds, err := eng.Load(context.Background(), objs)
			if err != nil {
				_ = eng.Close()
				return nil, err
			}
			qopts := []maxrs.QueryOption{maxrs.WithUnfused(st.unfused)}
			if !st.auto {
				qopts = append(qopts, maxrs.WithShards(st.shards))
			}
			res, err := eng.MaxRS(context.Background(), ds, queryEdge, queryEdge, qopts...)
			if err != nil {
				_ = eng.Close()
				return nil, fmt.Errorf("plan: %s %s: %w", load.name, st.label, err)
			}
			if err := eng.Close(); err != nil {
				return nil, err
			}
			meas := float64(res.Stats.Total())
			pred := float64(res.PredictedCost.Total())
			errPct := 0.0
			if meas > 0 {
				errPct = 100 * (pred - meas) / meas
			}
			label := st.label
			if st.auto {
				label = fmt.Sprintf("auto(%v/K=%d)", res.Plan.Algorithm, res.Plan.Shards)
			}
			fmt.Fprintf(cfg.out, "%-10s %-10s %10.0f %10.0f %+7.1f%% %8v\n",
				load.name, label, meas, pred, errPct, res.PredictedCost.Exact)
			if res.PredictedCost.Exact && pred != meas {
				return nil, fmt.Errorf("plan: %s %s: exact prediction %g != measured %g",
					load.name, st.label, pred, meas)
			}
			measured[load.name] = append(measured[load.name], meas)
			predicted[load.name] = append(predicted[load.name], pred)
		}
	}

	// Worst absolute error across the explicit grid (auto excluded — its
	// point duplicates a grid row) for the text summary.
	worst := 0.0
	for _, l := range loads {
		for i := range strats {
			if strats[i].auto {
				continue
			}
			m, p := measured[l.name][i], predicted[l.name][i]
			if m > 0 {
				worst = math.Max(worst, math.Abs(p-m)/m)
			}
		}
	}
	fmt.Fprintf(cfg.out, "worst grid error %.1f%% (K=2 sits on the division capacity threshold; DESIGN.md §12.4)\n",
		100*worst)

	xs := make([]float64, len(strats))
	for i := range strats {
		xs[i] = float64(i)
	}
	mk := func(title string, vals map[string][]float64) experiments.Series {
		return experiments.Series{
			Title:  title,
			XLabel: "strategy index (K=0,1,2,4,8, unfused, auto)",
			X:      xs,
			Order:  order,
			Values: vals,
		}
	}
	return []experiments.Series{
		mk("plan: measured I/O per query (block transfers)", measured),
		mk("plan: predicted I/O per query (block transfers)", predicted),
	}, nil
}
