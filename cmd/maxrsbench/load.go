package main

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"maxrs"
	"maxrs/internal/experiments"
	"maxrs/internal/workload"
)

// loadConfig parameterizes the -exp=load mode: a workload-driven load
// generator demonstrating query throughput scaling when one shared Engine
// serves concurrent goroutines (the maxrsd serving scenario, without
// HTTP in the way).
type loadConfig struct {
	objects int
	queries int   // per concurrency level
	levels  []int // goroutine counts to sweep
	seed    int64
	par     int // Options.Parallelism of the shared engine
	out     io.Writer
}

// loadQuery returns the deterministic i-th query of the mix: mostly MaxRS
// at varying sizes, with TopK, MinRS, CountRS and MaxCRS sprinkled in, so
// the sweep exercises every concurrent entry point.
func runLoadQuery(e *maxrs.Engine, d *maxrs.Dataset, i int, extent float64) (score float64, cost uint64, err error) {
	size := extent / float64(20+(i%5)*15) // varied, cache-unfriendly sizes
	switch i % 8 {
	case 6:
		rs, err := e.TopK(context.Background(), d, size, size, 2)
		if err != nil || len(rs) == 0 {
			return 0, 0, err
		}
		var total uint64
		for _, r := range rs {
			total += r.Stats.Total()
		}
		return rs[0].Score, total, nil
	case 7:
		r, err := e.MaxCRS(context.Background(), d, size)
		return r.Score, r.Stats.Total(), err
	case 5:
		r, err := e.CountRS(context.Background(), d, size, size)
		return r.Score, r.Stats.Total(), err
	case 4:
		r, err := e.MinRS(context.Background(), d, size, size)
		return r.Score, r.Stats.Total(), err
	default:
		r, err := e.MaxRS(context.Background(), d, size, size)
		return r.Score, r.Stats.Total(), err
	}
}

// runLoad loads one shared dataset and replays the same deterministic
// query mix at each concurrency level, reporting wall-clock throughput as
// a Series (for the -json summary). Two invariants of DESIGN.md §7 are
// asserted per level: scores and summed per-query I/O are identical at
// every concurrency, and the per-query scopes sum exactly to the engine's
// global transfer delta (no lost or double-counted attribution).
func runLoad(cfg loadConfig) (experiments.Series, error) {
	series := experiments.Series{
		Title:  "load: shared-engine query throughput",
		XLabel: "query goroutines",
		Order:  []string{"queries/s", "per-query I/O total"},
		Values: map[string][]float64{},
	}
	e, err := maxrs.NewEngine(&maxrs.Options{Parallelism: cfg.par})
	if err != nil {
		return series, err
	}
	defer e.Close()
	extent := 4 * float64(cfg.objects)
	gobjs := workload.Uniform(cfg.seed, cfg.objects, extent)
	objs := make([]maxrs.Object, len(gobjs))
	for i, o := range gobjs {
		objs[i] = maxrs.Object{X: o.X, Y: o.Y, Weight: o.W}
	}
	d, err := e.Load(context.Background(), objs)
	if err != nil {
		return series, err
	}
	defer d.Release()

	fmt.Fprintf(cfg.out, "load: %d uniform objects, %d queries per level, engine parallelism %d\n",
		cfg.objects, cfg.queries, cfg.par)
	fmt.Fprintf(cfg.out, "%12s %12s %12s %10s %14s\n", "goroutines", "elapsed", "queries/s", "speedup", "per-query I/O")

	var baseElapsed time.Duration
	var baseScores []float64
	var baseIO uint64
	for _, g := range cfg.levels {
		scores := make([]float64, cfg.queries)
		ios := make([]uint64, cfg.queries)
		errs := make([]error, cfg.queries)
		next := make(chan int)
		var wg sync.WaitGroup
		globalBefore := e.Stats()
		start := time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					scores[i], ios[i], errs[i] = runLoadQuery(e, d, i, extent)
				}
			}()
		}
		for i := 0; i < cfg.queries; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		elapsed := time.Since(start)
		var totalIO uint64
		for i := range errs {
			if errs[i] != nil {
				return series, fmt.Errorf("load: level %d query %d: %w", g, i, errs[i])
			}
			totalIO += ios[i]
		}
		// Attribution exactness: the per-query scopes of this level must
		// sum to the engine's global transfer delta (DESIGN.md §7.2).
		if delta := e.Stats().Total() - globalBefore.Total(); totalIO != delta {
			return series, fmt.Errorf("load: level %d: per-query I/O sum %d != global delta %d", g, totalIO, delta)
		}
		if baseScores == nil {
			baseElapsed, baseScores, baseIO = elapsed, scores, totalIO
		} else {
			for i := range scores {
				if scores[i] != baseScores[i] {
					return series, fmt.Errorf("load: level %d query %d: score %g != sequential %g",
						g, i, scores[i], baseScores[i])
				}
			}
			if totalIO != baseIO {
				return series, fmt.Errorf("load: level %d: per-query I/O sum %d != sequential %d", g, totalIO, baseIO)
			}
		}
		qps := float64(cfg.queries) / elapsed.Seconds()
		series.X = append(series.X, float64(g))
		series.Values["queries/s"] = append(series.Values["queries/s"], qps)
		series.Values["per-query I/O total"] = append(series.Values["per-query I/O total"], float64(totalIO))
		fmt.Fprintf(cfg.out, "%12d %12s %12.1f %9.2fx %14d\n",
			g, elapsed.Round(time.Millisecond), qps, baseElapsed.Seconds()/elapsed.Seconds(), totalIO)
	}
	fmt.Fprintf(cfg.out, "scores, per-query I/O, and scope-vs-global attribution identical at every level ✓\n")
	return series, nil
}
