package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"maxrs"
	"maxrs/internal/experiments"
)

// incrConfig parameterizes the -exp=incr mode: the incremental-
// maintenance benchmark of the mutable-dataset layer (DESIGN.md §14).
// For each insert-batch size it interleaves mutation rounds with
// queries on one long-lived dataset and measures the transfers each
// query costs, next to the reload-from-scratch alternative (load the
// effective objects into a fresh engine, solve once). The run doubles
// as a regression gate: after every round the mutated dataset's answer
// must be bit-identical to the reload's (weights are dyadic, so the
// sweep sums are exact and bit-identity is well-defined).
type incrConfig struct {
	objects int
	seed    int64
	memory  int // EM budget M in bytes
	par     int
	out     io.Writer
}

// incrBatches is the mutation-rate axis: objects inserted per round.
var incrBatches = []int{1, 16, 128}

const (
	incrRounds  = 3 // mutation rounds per batch size
	incrQueries = 3 // queries after each round
)

// runIncr measures the delta path against the reload alternative and
// returns the metric series.
func runIncr(cfg incrConfig) ([]experiments.Series, error) {
	extent := 4 * float64(cfg.objects)
	queryEdge := extent / 1000
	opts := &maxrs.Options{
		BlockSize:   experiments.DefaultBlockSize,
		Memory:      cfg.memory,
		Parallelism: cfg.par,
	}
	fmt.Fprintf(cfg.out, "incr: %d uniform objects, M=%dKB, B=%d, query %gx%g, %d rounds x %d queries, parallelism %d\n",
		cfg.objects, cfg.memory/1024, experiments.DefaultBlockSize, queryEdge, queryEdge,
		incrRounds, incrQueries, cfg.par)
	fmt.Fprintf(cfg.out, "%-12s %14s %14s %12s %12s\n",
		"batch", "delta io/q", "reload io/q", "combined", "best ns/q")

	deltaIO := make([]float64, len(incrBatches))
	reloadIO := make([]float64, len(incrBatches))
	combined := make([]float64, len(incrBatches))
	bestNS := make([]float64, len(incrBatches))

	for bi, batch := range incrBatches {
		rng := rand.New(rand.NewSource(cfg.seed + int64(bi)))
		mkObj := func() maxrs.Object {
			return maxrs.Object{
				X:      rng.Float64() * extent,
				Y:      rng.Float64() * extent,
				Weight: 1 + float64(rng.Intn(8))/8,
			}
		}
		base := make([]maxrs.Object, cfg.objects)
		for i := range base {
			base[i] = mkObj()
		}
		eng, err := maxrs.NewEngine(opts)
		if err != nil {
			return nil, err
		}
		ds, err := eng.Load(context.Background(), base)
		if err != nil {
			_ = eng.Close()
			return nil, err
		}
		eff := append([]maxrs.Object(nil), base...)

		var (
			qIO, rIO   uint64
			nCombined  int
			minNS      = int64(1) << 62
			queriesRun int
		)
		for round := 0; round < incrRounds; round++ {
			ins := make([]maxrs.Object, batch)
			for i := range ins {
				ins[i] = mkObj()
			}
			if _, err := ds.Insert(context.Background(), ins); err != nil {
				_ = eng.Close()
				return nil, fmt.Errorf("incr: batch %d round %d: %w", batch, round, err)
			}
			eff = append(eff, ins...)

			var last maxrs.Result
			for q := 0; q < incrQueries; q++ {
				start := time.Now()
				res, err := eng.MaxRS(context.Background(), ds, queryEdge, queryEdge)
				elapsed := time.Since(start).Nanoseconds()
				if err != nil {
					_ = eng.Close()
					return nil, fmt.Errorf("incr: batch %d round %d query %d: %w", batch, round, q, err)
				}
				qIO += res.Stats.Total()
				if elapsed < minNS {
					minNS = elapsed
				}
				if res.Plan.Delta != nil && res.Plan.Delta.Path == "combined" {
					nCombined++
				}
				queriesRun++
				last = res
			}

			// The reload alternative — and the exactness oracle.
			ref, err := maxrs.NewEngine(opts)
			if err != nil {
				_ = eng.Close()
				return nil, err
			}
			rd, err := ref.Load(context.Background(), eff)
			if err != nil {
				_ = ref.Close()
				_ = eng.Close()
				return nil, err
			}
			want, err := ref.MaxRS(context.Background(), rd, queryEdge, queryEdge)
			if err != nil {
				_ = ref.Close()
				_ = eng.Close()
				return nil, err
			}
			rIO += ref.Stats().Total() // load + solve: the full reload cost
			if err := ref.Close(); err != nil {
				_ = eng.Close()
				return nil, err
			}
			if last.Location != want.Location || last.Score != want.Score || last.Region != want.Region {
				_ = eng.Close()
				return nil, fmt.Errorf(
					"incr: batch %d round %d: delta answer diverged from reload: got %+v/%v, want %+v/%v",
					batch, round, last.Location, last.Score, want.Location, want.Score)
			}
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		deltaIO[bi] = float64(qIO) / float64(queriesRun)
		reloadIO[bi] = float64(rIO) / float64(incrRounds)
		combined[bi] = float64(nCombined) / float64(queriesRun)
		bestNS[bi] = float64(minNS)
		fmt.Fprintf(cfg.out, "%-12d %14.1f %14.1f %11.1f%% %12.0f\n",
			batch, deltaIO[bi], reloadIO[bi], 100*combined[bi], bestNS[bi])
	}
	fmt.Fprintf(cfg.out, "every round bit-identical to reload ✓\n")

	x := make([]float64, len(incrBatches))
	order := make([]string, len(incrBatches))
	for i, b := range incrBatches {
		x[i] = float64(b)
		order[i] = fmt.Sprintf("batch=%d", b)
	}
	mkSeries := func(title string, vals map[string][]float64) experiments.Series {
		return experiments.Series{
			Title:  title,
			XLabel: "insert batch size",
			X:      x,
			Order:  []string{"delta", "reload"},
			Values: vals,
		}
	}
	return []experiments.Series{
		mkSeries("incr: I/O per query after mutations (block transfers)", map[string][]float64{
			"delta":  deltaIO,
			"reload": reloadIO,
		}),
		mkSeries("incr: combined-path share of queries", map[string][]float64{
			"delta": combined,
		}),
		mkSeries("incr: best wall-clock per query (ns)", map[string][]float64{
			"delta": bestNS,
		}),
	}, nil
}
