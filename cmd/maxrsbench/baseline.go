package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// ioSeriesMarker selects the baseline-gated metrics: series measured in
// deterministic block transfers. Wall-clock and coverage series are
// informational — machine-dependent numbers must never gate CI.
const ioSeriesMarker = "(block transfers)"

// compareBaseline checks the current run's I/O metrics against a
// committed baseline summary (bench/baseline.json in CI) and returns an
// error if any transfer count increased — the perf-regression gate.
// Experiments, series, or labels absent from the baseline pass (new
// metrics are allowed before the baseline is refreshed); a baseline
// recorded at different -scale, -bufscale, or -seed is a configuration
// error, because transfer counts are only comparable on identical
// workloads. Improvements are reported so the baseline can be ratcheted
// down.
func compareBaseline(out io.Writer, path string, cur jsonSummary) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base jsonSummary
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Scale != cur.Scale || base.BufScale != cur.BufScale || base.Seed != cur.Seed {
		return fmt.Errorf("baseline %s recorded at scale=%g bufscale=%g seed=%d, run is scale=%g bufscale=%g seed=%d — counts are not comparable",
			path, base.Scale, base.BufScale, base.Seed, cur.Scale, cur.BufScale, cur.Seed)
	}
	baseExps := map[string]jsonExperiment{}
	for _, e := range base.Experiments {
		baseExps[e.Name] = e
	}
	var regressions []string
	compared, improved := 0, 0
	for _, exp := range cur.Experiments {
		baseExp, ok := baseExps[exp.Name]
		if !ok {
			continue
		}
		for _, s := range exp.Series {
			if !strings.Contains(s.Title, ioSeriesMarker) {
				continue
			}
			var baseVals map[string][]float64
			for _, bs := range baseExp.Series {
				if bs.Title == s.Title {
					baseVals = bs.Values
					break
				}
			}
			if baseVals == nil {
				continue
			}
			for label, vals := range s.Values {
				bvals, ok := baseVals[label]
				if !ok {
					continue
				}
				for i, v := range vals {
					if i >= len(bvals) {
						break
					}
					compared++
					switch {
					case v > bvals[i]:
						regressions = append(regressions, fmt.Sprintf(
							"%s / %q / %s[%d]: %.0f > baseline %.0f (+%.1f%%)",
							exp.Name, s.Title, label, i, v, bvals[i], 100*(v-bvals[i])/bvals[i]))
					case v < bvals[i]:
						improved++
						fmt.Fprintf(out, "[baseline] improvement: %s / %s[%d]: %.0f < %.0f — consider refreshing %s\n",
							exp.Name, label, i, v, bvals[i], path)
					}
				}
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s: no comparable I/O metrics — run the experiments the baseline was recorded with", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("baseline %s: %d I/O regression(s):\n  %s",
			path, len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "[baseline] %d I/O metrics within baseline (%d improved) ✓\n", compared, improved)
	return nil
}
