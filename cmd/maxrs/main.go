// Command maxrs solves MaxRS/MaxCRS instances from CSV object files.
//
// Input format: one object per line, "x,y[,weight]" (weight defaults to 1).
// Lines starting with '#' are skipped.
//
// Examples:
//
//	maxrs -in points.csv -w 1000 -h 1000
//	maxrs -in points.csv -circle -d 1000
//	maxrs -in points.csv -w 500 -h 500 -k 3 -algorithm exact
//	datagen -dist ne | maxrs -w 1000 -h 1000
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"maxrs"
)

func main() {
	var (
		in     = flag.String("in", "-", "input CSV file (default stdin)")
		w      = flag.Float64("w", 1000, "rectangle width d1")
		h      = flag.Float64("h", 1000, "rectangle height d2")
		circle = flag.Bool("circle", false, "solve MaxCRS (circular range) instead of MaxRS")
		d      = flag.Float64("d", 1000, "circle diameter (with -circle)")
		k      = flag.Int("k", 1, "number of results (MaxkRS greedy top-k)")
		algo   = flag.String("algorithm", "exact", "exact | naive | asb | inmemory")
		block  = flag.Int("block", 4096, "EM block size in bytes")
		mem    = flag.Int("mem", 1<<20, "EM memory budget in bytes")
		stats  = flag.Bool("stats", true, "print I/O statistics")
	)
	flag.Parse()

	// Ctrl-C cancels the in-flight solve through the engine's ctx path —
	// it stops within one block-transfer's work instead of running the
	// full instance to completion. Once the first signal lands, default
	// handling is restored (AfterFunc → stop), so a second Ctrl-C kills
	// the process outright even in the phases that are not ctx-aware.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	objs, err := readObjects(*in)
	if err != nil {
		fatal(err)
	}
	// The load phases don't poll ctx internally; honor a Ctrl-C that
	// arrived during them at the phase boundary.
	if err := ctx.Err(); err != nil {
		fatal(err)
	}
	alg, err := parseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	engine, err := maxrs.NewEngine(&maxrs.Options{
		BlockSize: *block,
		Memory:    *mem,
		Algorithm: alg,
	})
	if err != nil {
		fatal(err)
	}
	defer engine.Close()
	ds, err := engine.Load(ctx, objs)
	if err != nil {
		fatal(err)
	}
	if err := ctx.Err(); err != nil {
		fatal(err)
	}
	engine.ResetStats()

	switch {
	case *circle:
		res, err := engine.MaxCRS(ctx, ds, *d)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("MaxCRS (ApproxMaxCRS, diameter %g): center=(%g, %g) weight=%g (≥ %.0f%% of optimum)\n",
			*d, res.Location.X, res.Location.Y, res.Score, 100*res.LowerBoundRatio)
	case *k > 1:
		results, err := engine.TopK(ctx, ds, *w, *h, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("MaxkRS (%g x %g, k=%d):\n", *w, *h, *k)
		for i, r := range results {
			fmt.Printf("  #%d center=(%g, %g) weight=%g\n", i+1, r.Location.X, r.Location.Y, r.Score)
		}
	default:
		res, err := engine.MaxRS(ctx, ds, *w, *h)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("MaxRS (%s, %g x %g): center=(%g, %g) weight=%g\n",
			alg, *w, *h, res.Location.X, res.Location.Y, res.Score)
		fmt.Printf("  optimal region: x in [%g, %g), y in [%g, %g)\n",
			res.Region.MinX, res.Region.MaxX, res.Region.MinY, res.Region.MaxY)
	}
	if *stats {
		s := engine.Stats()
		fmt.Printf("I/O: %d block transfers (%d reads, %d writes), N=%d\n",
			s.Total(), s.Reads, s.Writes, ds.Len())
	}
}

func parseAlgorithm(s string) (maxrs.Algorithm, error) {
	switch strings.ToLower(s) {
	case "exact", "exactmaxrs":
		return maxrs.ExactMaxRS, nil
	case "naive":
		return maxrs.NaiveSweep, nil
	case "asb", "asbtree", "asb-tree":
		return maxrs.ASBTree, nil
	case "inmemory", "mem":
		return maxrs.InMemory, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func readObjects(path string) ([]maxrs.Object, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var objs []maxrs.Object
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("line %d: want x,y[,weight], got %q", lineNo, line)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad x: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad y: %w", lineNo, err)
		}
		wt := 1.0
		if len(parts) >= 3 {
			wt, err = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad weight: %w", lineNo, err)
			}
		}
		objs = append(objs, maxrs.Object{X: x, Y: y, Weight: wt})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return objs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maxrs:", err)
	os.Exit(1)
}
