package main

import (
	"os"
	"path/filepath"
	"testing"

	"maxrs"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]maxrs.Algorithm{
		"exact":      maxrs.ExactMaxRS,
		"ExactMaxRS": maxrs.ExactMaxRS,
		"naive":      maxrs.NaiveSweep,
		"asb":        maxrs.ASBTree,
		"aSB-Tree":   maxrs.ASBTree,
		"inmemory":   maxrs.InMemory,
		"mem":        maxrs.InMemory,
	}
	for in, want := range cases {
		got, err := parseAlgorithm(in)
		if err != nil {
			t.Fatalf("parseAlgorithm(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("parseAlgorithm(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := parseAlgorithm("quantum"); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestReadObjects(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	content := "# header\n1,2\n3,4,5\n\n  6 , 7 , 8 \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	objs, err := readObjects(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("got %d objects, want 3", len(objs))
	}
	if objs[0].Weight != 1 {
		t.Fatalf("default weight = %g, want 1", objs[0].Weight)
	}
	if objs[1].Weight != 5 || objs[2].X != 6 || objs[2].Weight != 8 {
		t.Fatalf("parse mismatch: %+v", objs)
	}
}

func TestReadObjectsErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"short.csv": "1\n",
		"badx.csv":  "x,2\n",
		"bady.csv":  "1,y\n",
		"badw.csv":  "1,2,w\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readObjects(path); err == nil {
			t.Fatalf("%s should fail", name)
		}
	}
	if _, err := readObjects(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file should fail")
	}
}
