package main

import (
	"container/list"
	"sync"
)

// resultCache is a concurrency-safe LRU of solved query responses keyed by
// (dataset generation, algorithm, query parameters). Entries for deleted
// datasets are never hit again (the generation changes) and age out of the
// LRU naturally. A capacity ≤ 0 disables caching.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key string
	val queryResponse
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (queryResponse, bool) {
	if c.cap <= 0 {
		return queryResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return queryResponse{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) put(key string, val queryResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		back := c.ll.Back()
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.ll.Remove(back)
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
}

func (c *resultCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
