package main

import (
	"container/list"
	"sync"

	"maxrs"
)

// resultCache is a concurrency-safe LRU of solved query responses keyed by
// (dataset generation, algorithm, query parameters). Entries for deleted
// datasets are never hit again (the generation changes) and age out of the
// LRU naturally. A capacity ≤ 0 disables caching.
//
// On top of the exact-key lookup the cache answers semantic containment
// hits: a cached TopK(k') response for a (generation, w, h) family serves
// MaxRS and any TopK(k ≤ k') of the same family — the greedy TopK rounds
// are prefix-stable, so the donor's first k results ARE the TopK(k)
// answer, and its first result IS the MaxRS answer (DESIGN.md §12.6).
// A donor that ran dry (fewer results than its requested k) serves every
// larger k too. Generations partition families, so reuse never crosses a
// dataset reload; failed queries are never stored at all.
//
// Mutable datasets add a second freshness axis: every entry records the
// dataset's mutation sequence number at solve time, and lookups (exact and
// containment alike) hit only at the same sequence — a mutated dataset is
// never answered from a pre-mutation result, even when the mutation could
// not have changed it (the optimum may have MOVED somewhere the cached
// regions never saw; only the engine's delta path can prove it didn't).
// Mutations additionally invalidate subtractively: entries whose recorded
// optimal regions closed-intersect a changed point's influence rectangle
// are provably wrong and dropped outright; the rest survive in the LRU to
// be revalidated (re-executed — cheap through the engine's combined
// base+delta path — and re-put) on their next access.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
	// families indexes the best donor entry per (generation, w, h)
	// family: the exhausted donor if any, else the largest-k one.
	families map[string]*list.Element

	hits, misses, reuseHits uint64
}

type cacheEntry struct {
	key string
	val queryResponse
	// family/k/exhausted describe the entry's containment-donor role:
	// family is empty for entries that can never donate (maxcrs, and
	// rect queries with nothing to give), k is the request's k (1 for
	// maxrs), exhausted marks a TopK that returned fewer than k results
	// — the dataset ran dry, so the result list is complete for every
	// larger k as well.
	family    string
	k         int
	exhausted bool
	meta      entryMeta
}

// entryMeta is the freshness record of one cached response: which
// dataset registration and mutation sequence it was solved at, and —
// for the rectangle ops — the query shape and the optimal regions of
// its results, the inputs of subtractive invalidation.
type entryMeta struct {
	gen, seq uint64
	op       string
	w, h     float64
	regions  []maxrs.Rect
}

// affected reports whether a mutation at the given points can falsify
// this entry's recorded results: some point's influence rectangle (the
// w×h neighborhood within which a query rectangle can cover it)
// closed-intersects a recorded optimal region. Ops without recorded
// regions (maxcrs; defensive empty results) are always affected.
func (m entryMeta) affected(pts []maxrs.Point) bool {
	if (m.op != "maxrs" && m.op != "topk") || len(m.regions) == 0 {
		return true
	}
	hw, hh := m.w/2, m.h/2
	for _, p := range pts {
		for _, r := range m.regions {
			if p.X >= r.MinX-hw && p.X <= r.MaxX+hw &&
				p.Y >= r.MinY-hh && p.Y <= r.MaxY+hh {
				return true
			}
		}
	}
	return false
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity, ll: list.New(),
		byKey:    make(map[string]*list.Element),
		families: make(map[string]*list.Element),
	}
}

// get answers an exact-key lookup at the dataset's current mutation
// sequence. A stale-sequence entry is a miss — it stays in the LRU for
// the caller to revalidate and re-put.
func (c *resultCache) get(key string, seq uint64) (queryResponse, bool) {
	if c.cap <= 0 {
		return queryResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok || el.Value.(*cacheEntry).meta.seq != seq {
		c.misses++
		return queryResponse{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// reuse answers a containment lookup: the family's donor serves a
// request wanting k results when it holds at least that many rounds
// (k ≤ donor.k) or ran the dataset dry — and was solved at the
// dataset's current mutation sequence (a stale donor's greedy sequence
// may no longer be the dataset's). The donor's response rides back for
// the caller to trim; reuse hits are counted separately from exact hits
// so the two cache effects stay observable apart.
func (c *resultCache) reuse(family string, k int, seq uint64) (queryResponse, bool) {
	if c.cap <= 0 || family == "" {
		return queryResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.families[family]
	if !ok {
		return queryResponse{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.meta.seq != seq {
		return queryResponse{}, false
	}
	if k > e.k && !e.exhausted {
		return queryResponse{}, false
	}
	c.reuseHits++
	c.ll.MoveToFront(el)
	return e.val, true
}

// put stores a solved response. A non-empty family registers the entry
// as a containment donor for its (generation, w, h) family, displacing
// the current donor only when it covers strictly more (exhausted beats
// bounded; larger k beats smaller).
func (c *resultCache) put(key string, val queryResponse, family string, k int, exhausted bool, meta entryMeta) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if c.families[e.family] == el {
			delete(c.families, e.family)
		}
		*e = cacheEntry{key: key, val: val, family: family, k: k, exhausted: exhausted, meta: meta}
		c.ll.MoveToFront(el)
		c.promote(el)
		return
	}
	for c.ll.Len() >= c.cap {
		c.drop(c.ll.Back())
	}
	el := c.ll.PushFront(&cacheEntry{key: key, val: val, family: family, k: k, exhausted: exhausted, meta: meta})
	c.byKey[key] = el
	c.promote(el)
}

// drop removes one entry and its indexes. Caller holds c.mu.
func (c *resultCache) drop(el *list.Element) {
	e := el.Value.(*cacheEntry)
	delete(c.byKey, e.key)
	if c.families[e.family] == el {
		delete(c.families, e.family)
	}
	c.ll.Remove(el)
}

// invalidate applies one mutation's influence to the generation's
// entries: entries whose recorded regions closed-intersect any changed
// point's influence rectangle are dropped (their recorded optimum is
// provably stale); the rest survive for revalidation. Walking the whole
// LRU is fine — it is bounded by the configured capacity.
func (c *resultCache) invalidate(gen uint64, pts []maxrs.Point) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.meta.gen == gen && e.meta.affected(pts) {
			c.drop(el)
		}
	}
}

// promote makes el its family's donor if it covers more than the current
// one. Caller holds c.mu.
func (c *resultCache) promote(el *list.Element) {
	e := el.Value.(*cacheEntry)
	if e.family == "" {
		return
	}
	cur, ok := c.families[e.family]
	if !ok {
		c.families[e.family] = el
		return
	}
	ce := cur.Value.(*cacheEntry)
	if (e.exhausted && !ce.exhausted) || (e.exhausted == ce.exhausted && e.k >= ce.k) {
		c.families[e.family] = el
	}
}

func (c *resultCache) stats() (hits, misses, reuseHits uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.reuseHits, c.ll.Len()
}
