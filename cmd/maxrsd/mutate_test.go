package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// invCSV is a heavy cluster near the origin plus one light outlier: the
// optimum is pinned at the cluster, so far-away mutations are provably
// irrelevant to cached results.
const invCSV = `1,1,10
2,1,10
1,2,10
100,100,1
`

func insertObjects(t *testing.T, ts *httptest.Server, name, body string) insertResponse {
	t.Helper()
	resp, b := do(t, http.MethodPost, ts.URL+"/v1/datasets/"+name+"/insert", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d body %s", resp.StatusCode, b)
	}
	var ir insertResponse
	if err := json.Unmarshal(b, &ir); err != nil {
		t.Fatalf("insert response %s: %v", b, err)
	}
	return ir
}

// TestMutationEndpoints drives the insert/delete HTTP surface end to
// end: an insert shows up in the next query's optimum, an unknown-id
// delete fails atomically with a not_found envelope, and deleting the
// inserted object restores the original answer.
func TestMutationEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	putDataset(t, ts, "mut", invCSV)

	code, qr := query(t, ts, `{"dataset":"mut","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK {
		t.Fatalf("initial query: status %d", code)
	}
	origScore := qr.Results[0].Score

	// A new heavy cluster far away becomes the optimum.
	ir := insertObjects(t, ts, "mut", `{"objects":[
		{"x":50,"y":50,"w":20},{"x":51,"y":50,"w":20},{"x":50,"y":51,"w":20}]}`)
	if len(ir.IDs) != 3 || ir.Pending != 3 {
		t.Fatalf("insert response %+v, want 3 ids pending 3", ir)
	}
	code, qr = query(t, ts, `{"dataset":"mut","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK || qr.Cached {
		t.Fatalf("post-insert query: status %d cached %v, want fresh 200", code, qr.Cached)
	}
	if got := qr.Results[0]; got.Score != 60 || got.Location.X < 49 || got.Location.X > 52 {
		t.Fatalf("post-insert optimum %+v, want the new cluster at score 60", got)
	}

	// Unknown id: 404 envelope, nothing deleted.
	resp, b := do(t, http.MethodPost, ts.URL+"/v1/datasets/mut/delete", `{"ids":[999]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown id: status %d body %s, want 404", resp.StatusCode, b)
	}
	var env struct {
		Error errorJSON `json:"error"`
	}
	if err := json.Unmarshal(b, &env); err != nil || env.Error.Code != codeNotFound || env.Error.Retryable {
		t.Fatalf("delete unknown id body %s: want code %q, not retryable", b, codeNotFound)
	}

	// Deleting the inserted cluster restores the original optimum.
	resp, b = do(t, http.MethodPost, ts.URL+"/v1/datasets/mut/delete",
		`{"ids":[`+uintList(ir.IDs)+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d body %s", resp.StatusCode, b)
	}
	var dr deleteResponse
	if err := json.Unmarshal(b, &dr); err != nil || dr.Removed != 3 {
		t.Fatalf("delete response %s: want removed 3", b)
	}
	code, qr = query(t, ts, `{"dataset":"mut","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK || qr.Results[0].Score != origScore {
		t.Fatalf("post-delete query: status %d score %v, want original %v",
			code, qr.Results[0].Score, origScore)
	}

	// Empty bodies are rejected up front.
	for _, c := range []struct{ path, body string }{
		{"insert", `{"objects":[]}`},
		{"delete", `{"ids":[]}`},
	} {
		resp, _ := do(t, http.MethodPost, ts.URL+"/v1/datasets/mut/"+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with empty body: status %d, want 400", c.path, resp.StatusCode)
		}
	}
	// Mutating a missing dataset is not_found.
	if resp, _ := do(t, http.MethodPost, ts.URL+"/v1/datasets/nope/insert",
		`{"objects":[{"x":1,"y":1,"w":1}]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("insert into missing dataset: status %d, want 404", resp.StatusCode)
	}
}

func uintList(ids []uint64) string {
	b, _ := json.Marshal(ids)
	return string(b[1 : len(b)-1])
}

// TestSubtractiveInvalidation pins the cache's mutation behavior: a
// mutation far from every cached optimal region leaves the entries in
// the cache (they revalidate on next access — a miss, then a re-put),
// while a mutation inside a recorded region drops the affected entries
// outright.
func TestSubtractiveInvalidation(t *testing.T) {
	srv, ts := newTestServer(t)
	putDataset(t, ts, "inv", invCSV)

	// Two cached entries, both with optimal regions at the origin cluster.
	for _, q := range []string{
		`{"dataset":"inv","op":"maxrs","w":4,"h":4}`,
		`{"dataset":"inv","op":"topk","w":6,"h":6,"k":1}`,
	} {
		if code, _ := query(t, ts, q); code != http.StatusOK {
			t.Fatalf("warm query: status %d", code)
		}
	}
	if _, _, _, size := srv.cache.stats(); size != 2 {
		t.Fatalf("cache size %d after warmup, want 2", size)
	}

	// Far light insert: influence rectangle nowhere near the recorded
	// regions — both entries survive subtractive invalidation.
	insertObjects(t, ts, "inv", `{"objects":[{"x":500,"y":500,"w":1}]}`)
	if _, _, _, size := srv.cache.stats(); size != 2 {
		t.Fatalf("cache size %d after far insert, want 2 survivors", size)
	}
	// The surviving entry is stale by sequence: the next query
	// revalidates (fresh compute) and re-puts; the one after hits.
	code, qr := query(t, ts, `{"dataset":"inv","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK || qr.Cached {
		t.Fatalf("revalidation query: status %d cached %v, want fresh", code, qr.Cached)
	}
	if code, qr = query(t, ts, `{"dataset":"inv","op":"maxrs","w":4,"h":4}`); code != http.StatusOK || !qr.Cached {
		t.Fatalf("post-revalidation query: status %d cached %v, want cache hit", code, qr.Cached)
	}

	// Insert inside the recorded regions: every affected entry is dropped.
	insertObjects(t, ts, "inv", `{"objects":[{"x":1,"y":1,"w":5}]}`)
	if _, _, _, size := srv.cache.stats(); size != 0 {
		t.Fatalf("cache size %d after near insert, want 0", size)
	}

	// The far insert earlier was answered by the engine's combined
	// base+delta path at least once; the counter is exported.
	resp, b := do(t, http.MethodGet, ts.URL+"/v1/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var st struct {
		DeltaHits uint64 `json:"delta_hits"`
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("stats body %s: %v", b, err)
	}
	if st.DeltaHits == 0 {
		t.Fatalf("delta_hits = 0 after combined-path queries, want > 0 (body %s)", b)
	}
	// Dataset listing exposes the delta counters.
	resp, b = do(t, http.MethodGet, ts.URL+"/v1/datasets", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list datasets: status %d", resp.StatusCode)
	}
	var dl struct {
		Datasets []struct {
			Name      string `json:"name"`
			Pending   int    `json:"pending"`
			Mutations uint64 `json:"mutations"`
		} `json:"datasets"`
	}
	if err := json.Unmarshal(b, &dl); err != nil || len(dl.Datasets) != 1 {
		t.Fatalf("datasets body %s: %v", b, err)
	}
	if d := dl.Datasets[0]; d.Pending != 2 || d.Mutations != 2 {
		t.Fatalf("dataset info %+v, want pending 2 mutations 2", d)
	}
}

// TestBackgroundCompaction checks the compactor goroutine: once a
// dataset's pending-mutation count reaches the threshold, a tick folds
// the delta into the base off the query path, and queries keep
// answering the post-mutation dataset.
func TestBackgroundCompaction(t *testing.T) {
	srv, ts := newTestServer(t)
	defer srv.stopBackground()
	putDataset(t, ts, "bg", invCSV)
	srv.startCompactor(3, 5*time.Millisecond)

	insertObjects(t, ts, "bg", `{"objects":[
		{"x":50,"y":50,"w":20},{"x":51,"y":50,"w":20},{"x":50,"y":51,"w":20}]}`)
	entry, ok := srv.lookup("bg")
	if !ok {
		t.Fatal("dataset bg not registered")
	}
	deadline := time.Now().Add(2 * time.Second)
	for entry.ds.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending still %d, background compaction never ran", entry.ds.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c := entry.ds.Compactions(); c == 0 {
		t.Fatal("Compactions() = 0 after background compaction")
	}
	code, qr := query(t, ts, `{"dataset":"bg","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK || qr.Results[0].Score != 60 {
		t.Fatalf("query after compaction: status %d results %+v, want score 60", code, qr.Results)
	}
}

// TestV1Routing checks the path versioning: canonical /v1/ routes serve
// without a Deprecation header, the pre-/v1/ paths still work but are
// marked deprecated, and /healthz remains a deprecated liveness alias.
func TestV1Routing(t *testing.T) {
	_, ts := newTestServer(t)
	putDataset(t, ts, "demo", testCSV)

	for _, c := range []struct {
		method, path, body string
		deprecated         bool
	}{
		{http.MethodGet, "/v1/livez", "", false},
		{http.MethodGet, "/livez", "", true},
		{http.MethodGet, "/healthz", "", true},
		{http.MethodGet, "/v1/stats", "", false},
		{http.MethodGet, "/stats", "", true},
		{http.MethodGet, "/v1/datasets", "", false},
		{http.MethodGet, "/datasets", "", true},
		{http.MethodPost, "/v1/query", `{"dataset":"demo","op":"maxrs","w":4,"h":4}`, false},
		{http.MethodPost, "/query", `{"dataset":"demo","op":"maxrs","w":4,"h":4}`, true},
	} {
		resp, b := do(t, c.method, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s %s: status %d body %s", c.method, c.path, resp.StatusCode, b)
			continue
		}
		if got := resp.Header.Get("Deprecation") != ""; got != c.deprecated {
			t.Errorf("%s %s: Deprecation header present=%v, want %v", c.method, c.path, got, c.deprecated)
		}
	}
}
