// Command maxrsd is an HTTP JSON server for MaxRS/MaxCRS/TopK queries
// over named datasets — the serving layer on top of the concurrency-safe
// Engine. It loads CSV datasets (uploaded or server-local), answers
// queries through a bounded worker pool, and caches solved
// (dataset, op, parameters) results in an LRU.
//
// Usage:
//
//	maxrsd -addr=:8080 -workers=8 -cache=1024
//	maxrsd -ondisk -ondiskdir=/var/tmp      # datasets larger than RAM
//
// Cluster mode (DESIGN.md §13) — a coordinator fans sharded queries out
// to worker instances and merges exactly; workers are plain maxrsd
// processes (every instance serves /shard/solve):
//
//	maxrsd -addr=:8081                                   # worker A
//	maxrsd -addr=:8082                                   # worker B
//	maxrsd -addr=:8080 -shards=2 \
//	       -peers=a=http://localhost:8081,b=http://localhost:8082
//
// or start the coordinator empty (-coordinator) and have workers join:
//
//	maxrsd -addr=:8081 -join=http://localhost:8080 \
//	       -advertise=http://localhost:8081 -name=a
//
// API (canonical under /v1/; the bare pre-versioning paths remain for
// one release as aliases answering with a "Deprecation: true" header;
// errors are a uniform envelope
// {"error":{"code":...,"message":...,"retryable":...}}):
//
//	GET    /v1/livez                   liveness: the process is up
//	GET    /v1/readyz                  readiness: 503 before the engine is up
//	                                   and while draining for shutdown
//	GET    /v1/stats                   global I/O counters, cache + delta +
//	                                   leak gauges
//	GET    /v1/datasets                list loaded datasets with their
//	                                   statistics, pending-mutation counts +
//	                                   cache counters
//	PUT    /v1/datasets/{name}         load CSV from the request body
//	                                   (response includes dataset statistics)
//	PUT    /v1/datasets/{name}?path=P  load CSV from P under -datadir
//	                                   (requires -datadir; confined to it)
//	PUT    /v1/datasets/{name}?shards=K  solve queries on this dataset K-way
//	                                   sharded (overrides -shards; 0 = default)
//	DELETE /v1/datasets/{name}         release a dataset (safe mid-query)
//	POST   /v1/datasets/{name}/insert  {"objects":[{"x":1,"y":2,"w":3}]} —
//	                                   buffer inserts; returns their ids
//	POST   /v1/datasets/{name}/delete  {"ids":[5,17]} — delete by id
//	                                   (atomic: any unknown id fails all)
//	POST   /v1/query                   {"dataset":"d","op":"maxrs","w":4,"h":4}
//	                                   {"dataset":"d","op":"topk","w":4,"h":4,"k":3}
//	                                   {"dataset":"d","op":"maxcrs","diameter":4}
//	POST   /v1/query?timeout=500ms     per-query deadline (504 on expiry;
//	                                   clamped to -timeout when set)
//	POST   /v1/query?explain=1         plan the query without executing it:
//	                                   returns the chosen plan, predicted
//	                                   cost, and candidate table (maxrs/topk)
//	POST   /v1/shard/solve             solve one shipped shard (cluster
//	                                   internal; checksummed JSON)
//	GET    /v1/cluster/workers         membership table (coordinator)
//	POST   /v1/cluster/workers         register a worker {"name","url"}
//	DELETE /v1/cluster/workers/{name}  remove a worker
//
// Mutations buffer into the engine's delta layer: queries on a mutated
// dataset stay exact (the engine solves the delta in memory and merges
// with the cached base optimum when its influence bound allows — such
// responses carry plan.delta.path "combined" and count into /v1/stats
// delta_hits), and the background compactor folds deltas into the base
// once they reach -deltacompact. Cached results are fenced on the
// dataset's mutation sequence and invalidated subtractively: a mutation
// drops only the entries whose optimal regions it could have changed.
//
// Under overload the server degrades instead of queueing unboundedly:
// once -workers queries execute and -queue more wait, further cache
// misses are shed with 429 + Retry-After. Failed queries are never
// cached. Beyond exact-key hits the cache answers containment reuse: a
// cached TopK(k') serves MaxRS and TopK(k ≤ k') of the same
// (dataset, w, h) — such responses carry "reused": true.
//
// Every query result carries its own per-query I/O stats; /stats keeps
// the disk-global totals. See README.md for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"maxrs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrently executing queries (further requests queue)")
		cacheSize    = flag.Int("cache", 1024, "LRU capacity of cached query results (0 disables)")
		blockSize    = flag.Int("block", 4096, "EM block size B in bytes")
		memory       = flag.Int("mem", 1<<20, "EM memory budget M in bytes")
		parallel     = flag.Int("parallel", 0, "solver worker goroutines shared by all queries (0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 0, "default shard count for object queries (0 = unsharded; PUT ?shards=K overrides per dataset)")
		onDisk       = flag.Bool("ondisk", false, "back blocks with a temp file instead of process memory")
		onDiskDir    = flag.String("ondiskdir", "", "directory for the -ondisk backing file (default: system temp)")
		backendName  = flag.String("backend", "auto", "physical storage under -ondisk: auto, file, or mmap (mmap falls back to file when mapping is unavailable; counted transfers identical)")
		codecName    = flag.String("codec", "none", "physical block codec: none or delta (per-block column-split delta/varint compression; counted transfers identical, physical bytes shrink)")
		dataDir      = flag.String("datadir", "", "directory PUT /datasets/{name}?path= may read CSV files from (empty disables server-local loads)")
		drain        = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline: in-flight queries get this long to finish before they are cancelled")
		timeout      = flag.Duration("timeout", 0, "per-query deadline ceiling (0 = none; ?timeout= may tighten but not exceed it)")
		queue        = flag.Int("queue", -1, "max queries waiting for a worker before shedding with 429 (-1 = 4×workers, 0 = shed once all workers busy)")
		retries      = flag.Int("retries", 0, "retries per block transfer on transient storage faults and checksum mismatches (0 = fail fast)")
		retryBase    = flag.Duration("retrybase", time.Millisecond, "initial retry backoff (doubles per attempt)")
		retryMax     = flag.Duration("retrymax", 100*time.Millisecond, "retry backoff cap (0 = uncapped)")
		retryJitter  = flag.Int64("retryjitter", 0, "seed for decorrelated-jitter retry backoff, storage and worker calls alike (0 = plain doubling)")
		checksums    = flag.Bool("checksums", false, "verify per-block CRC32C checksums on every read")
		auto         = flag.Bool("auto", false, "let the cost model pick algorithm/shards/fusion per query (AlgorithmAuto)")
		deltaCompact = flag.Int("deltacompact", 1024, "pending-mutation threshold for background dataset compaction (0 = compact inline at the engine default instead)")

		// Cluster role flags (DESIGN.md §13). Coordinator side:
		peers       = flag.String("peers", "", "comma-separated workers to fan sharded queries out to, each url or name=url (enables distributed execution)")
		coordinator = flag.Bool("coordinator", false, "enable distributed execution with an (initially) empty membership; workers join via -join or POST /cluster/workers")
		probe       = flag.Duration("probe", 5*time.Second, "worker /readyz probe interval on a coordinator (0 disables background probing)")
		hedge       = flag.Duration("hedge", 0, "hedge delay: a shard call unanswered this long is duplicated to another worker (0 disables hedging)")
		hedgeMax    = flag.Int("hedgemax", 1, "max hedged duplicates per query")
		distRetries = flag.Int("distretries", 2, "retries per shard call on transient network faults")
		distBase    = flag.Duration("distretrybase", 50*time.Millisecond, "initial shard-call retry backoff")
		distMax     = flag.Duration("distretrymax", 2*time.Second, "shard-call retry backoff cap")
		noFallback  = flag.Bool("nolocalfallback", false, "fail shards typed (ErrShardUnavailable) instead of solving lost shards from the local halo replica")
		// Worker side:
		join      = flag.String("join", "", "coordinator base URL to register with at startup (worker role; requires -advertise)")
		advertise = flag.String("advertise", "", "this server's base URL as the coordinator should dial it, e.g. http://10.0.0.7:8081")
		name      = flag.String("name", "", "worker name for -join registration and attribution (default: the -advertise URL)")
	)
	flag.Parse()
	algorithm := maxrs.ExactMaxRS
	if *auto {
		algorithm = maxrs.AlgorithmAuto
	}
	if *join != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "maxrsd: -join requires -advertise (the URL the coordinator dials this worker at)")
		os.Exit(1)
	}
	var backend maxrs.BackendKind
	switch *backendName {
	case "auto":
		backend = maxrs.BackendAuto
	case "file":
		backend = maxrs.BackendFile
	case "mmap":
		backend = maxrs.BackendMmap
	default:
		fmt.Fprintf(os.Stderr, "maxrsd: -backend must be auto, file or mmap, got %q\n", *backendName)
		os.Exit(1)
	}
	var blockCodec maxrs.CodecKind
	switch *codecName {
	case "none":
		blockCodec = maxrs.CodecNone
	case "delta":
		blockCodec = maxrs.CodecDelta
	default:
		fmt.Fprintf(os.Stderr, "maxrsd: -codec must be none or delta, got %q\n", *codecName)
		os.Exit(1)
	}
	// -peers / -coordinator turn this instance into a coordinator:
	// sharded queries fan out to the registered workers instead of
	// solving every shard in process.
	var distOpts *maxrs.DistOptions
	if *peers != "" || *coordinator {
		distOpts = &maxrs.DistOptions{
			Retry: maxrs.RetryPolicy{
				MaxRetries: *distRetries,
				BaseDelay:  *distBase,
				MaxDelay:   *distMax,
				JitterSeed: *retryJitter,
			},
			Hedge:                maxrs.HedgePolicy{Delay: *hedge, Max: *hedgeMax},
			ProbeInterval:        *probe,
			DisableLocalFallback: *noFallback,
		}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p == "" {
				continue
			}
			wname, url := "", p
			if i := strings.Index(p, "="); i >= 0 {
				wname, url = p[:i], p[i+1:]
			}
			distOpts.Workers = append(distOpts.Workers, maxrs.WorkerAddr{Name: wname, URL: url})
		}
	}
	// With background compaction the engine never compacts inline
	// (DeltaCompactAt < 0): mutations stay cheap appends and the
	// compactor folds deltas off the query path.
	deltaCompactAt := 0
	if *deltaCompact > 0 {
		deltaCompactAt = -1
	}
	eng, err := maxrs.NewEngine(&maxrs.Options{
		Algorithm:   algorithm,
		BlockSize:   *blockSize,
		Memory:      *memory,
		Parallelism: *parallel,
		OnDisk:      *onDisk,
		OnDiskDir:   *onDiskDir,
		Backend:     backend,
		Codec:       blockCodec,
		Shards:      *shards,
		Checksums:   *checksums,
		Retry: maxrs.RetryPolicy{
			MaxRetries: *retries,
			BaseDelay:  *retryBase,
			MaxDelay:   *retryMax,
			JitterSeed: *retryJitter,
		},
		Dist:           distOpts,
		DeltaCompactAt: deltaCompactAt,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "maxrsd: %v\n", err)
		os.Exit(1)
	}
	srv := newServer(eng, *workers, *cacheSize)
	srv.dataDir = *dataDir
	srv.timeout = *timeout
	if *queue >= 0 {
		srv.queue = *queue
	}
	if *deltaCompact > 0 {
		srv.startCompactor(*deltaCompact, time.Second)
	}
	srv.markReady()
	log.Printf("maxrsd: listening on %s (workers=%d cache=%d B=%d M=%d)",
		*addr, *workers, *cacheSize, *blockSize, *memory)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	// A worker announces itself once it is serving; the coordinator's
	// prober owns its liveness from then on.
	if *join != "" {
		go func() {
			wname := *name
			if wname == "" {
				wname = *advertise
			}
			if err := joinCluster(*join, wname, *advertise); err != nil {
				log.Printf("maxrsd: %v", err)
				return
			}
			log.Printf("maxrsd: joined cluster at %s as %s", *join, wname)
		}()
	}

	// Drain on SIGINT/SIGTERM so in-flight queries finish and the engine
	// is closed — with -ondisk that removes the backing temp file, which
	// would otherwise leak on every shutdown of a long-running server.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err2 error
	select {
	case <-sigCtx.Done():
		log.Printf("maxrsd: shutting down (draining up to %s)", *drain)
		srv.startDrain() // /readyz goes 503 so balancers stop routing here
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		err := httpSrv.Shutdown(shutCtx)
		cancel()
		if err != nil {
			// Drain deadline hit with queries still running. Cancel the
			// stragglers through the engine's ctx path — each aborts within
			// one block-transfer's work, releasing its intermediates — and
			// give the handlers a moment to unwind.
			log.Printf("maxrsd: drain deadline exceeded, cancelling in-flight queries")
			srv.cancelQueries()
			shutCtx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
			err = httpSrv.Shutdown(shutCtx)
			cancel()
			if err != nil {
				// Handlers are somehow still mid-query; closing the engine
				// under them would violate Close's exclusivity contract.
				// Prefer leaking the backing file to a use-after-close race.
				log.Fatal(err)
			}
		}
	case err2 = <-serveErr:
	}
	// Background work (the delta compactor) must stop before the engine
	// closes under it.
	srv.stopBackground()
	if err2 = errors.Join(err2, eng.Close()); err2 != nil {
		log.Fatal(err2)
	}
}
