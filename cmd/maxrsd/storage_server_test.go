package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"maxrs"
)

// TestStatsExposesStorageAndFaults pins the /v1/stats surface added with
// the storage subsystem: the pipeline, fault/retry, and physical-storage
// counter blocks, on an engine running the delta codec.
func TestStatsExposesStorageAndFaults(t *testing.T) {
	eng, err := maxrs.NewEngine(&maxrs.Options{
		BlockSize: 512, Memory: 8192,
		Codec:     maxrs.CodecDelta,
		Checksums: true,
		Retry:     maxrs.RetryPolicy{MaxRetries: 2, BaseDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := newServer(eng, 4, 16)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	putDataset(t, ts, "demo", testCSV)
	if code, _ := query(t, ts, `{"dataset":"demo","op":"maxrs","w":3,"h":3}`); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}

	resp, body := do(t, http.MethodGet, ts.URL+"/v1/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad stats %s: %v", body, err)
	}
	if st.Storage.Codec != "delta" || st.Storage.Backend != "store/mem" {
		t.Fatalf("storage block = %+v, want delta on store/mem", st.Storage)
	}
	if !st.Storage.Measured {
		t.Fatal("delta engine must measure physical bytes")
	}
	if st.Storage.PhysWriteBytes == 0 || st.Storage.BlocksCompressed+st.Storage.BlocksRaw == 0 {
		t.Fatalf("no physical traffic recorded: %+v", st.Storage)
	}
	if st.Faults != (faultStatsJSON{}) {
		t.Fatalf("fault-free run reported faults: %+v", st.Faults)
	}

	// The datasets listing carries the same physical-storage block.
	resp, body = do(t, http.MethodGet, ts.URL+"/v1/datasets", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d", resp.StatusCode)
	}
	var dl datasetListResponse
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatalf("bad datasets %s: %v", body, err)
	}
	if dl.Storage != st.Storage {
		t.Fatalf("datasets storage block %+v != stats %+v", dl.Storage, st.Storage)
	}
}

// TestStatsDefaultStorageDerived checks the default in-memory engine
// reports the fixed layout with derived (unmeasured) physical bytes.
func TestStatsDefaultStorageDerived(t *testing.T) {
	_, ts := newTestServer(t)
	putDataset(t, ts, "demo", testCSV)
	_, body := do(t, http.MethodGet, ts.URL+"/v1/stats", "")
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Storage.Backend != "mem" || st.Storage.Codec != "none" || st.Storage.Measured {
		t.Fatalf("default storage block = %+v", st.Storage)
	}
	// Derived counters still track the fixed layout: transfers × B.
	if st.Storage.PhysWriteBytes != st.Writes*512 {
		t.Fatalf("derived phys write bytes %d != writes %d × 512", st.Storage.PhysWriteBytes, st.Writes)
	}
}
