package main

import (
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"time"

	"maxrs"
)

// This file is maxrsd's mutation surface: POST /v1/datasets/{name}/insert
// and /delete buffer changes into the engine's delta layer (queries stay
// exact — the engine combines or re-solves as its influence bound
// allows), and the background compactor folds deltas into the base file
// once they grow past -deltacompact, off the query path.

// objectJSON is one object of an insert request.
type objectJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	W float64 `json:"w"`
}

type insertRequest struct {
	Objects []objectJSON `json:"objects"`
}

// insertResponse returns the engine-assigned ids of the inserted
// objects (the handles DELETE takes) and the resulting delta size.
type insertResponse struct {
	IDs     []uint64 `json:"ids"`
	Pending int      `json:"pending"`
}

type deleteRequest struct {
	IDs []uint64 `json:"ids"`
}

type deleteResponse struct {
	Removed int `json:"removed"`
	Pending int `json:"pending"`
}

// handleInsert buffers objects into a dataset's delta. The mutation runs
// under the same admission control and context plumbing as a query — a
// Delete scans the base file and either may trigger an inline
// compaction, so they are engine work, not metadata edits.
func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "bad request body: %v", err)
		return
	}
	if len(req.Objects) == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "insert needs at least one object")
		return
	}
	objs := make([]maxrs.Object, len(req.Objects))
	pts := make([]maxrs.Point, len(req.Objects))
	for i, o := range req.Objects {
		objs[i] = maxrs.Object{X: o.X, Y: o.Y, Weight: o.W}
		pts[i] = maxrs.Point{X: o.X, Y: o.Y}
	}
	s.mutate(w, r, func(ds *maxrs.Dataset) (any, []maxrs.Point, error) {
		ids, err := ds.Insert(r.Context(), objs)
		if err != nil {
			return nil, nil, err
		}
		return insertResponse{IDs: ids, Pending: ds.Pending()}, pts, nil
	})
}

// handleDelete removes objects by id — base records and buffered inserts
// alike. The call is atomic: any unknown id fails the whole request with
// not_found and nothing is deleted.
func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "bad request body: %v", err)
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "delete needs at least one id")
		return
	}
	s.mutate(w, r, func(ds *maxrs.Dataset) (any, []maxrs.Point, error) {
		removed, err := ds.Delete(r.Context(), req.IDs)
		if err != nil {
			return nil, nil, err
		}
		pts := make([]maxrs.Point, len(removed))
		for i, o := range removed {
			pts[i] = maxrs.Point{X: o.X, Y: o.Y}
		}
		return deleteResponse{Removed: len(removed), Pending: ds.Pending()}, pts, nil
	})
}

// mutate runs one mutation against the named dataset under admission
// control, then applies its influence to the result cache: entries whose
// recorded optimal regions a changed point could reach are dropped, the
// rest survive for revalidation (DESIGN.md §14).
func (s *server) mutate(w http.ResponseWriter, r *http.Request, fn func(*maxrs.Dataset) (any, []maxrs.Point, error)) {
	name := r.PathValue("name")
	entry, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "no dataset %q", name)
		return
	}
	if !s.admit() {
		s.shed(w)
		return
	}
	defer s.done()
	ctx, stop := s.queryContext(r, s.timeout)
	defer stop()
	if err := s.acquire(ctx); err != nil {
		status, code := http.StatusServiceUnavailable, codeUnavailable
		if err == ctx.Err() && ctx.Err() != nil {
			status, code = errStatus(err)
		}
		httpError(w, status, code, "queue wait: %v", err)
		return
	}
	defer s.release()
	resp, pts, err := fn(entry.ds)
	if err != nil {
		status, code := errStatus(err)
		httpError(w, status, code, "mutate: %v", err)
		return
	}
	s.cache.invalidate(entry.gen, pts)
	writeJSON(w, http.StatusOK, resp)
}

// startCompactor launches the background delta compactor: every
// interval it folds any dataset whose pending-mutation count reached
// threshold into a fresh base file, off the query path (queries running
// meanwhile finish on the old base — it is reference-counted). Fenced by
// hardStop and tracked in s.bg: shutdown cancels and waits before the
// engine closes.
func (s *server) startCompactor(threshold int, interval time.Duration) {
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.hardStop.Done():
				return
			case <-t.C:
			}
			s.mu.RLock()
			entries := make([]*dsEntry, 0, len(s.datasets))
			for _, e := range s.datasets {
				entries = append(entries, e)
			}
			s.mu.RUnlock()
			for _, e := range entries {
				if e.ds.Pending() < threshold {
					continue
				}
				// A released dataset (DELETE racing the tick) is not an
				// error worth logging; a cancelled compaction is shutdown.
				if err := e.ds.Compact(s.hardStop); err != nil &&
					s.hardStop.Err() == nil && !errors.Is(err, maxrs.ErrDatasetReleased) {
					log.Printf("maxrsd: background compaction: %v", err)
				}
			}
		}
	}()
}

// stopBackground cancels the background goroutines (and any in-flight
// queries — callers invoke it only at shutdown) and waits for them, so
// the engine can close without work still running on it.
func (s *server) stopBackground() {
	s.cancelQueries()
	s.bg.Wait()
}
