package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"maxrs"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	eng, err := maxrs.NewEngine(&maxrs.Options{BlockSize: 512, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := newServer(eng, 4, 16)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func do(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const testCSV = `# three close points and one outlier
1,1,1
2,2,5
3,1,1
90,90,2
`

func putDataset(t *testing.T, ts *httptest.Server, name, csv string) {
	t.Helper()
	resp, body := do(t, http.MethodPut, ts.URL+"/datasets/"+name, csv)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put dataset: status %d, body %s", resp.StatusCode, body)
	}
}

func query(t *testing.T, ts *httptest.Server, req string) (int, queryResponse) {
	t.Helper()
	resp, body := do(t, http.MethodPost, ts.URL+"/query", req)
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("bad query response %s: %v", body, err)
		}
	}
	return resp.StatusCode, qr
}

func TestServeMaxRSAndCache(t *testing.T) {
	_, ts := newTestServer(t)
	putDataset(t, ts, "demo", testCSV)

	code, qr := query(t, ts, `{"dataset":"demo","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(qr.Results) != 1 || qr.Results[0].Score != 7 {
		t.Fatalf("results = %+v, want one result with score 7", qr.Results)
	}
	if qr.Cached {
		t.Fatal("first query must not be cached")
	}
	if qr.Results[0].Stats.Total == 0 {
		t.Fatal("per-query stats must be non-zero")
	}

	code, qr2 := query(t, ts, `{"dataset":"demo","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK || !qr2.Cached {
		t.Fatalf("second identical query: status %d cached %v, want cache hit", code, qr2.Cached)
	}
	if qr2.Results[0].Score != qr.Results[0].Score {
		t.Fatal("cached result differs")
	}

	// A different size must miss the cache.
	if _, qr3 := query(t, ts, `{"dataset":"demo","op":"maxrs","w":2,"h":2}`); qr3.Cached {
		t.Fatal("different parameters must not hit the cache")
	}
}

func TestServeTopKAndMaxCRS(t *testing.T) {
	_, ts := newTestServer(t)
	putDataset(t, ts, "demo", testCSV)

	code, qr := query(t, ts, `{"dataset":"demo","op":"topk","w":4,"h":4,"k":3}`)
	if code != http.StatusOK {
		t.Fatalf("topk status %d", code)
	}
	if len(qr.Results) != 2 { // cluster (7) then the outlier (2)
		t.Fatalf("topk results = %d, want 2", len(qr.Results))
	}
	if qr.Results[0].Score != 7 || qr.Results[1].Score != 2 {
		t.Fatalf("topk scores = %g, %g want 7, 2", qr.Results[0].Score, qr.Results[1].Score)
	}

	code, qr = query(t, ts, `{"dataset":"demo","op":"maxcrs","diameter":5}`)
	if code != http.StatusOK || len(qr.Results) != 1 {
		t.Fatalf("maxcrs status %d results %+v", code, qr.Results)
	}
	if qr.Results[0].Score < 7 {
		t.Fatalf("maxcrs score = %g, want ≥ 7 (circle of diameter 5 covers the cluster)", qr.Results[0].Score)
	}
}

func TestServeValidationAndErrors(t *testing.T) {
	_, ts := newTestServer(t)
	putDataset(t, ts, "demo", testCSV)

	if code, _ := query(t, ts, `{"dataset":"nope","op":"maxrs","w":4,"h":4}`); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", code)
	}
	if code, _ := query(t, ts, `{"dataset":"demo","op":"bogus"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", code)
	}
	if code, _ := query(t, ts, `{"dataset":"demo","op":"maxrs","w":-1,"h":4}`); code != http.StatusBadRequest {
		t.Fatalf("bad size: status %d, want 400", code)
	}
	resp, body := do(t, http.MethodPut, ts.URL+"/datasets/bad", "1,notanumber\n")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "line 1") {
		t.Fatalf("bad CSV: status %d body %s, want 400 with line number", resp.StatusCode, body)
	}
	resp, _ = do(t, http.MethodPut, ts.URL+"/datasets/inf", "1,+Inf\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("Inf CSV: status %d, want 400", resp.StatusCode)
	}
}

func TestDeleteReleasesBlocks(t *testing.T) {
	srv, ts := newTestServer(t)
	putDataset(t, ts, "demo", testCSV)
	if srv.eng.BlocksInUse() == 0 {
		t.Fatal("dataset should occupy blocks")
	}
	resp, body := do(t, http.MethodDelete, ts.URL+"/datasets/demo", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d body %s", resp.StatusCode, body)
	}
	if n := srv.eng.BlocksInUse(); n != 0 {
		t.Fatalf("BlocksInUse = %d after delete, want 0", n)
	}
	if code, _ := query(t, ts, `{"dataset":"demo","op":"maxrs","w":4,"h":4}`); code != http.StatusNotFound {
		t.Fatalf("query after delete: status %d, want 404", code)
	}
	// Replacing a dataset under the same name must not leak the old copy.
	putDataset(t, ts, "demo", testCSV)
	before := srv.eng.BlocksInUse()
	putDataset(t, ts, "demo", testCSV)
	if n := srv.eng.BlocksInUse(); n != before {
		t.Fatalf("BlocksInUse = %d after replace, want %d", n, before)
	}
}

func TestServerLocalPathConfinement(t *testing.T) {
	srv, ts := newTestServer(t)
	// Disabled without -datadir.
	resp, body := do(t, http.MethodPut, ts.URL+"/datasets/x?path=whatever.csv", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("path load without datadir: status %d body %s, want 403", resp.StatusCode, body)
	}
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/ok.csv", []byte("1,1\n2,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv.dataDir = dir
	resp, body = do(t, http.MethodPut, ts.URL+"/datasets/x?path=ok.csv", "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("path load: status %d body %s", resp.StatusCode, body)
	}
	// Escapes fail — both plain .. traversal and symlinks out of the root.
	resp, body = do(t, http.MethodPut, ts.URL+"/datasets/x?path=../../etc/passwd", "")
	if resp.StatusCode == http.StatusCreated || strings.Contains(string(body), "root:") {
		t.Fatalf("escape attempt: status %d body %s", resp.StatusCode, body)
	}
	if err := os.Symlink("/etc", dir+"/link"); err == nil {
		resp, body = do(t, http.MethodPut, ts.URL+"/datasets/x?path=link/passwd", "")
		if resp.StatusCode == http.StatusCreated || strings.Contains(string(body), "root:") {
			t.Fatalf("symlink escape: status %d body %s", resp.StatusCode, body)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, ts := newTestServer(t)
	// Disable the result cache: every request must actually traverse the
	// worker pool and the shared engine, or this tests nothing.
	srv.cache = newResultCache(0)
	putDataset(t, ts, "demo", testCSV)

	// A reference answer per query size, computed sequentially.
	want := make(map[int]float64)
	for size := 1; size <= 4; size++ {
		code, qr := query(t, ts, fmt.Sprintf(`{"dataset":"demo","op":"maxrs","w":%d,"h":%d}`, size, size))
		if code != http.StatusOK {
			t.Fatalf("seed query %d: status %d", size, code)
		}
		want[size] = qr.Results[0].Score
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				size := 1 + (g+i)%4
				code, qr := query(t, ts, fmt.Sprintf(`{"dataset":"demo","op":"maxrs","w":%d,"h":%d}`, size, size))
				if code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: status %d", g, code)
					return
				}
				if qr.Results[0].Score != want[size] {
					errs <- fmt.Errorf("goroutine %d: score %g, want %g", g, qr.Results[0].Score, want[size])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	// Every query's blocks must have been returned.
	if n := srv.eng.BlocksInUse(); n != srv.datasets["demo"].ds.Blocks() {
		t.Fatalf("BlocksInUse = %d, want only the dataset's %d", n, srv.datasets["demo"].ds.Blocks())
	}
}

// TestShardedDataset: ?shards=K shards the dataset's queries, the
// response carries the per-shard breakdown, scores match the unsharded
// answer, and bad shard counts are rejected.
func TestShardedDataset(t *testing.T) {
	_, ts := newTestServer(t)
	putDataset(t, ts, "plain", testCSV)

	resp, body := do(t, http.MethodPut, ts.URL+"/datasets/sharded?shards=2", testCSV)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put sharded dataset: status %d, body %s", resp.StatusCode, body)
	}
	var info datasetInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Shards != 2 {
		t.Fatalf("dataset info shards = %d, want 2", info.Shards)
	}

	code, want := query(t, ts, `{"dataset":"plain","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK {
		t.Fatalf("unsharded query status %d", code)
	}
	if len(want.Results[0].Shards) != 0 {
		t.Fatalf("unsharded query reported shards: %+v", want.Results[0].Shards)
	}
	code, got := query(t, ts, `{"dataset":"sharded","op":"maxrs","w":4,"h":4}`)
	if code != http.StatusOK {
		t.Fatalf("sharded query status %d", code)
	}
	if got.Results[0].Score != want.Results[0].Score {
		t.Fatalf("sharded score %g != unsharded %g", got.Results[0].Score, want.Results[0].Score)
	}
	shards := got.Results[0].Shards
	if len(shards) == 0 || len(shards) > 2 {
		t.Fatalf("shard breakdown = %+v, want 1..2 entries", shards)
	}
	var sum uint64
	for _, s := range shards {
		sum += s.Stats.Total
	}
	if sum == 0 || sum > got.Results[0].Stats.Total {
		t.Fatalf("shard totals %d inconsistent with query total %d", sum, got.Results[0].Stats.Total)
	}

	// The shard count is part of the dataset listing.
	resp, body = do(t, http.MethodGet, ts.URL+"/datasets", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list datasets: %d", resp.StatusCode)
	}
	var listing datasetListResponse
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, i := range listing.Datasets {
		byName[i.Name] = i.Shards
		if i.Stats == nil || i.Stats.N == 0 {
			t.Fatalf("dataset %q listed without load-time stats: %+v", i.Name, i.Stats)
		}
	}
	if byName["sharded"] != 2 || byName["plain"] != 0 {
		t.Fatalf("listing shards = %v, want sharded:2 plain:0", byName)
	}

	if resp, _ := do(t, http.MethodPut, ts.URL+"/datasets/bad?shards=-1", testCSV); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shards=-1 accepted: status %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPut, ts.URL+"/datasets/bad?shards=x", testCSV); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shards=x accepted: status %d", resp.StatusCode)
	}
}

// TestDegenerateResultNotSilentEmpty: a query whose optimal region is
// unbounded (here: best score 0, so the optimum extends to infinity)
// produces a location JSON cannot represent. The server must answer
// with an explicit error, never a silent empty 200.
func TestDegenerateResultNotSilentEmpty(t *testing.T) {
	_, ts := newTestServer(t)
	putDataset(t, ts, "neg", "1,1,-5\n2,2,-3\n")
	resp, body := do(t, http.MethodPost, ts.URL+"/query",
		`{"dataset":"neg","op":"maxrs","w":4,"h":4}`)
	if len(body) == 0 {
		t.Fatalf("empty response body (status %d)", resp.StatusCode)
	}
	var env map[string]any
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-JSON response %q: %v", body, err)
	}
	if resp.StatusCode == http.StatusOK {
		// If the engine produced a representable answer this is fine —
		// but an OK must carry results, not an empty shell.
		if _, ok := env["results"]; !ok {
			t.Fatalf("200 without results: %s", body)
		}
	} else if _, ok := env["error"]; !ok {
		t.Fatalf("status %d without error field: %s", resp.StatusCode, body)
	}
}

// bigCSV returns a dataset large enough that a query takes many block
// transfers under the tiny test EM budget.
func bigCSV(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", (i*7919)%4000, (i*104729)%4000, 1+i%5)
	}
	return b.String()
}

// TestClientDisconnectCancelsQuery verifies the ctx wiring: a client that
// goes away mid-query stops the engine work (the handler returns, the
// worker slot frees, and no intermediate blocks stay allocated).
func TestClientDisconnectCancelsQuery(t *testing.T) {
	srv, ts := newTestServer(t)
	putDataset(t, ts, "big", bigCSV(4000))
	base := srv.eng.BlocksInUse()

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query",
			strings.NewReader(`{"dataset":"big","op":"topk","w":600,"h":600,"k":4}`))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}()
		// Give the query a moment to start, then hang up.
		time.Sleep(5 * time.Millisecond)
		cancel()
		if err := <-done; err == nil {
			// The query may legitimately have finished before the cancel —
			// but usually the client sees its own context error.
			t.Log("query completed before disconnect")
		}
		// The handler may still be unwinding for a moment after the client
		// gives up; wait for the engine to drain.
		deadline := time.Now().Add(5 * time.Second)
		for srv.eng.BlocksInUse() != base && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if n := srv.eng.BlocksInUse(); n != base {
			t.Fatalf("round %d: %d blocks in use after disconnect, want %d", i, n, base)
		}
	}
}

// TestShutdownCancelsStragglers verifies the graceful-shutdown path: when
// the drain deadline passes, cancelQueries aborts in-flight queries
// through the engine ctx path and the handlers return 503.
func TestShutdownCancelsStragglers(t *testing.T) {
	srv, ts := newTestServer(t)
	putDataset(t, ts, "big", bigCSV(4000))
	base := srv.eng.BlocksInUse()

	started := make(chan struct{})
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			// No t.Fatal from this goroutine (FailNow must run on the
			// test goroutine); report transport errors as -1 instead.
			if i == 0 {
				close(started)
			}
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"dataset":"big","op":"topk","w":600,"h":600,"k":8}`))
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}(i)
	}
	<-started
	time.Sleep(5 * time.Millisecond) // let the queries reach the engine
	srv.cancelQueries()              // the drain-deadline straggler cancel

	sawCancelled := false
	for i := 0; i < 2; i++ {
		switch code := <-results; code {
		case http.StatusServiceUnavailable:
			sawCancelled = true
		case http.StatusOK:
			// Finished before the cancel landed — legal.
		case -1:
			// Transport error during the shutdown race — legal too; the
			// engine-drain assertion below is the real invariant.
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if !sawCancelled {
		t.Log("both queries finished before the straggler cancel (slow machine?)")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.eng.BlocksInUse() != base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := srv.eng.BlocksInUse(); n != base {
		t.Fatalf("%d blocks in use after straggler cancel, want %d", n, base)
	}
}
