package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"maxrs"
	"maxrs/internal/dist"
	"maxrs/internal/geom"
)

// This file is maxrsd's half of the cluster protocol (DESIGN.md §13):
// the worker side serves POST /shard/solve — a self-contained shard
// solve shipped by a coordinator — and the coordinator side exposes the
// membership table over /cluster/workers so workers can join and leave
// a running cluster without a restart.

// maxShardBody bounds a /shard/solve body: a halo-extended partition's
// objects in JSON (same ceiling as a CSV upload).
const maxShardBody = maxUpload

// handleShardSolve answers one shard of a coordinator's distributed
// query. The shard request is self-contained (the worker holds no
// dataset state), so it runs through the same admission control, queue,
// drain handling, and context plumbing as a client query — a saturated
// worker sheds shards with 429 + Retry-After and the coordinator's
// retry layer reroutes them, rather than queueing unboundedly under a
// coordinator's fan-out.
func (s *server) handleShardSolve(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		s.shed(w)
		return
	}
	defer s.done()
	ctx, stop := s.queryContext(r, s.timeout)
	defer stop()
	if err := s.acquire(ctx); err != nil {
		status, code := http.StatusServiceUnavailable, codeUnavailable
		if errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusGatewayTimeout, codeTimeout
		}
		httpError(w, status, code, "queue wait: %v", err)
		return
	}
	defer s.release()
	r.Body = http.MaxBytesReader(w, r.Body, maxShardBody)
	req, err := dist.DecodeRequest(r)
	if err != nil {
		// In-flight damage is retryable — the coordinator's resend carries
		// clean bytes — while a genuinely malformed request is not.
		if errors.Is(err, dist.ErrBadChecksum) {
			httpError(w, http.StatusServiceUnavailable, codeUnavailable, "%v", err)
			return
		}
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	reply, err := s.solveShard(ctx, req)
	if err != nil {
		status, code := errStatus(err)
		httpError(w, status, code, "shard solve: %v", err)
		return
	}
	_ = dist.WriteReply(w, reply) // write errors mean the client is gone
}

// solveShard runs one shipped shard through the engine: load the
// objects onto the worker's disk, solve the exact MaxRS unsharded (the
// shard is already a partition; re-sharding or re-distributing it would
// be circular), and report the worker-side I/O. ExactMaxRS is exact for
// any block size, memory budget, and parallelism, so the reply is
// bit-identical to the coordinator solving the same partition itself —
// the property the whole distributed mode rests on.
func (s *server) solveShard(ctx context.Context, req dist.SolveRequest) (dist.SolveReply, error) {
	objs := make([]maxrs.Object, len(req.Objects))
	for i, o := range req.Objects {
		objs[i] = maxrs.Object{X: o.X, Y: o.Y, Weight: o.W}
	}
	ds, err := s.eng.Load(ctx, objs)
	if err != nil {
		return dist.SolveReply{}, err
	}
	defer func() { _ = ds.Release() }()
	res, err := s.eng.MaxRS(ctx, ds, req.W, req.H,
		maxrs.WithAlgorithm(maxrs.ExactMaxRS),
		maxrs.WithShards(0),
		maxrs.WithUnfused(req.Unfused),
		maxrs.WithDistributed(false),
	)
	if err != nil {
		return dist.SolveReply{}, err
	}
	return dist.SolveReply{
		Sum: res.Score,
		Region: geom.Rect{
			X: geom.Interval{Lo: res.Region.MinX, Hi: res.Region.MaxX},
			Y: geom.Interval{Lo: res.Region.MinY, Hi: res.Region.MaxY},
		},
		Reads:  res.Stats.Reads,
		Writes: res.Stats.Writes,
	}, nil
}

// workerJSON is the /cluster/workers wire form of one member.
type workerJSON struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Ready    bool   `json:"ready"`
	Failures int    `json:"failures,omitempty"`
}

type workerListResponse struct {
	Workers []workerJSON `json:"workers"`
}

func (s *server) handleListWorkers(w http.ResponseWriter, _ *http.Request) {
	ws := s.eng.Workers()
	out := workerListResponse{Workers: make([]workerJSON, 0, len(ws))}
	for _, wk := range ws {
		out.Workers = append(out.Workers, workerJSON{
			Name: wk.Name, URL: wk.URL, Ready: wk.Ready, Failures: wk.Failures,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAddWorker registers (or re-registers) a worker at runtime —
// the endpoint a worker started with -join posts to.
func (s *server) handleAddWorker(w http.ResponseWriter, r *http.Request) {
	var req workerJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "bad request body: %v", err)
		return
	}
	if req.URL == "" {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "worker registration needs a url")
		return
	}
	if !s.eng.RegisterWorker(req.Name, req.URL) {
		httpError(w, http.StatusPreconditionFailed, codeInvalidArgument,
			"not a coordinator (start maxrsd with -peers or -coordinator)")
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"registered": req.URL})
}

func (s *server) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.eng.RemoveWorker(name) {
		httpError(w, http.StatusNotFound, codeNotFound, "no worker %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

// joinCluster announces this worker to a coordinator, retrying briefly:
// at startup the coordinator may not be listening yet, and a worker that
// gives up on the first connection refusal defeats the point of dynamic
// membership. The coordinator's prober takes over liveness from here.
func joinCluster(coordinator, name, advertise string) error {
	body, err := json.Marshal(workerJSON{Name: name, URL: advertise})
	if err != nil {
		return err
	}
	target := strings.TrimSuffix(coordinator, "/") + "/v1/cluster/workers"
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		resp, err := http.Post(target, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			return nil
		}
		lastErr = fmt.Errorf("coordinator answered %s", resp.Status)
		if resp.StatusCode == http.StatusPreconditionFailed {
			break // the target is not a coordinator; retrying cannot help
		}
	}
	return fmt.Errorf("join %s: %w", coordinator, lastErr)
}
